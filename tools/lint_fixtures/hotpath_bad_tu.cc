// Seeded-violation fixture for the flipc_hotpath_lint SELFTEST. This TU is
// compiled (into an object the lint must flag) but never linked into any
// product binary. It commits every symbol-level sin the lint denies:
// heap allocation, std::mutex (pthread_mutex_*), a condition variable and
// a blocking libc call. If the lint ever stops flagging this object, the
// flipc_hotpath_lint_selftest ctest goes red.
#include <unistd.h>

#include <condition_variable>
#include <mutex>
#include <vector>

namespace flipc_lint_fixture {

std::mutex g_mutex;
std::condition_variable g_cv;

int HotPathSinner(int n) {
  std::lock_guard<std::mutex> guard(g_mutex);  // pthread_mutex_lock
  std::vector<int> heap(static_cast<std::size_t>(n), 7);  // operator new
  usleep(1);                                              // blocking libc
  g_cv.notify_one();                                      // pthread_cond_*
  return heap.empty() ? 0 : heap.front();
}

}  // namespace flipc_lint_fixture
