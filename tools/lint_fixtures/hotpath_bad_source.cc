// Seeded-violation fixture for the flipc_hotpath_lint SELFTEST source pass.
// Never compiled; the lint reads it as text. It violates both source rules:
// raw std::atomic usage outside src/waitfree//src/base/locks.h, and a
// memory_order_seq_cst access outside the Peterson whitelist.
#include <atomic>

namespace flipc_lint_fixture {

std::atomic<int> g_naked_atomic{0};

int Load() { return g_naked_atomic.load(std::memory_order_seq_cst); }

}  // namespace flipc_lint_fixture
