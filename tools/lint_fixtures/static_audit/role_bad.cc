// Rule 1 (role/ownership) — seeded violations the auditor must reject.
#include "audit_stubs.h"

struct Queue {
  Cursors cursors;
  Cfg cfg;

  // Engine closure writing the app-owned cursor.
  FLIPC_ROLE_ENGINE void WrongSide() {
    cursors.release_count.Publish(1);  // AUDIT-EXPECT: owned by app
  }

  // Write with no role-annotated entry point anywhere in the caller closure.
  void Orphan() {
    cursors.process_count.Publish(1);  // AUDIT-EXPECT: unrooted write
  }

  // Config is quiescent-only; writing it from a live app closure races the
  // engine's config reads.
  FLIPC_ROLE_APP void LateConfig() {
    cfg.capacity.StoreRelaxed(64);  // AUDIT-EXPECT: quiescent-only
  }
};

// A write through a governed struct alias to a member the ownership tables
// do not list means the tables drifted from the layout.
struct Box {
  Hdr* hdr_;

  FLIPC_ROLE_APP void Drifted() {
    hdr_->free_head = 2;
    hdr_->bogus_word = 3;  // AUDIT-EXPECT: ownership tables do not list
  }
};
