// Bounded-progress certification — the same data-dependent loop as
// progress_bound_bad.cc, discharged by a FLIPC_BOUNDED_BY annotation
// stating the bound the certifier cannot derive (and syntax-checking it,
// unevaluated, against the enclosing scope).
#include "audit_stubs.h"

namespace {
constexpr int kRingCapacity = 8;
}  // namespace

int PopUntilFresh(const int* tags, int lap) {
  FLIPC_HOT_PATH("fixture-pop");
  int i = 0;
  // Every slot is stamped with the previous or current lap tag, so the
  // scan terminates within two laps of the ring.
  FLIPC_BOUNDED_BY(2 * kRingCapacity);
  while (tags[i] != lap) {
    ++i;
  }
  return i;
}
