// Bounded-progress certification — the shapes the certifier accepts:
// countdown conditions, comparisons against constant-looking bounds, and
// range-for. Counterpart of progress_retry_bad.cc.
#include "audit_stubs.h"

namespace {
constexpr int kSpinBudget = 64;
}  // namespace

int SpinForDoorbell(const bool* ready) {
  FLIPC_HOT_PATH("fixture-retry");
  int budget = kSpinBudget;
  while (budget-- > 0) {
    if (*ready) {
      return 1;
    }
  }
  return 0;
}

int SweepSlots(const int (&slots)[8]) {
  FLIPC_HOT_PATH("fixture-sweep");
  int acc = 0;
  for (int i = 0; i < kSpinBudget; ++i) {
    acc += slots[i & 7];
  }
  for (int v : slots) {
    acc += v;
  }
  return acc;
}
