// Shard-qualified roles — seeded violations the auditor must reject: the
// handoff cursors are engine-side cells, so application closures and
// unrooted writers may not touch them even though two engine shards share
// the ring.
#include "audit_stubs.h"

struct HandoffRing {
  HandoffCursors cursors;

  // An application closure draining another shard's inbox directly would
  // bypass the planner; the cursors are engine-owned.
  FLIPC_ROLE_APP void AppDrain() {
    cursors.handoff_head.Publish(1);  // AUDIT-EXPECT: owned by engine
  }

  // Write with no role-annotated entry point anywhere in the caller closure.
  void Orphan() {
    cursors.handoff_tail.Publish(1);  // AUDIT-EXPECT: unrooted write
  }
};
