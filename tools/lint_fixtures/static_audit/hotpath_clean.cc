// Rule 3 (hot-path purity) — conforming code the auditor must accept:
// wait-free cell traffic inside the scope, exempt cold branches, and
// unrestricted code outside any hot scope.
#include "audit_stubs.h"

struct Queue {
  Cursors cursors;

  FLIPC_ROLE_APP int Fast(int x) {
    FLIPC_HOT_PATH("fixture-send");
    cursors.release_count.Publish(cursors.release_count.ReadRelaxed() + 1);
    if (x < 0) {
      // Cold error branch, off the real path by design.
      FLIPC_HOT_PATH_EXEMPT("fixture error path");
      int* scratch = new int(x);
      delete scratch;
    }
    return x;
  }

  FLIPC_ROLE_APP int Conditional(bool armed) {
    FLIPC_HOT_PATH_IF(armed, "fixture-send-locked");
    cursors.release_count.Publish(1);
    return 0;
  }
};

// No hot scope: allocation, locks and sleeps are all legal.
int Cold() {
  std::mutex m;
  m.lock();
  int* scratch = new int(1);
  delete scratch;
  m.unlock();
  usleep(1);
  return 0;
}
