// Self-contained stand-ins for the FLIPC primitives the static-audit
// fixtures exercise. The fixtures must (a) parse under the dependency-free
// token frontend, which keys on the macro and method NAMES, and (b) compile
// under the libclang frontend, which needs real declarations. This header
// supplies both without pulling in the repo's src/ tree, so a fixture's
// findings come from the fixture alone.
#ifndef TOOLS_LINT_FIXTURES_STATIC_AUDIT_AUDIT_STUBS_H_
#define TOOLS_LINT_FIXTURES_STATIC_AUDIT_AUDIT_STUBS_H_

#include <atomic>
#include <mutex>

#if defined(__clang__)
#define FLIPC_ROLE_APP __attribute__((annotate("flipc_role_app")))
#define FLIPC_ROLE_ENGINE __attribute__((annotate("flipc_role_engine")))
#define FLIPC_ROLE_ENGINE_SHARD __attribute__((annotate("flipc_role_engine_shard")))
#define FLIPC_ROLE_QUIESCENT __attribute__((annotate("flipc_role_quiescent")))
#else
#define FLIPC_ROLE_APP
#define FLIPC_ROLE_ENGINE
#define FLIPC_ROLE_ENGINE_SHARD
#define FLIPC_ROLE_QUIESCENT
#endif

#define FLIPC_HOT_PATH(label) ((void)0)
#define FLIPC_HOT_PATH_IF(armed, label) ((void)0)
#define FLIPC_HOT_PATH_EXEMPT(reason) ((void)0)
#define FLIPC_BOUNDED_BY(expr) ((void)sizeof((expr)))
#define FLIPC_UNBOUNDED_WAIT(why) ((void)sizeof((why)))

extern "C" int usleep(unsigned int usec);

namespace flipc {

// Mirrors src/waitfree/single_writer.h's interface (names are what the
// auditor keys on; the implementation only has to compile).
template <typename T>
class SingleWriterCell {
 public:
  T Read() const { return rep_.load(std::memory_order_acquire); }
  T ReadRelaxed() const { return rep_.load(std::memory_order_relaxed); }
  void Publish(T value) { rep_.store(value, std::memory_order_release); }
  void StoreRelaxed(T value) { rep_.store(value, std::memory_order_relaxed); }

 private:
  std::atomic<T> rep_{};
};

}  // namespace flipc

// Shared-memory layouts the mini policy (mini_policy.json) governs.
struct Cursors {
  flipc::SingleWriterCell<unsigned long> release_count;  // app-owned cursor
  flipc::SingleWriterCell<unsigned long> process_count;  // engine-owned cursor
  flipc::SingleWriterCell<unsigned long> head_hint;      // engine-owned hint
};

struct Stats {
  flipc::SingleWriterCell<unsigned long> total;  // engine-owned counter
};

struct Cfg {
  flipc::SingleWriterCell<unsigned long> capacity;  // quiescent-only config
};

struct Hdr {
  unsigned long magic;      // plain, quiescent-only
  unsigned long free_head;  // plain, app-owned
};

// Cross-shard handoff cursors (shard_role_*.cc). Both are engine-side
// cells; the static auditor proves the engine-vs-app split, while the
// producer-vs-consumer SHARD split is a runtime property enforced by the
// boundary checker's shard-qualified declarations.
struct HandoffCursors {
  flipc::SingleWriterCell<unsigned long> handoff_tail;  // producer shard's cursor
  flipc::SingleWriterCell<unsigned long> handoff_head;  // consumer shard's cursor
};

#endif  // TOOLS_LINT_FIXTURES_STATIC_AUDIT_AUDIT_STUBS_H_
