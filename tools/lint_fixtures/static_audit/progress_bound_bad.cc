// Bounded-progress certification — a loop whose bound is real but not
// recognizable from the condition (the exit is data-dependent), missing
// the FLIPC_BOUNDED_BY annotation that progress_bound_clean.cc carries.
#include "audit_stubs.h"

int PopUntilFresh(const int* tags, int lap) {
  FLIPC_HOT_PATH("fixture-pop");
  int i = 0;
  // Bounded by two laps of the ring in reality, but the certifier cannot
  // see that from the condition alone.
  while (tags[i] != lap) {  // AUDIT-EXPECT: unbounded while loop in 'PopUntilFresh' reachable from wait-free entry point 'PopUntilFresh'
    ++i;
  }
  return i;
}
