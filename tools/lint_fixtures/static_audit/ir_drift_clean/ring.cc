// Protocol-IR drift — clean fixture: the IR export over this TU must be
// byte-identical to the checked-in expected_ir.json. Regenerate by
// running the selftest's drift helper over this group (see
// tools/lint_fixtures/static_audit/regen_expected_ir.py).
#include "audit_stubs.h"

struct MiniRing {
  Cursors cursors;

  FLIPC_ROLE_APP void Release() {
    FLIPC_HOT_PATH("fixture-ir-release");
    cursors.release_count.Publish(cursors.release_count.ReadRelaxed() + 1);
  }

  FLIPC_ROLE_ENGINE void Process() {
    cursors.head_hint.Publish(cursors.process_count.ReadRelaxed());
    cursors.process_count.Publish(cursors.process_count.ReadRelaxed() + 1);
  }
};
