// Protocol-IR drift — bad fixture: expected_ir.json was captured BEFORE
// Process() moved its hint update after the cursor publish, so the access
// sequence in the export no longer matches the expectation. The checked-in
// expectation is intentionally stale; do not regenerate it.
#include "audit_stubs.h"

// AUDIT-EXPECT: protocol IR differs from expected_ir.json
struct MiniRing {
  Cursors cursors;

  FLIPC_ROLE_APP void Release() {
    FLIPC_HOT_PATH("fixture-ir-release");
    cursors.release_count.Publish(cursors.release_count.ReadRelaxed() + 1);
  }

  FLIPC_ROLE_ENGINE void Process() {
    cursors.process_count.Publish(cursors.process_count.ReadRelaxed() + 1);
    cursors.head_hint.Publish(cursors.process_count.ReadRelaxed());
  }
};
