// Rule 2 (memory-order policy) — conforming code the auditor must accept.
#include "audit_stubs.h"

struct Queue {
  Cursors cursors;

  // Cursor publication is a release store; the owner may read itself
  // relaxed.
  FLIPC_ROLE_APP void ProperRelease() {
    cursors.release_count.Publish(cursors.release_count.ReadRelaxed() + 1);
  }

  // Cross-role cursor reads take acquire.
  FLIPC_ROLE_ENGINE unsigned long ProperPoll() {
    return cursors.release_count.Read();
  }

  // hint_cursor tolerates cross-role relaxed reads (a stale hint only costs
  // a retry, never correctness).
  FLIPC_ROLE_APP unsigned long HintPeek() {
    return cursors.head_hint.ReadRelaxed();
  }
};

// Raw std::atomic outside the policy: every access must still name its
// order explicitly.
struct Raw {
  std::atomic<unsigned long> word;

  void ExplicitStore() { word.store(1, std::memory_order_release); }
  unsigned long ExplicitLoad() { return word.load(std::memory_order_acquire); }
  unsigned long ExplicitRmw() {
    return word.fetch_add(1, std::memory_order_relaxed);
  }
};
