// Rule 1 (role/ownership) — conforming code the auditor must accept:
// owner-role writes, closure-propagated roles, quiescent initialization,
// struct-alias plain writes, and the peer handoff exemption.
#include "audit_stubs.h"

struct Queue {
  Cursors cursors;

  // Direct owner-role writes.
  FLIPC_ROLE_APP void Release() {
    cursors.release_count.Publish(cursors.release_count.ReadRelaxed() + 1);
  }

  FLIPC_ROLE_ENGINE void AdvanceProcess() {
    cursors.process_count.Publish(cursors.process_count.ReadRelaxed() + 1);
  }

  // The role must propagate through the call graph: BumpRelease carries no
  // annotation but is reached only from the app root below.
  void BumpRelease() {
    cursors.release_count.Publish(cursors.release_count.ReadRelaxed() + 1);
  }

  FLIPC_ROLE_APP void Send() { BumpRelease(); }

  // Setup code may write both sides while the structure is quiescent.
  FLIPC_ROLE_QUIESCENT void Reset() {
    cursors.release_count.StoreRelaxed(0);
    cursors.process_count.StoreRelaxed(0);
  }
};

struct Setup {
  Cfg cfg;

  FLIPC_ROLE_QUIESCENT void Configure() { cfg.capacity.StoreRelaxed(64); }
};

// Member alias: View::release_ maps to Cursors.release_count.
struct View {
  flipc::SingleWriterCell<unsigned long>* release_;

  FLIPC_ROLE_APP void Bump() { release_->Publish(1); }
};

// Struct alias: hdr_-> resolves members against Hdr.*.
struct Box {
  Hdr* hdr_;

  FLIPC_ROLE_QUIESCENT void Init() { hdr_->magic = 0x464c4950; }
  FLIPC_ROLE_APP void Alloc() { hdr_->free_head = 1; }
};

// `peer` alternates writers by protocol (handoff), so an unresolved cell
// write through it is exempt.
struct Msg {
  flipc::SingleWriterCell<unsigned long> peer;

  void Handoff() { peer.Publish(7); }
};
