// Pure cross-TU callee: fixed storage, constant-bounded loop, and one
// FLIPC_HOT_PATH_EXEMPT region showing the closure honors exemptions in
// callees (the checker bookkeeping idiom from src/waitfree).
#include "audit_stubs.h"

namespace {
constexpr int kSlots = 8;
int g_scratch[kSlots];
}  // namespace

int RefillCache(int want) {
  for (int i = 0; i < kSlots; ++i) {
    g_scratch[i] = want + i;
  }
  {
    // Diagnostic-only bookkeeping may take slow paths; the exemption
    // suspends the caller's armed scope, so the closure skips this region.
    FLIPC_HOT_PATH_EXEMPT("fixture: diagnostics bookkeeping");
    int* note = new int(want);
    delete note;
  }
  return g_scratch[0];
}
