// Interprocedural purity closure — clean counterpart of closure_purity_bad.
// The same cross-TU call shape, but the callee satisfies the closure
// obligations: no allocation, and its loop carries a recognized bound.
#include "audit_stubs.h"

int RefillCache(int want);

int Transmit(int want) {
  FLIPC_HOT_PATH("fixture-crosstu-entry");
  return RefillCache(want);
}
