// Bounded-progress certification — unannotated retry loops inside a
// wait-free entry point. Neither loop has a recognized trip bound, a
// FLIPC_BOUNDED_BY annotation, or an FLIPC_UNBOUNDED_WAIT park marker.
#include "audit_stubs.h"

int SpinForDoorbell(const bool* ready) {
  FLIPC_HOT_PATH("fixture-retry");
  while (!*ready) {  // AUDIT-EXPECT: unbounded while loop in 'SpinForDoorbell' reachable from wait-free entry point 'SpinForDoorbell'
  }
  return 1;
}

int DrainForever(const bool* ready) {
  FLIPC_HOT_PATH("fixture-forever");
  for (;;) {  // AUDIT-EXPECT: unbounded forever loop in 'DrainForever' reachable from wait-free entry point 'DrainForever'
    if (*ready) {
      return 1;
    }
  }
}
