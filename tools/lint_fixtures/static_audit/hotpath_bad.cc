// Rule 3 (hot-path purity) — seeded violations the auditor must reject.
#include "audit_stubs.h"

int Allocates(int x) {
  FLIPC_HOT_PATH("fixture-alloc");
  if (x == 1) {
    int* scratch = new int(3);  // AUDIT-EXPECT: dynamic allocation (new)
    delete scratch;             // AUDIT-EXPECT: dynamic deallocation (delete)
  }
  return x;
}

int Blocks(int x) {
  FLIPC_HOT_PATH("fixture-block");
  if (x == 2) {
    std::mutex m;  // AUDIT-EXPECT: std::mutex in a hot-path scope
    (void)m;
  }
  if (x == 3) {
    usleep(1);  // AUDIT-EXPECT: blocking call usleep()
  }
  return x;
}

int Unwinds(int x) {
  FLIPC_HOT_PATH("fixture-throw");
  try {  // AUDIT-EXPECT: try-block
    if (x == 4) {
      throw x;  // AUDIT-EXPECT: exception throw
    }
  } catch (...) {  // AUDIT-EXPECT: catch handler
    return -1;
  }
  return x;
}
