// Rule 2 (memory-order policy) — seeded violations the auditor must reject.
#include "audit_stubs.h"

struct Queue {
  Cursors cursors;

  // A relaxed store never publishes the message payload written before it.
  FLIPC_ROLE_APP void SloppyRelease() {
    cursors.release_count.StoreRelaxed(1);  // AUDIT-EXPECT: must be written with Publish()
  }

  // A relaxed cross-role read of a cursor drops the acquire edge pairing
  // with the owner's release.
  FLIPC_ROLE_ENGINE unsigned long SloppyPoll() {
    return cursors.release_count.ReadRelaxed();  // AUDIT-EXPECT: must use Read() (acquire)
  }
};

struct Raw {
  std::atomic<unsigned long> word;

  // Defaulted order means an accidental (and expensive) seq_cst fence.
  void DefaultOrder() {
    word.store(1);  // AUDIT-EXPECT: defaulted memory_order
  }

  // Explicit seq_cst is confined to the Peterson lock's file.
  void StrayseqCst() {
    word.store(1, std::memory_order_seq_cst);  // AUDIT-EXPECT: memory_order_seq_cst outside
  }
};
