#!/usr/bin/env python3
"""Regenerate expected_ir.json for the ir_drift_* fixture groups.

The selftest byte-compares the tokparse IR export over each group against
its checked-in expected_ir.json (the protocol-drift rule's fixture). After
deliberately changing a group's .cc files, rerun this script from the repo
root; ir_drift_bad's expectation is NOT regenerated — it is intentionally
stale so the drift finding fires.
"""
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", ".."))

from flipc_static_audit import flipc_static_audit as audit  # noqa: E402

GROUPS = ["ir_drift_clean"]

policy = audit.load_policy(os.path.join(HERE, "mini_policy.json"))
for group in GROUPS:
    gdir = os.path.join(HERE, group)
    files = [
        (f"{group}/{f}", os.path.join(gdir, f))
        for f in sorted(os.listdir(gdir))
        if f.endswith(".cc")
    ]
    facts, _ = audit.gather_facts(files, "tokparse", None, ".", None)
    ir = audit.merge_facts(facts)
    text = audit.protocol_ir_text(audit.build_protocol_ir(ir, policy, None))
    out = os.path.join(gdir, "expected_ir.json")
    with open(out, "w", encoding="utf-8") as f:
        f.write(text)
    print(f"wrote {out}")
