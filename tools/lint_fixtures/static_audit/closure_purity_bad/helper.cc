// Interprocedural purity closure — the CALLEE translation unit. Nothing
// here arms a hot scope, so the per-TU hot-path pass sees no violation;
// the impurities and the park site are charged to the hot scope in
// entry.cc through the closure.
#include "audit_stubs.h"

int RefillCache(int want) {
  int* scratch = new int[8];  // AUDIT-EXPECT: hot-closure: dynamic allocation (new) in 'RefillCache'
  scratch[0] = want;
  const int head = scratch[0];
  delete[] scratch;  // AUDIT-EXPECT: hot-closure: dynamic deallocation (delete) in 'RefillCache'
  return head;
}

void ParkUntilSpace(const bool* full) {
  FLIPC_UNBOUNDED_WAIT("fixture: waits on the other side");
  while (*full) {  // AUDIT-EXPECT: FLIPC_UNBOUNDED_WAIT park site in 'ParkUntilSpace' is reachable from wait-free entry point 'Transmit'
  }
}
