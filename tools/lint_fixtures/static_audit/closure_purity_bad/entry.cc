// Interprocedural purity closure — the ENTRY translation unit. The hot
// scope below is pure in THIS file; the violations live in helper.cc,
// reachable only through the cross-TU call graph. A per-TU auditor passes
// this file; the whole-program certifier must not.
#include "audit_stubs.h"

int RefillCache(int want);
void ParkUntilSpace(const bool* full);

int Transmit(int want, const bool* full) {
  FLIPC_HOT_PATH("fixture-crosstu-entry");
  ParkUntilSpace(full);
  return RefillCache(want);
}
