// Shard-qualified roles (sharded engine, DESIGN.md §12) — conforming code
// the auditor must accept. FLIPC_ROLE_ENGINE_SHARD statically means "engine
// side": the auditor proves no application closure touches the handoff
// cursors, while the producer-vs-consumer shard confinement is a runtime
// property the boundary checker's shard-qualified declarations enforce.
#include "audit_stubs.h"

struct HandoffRing {
  HandoffCursors cursors;

  // Producer shard: publishes its tail mirror after a push.
  FLIPC_ROLE_ENGINE_SHARD void Push() {
    cursors.handoff_tail.Publish(cursors.handoff_tail.ReadRelaxed() + 1);
  }

  // Consumer shard: returns the slot after moving the entry out.
  FLIPC_ROLE_ENGINE_SHARD void Pop() {
    cursors.handoff_head.Publish(cursors.handoff_head.ReadRelaxed() + 1);
  }

  // The shard role propagates through the call graph like the others:
  // AdvanceHead carries no annotation but is reached only from Pop2 below.
  void AdvanceHead() {
    cursors.handoff_head.Publish(cursors.handoff_head.ReadRelaxed() + 1);
  }

  FLIPC_ROLE_ENGINE_SHARD void Pop2() { AdvanceHead(); }

  // Construction zeroes both sides while the ring is quiescent.
  FLIPC_ROLE_QUIESCENT void Reset() {
    cursors.handoff_tail.StoreRelaxed(0);
    cursors.handoff_head.StoreRelaxed(0);
  }

  // Either side may read the other's cursor (full/empty checks).
  FLIPC_ROLE_ENGINE_SHARD unsigned long Pending() {
    return cursors.handoff_tail.Read() - cursors.handoff_head.Read();
  }
};
