// Park sites and wait-freedom — FLIPC_UNBOUNDED_WAIT marks a legal park
// site ONLY outside hot scopes. Annotating a wait inside an armed
// hot-path scope is a contradiction (the scope claims wait-freedom), and
// the certifier rejects it rather than treating the annotation as a
// waiver.
#include "audit_stubs.h"

int AcquireSlow(const bool* ready) {
  FLIPC_HOT_PATH("fixture-wait-in-hot");
  FLIPC_UNBOUNDED_WAIT("fixture: annotated wait inside an armed scope");  // AUDIT-EXPECT: FLIPC_UNBOUNDED_WAIT park site inside a hot-path scope
  while (!*ready) {
  }
  return 1;
}
