// flipc_inspect — dump the state of a communication buffer.
//
// The communication buffer is the system's whole state: endpoints, queues,
// cursors, drop counters, telemetry, free lists. Because the layout is
// offsets-only, any process that can map the region can audit a live system
// without stopping it (all reads go through the same wait-free cells the
// engine uses). Usage:
//
//   flipc_inspect [flags] /shm_name   inspect a POSIX shm communication buffer
//   flipc_inspect [flags] --demo      create a demo buffer, mutate it, dump it
//
// Flags:
//   --metrics       per-endpoint telemetry table plus consistency checks:
//                   every counter identity the library and engine maintain
//                   (api counters vs queue cursors, engine counters vs
//                   processed totals) is re-derived and reported [OK] or
//                   [MISMATCH]. Exit status 1 on any mismatch, so CI can
//                   gate on it.
//   --trace[=PATH]  demo mode: record a short API/engine event sequence in
//                   a TraceRing (demonstrating the enable flag) and export
//                   it as Chrome trace-event JSON to PATH (stdout without
//                   PATH). With an shm target, explains that trace rings
//                   are process-local host memory.
//   --watch[=SECS]  redraw every SECS seconds (default 1) until interrupted.
//
// Exit status: 0 on success, 1 on usage/attach errors or metric mismatches.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/table.h"
#include "src/base/trace.h"
#include "src/shm/comm_buffer.h"
#include "src/shm/posix_region.h"
#include "src/shm/telemetry_audit.h"
#include "src/waitfree/boundary_check.h"

namespace flipc {
namespace {

struct InspectOptions {
  bool metrics = false;
  bool trace = false;
  bool watch = false;
  bool demo = false;
  std::string trace_path;
  unsigned watch_seconds = 1;
  std::string target;
};

const char* TypeName(shm::EndpointType type) {
  switch (type) {
    case shm::EndpointType::kInactive:
      return "-";
    case shm::EndpointType::kSend:
      return "send";
    case shm::EndpointType::kReceive:
      return "receive";
  }
  return "?";
}

void Dump(shm::CommBuffer& comm) {
  const shm::CommBufferHeader& header = comm.header();
  std::printf("communication buffer @ %p\n", static_cast<void*>(comm.base()));
  std::printf("  magic            0x%016llx (version %u)\n",
              static_cast<unsigned long long>(header.magic), header.version);
  std::printf("  total size       %llu bytes\n",
              static_cast<unsigned long long>(header.total_size));
  std::printf("  message size     %u bytes (%u payload + 8 internal)\n",
              header.message_size, comm.payload_size());
  std::printf("  buffers          %u total, %u free\n", header.buffer_count,
              comm.FreeBufferCount());
  std::printf("  endpoints        %u active of %u\n", header.endpoints_active,
              header.max_endpoints);
  std::printf("  shards           %u x %u endpoints\n", header.shard_count,
              header.endpoints_per_shard);
  std::printf("  cell arena       %u used of %u\n\n", header.cells_used,
              header.cell_arena_size);

  TextTable table({"ep", "type", "depth", "queued", "processable", "ready", "drops",
                   "processed", "prio", "restrict", "rate ns", "class", "deadline",
                   "bucket"});
  for (std::uint32_t i = 0; i < header.max_endpoints; ++i) {
    const shm::EndpointRecord& record = comm.endpoint(i);
    if (!record.IsActive()) {
      continue;
    }
    waitfree::BufferQueueView queue = comm.queue(i);
    const Address restrict_to = Address::FromPacked(record.allowed_peer.Read());
    char restrict_text[32] = "-";
    if (restrict_to.valid()) {
      std::snprintf(restrict_text, sizeof(restrict_text), "%u:%u", restrict_to.node(),
                    restrict_to.endpoint());
    }
    // Bucket column: "capacity/refill-ns" when configured, "-" otherwise.
    char bucket_text[32] = "-";
    if (record.bucket_capacity.Read() != 0) {
      std::snprintf(bucket_text, sizeof(bucket_text), "%u/%u",
                    record.bucket_capacity.Read(), record.bucket_refill_ns.Read());
    }
    table.AddRow({std::to_string(i), TypeName(record.Type()),
                  std::to_string(record.queue_capacity.Read()),
                  std::to_string(queue.Size()), std::to_string(queue.ProcessableCount()),
                  std::to_string(queue.AcquirableCount()),
                  std::to_string(record.DropCount()),
                  std::to_string(record.processed_total.Read()),
                  std::to_string(record.priority.Read()), restrict_text,
                  std::to_string(record.min_send_interval_ns.Read()),
                  std::to_string(record.qos_class.Read()),
                  std::to_string(record.deadline_ns.Read()), bucket_text});
  }
  std::printf("%s", table.ToString().c_str());
}

// The telemetry view plus the counter identities (telemetry_block.h):
//
//   send endpoint     low32(api_sends)    == release_count
//                     low32(api_reclaims) == acquire_count
//                     engine_transmits + engine_rejects == processed_total
//   receive endpoint  low32(api_posts)    == release_count
//                     low32(api_receives) == acquire_count
//                     engine_deliveries   == processed_total
//
// The identities hold for any buffer driven through the Endpoint API and
// the engine (at quiescence — mid-operation reads can be one apart on a
// live system). A buffer mutated by raw queue writes that skip the
// telemetry helpers will mismatch — which is exactly what the check is
// for. Returns the number of mismatching endpoints.
int MetricsDump(shm::CommBuffer& comm, bool quiescent) {
  int mismatches = 0;
  TextTable table({"ep", "type", "sends", "recvs", "posts", "reclaims", "rel.rej", "rings",
                   "ring.full", "eng.tx", "eng.dlv", "eng.rej", "q.hw", "dl.miss",
                   "gap.max", "defer", "drops", "check"});
  for (std::uint32_t i = 0; i < comm.max_endpoints(); ++i) {
    const shm::EndpointRecord& record = comm.endpoint(i);
    if (!record.IsActive()) {
      continue;
    }
    const shm::TelemetryBlock& t = comm.telemetry(i);
    // Shared with the failure-scenario tests (src/shm/telemetry_audit.h),
    // so what CI gates on and what recovery is tested against is one check.
    const bool ok = shm::CheckEndpointIdentities(comm, i, /*failures=*/nullptr);
    if (!ok) {
      ++mismatches;
    }
    table.AddRow({std::to_string(i), TypeName(record.Type()),
                  std::to_string(t.api_sends.Read()), std::to_string(t.api_receives.Read()),
                  std::to_string(t.api_posts.Read()), std::to_string(t.api_reclaims.Read()),
                  std::to_string(t.releases_rejected.Read()),
                  std::to_string(t.doorbell_rings.Read()),
                  std::to_string(t.doorbell_full.Read()),
                  std::to_string(t.engine_transmits.Read()),
                  std::to_string(t.engine_deliveries.Read()),
                  std::to_string(t.engine_rejects.Read()),
                  std::to_string(t.queue_depth_high_water.Read()),
                  std::to_string(t.deadline_misses.Read()),
                  std::to_string(t.max_service_gap_ns.Read()),
                  std::to_string(t.throttle_deferrals.Read()),
                  std::to_string(record.DropCount()), ok ? "[OK]" : "[MISMATCH]"});
  }
  std::printf("\nper-endpoint telemetry (comm-buffer resident):\n%s", table.ToString().c_str());
  if (mismatches != 0 && !quiescent) {
    std::printf("note: live system — counters read mid-operation may be transiently off "
                "by one\n");
  }
  return mismatches;
}

// Per-shard subtotals of the same counters plus an aggregate row. The
// identities are linear, so each one that holds per endpoint also holds
// summed over any endpoint set — checked here per shard AND for the whole
// buffer (the API-side identities compare low 32 bits, because the record
// cursors are 32-bit and congruence survives summation).
int ShardMetricsDump(shm::CommBuffer& comm) {
  struct ShardSums {
    std::uint64_t active = 0;
    std::uint64_t api_sends = 0, api_reclaims = 0, release_send = 0, acquire_send = 0;
    std::uint64_t api_posts = 0, api_receives = 0, release_recv = 0, acquire_recv = 0;
    std::uint64_t engine_tx = 0, engine_dlv = 0, engine_rej = 0;
    std::uint64_t processed_send = 0, processed_recv = 0, drops = 0;

    void Accumulate(const ShardSums& other) {
      active += other.active;
      api_sends += other.api_sends;
      api_reclaims += other.api_reclaims;
      release_send += other.release_send;
      acquire_send += other.acquire_send;
      api_posts += other.api_posts;
      api_receives += other.api_receives;
      release_recv += other.release_recv;
      acquire_recv += other.acquire_recv;
      engine_tx += other.engine_tx;
      engine_dlv += other.engine_dlv;
      engine_rej += other.engine_rej;
      processed_send += other.processed_send;
      processed_recv += other.processed_recv;
      drops += other.drops;
    }

    bool Consistent() const {
      const auto low32 = [](std::uint64_t x) { return static_cast<std::uint32_t>(x); };
      return low32(api_sends) == low32(release_send) &&
             low32(api_reclaims) == low32(acquire_send) &&
             low32(api_posts) == low32(release_recv) &&
             low32(api_receives) == low32(acquire_recv) &&
             engine_tx + engine_rej == processed_send &&
             engine_dlv == processed_recv;
    }
  };

  const std::uint32_t shards = comm.shard_count();
  std::vector<ShardSums> sums(shards);
  for (std::uint32_t i = 0; i < comm.max_endpoints(); ++i) {
    const shm::EndpointRecord& record = comm.endpoint(i);
    if (!record.IsActive()) {
      continue;
    }
    ShardSums& s = sums[comm.shard_of(i)];
    const shm::TelemetryBlock& t = comm.telemetry(i);
    ++s.active;
    s.drops += record.DropCount();
    if (record.Type() == shm::EndpointType::kSend) {
      s.api_sends += t.api_sends.Read();
      s.api_reclaims += t.api_reclaims.Read();
      s.release_send += record.release_count.Read();
      s.acquire_send += record.acquire_count.Read();
      s.engine_tx += t.engine_transmits.Read();
      s.engine_rej += t.engine_rejects.Read();
      s.processed_send += record.processed_total.Read();
    } else {
      s.api_posts += t.api_posts.Read();
      s.api_receives += t.api_receives.Read();
      s.release_recv += record.release_count.Read();
      s.acquire_recv += record.acquire_count.Read();
      s.engine_dlv += t.engine_deliveries.Read();
      s.processed_recv += record.processed_total.Read();
    }
  }

  int mismatches = 0;
  ShardSums total;
  TextTable table({"shard", "eps", "active", "sends", "recvs", "posts", "reclaims",
                   "eng.tx", "eng.dlv", "eng.rej", "drops", "check"});
  const auto add_row = [&](const std::string& name, std::uint64_t slots,
                           const ShardSums& s) {
    const bool ok = s.Consistent();
    if (!ok) {
      ++mismatches;
    }
    table.AddRow({name, std::to_string(slots), std::to_string(s.active),
                  std::to_string(s.api_sends), std::to_string(s.api_receives),
                  std::to_string(s.api_posts), std::to_string(s.api_reclaims),
                  std::to_string(s.engine_tx), std::to_string(s.engine_dlv),
                  std::to_string(s.engine_rej), std::to_string(s.drops),
                  ok ? "[OK]" : "[MISMATCH]"});
  };
  for (std::uint32_t shard = 0; shard < shards; ++shard) {
    total.Accumulate(sums[shard]);
    add_row(std::to_string(shard),
            comm.shard_end_endpoint(shard) - comm.shard_first_endpoint(shard), sums[shard]);
  }
  add_row("all", comm.max_endpoints(), total);
  std::printf("\nper-shard telemetry subtotals:\n%s", table.ToString().c_str());
  return mismatches;
}

// Demonstrates the flight recorder: the enable flag (disabled records cost
// one branch and are dropped), a short API/engine event sequence, and the
// Chrome trace-event export.
int TraceDemo(const std::string& path) {
  TraceRing ring(16);
  ring.set_enabled(false);
  ring.Record(100, TraceEvent::kApiSend, 0);  // Dropped: ring disabled.
  ring.set_enabled(true);
  ring.Record(1000, TraceEvent::kApiSend, 1, 5);
  ring.Record(1450, TraceEvent::kEngineSend, 1, 5);
  ring.Record(2100, TraceEvent::kEngineDeliver, 0, 2);
  ring.Record(2150, TraceEvent::kEngineDrop, 0);
  ring.Record(2300, TraceEvent::kApiReceive, 0, 2);

  const std::string json = ToChromeTraceJson(ring);
  if (path.empty()) {
    std::printf("\ntrace (%llu recorded; 1 dropped while disabled):\n%s\n",
                static_cast<unsigned long long>(ring.recorded()), json.c_str());
    return 0;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("\ntrace: %zu bytes of Chrome trace JSON written to %s "
              "(load via chrome://tracing or ui.perfetto.dev)\n",
              json.size(), path.c_str());
  return 0;
}

int InspectOnce(shm::CommBuffer& comm, const InspectOptions& options, bool quiescent) {
  Dump(comm);
  int failures = 0;
  if (options.metrics) {
    failures += MetricsDump(comm, quiescent);
    failures += ShardMetricsDump(comm);
  }
  return failures;
}

int InspectShm(const InspectOptions& options) {
  auto region = shm::PosixShmRegion::Open(options.target);
  if (!region.ok()) {
    std::fprintf(stderr, "error: cannot open shm region '%s' (%s)\n", options.target.c_str(),
                 region.status().ToString().c_str());
    return 1;
  }
  auto comm = shm::CommBuffer::Attach((*region)->base(), (*region)->size());
  if (!comm.ok()) {
    std::fprintf(stderr, "error: region '%s' is not a FLIPC communication buffer (%s)\n",
                 options.target.c_str(), comm.status().ToString().c_str());
    return 1;
  }
  if (options.trace) {
    std::printf("note: --trace targets host-memory rings (TraceRing holds process-local\n"
                "pointers and cannot live in the shared region); attach a ring in the\n"
                "owning process via Domain::SetTrace / MessagingEngine::SetTrace and\n"
                "export with ToChromeTraceJson. `--demo --trace` shows the output.\n");
  }
  int failures = InspectOnce(**comm, options, /*quiescent=*/false);
  while (options.watch) {
    std::this_thread::sleep_for(std::chrono::seconds(options.watch_seconds));
    std::printf("\n---- watch: +%us ----\n", options.watch_seconds);
    failures = InspectOnce(**comm, options, /*quiescent=*/false);
  }
  return failures == 0 ? 0 : 1;
}

int Demo(const InspectOptions& options) {
  shm::CommBufferConfig config;
  config.message_size = 128;
  config.buffer_count = 32;
  config.max_endpoints = 8;
  auto comm = shm::CommBuffer::Create(config);
  if (!comm.ok()) {
    return 1;
  }

  shm::CommBuffer::EndpointParams rx;
  rx.type = shm::EndpointType::kReceive;
  rx.queue_capacity = 8;
  auto rx_index = (*comm)->AllocateEndpoint(rx);

  shm::CommBuffer::EndpointParams tx;
  tx.type = shm::EndpointType::kSend;
  tx.queue_capacity = 4;
  tx.priority = 9;
  tx.allowed_peer = Address(1, 0).packed();
  tx.min_send_interval_ns = 50'000;
  tx.qos_class = 2;
  tx.deadline_ns = 250'000;
  tx.bucket_capacity = 4;
  tx.bucket_refill_ns = 100'000;
  auto tx_index = (*comm)->AllocateEndpoint(tx);
  if (!rx_index.ok() || !tx_index.ok()) {
    return 1;
  }

  // Stage state exactly the way the library and the engine would — queue
  // ops, processed totals and telemetry together, under the proper boundary
  // roles — so the --metrics identities hold by construction. A regression
  // in the telemetry offsets or helpers shows up here as [MISMATCH].
  {
    waitfree::ScopedBoundaryRole app(waitfree::Writer::kApplication);
    // Application: post two receive buffers, send one message.
    for (int i = 0; i < 2; ++i) {
      auto buffer = (*comm)->AllocateBuffer();
      (*comm)->queue(*rx_index).Release(*buffer);
      (*comm)->telemetry(*rx_index).RecordApiPost();
    }
    auto buffer = (*comm)->AllocateBuffer();
    (*comm)->msg(*buffer).header->set_peer_address(Address(1, 0));
    (*comm)->queue(*tx_index).Release(*buffer);
    (*comm)->telemetry(*tx_index).RecordApiSend();
    (*comm)->telemetry(*tx_index).RecordDoorbell((*comm)->doorbell_ring().Ring(*tx_index));
  }
  {
    waitfree::ScopedBoundaryRole engine(waitfree::Writer::kEngine);
    // Engine: deliver one inbound message, drop one, transmit the send.
    shm::EndpointRecord& rx_record = (*comm)->endpoint(*rx_index);
    shm::TelemetryBlock& rx_telemetry = (*comm)->telemetry(*rx_index);
    rx_telemetry.NoteQueueDepth((*comm)->queue(*rx_index).ProcessableCount());
    (*comm)->queue(*rx_index).AdvanceProcess();
    rx_record.processed_total.Publish(rx_record.processed_total.ReadRelaxed() + 1);
    rx_telemetry.RecordEngineDelivery();
    rx_record.RecordDrop();

    shm::EndpointRecord& tx_record = (*comm)->endpoint(*tx_index);
    shm::TelemetryBlock& tx_telemetry = (*comm)->telemetry(*tx_index);
    tx_telemetry.NoteQueueDepth((*comm)->queue(*tx_index).ProcessableCount());
    tx_telemetry.RecordEngineTransmit();
    (*comm)->queue(*tx_index).AdvanceProcess();
    tx_record.processed_total.Publish(tx_record.processed_total.ReadRelaxed() + 1);
  }

  int failures = InspectOnce(**comm, options, /*quiescent=*/true);
  if (options.trace) {
    failures += TraceDemo(options.trace_path);
  }
  return failures == 0 ? 0 : 1;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--metrics] [--trace[=PATH]] [--watch[=SECONDS]] "
               "</shm_name | --demo>\n",
               argv0);
  return 1;
}

int Run(int argc, char** argv) {
  InspectOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      options.demo = true;
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      options.trace = true;
      options.trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--watch") {
      options.watch = true;
    } else if (arg.rfind("--watch=", 0) == 0) {
      options.watch = true;
      const long seconds = std::atol(arg.c_str() + std::strlen("--watch="));
      options.watch_seconds = seconds < 1 ? 1 : static_cast<unsigned>(seconds);
    } else if (!arg.empty() && arg[0] != '-') {
      options.target = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.demo == !options.target.empty()) {
    return Usage(argv[0]);  // Need exactly one of --demo / shm name.
  }
  return options.demo ? Demo(options) : InspectShm(options);
}

}  // namespace
}  // namespace flipc

int main(int argc, char** argv) { return flipc::Run(argc, argv); }
