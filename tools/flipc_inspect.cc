// flipc_inspect — dump the state of a communication buffer.
//
// The communication buffer is the system's whole state: endpoints, queues,
// cursors, drop counters, free lists. Because the layout is offsets-only,
// any process that can map the region can audit a live system without
// stopping it (all reads go through the same wait-free cells the engine
// uses). Usage:
//
//   flipc_inspect /shm_name        inspect a POSIX shm communication buffer
//   flipc_inspect --demo           create a demo buffer, mutate it, dump it
//
// Exit status: 0 on success, 1 on usage or attach errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/base/table.h"
#include "src/shm/comm_buffer.h"
#include "src/shm/posix_region.h"

namespace flipc {
namespace {

const char* TypeName(shm::EndpointType type) {
  switch (type) {
    case shm::EndpointType::kInactive:
      return "-";
    case shm::EndpointType::kSend:
      return "send";
    case shm::EndpointType::kReceive:
      return "receive";
  }
  return "?";
}

void Dump(shm::CommBuffer& comm) {
  const shm::CommBufferHeader& header = comm.header();
  std::printf("communication buffer @ %p\n", static_cast<void*>(comm.base()));
  std::printf("  magic            0x%016llx (version %u)\n",
              static_cast<unsigned long long>(header.magic), header.version);
  std::printf("  total size       %llu bytes\n",
              static_cast<unsigned long long>(header.total_size));
  std::printf("  message size     %u bytes (%u payload + 8 internal)\n",
              header.message_size, comm.payload_size());
  std::printf("  buffers          %u total, %u free\n", header.buffer_count,
              comm.FreeBufferCount());
  std::printf("  endpoints        %u active of %u\n", header.endpoints_active,
              header.max_endpoints);
  std::printf("  cell arena       %u used of %u\n\n", header.cells_used,
              header.cell_arena_size);

  TextTable table({"ep", "type", "depth", "queued", "processable", "ready", "drops",
                   "processed", "prio", "restrict", "rate ns"});
  for (std::uint32_t i = 0; i < header.max_endpoints; ++i) {
    const shm::EndpointRecord& record = comm.endpoint(i);
    if (!record.IsActive()) {
      continue;
    }
    waitfree::BufferQueueView queue = comm.queue(i);
    const Address restrict_to = Address::FromPacked(record.allowed_peer.Read());
    char restrict_text[32] = "-";
    if (restrict_to.valid()) {
      std::snprintf(restrict_text, sizeof(restrict_text), "%u:%u", restrict_to.node(),
                    restrict_to.endpoint());
    }
    table.AddRow({std::to_string(i), TypeName(record.Type()),
                  std::to_string(record.queue_capacity.Read()),
                  std::to_string(queue.Size()), std::to_string(queue.ProcessableCount()),
                  std::to_string(queue.AcquirableCount()),
                  std::to_string(record.DropCount()),
                  std::to_string(record.processed_total.Read()),
                  std::to_string(record.priority.Read()), restrict_text,
                  std::to_string(record.min_send_interval_ns.Read())});
  }
  std::printf("%s", table.ToString().c_str());
}

int InspectShm(const std::string& name) {
  auto region = shm::PosixShmRegion::Open(name);
  if (!region.ok()) {
    std::fprintf(stderr, "error: cannot open shm region '%s' (%s)\n", name.c_str(),
                 region.status().ToString().c_str());
    return 1;
  }
  auto comm = shm::CommBuffer::Attach((*region)->base(), (*region)->size());
  if (!comm.ok()) {
    std::fprintf(stderr, "error: region '%s' is not a FLIPC communication buffer (%s)\n",
                 name.c_str(), comm.status().ToString().c_str());
    return 1;
  }
  Dump(**comm);
  return 0;
}

int Demo() {
  shm::CommBufferConfig config;
  config.message_size = 128;
  config.buffer_count = 32;
  config.max_endpoints = 8;
  auto comm = shm::CommBuffer::Create(config);
  if (!comm.ok()) {
    return 1;
  }

  shm::CommBuffer::EndpointParams rx;
  rx.type = shm::EndpointType::kReceive;
  rx.queue_capacity = 8;
  auto rx_index = (*comm)->AllocateEndpoint(rx);

  shm::CommBuffer::EndpointParams tx;
  tx.type = shm::EndpointType::kSend;
  tx.queue_capacity = 4;
  tx.priority = 9;
  tx.allowed_peer = Address(1, 0).packed();
  tx.min_send_interval_ns = 50'000;
  auto tx_index = (*comm)->AllocateEndpoint(tx);
  if (!rx_index.ok() || !tx_index.ok()) {
    return 1;
  }

  // Stage some state: two posted receive buffers, one processed, one drop.
  for (int i = 0; i < 2; ++i) {
    auto buffer = (*comm)->AllocateBuffer();
    (*comm)->queue(*rx_index).Release(*buffer);
  }
  (*comm)->queue(*rx_index).AdvanceProcess();
  (*comm)->endpoint(*rx_index).RecordDrop();

  Dump(**comm);
  return 0;
}

}  // namespace
}  // namespace flipc

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s </shm_name | --demo>\n", argv[0]);
    return 1;
  }
  const std::string arg = argv[1];
  if (arg == "--demo") {
    return flipc::Demo();
  }
  return flipc::InspectShm(arg);
}
