# Drift check between the wait-free sources and the committed protocol
# artifacts the certifier derives from them:
#   * tools/protocol_ir.json — the per-function protocol IR export;
#   * tests/generated_model_schedules.h — the model-check schedule seeds
#     generated from that IR.
# Run as a ctest (flipc_protocol_ir_drift); regenerate both with:
#
#   python3 tools/flipc_static_audit/flipc_static_audit.py \
#     --policy tools/ownership_policy.json --source-root . \
#     --emit-ir tools/protocol_ir.json \
#     --emit-schedules tests/generated_model_schedules.h
#
# Inputs: PYTHON, AUDIT_TOOL, POLICY, SOURCE_ROOT, COMMITTED_IR, FRESH_IR,
#         COMMITTED_SCHEDULES, FRESH_SCHEDULES.
execute_process(COMMAND ${PYTHON} ${AUDIT_TOOL}
                        --policy ${POLICY}
                        --source-root ${SOURCE_ROOT}
                        --frontend tokparse
                        --emit-ir ${FRESH_IR}
                        --emit-schedules ${FRESH_SCHEDULES}
                RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "flipc_static_audit failed (rc=${_rc}) while "
                      "re-deriving the protocol IR: fix the audit findings "
                      "(or a schedule_gen entry-point mismatch) first")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${COMMITTED_IR} ${FRESH_IR}
                RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "tools/protocol_ir.json drifted from the wait-free "
                      "sources; the protocol changed — review the diff, then "
                      "regenerate with flipc_static_audit --emit-ir "
                      "(fresh copy at ${FRESH_IR})")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${COMMITTED_SCHEDULES} ${FRESH_SCHEDULES}
                RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "tests/generated_model_schedules.h drifted from the "
                      "protocol IR; regenerate with flipc_static_audit "
                      "--emit-schedules (fresh copy at ${FRESH_SCHEDULES})")
endif()
