"""FLIPC static protocol auditor (see flipc_static_audit.py)."""
