#!/usr/bin/env python3
"""Unit test for the static auditor's content-hash fact cache.

Proves the invalidation contract gather_facts() documents: unchanged files
hit, any content change misses, the frontend and the extraction schema are
part of the key, equal findings come back from both paths, and a corrupt
cache entry falls through to a clean re-parse instead of an error.

Run from anywhere: python3 tools/flipc_static_audit/cache_selftest.py
Exit 0 on success, 1 on the first failed check.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile

sys.path.insert(
    0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

from flipc_static_audit import flipc_static_audit as audit  # noqa: E402

_SOURCE_V1 = """
#define FLIPC_HOT_PATH(label) ((void)0)
int Hot(int x) {
  FLIPC_HOT_PATH("cache-fixture");
  int* p = new int(x);
  delete p;
  return x;
}
"""

_SOURCE_V2 = _SOURCE_V1.replace('"cache-fixture"', '"cache-fixture-v2"')


def main() -> int:
    failures = 0

    def check(cond: bool, what: str) -> None:
        nonlocal failures
        if cond:
            print(f"cache_selftest: ok - {what}")
        else:
            print(f"cache_selftest: FAIL - {what}")
            failures += 1

    tmp = tempfile.mkdtemp(prefix="flipc_audit_cache_test_")
    try:
        src = os.path.join(tmp, "unit.cc")
        cache = os.path.join(tmp, "cache")
        with open(src, "w", encoding="utf-8") as f:
            f.write(_SOURCE_V1)
        paths = [("unit.cc", src)]

        facts1, stats = audit.gather_facts(paths, "tokparse", None, tmp, cache)
        check(stats == {"hits": 0, "misses": 1}, "cold cache misses")
        check(
            len(facts1[0][1].ir.functions) == 1
            and len(facts1[0][1].ir.functions[0].impurities) == 2,
            "parse extracted the fixture's two impurities",
        )

        facts2, stats = audit.gather_facts(paths, "tokparse", None, tmp, cache)
        check(stats == {"hits": 1, "misses": 0}, "unchanged file hits")
        check(
            audit._facts_to_doc(facts1[0][1]) == audit._facts_to_doc(facts2[0][1]),
            "cached facts equal parsed facts",
        )

        with open(src, "w", encoding="utf-8") as f:
            f.write(_SOURCE_V2)
        _, stats = audit.gather_facts(paths, "tokparse", None, tmp, cache)
        check(stats == {"hits": 0, "misses": 1}, "content change invalidates")
        _, stats = audit.gather_facts(paths, "tokparse", None, tmp, cache)
        check(stats == {"hits": 1, "misses": 0}, "new content re-cached")

        # The frontend is part of the key: a tokparse entry must never be
        # served to the clang frontend (their extraction could differ).
        key_tok = audit._cache_key("tokparse", "unit.cc", _SOURCE_V2.encode(), b"")
        key_clang = audit._cache_key("clang", "unit.cc", _SOURCE_V2.encode(), b"")
        check(key_tok != key_clang, "frontend is part of the cache key")

        # So is the extraction schema tag: bumping CACHE_SCHEMA orphans
        # every existing entry instead of deserializing stale shapes.
        orig_schema = audit.CACHE_SCHEMA
        try:
            audit.CACHE_SCHEMA = orig_schema + "-bumped"
            _, stats = audit.gather_facts(paths, "tokparse", None, tmp, cache)
            check(
                stats == {"hits": 0, "misses": 1}, "schema bump invalidates"
            )
        finally:
            audit.CACHE_SCHEMA = orig_schema

        # A corrupt entry is indistinguishable from a miss.
        cpath = os.path.join(
            cache, audit._cache_key("tokparse", "unit.cc", _SOURCE_V2.encode(), b"") + ".json"
        )
        check(os.path.exists(cpath), "cache entry lives at the derived key")
        with open(cpath, "w", encoding="utf-8") as f:
            f.write("{ truncated")
        facts3, stats = audit.gather_facts(paths, "tokparse", None, tmp, cache)
        check(
            stats == {"hits": 0, "misses": 1}
            and len(facts3[0][1].ir.functions) == 1,
            "corrupt entry falls through to re-parse",
        )
        _, stats = audit.gather_facts(paths, "tokparse", None, tmp, cache)
        check(stats == {"hits": 1, "misses": 0}, "re-parse repaired the entry")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    if failures:
        print(f"cache_selftest: {failures} failure(s)")
        return 1
    print("cache_selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
