#!/usr/bin/env python3
"""FLIPC static protocol auditor / wait-free certifier.

Statically proves, over ``src/base``, ``src/waitfree``, ``src/shm``,
``src/engine`` and ``src/flipc``, the properties the runtime guards only
check for executions that actually happen:

  1. **Role/ownership** — every write to a field listed in
     ``src/shm/ownership_layout.h`` occurs in a function reachable only
     from entry points of that field's owning role (``FLIPC_ROLE_APP`` /
     ``FLIPC_ROLE_ENGINE``), or from a ``FLIPC_ROLE_QUIESCENT`` setup
     closure when the field is marked quiescent-writable.
  2. **Memory-order policy** — every atomic access names an explicit
     ``memory_order`` matching the per-field ordering kind exported from
     the ownership tables; defaulted (seq_cst) orders are hard errors, and
     ``memory_order_seq_cst`` itself is confined to the Peterson lock.
  3. **Hot-path purity, interprocedural** — inside ``FLIPC_HOT_PATH``
     scopes: no new/delete/throw/try, no OS mutex/condvar types, no
     blocking libc calls — and the same for every function transitively
     reachable from such a scope through the cross-TU call graph (the
     purity CLOSURE; ``FLIPC_HOT_PATH_EXEMPT`` regions cut call edges and
     waive constructs, exactly as they suspend the runtime guards).
  4. **Bounded progress** — every loop reachable from a wait-free entry
     point (a hot-path scope) must have a recognizable constant/countdown
     trip bound, carry a ``FLIPC_BOUNDED_BY(expr)`` annotation naming its
     bound, or be a ``FLIPC_UNBOUNDED_WAIT`` park site — and park sites
     are hard errors inside hot scopes or anywhere in the hot closure.

The field policy is ``tools/ownership_policy.json``, generated from the
constexpr ownership tables by ``tools/flipc_ownership_export`` (a drift
ctest keeps the two in lockstep). Facts come from one of two
interchangeable frontends producing the same IR: libclang when installed
(``--frontend clang``), else a dependency-free token parser
(``--frontend tokparse``); ``--frontend auto`` picks the best available.

The auditor can also EXPORT the protocol it proved: ``--emit-ir`` writes
the per-function protocol IR (field, access kind, memory order, role,
shard qualifier, program order) for ``src/waitfree`` as JSON, and
``--emit-schedules`` generates the armed model-check schedule seeds for
the three rings from that IR (consumed by tests/model_check_test.cc; both
artifacts are checked in and drift-tested like ownership_policy.json).

Usage:
  flipc_static_audit.py --policy tools/ownership_policy.json \
      --source-root . [--compile-commands build/compile_commands.json] \
      [--frontend auto|clang|tokparse] [--cache-dir DIR] [--json PATH] \
      [--emit-ir PATH] [--emit-schedules PATH]
  flipc_static_audit.py --selftest tools/lint_fixtures/static_audit \
      [--frontend auto|clang|tokparse]

Exit status: 0 clean, 1 violations (or fixture expectation failures),
2 usage/environment errors.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys
from collections import defaultdict
from dataclasses import dataclass

if __package__ in (None, ""):  # running as a plain script
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from flipc_static_audit import (
        clang_frontend,
        cpp_lexer,
        hotpath_scan,
        schedule_gen,
        tokparse_frontend,
    )
    from flipc_static_audit.audit_ir import (
        ASSIGN_OP,
        CELL_READ_OPS,
        CELL_WRITE_OPS,
        ROLE_QUIESCENT,
        TranslationIR,
        ir_from_dict,
        ir_to_dict,
        op_is_write,
    )
else:
    from . import clang_frontend, cpp_lexer, hotpath_scan, schedule_gen, tokparse_frontend
    from .audit_ir import (
        ASSIGN_OP,
        CELL_READ_OPS,
        CELL_WRITE_OPS,
        ROLE_QUIESCENT,
        TranslationIR,
        ir_from_dict,
        ir_to_dict,
        op_is_write,
    )

AUDITED_DIRS = ("src/base", "src/engine", "src/flipc", "src/shm", "src/waitfree")
AUDITED_EXTS = (".h", ".cc")

# Bump whenever the IR shape or any rule-relevant extraction changes: the
# content-hash cache stores extracted facts keyed by (schema, frontend,
# file content), so a schema bump invalidates every entry at once.
CACHE_SCHEMA = "flipc-audit-v2"

# The protocol-IR export covers the wait-free protocol structures.
PROTOCOL_IR_PREFIX = "src/waitfree/"


# --------------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    rule: str  # role | order | policy | hot-path | hot-closure | progress | ir-drift
    file: str
    line: int | None  # None for whole-file findings
    function: str  # enclosing function qname, "" for file-level findings
    message: str

    def __str__(self) -> str:
        if self.line is None:
            return f"{self.file}: {self.rule}: {self.message}"
        return f"{self.file}:{self.line}: {self.rule}: {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": 0 if self.line is None else self.line,
            "function": self.function,
            "verdict": "violation",
            "message": self.message,
        }


# --------------------------------------------------------------------------
# Policy
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldPolicy:
    name: str  # "QueueCursors.release_count"
    writer: str  # "app" | "engine"
    quiescent: bool
    kind: str  # cursor|hint_cursor|flag|counter|config|config_publish|data_cell|rmw|plain

    @property
    def member(self) -> str:
        return self.name.split(".")[-1]


class Policy:
    def __init__(self, doc: dict) -> None:
        self.fields: dict[str, FieldPolicy] = {}
        self.by_member: dict[str, list[FieldPolicy]] = defaultdict(list)
        for row in doc["fields"]:
            f = FieldPolicy(
                name=row["name"],
                writer=row["writer"],
                quiescent=bool(row["quiescent"]),
                kind=row["kind"],
            )
            self.fields[f.name] = f
            self.by_member[f.member].append(f)
        # Aliases: "field" containing '.' maps a member variable straight to
        # a policy field; without '.' it maps a receiver variable to a
        # struct, prefixing subsequent member lookups.
        self.member_aliases: dict[tuple[str, str], str] = {}
        self.struct_aliases: dict[tuple[str, str], str] = {}
        for row in doc.get("aliases", []):
            key = (row["class"], row["member"])
            if "." in row["field"]:
                self.member_aliases[key] = row["field"]
            else:
                self.struct_aliases[key] = row["field"]
        self.handoff_members: set[str] = set(doc.get("handoff_members", []))
        seq = doc.get("seq_cst", {})
        self.seq_cst_file: str = seq.get("file", "")
        self.seq_cst_expected: int = int(seq.get("expected_count", 0))

    def _lookup_alias(self, table: dict, klass: str, key: str) -> str | None:
        return table.get((klass, key)) or table.get(("*", key))

    def resolve(self, klass: str, acc) -> tuple[FieldPolicy | None, bool]:
        """Maps an access to a FieldPolicy. Returns (field, via_struct_alias);
        ``via_struct_alias`` is True when the receiver named an aliased
        struct — then a None field means "unknown member of a governed
        struct", which is itself reportable for writes.

        Plain (non-atomic) assignments resolve ONLY through struct aliases:
        local structs routinely share member names with shared-memory
        layouts (e.g. ComputeLayout's ``layout.X = ...``), and plain stores
        to anything else cannot touch an atomic policy field anyway."""
        struct = self._lookup_alias(self.struct_aliases, klass, acc.receiver)
        if acc.op == ASSIGN_OP:
            if struct is None:
                return None, False
            return self.fields.get(struct + "." + acc.member), True
        target = self._lookup_alias(self.member_aliases, klass, acc.member)
        if target is not None:
            return self.fields.get(target), False
        if struct is not None:
            return self.fields.get(struct + "." + acc.member), True
        cands = self.by_member.get(acc.member, [])
        if len(cands) == 1:
            return cands[0], False
        if cands and all(
            (c.writer, c.kind, c.quiescent)
            == (cands[0].writer, cands[0].kind, cands[0].quiescent)
            for c in cands
        ):
            return cands[0], False
        return None, False


def load_policy(path: str) -> Policy:
    with open(path, "r", encoding="utf-8") as f:
        return Policy(json.load(f))


# --------------------------------------------------------------------------
# Rules engine: roles + memory orders
# --------------------------------------------------------------------------

_PUBLISH_ONLY_KINDS = {"cursor", "hint_cursor", "flag", "counter", "config_publish"}
_ACQUIRE_READ_KINDS = {"cursor", "flag"}


def _role_reachability(ir: TranslationIR) -> dict[int, set[str]]:
    """BFS role propagation over the simple-name call graph: reach[f] is the
    set of roles whose annotated entry points can reach f.

    Annotated functions are propagation BARRIERS: their declared roles are
    authoritative and caller roles do not flow through them. This is the
    division of labor with the runtime boundary detector — the annotation
    itself is validated dynamically (a thread of the wrong role entering an
    annotated entry point trips FLIPC_CHECK_SINGLE_WRITER), while the
    auditor proves the unannotated closure BETWEEN annotations writes only
    what the entry role owns. It is also what keeps the simple-name call
    graph sound in practice: ``wire_.Send()`` inside the engine must not
    drag the engine role into ``Endpoint::Send``'s app closure just because
    the methods share a name."""
    for fn in ir.functions:
        fn.roles |= ir.decl_roles.get((fn.klass, fn.simple), set())
    by_simple: dict[str, list] = defaultdict(list)
    for fn in ir.functions:
        by_simple[fn.simple].append(fn)
    reach: dict[int, set[str]] = {id(fn): set(fn.roles) for fn in ir.functions}
    work = [fn for fn in ir.functions if fn.roles]
    while work:
        fn = work.pop()
        roles = reach[id(fn)]
        for callee in fn.calls:
            for g in by_simple.get(callee, ()):
                if g.roles:
                    continue  # annotation barrier: declared roles win
                if not roles <= reach[id(g)]:
                    reach[id(g)] |= roles
                    work.append(g)
    return reach


def _check_write_roles(findings, fn, acc, fld, roles, eff) -> None:
    if not roles:
        findings.append(
            Finding(
                "role",
                acc.file,
                acc.line,
                fn.qname,
                f"write to {fld.name} from a function with no "
                f"FLIPC_ROLE_* entry point in its caller closure (unrooted write)",
            )
        )
    elif fld.quiescent:
        if eff:
            findings.append(
                Finding(
                    "role",
                    acc.file,
                    acc.line,
                    fn.qname,
                    f"{fld.name} is quiescent-only but is written "
                    f"from {{{', '.join(sorted(eff))}}} hot closures",
                )
            )
    else:
        foreign = eff - {fld.writer}
        if foreign:
            findings.append(
                Finding(
                    "role",
                    acc.file,
                    acc.line,
                    fn.qname,
                    f"{fld.name} is owned by {fld.writer} but is "
                    f"written from {{{', '.join(sorted(foreign))}}} closures",
                )
            )


def _check_access(findings, fn, acc, policy: Policy, roles: set[str]) -> None:
    eff = roles - {ROLE_QUIESCENT}
    fld, via_struct = policy.resolve(fn.klass, acc)

    if acc.op == ASSIGN_OP:
        if fld is None:
            if via_struct:
                findings.append(
                    Finding(
                        "policy",
                        acc.file,
                        acc.line,
                        fn.qname,
                        f"assignment through an aliased struct to "
                        f"member '{acc.member}' that the ownership tables do not list",
                    )
                )
            return
        if fld.kind != "plain":
            findings.append(
                Finding(
                    "order",
                    acc.file,
                    acc.line,
                    fn.qname,
                    f"non-atomic assignment to {fld.name} (kind {fld.kind})",
                )
            )
        _check_write_roles(findings, fn, acc, fld, roles, eff)
        return

    if acc.is_cell_op:
        if fld is None:
            if acc.is_write and acc.member not in policy.handoff_members:
                findings.append(
                    Finding(
                        "role",
                        acc.file,
                        acc.line,
                        fn.qname,
                        f"cell write {acc.member}.{acc.op}() does not "
                        f"resolve to any ownership-table field",
                    )
                )
            return
        if fld.kind == "plain":
            findings.append(
                Finding(
                    "order",
                    acc.file,
                    acc.line,
                    fn.qname,
                    f"atomic cell op on {fld.name}, which the policy declares plain",
                )
            )
            return
        if fld.kind == "rmw":
            findings.append(
                Finding(
                    "order",
                    acc.file,
                    acc.line,
                    fn.qname,
                    f"SingleWriterCell op on {fld.name}, which the "
                    f"policy declares rmw (raw std::atomic)",
                )
            )
            return
        if acc.is_write:
            # Quiescent-only closures may initialize any kind with relaxed
            # stores; everyone else follows the kind profile.
            if eff and fld.kind in _PUBLISH_ONLY_KINDS and acc.op != "Publish":
                findings.append(
                    Finding(
                        "order",
                        acc.file,
                        acc.line,
                        fn.qname,
                        f"{fld.name} (kind {fld.kind}) must be "
                        f"written with Publish(), not {acc.op}()",
                    )
                )
            _check_write_roles(findings, fn, acc, fld, roles, eff)
        else:
            if (
                acc.op == "ReadRelaxed"
                and fld.kind in _ACQUIRE_READ_KINDS
                and eff - {fld.writer}
            ):
                findings.append(
                    Finding(
                        "order",
                        acc.file,
                        acc.line,
                        fn.qname,
                        f"cross-role read of {fld.name} (kind "
                        f"{fld.kind}) must use Read() (acquire), not ReadRelaxed()",
                    )
                )
        return

    if acc.is_raw_op:
        if acc.order is None:
            findings.append(
                Finding(
                    "order",
                    acc.file,
                    acc.line,
                    fn.qname,
                    f"{acc.member}.{acc.op}() relies on the "
                    f"defaulted memory_order (seq_cst); name the order explicitly",
                )
            )
        if fld is not None:
            if fld.kind != "rmw":
                findings.append(
                    Finding(
                        "order",
                        acc.file,
                        acc.line,
                        fn.qname,
                        f"raw std::atomic op on {fld.name} (kind "
                        f"{fld.kind}); use the SingleWriterCell interface",
                    )
                )
            elif acc.is_write:
                _check_write_roles(findings, fn, acc, fld, roles, eff)


def run_rules(ir: TranslationIR, policy: Policy) -> list[Finding]:
    findings: list[Finding] = []
    reach = _role_reachability(ir)
    for fn in ir.functions:
        roles = reach[id(fn)]
        for acc in fn.accesses:
            _check_access(findings, fn, acc, policy, roles)
    return findings


# --------------------------------------------------------------------------
# Rules engine: interprocedural purity closure + bounded progress
# --------------------------------------------------------------------------


def run_closure_rules(ir: TranslationIR) -> list[Finding]:
    """The whole-program half of the wait-free certificate.

    Roots are functions containing an armed hot-path scope. From every call
    made inside such a scope (outside FLIPC_HOT_PATH_EXEMPT regions) the
    certifier chases the cross-TU call graph by callee simple name — the
    same over-approximating resolution the role pass uses, so every
    same-named audited function must satisfy the obligations — and
    requires, for every function in the closure:

      * purity: no allocation/unwinding/lock types/blocking libc calls
        outside exempt regions (the caller's armed scope stays armed
        through the callee at run time, so the static obligation follows
        the same contour);
      * bounded progress: every loop outside exempt regions has a
        recognized constant/countdown bound or a FLIPC_BOUNDED_BY
        annotation, and FLIPC_UNBOUNDED_WAIT park sites are errors (a
        wait-free entry point must not reach an unbounded wait).

    The roots' own hot regions carry the same loop obligations; their
    banned-construct scan is run_token_rules' hotpath_scan (per-line,
    per-scope attribution)."""
    findings: list[Finding] = []
    by_simple: dict[str, list] = defaultdict(list)
    for fn in ir.functions:
        by_simple[fn.simple].append(fn)

    def check_loop(fn, loop, root: str, is_root: bool) -> None:
        if loop.wait:
            if not is_root:
                findings.append(
                    Finding(
                        "progress",
                        loop.file,
                        loop.line,
                        fn.qname,
                        f"FLIPC_UNBOUNDED_WAIT park site in '{fn.qname}' is "
                        f"reachable from wait-free entry point '{root}'",
                    )
                )
            return
        if loop.bounded or loop.bound is not None:
            return
        findings.append(
            Finding(
                "progress",
                loop.file,
                loop.line,
                fn.qname,
                f"unbounded {loop.kind} loop in '{fn.qname}' reachable from "
                f"wait-free entry point '{root}'; bound the trip count, "
                f"annotate FLIPC_BOUNDED_BY(expr), or park it outside hot "
                f"scopes with FLIPC_UNBOUNDED_WAIT",
            )
        )

    # id(fn) -> (root qname, "file:line" of the call that pulled it in).
    origin: dict[int, tuple[str, str]] = {}
    work: list = []
    for fn in ir.functions:
        if not fn.is_hot_root:
            continue
        for w in fn.wait_sites:
            if w.in_hot:
                findings.append(
                    Finding(
                        "progress",
                        w.file,
                        w.line,
                        fn.qname,
                        "FLIPC_UNBOUNDED_WAIT park site inside a hot-path scope",
                    )
                )
        for loop in fn.loops:
            if loop.in_hot:
                check_loop(fn, loop, fn.qname, is_root=True)
        for cs in fn.call_sites:
            if cs.in_hot and not cs.in_exempt:
                for g in by_simple.get(cs.name, ()):
                    if id(g) not in origin and g is not fn:
                        origin[id(g)] = (fn.qname, f"{fn.file}:{cs.line}")
                        work.append(g)

    while work:
        g = work.pop()
        root, via = origin[id(g)]
        for imp in g.impurities:
            findings.append(
                Finding(
                    "hot-closure",
                    imp.file,
                    imp.line,
                    g.qname,
                    f"{imp.what} in '{g.qname}', which is reachable from the "
                    f"hot-path scope in '{root}' (called at {via})",
                )
            )
        for loop in g.loops:
            if not loop.in_exempt:
                check_loop(g, loop, root, is_root=False)
        for cs in g.call_sites:
            if not cs.in_exempt:
                for h in by_simple.get(cs.name, ()):
                    if id(h) not in origin:
                        origin[id(h)] = (root, f"{g.file}:{cs.line}")
                        work.append(h)
    return findings


# --------------------------------------------------------------------------
# Per-file facts (frontend output + token rules input) and the cache
# --------------------------------------------------------------------------


@dataclass
class FileFacts:
    ir: TranslationIR
    hot_violations: list[tuple[str, int, str]]  # (file, line, what)
    seq_sites: list[tuple[str, int]]


def _seq_cst_sites(rel: str, tokens) -> list[tuple[str, int]]:
    sites = []
    for i, t in enumerate(tokens):
        if t.text == "memory_order_seq_cst":
            sites.append((rel, t.line))
        elif (
            t.text == "seq_cst"
            and i >= 2
            and tokens[i - 1].text == "::"
            and tokens[i - 2].text == "memory_order"
        ):
            sites.append((rel, t.line))
    return sites


def _extract_file_facts(
    frontend: str,
    rel: str,
    abspath: str,
    text: str,
    compile_commands: str | None,
    root: str,
) -> FileFacts:
    tokens = cpp_lexer.lex(text)
    ir = TranslationIR()
    if frontend == "clang":
        clang_frontend.load_one(rel, abspath, ir, compile_commands, root)
    else:
        tokparse_frontend._FileParser(rel, tokens, ir).parse()
    hot = [(v.file, v.line, v.what) for v in hotpath_scan.scan(rel, tokens)]
    return FileFacts(ir=ir, hot_violations=hot, seq_sites=_seq_cst_sites(rel, tokens))


def _facts_to_doc(facts: FileFacts) -> dict:
    return {
        "ir": ir_to_dict(facts.ir),
        "hot_violations": [[f, l, w] for f, l, w in facts.hot_violations],
        "seq_sites": [[f, l] for f, l in facts.seq_sites],
    }


def _facts_from_doc(doc: dict) -> FileFacts:
    return FileFacts(
        ir=ir_from_dict(doc["ir"]),
        hot_violations=[(f, l, w) for f, l, w in doc["hot_violations"]],
        seq_sites=[(f, l) for f, l in doc["seq_sites"]],
    )


def _cache_key(frontend: str, rel: str, content: bytes, extra: bytes) -> str:
    h = hashlib.sha256()
    for part in (CACHE_SCHEMA.encode(), frontend.encode(), rel.encode(), extra):
        h.update(part)
        h.update(b"\0")
    h.update(content)
    return h.hexdigest()


def gather_facts(
    paths: list[tuple[str, str]],
    frontend: str,
    compile_commands: str | None,
    root: str,
    cache_dir: str | None = None,
) -> tuple[list[tuple[str, FileFacts]], dict]:
    """Extracts FileFacts for every audited file, consulting the
    content-hash cache when ``cache_dir`` is set. A cache entry is keyed by
    sha256(schema, frontend, relpath, compile-commands digest, file bytes),
    so ANY change to the source (or to the extraction schema, or — for the
    clang frontend — to the compile flags) misses and re-parses; unchanged
    files deserialize their facts instead of re-parsing."""
    stats = {"hits": 0, "misses": 0}
    extra = b""
    if (
        frontend == "clang"
        and compile_commands
        and os.path.exists(compile_commands)
    ):
        with open(compile_commands, "rb") as f:
            extra = hashlib.sha256(f.read()).digest()
    out: list[tuple[str, FileFacts]] = []
    for rel, abspath in paths:
        with open(abspath, "rb") as f:
            content = f.read()
        facts: FileFacts | None = None
        cpath = None
        if cache_dir:
            cpath = os.path.join(
                cache_dir, _cache_key(frontend, rel, content, extra) + ".json"
            )
            if os.path.exists(cpath):
                try:
                    with open(cpath, "r", encoding="utf-8") as f:
                        facts = _facts_from_doc(json.load(f))
                    stats["hits"] += 1
                except (OSError, ValueError, KeyError, TypeError):
                    facts = None  # corrupt entry: fall through to re-parse
        if facts is None:
            facts = _extract_file_facts(
                frontend, rel, abspath, content.decode("utf-8"),
                compile_commands, root,
            )
            stats["misses"] += 1
            if cpath:
                os.makedirs(cache_dir, exist_ok=True)
                tmp = cpath + f".tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as f:
                    json.dump(_facts_to_doc(facts), f)
                os.replace(tmp, cpath)
        out.append((rel, facts))
    return out, stats


def run_token_rules(
    facts: list[tuple[str, FileFacts]], policy: Policy
) -> list[Finding]:
    """Frontend-independent whole-file rules: seq_cst confinement and
    hot-path purity (per-scope, per-line attribution)."""
    findings: list[Finding] = []
    seq_total_in_allowed = 0
    allowed_present = False
    for rel, f in facts:
        for vfile, vline, what in f.hot_violations:
            findings.append(Finding("hot-path", vfile, vline, "", what))
        allowed = rel.replace("\\", "/") == policy.seq_cst_file
        allowed_present = allowed_present or allowed
        for site_rel, line in f.seq_sites:
            if allowed:
                seq_total_in_allowed += 1
            else:
                findings.append(
                    Finding(
                        "order",
                        site_rel,
                        line,
                        "",
                        f"memory_order_seq_cst outside "
                        f"{policy.seq_cst_file or 'the whitelisted file'}",
                    )
                )
    if allowed_present and seq_total_in_allowed != policy.seq_cst_expected:
        findings.append(
            Finding(
                "order",
                policy.seq_cst_file,
                None,
                "",
                f"expected exactly {policy.seq_cst_expected} seq_cst accesses "
                f"(the Peterson lock), found {seq_total_in_allowed}",
            )
        )
    return findings


# --------------------------------------------------------------------------
# Protocol IR export
# --------------------------------------------------------------------------


def build_protocol_ir(
    ir: TranslationIR, policy: Policy, file_prefix: str | None = PROTOCOL_IR_PREFIX
) -> dict:
    """Machine-readable protocol IR: for every function in the wait-free
    protocol files, the ordered list of shared-field accesses with their
    resolved policy field, access kind, effective memory order, the
    function's roles and shard qualifier. Line numbers are deliberately
    omitted — the export must drift when the PROTOCOL changes (fields, op
    order, memory orders, roles), not when comments shift lines."""
    functions = []
    fns = sorted(ir.functions, key=lambda f: (f.file, f.line, f.qname))
    for fn in fns:
        if file_prefix is not None and not fn.file.startswith(file_prefix):
            continue
        accesses = []
        for seq, acc in enumerate(fn.accesses):
            fld, _ = policy.resolve(fn.klass, acc)
            if acc.op in CELL_WRITE_OPS:
                order = CELL_WRITE_OPS[acc.op]
            elif acc.op in CELL_READ_OPS:
                order = CELL_READ_OPS[acc.op]
            elif acc.op == ASSIGN_OP:
                order = "plain"
            else:
                order = acc.order if acc.order is not None else "seq_cst(defaulted)"
            accesses.append(
                {
                    "seq": seq,
                    "member": acc.member,
                    "op": acc.op,
                    "access": "write" if op_is_write(acc.op) else "read",
                    "order": order,
                    "field": fld.name if fld else None,
                    "kind": fld.kind if fld else None,
                    "writer": fld.writer if fld else None,
                }
            )
        roles = sorted(fn.roles | ir.decl_roles.get((fn.klass, fn.simple), set()))
        functions.append(
            {
                "function": fn.qname,
                "class": fn.klass,
                "file": fn.file,
                "roles": roles,
                "shard_qualified": "engine_shard" in fn.role_macros,
                "hot": fn.is_hot_root,
                "accesses": accesses,
            }
        )
    return {
        "version": 1,
        "generator": "tools/flipc_static_audit --emit-ir (tokparse frontend)",
        "functions": functions,
    }


def protocol_ir_text(doc: dict) -> str:
    return json.dumps(doc, indent=2) + "\n"


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def collect_sources(root: str) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    for d in AUDITED_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(AUDITED_EXTS):
                    abspath = os.path.join(dirpath, name)
                    rel = os.path.relpath(abspath, root).replace(os.sep, "/")
                    out.append((rel, abspath))
    out.sort()
    return out


def pick_frontends(requested: str) -> list[str]:
    if requested == "auto":
        return ["clang"] if clang_frontend.available() else ["tokparse"]
    if requested == "clang" and not clang_frontend.available():
        print(
            "flipc_static_audit: --frontend clang requested but python "
            "clang bindings/libclang are unavailable",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return [requested]


def merge_facts(facts: list[tuple[str, FileFacts]]) -> TranslationIR:
    ir = TranslationIR()
    for _rel, f in facts:
        ir.merge(f.ir)
    return ir


def audit_paths(
    paths: list[tuple[str, str]],
    policy: Policy,
    frontend: str,
    compile_commands: str | None,
    root: str,
    cache_dir: str | None = None,
) -> tuple[list[Finding], TranslationIR, dict]:
    facts, stats = gather_facts(paths, frontend, compile_commands, root, cache_dir)
    ir = merge_facts(facts)
    findings = run_rules(ir, policy)
    findings.extend(run_closure_rules(ir))
    findings.extend(run_token_rules(facts, policy))
    return sorted(set(findings), key=str), ir, stats


def wait_site_census(ir: TranslationIR) -> dict:
    total = 0
    in_hot = 0
    for fn in ir.functions:
        for w in fn.wait_sites:
            total += 1
            if w.in_hot:
                in_hot += 1
    return {"total": total, "in_hot_scope": in_hot}


def write_json_report(
    path: str,
    findings: list[Finding],
    ir: TranslationIR,
    frontend: str,
    nfiles: int,
    cache_stats: dict,
) -> None:
    by_rule: dict[str, int] = defaultdict(int)
    for f in findings:
        by_rule[f.rule] += 1
    doc = {
        "version": 1,
        "frontend": frontend,
        "files": nfiles,
        "ok": not findings,
        "findings": [f.to_json() for f in findings],
        "summary": {"total": len(findings), "by_rule": dict(sorted(by_rule.items()))},
        "unbounded_wait_sites": wait_site_census(ir),
        "cache": cache_stats,
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


# --------------------------------------------------------------------------
# Self-test over seeded fixtures
# --------------------------------------------------------------------------

_EXPECT_RE = re.compile(r"AUDIT-EXPECT:\s*(.+?)\s*$", re.MULTILINE)

_EXPECTED_IR_NAME = "expected_ir.json"


def _collect_fixtures(fixture_dir: str):
    """Fixture units: single ``*.cc`` files, plus ``*_bad``/``*_clean``
    SUBDIRECTORIES whose .cc files are audited together as one multi-TU
    program (cross-TU rules need more than one file). A group directory may
    also carry an expected_ir.json: the protocol-IR export over the group
    is then byte-compared against it (the drift rule's fixture)."""
    units = []
    for name in sorted(os.listdir(fixture_dir)):
        path = os.path.join(fixture_dir, name)
        if os.path.isfile(path) and name.endswith(".cc"):
            units.append((name, [(name, path)], None))
        elif os.path.isdir(path) and (
            name.endswith("_bad") or name.endswith("_clean")
        ):
            files = [
                (f"{name}/{f}", os.path.join(path, f))
                for f in sorted(os.listdir(path))
                if f.endswith(".cc")
            ]
            expected_ir = os.path.join(path, _EXPECTED_IR_NAME)
            units.append(
                (name, files, expected_ir if os.path.exists(expected_ir) else None)
            )
    return units


def _fixture_ir_drift(
    files: list[tuple[str, str]], policy: Policy, expected_ir: str
) -> list[Finding]:
    """IR export over a fixture group vs its checked-in expectation. Always
    uses the tokparse frontend: the export artifact is defined to be
    tokparse output (deterministic and dependency-free), whichever frontend
    audits."""
    facts, _ = gather_facts(files, "tokparse", None, ".", None)
    got = protocol_ir_text(build_protocol_ir(merge_facts(facts), policy, None))
    with open(expected_ir, "r", encoding="utf-8") as f:
        want = f.read()
    if got == want:
        return []
    return [
        Finding(
            "ir-drift",
            os.path.basename(os.path.dirname(expected_ir)),
            None,
            "",
            "protocol IR differs from expected_ir.json "
            "(regenerate with --emit-ir)",
        )
    ]


def run_selftest(fixture_dir: str, frontends: list[str]) -> int:
    policy_path = os.path.join(fixture_dir, "mini_policy.json")
    if not os.path.exists(policy_path):
        print(f"selftest: missing {policy_path}", file=sys.stderr)
        return 2
    policy = load_policy(policy_path)
    units = _collect_fixtures(fixture_dir)
    if not units:
        print(f"selftest: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2

    failures = 0
    for frontend in frontends:
        for name, files, expected_ir in units:
            expects: list[str] = []
            for _rel, abspath in files:
                with open(abspath, "r", encoding="utf-8") as f:
                    expects.extend(_EXPECT_RE.findall(f.read()))
            findings, _ir, _stats = audit_paths(
                files, policy, frontend, None, fixture_dir
            )
            if expected_ir is not None:
                findings = findings + _fixture_ir_drift(files, policy, expected_ir)
            errors = [str(f) for f in findings]
            clean = "_clean" in name
            if clean:
                if expects:
                    print(f"selftest[{frontend}] {name}: clean fixture carries "
                          f"AUDIT-EXPECT lines")
                    failures += 1
                if errors:
                    print(f"selftest[{frontend}] {name}: expected no findings, got:")
                    for e in errors:
                        print(f"  {e}")
                    failures += 1
                continue
            if not expects:
                print(f"selftest[{frontend}] {name}: bad fixture declares no "
                      f"AUDIT-EXPECT lines")
                failures += 1
                continue
            for want in expects:
                if not any(want in e for e in errors):
                    print(f"selftest[{frontend}] {name}: no finding matches "
                          f"AUDIT-EXPECT '{want}'")
                    failures += 1
            for e in errors:
                if not any(want in e for want in expects):
                    print(f"selftest[{frontend}] {name}: unexpected finding: {e}")
                    failures += 1
    if failures:
        print(f"selftest: {failures} failure(s)")
        return 1
    total = len(units) * len(frontends)
    print(
        f"selftest: OK — {total} fixture run(s) across "
        f"frontend(s) {', '.join(frontends)}"
    )
    return 0


# --------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="flipc_static_audit")
    ap.add_argument("--policy", help="ownership_policy.json path")
    ap.add_argument("--source-root", default=".", help="repository root")
    ap.add_argument("--compile-commands", default=None)
    ap.add_argument(
        "--frontend", choices=("auto", "clang", "tokparse"), default="auto"
    )
    ap.add_argument(
        "--cache-dir",
        default=None,
        help="content-hash cache directory (skip re-parsing unchanged files)",
    )
    ap.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a machine-readable findings report",
    )
    ap.add_argument(
        "--emit-ir",
        metavar="PATH",
        default=None,
        help="write the src/waitfree protocol IR (always tokparse-derived)",
    )
    ap.add_argument(
        "--emit-schedules",
        metavar="PATH",
        default=None,
        help="generate tests/generated_model_schedules.h from the protocol IR",
    )
    ap.add_argument(
        "--selftest",
        metavar="FIXTURE_DIR",
        help="run the seeded-violation self-test instead of auditing the tree",
    )
    args = ap.parse_args(argv)

    if args.selftest:
        if args.frontend == "auto":
            frontends = ["tokparse"] + (
                ["clang"] if clang_frontend.available() else []
            )
        else:
            frontends = pick_frontends(args.frontend)
        return run_selftest(args.selftest, frontends)

    if not args.policy:
        ap.error("--policy is required (or use --selftest)")
    try:
        policy = load_policy(args.policy)
    except (OSError, ValueError, KeyError) as exc:
        print(f"flipc_static_audit: cannot load {args.policy}: {exc}", file=sys.stderr)
        return 2
    root = os.path.abspath(args.source_root)
    paths = collect_sources(root)
    if not paths:
        print(f"flipc_static_audit: no sources under {root}", file=sys.stderr)
        return 2
    (frontend,) = pick_frontends(args.frontend)
    findings, ir, stats = audit_paths(
        paths, policy, frontend, args.compile_commands, root, args.cache_dir
    )

    if args.emit_ir or args.emit_schedules:
        # The export artifacts are defined as tokparse output: byte-stable,
        # dependency-free, identical in every environment regardless of
        # which frontend ran the audit.
        if frontend == "tokparse":
            export_ir = ir
        else:
            tok_facts, _ = gather_facts(paths, "tokparse", None, root, args.cache_dir)
            export_ir = merge_facts(tok_facts)
        ir_doc = build_protocol_ir(export_ir, policy)
        if args.emit_ir:
            with open(args.emit_ir, "w", encoding="utf-8") as f:
                f.write(protocol_ir_text(ir_doc))
        if args.emit_schedules:
            try:
                header = schedule_gen.generate_header(ir_doc)
            except schedule_gen.ScheduleGenError as exc:
                print(f"flipc_static_audit: --emit-schedules: {exc}", file=sys.stderr)
                return 2
            with open(args.emit_schedules, "w", encoding="utf-8") as f:
                f.write(header)

    if args.json:
        write_json_report(args.json, findings, ir, frontend, len(paths), stats)

    if findings:
        for f in findings:
            print(f)
        print(
            f"flipc_static_audit[{frontend}]: {len(findings)} violation(s) "
            f"across {len(paths)} file(s)"
        )
        return 1
    cache_note = (
        f", cache {stats['hits']} hit(s)/{stats['misses']} miss(es)"
        if args.cache_dir
        else ""
    )
    print(
        f"flipc_static_audit[{frontend}]: OK — {len(paths)} file(s), "
        f"{len(policy.fields)} policy field(s), 0 violations{cache_note}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
