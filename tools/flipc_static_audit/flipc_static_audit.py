#!/usr/bin/env python3
"""FLIPC static protocol auditor.

Statically proves, over ``src/base``, ``src/waitfree``, ``src/shm``,
``src/engine`` and ``src/flipc``, the three properties the runtime guards
only check for executions that actually happen:

  1. **Role/ownership** — every write to a field listed in
     ``src/shm/ownership_layout.h`` occurs in a function reachable only
     from entry points of that field's owning role (``FLIPC_ROLE_APP`` /
     ``FLIPC_ROLE_ENGINE``), or from a ``FLIPC_ROLE_QUIESCENT`` setup
     closure when the field is marked quiescent-writable.
  2. **Memory-order policy** — every atomic access names an explicit
     ``memory_order`` matching the per-field ordering kind exported from
     the ownership tables; defaulted (seq_cst) orders are hard errors, and
     ``memory_order_seq_cst`` itself is confined to the Peterson lock.
  3. **Hot-path purity** — inside ``FLIPC_HOT_PATH`` scopes: no
     new/delete/throw/try, no OS mutex/condvar types, no blocking libc
     calls (the same denylist as the post-link nm lint).

The field policy is ``tools/ownership_policy.json``, generated from the
constexpr ownership tables by ``tools/flipc_ownership_export`` (a drift
ctest keeps the two in lockstep). Facts come from one of two
interchangeable frontends producing the same IR: libclang when installed
(``--frontend clang``), else a dependency-free token parser
(``--frontend tokparse``); ``--frontend auto`` picks the best available.

Usage:
  flipc_static_audit.py --policy tools/ownership_policy.json \
      --source-root . [--compile-commands build/compile_commands.json] \
      [--frontend auto|clang|tokparse]
  flipc_static_audit.py --selftest tools/lint_fixtures/static_audit \
      [--frontend auto|clang|tokparse]

Exit status: 0 clean, 1 violations (or fixture expectation failures),
2 usage/environment errors.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from collections import defaultdict
from dataclasses import dataclass

if __package__ in (None, ""):  # running as a plain script
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from flipc_static_audit import clang_frontend, cpp_lexer, hotpath_scan, tokparse_frontend
    from flipc_static_audit.audit_ir import (
        ASSIGN_OP,
        CELL_READ_OPS,
        CELL_WRITE_OPS,
        ROLE_QUIESCENT,
        TranslationIR,
        op_is_write,
    )
else:
    from . import clang_frontend, cpp_lexer, hotpath_scan, tokparse_frontend
    from .audit_ir import (
        ASSIGN_OP,
        CELL_READ_OPS,
        CELL_WRITE_OPS,
        ROLE_QUIESCENT,
        TranslationIR,
        op_is_write,
    )

AUDITED_DIRS = ("src/base", "src/engine", "src/flipc", "src/shm", "src/waitfree")
AUDITED_EXTS = (".h", ".cc")


# --------------------------------------------------------------------------
# Policy
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldPolicy:
    name: str  # "QueueCursors.release_count"
    writer: str  # "app" | "engine"
    quiescent: bool
    kind: str  # cursor|hint_cursor|flag|counter|config|config_publish|data_cell|rmw|plain

    @property
    def member(self) -> str:
        return self.name.split(".")[-1]


class Policy:
    def __init__(self, doc: dict) -> None:
        self.fields: dict[str, FieldPolicy] = {}
        self.by_member: dict[str, list[FieldPolicy]] = defaultdict(list)
        for row in doc["fields"]:
            f = FieldPolicy(
                name=row["name"],
                writer=row["writer"],
                quiescent=bool(row["quiescent"]),
                kind=row["kind"],
            )
            self.fields[f.name] = f
            self.by_member[f.member].append(f)
        # Aliases: "field" containing '.' maps a member variable straight to
        # a policy field; without '.' it maps a receiver variable to a
        # struct, prefixing subsequent member lookups.
        self.member_aliases: dict[tuple[str, str], str] = {}
        self.struct_aliases: dict[tuple[str, str], str] = {}
        for row in doc.get("aliases", []):
            key = (row["class"], row["member"])
            if "." in row["field"]:
                self.member_aliases[key] = row["field"]
            else:
                self.struct_aliases[key] = row["field"]
        self.handoff_members: set[str] = set(doc.get("handoff_members", []))
        seq = doc.get("seq_cst", {})
        self.seq_cst_file: str = seq.get("file", "")
        self.seq_cst_expected: int = int(seq.get("expected_count", 0))

    def _lookup_alias(self, table: dict, klass: str, key: str) -> str | None:
        return table.get((klass, key)) or table.get(("*", key))

    def resolve(self, klass: str, acc) -> tuple[FieldPolicy | None, bool]:
        """Maps an access to a FieldPolicy. Returns (field, via_struct_alias);
        ``via_struct_alias`` is True when the receiver named an aliased
        struct — then a None field means "unknown member of a governed
        struct", which is itself reportable for writes.

        Plain (non-atomic) assignments resolve ONLY through struct aliases:
        local structs routinely share member names with shared-memory
        layouts (e.g. ComputeLayout's ``layout.X = ...``), and plain stores
        to anything else cannot touch an atomic policy field anyway."""
        struct = self._lookup_alias(self.struct_aliases, klass, acc.receiver)
        if acc.op == ASSIGN_OP:
            if struct is None:
                return None, False
            return self.fields.get(struct + "." + acc.member), True
        target = self._lookup_alias(self.member_aliases, klass, acc.member)
        if target is not None:
            return self.fields.get(target), False
        if struct is not None:
            return self.fields.get(struct + "." + acc.member), True
        cands = self.by_member.get(acc.member, [])
        if len(cands) == 1:
            return cands[0], False
        if cands and all(
            (c.writer, c.kind, c.quiescent)
            == (cands[0].writer, cands[0].kind, cands[0].quiescent)
            for c in cands
        ):
            return cands[0], False
        return None, False


def load_policy(path: str) -> Policy:
    with open(path, "r", encoding="utf-8") as f:
        return Policy(json.load(f))


# --------------------------------------------------------------------------
# Rules engine
# --------------------------------------------------------------------------

_PUBLISH_ONLY_KINDS = {"cursor", "hint_cursor", "flag", "counter", "config_publish"}
_ACQUIRE_READ_KINDS = {"cursor", "flag"}


def _role_reachability(ir: TranslationIR) -> dict[int, set[str]]:
    """BFS role propagation over the simple-name call graph: reach[f] is the
    set of roles whose annotated entry points can reach f.

    Annotated functions are propagation BARRIERS: their declared roles are
    authoritative and caller roles do not flow through them. This is the
    division of labor with the runtime boundary detector — the annotation
    itself is validated dynamically (a thread of the wrong role entering an
    annotated entry point trips FLIPC_CHECK_SINGLE_WRITER), while the
    auditor proves the unannotated closure BETWEEN annotations writes only
    what the entry role owns. It is also what keeps the simple-name call
    graph sound in practice: ``wire_.Send()`` inside the engine must not
    drag the engine role into ``Endpoint::Send``'s app closure just because
    the methods share a name."""
    for fn in ir.functions:
        fn.roles |= ir.decl_roles.get((fn.klass, fn.simple), set())
    by_simple: dict[str, list] = defaultdict(list)
    for fn in ir.functions:
        by_simple[fn.simple].append(fn)
    reach: dict[int, set[str]] = {id(fn): set(fn.roles) for fn in ir.functions}
    work = [fn for fn in ir.functions if fn.roles]
    while work:
        fn = work.pop()
        roles = reach[id(fn)]
        for callee in fn.calls:
            for g in by_simple.get(callee, ()):
                if g.roles:
                    continue  # annotation barrier: declared roles win
                if not roles <= reach[id(g)]:
                    reach[id(g)] |= roles
                    work.append(g)
    return reach


def _check_write_roles(errors, loc, fld, roles, eff) -> None:
    if not roles:
        errors.append(
            f"{loc}: role: write to {fld.name} from a function with no "
            f"FLIPC_ROLE_* entry point in its caller closure (unrooted write)"
        )
    elif fld.quiescent:
        if eff:
            errors.append(
                f"{loc}: role: {fld.name} is quiescent-only but is written "
                f"from {{{', '.join(sorted(eff))}}} hot closures"
            )
    else:
        foreign = eff - {fld.writer}
        if foreign:
            errors.append(
                f"{loc}: role: {fld.name} is owned by {fld.writer} but is "
                f"written from {{{', '.join(sorted(foreign))}}} closures"
            )


def _check_access(errors, fn, acc, policy: Policy, roles: set[str]) -> None:
    loc = f"{acc.file}:{acc.line}"
    eff = roles - {ROLE_QUIESCENT}
    fld, via_struct = policy.resolve(fn.klass, acc)

    if acc.op == ASSIGN_OP:
        if fld is None:
            if via_struct:
                errors.append(
                    f"{loc}: policy: assignment through an aliased struct to "
                    f"member '{acc.member}' that the ownership tables do not list"
                )
            return
        if fld.kind != "plain":
            errors.append(
                f"{loc}: order: non-atomic assignment to {fld.name} "
                f"(kind {fld.kind})"
            )
        _check_write_roles(errors, loc, fld, roles, eff)
        return

    if acc.is_cell_op:
        if fld is None:
            if acc.is_write and acc.member not in policy.handoff_members:
                errors.append(
                    f"{loc}: role: cell write {acc.member}.{acc.op}() does not "
                    f"resolve to any ownership-table field"
                )
            return
        if fld.kind == "plain":
            errors.append(
                f"{loc}: order: atomic cell op on {fld.name}, which the policy "
                f"declares plain"
            )
            return
        if fld.kind == "rmw":
            errors.append(
                f"{loc}: order: SingleWriterCell op on {fld.name}, which the "
                f"policy declares rmw (raw std::atomic)"
            )
            return
        if acc.is_write:
            # Quiescent-only closures may initialize any kind with relaxed
            # stores; everyone else follows the kind profile.
            if eff and fld.kind in _PUBLISH_ONLY_KINDS and acc.op != "Publish":
                errors.append(
                    f"{loc}: order: {fld.name} (kind {fld.kind}) must be "
                    f"written with Publish(), not {acc.op}()"
                )
            _check_write_roles(errors, loc, fld, roles, eff)
        else:
            if (
                acc.op == "ReadRelaxed"
                and fld.kind in _ACQUIRE_READ_KINDS
                and eff - {fld.writer}
            ):
                errors.append(
                    f"{loc}: order: cross-role read of {fld.name} (kind "
                    f"{fld.kind}) must use Read() (acquire), not ReadRelaxed()"
                )
        return

    if acc.is_raw_op:
        if acc.order is None:
            errors.append(
                f"{loc}: order: {acc.member}.{acc.op}() relies on the "
                f"defaulted memory_order (seq_cst); name the order explicitly"
            )
        if fld is not None:
            if fld.kind != "rmw":
                errors.append(
                    f"{loc}: order: raw std::atomic op on {fld.name} (kind "
                    f"{fld.kind}); use the SingleWriterCell interface"
                )
            elif acc.is_write:
                _check_write_roles(errors, loc, fld, roles, eff)


def _seq_cst_sites(rel: str, tokens) -> list[tuple[str, int]]:
    sites = []
    for i, t in enumerate(tokens):
        if t.text == "memory_order_seq_cst":
            sites.append((rel, t.line))
        elif (
            t.text == "seq_cst"
            and i >= 2
            and tokens[i - 1].text == "::"
            and tokens[i - 2].text == "memory_order"
        ):
            sites.append((rel, t.line))
    return sites


def run_rules(ir: TranslationIR, policy: Policy) -> list[str]:
    errors: list[str] = []
    reach = _role_reachability(ir)
    for fn in ir.functions:
        roles = reach[id(fn)]
        for acc in fn.accesses:
            _check_access(errors, fn, acc, policy, roles)
    return errors


def run_token_rules(paths: list[tuple[str, str]], policy: Policy) -> list[str]:
    """Frontend-independent whole-file rules: seq_cst confinement and
    hot-path purity."""
    errors: list[str] = []
    seq_total_in_allowed = 0
    allowed_present = False
    for rel, abspath in paths:
        with open(abspath, "r", encoding="utf-8") as f:
            tokens = cpp_lexer.lex(f.read())
        for v in hotpath_scan.scan(rel, tokens):
            errors.append(str(v))
        allowed = rel.replace("\\", "/") == policy.seq_cst_file
        allowed_present = allowed_present or allowed
        for site_rel, line in _seq_cst_sites(rel, tokens):
            if allowed:
                seq_total_in_allowed += 1
            else:
                errors.append(
                    f"{site_rel}:{line}: order: memory_order_seq_cst outside "
                    f"{policy.seq_cst_file or 'the whitelisted file'}"
                )
    if allowed_present and seq_total_in_allowed != policy.seq_cst_expected:
        errors.append(
            f"{policy.seq_cst_file}: order: expected exactly "
            f"{policy.seq_cst_expected} seq_cst accesses (the Peterson lock), "
            f"found {seq_total_in_allowed}"
        )
    return errors


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def collect_sources(root: str) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    for d in AUDITED_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(AUDITED_EXTS):
                    abspath = os.path.join(dirpath, name)
                    rel = os.path.relpath(abspath, root).replace(os.sep, "/")
                    out.append((rel, abspath))
    out.sort()
    return out


def pick_frontends(requested: str) -> list[str]:
    if requested == "auto":
        return ["clang"] if clang_frontend.available() else ["tokparse"]
    if requested == "clang" and not clang_frontend.available():
        print(
            "flipc_static_audit: --frontend clang requested but python "
            "clang bindings/libclang are unavailable",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return [requested]


def load_ir(
    frontend: str,
    paths: list[tuple[str, str]],
    compile_commands: str | None,
    root: str,
) -> TranslationIR:
    if frontend == "clang":
        return clang_frontend.load(paths, compile_commands, root)
    return tokparse_frontend.load(paths)


def audit_paths(
    paths: list[tuple[str, str]],
    policy: Policy,
    frontend: str,
    compile_commands: str | None,
    root: str,
) -> list[str]:
    ir = load_ir(frontend, paths, compile_commands, root)
    errors = run_rules(ir, policy)
    errors.extend(run_token_rules(paths, policy))
    return sorted(set(errors))


# --------------------------------------------------------------------------
# Self-test over seeded fixtures
# --------------------------------------------------------------------------

_EXPECT_RE = re.compile(r"AUDIT-EXPECT:\s*(.+?)\s*$", re.MULTILINE)


def run_selftest(fixture_dir: str, frontends: list[str]) -> int:
    policy_path = os.path.join(fixture_dir, "mini_policy.json")
    if not os.path.exists(policy_path):
        print(f"selftest: missing {policy_path}", file=sys.stderr)
        return 2
    policy = load_policy(policy_path)
    fixtures = sorted(
        name for name in os.listdir(fixture_dir) if name.endswith(".cc")
    )
    if not fixtures:
        print(f"selftest: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2

    failures = 0
    for frontend in frontends:
        for name in fixtures:
            abspath = os.path.join(fixture_dir, name)
            with open(abspath, "r", encoding="utf-8") as f:
                expects = _EXPECT_RE.findall(f.read())
            errors = audit_paths(
                [(name, abspath)], policy, frontend, None, fixture_dir
            )
            clean = "_clean" in name
            if clean:
                if expects:
                    print(f"selftest[{frontend}] {name}: clean fixture carries "
                          f"AUDIT-EXPECT lines")
                    failures += 1
                if errors:
                    print(f"selftest[{frontend}] {name}: expected no findings, got:")
                    for e in errors:
                        print(f"  {e}")
                    failures += 1
                continue
            if not expects:
                print(f"selftest[{frontend}] {name}: bad fixture declares no "
                      f"AUDIT-EXPECT lines")
                failures += 1
                continue
            for want in expects:
                if not any(want in e for e in errors):
                    print(f"selftest[{frontend}] {name}: no finding matches "
                          f"AUDIT-EXPECT '{want}'")
                    failures += 1
            for e in errors:
                if not any(want in e for want in expects):
                    print(f"selftest[{frontend}] {name}: unexpected finding: {e}")
                    failures += 1
    if failures:
        print(f"selftest: {failures} failure(s)")
        return 1
    total = len(fixtures) * len(frontends)
    print(
        f"selftest: OK — {total} fixture run(s) across "
        f"frontend(s) {', '.join(frontends)}"
    )
    return 0


# --------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="flipc_static_audit")
    ap.add_argument("--policy", help="ownership_policy.json path")
    ap.add_argument("--source-root", default=".", help="repository root")
    ap.add_argument("--compile-commands", default=None)
    ap.add_argument(
        "--frontend", choices=("auto", "clang", "tokparse"), default="auto"
    )
    ap.add_argument(
        "--selftest",
        metavar="FIXTURE_DIR",
        help="run the seeded-violation self-test instead of auditing the tree",
    )
    args = ap.parse_args(argv)

    if args.selftest:
        if args.frontend == "auto":
            frontends = ["tokparse"] + (
                ["clang"] if clang_frontend.available() else []
            )
        else:
            frontends = pick_frontends(args.frontend)
        return run_selftest(args.selftest, frontends)

    if not args.policy:
        ap.error("--policy is required (or use --selftest)")
    try:
        policy = load_policy(args.policy)
    except (OSError, ValueError, KeyError) as exc:
        print(f"flipc_static_audit: cannot load {args.policy}: {exc}", file=sys.stderr)
        return 2
    root = os.path.abspath(args.source_root)
    paths = collect_sources(root)
    if not paths:
        print(f"flipc_static_audit: no sources under {root}", file=sys.stderr)
        return 2
    (frontend,) = pick_frontends(args.frontend)
    errors = audit_paths(paths, policy, frontend, args.compile_commands, root)
    if errors:
        for e in errors:
            print(e)
        print(
            f"flipc_static_audit[{frontend}]: {len(errors)} violation(s) "
            f"across {len(paths)} file(s)"
        )
        return 1
    print(
        f"flipc_static_audit[{frontend}]: OK — {len(paths)} file(s), "
        f"{len(policy.fields)} policy field(s), 0 violations"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
