"""Rule 3: hot-path purity, by token scan.

FLIPC_HOT_PATH / FLIPC_HOT_PATH_IF mark the latency-critical scopes (see
src/base/hotpath.h). Inside such a scope — from the marker to the closing
brace of the block containing it — the static audit bans, at the token
level:

  * dynamic allocation and unwinding: ``new`` / ``delete`` / ``throw`` /
    ``try`` / ``catch``;
  * OS-blocking synchronization types: ``std::mutex`` and friends,
    ``std::condition_variable``;
  * direct calls to the blocking libc/pthread functions that the post-link
    nm lint (tools/flipc_hotpath_lint.cc) also rejects.

FLIPC_HOT_PATH_EXEMPT re-permits the *rest of its enclosing block* — the
static analog of the runtime ScopedHotPath(kExempt) guard; cold error
branches use it.

The scan is intraprocedural by design: callees compiled into the binary
are covered by the nm symbol lint, and the runtime guards catch whatever
slips through dynamic dispatch. What the token scan adds is source-level,
per-line attribution before anything ever runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cpp_lexer import IDENT, Token

HOT_MARKERS = {"FLIPC_HOT_PATH", "FLIPC_HOT_PATH_IF"}
EXEMPT_MARKER = "FLIPC_HOT_PATH_EXEMPT"

BANNED_KEYWORDS = {
    "new": "dynamic allocation (new) in a hot-path scope",
    "delete": "dynamic deallocation (delete) in a hot-path scope",
    "throw": "exception throw in a hot-path scope",
    "try": "try-block in a hot-path scope",
    "catch": "catch handler in a hot-path scope",
}

BANNED_TYPES = {
    "mutex": "std::mutex in a hot-path scope",
    "recursive_mutex": "std::recursive_mutex in a hot-path scope",
    "shared_mutex": "std::shared_mutex in a hot-path scope",
    "timed_mutex": "std::timed_mutex in a hot-path scope",
    "recursive_timed_mutex": "std::recursive_timed_mutex in a hot-path scope",
    "shared_timed_mutex": "std::shared_timed_mutex in a hot-path scope",
    "condition_variable": "std::condition_variable in a hot-path scope",
    "condition_variable_any": "std::condition_variable_any in a hot-path scope",
}

# Mirrors kLockSymbols/kBlockingSymbols in tools/flipc_hotpath_lint.cc.
BANNED_CALLS = {
    "pthread_mutex_lock",
    "pthread_mutex_trylock",
    "pthread_mutex_timedlock",
    "pthread_mutex_unlock",
    "pthread_rwlock_rdlock",
    "pthread_rwlock_wrlock",
    "pthread_rwlock_unlock",
    "pthread_spin_lock",
    "pthread_spin_unlock",
    "pthread_cond_wait",
    "pthread_cond_timedwait",
    "pthread_cond_signal",
    "pthread_cond_broadcast",
    "sem_wait",
    "sem_timedwait",
    "sem_post",
    "nanosleep",
    "clock_nanosleep",
    "usleep",
    "sleep",
    "poll",
    "ppoll",
    "select",
    "pselect",
    "epoll_wait",
    "epoll_pwait",
    "pause",
    "sigwait",
}


@dataclass(frozen=True)
class HotPathViolation:
    file: str
    line: int
    what: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: hot-path: {self.what}"


def scan(rel: str, tokens: list[Token]) -> list[HotPathViolation]:
    violations: list[HotPathViolation] = []
    depth = 0
    # Stack of brace depths at which a hot scope was armed; hot while
    # non-empty. Exemptions record the depth whose block they cover.
    hot_depths: list[int] = []
    exempt_depths: list[int] = []

    def hot() -> bool:
        return bool(hot_depths) and not exempt_depths

    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        text = t.text
        if text == "{":
            depth += 1
        elif text == "}":
            depth -= 1
            while hot_depths and depth < hot_depths[-1]:
                hot_depths.pop()
            while exempt_depths and depth < exempt_depths[-1]:
                exempt_depths.pop()
        elif t.kind == IDENT:
            if text in HOT_MARKERS:
                hot_depths.append(depth)
            elif text == EXEMPT_MARKER:
                if hot_depths:
                    exempt_depths.append(depth)
            elif hot():
                nxt = tokens[i + 1].text if i + 1 < n else ""
                prev = tokens[i - 1].text if i > 0 else ""
                if text in BANNED_KEYWORDS:
                    violations.append(
                        HotPathViolation(rel, t.line, BANNED_KEYWORDS[text])
                    )
                elif text in BANNED_TYPES and prev != "." and prev != "->":
                    violations.append(
                        HotPathViolation(rel, t.line, BANNED_TYPES[text])
                    )
                elif (
                    text in BANNED_CALLS
                    and nxt == "("
                    and prev not in (".", "->")
                ):
                    violations.append(
                        HotPathViolation(
                            rel, t.line, f"blocking call {text}() in a hot-path scope"
                        )
                    )
        i += 1
    return violations
