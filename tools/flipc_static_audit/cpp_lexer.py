"""Minimal C++ token stream for the FLIPC static protocol auditor.

Not a compiler lexer: just enough to walk declarations, bodies, member
accesses and macro markers in this repository's dialect of C++ (Google
style, no exotic preprocessing in the audited files). Comments and string
literals are dropped; preprocessor directive lines are blanked (both arms
of an #if are scanned — for the audited sources every arm must satisfy the
protocol rules anyway); line numbers are preserved for diagnostics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

IDENT = "ident"
NUMBER = "number"
STRING = "string"
PUNCT = "punct"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<rawstr>R"(?P<rawdelim>[^(\s"\\]*)\(.*?\)(?P=rawdelim)")
    | (?P<str>"(?:\\.|[^"\\\n])*")
    | (?P<char>'(?:\\.|[^'\\\n])+')
    | (?P<num>\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*)
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<punct>->\*?|\+\+|--|<<=|>>=|<=>|::|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\.\.\.|.)
    """,
    re.DOTALL | re.VERBOSE,
)


def _blank_preprocessor_lines(text: str) -> str:
    """Replaces preprocessor directive lines (and their continuations) with
    empty lines so token line numbers stay faithful to the file."""
    out = []
    in_directive = False
    for line in text.split("\n"):
        stripped = line.lstrip()
        if in_directive or stripped.startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            out.append("")
        else:
            in_directive = False
            out.append(line)
    return "\n".join(out)


def lex(text: str) -> list[Token]:
    text = _blank_preprocessor_lines(text)
    tokens: list[Token] = []
    line = 1
    pos = 0
    n = len(text)
    while pos < n:
        m = _TOKEN_RE.match(text, pos)
        if m is None:  # pragma: no cover - regex has a catch-all '.'
            pos += 1
            continue
        kind = m.lastgroup
        raw = m.group(0)
        if kind == "ident":
            tokens.append(Token(IDENT, raw, line))
        elif kind == "num":
            tokens.append(Token(NUMBER, raw, line))
        elif kind in ("str", "rawstr", "char"):
            tokens.append(Token(STRING, "", line))
        elif kind == "punct":
            tokens.append(Token(PUNCT, raw, line))
        elif kind == "rawdelim":  # pragma: no cover - subsumed by rawstr
            pass
        # ws / comment: line bookkeeping only
        line += raw.count("\n")
        pos = m.end()
    return tokens


def match_group(tokens: list[Token], open_index: int) -> int:
    """Index of the token closing the group opened at ``open_index``
    ('(' / '[' / '{'). Returns len(tokens) when unbalanced."""
    pairs = {"(": ")", "[": "]", "{": "}"}
    opener = tokens[open_index].text
    closer = pairs[opener]
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return i
    return len(tokens)
