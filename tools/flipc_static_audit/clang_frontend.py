"""libclang frontend: lowers C++ sources to the audit IR via the real AST.

Function structure — definition boundaries, enclosing class, qualified
name, and the ``annotate("flipc_role_*")`` attributes the role macros
expand to — comes from clang, so macro expansion, templates, and operator
overloads are resolved exactly. Body *facts* (cell ops, raw atomic ops,
plain member assigns, call edges) are extracted by the same token scanner
the dependency-free frontend uses, over the body extent clang reports:
both frontends therefore produce byte-identical Access records for the
same source, and the rules engine cannot diverge between CI (clang) and
local runs (tokparse).

Optional dependency: ``import clang.cindex`` (python3-clang + libclang).
The driver falls back to the tokparse frontend when it is unavailable.
"""

from __future__ import annotations

import json
import os
import shlex

from . import cpp_lexer, tokparse_frontend
from .audit_ir import (
    RAW_ROLE_TO_EFFECTIVE,
    ROLE_ANNOTATIONS_RAW,
    Function,
    TranslationIR,
)


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
    except Exception:
        return False
    try:
        clang.cindex.Index.create()
    except Exception:
        return False
    return True


def _compile_args(compile_commands: str | None, abspath: str, root: str) -> list[str]:
    """Args for parsing ``abspath``: its compile_commands entry if present,
    else the entry of any TU (headers are audited standalone), else a
    sensible default."""
    fallback: list[str] | None = None
    if compile_commands and os.path.exists(compile_commands):
        with open(compile_commands, "r", encoding="utf-8") as f:
            for entry in json.load(f):
                raw = entry.get("arguments") or shlex.split(entry.get("command", ""))
                args = [
                    a
                    for a in raw[1:]
                    if a not in ("-c", "-o")
                    and not a.endswith((".cc", ".cpp", ".o", ".obj"))
                ]
                # Drop the argument following -o/-c that endswith() missed.
                cleaned: list[str] = []
                skip = False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a in ("-o", "-c"):
                        skip = True
                        continue
                    cleaned.append(a)
                if os.path.abspath(entry.get("file", "")) == abspath:
                    return cleaned
                if fallback is None:
                    fallback = cleaned
    if fallback is not None:
        return fallback
    return ["-std=c++20", "-I" + root, "-xc++"]


def _roles_of(cursor) -> set[str]:
    """Raw role names (see ROLE_ANNOTATIONS_RAW) on a cursor."""
    import clang.cindex as ci

    roles: set[str] = set()
    for child in cursor.get_children():
        if child.kind == ci.CursorKind.ANNOTATE_ATTR:
            role = ROLE_ANNOTATIONS_RAW.get(child.spelling)
            if role:
                roles.add(role)
    return roles


def _body_open_token(
    parser: tokparse_frontend._FileParser, lines: list[str], line: int, col: int
) -> int | None:
    """Token index of the body '{' located at (line, col)."""
    if line - 1 >= len(lines):
        return None
    nth = lines[line - 1][: col - 1].count("{")
    seen = 0
    for i, tok in enumerate(parser.toks):
        if tok.line == line and tok.text == "{":
            if seen == nth:
                return i
            seen += 1
    return None


def _qualified_name(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.spelling:
        parts.append(c.spelling)
        c = c.semantic_parent
        if c is not None and c.kind.name == "TRANSLATION_UNIT":
            break
    return "::".join(reversed(parts))


def load_one(
    rel: str,
    abspath: str,
    ir: TranslationIR,
    compile_commands: str | None,
    root: str,
) -> None:
    import clang.cindex as ci

    with open(abspath, "r", encoding="utf-8") as f:
        text = f.read()
    parser = tokparse_frontend._FileParser(rel, cpp_lexer.lex(text), ir)
    lines = text.split("\n")

    index = ci.Index.create()
    tu = index.parse(
        abspath,
        args=_compile_args(compile_commands, abspath, root),
        options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD,
    )

    fn_kinds = {
        ci.CursorKind.FUNCTION_DECL,
        ci.CursorKind.CXX_METHOD,
        ci.CursorKind.CONSTRUCTOR,
        ci.CursorKind.DESTRUCTOR,
        ci.CursorKind.FUNCTION_TEMPLATE,
    }
    class_kinds = {
        ci.CursorKind.CLASS_DECL,
        ci.CursorKind.STRUCT_DECL,
        ci.CursorKind.CLASS_TEMPLATE,
    }

    for cursor in tu.cursor.walk_preorder():
        if cursor.kind not in fn_kinds:
            continue
        loc = cursor.location
        if loc.file is None or os.path.abspath(loc.file.name) != abspath:
            continue
        roles = _roles_of(cursor)
        parent = cursor.semantic_parent
        klass = parent.spelling if parent is not None and parent.kind in class_kinds else ""
        if not cursor.is_definition():
            if roles:
                ir.add_decl_roles(
                    klass,
                    cursor.spelling,
                    {RAW_ROLE_TO_EFFECTIVE[r] for r in roles},
                )
            continue
        body = None
        for child in cursor.get_children():
            if child.kind == ci.CursorKind.COMPOUND_STMT:
                body = child
        if body is None:
            continue
        start = body.extent.start
        open_tok = _body_open_token(parser, lines, start.line, start.column)
        if open_tok is None:
            continue
        fn = Function(
            qname=_qualified_name(cursor),
            simple=cursor.spelling,
            klass=klass,
            file=rel,
            line=start.line,
            roles={RAW_ROLE_TO_EFFECTIVE[r] for r in roles},
            role_macros=set(roles),
        )
        parser._scan_body(fn, open_tok + 1, cpp_lexer.match_group(parser.toks, open_tok))
        ir.functions.append(fn)


def load(
    paths: list[tuple[str, str]],
    compile_commands: str | None = None,
    root: str = ".",
) -> TranslationIR:
    ir = TranslationIR()
    for rel, abspath in paths:
        load_one(rel, abspath, ir, compile_commands, root)
    return ir
