"""Dependency-free frontend: lowers C++ sources to the audit IR by token
parsing.

This frontend exists because libclang is not guaranteed in every build
environment, and the auditor gates CI — it must be able to run anywhere the
repo builds. It is a heuristic parser tuned to this codebase's style
(Google C++, no macro-generated functions in the audited files); the
libclang frontend (clang_frontend.py) extracts the same IR from the real
AST when available, and the fixture self-test runs against both.

Recognized shapes:
  * namespace / class / struct scopes (for qualified names and the
    class-scoped alias table);
  * function definitions, incl. out-of-line `Klass::Method(...) { ... }`
    and constructors with member-initializer lists;
  * FLIPC_ROLE_* macros on declarations and definitions;
  * member cell ops  x.Publish(v) / p->ring_head.ReadRelaxed() / a[i].Read()
  * member raw atomic ops with their memory_order argument;
  * plain member assignments  recv->field = v / recv.field += v / ++recv->f
  * call edges by callee simple name (resolution is the rules engine's job).

Lambdas are scanned as part of the enclosing function body. Unparsable
constructs are skipped, never fatal: the auditor's job is the audited
subset of the tree, and the self-test pins down that the shapes above are
in fact extracted.
"""

from __future__ import annotations

import re

from . import cpp_lexer, hotpath_scan
from .audit_ir import (
    ASSIGN_OP,
    CELL_READ_OPS,
    CELL_WRITE_OPS,
    LOCKS_ONLY_RAW_OPS,
    RAW_READ_OPS,
    RAW_ROLE_TO_EFFECTIVE,
    RAW_WRITE_OPS,
    ROLE_MACROS_RAW,
    Access,
    CallSite,
    Function,
    Impurity,
    Loop,
    TranslationIR,
    WaitSite,
)
from .cpp_lexer import IDENT, NUMBER, PUNCT, Token, match_group

_BOUNDED_MARKER = "FLIPC_BOUNDED_BY"
_WAIT_MARKER = "FLIPC_UNBOUNDED_WAIT"

# Identifiers that look like compile-time constants: kCamelCase constants
# and ALL_CAPS macros/enumerators.
_CONST_IDENT_RE = re.compile(r"(?:k[A-Z]\w*|[A-Z][A-Z0-9_]+)$")

_NOT_A_CALL = {
    "if",
    "for",
    "while",
    "switch",
    "return",
    "sizeof",
    "alignof",
    "alignas",
    "decltype",
    "noexcept",
    "static_cast",
    "dynamic_cast",
    "reinterpret_cast",
    "const_cast",
    "static_assert",
    "catch",
    "throw",
    "new",
    "delete",
    "assert",
    "defined",
}

_ASSIGN_PUNCT = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

_SCOPE_KEYWORDS = {"class", "struct", "union"}


def _is_locks_header(rel: str) -> bool:
    return rel.replace("\\", "/").endswith("src/base/locks.h")


class _FileParser:
    def __init__(self, rel: str, tokens: list[Token], ir: TranslationIR) -> None:
        self.rel = rel
        self.toks = tokens
        self.ir = ir
        self.raw_ops = (RAW_WRITE_OPS | RAW_READ_OPS) if _is_locks_header(rel) else (
            (RAW_WRITE_OPS | RAW_READ_OPS) - LOCKS_ONLY_RAW_OPS
        )

    # ---- small token helpers ------------------------------------------------

    def _text(self, i: int) -> str:
        return self.toks[i].text if 0 <= i < len(self.toks) else ""

    def _kind(self, i: int) -> str:
        return self.toks[i].kind if 0 <= i < len(self.toks) else ""

    def _skip_template_args(self, i: int) -> int:
        """i at '<': returns index past the matching '>'. Heuristic (no
        expression context), good enough for declarator positions."""
        depth = 0
        while i < len(self.toks):
            t = self._text(i)
            if t == "<":
                depth += 1
            elif t in (">", ">>"):
                depth -= 2 if t == ">>" else 1
                if depth <= 0:
                    return i + 1
            elif t in ("(", "[", "{"):
                i = match_group(self.toks, i)
            elif t == ";":
                return i  # not template args after all
            i += 1
        return i

    # ---- declaration scanning ----------------------------------------------

    def parse(self) -> None:
        self._parse_region(0, len(self.toks), scope=[])

    def _parse_region(self, lo: int, hi: int, scope: list[str]) -> None:
        i = lo
        pending_roles: set[str] = set()
        while i < hi:
            t = self.toks[i]
            text = t.text
            if t.kind == IDENT and text == "namespace":
                i, pending_roles = self._enter_namespace(i, hi, scope), set()
            elif t.kind == IDENT and text in _SCOPE_KEYWORDS and self._text(i - 1) != "enum":
                i, pending_roles = self._enter_class(i, hi, scope), set()
            elif t.kind == IDENT and text == "enum":
                i = self._skip_to_body_or_semi(i, hi, consume_body=True)
                pending_roles = set()
            elif t.kind == IDENT and text == "template":
                i += 1
                if self._text(i) == "<":
                    i = self._skip_template_args(i)
            elif t.kind == IDENT and text in ROLE_MACROS_RAW:
                pending_roles.add(ROLE_MACROS_RAW[text])
                i += 1
            elif text in ("public", "private", "protected") and self._text(i + 1) == ":":
                i += 2
                pending_roles = set()
            elif text == ";":
                pending_roles = set()
                i += 1
            elif text == "}":
                i += 1
            elif text == "{":
                i = match_group(self.toks, i) + 1
                pending_roles = set()
            else:
                i = self._scan_declaration(i, hi, scope, pending_roles)
                pending_roles = set()

    def _enter_namespace(self, i: int, hi: int, scope: list[str]) -> int:
        j = i + 1
        parts = []
        while self._kind(j) == IDENT or self._text(j) == "::":
            if self._kind(j) == IDENT:
                parts.append(self._text(j))
            j += 1
        if self._text(j) == "{":
            end = match_group(self.toks, j)
            self._parse_region(j + 1, end, scope + parts)
            return end + 1
        # namespace alias / using: skip to ';'
        while j < hi and self._text(j) != ";":
            j += 1
        return j + 1

    def _enter_class(self, i: int, hi: int, scope: list[str]) -> int:
        j = i + 1
        name = ""
        while j < hi:
            t = self._text(j)
            if self._kind(j) == IDENT and t not in ("final", "alignas"):
                if not name:
                    name = t
            if t == "alignas" and self._text(j + 1) == "(":
                j = match_group(self.toks, j + 1)
            elif t == "<":
                j = self._skip_template_args(j) - 1
            elif t == "{":
                end = match_group(self.toks, j)
                self._parse_region(j + 1, end, scope + [name or "(anon)"])
                # fall out past any trailing declarator ("} x;")
                return end + 1
            elif t == ";":
                return j + 1
            j += 1
        return hi

    def _skip_to_body_or_semi(self, i: int, hi: int, consume_body: bool) -> int:
        j = i
        while j < hi:
            t = self._text(j)
            if t == "{":
                if consume_body:
                    return match_group(self.toks, j) + 1
                return j
            if t == ";":
                return j + 1
            j += 1
        return hi

    def _scan_declaration(
        self, i: int, hi: int, scope: list[str], roles: set[str]
    ) -> int:
        """Parses one declaration starting at i; registers a Function when it
        turns out to be a definition, or declaration roles when it is a
        role-annotated prototype. ``roles`` holds RAW role names (see
        ROLE_MACROS_RAW). Returns the index to continue from."""
        j = i
        name_chain: list[str] | None = None
        params_close = -1
        saw_eq = False
        while j < hi:
            t = self._text(j)
            if self._kind(j) == IDENT and t in ROLE_MACROS_RAW:
                roles = roles | {ROLE_MACROS_RAW[t]}
                j += 1
                continue
            if t == "(":
                close = match_group(self.toks, j)
                if name_chain is None and params_close == -1:
                    chain = self._ident_chain_before(j - 1)
                    if chain:
                        name_chain = chain
                        params_close = close
                j = close + 1
                continue
            if t == "=":
                saw_eq = True
                j += 1
                continue
            if t == "<":
                j = self._skip_template_args(j)
                continue
            if t in ("[",):
                j = match_group(self.toks, j) + 1
                continue
            if t == ";":
                if name_chain and roles:
                    klass = (
                        name_chain[-2]
                        if len(name_chain) > 1
                        else (scope[-1] if scope else "")
                    )
                    self.ir.add_decl_roles(
                        klass,
                        name_chain[-1],
                        {RAW_ROLE_TO_EFFECTIVE[r] for r in roles},
                    )
                return j + 1
            if t == ":" and params_close != -1 and not saw_eq:
                body = self._consume_init_list(j)
                if body is None:
                    return self._skip_to_body_or_semi(j, hi, consume_body=True)
                self._record_function(name_chain, scope, roles, body)
                return match_group(self.toks, body) + 1
            if t == "{":
                if saw_eq or name_chain is None or params_close == -1:
                    # brace initializer (or not a function): skip the group
                    j = match_group(self.toks, j) + 1
                    continue
                self._record_function(name_chain, scope, roles, j)
                return match_group(self.toks, j) + 1
            j += 1
        return hi

    def _ident_chain_before(self, j: int) -> list[str] | None:
        """Reads a (possibly ::-qualified) identifier chain ending at j,
        walking backwards. Returns None when j is not a plausible function
        name position."""
        if self._text(j) == ">":  # templated name: skip back over the args
            depth = 0
            while j >= 0:
                t = self._text(j)
                if t in (">", ">>"):
                    depth += 2 if t == ">>" else 1
                elif t == "<":
                    depth -= 1
                    if depth <= 0:
                        j -= 1
                        break
                j -= 1
        chain: list[str] = []
        if self._kind(j) != IDENT:
            # operator overloads: 'operator' + punct
            if self._kind(j) == PUNCT and self._text(j - 1) == "operator":
                return ["operator" + self._text(j)]
            return None
        name = self._text(j)
        if name in _NOT_A_CALL:
            return None
        chain.append(name)
        j -= 1
        while self._text(j) == "::" and self._kind(j - 1) == IDENT:
            chain.insert(0, self._text(j - 1))
            j -= 2
        return chain

    def _consume_init_list(self, i: int) -> int | None:
        """i at the ':' opening a constructor member-initializer list.
        Returns the index of the body '{', or None on parse failure."""
        j = i + 1
        while j < len(self.toks):
            # initializer name: qualified / templated identifier
            progressed = False
            while self._kind(j) == IDENT or self._text(j) == "::":
                j += 1
                progressed = True
            if self._text(j) == "<":
                j = self._skip_template_args(j)
                progressed = True
            if self._text(j) == "(" or self._text(j) == "{":
                if not progressed:
                    return None
                j = match_group(self.toks, j) + 1
            else:
                return None
            if self._text(j) == ",":
                j += 1
                continue
            if self._text(j) == "{":
                return j
            return None
        return None

    # ---- function bodies ----------------------------------------------------

    def _record_function(
        self, name_chain: list[str], scope: list[str], roles: set[str], body_open: int
    ) -> None:
        simple = name_chain[-1]
        if len(name_chain) > 1:
            klass = name_chain[-2]
        else:
            klass = scope[-1] if scope else ""
        qname = "::".join(scope + name_chain)
        fn = Function(
            qname=qname,
            simple=simple,
            klass=klass,
            file=self.rel,
            line=self.toks[body_open].line,
            roles={RAW_ROLE_TO_EFFECTIVE[r] for r in roles},
            role_macros=set(roles),
        )
        self._scan_body(fn, body_open + 1, match_group(self.toks, body_open))
        self.ir.functions.append(fn)

    def _member_at(self, j: int) -> tuple[str, str] | None:
        """j at the token just before a '.'/'->' + op sequence's dot. Returns
        (member, receiver)."""
        if self._text(j) == "]":
            # a[i].Op(...) — find the '[' and take the ident before it
            depth = 0
            while j >= 0:
                t = self._text(j)
                if t == "]":
                    depth += 1
                elif t == "[":
                    depth -= 1
                    if depth == 0:
                        j -= 1
                        break
                j -= 1
        if self._kind(j) != IDENT:
            return None
        member = self._text(j)
        receiver = ""
        k = j - 1
        if self._text(k) in (".", "->"):
            k -= 1
            if self._text(k) == ")":
                depth = 0
                while k >= 0:
                    t = self._text(k)
                    if t == ")":
                        depth += 1
                    elif t == "(":
                        depth -= 1
                        if depth == 0:
                            k -= 1
                            break
                    k -= 1
            if self._kind(k) == IDENT:
                receiver = self._text(k)
        return member, receiver

    def _find_order(self, open_paren: int) -> str | None:
        close = match_group(self.toks, open_paren)
        for k in range(open_paren + 1, close):
            t = self._text(k)
            if t.startswith("memory_order_"):
                return t[len("memory_order_") :]
            if t == "memory_order" and self._text(k + 1) == "::":
                return self._text(k + 2)
        return None

    # ---- loop boundedness ---------------------------------------------------

    def _top_level_split(self, open_paren: int) -> tuple[int, list[int], int]:
        """For the paren group at ``open_paren``: (close index, indices of
        top-level ';' tokens, index of the first top-level ':' or -1)."""
        close = match_group(self.toks, open_paren)
        depth = 0
        semis: list[int] = []
        colon = -1
        for k in range(open_paren + 1, close):
            txt = self._text(k)
            if txt in ("(", "[", "{"):
                depth += 1
            elif txt in (")", "]", "}"):
                depth -= 1
            elif depth == 0:
                if txt == ";":
                    semis.append(k)
                elif txt == ":" and colon == -1:
                    colon = k
        return close, semis, colon

    def _side_is_constant(self, lo: int, hi: int) -> bool:
        """True when toks[lo:hi] is an expression built only from literals
        and constant-looking identifiers (kFoo / ALL_CAPS / sizeof)."""
        ok_punct = {"::", ".", "->", "(", ")", "+", "-", "*", "/", "%", "<<", ">>", ","}
        has_const = False
        for k in range(lo, hi):
            t = self.toks[k]
            if t.kind == NUMBER:
                has_const = True
            elif t.kind == IDENT:
                if t.text == "sizeof" or _CONST_IDENT_RE.fullmatch(t.text):
                    has_const = True
                elif t.text not in ("true", "false"):
                    return False
            elif t.text not in ok_punct:
                return False
        return has_const

    def _cond_is_bounded(self, lo: int, hi: int) -> bool:
        """Heuristic trip-bound recognizer for a loop condition toks[lo:hi):
        countdown loops (`budget-- > 0`) and comparisons against a
        compile-time-constant-looking bound (`i < kMax`, `i != 4`)."""
        if hi <= lo:
            return False
        for k in range(lo, hi):
            if self._text(k) == "--":
                return True
        depth = 0
        for k in range(lo, hi):
            txt = self._text(k)
            if txt in ("(", "[", "{"):
                depth += 1
            elif txt in (")", "]", "}"):
                depth -= 1
            elif depth == 0 and txt in ("<", "<=", ">", ">=", "!="):
                return self._side_is_constant(lo, k) or self._side_is_constant(
                    k + 1, hi
                )
        return False

    # ---- body scanning ------------------------------------------------------

    def _scan_body(self, fn: Function, lo: int, hi: int) -> None:
        calls: set[str] = set()
        depth = 0
        # Brace depths at which a hot scope / exemption was armed, exactly
        # the hotpath_scan.scan() discipline but function-local. Exemptions
        # count even in functions that never arm a scope themselves: a
        # callee's FLIPC_HOT_PATH_EXEMPT region suspends the caller's armed
        # scope at run time, so the certifier honors it statically too.
        hot_depths: list[int] = []
        exempt_depths: list[int] = []
        pending_bound: str | None = None
        pending_wait = False
        # Token index of a do-block's closing '}' -> its Loop record, so the
        # trailing `while (cond)` updates the right loop instead of opening
        # a new one.
        do_tails: dict[int, Loop] = {}

        def in_hot() -> bool:
            return bool(hot_depths) and not exempt_depths

        def in_exempt() -> bool:
            return bool(exempt_depths)

        def add_loop(kind: str, line: int, bounded: bool) -> Loop:
            nonlocal pending_bound, pending_wait
            loop = Loop(
                kind=kind,
                file=self.rel,
                line=line,
                bounded=bounded,
                bound=pending_bound,
                wait=pending_wait,
                in_hot=in_hot(),
                in_exempt=in_exempt(),
            )
            pending_bound = None
            pending_wait = False
            fn.loops.append(loop)
            return loop

        i = lo
        while i < hi:
            t = self.toks[i]
            text = t.text
            if text == "{":
                depth += 1
            elif text == "}":
                depth -= 1
                while hot_depths and depth < hot_depths[-1]:
                    hot_depths.pop()
                while exempt_depths and depth < exempt_depths[-1]:
                    exempt_depths.pop()
            elif t.kind == IDENT:
                nxt = self._text(i + 1)
                prev = self._text(i - 1)
                if text in hotpath_scan.HOT_MARKERS:
                    hot_depths.append(depth)
                    fn.hot_lines.append(t.line)
                    i += 1
                    continue
                if text == hotpath_scan.EXEMPT_MARKER:
                    exempt_depths.append(depth)
                    i += 1
                    continue
                if text == _BOUNDED_MARKER and nxt == "(":
                    close = match_group(self.toks, i + 1)
                    pending_bound = " ".join(
                        self._text(k) for k in range(i + 2, close)
                    )
                    i = close + 1
                    continue
                if text == _WAIT_MARKER and nxt == "(":
                    pending_wait = True
                    fn.wait_sites.append(
                        WaitSite(file=self.rel, line=t.line, in_hot=in_hot())
                    )
                    i = match_group(self.toks, i + 1) + 1
                    continue
                if text == "for" and nxt == "(":
                    close, semis, colon = self._top_level_split(i + 1)
                    if not semis and colon != -1:
                        add_loop("range-for", t.line, True)
                    elif len(semis) >= 2:
                        cond_lo, cond_hi = semis[0] + 1, semis[1]
                        if cond_hi <= cond_lo:
                            add_loop("forever", t.line, False)
                        else:
                            add_loop(
                                "for", t.line, self._cond_is_bounded(cond_lo, cond_hi)
                            )
                    else:
                        add_loop("for", t.line, False)
                    i += 1
                    continue
                if text == "while" and nxt == "(":
                    tail_of = do_tails.pop(i - 1, None) if prev == "}" else None
                    close = match_group(self.toks, i + 1)
                    if tail_of is not None:
                        tail_of.bounded = self._cond_is_bounded(i + 2, close)
                    else:
                        add_loop(
                            "while", t.line, self._cond_is_bounded(i + 2, close)
                        )
                    i += 1
                    continue
                if text == "do" and nxt == "{":
                    loop = add_loop("do", t.line, False)
                    do_tails[match_group(self.toks, i + 1)] = loop
                    i += 1
                    continue
                if not in_exempt():
                    if text in hotpath_scan.BANNED_KEYWORDS:
                        fn.impurities.append(
                            Impurity(
                                what=hotpath_scan.BANNED_KEYWORDS[text].replace(
                                    " in a hot-path scope", ""
                                ),
                                file=self.rel,
                                line=t.line,
                            )
                        )
                    elif (
                        text in hotpath_scan.BANNED_TYPES
                        and prev not in (".", "->")
                    ):
                        fn.impurities.append(
                            Impurity(
                                what=hotpath_scan.BANNED_TYPES[text].replace(
                                    " in a hot-path scope", ""
                                ),
                                file=self.rel,
                                line=t.line,
                            )
                        )
                    elif (
                        text in hotpath_scan.BANNED_CALLS
                        and nxt == "("
                        and prev not in (".", "->")
                    ):
                        fn.impurities.append(
                            Impurity(
                                what=f"blocking call {text}()",
                                file=self.rel,
                                line=t.line,
                            )
                        )
                if text == "memory_order_seq_cst":
                    self.ir.seq_cst_sites.append((self.rel, t.line))
                if nxt == "(":
                    if text in CELL_WRITE_OPS or text in CELL_READ_OPS:
                        if prev in (".", "->"):
                            got = self._member_at(i - 2)
                            if got:
                                fn.accesses.append(
                                    Access(
                                        member=got[0],
                                        receiver=got[1],
                                        op=text,
                                        order=None,
                                        file=self.rel,
                                        line=t.line,
                                    )
                                )
                    elif text in self.raw_ops:
                        if prev in (".", "->"):
                            got = self._member_at(i - 2)
                            if got:
                                fn.accesses.append(
                                    Access(
                                        member=got[0],
                                        receiver=got[1],
                                        op=text,
                                        order=self._find_order(i + 1),
                                        file=self.rel,
                                        line=t.line,
                                    )
                                )
                    if (
                        text not in _NOT_A_CALL
                        and prev != "new"
                        and not text.startswith("FLIPC_")
                    ):
                        calls.add(text)
                        fn.call_sites.append(
                            CallSite(
                                name=text,
                                line=t.line,
                                in_hot=in_hot(),
                                in_exempt=in_exempt(),
                            )
                        )
                elif nxt in _ASSIGN_PUNCT and prev in (".", "->"):
                    got = self._member_at(i)
                    if got:
                        fn.accesses.append(
                            Access(
                                member=got[0],
                                receiver=got[1],
                                op=ASSIGN_OP,
                                order=None,
                                file=self.rel,
                                line=t.line,
                            )
                        )
                elif nxt in ("++", "--") and prev in (".", "->"):
                    got = self._member_at(i)
                    if got:
                        fn.accesses.append(
                            Access(
                                member=got[0],
                                receiver=got[1],
                                op=ASSIGN_OP,
                                order=None,
                                file=self.rel,
                                line=t.line,
                            )
                        )
            elif text in ("++", "--"):
                # prefix increment of a member: ++recv->member
                j = i + 1
                if self._kind(j) == IDENT and self._text(j + 1) in (".", "->"):
                    member_tok = j + 2
                    if (
                        self._kind(member_tok) == IDENT
                        and self._text(member_tok + 1) not in (".", "->", "(")
                    ):
                        fn.accesses.append(
                            Access(
                                member=self._text(member_tok),
                                receiver=self._text(j),
                                op=ASSIGN_OP,
                                order=None,
                                file=self.rel,
                                line=t.line,
                            )
                        )
            i += 1
        fn.calls = sorted(calls)


def parse_source(rel: str, text: str, ir: TranslationIR) -> None:
    _FileParser(rel, cpp_lexer.lex(text), ir).parse()


def load(paths: list[tuple[str, str]]) -> TranslationIR:
    """paths: (relative-name, absolute-path) pairs."""
    ir = TranslationIR()
    for rel, abspath in paths:
        with open(abspath, "r", encoding="utf-8") as f:
            parse_source(rel, f.read(), ir)
    return ir
