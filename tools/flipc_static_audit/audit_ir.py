"""Shared micro-IR for the FLIPC static protocol auditor.

Both frontends (libclang and the dependency-free token parser) lower the
audited sources into this IR; the rules engine consumes only this, so the
two frontends are interchangeable and the rules are tested independently of
which one produced the facts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

# Access ops. Cell ops are the SingleWriterCell interface; raw ops are the
# std::atomic interface (order is the explicit memory_order argument, or
# None when the call relied on the seq_cst default — a hard error).
CELL_WRITE_OPS = {"Publish": "release", "StoreRelaxed": "relaxed"}
CELL_READ_OPS = {"Read": "acquire", "ReadRelaxed": "relaxed"}
RAW_WRITE_OPS = {
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "test_and_set",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "clear",
}
RAW_READ_OPS = {"load", "test"}
# `clear` and `test` collide with std::vector/std::bitset-style interfaces;
# frontends only emit them for src/base/locks.h (the one audited file using
# std::atomic_flag).
LOCKS_ONLY_RAW_OPS = {"clear", "test"}

ASSIGN_OP = "assign"  # plain (non-atomic) member store

ROLE_APP = "app"
ROLE_ENGINE = "engine"
ROLE_QUIESCENT = "quiescent"
# Raw role names as declared in the source; "engine_shard" is the
# shard-qualified engine role. The rules engine works on EFFECTIVE roles
# (shard-qualified engine IS the engine role — the auditor proves the writer
# side, the shard dimension is enforced at run time), but the raw name is
# kept on the Function so the protocol-IR export can carry the shard
# qualifier.
ROLE_MACROS_RAW = {
    "FLIPC_ROLE_APP": "app",
    "FLIPC_ROLE_ENGINE": "engine",
    "FLIPC_ROLE_ENGINE_SHARD": "engine_shard",
    "FLIPC_ROLE_QUIESCENT": "quiescent",
}
RAW_ROLE_TO_EFFECTIVE = {
    "app": ROLE_APP,
    "engine": ROLE_ENGINE,
    "engine_shard": ROLE_ENGINE,
    "quiescent": ROLE_QUIESCENT,
}
ROLE_MACROS = {
    macro: RAW_ROLE_TO_EFFECTIVE[raw] for macro, raw in ROLE_MACROS_RAW.items()
}
ROLE_ANNOTATIONS_RAW = {
    "flipc_role_app": "app",
    "flipc_role_engine": "engine",
    "flipc_role_engine_shard": "engine_shard",
    "flipc_role_quiescent": "quiescent",
}
ROLE_ANNOTATIONS = {
    ann: RAW_ROLE_TO_EFFECTIVE[raw] for ann, raw in ROLE_ANNOTATIONS_RAW.items()
}


@dataclass
class Access:
    member: str  # member the operation is applied to ("release_", "ring_head")
    receiver: str  # identifier the member was reached through ("cursors_"), or ""
    op: str  # one of CELL_*/RAW_* op names, or ASSIGN_OP
    order: str | None  # explicit memory_order name for raw ops, else None
    file: str
    line: int

    @property
    def is_write(self) -> bool:
        return op_is_write(self.op)

    @property
    def is_cell_op(self) -> bool:
        return self.op in CELL_WRITE_OPS or self.op in CELL_READ_OPS

    @property
    def is_raw_op(self) -> bool:
        return self.op in RAW_WRITE_OPS or self.op in RAW_READ_OPS


def op_is_write(op: str) -> bool:
    return op in CELL_WRITE_OPS or op in RAW_WRITE_OPS or op == ASSIGN_OP


@dataclass
class CallSite:
    """One `name(...)` call expression inside a function body."""

    name: str  # callee simple name
    line: int
    in_hot: bool  # inside an armed (FLIPC_HOT_PATH*) non-exempt region
    in_exempt: bool  # inside a FLIPC_HOT_PATH_EXEMPT region


@dataclass
class Loop:
    """One loop statement inside a function body, with the facts the
    bounded-progress certifier needs."""

    kind: str  # "for" | "forever" | "range-for" | "while" | "do"
    file: str
    line: int
    bounded: bool  # trip bound recognized automatically (constant/countdown)
    bound: str | None  # FLIPC_BOUNDED_BY(expr) annotation text, if any
    wait: bool  # annotated FLIPC_UNBOUNDED_WAIT park site
    in_hot: bool
    in_exempt: bool


@dataclass
class Impurity:
    """A banned-construct site (allocation/unwinding/lock type/blocking
    call) OUTSIDE exempt regions — reported when the enclosing function is
    reachable from a hot-path scope."""

    what: str  # human-readable description, mirrors hotpath_scan's wording
    file: str
    line: int


@dataclass
class WaitSite:
    """A FLIPC_UNBOUNDED_WAIT annotation site (for the hot-scope ban and
    the perf-smoke gate's census)."""

    file: str
    line: int
    in_hot: bool


@dataclass
class Function:
    qname: str  # qualified as well as the parser could manage
    simple: str  # unqualified name ("Send")
    klass: str  # enclosing class name ("Endpoint"), "" for free functions
    file: str
    line: int
    roles: set[str] = field(default_factory=set)  # declared effective roles
    role_macros: set[str] = field(default_factory=set)  # raw names incl. engine_shard
    calls: list[str] = field(default_factory=list)  # simple callee names
    accesses: list[Access] = field(default_factory=list)
    hot_lines: list[int] = field(default_factory=list)  # FLIPC_HOT_PATH markers
    call_sites: list[CallSite] = field(default_factory=list)
    loops: list[Loop] = field(default_factory=list)
    impurities: list[Impurity] = field(default_factory=list)
    wait_sites: list[WaitSite] = field(default_factory=list)

    @property
    def is_hot_root(self) -> bool:
        return bool(self.hot_lines)


@dataclass
class TranslationIR:
    """Everything a frontend extracted from the audited sources."""

    functions: list[Function] = field(default_factory=list)
    # Roles found on declarations without bodies, keyed (klass, simple);
    # merged onto matching definitions by the rules engine.
    decl_roles: dict[tuple[str, str], set[str]] = field(default_factory=dict)
    # memory_order_seq_cst mentions: (file, line).
    seq_cst_sites: list[tuple[str, int]] = field(default_factory=list)

    def add_decl_roles(self, klass: str, simple: str, roles: set[str]) -> None:
        if roles:
            self.decl_roles.setdefault((klass, simple), set()).update(roles)

    def merge(self, other: "TranslationIR") -> None:
        self.functions.extend(other.functions)
        for key, roles in other.decl_roles.items():
            self.decl_roles.setdefault(key, set()).update(roles)
        self.seq_cst_sites.extend(other.seq_cst_sites)


# --------------------------------------------------------------------------
# (De)serialization — the content-hash cache stores one TranslationIR per
# audited file as JSON. The schema is internal to the auditor; bump
# flipc_static_audit.CACHE_SCHEMA whenever it changes shape.
# --------------------------------------------------------------------------


def function_to_dict(fn: Function) -> dict:
    d = asdict(fn)
    d["roles"] = sorted(fn.roles)
    d["role_macros"] = sorted(fn.role_macros)
    return d


def function_from_dict(d: dict) -> Function:
    return Function(
        qname=d["qname"],
        simple=d["simple"],
        klass=d["klass"],
        file=d["file"],
        line=d["line"],
        roles=set(d["roles"]),
        role_macros=set(d["role_macros"]),
        calls=list(d["calls"]),
        accesses=[Access(**a) for a in d["accesses"]],
        hot_lines=list(d["hot_lines"]),
        call_sites=[CallSite(**c) for c in d["call_sites"]],
        loops=[Loop(**l) for l in d["loops"]],
        impurities=[Impurity(**i) for i in d["impurities"]],
        wait_sites=[WaitSite(**w) for w in d["wait_sites"]],
    )


def ir_to_dict(ir: TranslationIR) -> dict:
    return {
        "functions": [function_to_dict(fn) for fn in ir.functions],
        "decl_roles": [
            [klass, simple, sorted(roles)]
            for (klass, simple), roles in sorted(ir.decl_roles.items())
        ],
        "seq_cst_sites": [[rel, line] for rel, line in ir.seq_cst_sites],
    }


def ir_from_dict(d: dict) -> TranslationIR:
    ir = TranslationIR()
    ir.functions = [function_from_dict(f) for f in d["functions"]]
    for klass, simple, roles in d["decl_roles"]:
        ir.decl_roles[(klass, simple)] = set(roles)
    ir.seq_cst_sites = [(rel, line) for rel, line in d["seq_cst_sites"]]
    return ir
