"""Shared micro-IR for the FLIPC static protocol auditor.

Both frontends (libclang and the dependency-free token parser) lower the
audited sources into this IR; the rules engine consumes only this, so the
two frontends are interchangeable and the rules are tested independently of
which one produced the facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Access ops. Cell ops are the SingleWriterCell interface; raw ops are the
# std::atomic interface (order is the explicit memory_order argument, or
# None when the call relied on the seq_cst default — a hard error).
CELL_WRITE_OPS = {"Publish": "release", "StoreRelaxed": "relaxed"}
CELL_READ_OPS = {"Read": "acquire", "ReadRelaxed": "relaxed"}
RAW_WRITE_OPS = {
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "test_and_set",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "clear",
}
RAW_READ_OPS = {"load", "test"}
# `clear` and `test` collide with std::vector/std::bitset-style interfaces;
# frontends only emit them for src/base/locks.h (the one audited file using
# std::atomic_flag).
LOCKS_ONLY_RAW_OPS = {"clear", "test"}

ASSIGN_OP = "assign"  # plain (non-atomic) member store

ROLE_APP = "app"
ROLE_ENGINE = "engine"
ROLE_QUIESCENT = "quiescent"
ROLE_MACROS = {
    "FLIPC_ROLE_APP": ROLE_APP,
    "FLIPC_ROLE_ENGINE": ROLE_ENGINE,
    # Shard-qualified engine role: statically it IS the engine role (the
    # auditor proves the writer side); the per-shard confinement is enforced
    # at run time by the boundary checker's shard-qualified declarations.
    "FLIPC_ROLE_ENGINE_SHARD": ROLE_ENGINE,
    "FLIPC_ROLE_QUIESCENT": ROLE_QUIESCENT,
}
ROLE_ANNOTATIONS = {
    "flipc_role_app": ROLE_APP,
    "flipc_role_engine": ROLE_ENGINE,
    "flipc_role_engine_shard": ROLE_ENGINE,
    "flipc_role_quiescent": ROLE_QUIESCENT,
}


@dataclass
class Access:
    member: str  # member the operation is applied to ("release_", "ring_head")
    receiver: str  # identifier the member was reached through ("cursors_"), or ""
    op: str  # one of CELL_*/RAW_* op names, or ASSIGN_OP
    order: str | None  # explicit memory_order name for raw ops, else None
    file: str
    line: int

    @property
    def is_write(self) -> bool:
        return op_is_write(self.op)

    @property
    def is_cell_op(self) -> bool:
        return self.op in CELL_WRITE_OPS or self.op in CELL_READ_OPS

    @property
    def is_raw_op(self) -> bool:
        return self.op in RAW_WRITE_OPS or self.op in RAW_READ_OPS


def op_is_write(op: str) -> bool:
    return op in CELL_WRITE_OPS or op in RAW_WRITE_OPS or op == ASSIGN_OP


@dataclass
class Function:
    qname: str  # qualified as well as the parser could manage
    simple: str  # unqualified name ("Send")
    klass: str  # enclosing class name ("Endpoint"), "" for free functions
    file: str
    line: int
    roles: set[str] = field(default_factory=set)  # declared roles
    calls: list[str] = field(default_factory=list)  # simple callee names
    accesses: list[Access] = field(default_factory=list)


@dataclass
class TranslationIR:
    """Everything a frontend extracted from the audited sources."""

    functions: list[Function] = field(default_factory=list)
    # Roles found on declarations without bodies, keyed (klass, simple);
    # merged onto matching definitions by the rules engine.
    decl_roles: dict[tuple[str, str], set[str]] = field(default_factory=dict)
    # memory_order_seq_cst mentions: (file, line).
    seq_cst_sites: list[tuple[str, int]] = field(default_factory=list)

    def add_decl_roles(self, klass: str, simple: str, roles: set[str]) -> None:
        if roles:
            self.decl_roles.setdefault((klass, simple), set()).update(roles)

    def merge(self, other: "TranslationIR") -> None:
        self.functions.extend(other.functions)
        for key, roles in other.decl_roles.items():
            self.decl_roles.setdefault(key, set()).update(roles)
        self.seq_cst_sites.extend(other.seq_cst_sites)
