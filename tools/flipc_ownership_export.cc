// Exports the ownership tables + memory-order policy as JSON for the static
// protocol auditor (tools/flipc_static_audit).
//
// src/shm/ownership_layout.h is the single source of truth for who writes
// each shared comm-buffer word and how its atomic accesses must be ordered.
// The auditor is Python; rather than let a hand-maintained copy drift, this
// tiny generator walks the same constexpr tables the compile-time lint
// walks and prints them as JSON. The committed copy (tools/
// ownership_policy.json) is compared against fresh output by the
// flipc_ownership_policy_drift ctest, so editing the tables without
// re-exporting breaks the build — in both directions.
//
// The output is deterministic (fixed field order, no timestamps, LF line
// ends) so `cmake -E compare_files` is a valid drift check.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/shm/ownership_layout.h"

namespace {

using flipc::shm::ArenaOwnership;
using flipc::shm::AuditAlias;
using flipc::shm::FieldOrderKind;
using flipc::shm::FieldOrderPolicy;
using flipc::shm::FieldOwnership;
using flipc::waitfree::Writer;

const char* PolicyWriterName(Writer w) {
  return w == Writer::kApplication ? "app" : "engine";
}

const char* KindName(FieldOrderKind k) {
  switch (k) {
    case FieldOrderKind::kCursor:
      return "cursor";
    case FieldOrderKind::kHintCursor:
      return "hint_cursor";
    case FieldOrderKind::kFlag:
      return "flag";
    case FieldOrderKind::kCounter:
      return "counter";
    case FieldOrderKind::kConfig:
      return "config";
    case FieldOrderKind::kConfigPublish:
      return "config_publish";
    case FieldOrderKind::kDataCell:
      return "data_cell";
    case FieldOrderKind::kRmw:
      return "rmw";
    case FieldOrderKind::kPlain:
      return "plain";
  }
  return "?";
}

// Looks a field's ordering kind up in kFieldOrderKinds; nullptr when the
// kind table has no row for it (a drift the generator turns into a failure).
const FieldOrderPolicy* FindKind(const char* name) {
  for (const FieldOrderPolicy& p : flipc::shm::kFieldOrderKinds) {
    if (std::strcmp(p.name, name) == 0) {
      return &p;
    }
  }
  return nullptr;
}

struct Emitter {
  std::string out;
  bool first_in_list = true;

  void ListStart(const char* key) {
    out += "  \"";
    out += key;
    out += "\": [\n";
    first_in_list = true;
  }
  void ListEnd() { out += "\n  ]"; }
  void Row(const std::string& row) {
    if (!first_in_list) {
      out += ",\n";
    }
    first_in_list = false;
    out += "    " + row;
  }
};

std::string FieldRow(const FieldOwnership& f, FieldOrderKind kind) {
  char row[512];
  std::snprintf(row, sizeof(row),
                "{\"name\": \"%s\", \"writer\": \"%s\", \"checked_cell\": %s, "
                "\"quiescent\": %s, \"kind\": \"%s\", \"size\": %zu}",
                f.name, PolicyWriterName(f.writer), f.checked_cell ? "true" : "false",
                f.quiescent ? "true" : "false", KindName(kind), f.size);
  return row;
}

bool missing_kind = false;

template <std::size_t N>
void EmitTable(Emitter& e, const FieldOwnership (&fields)[N]) {
  for (const FieldOwnership& f : fields) {
    const FieldOrderPolicy* kind = FindKind(f.name);
    if (kind == nullptr) {
      std::fprintf(stderr, "flipc_ownership_export: no FieldOrderKind for %s\n", f.name);
      missing_kind = true;
      continue;
    }
    e.Row(FieldRow(f, kind->kind));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Emitter e;
  e.out += "{\n";
  e.out += "  \"version\": 1,\n";

  char line[256];
  std::snprintf(line, sizeof(line), "  \"cache_line_size\": %zu,\n",
                static_cast<std::size_t>(flipc::kCacheLineSize));
  e.out += line;

  // seq_cst is confined to the Peterson lock's four accesses; the count
  // matches tools/flipc_hotpath_lint.cc (kExpectedSeqCstLines).
  e.out +=
      "  \"seq_cst\": {\"file\": \"src/base/locks.h\", \"expected_count\": 4},\n";

  e.ListStart("fields");
  EmitTable(e, flipc::shm::kEndpointRecordOwnership);
  EmitTable(e, flipc::shm::kTelemetryBlockOwnership);
  EmitTable(e, flipc::shm::kQueueCursorsOwnership);
  EmitTable(e, flipc::shm::kDoorbellCursorsOwnership);
  EmitTable(e, flipc::shm::kPaddedDropCounterOwnership);
  EmitTable(e, flipc::shm::kHandoffCursorsOwnership);
  EmitTable(e, flipc::shm::kCommBufferHeaderOwnership);
  // Arena cell arrays: no fixed offset, so they live in their own table;
  // checked cells (DeclareOwner'd per region by CommBuffer), never
  // quiescent-written.
  for (const ArenaOwnership& a : flipc::shm::kArenaCellOwnership) {
    const FieldOrderPolicy* kind = FindKind(a.name);
    if (kind == nullptr) {
      std::fprintf(stderr, "flipc_ownership_export: no FieldOrderKind for %s\n", a.name);
      missing_kind = true;
      continue;
    }
    char row[512];
    std::snprintf(row, sizeof(row),
                  "{\"name\": \"%s\", \"writer\": \"%s\", \"checked_cell\": true, "
                  "\"quiescent\": false, \"kind\": \"%s\", \"size\": 0}",
                  a.name, PolicyWriterName(a.writer), KindName(kind->kind));
    e.Row(row);
  }
  e.ListEnd();
  e.out += ",\n";

  e.ListStart("aliases");
  for (const AuditAlias& a : flipc::shm::kAuditAliases) {
    char row[512];
    std::snprintf(row, sizeof(row),
                  "{\"class\": \"%s\", \"member\": \"%s\", \"field\": \"%s\"}", a.klass,
                  a.member, a.field);
    e.Row(row);
  }
  e.ListEnd();
  e.out += ",\n";

  e.ListStart("handoff_members");
  for (const char* m : flipc::shm::kHandoffMembers) {
    e.Row(std::string("\"") + m + "\"");
  }
  e.ListEnd();
  e.out += "\n}\n";

  // Reverse completeness: a kind row whose field vanished from the
  // ownership tables is equally a drift.
  for (const FieldOrderPolicy& p : flipc::shm::kFieldOrderKinds) {
    bool found = false;
    for (const ArenaOwnership& a : flipc::shm::kArenaCellOwnership) {
      found = found || std::strcmp(a.name, p.name) == 0;
    }
    auto scan = [&found, &p](const FieldOwnership* fields, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        if (std::strcmp(fields[i].name, p.name) == 0) {
          found = true;
        }
      }
    };
    scan(flipc::shm::kEndpointRecordOwnership,
         std::size(flipc::shm::kEndpointRecordOwnership));
    scan(flipc::shm::kTelemetryBlockOwnership,
         std::size(flipc::shm::kTelemetryBlockOwnership));
    scan(flipc::shm::kQueueCursorsOwnership,
         std::size(flipc::shm::kQueueCursorsOwnership));
    scan(flipc::shm::kDoorbellCursorsOwnership,
         std::size(flipc::shm::kDoorbellCursorsOwnership));
    scan(flipc::shm::kPaddedDropCounterOwnership,
         std::size(flipc::shm::kPaddedDropCounterOwnership));
    scan(flipc::shm::kHandoffCursorsOwnership,
         std::size(flipc::shm::kHandoffCursorsOwnership));
    scan(flipc::shm::kCommBufferHeaderOwnership,
         std::size(flipc::shm::kCommBufferHeaderOwnership));
    if (!found) {
      std::fprintf(stderr,
                   "flipc_ownership_export: kind row %s matches no ownership field\n",
                   p.name);
      missing_kind = true;
    }
  }
  if (missing_kind) {
    return 1;
  }

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "wb");
    if (f == nullptr) {
      std::perror("flipc_ownership_export: fopen");
      return 1;
    }
    std::fwrite(e.out.data(), 1, e.out.size(), f);
    std::fclose(f);
  } else {
    std::fwrite(e.out.data(), 1, e.out.size(), stdout);
  }
  return 0;
}
