# Drift check between src/shm/ownership_layout.h (via the
# flipc_ownership_export generator) and the committed
# tools/ownership_policy.json the static auditor consumes. Run as a ctest
# (flipc_ownership_policy_drift); regenerate the committed copy with:
#
#   build/tools/flipc_ownership_export tools/ownership_policy.json
#
# Inputs: EXPORT_TOOL, COMMITTED, FRESH.
execute_process(COMMAND ${EXPORT_TOOL} ${FRESH} RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "flipc_ownership_export failed (rc=${_rc}): the "
                      "ownership tables and the FieldOrderKind/alias tables "
                      "in src/shm/ownership_layout.h disagree")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${COMMITTED} ${FRESH}
                RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "tools/ownership_policy.json drifted from "
                      "src/shm/ownership_layout.h; regenerate it with "
                      "flipc_ownership_export (fresh copy at ${FRESH})")
endif()
