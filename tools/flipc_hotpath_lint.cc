// Hot-path purity lint: the static half of the enforcement subsystem whose
// runtime half is src/base/hotpath.h (see docs/MEMORY_MODEL.md §4).
//
// Two passes:
//
//  1. Symbol pass. For each manifest entry, runs `nm -P` over the compiled
//     hot-path objects (static-library archives, optionally filtered to one
//     member TU) and fails on undefined references to:
//       * allocation entry points (operator new/delete, malloc family) —
//         unless the entry's class is `nolock`, which permits allocation
//         (cold-path construction, simulated-wire payload) but still denies
//         locks and blocking calls;
//       * pthread locking (pthread_mutex_*, rwlock, spinlock, condvars,
//         semaphores) — what std::mutex and friends lower to;
//       * blocking libc entry points (nanosleep, poll, select, epoll, ...).
//     The runtime guards catch what symbols cannot (an allocation on a cold
//     branch of a hot TU is fine; one inside an armed scope is not) and
//     vice versa (a pthread_mutex reference is a landmine even if today's
//     tests never walk the branch). One C++ artifact is waived: a TU that
//     instantiates a virtual-destructor class emits a weak *deleting*
//     destructor whose body calls operator delete; that import is accepted
//     iff the member defines such a destructor and imports no allocator.
//
//  2. Source pass. Walks src/**/*.{h,cc} and enforces the atomics
//     discipline: raw `std::atomic` / `memory_order_` tokens are forbidden
//     outside src/waitfree/ and src/base/locks.h except for files in the
//     curated allowlist (tools/hotpath_lint_allowlist.txt, each with a
//     reason), and `memory_order_seq_cst` is forbidden everywhere except
//     the Peterson lock's documented whitelist in src/base/locks.h (exactly
//     kExpectedSeqCstLines lines — a new seq_cst access anywhere, including
//     locks.h, must be argued past this lint).
//
// Modes:
//   flipc_hotpath_lint --manifest M --source-root DIR --allowlist F
//       run both passes (the flipc_hotpath_lint ctest).
//   flipc_hotpath_lint --selftest BAD_OBJECT BAD_SOURCE
//       verify the lint still detects violations: the seeded-bad object
//       must fail the symbol pass and the seeded-bad source file must fail
//       the source pass (the flipc_hotpath_lint_selftest ctest).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

int failures = 0;

void Fail(const std::string& message) {
  std::fprintf(stderr, "hotpath lint FAIL: %s\n", message.c_str());
  ++failures;
}

// ---- Symbol pass ------------------------------------------------------------

enum class PurityClass { kPure, kNoLock };

struct DeniedSymbol {
  const char* prefix;   // match by prefix (mangled names carry suffixes)
  const char* why;
};

// Allocation entry points: operator new/new[]/delete/delete[] mangle to
// _Znw/_Zna/_Zdl/_Zda prefixes; the C allocator family is matched by name.
const DeniedSymbol kAllocSymbols[] = {
    {"_Znw", "operator new"},
    {"_Zna", "operator new[]"},
    {"_Zdl", "operator delete"},
    {"_Zda", "operator delete[]"},
    {"malloc", "malloc"},
    {"calloc", "calloc"},
    {"realloc", "realloc"},
    {"aligned_alloc", "aligned_alloc"},
    {"posix_memalign", "posix_memalign"},
    {"memalign", "memalign"},
    {"valloc", "valloc"},
};

// What std::mutex / std::shared_mutex / std::condition_variable lower to.
const DeniedSymbol kLockSymbols[] = {
    {"pthread_mutex_", "pthread mutex"},
    {"pthread_rwlock_", "pthread rwlock"},
    {"pthread_spin_", "pthread spinlock"},
    {"pthread_cond_", "pthread condvar"},
    {"sem_wait", "POSIX semaphore wait"},
    {"sem_timedwait", "POSIX semaphore wait"},
    {"sem_post", "POSIX semaphore post"},
};

const DeniedSymbol kBlockingSymbols[] = {
    {"nanosleep", "nanosleep"},
    {"clock_nanosleep", "clock_nanosleep"},
    {"usleep", "usleep"},
    {"sleep", "sleep"},
    {"poll", "poll"},
    {"ppoll", "ppoll"},
    {"select", "select"},
    {"pselect", "pselect"},
    {"epoll_wait", "epoll_wait"},
    {"epoll_pwait", "epoll_pwait"},
    {"pause", "pause"},
    {"sigwait", "sigwait"},
};

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Mangled C-library references sometimes carry a glibc version suffix
// (e.g. "pthread_mutex_lock@GLIBC_2.x") or leading underscores from
// platform decoration; strip the version, tolerate one leading underscore.
std::string NormalizeSymbol(std::string name) {
  const std::size_t at = name.find('@');
  if (at != std::string::npos) {
    name.resize(at);
  }
  if (!name.empty() && name[0] == '_' && !StartsWith(name, "_Z")) {
    // "_IO_printf"-style decorations; "__libc_malloc" etc.
    std::size_t i = 0;
    while (i < name.size() && name[i] == '_') {
      ++i;
    }
    // Keep the C++-mangled names untouched; strip only C decorations.
    if (name.compare(0, 2, "_Z") != 0) {
      name = name.substr(i);
    }
  }
  return name;
}

const DeniedSymbol* MatchDenied(const std::string& symbol, PurityClass cls) {
  const std::string name = NormalizeSymbol(symbol);
  if (cls == PurityClass::kPure) {
    for (const DeniedSymbol& d : kAllocSymbols) {
      if (StartsWith(name, d.prefix) || StartsWith(symbol, d.prefix)) {
        return &d;
      }
    }
  }
  for (const DeniedSymbol& d : kLockSymbols) {
    if (StartsWith(name, d.prefix) || StartsWith(symbol, d.prefix)) {
      return &d;
    }
  }
  for (const DeniedSymbol& d : kBlockingSymbols) {
    // Blocking libc names are exact calls, not families: match whole name
    // so e.g. "sleep" does not swallow an unrelated "sleepless" symbol.
    if (name == d.prefix || symbol == d.prefix) {
      return &d;
    }
  }
  return nullptr;
}

bool IsDeleteFamily(const std::string& symbol) {
  return StartsWith(symbol, "_Zdl") || StartsWith(symbol, "_Zda");
}

// Per-member evidence needed to resolve the one known vtable artifact: a
// TU that instantiates a class with a virtual destructor emits a weak
// *deleting* destructor (mangled ...D0Ev) which calls operator delete even
// though the TU itself never deletes anything. Such a reference is waived
// iff the member defines a deleting destructor AND imports no allocation
// entry point (you cannot reach D0 on objects the TU never news — and a
// genuine hot-path `delete` of an externally allocated object is still
// caught by the runtime guards, which replace operator delete itself).
struct MemberState {
  std::string name;
  std::vector<std::string> pending_deletes;  // undefined _Zdl/_Zda refs
  bool defines_deleting_dtor = false;
  bool has_alloc_ref = false;  // undefined new/malloc-family reference
};

int FlushMember(MemberState& member, bool quiet) {
  int violations = 0;
  if (!member.pending_deletes.empty()) {
    if (member.defines_deleting_dtor && !member.has_alloc_ref) {
      if (!quiet) {
        std::printf(
            "  note: %s: waived %zu operator delete reference%s (weak "
            "deleting-destructor vtable artifact; no allocation imports)\n",
            member.name.c_str(), member.pending_deletes.size(),
            member.pending_deletes.size() == 1 ? "" : "s");
      }
    } else {
      for (const std::string& symbol : member.pending_deletes) {
        ++violations;
        if (!quiet) {
          Fail(member.name + ": undefined reference to " + symbol +
               " (operator delete) — forbidden on the hot path");
        }
      }
    }
  }
  member.pending_deletes.clear();
  member.defines_deleting_dtor = false;
  member.has_alloc_ref = false;
  return violations;
}

// Runs `nm -P` on `path` and reports denied undefined references. When
// `member_filter` is non-empty, only archive members whose name contains it
// are inspected (e.g. "endpoint.cc" selects endpoint.cc.o out of
// libflipc_core.a). Returns the number of violations found.
int CheckObjectSymbols(const std::string& path, PurityClass cls,
                       const std::string& member_filter, bool quiet) {
  const std::string command = "nm -P '" + path + "' 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    Fail("could not run nm on " + path);
    return 0;
  }

  int violations = 0;
  bool member_active = member_filter.empty();
  MemberState member;
  member.name = path;
  char line[1024];
  bool saw_any_line = false;
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    saw_any_line = true;
    std::string text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    if (text.empty()) {
      continue;
    }
    // Archive member headers: "libx.a[member.o]:" (GNU nm -P).
    if (text.back() == ':') {
      violations += FlushMember(member, quiet);
      member.name = text.substr(0, text.size() - 1);
      member_active =
          member_filter.empty() || member.name.find(member_filter) != std::string::npos;
      continue;
    }
    if (!member_active) {
      continue;
    }
    std::istringstream fields(text);
    std::string symbol;
    std::string type;
    if (!(fields >> symbol >> type)) {
      continue;
    }
    // Undefined (U) and weak-undefined (w/v) references are what the TU
    // imports; anything else is a definition the TU provides.
    const bool is_undefined = type == "U" || type == "w" || type == "v";
    if (!is_undefined) {
      if (symbol.find("D0Ev") != std::string::npos) {
        member.defines_deleting_dtor = true;
      }
      continue;
    }
    const DeniedSymbol* denied = MatchDenied(symbol, cls);
    if (denied == nullptr) {
      continue;
    }
    if (cls == PurityClass::kPure && IsDeleteFamily(symbol)) {
      // Defer: waivable only if the member turns out to define a deleting
      // destructor and import no allocator (resolved at member flush).
      member.pending_deletes.push_back(symbol);
      continue;
    }
    const bool is_alloc =
        denied >= kAllocSymbols &&
        denied < kAllocSymbols + sizeof(kAllocSymbols) / sizeof(kAllocSymbols[0]);
    if (is_alloc) {
      member.has_alloc_ref = true;
    }
    ++violations;
    if (!quiet) {
      Fail(member.name + ": undefined reference to " + symbol + " (" + denied->why +
           ") — forbidden on the hot path");
    }
  }
  violations += FlushMember(member, quiet);
  pclose(pipe);
  if (!saw_any_line) {
    Fail("nm produced no output for " + path + " (missing file?)");
  }
  return violations;
}

// Manifest lines (written by tools/CMakeLists.txt with generator
// expressions resolved):
//   object <pure|nolock> <path> [member-filter]
//   skip <reason...>          — symbol pass disabled for this build config
int RunSymbolPass(const std::string& manifest_path) {
  std::ifstream manifest(manifest_path);
  if (!manifest) {
    Fail("cannot open manifest " + manifest_path);
    return 0;
  }
  int entries = 0;
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "skip") {
      std::string reason;
      std::getline(fields, reason);
      std::printf("hotpath lint: symbol pass SKIPPED —%s\n", reason.c_str());
      std::printf("  (instrumented builds add allocator/pthread references; the plain\n"
                  "   build's ctest run performs the symbol audit)\n");
      return 0;
    }
    if (kind != "object") {
      Fail("manifest: unknown entry kind '" + kind + "'");
      continue;
    }
    std::string cls_name;
    std::string path;
    std::string member_filter;
    fields >> cls_name >> path;
    fields >> member_filter;  // optional
    const PurityClass cls =
        cls_name == "nolock" ? PurityClass::kNoLock : PurityClass::kPure;
    if (cls_name != "nolock" && cls_name != "pure") {
      Fail("manifest: unknown purity class '" + cls_name + "'");
      continue;
    }
    ++entries;
    const int before = failures;
    CheckObjectSymbols(path, cls, member_filter, /*quiet=*/false);
    std::printf("  symbol pass [%s] %s%s%s: %s\n", cls_name.c_str(), path.c_str(),
                member_filter.empty() ? "" : " member ",
                member_filter.c_str(), failures == before ? "clean" : "VIOLATIONS");
  }
  std::printf("hotpath lint: symbol pass inspected %d object set%s\n", entries,
              entries == 1 ? "" : "s");
  return entries;
}

// ---- Source pass ------------------------------------------------------------

// The Peterson lock's documented whitelist: exactly this many source lines
// in src/base/locks.h may name memory_order_seq_cst (the two stores and two
// loads of the classic algorithm). See the comment above PetersonLock.
constexpr int kExpectedSeqCstLines = 4;

bool PathContains(const std::string& path, const char* fragment) {
  return path.find(fragment) != std::string::npos;
}

std::vector<std::string> LoadAllowlist(const std::string& allowlist_path) {
  std::vector<std::string> allowed;
  std::ifstream file(allowlist_path);
  if (!file) {
    Fail("cannot open allowlist " + allowlist_path);
    return allowed;
  }
  std::string line;
  while (std::getline(file, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t')) {
      line.pop_back();
    }
    if (!line.empty()) {
      allowed.push_back(line);
    }
  }
  return allowed;
}

bool IsAllowlisted(const std::string& rel_path, const std::vector<std::string>& allowed) {
  for (const std::string& entry : allowed) {
    if (rel_path == entry) {
      return true;
    }
  }
  return false;
}

// True when the file has at least one line the allowlist could be excusing.
// Matches CheckSourceFile's own line-level detection, so an entry is "used"
// exactly when removing it would make the source pass fail.
bool FileUsesRawAtomics(const std::string& path) {
  std::ifstream file(path);
  std::string line;
  while (std::getline(file, line)) {
    if (line.find("std::atomic") != std::string::npos ||
        line.find("memory_order_") != std::string::npos) {
      return true;
    }
  }
  return false;
}

// A stale allowlist entry is a standing grant nobody audits: either the
// file is gone (renamed away) or it no longer touches raw atomics. Both
// are errors — the list must shrink in the same commit that obsoletes the
// entry, or a later change can silently start using the leftover grant.
int CheckAllowlistLiveness(const std::vector<std::string>& allowed,
                           const std::filesystem::path& root,
                           const std::vector<std::string>& scanned_rel_paths,
                           bool quiet) {
  int stale = 0;
  for (const std::string& entry : allowed) {
    bool exists = false;
    for (const std::string& rel : scanned_rel_paths) {
      if (rel == entry) {
        exists = true;
        break;
      }
    }
    if (!exists) {
      ++stale;
      if (!quiet) {
        Fail("stale allowlist entry " + entry +
             ": no such audited source file (remove it from "
             "tools/hotpath_lint_allowlist.txt)");
      }
      continue;
    }
    if (!FileUsesRawAtomics((root / entry).string())) {
      ++stale;
      if (!quiet) {
        Fail("stale allowlist entry " + entry +
             ": the file no longer uses raw std::atomic / memory_order_ "
             "(remove the entry so the grant cannot be silently reused)");
      }
    }
  }
  return stale;
}

// Scans one source file; returns violations found (also reported via Fail
// unless quiet). Used both by the real pass and the selftest.
int CheckSourceFile(const std::string& path, const std::string& rel_path,
                    bool atomics_allowed, bool quiet) {
  std::ifstream file(path);
  if (!file) {
    if (!quiet) {
      Fail("cannot open source file " + path);
    }
    return 0;
  }
  const bool is_locks_h = rel_path == "src/base/locks.h";
  int violations = 0;
  int seq_cst_lines = 0;
  int line_number = 0;
  std::string line;
  while (std::getline(file, line)) {
    ++line_number;
    const bool has_seq_cst = line.find("memory_order_seq_cst") != std::string::npos;
    if (has_seq_cst) {
      if (is_locks_h) {
        ++seq_cst_lines;
      } else {
        ++violations;
        if (!quiet) {
          Fail(rel_path + ":" + std::to_string(line_number) +
               ": memory_order_seq_cst outside the Peterson lock's documented "
               "whitelist (src/base/locks.h)");
        }
        continue;
      }
    }
    if (atomics_allowed) {
      continue;
    }
    if (line.find("std::atomic") != std::string::npos ||
        line.find("memory_order_") != std::string::npos) {
      ++violations;
      if (!quiet) {
        Fail(rel_path + ":" + std::to_string(line_number) +
             ": raw std::atomic / memory_order_ outside src/waitfree/ and "
             "src/base/locks.h (use SingleWriterCell, or add the file to "
             "tools/hotpath_lint_allowlist.txt with a reason)");
      }
    }
  }
  if (is_locks_h && seq_cst_lines != kExpectedSeqCstLines) {
    ++violations;
    if (!quiet) {
      Fail("src/base/locks.h: expected exactly " + std::to_string(kExpectedSeqCstLines) +
           " memory_order_seq_cst lines (the Peterson whitelist), found " +
           std::to_string(seq_cst_lines));
    }
  }
  return violations;
}

void RunSourcePass(const std::string& source_root, const std::string& allowlist_path) {
  const std::vector<std::string> allowed = LoadAllowlist(allowlist_path);
  const std::filesystem::path root(source_root);
  int scanned = 0;
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cc") {
      files.push_back(entry.path());
    }
  }
  std::vector<std::string> scanned_rel_paths;
  for (const auto& file : files) {
    const std::string rel_path =
        std::filesystem::relative(file, root).generic_string();
    scanned_rel_paths.push_back(rel_path);
    const bool atomics_allowed = PathContains(rel_path, "src/waitfree/") ||
                                 rel_path == "src/base/locks.h" ||
                                 IsAllowlisted(rel_path, allowed);
    CheckSourceFile(file.string(), rel_path, atomics_allowed, /*quiet=*/false);
    ++scanned;
  }
  CheckAllowlistLiveness(allowed, root, scanned_rel_paths, /*quiet=*/false);
  std::printf("hotpath lint: source pass scanned %d files (%zu allowlisted)\n", scanned,
              allowed.size());
}

// ---- Selftest ---------------------------------------------------------------

// The lint must still detect violations: a detector that silently rots is
// worse than none. The seeded-bad object references std::mutex, operator
// new and usleep; the seeded-bad source uses raw atomics and seq_cst.
int RunSelftest(const std::string& bad_object, const std::string& bad_source) {
  int rc = 0;
  const int symbol_violations =
      CheckObjectSymbols(bad_object, PurityClass::kPure, "", /*quiet=*/true);
  if (symbol_violations == 0) {
    std::fprintf(stderr,
                 "hotpath lint selftest FAIL: seeded-bad object %s raised no symbol "
                 "violations\n",
                 bad_object.c_str());
    rc = 1;
  } else {
    std::printf("selftest: symbol pass flagged the bad fixture (%d violations)\n",
                symbol_violations);
  }
  const int source_violations =
      CheckSourceFile(bad_source, "tools/lint_fixtures/hotpath_bad_source.cc",
                      /*atomics_allowed=*/false, /*quiet=*/true);
  if (source_violations == 0) {
    std::fprintf(stderr,
                 "hotpath lint selftest FAIL: seeded-bad source %s raised no "
                 "violations\n",
                 bad_source.c_str());
    rc = 1;
  } else {
    std::printf("selftest: source pass flagged the bad fixture (%d violations)\n",
                source_violations);
  }
  // Liveness pass: an allowlist naming a vanished file and one whose file
  // needs no grant (the bad source DOES use atomics, so granting it is
  // live; the clean grant below is the stale one).
  const std::vector<std::string> stale_allowlist = {
      "src/no/such/file.cc",
      "tools/lint_fixtures/hotpath_bad_source.cc",
  };
  const std::vector<std::string> scanned = {
      "tools/lint_fixtures/hotpath_bad_source.cc"};
  const std::filesystem::path bad_root =
      std::filesystem::path(bad_source).parent_path().parent_path().parent_path();
  const int stale =
      CheckAllowlistLiveness(stale_allowlist, bad_root, scanned, /*quiet=*/true);
  if (stale != 1) {
    std::fprintf(stderr,
                 "hotpath lint selftest FAIL: liveness pass found %d stale "
                 "entries in the seeded allowlist, expected exactly 1\n",
                 stale);
    rc = 1;
  } else {
    std::printf("selftest: liveness pass flagged the vanished-file grant and "
                "kept the live one\n");
  }
  // `failures` may have been bumped by quiet==false paths on I/O errors.
  return failures != 0 ? 1 : rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest;
  std::string source_root;
  std::string allowlist;
  std::string selftest_object;
  std::string selftest_source;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (arg == "--manifest") {
      manifest = next();
    } else if (arg == "--source-root") {
      source_root = next();
    } else if (arg == "--allowlist") {
      allowlist = next();
    } else if (arg == "--selftest") {
      selftest_object = next();
      selftest_source = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (!selftest_object.empty()) {
    return RunSelftest(selftest_object, selftest_source);
  }
  if (manifest.empty() || source_root.empty() || allowlist.empty()) {
    std::fprintf(stderr,
                 "usage: flipc_hotpath_lint --manifest M --source-root DIR "
                 "--allowlist F | --selftest BAD_OBJECT BAD_SOURCE\n");
    return 2;
  }

  const int symbol_entries = RunSymbolPass(manifest);
  RunSourcePass(source_root, allowlist);

  if (failures != 0) {
    std::fprintf(stderr, "hotpath lint: %d failure%s\n", failures,
                 failures == 1 ? "" : "s");
    return 1;
  }
  if (symbol_entries == 0) {
    std::printf("hotpath lint: OK — atomics discipline holds (symbol pass "
                "deferred to the plain build)\n");
  } else {
    std::printf("hotpath lint: OK — hot-path objects are free of allocation/lock/"
                "blocking references and the atomics discipline holds\n");
  }
  return 0;
}
