// Communication-buffer layout lint.
//
// Walks the ownership tables in src/shm/ownership_layout.h (the same tables
// the compile-time static_asserts and the ownership race detector use),
// prints the per-cache-line writer map for every shared structure, and
// fails (exit 1) if:
//
//   * any cache line holds words with two distinct declared writers
//     (the paper's false-sharing rule — worth ~2x latency on the Paragon);
//   * any shared field is misaligned or straddles a cache line;
//   * any CommBufferLayout section offset is not cache-line aligned, for a
//     sweep of representative configurations.
//
// Registered as a ctest (tools/CMakeLists.txt), so `ctest` is red whenever
// the layout audit is. The static_asserts catch violations at compile time;
// this binary exists so the audit is also runnable, greppable and readable.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/shm/ownership_layout.h"

namespace flipc::shm {
namespace {

struct TableRef {
  const char* struct_name;
  std::size_t struct_size;
  const FieldOwnership* fields;
  std::size_t count;
};

int failures = 0;

void Fail(const char* fmt, const char* a, const char* b) {
  std::fprintf(stderr, "layout lint FAIL: ");
  std::fprintf(stderr, fmt, a, b);
  std::fprintf(stderr, "\n");
  ++failures;
}

// Runtime re-check of the constexpr predicates, field pair by field pair so
// the offending fields can be named.
void LintTable(const TableRef& table) {
  std::printf("%s (%zu bytes, %zu cache line%s)\n", table.struct_name, table.struct_size,
              table.struct_size / kCacheLineSize,
              table.struct_size / kCacheLineSize == 1 ? "" : "s");

  const std::size_t lines = (table.struct_size + kCacheLineSize - 1) / kCacheLineSize;
  for (std::size_t line = 0; line < lines; ++line) {
    const waitfree::Writer* line_writer = nullptr;
    std::printf("  line %zu:", line);
    bool mixed = false;
    bool any = false;
    for (std::size_t i = 0; i < table.count; ++i) {
      const FieldOwnership& f = table.fields[i];
      const std::size_t first = f.offset / kCacheLineSize;
      const std::size_t last = (f.offset + f.size - 1) / kCacheLineSize;
      if (line < first || line > last) {
        continue;
      }
      std::printf(" %s", f.name);
      any = true;
      if (line_writer == nullptr) {
        line_writer = &f.writer;
      } else if (*line_writer != f.writer) {
        mixed = true;
      }
    }
    if (!any) {
      std::printf(" (padding)");
    } else {
      std::printf("  [%s%s]", mixed ? "MIXED! " : "",
                  line_writer != nullptr ? waitfree::WriterName(*line_writer) : "?");
    }
    std::printf("\n");
    if (mixed) {
      Fail("%s cache line holds words with two distinct writers", table.struct_name, "");
    }
  }

  for (std::size_t i = 0; i < table.count; ++i) {
    const FieldOwnership& f = table.fields[i];
    const std::size_t natural = f.size >= kCacheLineSize ? kCacheLineSize : f.size;
    if (natural != 0 && f.offset % natural != 0) {
      Fail("%s: field %s is not naturally aligned", table.struct_name, f.name);
    }
    if (f.offset / kCacheLineSize != (f.offset + f.size - 1) / kCacheLineSize) {
      Fail("%s: field %s straddles a cache line", table.struct_name, f.name);
    }
  }
}

void LintRegionLayouts() {
  // Representative configurations: paper defaults, minimum sizes, large
  // buffer pools, odd endpoint counts.
  const CommBufferConfig configs[] = {
      {},                                     // defaults
      {64, 1, 1, 0, 0},                       // minimum everything
      {128, 1024, 64, 0, 0},                  // paper-ish default
      {512, 4096, 257, 0, 0},                 // odd endpoint count
      {96, 3, 5, 7, 0},                       // deliberately awkward sizes
      {128, 1024, 64, 0, 2},                  // smallest explicit doorbell ring
      {128, 1024, 64, 0, 4096},               // largest default-clamp ring
  };
  for (const CommBufferConfig& config : configs) {
    const Result<CommBufferLayout> layout = CommBufferLayout::For(config);
    if (!layout.ok()) {
      Fail("CommBufferLayout::For rejected a lint configuration%s%s", "", "");
      continue;
    }
    const std::size_t offsets[] = {
        layout->endpoint_table_offset, layout->telemetry_offset,
        layout->cell_arena_offset, layout->freelist_offset,
        layout->doorbell_offset, layout->buffers_offset, layout->total_size};
    const char* names[] = {"endpoint_table_offset", "telemetry_offset",
                           "cell_arena_offset", "freelist_offset",
                           "doorbell_offset", "buffers_offset", "total_size"};
    for (std::size_t i = 0; i < 7; ++i) {
      if (!IsAligned(offsets[i], kCacheLineSize)) {
        Fail("CommBufferLayout.%s is not cache-line aligned%s", names[i], "");
      }
    }
  }
  std::printf("CommBufferLayout section offsets: %zu configurations checked\n",
              sizeof(configs) / sizeof(configs[0]));
}

int Run() {
  const TableRef tables[] = {
      {"EndpointRecord", sizeof(EndpointRecord), kEndpointRecordOwnership,
       sizeof(kEndpointRecordOwnership) / sizeof(FieldOwnership)},
      {"TelemetryBlock", sizeof(TelemetryBlock), kTelemetryBlockOwnership,
       sizeof(kTelemetryBlockOwnership) / sizeof(FieldOwnership)},
      {"QueueCursors", sizeof(waitfree::QueueCursors), kQueueCursorsOwnership,
       sizeof(kQueueCursorsOwnership) / sizeof(FieldOwnership)},
      {"PaddedDropCounterParts", sizeof(waitfree::PaddedDropCounterParts),
       kPaddedDropCounterOwnership,
       sizeof(kPaddedDropCounterOwnership) / sizeof(FieldOwnership)},
      {"CommBufferHeader", sizeof(CommBufferHeader), kCommBufferHeaderOwnership,
       sizeof(kCommBufferHeaderOwnership) / sizeof(FieldOwnership)},
      {"DoorbellCursors", sizeof(waitfree::DoorbellCursors), kDoorbellCursorsOwnership,
       sizeof(kDoorbellCursorsOwnership) / sizeof(FieldOwnership)},
  };
  for (const TableRef& table : tables) {
    LintTable(table);
  }
  LintRegionLayouts();

  if (failures != 0) {
    std::fprintf(stderr, "layout lint: %d failure%s\n", failures,
                 failures == 1 ? "" : "s");
    return 1;
  }
  std::printf("layout lint: OK — no cache line mixes application- and engine-written "
              "words\n");
  return 0;
}

}  // namespace
}  // namespace flipc::shm

int main() { return flipc::shm::Run(); }
