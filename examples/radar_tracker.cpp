// Radar tracker: the event-driven distributed real-time scenario from the
// paper's introduction (think AEGIS/AWACS-style command and control).
//
// Three sensor nodes stream ~120-byte track updates — exactly the "medium"
// message class: "The events cannot be described by very small messages,
// and aggregation of events into larger messages is limited by the impact
// of the aggregation delay on system response."
//
// The tracker node demonstrates the paper's real-time machinery:
//   * two traffic classes on separate endpoints with separate buffer
//     resources — threat detections must never lose buffers to routine
//     telemetry ("the system ... must also ensure that the latter message
//     does not consume resources required to handle the former");
//   * an endpoint group with a blocking receive: the awakened thread is
//     presented to the scheduler via a real-time semaphore, with the
//     threat handler waiting at higher priority — no interrupting upcalls.
//
// Build & run:  ./build/examples/radar_tracker
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "src/flipc/flipc.h"

namespace {

constexpr std::uint32_t kSensors = 3;
constexpr std::uint32_t kTrackerNode = kSensors;
constexpr std::uint32_t kUpdatesPerSensor = 120;
constexpr std::uint32_t kThreatEvery = 20;  // every 20th contact is a threat

// A 120-byte track update, the paper's flagship message size.
struct TrackUpdate {
  std::uint32_t sensor_id;
  std::uint32_t track_id;
  std::uint32_t is_threat;
  float position[9];
  float velocity[9];
  float covariance[9];
  std::uint8_t pad[120 - 3 * sizeof(std::uint32_t) - 27 * sizeof(float)];
};
static_assert(sizeof(TrackUpdate) == 120);

}  // namespace

int main() {
  flipc::Cluster::Options options;
  options.node_count = kSensors + 1;
  options.comm.message_size = 128;  // 120-byte payload + 8-byte FLIPC header
  options.comm.buffer_count = 256;
  auto cluster = flipc::Cluster::Create(options);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster creation failed\n");
    return 1;
  }
  (*cluster)->Start();
  flipc::Domain& tracker = (*cluster)->domain(kTrackerNode);

  // --- Tracker setup: one endpoint (and buffer pool) per traffic class ---
  auto routine_group = flipc::EndpointGroup::Create(tracker);
  auto threat_group = flipc::EndpointGroup::Create(tracker);
  if (!routine_group.ok() || !threat_group.ok()) {
    return 1;
  }
  auto routine_rx = tracker.CreateEndpoint({.type = flipc::shm::EndpointType::kReceive,
                                            .queue_depth = 32,
                                            .group = routine_group->get()});
  auto threat_rx = tracker.CreateEndpoint({.type = flipc::shm::EndpointType::kReceive,
                                           .queue_depth = 8,
                                           .priority = 9,
                                           .group = threat_group->get()});
  if (!routine_rx.ok() || !threat_rx.ok()) {
    return 1;
  }
  // Resource control is explicit: 24 buffers for telemetry, 8 reserved for
  // threats. A telemetry burst can exhaust ITS pool, never the threat pool.
  for (int i = 0; i < 24; ++i) {
    auto buffer = tracker.AllocateBuffer();
    (void)routine_rx->PostBuffer(*buffer);
  }
  for (int i = 0; i < 8; ++i) {
    auto buffer = tracker.AllocateBuffer();
    (void)threat_rx->PostBuffer(*buffer);
  }

  std::atomic<std::uint32_t> threats_handled{0};
  std::atomic<std::uint32_t> routine_handled{0};
  std::atomic<bool> shutting_down{false};

  // Threat thread: blocks at HIGH priority on the threat group. When a
  // threat and a telemetry message are both pending, the semaphore wakes
  // this thread first.
  std::thread threat_thread([&] {
    for (;;) {
      auto result = (*threat_group)->ReceiveBlocking(/*priority=*/10, 200'000'000);
      if (!result.ok()) {
        if (shutting_down.load()) {
          return;
        }
        continue;
      }
      const auto* update = result->buffer.As<TrackUpdate>();
      if (update != nullptr && update->is_threat != 0) {
        threats_handled.fetch_add(1);
      }
      (void)result->endpoint.PostBuffer(result->buffer);
    }
  });

  // Telemetry thread: blocks at LOW priority on the routine group.
  std::thread routine_thread([&] {
    for (;;) {
      auto result = (*routine_group)->ReceiveBlocking(/*priority=*/1, 200'000'000);
      if (!result.ok()) {
        if (shutting_down.load()) {
          return;
        }
        continue;
      }
      routine_handled.fetch_add(1);
      (void)result->endpoint.PostBuffer(result->buffer);
    }
  });

  // --- Sensors: each streams track updates, flagging periodic threats ---
  std::vector<std::thread> sensors;
  for (std::uint32_t s = 0; s < kSensors; ++s) {
    sensors.emplace_back([&, s] {
      flipc::Domain& domain = (*cluster)->domain(s);
      auto tx = domain.CreateEndpoint(
          {.type = flipc::shm::EndpointType::kSend, .queue_depth = 8});
      if (!tx.ok()) {
        return;
      }
      auto message = domain.AllocateBuffer();
      for (std::uint32_t i = 0; i < kUpdatesPerSensor; ++i) {
        auto* update = message->As<TrackUpdate>();
        *update = TrackUpdate{};
        update->sensor_id = s;
        update->track_id = i;
        update->is_threat = (i % kThreatEvery == 0) ? 1 : 0;
        const flipc::Address dst =
            update->is_threat ? threat_rx->address() : routine_rx->address();
        while (!tx->Send(*message, dst).ok()) {
          std::this_thread::yield();  // queue full: back off (explicit resource control)
        }
        // Recover the buffer before reusing it (Figure 2, step 5).
        for (;;) {
          auto reclaimed = tx->Reclaim();
          if (reclaimed.ok()) {
            message = *reclaimed;
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& sensor : sensors) {
    sensor.join();
  }

  const std::uint32_t threats_expected = kSensors * (kUpdatesPerSensor / kThreatEvery);
  const std::uint32_t routine_expected = kSensors * kUpdatesPerSensor - threats_expected;
  while (threats_handled.load() + routine_handled.load() <
         threats_expected + routine_expected - routine_rx->DropCount() -
             threat_rx->DropCount()) {
    std::this_thread::yield();
  }
  shutting_down.store(true);
  threat_thread.join();
  routine_thread.join();
  (*cluster)->Stop();

  std::printf("radar tracker processed %u threat contacts (expected %u) and %u routine "
              "updates (expected %u)\n",
              threats_handled.load(), threats_expected, routine_handled.load(),
              routine_expected);
  std::printf("drop counters — threat endpoint: %llu (must be 0: reserved buffers), "
              "telemetry endpoint: %llu (losses tolerated)\n",
              static_cast<unsigned long long>(threat_rx->DropCount()),
              static_cast<unsigned long long>(routine_rx->DropCount()));
  return threat_rx->DropCount() == 0 && threats_handled.load() == threats_expected ? 0 : 1;
}
