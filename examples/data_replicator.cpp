// Data replicator: the future-work extensions working together as the
// "complete system" the paper's conclusion calls for.
//
//   * node 0 (producer) pushes a dataset to node 1 with the BULK TRANSFER
//     library — fragmentation + window flow control layered over ordinary
//     FLIPC messages, checksum-verified on reassembly;
//   * node 1 (replica) exports the replicated bytes as a REMOTE MEMORY
//     window;
//   * node 2 (auditor) spot-checks the replica with one-sided RMA reads —
//     the replica's application threads are never involved, the engine
//     services the reads ("separating data and control transfer").
//
// All three protocols (FLIPC messages, bulk credits, RMA) share each node's
// messaging engine through its protocol framework, just as the paper's
// engine carried FLIPC alongside the OSF/1 AD protocols.
//
// Build & run:  ./build/examples/data_replicator
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "src/base/checksum.h"
#include "src/base/rng.h"
#include "src/flipc/flipc.h"
#include "src/flow/bulk_channel.h"
#include "src/rma/rma_node.h"

namespace {
constexpr std::size_t kDatasetBytes = 256 * 1024;
constexpr std::uint32_t kWindowDepth = 16;
constexpr int kAuditSamples = 32;
}  // namespace

int main() {
  flipc::Cluster::Options options;
  options.node_count = 3;
  options.comm.message_size = 1024;  // bulk likes bigger fragments
  options.comm.buffer_count = 128;
  auto cluster = flipc::Cluster::Create(options);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster creation failed\n");
    return 1;
  }
  flipc::Domain& producer = (*cluster)->domain(0);
  flipc::Domain& replica = (*cluster)->domain(1);

  // RMA endpoints-of-sorts: protocol handlers on each engine (registered
  // before the engines start running).
  flipc::rma::RmaNode replica_rma((*cluster)->engine(1));
  flipc::rma::RmaNode auditor_rma((*cluster)->engine(2));
  (*cluster)->Start();

  // --- Bulk channel: producer -> replica ---
  auto data_tx = producer.CreateEndpoint(
      {.type = flipc::shm::EndpointType::kSend, .queue_depth = kWindowDepth});
  auto credit_rx = producer.CreateEndpoint(
      {.type = flipc::shm::EndpointType::kReceive, .queue_depth = kWindowDepth});
  auto data_rx = replica.CreateEndpoint(
      {.type = flipc::shm::EndpointType::kReceive, .queue_depth = kWindowDepth});
  auto credit_tx = replica.CreateEndpoint(
      {.type = flipc::shm::EndpointType::kSend, .queue_depth = kWindowDepth});
  if (!data_tx.ok() || !credit_rx.ok() || !data_rx.ok() || !credit_tx.ok()) {
    return 1;
  }
  auto receiver = flipc::flow::BulkReceiver::Create(replica, *data_rx, *credit_tx,
                                                    credit_rx->address(), kWindowDepth);
  auto sender = flipc::flow::BulkSender::Create(producer, *data_tx, *credit_rx,
                                                data_rx->address(), kWindowDepth);
  if (!receiver.ok() || !sender.ok()) {
    return 1;
  }

  // The dataset: pseudo-random so corruption cannot hide.
  std::vector<std::byte> dataset(kDatasetBytes);
  flipc::Rng rng(0xDA7A);
  for (auto& b : dataset) {
    b = static_cast<std::byte>(rng() & 0xff);
  }
  const std::uint64_t dataset_sum = flipc::Fnv1a(dataset.data(), dataset.size());

  // Replica thread: reassemble, verify, export via RMA.
  std::vector<std::byte> replica_copy;
  std::uint32_t rma_window = 0;
  std::thread replica_thread([&] {
    for (;;) {
      auto transfer = receiver->Poll();
      if (transfer.ok()) {
        if (!transfer->checksum_ok) {
          std::fprintf(stderr, "replica: checksum FAILED\n");
          return;
        }
        replica_copy = std::move(transfer->data);
        auto window = replica_rma.ExportWindow(replica_copy.data(), replica_copy.size());
        if (window.ok()) {
          rma_window = *window;
        }
        return;
      }
      std::this_thread::yield();
    }
  });

  // Producer: start and pump the transfer.
  auto transfer_id = sender->Start(dataset.data(), dataset.size());
  if (!transfer_id.ok()) {
    return 1;
  }
  while (sender->Pump()) {
    std::this_thread::yield();
  }
  replica_thread.join();
  if (replica_copy.size() != kDatasetBytes || rma_window == 0) {
    std::fprintf(stderr, "replication failed\n");
    return 1;
  }
  std::printf("replicated %zu KB in %llu fragments (checksum ok)\n", kDatasetBytes / 1024,
              static_cast<unsigned long long>(sender->fragments_sent()));

  // --- Auditor: one-sided reads; the replica application stays idle ---
  flipc::Rng audit_rng(0xA0D17);
  int mismatches = 0;
  for (int i = 0; i < kAuditSamples; ++i) {
    const std::size_t chunk = 512;
    const std::size_t offset = audit_rng.Below(kDatasetBytes - chunk);
    std::vector<std::byte> sample(chunk);
    auto token = auditor_rma.Read(1, rma_window, offset, sample.data(), sample.size());
    if (!token.ok()) {
      ++mismatches;
      continue;
    }
    // The engine runner services RMA work; poll for completion.
    while (auditor_rma.Poll(*token).code() == flipc::StatusCode::kUnavailable) {
      std::this_thread::yield();
    }
    if (!auditor_rma.Poll(*token).ok() ||
        std::memcmp(sample.data(), dataset.data() + offset, chunk) != 0) {
      ++mismatches;
    }
  }

  // An out-of-bounds probe must be rejected, not serviced.
  std::byte probe[16];
  auto bad = auditor_rma.Read(1, rma_window, kDatasetBytes - 4, probe, sizeof(probe));
  while (bad.ok() && auditor_rma.Poll(*bad).code() == flipc::StatusCode::kUnavailable) {
    std::this_thread::yield();
  }
  const bool probe_rejected =
      bad.ok() && auditor_rma.Poll(*bad).code() == flipc::StatusCode::kPermissionDenied;

  (*cluster)->Stop();
  std::printf("audit: %d/%d samples verified by one-sided RMA reads; out-of-bounds probe "
              "%s; replica served %llu reads without running application code\n",
              kAuditSamples - mismatches, kAuditSamples,
              probe_rejected ? "rejected" : "NOT rejected",
              static_cast<unsigned long long>(replica_rma.stats().reads_served));
  const bool ok = mismatches == 0 && probe_rejected &&
                  flipc::Fnv1a(replica_copy.data(), replica_copy.size()) == dataset_sum;
  std::printf("data_replicator %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
