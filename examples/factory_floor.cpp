// Factory floor: strictly periodic process control with statically
// computed buffering — the paper's second flow-control example:
//
//   "an application made up of strictly periodic components can often
//    determine its worst case buffering needs in advance based on the
//    maximum number of messages sent per time period."
//
// Four cell controllers sample their stations on fixed periods and send
// status messages to a line supervisor, which runs a fixed service cycle.
// Buffer needs come from flow::PeriodicPlan; there is NO runtime flow
// control anywhere, and the drop counters must still read zero at the end.
//
// Build & run:  ./build/examples/factory_floor
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/flipc/flipc.h"
#include "src/flow/static_reservation.h"

namespace {

struct StationStatus {
  std::uint32_t station_id;
  std::uint32_t cycle;
  std::uint32_t widgets_completed;
  std::uint32_t alarm_bits;
  double temperature_c;
  double vibration_rms;
};

constexpr std::uint32_t kStations = 4;
constexpr std::uint32_t kSupervisorNode = kStations;
constexpr std::uint32_t kCyclesPerStation = 50;

// Station sampling periods (real time, scaled down for a demo run).
constexpr flipc::DurationNs kStationPeriodNs[kStations] = {
    2'000'000, 3'000'000, 5'000'000, 5'000'000};
constexpr flipc::DurationNs kSupervisorCycleNs = 10'000'000;

}  // namespace

int main() {
  // --- Configuration time: compute worst-case buffering statically ---
  flipc::flow::PeriodicPlan plan;
  plan.service_interval_ns = kSupervisorCycleNs;
  for (std::uint32_t s = 0; s < kStations; ++s) {
    plan.producers.push_back({.period_ns = kStationPeriodNs[s], .burst = 1});
  }
  const std::uint32_t buffers_needed = plan.RequiredReceiveBuffers();
  const std::uint32_t queue_depth = plan.RequiredQueueDepth();
  std::printf("static plan: supervisor cycle %.0f ms, %u producers -> %u receive "
              "buffers (queue depth %u), no runtime flow control\n",
              kSupervisorCycleNs / 1e6, kStations, buffers_needed, queue_depth);

  flipc::Cluster::Options options;
  options.node_count = kStations + 1;
  options.comm.message_size = 128;
  options.comm.buffer_count = 128;
  auto cluster = flipc::Cluster::Create(options);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster creation failed\n");
    return 1;
  }
  (*cluster)->Start();
  flipc::Domain& supervisor = (*cluster)->domain(kSupervisorNode);

  auto status_rx = supervisor.CreateEndpoint(
      {.type = flipc::shm::EndpointType::kReceive, .queue_depth = queue_depth});
  if (!status_rx.ok()) {
    return 1;
  }
  for (std::uint32_t i = 0; i < buffers_needed; ++i) {
    auto buffer = supervisor.AllocateBuffer();
    if (!buffer.ok() || !status_rx->PostBuffer(*buffer).ok()) {
      return 1;
    }
  }

  // --- Stations: strictly periodic producers ---
  std::vector<std::thread> stations;
  for (std::uint32_t s = 0; s < kStations; ++s) {
    stations.emplace_back([&, s] {
      flipc::Domain& domain = (*cluster)->domain(s);
      auto tx = domain.CreateEndpoint(
          {.type = flipc::shm::EndpointType::kSend, .queue_depth = 4});
      auto message = domain.AllocateBuffer();
      if (!tx.ok() || !message.ok()) {
        return;
      }
      auto next_release = std::chrono::steady_clock::now();
      for (std::uint32_t cycle = 0; cycle < kCyclesPerStation; ++cycle) {
        auto* status = message->As<StationStatus>();
        *status = StationStatus{s, cycle, cycle * 3, 0, 21.5 + s, 0.01 * s};
        (void)tx->Send(*message, status_rx->address());

        next_release += std::chrono::nanoseconds(kStationPeriodNs[s]);
        std::this_thread::sleep_until(next_release);
        for (;;) {
          auto reclaimed = tx->Reclaim();
          if (reclaimed.ok()) {
            message = *reclaimed;
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }

  // --- Supervisor: fixed service cycle, drains everything each cycle ---
  std::uint32_t total_received = 0;
  std::uint32_t widgets = 0;
  const std::uint32_t expected =
      kStations * kCyclesPerStation;
  auto next_cycle = std::chrono::steady_clock::now();
  while (total_received < expected) {
    next_cycle += std::chrono::nanoseconds(kSupervisorCycleNs);
    std::this_thread::sleep_until(next_cycle);
    for (;;) {
      auto message = status_rx->Receive();
      if (!message.ok()) {
        break;
      }
      const auto* status = message->As<StationStatus>();
      widgets += status->widgets_completed > 0 ? 1 : 0;
      ++total_received;
      (void)status_rx->PostBuffer(*message);  // keep the reservation intact
    }
  }

  for (auto& station : stations) {
    station.join();
  }
  (*cluster)->Stop();

  const std::uint64_t drops = status_rx->DropCount();
  std::printf("supervisor consumed %u/%u status messages across %u cycles; "
              "%u productive samples\n",
              total_received, expected, kCyclesPerStation, widgets);
  std::printf("drop counter: %llu (static worst-case sizing => must be 0)\n",
              static_cast<unsigned long long>(drops));
  return drops == 0 && total_received == expected ? 0 : 1;
}
