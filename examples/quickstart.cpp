// Quickstart: the five-step FLIPC message transfer (paper Figure 2) on a
// two-node cluster with real engine threads.
//
//   1. the receiver provides a message buffer on its receive endpoint;
//   2. the sender queues a message buffer on its send endpoint;
//   3. the messaging engine transfers the message;
//   4. the receiver removes the message from the receive endpoint;
//   5. the sender recovers its buffer for reuse.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <thread>

#include "src/flipc/flipc.h"

int main() {
  // A "cluster": one FLIPC domain (communication buffer + engine thread)
  // per node, connected by an in-process fabric.
  flipc::Cluster::Options options;
  options.node_count = 2;
  options.comm.message_size = 128;  // fixed at "boot time"; 120-byte payload
  auto cluster = flipc::Cluster::Create(options);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster creation failed\n");
    return 1;
  }
  (*cluster)->Start();

  flipc::Domain& alice = (*cluster)->domain(0);
  flipc::Domain& bob = (*cluster)->domain(1);

  // Bob: a receive endpoint with one posted buffer (step 1).
  auto rx = bob.CreateEndpoint({.type = flipc::shm::EndpointType::kReceive});
  auto rx_buffer = bob.AllocateBuffer();
  if (!rx.ok() || !rx_buffer.ok() || !rx->PostBuffer(*rx_buffer).ok()) {
    std::fprintf(stderr, "receiver setup failed\n");
    return 1;
  }

  // Bob hands his endpoint address to Alice out of band (FLIPC addresses
  // are opaque; the system has no name service).
  const flipc::Address bob_address = rx->address();

  // Alice: a send endpoint and a message (step 2).
  auto tx = alice.CreateEndpoint({.type = flipc::shm::EndpointType::kSend});
  auto message = alice.AllocateBuffer();
  if (!tx.ok() || !message.ok()) {
    std::fprintf(stderr, "sender setup failed\n");
    return 1;
  }
  message->Write("hello from the compute processor", 33);
  if (!tx->Send(*message, bob_address).ok()) {
    std::fprintf(stderr, "send failed\n");
    return 1;
  }

  // Step 3 happens on the engine threads. Bob polls for the message
  // (step 4) — blocking variants exist too, see the other examples.
  flipc::Result<flipc::MessageBuffer> received = flipc::UnavailableStatus();
  while (!received.ok()) {
    received = rx->Receive();
    std::this_thread::yield();
  }
  std::printf("bob received: \"%s\" (from node %u, endpoint %u)\n",
              reinterpret_cast<const char*>(received->data()),
              received->peer().node(), received->peer().endpoint());

  // Recycle the buffer for the next message (step 1 again)...
  (void)rx->PostBuffer(*received);

  // ...and Alice recovers hers (step 5).
  flipc::Result<flipc::MessageBuffer> reclaimed = flipc::UnavailableStatus();
  while (!reclaimed.ok()) {
    reclaimed = tx->Reclaim();
    std::this_thread::yield();
  }
  std::printf("alice reclaimed her buffer (index %u) for reuse\n", reclaimed->index());

  (*cluster)->Stop();
  std::printf("quickstart OK\n");
  return 0;
}
