// RPC over FLIPC with a fixed client set — the paper's first static
// flow-control example:
//
//   "an RPC interaction structure with a fixed set of clients can
//    statically determine the number of buffers needed based on the
//    maximum number of clients."
//
// Three client nodes call a key/value service on a fourth node. The
// server's receive endpoint is sized by flow::RpcServerPlan at startup;
// requests can never be dropped, so the clients need no retry logic.
// The server thread blocks on the request endpoint's real-time semaphore.
//
// Build & run:  ./build/examples/rpc_echo
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/flipc/flipc.h"
#include "src/flow/rpc_channel.h"

namespace {

constexpr std::uint32_t kClients = 3;
constexpr std::uint32_t kServerNode = kClients;
constexpr std::uint32_t kCallsPerClient = 25;

// Tiny request language: "put key value" | "get key".
std::size_t HandleRequest(std::map<std::string, std::string>& store,
                          const std::byte* request, std::size_t request_size,
                          std::byte* reply, std::size_t reply_capacity) {
  const std::string text(reinterpret_cast<const char*>(request), request_size);
  std::string response;
  if (text.rfind("put ", 0) == 0) {
    const auto space = text.find(' ', 4);
    store[text.substr(4, space - 4)] = text.substr(space + 1);
    response = "ok";
  } else if (text.rfind("get ", 0) == 0) {
    auto it = store.find(text.substr(4));
    response = it == store.end() ? "(nil)" : it->second;
  } else {
    response = "error: bad request";
  }
  const std::size_t n = response.size() < reply_capacity ? response.size() : reply_capacity;
  std::memcpy(reply, response.data(), n);
  return n;
}

}  // namespace

int main() {
  flipc::Cluster::Options options;
  options.node_count = kClients + 1;
  options.comm.message_size = 128;
  options.comm.buffer_count = 128;
  auto cluster = flipc::Cluster::Create(options);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster creation failed\n");
    return 1;
  }
  (*cluster)->Start();

  // Server: buffers statically sized for the fixed client set.
  flipc::flow::RpcServerPlan plan;
  plan.clients = kClients;
  plan.in_flight_per_client = 1;
  std::printf("rpc server: %u clients x %u in flight -> %u posted request buffers\n",
              plan.clients, plan.in_flight_per_client, plan.RequiredReceiveBuffers());

  std::map<std::string, std::string> store;
  auto server = flipc::flow::RpcServer::Create(
      (*cluster)->domain(kServerNode), plan,
      [&store](const std::byte* request, std::size_t n, std::byte* reply,
               std::size_t capacity) {
        return HandleRequest(store, request, n, reply, capacity);
      });
  if (!server.ok()) {
    std::fprintf(stderr, "server creation failed\n");
    return 1;
  }

  // Each client iteration makes two calls (put + get).
  constexpr std::uint32_t kTotalRequests = 2 * kClients * kCallsPerClient;
  std::thread server_thread([&] {
    for (std::uint32_t served = 0; served < kTotalRequests;) {
      if ((*server)->ServeBlocking(/*priority=*/5, 2'000'000'000).ok()) {
        ++served;
      }
    }
  });

  // Clients: synchronous calls; correctness checked end to end.
  std::vector<std::thread> clients;
  std::atomic<std::uint32_t> failures{0};
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client =
          flipc::flow::RpcClient::Create((*cluster)->domain(c), (*server)->address());
      if (!client.ok()) {
        ++failures;
        return;
      }
      char reply[120];
      for (std::uint32_t i = 0; i < kCallsPerClient; ++i) {
        const std::string key = "k" + std::to_string(c) + "." + std::to_string(i);
        const std::string put = "put " + key + " v" + std::to_string(i);
        auto n = (*client)->Call(put.data(), put.size(), reply, sizeof(reply),
                                 2'000'000'000);
        if (!n.ok() || std::string(reply, *n) != "ok") {
          ++failures;
          continue;
        }
        const std::string get = "get " + key;
        n = (*client)->Call(get.data(), get.size(), reply, sizeof(reply), 2'000'000'000);
        if (!n.ok() || std::string(reply, *n) != "v" + std::to_string(i)) {
          ++failures;
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  server_thread.join();
  (*cluster)->Stop();

  std::printf("served %llu requests; %u failures; request-endpoint drops: %llu "
              "(static sizing => must be 0)\n",
              static_cast<unsigned long long>((*server)->requests_served()),
              failures.load(),
              static_cast<unsigned long long>(
                  (*server)->request_endpoint().DropCount()));
  return failures.load() == 0 && (*server)->request_endpoint().DropCount() == 0 ? 0 : 1;
}
