// E7 — PAM's small-message advantage (Related Work).
//
// Paper: "PAM's optimizations for small messages and the simpler
// functionality by comparison to FLIPC yield a message latency of less
// than 10 us, about a third faster than FLIPC would be on a 20 byte
// message." PAM carries 20 application bytes per packet; beyond one packet
// it fragments, and FLIPC takes over in the medium range.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "src/baselines/baseline_messenger.h"

namespace flipc::bench {
namespace {

double FlipcOneWayUs(std::size_t payload_bytes) {
  const auto needed = static_cast<std::uint32_t>(AlignUp(payload_bytes + 8, 32));
  auto cluster = MakeParagonPair(needed < 64 ? 64 : needed);
  return MustPingPong(*cluster, {.exchanges = 200}).one_way_ns.mean() / 1000.0;
}

double PamOneWayUs(std::size_t bytes) {
  simnet::Simulator sim;
  baselines::PamMessenger messenger(sim, 2, std::make_unique<simnet::MeshLinkModel>());
  RunningStats stats;
  TimeNs start = 0;
  std::function<void(int)> send_next = [&](int remaining) {
    if (remaining == 0) {
      return;
    }
    start = sim.Now();
    messenger.Send(0, 1, bytes, [&, remaining] {
      stats.Add(static_cast<double>(sim.Now() - start));
      send_next(remaining - 1);
    });
  };
  send_next(50);
  sim.Run();
  return stats.mean() / 1000.0;
}

void Run() {
  PrintHeader("E7: bench_small_msgs", "Related Work (PAM vs FLIPC on small messages)",
              "PAM <10us at 20 bytes, about a third faster than FLIPC there; FLIPC "
              "wins once messages outgrow one PAM packet");

  TextTable table({"payload bytes", "PAM us", "FLIPC us", "winner"});
  std::size_t crossover = 0;
  for (const std::size_t bytes : {4u, 12u, 20u, 40u, 60u, 80u, 120u, 200u, 500u}) {
    const double pam = PamOneWayUs(bytes);
    const double flipc = FlipcOneWayUs(bytes);
    if (crossover == 0 && flipc < pam) {
      crossover = bytes;
    }
    table.AddRow({std::to_string(bytes), TextTable::Num(pam), TextTable::Num(flipc),
                  pam < flipc ? "PAM" : "FLIPC"});
  }
  std::printf("%s\n", table.ToString().c_str());

  const double pam20 = PamOneWayUs(20);
  const double flipc20 = FlipcOneWayUs(20);
  std::printf("At 20 bytes: PAM %.2f us (paper: <10) — %.0f%% of FLIPC's %.2f us "
              "(paper: about a third faster).\n", pam20, 100.0 * pam20 / flipc20, flipc20);
  std::printf("Crossover to FLIPC at ~%zu bytes — inside the 50-500 byte medium class "
              "FLIPC targets.\n\n", crossover);
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
