// E3 — validity-check overhead (Performance section).
//
// Paper: "These results are from a configuration that does not contain all
// of the validity checks that protect the messaging engine against
// corruption of the communication buffer by an errant or malicious
// application. Configuring these checks adds an additional 2 us to the
// above times."
#include <cstdio>

#include "bench/bench_common.h"

namespace flipc::bench {
namespace {

double OneWayUs(std::uint32_t message_size, bool checks) {
  engine::EngineOptions options;
  options.validity_checks = checks;
  auto cluster = MakeParagonPair(message_size, options);
  return MustPingPong(*cluster, {.exchanges = 300}).one_way_ns.mean() / 1000.0;
}

void Run() {
  PrintHeader("E3: bench_validity_checks", "Performance section (validity-check delta)",
              "configuring the engine's validity checks adds ~2 us per one-way message");

  TextTable table({"msg bytes", "checks off us", "checks on us", "delta us", "paper delta"});
  for (const std::uint32_t size : {64u, 128u, 256u, 512u, 1024u}) {
    const double off = OneWayUs(size, false);
    const double on = OneWayUs(size, true);
    table.AddRow({std::to_string(size), TextTable::Num(off), TextTable::Num(on),
                  TextTable::Num(on - off), "2.00"});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
