// E9 — the optimistic transport's discard rule and flow control above it
// (Message Transfer section).
//
// Paper: "If a receive occurs without an available buffer on the
// destination endpoint, the received message is discarded. ... Flow
// control to avoid discarded messages can be provided either by
// applications or by libraries designed to fit between applications and
// FLIPC." This bench overruns a slow receiver three ways: raw FLIPC (drops
// counted exactly by the wait-free drop counter), the window flow-control
// library (zero drops, sender paced by credits), and static sizing
// (buffers provisioned for the worst case, zero drops with no runtime
// protocol at all).
#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "src/flow/static_reservation.h"
#include "src/flow/window_channel.h"

namespace flipc::bench {
namespace {

constexpr DurationNs kSendInterval = 10'000;    // sender offers a message every 10 us
constexpr DurationNs kDrainInterval = 200'000;  // receiver drains every 200 us
constexpr TimeNs kRunFor = 20'000'000;          // 20 ms of virtual time

struct Outcome {
  std::uint64_t offered = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  // Comm-buffer telemetry read from the receive endpoint at quiescence.
  // Cross-checked against the counts above: the wait-free telemetry cells
  // must agree exactly with what the application observed.
  std::uint64_t telemetry_deliveries = 0;
  std::uint64_t telemetry_receives = 0;
};

void CaptureRxTelemetry(Domain& domain, std::uint32_t endpoint_index, Outcome& out) {
  const shm::TelemetryBlock& telemetry = domain.comm().telemetry(endpoint_index);
  out.telemetry_deliveries = telemetry.engine_deliveries.Read();
  out.telemetry_receives = telemetry.api_receives.Read();
}

// Raw FLIPC with `posted` receive buffers and no flow control.
Outcome RunRaw(std::uint32_t posted) {
  auto cluster = MakeParagonPair(128);
  Domain& a = cluster->domain(0);
  Domain& b = cluster->domain(1);
  Outcome out;

  auto rx = b.CreateEndpoint({.type = shm::EndpointType::kReceive, .queue_depth = 64});
  auto tx = a.CreateEndpoint({.type = shm::EndpointType::kSend, .queue_depth = 64});
  if (!rx.ok() || !tx.ok()) {
    std::abort();
  }
  for (std::uint32_t i = 0; i < posted; ++i) {
    auto buffer = b.AllocateBuffer();
    (void)rx->PostBuffer(*buffer);
  }

  std::function<void()> produce = [&] {
    if (cluster->sim().Now() >= kRunFor) {
      return;
    }
    ++out.offered;
    auto buffer = tx->Reclaim();
    Result<MessageBuffer> msg = buffer.ok() ? buffer : a.AllocateBuffer();
    if (msg.ok() && tx->Send(*msg, rx->address()).ok()) {
      ++out.sent;
    }
    cluster->sim().ScheduleAfter(kSendInterval, produce);
  };
  std::function<void()> drain = [&] {
    for (;;) {
      auto message = rx->Receive();
      if (!message.ok()) {
        break;
      }
      ++out.delivered;
      (void)rx->PostBuffer(*message);
    }
    if (cluster->sim().Now() < kRunFor + 2 * kDrainInterval) {
      cluster->sim().ScheduleAfter(kDrainInterval, drain);
    }
  };
  cluster->sim().ScheduleAt(0, produce);
  cluster->sim().ScheduleAt(kDrainInterval, drain);
  cluster->sim().Run();
  out.dropped = rx->ReadAndResetDrops();
  CaptureRxTelemetry(b, rx->index(), out);
  return out;
}

// The same offered load through the window flow-control library.
Outcome RunWindowed(std::uint32_t window) {
  auto cluster = MakeParagonPair(128);
  Domain& a = cluster->domain(0);
  Domain& b = cluster->domain(1);
  Outcome out;

  auto data_tx = a.CreateEndpoint({.type = shm::EndpointType::kSend, .queue_depth = 64});
  auto credit_rx = a.CreateEndpoint({.type = shm::EndpointType::kReceive, .queue_depth = 64});
  auto data_rx = b.CreateEndpoint({.type = shm::EndpointType::kReceive, .queue_depth = 64});
  auto credit_tx = b.CreateEndpoint({.type = shm::EndpointType::kSend, .queue_depth = 64});
  if (!data_tx.ok() || !credit_rx.ok() || !data_rx.ok() || !credit_tx.ok()) {
    std::abort();
  }
  auto receiver = flow::WindowReceiver::Create(b, *data_rx, *credit_tx,
                                               credit_rx->address(), window, /*batch=*/4);
  auto sender =
      flow::WindowSender::Create(a, *data_tx, *credit_rx, data_rx->address(), window);
  if (!receiver.ok() || !sender.ok()) {
    std::abort();
  }

  std::function<void()> produce = [&] {
    if (cluster->sim().Now() >= kRunFor) {
      return;
    }
    ++out.offered;
    sender->PollCredits();
    auto buffer = sender->Reclaim();
    Result<MessageBuffer> msg = buffer.ok() ? buffer : a.AllocateBuffer();
    if (msg.ok() && sender->Send(*msg).ok()) {
      ++out.sent;
    } else if (msg.ok()) {
      (void)a.FreeBuffer(*msg);  // no credit: the library held the message back
    }
    cluster->sim().ScheduleAfter(kSendInterval, produce);
  };
  std::function<void()> drain = [&] {
    for (;;) {
      auto message = receiver->Receive();
      if (!message.ok()) {
        break;
      }
      ++out.delivered;
      (void)receiver->Release(*message);
    }
    if (cluster->sim().Now() < kRunFor + 2 * kDrainInterval) {
      cluster->sim().ScheduleAfter(kDrainInterval, drain);
    }
  };
  cluster->sim().ScheduleAt(0, produce);
  cluster->sim().ScheduleAt(kDrainInterval, drain);
  cluster->sim().Run();
  out.dropped = data_rx->ReadAndResetDrops();
  CaptureRxTelemetry(b, data_rx->index(), out);
  return out;
}

// Static worst-case sizing (the paper's periodic example): enough buffers
// that the drain interval can never overrun, no runtime flow control.
Outcome RunStaticallySized() {
  flow::PeriodicPlan plan;
  plan.service_interval_ns = kDrainInterval;
  plan.producers.push_back({.period_ns = kSendInterval, .burst = 1});
  return RunRaw(plan.RequiredReceiveBuffers());
}

void Run(int argc, char** argv) {
  JsonReport report(argc, argv, "flow_control");
  PrintHeader("E9: bench_flow_control",
              "Message Transfer section (discard rule + flow control above FLIPC)",
              "optimistic transport discards on overrun (exact drop counter); a window "
              "library or static worst-case sizing eliminates drops");

  const Outcome raw = RunRaw(8);
  const Outcome window = RunWindowed(8);
  const Outcome sized = RunStaticallySized();

  TextTable table({"configuration", "offered", "sent", "delivered", "dropped",
                   "delivery rate"});
  auto rate = [](const Outcome& o) {
    return o.sent == 0 ? std::string("-")
                       : TextTable::Num(100.0 * static_cast<double>(o.delivered) /
                                        static_cast<double>(o.sent), 1) + "%";
  };
  table.AddRow({"raw FLIPC, 8 posted buffers", std::to_string(raw.offered),
                std::to_string(raw.sent), std::to_string(raw.delivered),
                std::to_string(raw.dropped), rate(raw)});
  table.AddRow({"window flow control (w=8)", std::to_string(window.offered),
                std::to_string(window.sent), std::to_string(window.delivered),
                std::to_string(window.dropped), rate(window)});
  table.AddRow({"static worst-case sizing", std::to_string(sized.offered),
                std::to_string(sized.sent), std::to_string(sized.delivered),
                std::to_string(sized.dropped), rate(sized)});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape checks: raw drops > 0 %s; window drops == 0 %s; static sizing "
              "drops == 0 with full offered throughput %s.\n",
              raw.dropped > 0 ? "[OK]" : "[MISMATCH]",
              window.dropped == 0 ? "[OK]" : "[MISMATCH]",
              (sized.dropped == 0 && sized.sent == sized.offered) ? "[OK]" : "[MISMATCH]");

  // The comm-buffer telemetry must agree with the application's own books:
  // the engine's delivery counter is exactly what the app received, and for
  // the raw run every sent message is accounted for as delivered or dropped.
  const bool telemetry_ok = raw.telemetry_deliveries == raw.delivered &&
                            raw.telemetry_receives == raw.delivered &&
                            raw.delivered + raw.dropped == raw.sent &&
                            window.telemetry_deliveries == window.delivered &&
                            window.telemetry_receives == window.delivered;
  std::printf("Telemetry cross-check: comm-buffer counters agree with app-side counts "
              "%s.\n\n",
              telemetry_ok ? "[OK]" : "[MISMATCH]");

  report.AddConfig("send_interval_ns", static_cast<double>(kSendInterval));
  report.AddConfig("drain_interval_ns", static_cast<double>(kDrainInterval));
  report.AddMetric("raw_offered", static_cast<double>(raw.offered), "msgs");
  report.AddMetric("raw_sent", static_cast<double>(raw.sent), "msgs");
  report.AddMetric("raw_delivered", static_cast<double>(raw.delivered), "msgs");
  report.AddMetric("raw_dropped", static_cast<double>(raw.dropped), "msgs");
  report.AddMetric("raw_telemetry_deliveries", static_cast<double>(raw.telemetry_deliveries),
                   "msgs");
  report.AddMetric("window_offered", static_cast<double>(window.offered), "msgs");
  report.AddMetric("window_sent", static_cast<double>(window.sent), "msgs");
  report.AddMetric("window_delivered", static_cast<double>(window.delivered), "msgs");
  report.AddMetric("window_dropped", static_cast<double>(window.dropped), "msgs");
  report.AddMetric("window_telemetry_deliveries",
                   static_cast<double>(window.telemetry_deliveries), "msgs");
  report.AddMetric("static_sent", static_cast<double>(sized.sent), "msgs");
  report.AddMetric("static_delivered", static_cast<double>(sized.delivered), "msgs");
  report.AddMetric("static_dropped", static_cast<double>(sized.dropped), "msgs");
}

}  // namespace
}  // namespace flipc::bench

int main(int argc, char** argv) {
  flipc::bench::Run(argc, argv);
  return 0;
}
