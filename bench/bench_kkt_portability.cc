// E8 — the KKT development path (Implementation section).
//
// Paper: FLIPC was first built over KKT (an RPC-per-message kernel
// transport) on Ethernet and SCSI PC clusters, then moved to the Paragon
// "in less than a week including test time", and finally replaced by the
// native mesh engine. KKT "is not a good match to the one way messages
// used by FLIPC because KKT uses an RPC to deliver each message" — but the
// platform-independent layers (application library, communication buffer)
// ran unchanged everywhere.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

namespace flipc::bench {
namespace {

double OneWayUs(SimCluster::EngineKind kind, const char* fabric,
                const engine::PlatformModel& model) {
  std::unique_ptr<simnet::LinkModel> link;
  const std::string name = fabric;
  if (name == "mesh") {
    link = std::make_unique<simnet::MeshLinkModel>();
  } else if (name == "ethernet") {
    link = std::make_unique<simnet::EthernetLinkModel>();
  } else {
    link = std::make_unique<simnet::ScsiLinkModel>();
  }
  SimCluster::Options options;
  options.node_count = 2;
  options.comm.message_size = 128;
  options.engine_kind = kind;
  options.model = model;
  options.link_model = std::move(link);
  auto cluster = SimCluster::Create(std::move(options));
  if (!cluster.ok()) {
    std::abort();
  }
  return MustPingPong(**cluster, {.exchanges = 100}).one_way_ns.mean() / 1000.0;
}

void Run() {
  PrintHeader("E8: bench_kkt_portability",
              "Implementation section (KKT development path, 120-byte message)",
              "the same library + communication buffer run over KKT on Ethernet/SCSI "
              "PC clusters and the Paragon; native mesh engine is far faster than "
              "RPC-per-message KKT");

  const engine::PlatformModel paragon = engine::ParagonModel();
  const engine::PlatformModel pc = engine::PcClusterModel();

  TextTable table({"engine", "platform", "measured us", "note"});
  table.AddRow({"KKT", "ethernet PC cluster",
                TextTable::Num(OneWayUs(SimCluster::EngineKind::kKkt, "ethernet", pc)),
                "development platform"});
  table.AddRow({"KKT", "SCSI PC cluster",
                TextTable::Num(OneWayUs(SimCluster::EngineKind::kKkt, "scsi", pc)),
                "development platform"});
  const double kkt_mesh = OneWayUs(SimCluster::EngineKind::kKkt, "mesh", paragon);
  table.AddRow({"KKT", "Paragon mesh", TextTable::Num(kkt_mesh),
                "ported 'in less than a week'"});
  const double native = OneWayUs(SimCluster::EngineKind::kNative, "mesh", paragon);
  table.AddRow({"native", "Paragon mesh", TextTable::Num(native),
                "optimized engine (paper: 16.2 us)"});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape check: native beats KKT on identical hardware by %.1fx %s — the\n"
              "RPC-per-message mismatch (marshal, kernel paths, stop-and-wait ack per\n"
              "endpoint) that motivated the native engine.\n\n",
              kkt_mesh / native, kkt_mesh / native > 1.5 ? "[OK]" : "[MISMATCH]");
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
