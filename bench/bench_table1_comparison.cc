// E2 — the Related Work latency comparison: one-way latency for a 120-byte
// application message on the Paragon, FLIPC vs NX vs PAM vs SUNMOS.
//
// Paper: FLIPC 16.2 us; NX (Paragon O/S R1.3.2) 46 us; Paragon Active
// Messages 26 us; SUNMOS 28 us. "This demonstrates the performance impact
// of not optimizing for the medium class of messages."
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "src/baselines/baseline_messenger.h"

namespace flipc::bench {
namespace {

double FlipcOneWayUs(std::size_t payload_bytes) {
  // FLIPC message size = payload + 8-byte internal header, rounded up to
  // the 32-byte DMA multiple.
  const auto size = static_cast<std::uint32_t>(AlignUp(payload_bytes + 8, 32));
  auto cluster = MakeParagonPair(size < 64 ? 64 : size);
  const sim::PingPongResult result = MustPingPong(*cluster, {.exchanges = 300});
  return result.one_way_ns.mean() / 1000.0;
}

template <typename Messenger>
double BaselineOneWayUs(std::size_t bytes) {
  simnet::Simulator sim;
  Messenger messenger(sim, 2, std::make_unique<simnet::MeshLinkModel>());
  // Steady-state mean over repeated one-way sends (completion-chained so
  // each message runs in isolation, as a latency test does).
  RunningStats stats;
  TimeNs start = 0;
  std::function<void(int)> send_next = [&](int remaining) {
    if (remaining == 0) {
      return;
    }
    start = sim.Now();
    messenger.Send(0, 1, bytes, [&, remaining] {
      stats.Add(static_cast<double>(sim.Now() - start));
      send_next(remaining - 1);
    });
  };
  send_next(50);
  sim.Run();
  return stats.mean() / 1000.0;
}

void Run() {
  PrintHeader("E2: bench_table1_comparison",
              "Related Work latency table (120-byte message, two Paragon nodes)",
              "FLIPC 16.2us | NX 46us | PAM 26us | SUNMOS 28us");

  const double flipc = FlipcOneWayUs(120);
  const double nx = BaselineOneWayUs<baselines::NxMessenger>(120);
  const double pam = BaselineOneWayUs<baselines::PamMessenger>(120);
  const double sunmos = BaselineOneWayUs<baselines::SunmosMessenger>(120);

  TextTable table({"system", "paper us", "measured us", "vs FLIPC"});
  table.AddRow({"FLIPC", "16.2", TextTable::Num(flipc), "1.00x"});
  table.AddRow({"NX (R1.3.2)", "46", TextTable::Num(nx), TextTable::Num(nx / flipc) + "x"});
  table.AddRow({"PAM", "26", TextTable::Num(pam), TextTable::Num(pam / flipc) + "x"});
  table.AddRow({"SUNMOS", "28", TextTable::Num(sunmos), TextTable::Num(sunmos / flipc) + "x"});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape check: FLIPC fastest on the medium message%s; ordering "
              "FLIPC < PAM < SUNMOS < NX %s.\n\n",
              (flipc < pam && flipc < sunmos && flipc < nx) ? " [OK]" : " [MISMATCH]",
              (pam < sunmos && sunmos < nx) ? "[OK]" : "[MISMATCH]");
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
