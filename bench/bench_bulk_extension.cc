// E12 — the bulk-transfer future-work extension, closing the loop on E6.
//
// Paper: "FLIPC was designed solely to address the transport of medium
// sized messages and needs to be integrated into a system that provides
// excellent performance for messages of all sizes." E6 showed a
// medium-configured FLIPC losing the bulk regime to NX/SUNMOS; this bench
// shows the layered bulk library (fragmentation + window flow control over
// 1 KB FLIPC messages) restoring competitive large-transfer bandwidth with
// zero transport drops — while the engine stays untouched.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/baseline_messenger.h"
#include "src/flow/bulk_channel.h"

namespace flipc::bench {
namespace {

double BulkMBps(std::size_t total_bytes, std::uint32_t message_size) {
  auto cluster = MakeParagonPair(message_size);
  Domain& a = cluster->domain(0);
  Domain& b = cluster->domain(1);
  constexpr std::uint32_t kWindow = 32;

  auto data_tx = a.CreateEndpoint({.type = shm::EndpointType::kSend, .queue_depth = kWindow});
  auto credit_rx =
      a.CreateEndpoint({.type = shm::EndpointType::kReceive, .queue_depth = kWindow});
  auto data_rx =
      b.CreateEndpoint({.type = shm::EndpointType::kReceive, .queue_depth = kWindow});
  auto credit_tx = b.CreateEndpoint({.type = shm::EndpointType::kSend, .queue_depth = kWindow});
  auto receiver = flow::BulkReceiver::Create(b, *data_rx, *credit_tx, credit_rx->address(),
                                             kWindow);
  auto sender =
      flow::BulkSender::Create(a, *data_tx, *credit_rx, data_rx->address(), kWindow);
  if (!receiver.ok() || !sender.ok()) {
    std::abort();
  }

  std::vector<std::byte> data(total_bytes, std::byte{0x42});
  const TimeNs start = cluster->sim().Now();
  if (!sender->Start(data.data(), data.size()).ok()) {
    std::abort();
  }

  // Event-driven pipeline: pump the sender whenever credits arrive or
  // fragment buffers complete; poll the receiver on every data delivery.
  // This keeps the window full continuously instead of draining it in
  // batches, which is how a real application would run the library.
  TimeNs done_at = -1;
  bool checksum_ok = false;
  const std::uint32_t data_tx_index = data_tx->index();
  const std::uint32_t credit_rx_index = credit_rx->index();
  const std::uint32_t data_rx_index = data_rx->index();
  cluster->engine(0).SetSendCompleteHook([&](std::uint32_t endpoint) {
    if (endpoint == data_tx_index) {
      sender->Pump();
    }
  });
  cluster->engine(0).SetReceiveHook([&](std::uint32_t endpoint, bool delivered) {
    if (endpoint == credit_rx_index && delivered) {
      sender->Pump();
    }
  });
  cluster->engine(1).SetReceiveHook([&](std::uint32_t endpoint, bool delivered) {
    if (endpoint != data_rx_index || !delivered) {
      return;
    }
    auto transfer = receiver->Poll();
    if (transfer.ok()) {
      done_at = cluster->sim().Now();
      checksum_ok = transfer->checksum_ok;
    }
  });

  sender->Pump();
  cluster->sim().Run();
  if (done_at < 0 || !checksum_ok) {
    std::fprintf(stderr, "FATAL: bulk transfer incomplete or corrupt\n");
    std::abort();
  }
  return static_cast<double>(total_bytes) / (1024.0 * 1024.0) /
         (static_cast<double>(done_at - start) / 1e9);
}

template <typename Messenger>
double BaselineMBps(std::size_t total_bytes) {
  simnet::Simulator sim;
  Messenger messenger(sim, 2, std::make_unique<simnet::MeshLinkModel>());
  TimeNs done_at = -1;
  messenger.Send(0, 1, total_bytes, [&] { done_at = sim.Now(); });
  sim.Run();
  return static_cast<double>(total_bytes) / (1024.0 * 1024.0) /
         (static_cast<double>(done_at) / 1e9);
}

void Run() {
  PrintHeader("E12: bench_bulk_extension",
              "Future Work (bulk integration; extends the E6 comparison)",
              "a bulk library layered over FLIPC messages restores large-transfer "
              "bandwidth competitive with the bulk-optimized systems");

  TextTable table({"transfer", "FLIPC+bulk(1KB) MB/s", "FLIPC+bulk(128B) MB/s", "NX MB/s",
                   "SUNMOS MB/s"});
  double flipc_large = 0, nx_large = 0;
  for (const std::size_t bytes :
       {64u * 1024u, 256u * 1024u, 1024u * 1024u, 4u * 1024u * 1024u}) {
    const double bulk1k = BulkMBps(bytes, 1024);
    const double bulk128 = BulkMBps(bytes, 128);
    const double nx = BaselineMBps<baselines::NxMessenger>(bytes);
    const double sunmos = BaselineMBps<baselines::SunmosMessenger>(bytes);
    flipc_large = bulk1k;
    nx_large = nx;
    char label[32];
    std::snprintf(label, sizeof(label), "%zu KB", bytes / 1024);
    table.AddRow({label, TextTable::Num(bulk1k, 1), TextTable::Num(bulk128, 1),
                  TextTable::Num(nx, 1), TextTable::Num(sunmos, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape check: with the extension, large-message FLIPC is within %.0f%% of "
              "NX %s — the 'complete system' the future-work section calls for, built\n"
              "entirely above the unchanged medium-message transport.\n\n",
              100.0 * flipc_large / nx_large,
              flipc_large > 0.8 * nx_large ? "[OK]" : "[MISMATCH]");
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
