// E1 — Figure 4: FLIPC message latency vs message size on the (simulated)
// Paragon, steady state, lock-free interface variants, validity checks off.
//
// Paper: latencies 15.5–17 us over the measured sizes; for messages of
// 96 bytes and above, latency = 15.45 us + 6.25 ns/byte, with standard
// deviations of 0.5–0.65 us; 64-byte messages are slightly faster than the
// line ("changes in hardware behavior").
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/base/stats.h"

namespace flipc::bench {
namespace {

void Run(JsonReport& report) {
  PrintHeader("E1: bench_fig4_latency", "Figure 4 (message latency vs message size)",
              "latency(m >= 96B) = 15.45us + 6.25ns/B; sigma 0.5-0.65us; range ~15.5-17us");

  TextTable table({"msg bytes", "payload", "paper us", "measured us", "sigma us", "samples"});
  LinearFit fit;

  for (std::uint32_t size = 64; size <= 1024; size += 32) {
    auto cluster = MakeParagonPair(size);
    sim::PingPongConfig config;
    config.exchanges = 300;  // "hundreds of message exchanges"
    config.jitter_stddev_ns = 400;  // per side; combined one-way sigma ~0.57 us
    config.jitter_seed = 1996 + size;
    const sim::PingPongResult result = MustPingPong(*cluster, config);

    const double measured_us = result.one_way_ns.mean() / 1000.0;
    const double sigma_us = result.one_way_ns.stddev() / 1000.0;
    const double paper_us = size >= 96 ? 15.45 + 6.25e-3 * size : 15.5;
    if (size >= 96) {
      fit.Add(static_cast<double>(size), result.one_way_ns.mean());
    }
    table.AddRow({std::to_string(size), std::to_string(size - 8),
                  TextTable::Num(paper_us), TextTable::Num(measured_us),
                  TextTable::Num(sigma_us), std::to_string(result.one_way_ns.count())});
  }
  std::printf("%s\n", table.ToString().c_str());

  const LineFit line = fit.Fit();
  std::printf("Least-squares fit over sizes >= 96 B:\n");
  std::printf("  paper   : latency = 15.45 us + 6.250 ns/byte\n");
  std::printf("  measured: latency = %.2f us + %.3f ns/byte  (r^2 = %.5f)\n",
              line.intercept / 1000.0, line.slope, line.r_squared);
  std::printf("  marginal interconnect rate: paper >150 MB/s; measured %.0f MB/s\n\n",
              1000.0 / line.slope);

  // Regression gate for CI: the calibrated pipeline must keep reproducing
  // the paper's line. Printed markers, not exit codes, so a perf-smoke job
  // can grep while the full experiment script keeps running.
  const double intercept_err_us = std::fabs(line.intercept / 1000.0 - 15.45);
  const double slope_err = std::fabs(line.slope - 6.25);
  if (intercept_err_us <= 0.2 && slope_err <= 0.1) {
    std::printf("[OK] fit within tolerance (intercept +/-0.2 us, slope +/-0.1 ns/B)\n");
  } else {
    std::printf("[MISMATCH] fit drifted: intercept err %.3f us (max 0.2), "
                "slope err %.4f ns/B (max 0.1)\n", intercept_err_us, slope_err);
  }

  report.AddConfig("exchanges", 300.0);
  report.AddConfig("sizes", std::string("64..1024 step 32"));
  report.AddMetric("fit_intercept", line.intercept / 1000.0, "us");
  report.AddMetric("fit_slope", line.slope, "ns/B");
  report.AddMetric("fit_r_squared", line.r_squared, "1");
}

}  // namespace
}  // namespace flipc::bench

int main(int argc, char** argv) {
  flipc::bench::JsonReport report(argc, argv, "fig4_latency");
  flipc::bench::Run(report);
  return 0;
}
