// E1 — Figure 4: FLIPC message latency vs message size on the (simulated)
// Paragon, steady state, lock-free interface variants, validity checks off.
//
// Paper: latencies 15.5–17 us over the measured sizes; for messages of
// 96 bytes and above, latency = 15.45 us + 6.25 ns/byte, with standard
// deviations of 0.5–0.65 us; 64-byte messages are slightly faster than the
// line ("changes in hardware behavior").
#include <cstdio>

#include "bench/bench_common.h"
#include "src/base/stats.h"

namespace flipc::bench {
namespace {

void Run() {
  PrintHeader("E1: bench_fig4_latency", "Figure 4 (message latency vs message size)",
              "latency(m >= 96B) = 15.45us + 6.25ns/B; sigma 0.5-0.65us; range ~15.5-17us");

  TextTable table({"msg bytes", "payload", "paper us", "measured us", "sigma us", "samples"});
  LinearFit fit;

  for (std::uint32_t size = 64; size <= 1024; size += 32) {
    auto cluster = MakeParagonPair(size);
    sim::PingPongConfig config;
    config.exchanges = 300;  // "hundreds of message exchanges"
    config.jitter_stddev_ns = 400;  // per side; combined one-way sigma ~0.57 us
    config.jitter_seed = 1996 + size;
    const sim::PingPongResult result = MustPingPong(*cluster, config);

    const double measured_us = result.one_way_ns.mean() / 1000.0;
    const double sigma_us = result.one_way_ns.stddev() / 1000.0;
    const double paper_us = size >= 96 ? 15.45 + 6.25e-3 * size : 15.5;
    if (size >= 96) {
      fit.Add(static_cast<double>(size), result.one_way_ns.mean());
    }
    table.AddRow({std::to_string(size), std::to_string(size - 8),
                  TextTable::Num(paper_us), TextTable::Num(measured_us),
                  TextTable::Num(sigma_us), std::to_string(result.one_way_ns.count())});
  }
  std::printf("%s\n", table.ToString().c_str());

  const LineFit line = fit.Fit();
  std::printf("Least-squares fit over sizes >= 96 B:\n");
  std::printf("  paper   : latency = 15.45 us + 6.250 ns/byte\n");
  std::printf("  measured: latency = %.2f us + %.3f ns/byte  (r^2 = %.5f)\n",
              line.intercept / 1000.0, line.slope, line.r_squared);
  std::printf("  marginal interconnect rate: paper >150 MB/s; measured %.0f MB/s\n\n",
              1000.0 / line.slope);
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
