// Endpoint scaling: engine scheduling effort vs CONFIGURED endpoint count.
//
// The paper's engine "examines endpoints in the communication buffer for
// messages to send", so its per-message scheduling work grows with the
// number of endpoint slots even when only a handful are active. The
// doorbell ring makes scheduling O(active): with 4 active senders the
// per-message effort must stay flat from 4 to 4096 configured endpoints,
// while the legacy full scan grows linearly.
//
// Two deterministic readings per configuration, plus a wall-clock one:
//   * endpoints_visited / message — the engine's own scan-effort counter;
//     exact and noise-free, this is the CI gate ([OK]/[MISMATCH]);
//   * host ns / message — actual CPU cost of the sender engine's event
//     loop (the simulated latency cannot show the effect: the platform
//     model charges a fixed send overhead regardless of table size).
//
// The doorbell arm disables the periodic backstop sweep: every release in
// this harness rings its doorbell, so the periodic sweep would only add a
// configurable amortized n/interval term that is not the hint path under
// test (lost-doorbell recovery has its own tests and model-checker
// schedules).
// Sharded mode (--shards=N [--endpoints=M]): N shard planners over one
// communication buffer, each on its own thread, driving disjoint endpoint
// ranges against per-shard null wires. Reports aggregate msgs/s, per-shard
// visit counts, and scaling efficiency vs the 1-shard baseline (the tentpole
// measurement for DESIGN.md §12).
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "bench/bench_common.h"
#include "src/engine/messaging_engine.h"
#include "src/shm/comm_buffer.h"
#include "src/simnet/des.h"
#include "src/simnet/fabric.h"
#include "src/simnet/link_model.h"
#include "src/waitfree/boundary_check.h"

namespace flipc::bench {
namespace {

constexpr std::uint32_t kActiveSenders = 4;
constexpr std::uint32_t kRoundsMax = 4096;
constexpr double kMinTimedSeconds = 0.05;
constexpr int kRepeats = 3;

struct ArmResult {
  double host_ns_per_msg = 0;      // min over repeats
  double visited_per_msg = 0;      // deterministic scan effort
  double doorbells_per_msg = 0;
  double sweeps = 0;
};

// One hand-wired sender node driving 4 active send endpoints out of
// `configured` slots, messages draining into a fixed-size receiver node.
ArmResult RunArm(std::uint32_t configured, bool doorbell) {
  ArmResult best;

  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    simnet::Simulator sim;
    simnet::SimFabric fabric(sim, std::make_unique<simnet::MeshLinkModel>(), 2);

    shm::CommBufferConfig tx_config;
    tx_config.message_size = 128;
    tx_config.buffer_count = 64;
    tx_config.max_endpoints = configured;
    auto tx_comm = shm::CommBuffer::Create(tx_config);
    shm::CommBufferConfig rx_config;
    rx_config.message_size = 128;
    rx_config.buffer_count = 64;
    rx_config.max_endpoints = 4;
    auto rx_comm = shm::CommBuffer::Create(rx_config);
    if (!tx_comm.ok() || !rx_comm.ok()) {
      std::fprintf(stderr, "FATAL: comm buffer creation failed at n=%u\n", configured);
      std::abort();
    }

    engine::PlatformModel model;
    engine::EngineOptions options;
    options.doorbell_scheduling = doorbell;
    options.backstop_interval = doorbell ? 0 : 64;  // see header comment
    engine::MessagingEngine tx_engine(**tx_comm, fabric.wire(0), options, &model);
    engine::MessagingEngine rx_engine(**rx_comm, fabric.wire(1), options, &model);

    std::uint32_t senders[kActiveSenders];
    waitfree::BufferIndex buffers[kActiveSenders];
    for (std::uint32_t s = 0; s < kActiveSenders; ++s) {
      shm::CommBuffer::EndpointParams params;
      params.type = shm::EndpointType::kSend;
      params.queue_capacity = 8;
      auto index = (*tx_comm)->AllocateEndpoint(params);
      auto buffer = (*tx_comm)->AllocateBuffer();
      if (!index.ok() || !buffer.ok()) {
        std::fprintf(stderr, "FATAL: endpoint/buffer allocation failed\n");
        std::abort();
      }
      senders[s] = *index;
      buffers[s] = *buffer;
    }
    shm::CommBuffer::EndpointParams rx_params;
    rx_params.type = shm::EndpointType::kReceive;
    const std::uint32_t rx = *(*rx_comm)->AllocateEndpoint(rx_params);
    const Address dst(1, static_cast<std::uint16_t>(rx));

    const std::uint64_t visited_start = tx_engine.stats().endpoints_visited;
    double timed_ns = 0;
    std::uint64_t messages = 0;
    std::uint32_t rounds = 0;

    while (rounds < kRoundsMax && (timed_ns < kMinTimedSeconds * 1e9 || rounds < 32)) {
      // Application phase (untimed): reclaim last round's buffers, release
      // the next message on each sender, ring the doorbell like the
      // application library does.
      for (std::uint32_t s = 0; s < kActiveSenders; ++s) {
        if (rounds > 0 && (*tx_comm)->queue(senders[s]).Acquire() != buffers[s]) {
          std::fprintf(stderr, "FATAL: buffer did not complete\n");
          std::abort();
        }
        shm::MsgView view = (*tx_comm)->msg(buffers[s]);
        std::memcpy(view.payload, "scaling", 8);
        view.header->set_peer_address(dst);
        view.header->state.Store(waitfree::MsgState::kReady);
        (*tx_comm)->queue(senders[s]).Release(buffers[s]);
        if (doorbell) {
          (*tx_comm)->doorbell_ring().Ring(senders[s]);
        }
      }

      // Timed phase: only the sender engine's scheduling + transmit work.
      const std::uint64_t target = tx_engine.stats().messages_sent + kActiveSenders;
      const auto start = std::chrono::steady_clock::now();
      while (tx_engine.stats().messages_sent < target) {
        tx_engine.Step();
      }
      const auto stop = std::chrono::steady_clock::now();
      timed_ns += std::chrono::duration<double, std::nano>(stop - start).count();
      messages += kActiveSenders;
      ++rounds;

      // Drain the fabric into the receiver (untimed; fixed-size node). No
      // buffers are posted — the optimistic protocol discards, which keeps
      // the receiver cost constant across configurations.
      sim.Run();
      while (rx_engine.Step()) {
      }
    }

    const double host = timed_ns / static_cast<double>(messages);
    if (repeat == 0 || host < best.host_ns_per_msg) {
      best.host_ns_per_msg = host;
    }
    best.visited_per_msg =
        static_cast<double>(tx_engine.stats().endpoints_visited - visited_start) /
        static_cast<double>(messages);
    best.doorbells_per_msg = static_cast<double>(tx_engine.stats().doorbells_consumed) /
                             static_cast<double>(messages);
    best.sweeps = static_cast<double>(tx_engine.stats().backstop_sweeps);
  }
  return best;
}

void Run(JsonReport& report) {
  PrintHeader("endpoint scaling: bench_endpoint_scaling",
              "the engine's endpoint-scan cost model (doorbell ring vs full scan)",
              "O(active) scheduling: per-message effort flat in CONFIGURED endpoints");

  const std::uint32_t configs[] = {4, 16, 64, 256, 1024, 4096};

  TextTable table({"configured", "active", "doorbell ns/msg", "doorbell visits/msg",
                   "legacy ns/msg", "legacy visits/msg"});
  std::vector<ArmResult> doorbell_arm;

  for (const std::uint32_t n : configs) {
    const ArmResult ring = RunArm(n, /*doorbell=*/true);
    const ArmResult scan = RunArm(n, /*doorbell=*/false);
    doorbell_arm.push_back(ring);

    table.AddRow({std::to_string(n), std::to_string(kActiveSenders),
                  TextTable::Num(ring.host_ns_per_msg), TextTable::Num(ring.visited_per_msg),
                  TextTable::Num(scan.host_ns_per_msg), TextTable::Num(scan.visited_per_msg)});

    char name[64];
    std::snprintf(name, sizeof(name), "doorbell_ns_per_msg_n%u", n);
    report.AddMetric(name, ring.host_ns_per_msg, "ns");
    std::snprintf(name, sizeof(name), "doorbell_visits_per_msg_n%u", n);
    report.AddMetric(name, ring.visited_per_msg, "endpoints");
    std::snprintf(name, sizeof(name), "legacy_ns_per_msg_n%u", n);
    report.AddMetric(name, scan.host_ns_per_msg, "ns");
    std::snprintf(name, sizeof(name), "legacy_visits_per_msg_n%u", n);
    report.AddMetric(name, scan.visited_per_msg, "endpoints");
  }
  std::printf("%s\n", table.ToString().c_str());

  // Flatness gate on the deterministic scan-effort counter: with 4 active
  // senders the doorbell arm's per-message effort must be independent of
  // the configured endpoint count (within 10%). Host ns/msg is reported
  // above but not gated — wall-clock noise is not reproducible in CI.
  double min_v = doorbell_arm.front().visited_per_msg;
  double max_v = min_v;
  for (const ArmResult& r : doorbell_arm) {
    min_v = r.visited_per_msg < min_v ? r.visited_per_msg : min_v;
    max_v = r.visited_per_msg > max_v ? r.visited_per_msg : max_v;
  }
  const double spread = max_v / min_v;
  if (spread <= 1.10) {
    std::printf("[OK] doorbell scheduling flat: visits/msg spread %.3fx over %ux "
                "configured-endpoint range\n",
                spread, configs[sizeof(configs) / sizeof(configs[0]) - 1] / configs[0]);
  } else {
    std::printf("[MISMATCH] doorbell scheduling not flat: visits/msg spread %.3fx "
                "(max allowed 1.10x)\n", spread);
  }
  report.AddConfig("active_senders", static_cast<double>(kActiveSenders));
  report.AddConfig("repeats", static_cast<double>(kRepeats));
  report.AddMetric("doorbell_visits_spread", spread, "ratio");
}

// ======================= Sharded throughput mode ===========================

// Bench-local wire: counts sends and delivers nothing, so the measurement is
// pure planner work (doorbell pop, queue ops, packetization) with nothing
// shared between shards — no fabric lock can flatten the scaling curve.
class NullWire final : public simnet::Wire {
 public:
  Status Send(simnet::Packet packet) override {
    (void)packet;
    ++sent_;
    return OkStatus();
  }
  bool Poll(simnet::Packet*) override { return false; }
  std::size_t PendingCount() const override { return 0; }
  NodeId node() const override { return 0; }
  std::uint64_t sent() const { return sent_; }

 private:
  std::uint64_t sent_ = 0;
};

void PinThisThread(unsigned cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

constexpr std::uint32_t kShardSendersTotal = 64;
constexpr std::uint32_t kShardQueueDepth = 8;
constexpr std::uint32_t kShardRoundsMax = 4096;
constexpr std::uint32_t kShardRoundsMin = 16;
constexpr double kShardMinTimedSeconds = 0.2;

struct ShardArmResult {
  double msgs_per_sec = 0;
  std::vector<double> visits_per_msg;   // per shard
  std::vector<std::uint64_t> shard_msgs;  // per shard
};

// Round-based: the main thread refills every sender queue (untimed), then
// releases all shard planner threads through a barrier and times them until
// each has drained its shard's round quota. Refill being untimed keeps the
// app side off the measured critical path, so the number is planner
// throughput, comparable across shard counts on a small machine.
ShardArmResult RunShardArm(std::uint32_t shards, std::uint32_t endpoints) {
  shm::CommBufferConfig config;
  config.message_size = 128;
  config.buffer_count = kShardSendersTotal * kShardQueueDepth + 64;
  config.max_endpoints = endpoints;
  config.shard_count = shards;
  auto comm_result = shm::CommBuffer::Create(config);
  if (!comm_result.ok()) {
    std::fprintf(stderr, "FATAL: comm buffer creation failed (shards=%u endpoints=%u): %s\n",
                 shards, endpoints, comm_result.status().ToString().c_str());
    std::abort();
  }
  shm::CommBuffer& comm = **comm_result;

  std::vector<std::unique_ptr<NullWire>> wires;
  std::vector<std::unique_ptr<engine::MessagingEngine>> engines;
  for (std::uint32_t s = 0; s < shards; ++s) {
    wires.push_back(std::make_unique<NullWire>());
    engine::EngineOptions options;
    options.doorbell_scheduling = true;
    options.backstop_interval = 0;  // see file header: doorbells never lost here
    options.shard_id = s;
    engines.push_back(std::make_unique<engine::MessagingEngine>(comm, *wires.back(), options));
    engines.back()->SetClock(&RealClock::Instance());
  }

  // Senders spread round-robin across shards; each owns kShardQueueDepth
  // dedicated buffers, recycled every round.
  const std::uint32_t per_shard = kShardSendersTotal / shards;
  struct Sender {
    std::uint32_t index = 0;
    std::uint32_t shard = 0;
    waitfree::BufferIndex buffers[kShardQueueDepth];
  };
  std::vector<Sender> senders(kShardSendersTotal);
  for (std::uint32_t i = 0; i < kShardSendersTotal; ++i) {
    shm::CommBuffer::EndpointParams params;
    params.type = shm::EndpointType::kSend;
    params.queue_capacity = kShardQueueDepth;
    params.shard = i % shards;
    auto index = comm.AllocateEndpoint(params);
    if (!index.ok()) {
      std::fprintf(stderr, "FATAL: sender allocation failed\n");
      std::abort();
    }
    senders[i].index = *index;
    senders[i].shard = i % shards;
    for (std::uint32_t d = 0; d < kShardQueueDepth; ++d) {
      auto buffer = comm.AllocateBuffer();
      if (!buffer.ok()) {
        std::fprintf(stderr, "FATAL: buffer allocation failed\n");
        std::abort();
      }
      senders[i].buffers[d] = *buffer;
    }
  }
  const Address dst(1, 0);  // remote node: every message exits via the wire

  std::barrier round_start(static_cast<std::ptrdiff_t>(shards) + 1);
  std::barrier round_end(static_cast<std::ptrdiff_t>(shards) + 1);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> targets(shards, 0);

  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::thread> threads;
  for (std::uint32_t s = 0; s < shards; ++s) {
    threads.emplace_back([&, s] {
      PinThisThread(s % hw_threads);
      engine::MessagingEngine& eng = *engines[s];
      for (;;) {
        round_start.arrive_and_wait();
        if (stop.load(std::memory_order_acquire)) {
          return;
        }
        const std::uint64_t target = targets[s];
        while (eng.stats().messages_sent < target) {
          eng.Step();
        }
        round_end.arrive_and_wait();
      }
    });
  }

  double timed_ns = 0;
  std::uint64_t total_messages = 0;
  std::uint32_t rounds = 0;
  while (rounds < kShardRoundsMax &&
         (timed_ns < kShardMinTimedSeconds * 1e9 || rounds < kShardRoundsMin)) {
    {
      // Application phase (untimed): reclaim last round's buffers, refill
      // each sender's queue, ring the owning shard's doorbell ring.
      waitfree::ScopedBoundaryRole app(waitfree::Writer::kApplication);
      for (Sender& sender : senders) {
        waitfree::BufferQueueView queue = comm.queue(sender.index);
        for (std::uint32_t d = 0; d < kShardQueueDepth; ++d) {
          if (rounds > 0 && queue.Acquire() != sender.buffers[d]) {
            std::fprintf(stderr, "FATAL: buffer did not complete\n");
            std::abort();
          }
          shm::MsgView view = comm.msg(sender.buffers[d]);
          std::memcpy(view.payload, "sharding", 9);
          view.header->set_peer_address(dst);
          view.header->state.Store(waitfree::MsgState::kReady);
          if (!queue.Release(sender.buffers[d])) {
            std::fprintf(stderr, "FATAL: refill overflowed sender queue\n");
            std::abort();
          }
          comm.doorbell_ring(sender.shard).Ring(sender.index);
        }
      }
    }
    for (std::uint32_t s = 0; s < shards; ++s) {
      targets[s] = engines[s]->stats().messages_sent +
                   static_cast<std::uint64_t>(per_shard) * kShardQueueDepth;
    }
    const auto start = std::chrono::steady_clock::now();
    round_start.arrive_and_wait();
    round_end.arrive_and_wait();
    const auto end = std::chrono::steady_clock::now();
    timed_ns += std::chrono::duration<double, std::nano>(end - start).count();
    total_messages += static_cast<std::uint64_t>(kShardSendersTotal) * kShardQueueDepth;
    ++rounds;
  }
  stop.store(true, std::memory_order_release);
  round_start.arrive_and_wait();
  for (std::thread& thread : threads) {
    thread.join();
  }

  ShardArmResult result;
  result.msgs_per_sec = static_cast<double>(total_messages) / (timed_ns / 1e9);
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint64_t msgs = engines[s]->stats().messages_sent;
    result.shard_msgs.push_back(msgs);
    result.visits_per_msg.push_back(
        msgs == 0 ? 0.0
                  : static_cast<double>(engines[s]->stats().endpoints_visited) /
                        static_cast<double>(msgs));
  }
  return result;
}

void RunSharded(JsonReport& report, std::uint32_t shards, std::uint32_t endpoints) {
  PrintHeader("sharded engine scaling: bench_endpoint_scaling --shards",
              "DESIGN.md §12 (per-shard planners over a shared transmit backend)",
              "aggregate planner throughput scales with the shard count");

  if (endpoints % shards != 0 || kShardSendersTotal % shards != 0) {
    std::fprintf(stderr,
                 "FATAL: --shards=%u must divide --endpoints=%u and the %u bench senders\n",
                 shards, endpoints, kShardSendersTotal);
    std::exit(1);
  }

  const ShardArmResult baseline = RunShardArm(1, endpoints);
  const ShardArmResult sharded = shards == 1 ? baseline : RunShardArm(shards, endpoints);
  const double scaling = sharded.msgs_per_sec / baseline.msgs_per_sec;
  const double efficiency = scaling / static_cast<double>(shards);

  std::uint64_t sharded_total = 0;
  for (const std::uint64_t msgs : sharded.shard_msgs) {
    sharded_total += msgs;
  }
  TextTable table({"shard", "messages", "visits/msg", "msgs/s (share)"});
  for (std::uint32_t s = 0; s < shards; ++s) {
    const double share = sharded.msgs_per_sec *
                         static_cast<double>(sharded.shard_msgs[s]) /
                         static_cast<double>(sharded_total);
    table.AddRow({std::to_string(s), std::to_string(sharded.shard_msgs[s]),
                  TextTable::Num(sharded.visits_per_msg[s]), TextTable::Num(share)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("1-shard baseline: %.0f msgs/s\n", baseline.msgs_per_sec);
  std::printf("%u-shard aggregate: %.0f msgs/s (%.2fx, efficiency %.2f)\n", shards,
              sharded.msgs_per_sec, scaling, efficiency);

  // CI gate: 2 planners must beat 1 by at least 1.5x on the same buffer
  // (the acceptance floor; 4 shards on 4 cores should reach ~3x).
  if (shards >= 2 && scaling < 1.5) {
    std::printf("[MISMATCH] sharded scaling %.2fx at %u shards (floor 1.5x)\n", scaling,
                shards);
  } else {
    std::printf("[OK] sharded scaling %.2fx at %u shards\n", scaling, shards);
  }

  report.AddConfig("shards", static_cast<double>(shards));
  report.AddConfig("endpoints", static_cast<double>(endpoints));
  report.AddConfig("active_senders", static_cast<double>(kShardSendersTotal));
  report.AddMetric("baseline_msgs_per_sec", baseline.msgs_per_sec, "msgs/s");
  report.AddMetric("aggregate_msgs_per_sec", sharded.msgs_per_sec, "msgs/s");
  report.AddMetric("scaling", scaling, "x");
  report.AddMetric("scaling_efficiency", efficiency, "ratio");
  for (std::uint32_t s = 0; s < shards; ++s) {
    char name[64];
    std::snprintf(name, sizeof(name), "shard_visits_per_msg_s%u", s);
    report.AddMetric(name, sharded.visits_per_msg[s], "endpoints");
    std::snprintf(name, sizeof(name), "shard_messages_s%u", s);
    report.AddMetric(name, static_cast<double>(sharded.shard_msgs[s]), "msgs");
  }
}

}  // namespace
}  // namespace flipc::bench

int main(int argc, char** argv) {
  std::uint32_t shards = 0;
  // Largest "64k-class" table that both fits the 16-bit endpoint index the
  // packed Address format allows (max_endpoints <= 0xffff) and divides
  // evenly into 2/4/8/16 shards.
  std::uint32_t endpoints = 65280;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<std::uint32_t>(std::atoi(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--endpoints=", 12) == 0) {
      endpoints = static_cast<std::uint32_t>(std::atoi(argv[i] + 12));
    }
  }
  flipc::bench::JsonReport report(argc, argv, "endpoint_scaling");
  if (shards > 0) {
    flipc::bench::RunSharded(report, shards, endpoints);
  } else {
    flipc::bench::Run(report);
  }
  return 0;
}
