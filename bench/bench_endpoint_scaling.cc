// Endpoint scaling: engine scheduling effort vs CONFIGURED endpoint count.
//
// The paper's engine "examines endpoints in the communication buffer for
// messages to send", so its per-message scheduling work grows with the
// number of endpoint slots even when only a handful are active. The
// doorbell ring makes scheduling O(active): with 4 active senders the
// per-message effort must stay flat from 4 to 4096 configured endpoints,
// while the legacy full scan grows linearly.
//
// Two deterministic readings per configuration, plus a wall-clock one:
//   * endpoints_visited / message — the engine's own scan-effort counter;
//     exact and noise-free, this is the CI gate ([OK]/[MISMATCH]);
//   * host ns / message — actual CPU cost of the sender engine's event
//     loop (the simulated latency cannot show the effect: the platform
//     model charges a fixed send overhead regardless of table size).
//
// The doorbell arm disables the periodic backstop sweep: every release in
// this harness rings its doorbell, so the periodic sweep would only add a
// configurable amortized n/interval term that is not the hint path under
// test (lost-doorbell recovery has its own tests and model-checker
// schedules).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/engine/messaging_engine.h"
#include "src/shm/comm_buffer.h"
#include "src/simnet/des.h"
#include "src/simnet/fabric.h"
#include "src/simnet/link_model.h"

namespace flipc::bench {
namespace {

constexpr std::uint32_t kActiveSenders = 4;
constexpr std::uint32_t kRoundsMax = 4096;
constexpr double kMinTimedSeconds = 0.05;
constexpr int kRepeats = 3;

struct ArmResult {
  double host_ns_per_msg = 0;      // min over repeats
  double visited_per_msg = 0;      // deterministic scan effort
  double doorbells_per_msg = 0;
  double sweeps = 0;
};

// One hand-wired sender node driving 4 active send endpoints out of
// `configured` slots, messages draining into a fixed-size receiver node.
ArmResult RunArm(std::uint32_t configured, bool doorbell) {
  ArmResult best;

  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    simnet::Simulator sim;
    simnet::SimFabric fabric(sim, std::make_unique<simnet::MeshLinkModel>(), 2);

    shm::CommBufferConfig tx_config;
    tx_config.message_size = 128;
    tx_config.buffer_count = 64;
    tx_config.max_endpoints = configured;
    auto tx_comm = shm::CommBuffer::Create(tx_config);
    shm::CommBufferConfig rx_config;
    rx_config.message_size = 128;
    rx_config.buffer_count = 64;
    rx_config.max_endpoints = 4;
    auto rx_comm = shm::CommBuffer::Create(rx_config);
    if (!tx_comm.ok() || !rx_comm.ok()) {
      std::fprintf(stderr, "FATAL: comm buffer creation failed at n=%u\n", configured);
      std::abort();
    }

    engine::PlatformModel model;
    engine::EngineOptions options;
    options.doorbell_scheduling = doorbell;
    options.backstop_interval = doorbell ? 0 : 64;  // see header comment
    engine::MessagingEngine tx_engine(**tx_comm, fabric.wire(0), options, &model);
    engine::MessagingEngine rx_engine(**rx_comm, fabric.wire(1), options, &model);

    std::uint32_t senders[kActiveSenders];
    waitfree::BufferIndex buffers[kActiveSenders];
    for (std::uint32_t s = 0; s < kActiveSenders; ++s) {
      shm::CommBuffer::EndpointParams params;
      params.type = shm::EndpointType::kSend;
      params.queue_capacity = 8;
      auto index = (*tx_comm)->AllocateEndpoint(params);
      auto buffer = (*tx_comm)->AllocateBuffer();
      if (!index.ok() || !buffer.ok()) {
        std::fprintf(stderr, "FATAL: endpoint/buffer allocation failed\n");
        std::abort();
      }
      senders[s] = *index;
      buffers[s] = *buffer;
    }
    shm::CommBuffer::EndpointParams rx_params;
    rx_params.type = shm::EndpointType::kReceive;
    const std::uint32_t rx = *(*rx_comm)->AllocateEndpoint(rx_params);
    const Address dst(1, static_cast<std::uint16_t>(rx));

    const std::uint64_t visited_start = tx_engine.stats().endpoints_visited;
    double timed_ns = 0;
    std::uint64_t messages = 0;
    std::uint32_t rounds = 0;

    while (rounds < kRoundsMax && (timed_ns < kMinTimedSeconds * 1e9 || rounds < 32)) {
      // Application phase (untimed): reclaim last round's buffers, release
      // the next message on each sender, ring the doorbell like the
      // application library does.
      for (std::uint32_t s = 0; s < kActiveSenders; ++s) {
        if (rounds > 0 && (*tx_comm)->queue(senders[s]).Acquire() != buffers[s]) {
          std::fprintf(stderr, "FATAL: buffer did not complete\n");
          std::abort();
        }
        shm::MsgView view = (*tx_comm)->msg(buffers[s]);
        std::memcpy(view.payload, "scaling", 8);
        view.header->set_peer_address(dst);
        view.header->state.Store(waitfree::MsgState::kReady);
        (*tx_comm)->queue(senders[s]).Release(buffers[s]);
        if (doorbell) {
          (*tx_comm)->doorbell_ring().Ring(senders[s]);
        }
      }

      // Timed phase: only the sender engine's scheduling + transmit work.
      const std::uint64_t target = tx_engine.stats().messages_sent + kActiveSenders;
      const auto start = std::chrono::steady_clock::now();
      while (tx_engine.stats().messages_sent < target) {
        tx_engine.Step();
      }
      const auto stop = std::chrono::steady_clock::now();
      timed_ns += std::chrono::duration<double, std::nano>(stop - start).count();
      messages += kActiveSenders;
      ++rounds;

      // Drain the fabric into the receiver (untimed; fixed-size node). No
      // buffers are posted — the optimistic protocol discards, which keeps
      // the receiver cost constant across configurations.
      sim.Run();
      while (rx_engine.Step()) {
      }
    }

    const double host = timed_ns / static_cast<double>(messages);
    if (repeat == 0 || host < best.host_ns_per_msg) {
      best.host_ns_per_msg = host;
    }
    best.visited_per_msg =
        static_cast<double>(tx_engine.stats().endpoints_visited - visited_start) /
        static_cast<double>(messages);
    best.doorbells_per_msg = static_cast<double>(tx_engine.stats().doorbells_consumed) /
                             static_cast<double>(messages);
    best.sweeps = static_cast<double>(tx_engine.stats().backstop_sweeps);
  }
  return best;
}

void Run(JsonReport& report) {
  PrintHeader("endpoint scaling: bench_endpoint_scaling",
              "the engine's endpoint-scan cost model (doorbell ring vs full scan)",
              "O(active) scheduling: per-message effort flat in CONFIGURED endpoints");

  const std::uint32_t configs[] = {4, 16, 64, 256, 1024, 4096};

  TextTable table({"configured", "active", "doorbell ns/msg", "doorbell visits/msg",
                   "legacy ns/msg", "legacy visits/msg"});
  std::vector<ArmResult> doorbell_arm;

  for (const std::uint32_t n : configs) {
    const ArmResult ring = RunArm(n, /*doorbell=*/true);
    const ArmResult scan = RunArm(n, /*doorbell=*/false);
    doorbell_arm.push_back(ring);

    table.AddRow({std::to_string(n), std::to_string(kActiveSenders),
                  TextTable::Num(ring.host_ns_per_msg), TextTable::Num(ring.visited_per_msg),
                  TextTable::Num(scan.host_ns_per_msg), TextTable::Num(scan.visited_per_msg)});

    char name[64];
    std::snprintf(name, sizeof(name), "doorbell_ns_per_msg_n%u", n);
    report.AddMetric(name, ring.host_ns_per_msg, "ns");
    std::snprintf(name, sizeof(name), "doorbell_visits_per_msg_n%u", n);
    report.AddMetric(name, ring.visited_per_msg, "endpoints");
    std::snprintf(name, sizeof(name), "legacy_ns_per_msg_n%u", n);
    report.AddMetric(name, scan.host_ns_per_msg, "ns");
    std::snprintf(name, sizeof(name), "legacy_visits_per_msg_n%u", n);
    report.AddMetric(name, scan.visited_per_msg, "endpoints");
  }
  std::printf("%s\n", table.ToString().c_str());

  // Flatness gate on the deterministic scan-effort counter: with 4 active
  // senders the doorbell arm's per-message effort must be independent of
  // the configured endpoint count (within 10%). Host ns/msg is reported
  // above but not gated — wall-clock noise is not reproducible in CI.
  double min_v = doorbell_arm.front().visited_per_msg;
  double max_v = min_v;
  for (const ArmResult& r : doorbell_arm) {
    min_v = r.visited_per_msg < min_v ? r.visited_per_msg : min_v;
    max_v = r.visited_per_msg > max_v ? r.visited_per_msg : max_v;
  }
  const double spread = max_v / min_v;
  if (spread <= 1.10) {
    std::printf("[OK] doorbell scheduling flat: visits/msg spread %.3fx over %ux "
                "configured-endpoint range\n",
                spread, configs[sizeof(configs) / sizeof(configs[0]) - 1] / configs[0]);
  } else {
    std::printf("[MISMATCH] doorbell scheduling not flat: visits/msg spread %.3fx "
                "(max allowed 1.10x)\n", spread);
  }
  report.AddConfig("active_senders", static_cast<double>(kActiveSenders));
  report.AddConfig("repeats", static_cast<double>(kRepeats));
  report.AddMetric("doorbell_visits_spread", spread, "ratio");
}

}  // namespace
}  // namespace flipc::bench

int main(int argc, char** argv) {
  flipc::bench::JsonReport report(argc, argv, "endpoint_scaling");
  flipc::bench::Run(report);
  return 0;
}
