// S1 (supplementary) — protocol coexistence on the message coprocessor.
//
// Paper, Implementation: "This protocol coexists with other protocols in
// the Paragon's protocol framework on the message coprocessor, allowing
// multiple protocols to be used simultaneously. For instance, our
// implementation of FLIPC on the OSF/1 AD operating system requires both
// the FLIPC and OSF/1 AD protocols to operate simultaneously."
//
// The flip side of a shared non-preemptible event loop is interference:
// every foreign work unit delays FLIPC work behind it. This bench loads
// the engines with a stand-in kernel-IPC protocol at increasing rates and
// measures the FLIPC ping-pong latency — quantifying the coexistence cost
// the paper accepts by design.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "src/engine/messaging_engine.h"

namespace flipc::bench {
namespace {

// Stand-in for the OSF/1 AD kernel IPC protocol: consumes a fixed slice of
// coprocessor time per message and echoes nothing.
class KernelIpcHandler final : public engine::ProtocolHandler {
 public:
  explicit KernelIpcHandler(DurationNs cost_per_packet) : cost_(cost_per_packet) {}

  void HandlePacket(simnet::Packet, simnet::CostAccumulator&) override { ++handled_; }
  bool PollWork(simnet::CostAccumulator&) override { return false; }
  DurationNs PlanCost(const simnet::Packet&) const override { return cost_; }

  std::uint64_t handled() const { return handled_; }

 private:
  DurationNs cost_;
  std::uint64_t handled_ = 0;
};

struct Outcome {
  double flipc_mean_us = 0;
  double flipc_max_us = 0;
  std::uint64_t ipc_handled = 0;
};

Outcome RunWithIpcLoad(DurationNs ipc_interval_ns) {
  auto cluster = MakeParagonPair(128);
  KernelIpcHandler handler_a(8'000);  // 8 us of kernel work per IPC packet
  KernelIpcHandler handler_b(8'000);
  if (!cluster->engine(0).RegisterProtocol(simnet::kProtocolKernelIpc, &handler_a).ok() ||
      !cluster->engine(1).RegisterProtocol(simnet::kProtocolKernelIpc, &handler_b).ok()) {
    std::abort();
  }

  // Background kernel-IPC traffic in both directions at the given rate.
  // The injection chain owns itself (shared_ptr) because events outlive
  // this scope.
  if (ipc_interval_ns > 0) {
    auto inject = std::make_shared<std::function<void()>>();
    SimCluster* c = cluster.get();
    *inject = [c, ipc_interval_ns, inject] {
      if (c->sim().Now() >= 50'000'000) {
        return;
      }
      for (NodeId src : {NodeId{0}, NodeId{1}}) {
        simnet::Packet packet;
        packet.dst_node = 1 - src;
        packet.protocol = simnet::kProtocolKernelIpc;
        packet.payload.resize(256);
        (void)c->fabric().wire(src).Send(std::move(packet));
      }
      c->sim().ScheduleAfter(ipc_interval_ns, *inject);
    };
    cluster->sim().ScheduleAt(1'000, *inject);
  }

  sim::PingPongConfig config;
  config.exchanges = 300;
  const sim::PingPongResult result = MustPingPong(*cluster, config);

  Outcome out;
  out.flipc_mean_us = result.one_way_ns.mean() / 1000.0;
  out.flipc_max_us = result.one_way_ns.max() / 1000.0;
  out.ipc_handled = handler_a.handled() + handler_b.handled();
  return out;
}

void Run() {
  PrintHeader("S1: bench_protocol_coexistence",
              "Implementation section (FLIPC + OSF/1 AD protocols on one coprocessor)",
              "foreign protocol work shares the non-preemptible engine loop; FLIPC "
              "latency degrades gracefully with kernel-IPC load, never deadlocks");

  TextTable table({"kernel-IPC load", "IPC pkts handled", "FLIPC mean us", "FLIPC max us"});
  const Outcome idle = RunWithIpcLoad(0);
  table.AddRow({"none", "0", TextTable::Num(idle.flipc_mean_us),
                TextTable::Num(idle.flipc_max_us)});
  Outcome heavy{};
  for (const DurationNs interval : {200'000, 50'000, 20'000}) {
    const Outcome out = RunWithIpcLoad(interval);
    heavy = out;
    char label[32];
    std::snprintf(label, sizeof(label), "1 / %lld us", static_cast<long long>(interval / 1000));
    table.AddRow({label, std::to_string(out.ipc_handled),
                  TextTable::Num(out.flipc_mean_us), TextTable::Num(out.flipc_max_us)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape checks: FLIPC stays functional under the heaviest IPC load %s; the\n"
              "per-unit bound on interference holds (max <= mean + one 8 us IPC unit +\n"
              "dispatch, measured %.2f vs idle %.2f us) %s.\n\n",
              heavy.ipc_handled > 0 ? "[OK]" : "[MISMATCH]", heavy.flipc_max_us,
              idle.flipc_mean_us,
              heavy.flipc_max_us <= idle.flipc_mean_us + 2 * 8.5 ? "[OK]" : "[MISMATCH]");
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
