// E6 — interconnect bandwidth utilisation and the large-message crossover.
//
// Paper: FLIPC's 6.25 ns/byte slope means growing the message uses the
// interconnect at >150 MB/s (1/6.25 ns = 160 MB/s marginal) on 200 MB/s
// hardware. NX achieves >140 MB/s and SUNMOS approaches 160 MB/s — but
// only for large messages; FLIPC has no bulk transport ("a bulk transfer
// mechanism needs to be added to FLIPC to obtain a complete system"), so a
// FLIPC domain configured for medium messages streams large transfers as
// many fixed-size messages and loses to the bulk protocols at size.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/baseline_messenger.h"

namespace flipc::bench {
namespace {

// Streams `total_bytes` through FLIPC fixed-size messages; returns MB/s.
double FlipcStreamMBps(std::uint32_t message_size, std::size_t total_bytes) {
  auto cluster = MakeParagonPair(message_size);
  const std::uint32_t payload = message_size - 8;
  sim::StreamConfig config;
  config.total_messages = (total_bytes + payload - 1) / payload;
  config.pipeline_depth = 16;
  return MustStream(*cluster, config).ThroughputMBps();
}

template <typename Messenger>
double BaselineMBps(std::size_t total_bytes) {
  simnet::Simulator sim;
  Messenger messenger(sim, 2, std::make_unique<simnet::MeshLinkModel>());
  TimeNs done_at = -1;
  messenger.Send(0, 1, total_bytes, [&] { done_at = sim.Now(); });
  sim.Run();
  return static_cast<double>(total_bytes) / (1024.0 * 1024.0) /
         (static_cast<double>(done_at) / 1e9);
}

void Run() {
  PrintHeader("E6: bench_bandwidth",
              "bandwidth discussion (Performance + Related Work)",
              "FLIPC marginal ~160MB/s; NX >140MB/s and SUNMOS ~160MB/s for large "
              "messages; FLIPC-for-medium loses the bulk regime (no bulk transport)");

  TextTable table({"transfer", "FLIPC-128B MB/s", "FLIPC-1KB MB/s", "NX MB/s",
                   "SUNMOS MB/s", "PAM MB/s"});
  const std::vector<std::size_t> sizes = {4096,       16 * 1024,  64 * 1024,
                                          256 * 1024, 1024 * 1024, 4 * 1024 * 1024};
  std::size_t crossover = 0;
  for (const std::size_t bytes : sizes) {
    const double flipc128 = FlipcStreamMBps(128, bytes);
    const double flipc1k = FlipcStreamMBps(1024, bytes);
    const double nx = BaselineMBps<baselines::NxMessenger>(bytes);
    const double sunmos = BaselineMBps<baselines::SunmosMessenger>(bytes);
    const double pam = BaselineMBps<baselines::PamMessenger>(bytes);
    if (crossover == 0 && nx > flipc128) {
      crossover = bytes;
    }
    char label[32];
    if (bytes >= 1024 * 1024) {
      std::snprintf(label, sizeof(label), "%zu MB", bytes / (1024 * 1024));
    } else {
      std::snprintf(label, sizeof(label), "%zu KB", bytes / 1024);
    }
    table.AddRow({label, TextTable::Num(flipc128, 1), TextTable::Num(flipc1k, 1),
                  TextTable::Num(nx, 1), TextTable::Num(sunmos, 1),
                  TextTable::Num(pam, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape checks:\n");
  std::printf("  - medium-message FLIPC (128 B) is overtaken by NX's bulk protocol from "
              "~%zu KB up\n", crossover / 1024);
  std::printf("  - SUNMOS approaches 160 MB/s at 4 MB (paper: ~160 MB/s)\n");
  std::printf("  - a 1 KB-message FLIPC domain sustains >100 MB/s, showing the 160 MB/s\n"
              "    marginal rate is real but per-message engine overheads cap medium\n"
              "    configurations — exactly why the paper calls FLIPC complementary to\n"
              "    the bulk-optimized systems.\n\n");
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
