// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench prints a header naming the paper artifact it regenerates and
// a table with the paper's value next to the measured one; absolute
// agreement comes from the calibrated platform model, but the *shape*
// assertions (who wins, crossovers) emerge from the executed protocols.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/table.h"
#include "src/flipc/flipc.h"
#include "src/flipc/sim_workloads.h"

namespace flipc::bench {

// Machine-readable results: every benchmark accepts --json[=<path>] and, when
// given, writes its headline metrics as a small JSON document (default path
// BENCH_<name>.json in the working directory). CI's perf-smoke job parses
// these instead of scraping the human tables.
class JsonReport {
 public:
  // `name` is the benchmark's short name (e.g. "fig4_latency").
  JsonReport(int argc, char** argv, const char* name) : name_(name) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        path_ = "BENCH_" + name_ + ".json";
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        path_ = argv[i] + 7;
      }
    }
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() { Write(); }

  bool enabled() const { return !path_.empty(); }

  void AddConfig(const char* key, const std::string& value) {
    config_.emplace_back(key, "\"" + value + "\"");
  }
  void AddConfig(const char* key, double value) {
    config_.emplace_back(key, Num(value));
  }

  void AddMetric(const char* metric, double value, const char* units) {
    metrics_.push_back({metric, value, units});
  }

  void Write() {
    if (path_.empty() || written_) {
      return;
    }
    written_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "WARNING: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"config\": {", name_.c_str());
    for (std::size_t i = 0; i < config_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %s", i == 0 ? "" : ",", config_[i].first.c_str(),
                   config_[i].second.c_str());
    }
    std::fprintf(f, "\n  },\n  \"metrics\": [");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\n    {\"metric\": \"%s\", \"value\": %s, \"units\": \"%s\"}",
                   i == 0 ? "" : ",", metrics_[i].metric.c_str(),
                   Num(metrics_[i].value).c_str(), metrics_[i].units.c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("JSON results written to %s\n", path_.c_str());
  }

 private:
  struct Metric {
    std::string metric;
    double value;
    std::string units;
  };

  static std::string Num(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return buffer;
  }

  std::string name_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Metric> metrics_;
  bool written_ = false;
};

inline void PrintHeader(const char* experiment, const char* paper_artifact,
                        const char* expectation) {
  std::printf("==============================================================================\n");
  std::printf("%s — reproduces %s\n", experiment, paper_artifact);
  std::printf("Paper: %s\n", expectation);
  std::printf("==============================================================================\n");
}

inline std::unique_ptr<SimCluster> MakeParagonPair(
    std::uint32_t message_size, engine::EngineOptions engine_options = {},
    SimCluster::EngineKind kind = SimCluster::EngineKind::kNative,
    std::unique_ptr<simnet::LinkModel> link = nullptr) {
  SimCluster::Options options;
  options.node_count = 2;
  options.comm.message_size = message_size;
  options.comm.buffer_count = 256;
  options.comm.max_endpoints = 16;
  options.engine = engine_options;
  options.engine_kind = kind;
  options.link_model = std::move(link);
  auto cluster = SimCluster::Create(std::move(options));
  if (!cluster.ok()) {
    std::fprintf(stderr, "FATAL: cluster creation failed: %s\n",
                 cluster.status().ToString().c_str());
    std::abort();
  }
  return std::move(cluster).value();
}

inline sim::PingPongResult MustPingPong(SimCluster& cluster,
                                        const sim::PingPongConfig& config) {
  auto result = sim::RunPingPong(cluster, config);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: ping-pong failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline sim::StreamResult MustStream(SimCluster& cluster, const sim::StreamConfig& config) {
  auto result = sim::RunStream(cluster, config);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: stream failed: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace flipc::bench

#endif  // BENCH_BENCH_COMMON_H_
