// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench prints a header naming the paper artifact it regenerates and
// a table with the paper's value next to the measured one; absolute
// agreement comes from the calibrated platform model, but the *shape*
// assertions (who wins, crossovers) emerge from the executed protocols.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/base/table.h"
#include "src/flipc/flipc.h"
#include "src/flipc/sim_workloads.h"

namespace flipc::bench {

inline void PrintHeader(const char* experiment, const char* paper_artifact,
                        const char* expectation) {
  std::printf("==============================================================================\n");
  std::printf("%s — reproduces %s\n", experiment, paper_artifact);
  std::printf("Paper: %s\n", expectation);
  std::printf("==============================================================================\n");
}

inline std::unique_ptr<SimCluster> MakeParagonPair(
    std::uint32_t message_size, engine::EngineOptions engine_options = {},
    SimCluster::EngineKind kind = SimCluster::EngineKind::kNative,
    std::unique_ptr<simnet::LinkModel> link = nullptr) {
  SimCluster::Options options;
  options.node_count = 2;
  options.comm.message_size = message_size;
  options.comm.buffer_count = 256;
  options.comm.max_endpoints = 16;
  options.engine = engine_options;
  options.engine_kind = kind;
  options.link_model = std::move(link);
  auto cluster = SimCluster::Create(std::move(options));
  if (!cluster.ok()) {
    std::fprintf(stderr, "FATAL: cluster creation failed: %s\n",
                 cluster.status().ToString().c_str());
    std::abort();
  }
  return std::move(cluster).value();
}

inline sim::PingPongResult MustPingPong(SimCluster& cluster,
                                        const sim::PingPongConfig& config) {
  auto result = sim::RunPingPong(cluster, config);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: ping-pong failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline sim::StreamResult MustStream(SimCluster& cluster, const sim::StreamConfig& config) {
  auto result = sim::RunStream(cluster, config);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: stream failed: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace flipc::bench

#endif  // BENCH_BENCH_COMMON_H_
