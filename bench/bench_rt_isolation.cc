// E10 — real-time traffic separation (Introduction + Future Work).
//
// Paper: "the system must not only process a message announcing detection
// of an incoming missile in preference to a message indicating that it is
// time for preventative maintenance, but must also ensure that the latter
// message does not consume resources required to handle the former."
// FLIPC's answer is structural: per-endpoint buffer resources separate the
// classes, and the future-work priority extension makes the engine serve
// high-priority send endpoints first.
//
// Scenario: a sensor node emits a burst of background telemetry from eight
// low-priority endpoints every 400 us, plus one critical message per burst
// period from a high-priority endpoint, timed to land mid-burst. The
// tracker node drains periodically. Three configurations:
//   1. shared   — critical messages target the same receive endpoint (and
//                 buffers) as the telemetry: bursts exhaust the buffers and
//                 the optimistic transport discards critical messages;
//   2. separate — own receive endpoint and buffers: zero critical drops;
//   3. priority — separate + priority-scan engine: the critical send jumps
//                 the sender-side backlog, cutting delivery latency (the
//                 residual latency is inbound FIFO at the receiving
//                 engine, which no sender-side policy can remove).
//
// QoS planner extension (DESIGN.md §15): a real-time endpoint in a
// high-weight service class with a per-message deadline, measured alone and
// under a saturating bulk flood from a low-weight class. The planner must
// hold the RT stream's delivery latency within 2x of its isolated value and
// record zero deadline misses, while the bulk class keeps making progress
// (weighted sharing, not starvation).
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "src/base/stats.h"

namespace flipc::bench {
namespace {

constexpr TimeNs kRunFor = 40'000'000;       // 40 ms
constexpr DurationNs kBurstPeriod = 400'000; // background burst every 400 us
constexpr std::uint32_t kBgEndpoints = 8;
constexpr std::uint32_t kBurstPerEndpoint = 8;
constexpr DurationNs kDrainInterval = 250'000;
constexpr std::uint32_t kCriticalMagic = 0xC417ACA1;

struct Outcome {
  RunningStats critical_latency_ns;  // engine delivery latency (separate only)
  std::uint64_t critical_sent = 0;
  std::uint64_t critical_delivered = 0;
  std::uint64_t background_sent = 0;
  std::uint64_t background_delivered = 0;

  std::uint64_t critical_lost() const { return critical_sent - critical_delivered; }
};

Outcome RunScenario(bool shared_endpoint, bool priority_scan) {
  engine::EngineOptions engine_options;
  engine_options.priority_scan = priority_scan;
  SimCluster::Options cluster_options;
  cluster_options.node_count = 2;
  cluster_options.comm.message_size = 128;
  cluster_options.comm.buffer_count = 512;
  cluster_options.comm.max_endpoints = 32;
  cluster_options.engine = engine_options;
  auto cluster_or = SimCluster::Create(std::move(cluster_options));
  if (!cluster_or.ok()) {
    std::abort();
  }
  SimCluster& cluster = **cluster_or;
  Domain& sensor = cluster.domain(0);
  Domain& tracker = cluster.domain(1);
  Outcome out;

  // Background: eight low-priority send endpoints into one telemetry sink.
  std::vector<Endpoint> bg_tx;
  for (std::uint32_t i = 0; i < kBgEndpoints; ++i) {
    auto endpoint = sensor.CreateEndpoint(
        {.type = shm::EndpointType::kSend, .queue_depth = 16, .priority = 1});
    if (!endpoint.ok()) {
      std::abort();
    }
    bg_tx.push_back(*endpoint);
  }
  auto bg_rx =
      tracker.CreateEndpoint({.type = shm::EndpointType::kReceive, .queue_depth = 64});
  auto crit_tx = sensor.CreateEndpoint(
      {.type = shm::EndpointType::kSend, .queue_depth = 4, .priority = 9});
  auto crit_rx = shared_endpoint
                     ? bg_rx
                     : tracker.CreateEndpoint(
                           {.type = shm::EndpointType::kReceive, .queue_depth = 8});
  if (!bg_rx.ok() || !crit_tx.ok() || !crit_rx.ok()) {
    std::abort();
  }

  // Resource provisioning: telemetry gets 16 buffers — well under one full
  // 64-message burst, so bursts overrun it by design (telemetry tolerates
  // loss). The critical class gets its own 4 only in the separate
  // configurations.
  for (int i = 0; i < 16; ++i) {
    auto buffer = tracker.AllocateBuffer();
    (void)bg_rx->PostBuffer(*buffer);
  }
  if (!shared_endpoint) {
    for (int i = 0; i < 4; ++i) {
      auto buffer = tracker.AllocateBuffer();
      (void)crit_rx->PostBuffer(*buffer);
    }
  }

  // Background burst: each endpoint releases kBurstPerEndpoint messages
  // back-to-back every period.
  std::function<void()> burst = [&] {
    if (cluster.sim().Now() >= kRunFor) {
      return;
    }
    for (Endpoint& tx : bg_tx) {
      for (std::uint32_t i = 0; i < kBurstPerEndpoint; ++i) {
        auto buffer = tx.ReclaimUnlocked();
        Result<MessageBuffer> msg = buffer.ok() ? buffer : sensor.AllocateBuffer();
        if (!msg.ok()) {
          break;
        }
        *msg->As<std::uint32_t>() = 0;
        if (tx.SendUnlocked(*msg, bg_rx->address()).ok()) {
          ++out.background_sent;
        }
      }
    }
    cluster.sim().ScheduleAfter(kBurstPeriod, burst);
  };

  // Critical producer: one tagged message per period, mid-burst.
  TimeNs critical_sent_at = 0;
  std::function<void()> send_critical = [&] {
    if (cluster.sim().Now() >= kRunFor) {
      return;
    }
    auto buffer = crit_tx->ReclaimUnlocked();
    Result<MessageBuffer> msg = buffer.ok() ? buffer : sensor.AllocateBuffer();
    if (msg.ok()) {
      *msg->As<std::uint32_t>() = kCriticalMagic;
      critical_sent_at = cluster.sim().Now();
      if (crit_tx->SendUnlocked(*msg, crit_rx->address()).ok()) {
        ++out.critical_sent;
      }
    }
    cluster.sim().ScheduleAfter(kBurstPeriod, send_critical);
  };

  // Engine-level delivery latency is attributable only with a dedicated
  // critical endpoint.
  if (!shared_endpoint) {
    cluster.engine(1).SetReceiveHook([&](std::uint32_t endpoint, bool delivered) {
      if (endpoint == crit_rx->index() && delivered && critical_sent_at != 0) {
        out.critical_latency_ns.Add(
            static_cast<double>(cluster.sim().Now() - critical_sent_at));
        critical_sent_at = 0;
      }
    });
  }

  // Tracker application: periodic drain of whatever endpoints exist,
  // classifying messages by their payload tag.
  std::function<void()> drain = [&] {
    std::vector<Endpoint*> endpoints = {&*bg_rx};
    if (!shared_endpoint) {
      endpoints.push_back(&*crit_rx);
    }
    for (Endpoint* rx : endpoints) {
      for (;;) {
        auto message = rx->Receive();
        if (!message.ok()) {
          break;
        }
        if (*message->As<std::uint32_t>() == kCriticalMagic) {
          ++out.critical_delivered;
        } else {
          ++out.background_delivered;
        }
        (void)rx->PostBuffer(*message);
      }
    }
    if (cluster.sim().Now() < kRunFor + 2'000'000) {
      cluster.sim().ScheduleAfter(kDrainInterval, drain);
    }
  };

  cluster.sim().ScheduleAt(0, burst);
  cluster.sim().ScheduleAt(kBurstPeriod / 4, send_critical);  // mid-burst
  cluster.sim().ScheduleAt(kDrainInterval, drain);
  cluster.sim().RunUntil(kRunFor + 3'000'000);
  return out;
}

// ---- QoS planner scenario (DESIGN.md §15) ------------------------------

constexpr DurationNs kRtPeriod = 200'000;      // one RT message per 200 us
constexpr std::uint32_t kRtClass = 1;          // RT service class (weight 8)
constexpr std::uint32_t kRtDeadlineNs = 300'000;

struct QosOutcome {
  RunningStats rt_latency_ns;
  std::uint64_t rt_sent = 0;
  std::uint64_t rt_delivered = 0;
  std::uint64_t rt_deadline_misses = 0;
  std::uint64_t bulk_delivered = 0;
};

// One real-time endpoint (class 1, weight 8, 300 us deadline) against an
// optional saturating bulk flood in class 0 (weight 1). Three nodes: the
// bulk flood targets node 2 while the RT stream targets node 1, so the
// contended resource is exactly the one the QoS planner manages — the
// shared sending engine — and not the receiving engine's inbound FIFO
// (which the legacy scenarios above already show no sender-side policy can
// remove). A short transmit batch keeps the planner's preemption points
// frequent, so an RT arrival waits at most one small bulk assembly before
// the deficit credits hand the engine to the RT class.
QosOutcome RunQosScenario(bool flood) {
  engine::EngineOptions engine_options;
  engine_options.transmit_batch = 2;
  engine_options.qos_weights = {1, 8, 1, 1};
  SimCluster::Options cluster_options;
  cluster_options.node_count = 3;
  cluster_options.comm.message_size = 128;
  cluster_options.comm.buffer_count = 512;
  cluster_options.comm.max_endpoints = 32;
  cluster_options.engine = engine_options;
  auto cluster_or = SimCluster::Create(std::move(cluster_options));
  if (!cluster_or.ok()) {
    std::abort();
  }
  SimCluster& cluster = **cluster_or;
  Domain& sensor = cluster.domain(0);
  Domain& tracker = cluster.domain(1);
  Domain& bulk_sink = cluster.domain(2);
  QosOutcome out;

  std::vector<Endpoint> bulk_tx;
  if (flood) {
    for (std::uint32_t i = 0; i < kBgEndpoints; ++i) {
      auto endpoint = sensor.CreateEndpoint(
          {.type = shm::EndpointType::kSend, .queue_depth = 16, .qos_class = 0});
      if (!endpoint.ok()) {
        std::abort();
      }
      bulk_tx.push_back(*endpoint);
    }
  }
  auto bulk_rx = bulk_sink.CreateEndpoint(
      {.type = shm::EndpointType::kReceive, .queue_depth = 64});
  auto rt_tx = sensor.CreateEndpoint({.type = shm::EndpointType::kSend,
                                      .queue_depth = 4,
                                      .qos_class = kRtClass,
                                      .deadline_ns = kRtDeadlineNs});
  auto rt_rx =
      tracker.CreateEndpoint({.type = shm::EndpointType::kReceive, .queue_depth = 8});
  if (!bulk_rx.ok() || !rt_tx.ok() || !rt_rx.ok()) {
    std::abort();
  }
  for (int i = 0; i < 16; ++i) {
    auto buffer = bulk_sink.AllocateBuffer();
    (void)bulk_rx->PostBuffer(*buffer);
  }
  for (int i = 0; i < 4; ++i) {
    auto buffer = tracker.AllocateBuffer();
    (void)rt_rx->PostBuffer(*buffer);
  }

  std::function<void()> burst = [&] {
    if (cluster.sim().Now() >= kRunFor) {
      return;
    }
    for (Endpoint& tx : bulk_tx) {
      for (std::uint32_t i = 0; i < kBurstPerEndpoint; ++i) {
        auto buffer = tx.ReclaimUnlocked();
        Result<MessageBuffer> msg = buffer.ok() ? buffer : sensor.AllocateBuffer();
        if (!msg.ok()) {
          break;
        }
        *msg->As<std::uint32_t>() = 0;
        (void)tx.SendUnlocked(*msg, bulk_rx->address());
      }
    }
    cluster.sim().ScheduleAfter(kBurstPeriod, burst);
  };

  TimeNs rt_sent_at = 0;
  std::function<void()> send_rt = [&] {
    if (cluster.sim().Now() >= kRunFor) {
      return;
    }
    auto buffer = rt_tx->ReclaimUnlocked();
    Result<MessageBuffer> msg = buffer.ok() ? buffer : sensor.AllocateBuffer();
    if (msg.ok()) {
      *msg->As<std::uint32_t>() = kCriticalMagic;
      rt_sent_at = cluster.sim().Now();
      if (rt_tx->SendUnlocked(*msg, rt_rx->address()).ok()) {
        ++out.rt_sent;
      }
    }
    cluster.sim().ScheduleAfter(kRtPeriod, send_rt);
  };

  cluster.engine(1).SetReceiveHook([&](std::uint32_t endpoint, bool delivered) {
    if (endpoint == rt_rx->index() && delivered && rt_sent_at != 0) {
      out.rt_latency_ns.Add(static_cast<double>(cluster.sim().Now() - rt_sent_at));
      rt_sent_at = 0;
    }
  });

  std::function<void()> drain = [&] {
    Endpoint* endpoints[] = {&*bulk_rx, &*rt_rx};
    for (Endpoint* rx : endpoints) {
      for (;;) {
        auto message = rx->Receive();
        if (!message.ok()) {
          break;
        }
        if (*message->As<std::uint32_t>() == kCriticalMagic) {
          ++out.rt_delivered;
        } else {
          ++out.bulk_delivered;
        }
        (void)rx->PostBuffer(*message);
      }
    }
    if (cluster.sim().Now() < kRunFor + 2'000'000) {
      cluster.sim().ScheduleAfter(kDrainInterval, drain);
    }
  };

  if (flood) {
    cluster.sim().ScheduleAt(0, burst);
  }
  cluster.sim().ScheduleAt(kBurstPeriod / 4, send_rt);  // mid-burst when flooded
  cluster.sim().ScheduleAt(kDrainInterval, drain);
  cluster.sim().RunUntil(kRunFor + 3'000'000);

  out.rt_deadline_misses =
      sensor.comm().telemetry(rt_tx->index()).deadline_misses.Read();
  return out;
}

void Run(JsonReport& report) {
  PrintHeader("E10: bench_rt_isolation",
              "Introduction (traffic classes) + Future Work (priority extension)",
              "separate endpoints isolate buffer resources from a telemetry flood; "
              "the priority-scan engine serves the critical stream first");

  const Outcome shared = RunScenario(/*shared_endpoint=*/true, /*priority_scan=*/false);
  const Outcome separate = RunScenario(/*shared_endpoint=*/false, /*priority_scan=*/false);
  const Outcome priority = RunScenario(/*shared_endpoint=*/false, /*priority_scan=*/true);

  TextTable table({"configuration", "crit sent", "crit lost", "deliv latency us (mean/max)",
                   "bg delivered"});
  auto latency_cell = [](const Outcome& o) -> std::string {
    if (o.critical_latency_ns.count() == 0) {
      return "- (not attributable)";
    }
    return TextTable::Num(o.critical_latency_ns.mean() / 1000.0) + " / " +
           TextTable::Num(o.critical_latency_ns.max() / 1000.0);
  };
  table.AddRow({"shared endpoint (no separation)", std::to_string(shared.critical_sent),
                std::to_string(shared.critical_lost()), latency_cell(shared),
                std::to_string(shared.background_delivered)});
  table.AddRow({"separate endpoints, round-robin", std::to_string(separate.critical_sent),
                std::to_string(separate.critical_lost()), latency_cell(separate),
                std::to_string(separate.background_delivered)});
  table.AddRow({"separate endpoints, priority scan", std::to_string(priority.critical_sent),
                std::to_string(priority.critical_lost()), latency_cell(priority),
                std::to_string(priority.background_delivered)});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape checks:\n");
  std::printf("  - shared endpoint: the flood consumes the buffers the critical class "
              "needs -> %llu of %llu critical messages lost %s\n",
              static_cast<unsigned long long>(shared.critical_lost()),
              static_cast<unsigned long long>(shared.critical_sent),
              shared.critical_lost() > 0 ? "[OK]" : "[MISMATCH]");
  std::printf("  - separate endpoints: zero critical losses %s\n",
              (separate.critical_lost() == 0 && priority.critical_lost() == 0)
                  ? "[OK]" : "[MISMATCH]");
  std::printf("  - priority scan cuts mean delivery latency %.2f -> %.2f us %s\n"
              "    (residual is inbound FIFO at the receiving engine)\n\n",
              separate.critical_latency_ns.mean() / 1000.0,
              priority.critical_latency_ns.mean() / 1000.0,
              priority.critical_latency_ns.mean() < separate.critical_latency_ns.mean()
                  ? "[OK]" : "[MISMATCH]");

  // QoS planner: the RT class must ride through a saturating bulk flood.
  const QosOutcome rt_alone = RunQosScenario(/*flood=*/false);
  const QosOutcome rt_flood = RunQosScenario(/*flood=*/true);

  TextTable qos_table({"qos configuration", "rt sent", "rt delivered",
                       "rt latency us (mean/max)", "rt deadline misses",
                       "bulk delivered"});
  auto qos_latency_cell = [](const QosOutcome& o) {
    return TextTable::Num(o.rt_latency_ns.mean() / 1000.0) + " / " +
           TextTable::Num(o.rt_latency_ns.max() / 1000.0);
  };
  qos_table.AddRow({"rt class alone (isolated baseline)",
                    std::to_string(rt_alone.rt_sent),
                    std::to_string(rt_alone.rt_delivered), qos_latency_cell(rt_alone),
                    std::to_string(rt_alone.rt_deadline_misses),
                    std::to_string(rt_alone.bulk_delivered)});
  qos_table.AddRow({"rt class vs bulk flood (weights 8:1)",
                    std::to_string(rt_flood.rt_sent),
                    std::to_string(rt_flood.rt_delivered), qos_latency_cell(rt_flood),
                    std::to_string(rt_flood.rt_deadline_misses),
                    std::to_string(rt_flood.bulk_delivered)});
  std::printf("%s\n", qos_table.ToString().c_str());

  const double qos_ratio = rt_alone.rt_latency_ns.mean() > 0
                               ? rt_flood.rt_latency_ns.mean() / rt_alone.rt_latency_ns.mean()
                               : 0.0;
  std::printf("QoS planner shape checks:\n");
  std::printf("  - rt mean latency under flood within 2x isolated (%.2f -> %.2f us, "
              "%.2fx) %s\n",
              rt_alone.rt_latency_ns.mean() / 1000.0,
              rt_flood.rt_latency_ns.mean() / 1000.0, qos_ratio,
              (qos_ratio > 0.0 && qos_ratio <= 2.0) ? "[OK]" : "[MISMATCH]");
  std::printf("  - zero rt deadline misses under flood %s\n",
              rt_flood.rt_deadline_misses == 0 ? "[OK]" : "[MISMATCH]");
  std::printf("  - rt stream lossless under flood %s\n",
              (rt_flood.rt_sent > 0 && rt_flood.rt_delivered == rt_flood.rt_sent)
                  ? "[OK]" : "[MISMATCH]");
  std::printf("  - bulk class keeps progressing (weighted share, not starvation) %s\n\n",
              rt_flood.bulk_delivered > 0 ? "[OK]" : "[MISMATCH]");

  report.AddConfig("run_for_ms", kRunFor / 1e6);
  report.AddConfig("rt_deadline_us", kRtDeadlineNs / 1e3);
  report.AddMetric("critical_lost_shared", static_cast<double>(shared.critical_lost()),
                   "messages");
  report.AddMetric("critical_latency_separate_mean",
                   separate.critical_latency_ns.mean() / 1000.0, "us");
  report.AddMetric("critical_latency_priority_mean",
                   priority.critical_latency_ns.mean() / 1000.0, "us");
  report.AddMetric("qos_rt_latency_isolated_mean",
                   rt_alone.rt_latency_ns.mean() / 1000.0, "us");
  report.AddMetric("qos_rt_latency_flood_mean",
                   rt_flood.rt_latency_ns.mean() / 1000.0, "us");
  report.AddMetric("qos_rt_latency_flood_max", rt_flood.rt_latency_ns.max() / 1000.0,
                   "us");
  report.AddMetric("qos_rt_flood_ratio", qos_ratio, "x");
  report.AddMetric("qos_rt_deadline_misses",
                   static_cast<double>(rt_flood.rt_deadline_misses), "count");
  report.AddMetric("qos_bulk_delivered_under_flood",
                   static_cast<double>(rt_flood.bulk_delivered), "messages");
}

}  // namespace
}  // namespace flipc::bench

int main(int argc, char** argv) {
  flipc::bench::JsonReport report(argc, argv, "rt_isolation");
  flipc::bench::Run(report);
  return 0;
}
