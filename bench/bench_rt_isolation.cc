// E10 — real-time traffic separation (Introduction + Future Work).
//
// Paper: "the system must not only process a message announcing detection
// of an incoming missile in preference to a message indicating that it is
// time for preventative maintenance, but must also ensure that the latter
// message does not consume resources required to handle the former."
// FLIPC's answer is structural: per-endpoint buffer resources separate the
// classes, and the future-work priority extension makes the engine serve
// high-priority send endpoints first.
//
// Scenario: a sensor node emits a burst of background telemetry from eight
// low-priority endpoints every 400 us, plus one critical message per burst
// period from a high-priority endpoint, timed to land mid-burst. The
// tracker node drains periodically. Three configurations:
//   1. shared   — critical messages target the same receive endpoint (and
//                 buffers) as the telemetry: bursts exhaust the buffers and
//                 the optimistic transport discards critical messages;
//   2. separate — own receive endpoint and buffers: zero critical drops;
//   3. priority — separate + priority-scan engine: the critical send jumps
//                 the sender-side backlog, cutting delivery latency (the
//                 residual latency is inbound FIFO at the receiving
//                 engine, which no sender-side policy can remove).
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "src/base/stats.h"

namespace flipc::bench {
namespace {

constexpr TimeNs kRunFor = 40'000'000;       // 40 ms
constexpr DurationNs kBurstPeriod = 400'000; // background burst every 400 us
constexpr std::uint32_t kBgEndpoints = 8;
constexpr std::uint32_t kBurstPerEndpoint = 8;
constexpr DurationNs kDrainInterval = 250'000;
constexpr std::uint32_t kCriticalMagic = 0xC417ACA1;

struct Outcome {
  RunningStats critical_latency_ns;  // engine delivery latency (separate only)
  std::uint64_t critical_sent = 0;
  std::uint64_t critical_delivered = 0;
  std::uint64_t background_sent = 0;
  std::uint64_t background_delivered = 0;

  std::uint64_t critical_lost() const { return critical_sent - critical_delivered; }
};

Outcome RunScenario(bool shared_endpoint, bool priority_scan) {
  engine::EngineOptions engine_options;
  engine_options.priority_scan = priority_scan;
  SimCluster::Options cluster_options;
  cluster_options.node_count = 2;
  cluster_options.comm.message_size = 128;
  cluster_options.comm.buffer_count = 512;
  cluster_options.comm.max_endpoints = 32;
  cluster_options.engine = engine_options;
  auto cluster_or = SimCluster::Create(std::move(cluster_options));
  if (!cluster_or.ok()) {
    std::abort();
  }
  SimCluster& cluster = **cluster_or;
  Domain& sensor = cluster.domain(0);
  Domain& tracker = cluster.domain(1);
  Outcome out;

  // Background: eight low-priority send endpoints into one telemetry sink.
  std::vector<Endpoint> bg_tx;
  for (std::uint32_t i = 0; i < kBgEndpoints; ++i) {
    auto endpoint = sensor.CreateEndpoint(
        {.type = shm::EndpointType::kSend, .queue_depth = 16, .priority = 1});
    if (!endpoint.ok()) {
      std::abort();
    }
    bg_tx.push_back(*endpoint);
  }
  auto bg_rx =
      tracker.CreateEndpoint({.type = shm::EndpointType::kReceive, .queue_depth = 64});
  auto crit_tx = sensor.CreateEndpoint(
      {.type = shm::EndpointType::kSend, .queue_depth = 4, .priority = 9});
  auto crit_rx = shared_endpoint
                     ? bg_rx
                     : tracker.CreateEndpoint(
                           {.type = shm::EndpointType::kReceive, .queue_depth = 8});
  if (!bg_rx.ok() || !crit_tx.ok() || !crit_rx.ok()) {
    std::abort();
  }

  // Resource provisioning: telemetry gets 16 buffers — well under one full
  // 64-message burst, so bursts overrun it by design (telemetry tolerates
  // loss). The critical class gets its own 4 only in the separate
  // configurations.
  for (int i = 0; i < 16; ++i) {
    auto buffer = tracker.AllocateBuffer();
    (void)bg_rx->PostBuffer(*buffer);
  }
  if (!shared_endpoint) {
    for (int i = 0; i < 4; ++i) {
      auto buffer = tracker.AllocateBuffer();
      (void)crit_rx->PostBuffer(*buffer);
    }
  }

  // Background burst: each endpoint releases kBurstPerEndpoint messages
  // back-to-back every period.
  std::function<void()> burst = [&] {
    if (cluster.sim().Now() >= kRunFor) {
      return;
    }
    for (Endpoint& tx : bg_tx) {
      for (std::uint32_t i = 0; i < kBurstPerEndpoint; ++i) {
        auto buffer = tx.ReclaimUnlocked();
        Result<MessageBuffer> msg = buffer.ok() ? buffer : sensor.AllocateBuffer();
        if (!msg.ok()) {
          break;
        }
        *msg->As<std::uint32_t>() = 0;
        if (tx.SendUnlocked(*msg, bg_rx->address()).ok()) {
          ++out.background_sent;
        }
      }
    }
    cluster.sim().ScheduleAfter(kBurstPeriod, burst);
  };

  // Critical producer: one tagged message per period, mid-burst.
  TimeNs critical_sent_at = 0;
  std::function<void()> send_critical = [&] {
    if (cluster.sim().Now() >= kRunFor) {
      return;
    }
    auto buffer = crit_tx->ReclaimUnlocked();
    Result<MessageBuffer> msg = buffer.ok() ? buffer : sensor.AllocateBuffer();
    if (msg.ok()) {
      *msg->As<std::uint32_t>() = kCriticalMagic;
      critical_sent_at = cluster.sim().Now();
      if (crit_tx->SendUnlocked(*msg, crit_rx->address()).ok()) {
        ++out.critical_sent;
      }
    }
    cluster.sim().ScheduleAfter(kBurstPeriod, send_critical);
  };

  // Engine-level delivery latency is attributable only with a dedicated
  // critical endpoint.
  if (!shared_endpoint) {
    cluster.engine(1).SetReceiveHook([&](std::uint32_t endpoint, bool delivered) {
      if (endpoint == crit_rx->index() && delivered && critical_sent_at != 0) {
        out.critical_latency_ns.Add(
            static_cast<double>(cluster.sim().Now() - critical_sent_at));
        critical_sent_at = 0;
      }
    });
  }

  // Tracker application: periodic drain of whatever endpoints exist,
  // classifying messages by their payload tag.
  std::function<void()> drain = [&] {
    std::vector<Endpoint*> endpoints = {&*bg_rx};
    if (!shared_endpoint) {
      endpoints.push_back(&*crit_rx);
    }
    for (Endpoint* rx : endpoints) {
      for (;;) {
        auto message = rx->Receive();
        if (!message.ok()) {
          break;
        }
        if (*message->As<std::uint32_t>() == kCriticalMagic) {
          ++out.critical_delivered;
        } else {
          ++out.background_delivered;
        }
        (void)rx->PostBuffer(*message);
      }
    }
    if (cluster.sim().Now() < kRunFor + 2'000'000) {
      cluster.sim().ScheduleAfter(kDrainInterval, drain);
    }
  };

  cluster.sim().ScheduleAt(0, burst);
  cluster.sim().ScheduleAt(kBurstPeriod / 4, send_critical);  // mid-burst
  cluster.sim().ScheduleAt(kDrainInterval, drain);
  cluster.sim().RunUntil(kRunFor + 3'000'000);
  return out;
}

void Run() {
  PrintHeader("E10: bench_rt_isolation",
              "Introduction (traffic classes) + Future Work (priority extension)",
              "separate endpoints isolate buffer resources from a telemetry flood; "
              "the priority-scan engine serves the critical stream first");

  const Outcome shared = RunScenario(/*shared_endpoint=*/true, /*priority_scan=*/false);
  const Outcome separate = RunScenario(/*shared_endpoint=*/false, /*priority_scan=*/false);
  const Outcome priority = RunScenario(/*shared_endpoint=*/false, /*priority_scan=*/true);

  TextTable table({"configuration", "crit sent", "crit lost", "deliv latency us (mean/max)",
                   "bg delivered"});
  auto latency_cell = [](const Outcome& o) -> std::string {
    if (o.critical_latency_ns.count() == 0) {
      return "- (not attributable)";
    }
    return TextTable::Num(o.critical_latency_ns.mean() / 1000.0) + " / " +
           TextTable::Num(o.critical_latency_ns.max() / 1000.0);
  };
  table.AddRow({"shared endpoint (no separation)", std::to_string(shared.critical_sent),
                std::to_string(shared.critical_lost()), latency_cell(shared),
                std::to_string(shared.background_delivered)});
  table.AddRow({"separate endpoints, round-robin", std::to_string(separate.critical_sent),
                std::to_string(separate.critical_lost()), latency_cell(separate),
                std::to_string(separate.background_delivered)});
  table.AddRow({"separate endpoints, priority scan", std::to_string(priority.critical_sent),
                std::to_string(priority.critical_lost()), latency_cell(priority),
                std::to_string(priority.background_delivered)});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Shape checks:\n");
  std::printf("  - shared endpoint: the flood consumes the buffers the critical class "
              "needs -> %llu of %llu critical messages lost %s\n",
              static_cast<unsigned long long>(shared.critical_lost()),
              static_cast<unsigned long long>(shared.critical_sent),
              shared.critical_lost() > 0 ? "[OK]" : "[MISMATCH]");
  std::printf("  - separate endpoints: zero critical losses %s\n",
              (separate.critical_lost() == 0 && priority.critical_lost() == 0)
                  ? "[OK]" : "[MISMATCH]");
  std::printf("  - priority scan cuts mean delivery latency %.2f -> %.2f us %s\n"
              "    (residual is inbound FIFO at the receiving engine)\n\n",
              separate.critical_latency_ns.mean() / 1000.0,
              priority.critical_latency_ns.mean() / 1000.0,
              priority.critical_latency_ns.mean() < separate.critical_latency_ns.mean()
                  ? "[OK]" : "[MISMATCH]");
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
