// E13 — capacity/bandwidth control (Future Work).
//
// Paper: "we intend to pursue further integration of FLIPC into a real
// time environment by adding real time prioritization and
// capacity/bandwidth control functionality to the basic inter-node
// transport." E10 covered prioritization; this bench covers capacity
// control: a greedy background endpoint is throttled by the engine's
// min-send-interval, bounding the bandwidth it can take from a critical
// stream regardless of how much the (possibly untrusted) application
// offers.
#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "src/base/stats.h"

namespace flipc::bench {
namespace {

constexpr TimeNs kRunFor = 20'000'000;  // 20 ms

struct Outcome {
  std::uint64_t background_delivered = 0;
  RunningStats critical_latency_ns;

  double BackgroundMBps(std::uint32_t payload) const {
    return static_cast<double>(background_delivered * payload) / (1024.0 * 1024.0) /
           (static_cast<double>(kRunFor) / 1e9);
  }
};

// A greedy sender saturates its endpoint; a critical 500 us stream shares
// the node. `interval_ns` is the engine-enforced spacing (0 = off).
Outcome RunScenario(std::uint32_t interval_ns) {
  auto cluster = MakeParagonPair(128);
  Domain& a = cluster->domain(0);
  Domain& b = cluster->domain(1);
  Outcome out;

  Domain::EndpointOptions bg_options;
  bg_options.type = shm::EndpointType::kSend;
  bg_options.queue_depth = 16;
  bg_options.min_send_interval_ns = interval_ns;
  auto bg_tx = a.CreateEndpoint(bg_options);
  auto bg_rx = b.CreateEndpoint({.type = shm::EndpointType::kReceive, .queue_depth = 64});
  auto crit_tx =
      a.CreateEndpoint({.type = shm::EndpointType::kSend, .queue_depth = 4, .priority = 9});
  auto crit_rx = b.CreateEndpoint({.type = shm::EndpointType::kReceive, .queue_depth = 8});
  if (!bg_tx.ok() || !bg_rx.ok() || !crit_tx.ok() || !crit_rx.ok()) {
    std::abort();
  }
  for (int i = 0; i < 32; ++i) {
    auto buffer = b.AllocateBuffer();
    (void)bg_rx->PostBuffer(*buffer);
  }
  for (int i = 0; i < 4; ++i) {
    auto buffer = b.AllocateBuffer();
    (void)crit_rx->PostBuffer(*buffer);
  }

  // Greedy pump: refill the background queue on every completion.
  auto pump = [&] {
    for (;;) {
      auto buffer = bg_tx->ReclaimUnlocked();
      Result<MessageBuffer> msg = buffer.ok() ? buffer : a.AllocateBuffer();
      if (!msg.ok() || !bg_tx->SendUnlocked(*msg, bg_rx->address()).ok()) {
        if (msg.ok() && !buffer.ok()) {
          (void)a.FreeBuffer(*msg);
        }
        break;
      }
    }
  };
  cluster->engine(0).SetSendCompleteHook([&](std::uint32_t endpoint) {
    if (endpoint == bg_tx->index() && cluster->sim().Now() < kRunFor) {
      pump();
    }
  });

  TimeNs critical_sent_at = 0;
  cluster->engine(1).SetReceiveHook([&](std::uint32_t endpoint, bool delivered) {
    if (!delivered) {
      return;
    }
    if (endpoint == bg_rx->index()) {
      ++out.background_delivered;
    } else if (endpoint == crit_rx->index() && critical_sent_at != 0) {
      out.critical_latency_ns.Add(
          static_cast<double>(cluster->sim().Now() - critical_sent_at));
      critical_sent_at = 0;
    }
  });

  // Receiver app re-posts buffers promptly.
  std::function<void()> drain = [&] {
    for (Endpoint* rx : {&*bg_rx, &*crit_rx}) {
      for (;;) {
        auto message = rx->Receive();
        if (!message.ok()) {
          break;
        }
        (void)rx->PostBuffer(*message);
      }
    }
    if (cluster->sim().Now() < kRunFor + 1'000'000) {
      cluster->sim().ScheduleAfter(50'000, drain);
    }
  };

  std::function<void()> send_critical = [&] {
    if (cluster->sim().Now() >= kRunFor) {
      return;
    }
    auto buffer = crit_tx->ReclaimUnlocked();
    Result<MessageBuffer> msg = buffer.ok() ? buffer : a.AllocateBuffer();
    if (msg.ok()) {
      critical_sent_at = cluster->sim().Now();
      (void)crit_tx->SendUnlocked(*msg, crit_rx->address());
    }
    cluster->sim().ScheduleAfter(500'000, send_critical);
  };

  cluster->sim().ScheduleAt(0, pump);
  cluster->sim().ScheduleAt(50'000, drain);
  cluster->sim().ScheduleAt(125'000, send_critical);
  cluster->sim().RunUntil(kRunFor + 2'000'000);
  return out;
}

void Run() {
  PrintHeader("E13: bench_rate_limit",
              "Future Work (capacity/bandwidth control on the transport)",
              "an engine-enforced per-endpoint send interval caps a greedy stream's "
              "bandwidth and steadies a critical stream's latency");

  TextTable table({"bg send interval", "bg delivered", "bg MB/s", "critical mean us",
                   "critical max us"});
  for (const std::uint32_t interval : {0u, 10'000u, 25'000u, 100'000u}) {
    const Outcome out = RunScenario(interval);
    table.AddRow({interval == 0 ? "unlimited" : std::to_string(interval / 1000) + " us",
                  std::to_string(out.background_delivered),
                  TextTable::Num(out.BackgroundMBps(120), 2),
                  TextTable::Num(out.critical_latency_ns.mean() / 1000.0),
                  TextTable::Num(out.critical_latency_ns.max() / 1000.0)});
  }
  std::printf("%s\n", table.ToString().c_str());

  const Outcome unlimited = RunScenario(0);
  const Outcome capped = RunScenario(25'000);
  std::printf("Shape checks: the cap bounds background throughput (%llu -> %llu msgs) %s "
              "and cuts critical tail latency (%.1f -> %.1f us max) %s.\n\n",
              static_cast<unsigned long long>(unlimited.background_delivered),
              static_cast<unsigned long long>(capped.background_delivered),
              capped.background_delivered < unlimited.background_delivered / 2 ? "[OK]"
                                                                               : "[MISMATCH]",
              unlimited.critical_latency_ns.max() / 1000.0,
              capped.critical_latency_ns.max() / 1000.0,
              capped.critical_latency_ns.max() < unlimited.critical_latency_ns.max()
                  ? "[OK]"
                  : "[MISMATCH]");
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
