// S2 (supplementary) — the latency decomposition behind Figure 4.
//
// The paper's 15.45 us intercept is a sum of pipeline stages (library
// calls, engine work units, wire time). This bench prints the platform
// model's stage budget for a 128-byte message next to the end-to-end
// latency the full system actually produces, and checks they agree — the
// decomposition in DESIGN.md section 5 is executable, not prose.
//
// It also instruments the pipeline timeline directly: engine hooks record
// when the receive completes, splitting the measured one-way latency into
// "until engine delivery" and "application receive" portions.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/engine/platform_model.h"

namespace flipc::bench {
namespace {

void Run() {
  PrintHeader("S2: bench_latency_breakdown",
              "DESIGN.md section 5 (calibration of the Figure 4 intercept)",
              "the stage budget sums to the measured end-to-end latency");

  const engine::PlatformModel model = engine::ParagonModel();
  constexpr std::uint32_t kMessageSize = 128;  // 120-byte payload
  constexpr std::uint32_t kPayload = kMessageSize - 8;

  // Stage budget for one 128-byte message (one way, 1 mesh hop in the
  // 2-node cluster; the wire charges serialization on payload + 16B header).
  const DurationNs wire_serialization = (kPayload + 16) * 5;  // 5 ns/B hardware
  const DurationNs wire_transit = 100 + 1 * 40;               // inject/eject + 1 hop
  const DurationNs recv_copy = model.RecvCopyNs(kPayload);

  TextTable budget({"stage", "ns", "owner"});
  budget.AddRow({"application send library", std::to_string(model.app_send_ns), "app CPU"});
  budget.AddRow({"engine dispatch (sender)", std::to_string(model.engine_dispatch_ns),
                 "coprocessor"});
  budget.AddRow({"engine send (scan + DMA setup)", std::to_string(model.send_overhead_ns),
                 "coprocessor"});
  budget.AddRow({"wire serialization (payload+hdr @5ns/B)",
                 std::to_string(wire_serialization), "fabric"});
  budget.AddRow({"wire transit (inject + 1 hop + eject)", std::to_string(wire_transit),
                 "fabric"});
  budget.AddRow({"engine dispatch (receiver)", std::to_string(model.engine_dispatch_ns),
                 "coprocessor"});
  budget.AddRow({"engine receive (accept + fill)", std::to_string(model.recv_overhead_ns),
                 "coprocessor"});
  budget.AddRow({"receiver buffer fill (1.25 ns/B)", std::to_string(recv_copy),
                 "coprocessor"});
  budget.AddRow({"application receive library", std::to_string(model.app_recv_ns),
                 "app CPU"});
  const DurationNs budget_total = model.app_send_ns + model.engine_dispatch_ns +
                                  model.send_overhead_ns + wire_serialization +
                                  wire_transit + model.engine_dispatch_ns +
                                  model.recv_overhead_ns + recv_copy + model.app_recv_ns;
  budget.AddRow({"TOTAL (budget)", std::to_string(budget_total), ""});
  std::printf("%s\n", budget.ToString().c_str());

  // Measure the real pipeline end to end.
  auto cluster = MakeParagonPair(kMessageSize);
  const sim::PingPongResult result = MustPingPong(*cluster, {.exchanges = 200});
  const double measured = result.one_way_ns.mean();

  std::printf("measured end-to-end one-way latency: %.0f ns\n", measured);
  std::printf("stage-budget total:                  %lld ns\n",
              static_cast<long long>(budget_total));
  const double error_ns = measured - static_cast<double>(budget_total);
  std::printf("difference: %+.0f ns %s\n", error_ns,
              (error_ns > -50 && error_ns < 50) ? "[OK]" : "[MISMATCH]");
  std::printf("\nOf the %.0f ns, %.0f ns (%.0f%%) is engine + wire — work the paper\n"
              "offloads from the compute processor to the message coprocessor; the\n"
              "application pays only the %lld ns of library time.\n\n",
              measured,
              measured - static_cast<double>(model.app_send_ns + model.app_recv_ns),
              100.0 * (measured - static_cast<double>(model.app_send_ns + model.app_recv_ns)) /
                  measured,
              static_cast<long long>(model.app_send_ns + model.app_recv_ns));
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
