// E5 — the cache start-up transient (Performance section).
//
// Paper: "Running the test program for a small number of exchanges yields
// results that are about 3 us faster than the above steady state results
// from test runs that include hundreds of message exchanges" — the 16 KB
// i860 caches (no L2) lose sharing when the loop's bookkeeping evicts
// lines, so the steady state pays extra invalidations that the first few
// exchanges do not.
#include <cstdio>

#include "bench/bench_common.h"

namespace flipc::bench {
namespace {

void Run() {
  PrintHeader("E5: bench_startup_transient",
              "Performance section (short runs vs steady state, 120-byte message)",
              "small exchange counts are ~3 us faster than hundreds-of-exchanges runs");

  TextTable table({"exchanges", "measured us", "note"});
  for (const std::uint32_t exchanges : {2u, 4u, 8u, 32u, 100u, 300u, 1000u}) {
    auto cluster = MakeParagonPair(128);
    sim::PingPongConfig config;
    config.exchanges = exchanges;
    // Short runs report everything they measured (there is no steady state
    // to wait for); long runs report steady state, as the paper does.
    if (exchanges <= 2 * config.cache_warm_exchanges) {
      config.record_first = 2 * exchanges;
    }
    const sim::PingPongResult result = MustPingPong(*cluster, config);
    table.AddRow({std::to_string(exchanges),
                  TextTable::Num(result.one_way_ns.mean() / 1000.0),
                  exchanges <= 8 ? "within cache-cold window" : "steady state"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper: cold - steady = -3 us for the 120-byte message.\n\n");
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
