// E4 — the Implementation section's tuning story, as an ablation.
//
// Paper: two cache problems on the multiprocessor Paragon nodes —
// (1) multiprocessor test-and-set locks must lock the memory bus (no cache
// residency for locks), fixed by lock-free send/receive interface variants;
// (2) false sharing of app-written and engine-written variables in one
// 32-byte cache line, fixed by the writer-separated layout.
// "The combination of these two optimizations improved latency by 15 us or
// almost a factor of two."
#include <cstdio>

#include "bench/bench_common.h"

namespace flipc::bench {
namespace {

double OneWayUs(bool locked, bool unpadded) {
  engine::EngineOptions engine_options;
  engine_options.model_unpadded_layout = unpadded;
  auto cluster = MakeParagonPair(128, engine_options);
  sim::PingPongConfig config;
  config.exchanges = 300;
  config.locked_variants = locked;
  config.model_unpadded_layout = unpadded;
  return MustPingPong(*cluster, config).one_way_ns.mean() / 1000.0;
}

void Run() {
  PrintHeader("E4: bench_ablation_locks",
              "Implementation section (lock + false-sharing tuning, 120-byte message)",
              "both optimizations together: -15 us, 'almost a factor of two'");

  const double optimized = OneWayUs(false, false);
  const double locks_only = OneWayUs(true, false);
  const double sharing_only = OneWayUs(false, true);
  const double neither = OneWayUs(true, true);

  TextTable table({"configuration", "measured us", "delta vs optimized", "factor"});
  table.AddRow({"optimized (lock-free + padded layout)", TextTable::Num(optimized), "-",
                "1.00x"});
  table.AddRow({"bus-locked test-and-set variants", TextTable::Num(locks_only),
                "+" + TextTable::Num(locks_only - optimized),
                TextTable::Num(locks_only / optimized) + "x"});
  table.AddRow({"false-sharing (unpadded) layout", TextTable::Num(sharing_only),
                "+" + TextTable::Num(sharing_only - optimized),
                TextTable::Num(sharing_only / optimized) + "x"});
  table.AddRow({"neither optimization (pre-tuning)", TextTable::Num(neither),
                "+" + TextTable::Num(neither - optimized),
                TextTable::Num(neither / optimized) + "x"});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Paper: combined delta 15 us, factor ~2. Measured: delta %.2f us, "
              "factor %.2fx %s\n\n",
              neither - optimized, neither / optimized,
              (neither - optimized > 13.5 && neither - optimized < 16.5) ? "[OK]"
                                                                         : "[MISMATCH]");
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
