// E11 — the buffer-management call profile (Future Work).
//
// Paper: "Our experience is that a FLIPC application can expect to employ
// about half of its calls to FLIPC to send or receive messages, and the
// other half for message buffer management. An improved buffer management
// design that frees the programmer from most of these details is clearly
// called for." This bench runs two representative applications against the
// instrumented API and reports the split.
#include <cstdio>

#include "bench/bench_common.h"

namespace flipc::bench {
namespace {

struct Profile {
  std::uint64_t messaging = 0;
  std::uint64_t buffer_mgmt = 0;

  double MessagingShare() const {
    return 100.0 * static_cast<double>(messaging) /
           static_cast<double>(messaging + buffer_mgmt);
  }
};

// A request/reply service: every message handled requires a receive, a
// buffer re-post, a send-buffer reclaim and a send.
Profile RunRequestReply() {
  auto cluster = MakeParagonPair(128);
  MustPingPong(*cluster, {.exchanges = 500});
  Profile p;
  for (NodeId n = 0; n < 2; ++n) {
    p.messaging += cluster->domain(n).calls().MessagingCalls();
    p.buffer_mgmt += cluster->domain(n).calls().BufferManagementCalls();
  }
  return p;
}

// A one-way event stream: the sender reclaims every completed buffer, the
// receiver re-posts every consumed one.
Profile RunEventStream() {
  auto cluster = MakeParagonPair(128);
  sim::StreamConfig config;
  config.total_messages = 1000;
  MustStream(*cluster, config);
  Profile p;
  for (NodeId n = 0; n < 2; ++n) {
    p.messaging += cluster->domain(n).calls().MessagingCalls();
    p.buffer_mgmt += cluster->domain(n).calls().BufferManagementCalls();
  }
  return p;
}

void Run() {
  PrintHeader("E11: bench_call_profile", "Future Work (API call breakdown)",
              "about half of an application's FLIPC calls are message buffer "
              "management rather than send/receive");

  const Profile rr = RunRequestReply();
  const Profile stream = RunEventStream();

  TextTable table({"workload", "send/receive calls", "buffer mgmt calls",
                   "messaging share", "paper"});
  table.AddRow({"request/reply (ping-pong)", std::to_string(rr.messaging),
                std::to_string(rr.buffer_mgmt),
                TextTable::Num(rr.MessagingShare(), 1) + "%", "~50%"});
  table.AddRow({"one-way event stream", std::to_string(stream.messaging),
                std::to_string(stream.buffer_mgmt),
                TextTable::Num(stream.MessagingShare(), 1) + "%", "~50%"});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Buffer management calls = allocate + free + post-buffer + reclaim; the\n"
              "paper's future-work complaint (half the API traffic is buffer\n"
              "housekeeping) reproduces for both application shapes.\n\n");
}

}  // namespace
}  // namespace flipc::bench

int main() {
  flipc::bench::Run();
  return 0;
}
