// Microbenchmarks (google-benchmark) for the wait-free structures.
//
// Not a paper artifact: these guard the constant-time claims the platform
// model's per-operation costs assume — queue release/acquire, engine
// peek/advance, drop-counter operations, and lock acquisition, all on the
// host CPU.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/base/hotpath.h"
#include "src/base/locks.h"
#include "src/flipc/flipc.h"
#include "src/shm/comm_buffer.h"
#include "src/waitfree/buffer_queue.h"
#include "src/waitfree/doorbell_ring.h"
#include "src/waitfree/drop_counter.h"

namespace flipc {
namespace {

void BM_QueueReleaseAcquireCycle(benchmark::State& state) {
  waitfree::InlineBufferQueue<64> queue;
  waitfree::BufferQueueView& view = queue.view();
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.Release(i));
    benchmark::DoNotOptimize(view.PeekProcess());
    view.AdvanceProcess();
    benchmark::DoNotOptimize(view.Acquire());
    ++i;
  }
}
BENCHMARK(BM_QueueReleaseAcquireCycle);

void BM_QueueReleaseOnly(benchmark::State& state) {
  waitfree::InlineBufferQueue<1024> queue;
  waitfree::BufferQueueView& view = queue.view();
  std::uint32_t i = 0;
  for (auto _ : state) {
    if (!view.Release(i++)) {
      // Drain when full so the loop measures Release, not failure.
      state.PauseTiming();
      while (view.PeekProcess() != waitfree::kInvalidBuffer) {
        view.AdvanceProcess();
        view.Acquire();
      }
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_QueueReleaseOnly);

void BM_DropCounterRecord(benchmark::State& state) {
  waitfree::DropCounter counter;
  for (auto _ : state) {
    counter.RecordDrop();
  }
  benchmark::DoNotOptimize(counter.LifetimeCount());
}
BENCHMARK(BM_DropCounterRecord);

void BM_DropCounterReadAndReset(benchmark::State& state) {
  waitfree::DropCounter counter;
  for (auto _ : state) {
    counter.RecordDrop();
    benchmark::DoNotOptimize(counter.ReadAndReset());
  }
}
BENCHMARK(BM_DropCounterReadAndReset);

void BM_TasLockUncontended(benchmark::State& state) {
  TasLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_TasLockUncontended);

void BM_PetersonLockUncontended(benchmark::State& state) {
  PetersonLock lock;
  for (auto _ : state) {
    lock.Lock(0);
    lock.Unlock(0);
  }
}
BENCHMARK(BM_PetersonLockUncontended);

void BM_CommBufferAllocFree(benchmark::State& state) {
  shm::CommBufferConfig config;
  config.message_size = 128;
  config.buffer_count = 1024;
  auto comm = shm::CommBuffer::Create(config);
  for (auto _ : state) {
    auto index = (*comm)->AllocateBuffer();
    benchmark::DoNotOptimize(index);
    (void)(*comm)->FreeBuffer(*index);
  }
}
BENCHMARK(BM_CommBufferAllocFree);

void BM_EndpointSendPath(benchmark::State& state) {
  // The application-side cost of Figure 2's step 2 (queue a buffer) plus
  // step 5 (recover it), with the engine side simulated inline.
  shm::CommBufferConfig config;
  config.message_size = 128;
  config.buffer_count = 64;
  auto comm = shm::CommBuffer::Create(config);
  shm::CommBuffer::EndpointParams params;
  params.type = shm::EndpointType::kSend;
  auto endpoint = (*comm)->AllocateEndpoint(params);
  auto buffer = (*comm)->AllocateBuffer();
  waitfree::BufferQueueView queue = (*comm)->queue(*endpoint);
  for (auto _ : state) {
    queue.Release(*buffer);
    queue.AdvanceProcess();
    benchmark::DoNotOptimize(queue.Acquire());
  }
}
BENCHMARK(BM_EndpointSendPath);

// The paper implements endpoint-group receive "entirely in the library"
// because per-endpoint buffer ownership forbids merging the queues; the
// cost is therefore a linear scan. This measures that scan against group
// size with the message waiting on the LAST member (worst case).
void BM_GroupReceiveScan(benchmark::State& state) {
  const auto group_size = static_cast<std::uint32_t>(state.range(0));
  SimCluster::Options options;
  options.node_count = 2;
  options.comm.message_size = 128;
  options.comm.buffer_count = 256;
  options.comm.max_endpoints = 128;
  auto cluster = SimCluster::Create(std::move(options)).value();
  Domain& b = cluster->domain(1);
  auto group = EndpointGroup::Create(b).value();

  std::vector<Endpoint> members;
  for (std::uint32_t i = 0; i < group_size; ++i) {
    Domain::EndpointOptions member;
    member.type = shm::EndpointType::kReceive;
    member.queue_depth = 4;
    member.group = group.get();
    members.push_back(b.CreateEndpoint(member).value());
  }
  auto buffer = b.AllocateBuffer().value();

  Domain& a = cluster->domain(0);
  auto tx = a.CreateEndpoint({.type = shm::EndpointType::kSend}).value();

  for (auto _ : state) {
    state.PauseTiming();
    // Land one message on the last member; the scan must walk everyone.
    (void)members.back().PostBufferUnlocked(buffer);
    auto msg = a.AllocateBuffer().value();
    (void)tx.SendUnlocked(msg, members.back().address());
    cluster->sim().Run();
    (void)tx.ReclaimUnlocked();
    (void)a.FreeBuffer(msg);
    state.ResumeTiming();

    auto result = group->Receive();
    benchmark::DoNotOptimize(result);

    state.PauseTiming();
    buffer = result.value().buffer;
    state.ResumeTiming();
  }
}
BENCHMARK(BM_GroupReceiveScan)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Full application-side API path: post + send + receive + reclaim against
// a manually stepped engine, i.e. the host-CPU cost of the library layer.
void BM_ApiRoundTrip(benchmark::State& state) {
  SimCluster::Options options;
  options.node_count = 2;
  options.comm.message_size = 128;
  auto cluster = SimCluster::Create(std::move(options)).value();
  Domain& a = cluster->domain(0);
  Domain& b = cluster->domain(1);
  auto rx = b.CreateEndpoint({.type = shm::EndpointType::kReceive}).value();
  auto tx = a.CreateEndpoint({.type = shm::EndpointType::kSend}).value();
  auto rx_buf = b.AllocateBuffer().value();
  auto msg = a.AllocateBuffer().value();

  for (auto _ : state) {
    (void)rx.PostBufferUnlocked(rx_buf);
    (void)tx.SendUnlocked(msg, rx.address());
    cluster->sim().Run();
    rx_buf = rx.ReceiveUnlocked().value();
    msg = tx.ReclaimUnlocked().value();
  }
}
BENCHMARK(BM_ApiRoundTrip);

// ---- Hot-path purity audit --------------------------------------------------
//
// With -DFLIPC_CHECK_HOT_PATH=ON the guard counters (GuardMode::kCount)
// measure allocations and lock acquisitions observed INSIDE armed hot-path
// scopes while driving the wait-free structures. The wait-free claim says
// both must be zero per operation; CI's perf-smoke job fails on a nonzero
// rate (the [MISMATCH] marker below). Without the guard build the audit
// reports "guards not armed" and the metrics are omitted.
void ReportHotPathPurity(bench::JsonReport& json) {
  json.AddConfig("hot_path_guards_armed",
                 std::string(hotpath::kHotPathCheckEnabled ? "yes" : "no"));
  if (!hotpath::kHotPathCheckEnabled) {
    std::printf("\nhot-path purity audit: guards not armed "
                "(build with -DFLIPC_CHECK_HOT_PATH=ON to measure)\n");
    return;
  }

  constexpr std::uint64_t kOps = 10000;
  hotpath::SetGuardMode(hotpath::GuardMode::kCount);
  hotpath::ResetGuardCounters();
  {
    waitfree::InlineBufferQueue<64> queue;
    waitfree::InlineDoorbellRing<64> ring;
    waitfree::DropCounter drops;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const auto index = static_cast<std::uint32_t>(i % 64);
      queue.view().Release(index);
      queue.view().AdvanceProcess();
      queue.view().Acquire();
      ring.view().Ring(index);
      ring.view().Pop();
      drops.RecordDrop();
      drops.ReadAndReset();
    }
  }
  const hotpath::GuardCounters counters = hotpath::ReadGuardCounters();
  hotpath::SetGuardMode(hotpath::GuardMode::kAbort);

  const double allocs_per_op = static_cast<double>(counters.allocations) / kOps;
  const double locks_per_op = static_cast<double>(counters.locks) / kOps;
  const double blocking_per_op = static_cast<double>(counters.blocking_calls) / kOps;
  const bool clean = counters.allocations == 0 && counters.locks == 0 &&
                     counters.blocking_calls == 0 && counters.loop_overruns == 0;

  std::printf("\nhot-path purity audit (%llu wait-free op groups, %llu armed scopes)\n",
              static_cast<unsigned long long>(kOps),
              static_cast<unsigned long long>(counters.scope_entries));
  std::printf("  %-28s %12.6f per op\n", "allocations", allocs_per_op);
  std::printf("  %-28s %12.6f per op\n", "lock acquisitions", locks_per_op);
  std::printf("  %-28s %12.6f per op\n", "blocking calls", blocking_per_op);
  std::printf("  %-28s %12llu total\n", "loop budget overruns",
              static_cast<unsigned long long>(counters.loop_overruns));
  std::printf("  verdict: %s\n",
              clean ? "OK — wait-free path is allocation- and lock-free"
                    : "[MISMATCH] hot-path scopes observed allocations/locks");

  json.AddMetric("hot_path_allocs_per_op", allocs_per_op, "count");
  json.AddMetric("hot_path_locks_per_op", locks_per_op, "count");
  json.AddMetric("hot_path_blocking_per_op", blocking_per_op, "count");
  json.AddMetric("hot_path_scope_entries", static_cast<double>(counters.scope_entries),
                 "count");
}

}  // namespace
}  // namespace flipc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  flipc::bench::JsonReport json(argc, argv, "micro_waitfree");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flipc::ReportHotPathPurity(json);
  return 0;
}
