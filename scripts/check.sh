#!/usr/bin/env bash
# Runs the full protection-boundary analysis matrix (docs/MEMORY_MODEL.md):
#
#   plain         RelWithDebInfo build + full ctest (includes the layout and
#                 hot-path lints; the symbol pass runs only in this leg)
#   single-writer build with the ownership race detector armed + full ctest
#   hot-path      build with the hot-path purity guards armed + full ctest
#   hot-path-tsan guards armed under ThreadSanitizer (hook race check)
#   tsan          ThreadSanitizer build + full ctest
#   asan-ubsan    AddressSanitizer + UBSan build + full ctest
#   tidy          clang-tidy over src/ (skipped with a notice if not installed)
#   static-audit  flipc_static_audit (role/memory-order/hot-path proofs) +
#                 policy drift check + fixture selftest (skipped without
#                 python3)
#
# Usage: scripts/check.sh [leg ...]     (default: every leg)
# Build trees live under build-matrix/<leg> and are reused across runs.
set -euo pipefail

cd "$(dirname "$0")/.."

GENERATOR=()
if command -v ninja > /dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

JOBS="$(nproc 2> /dev/null || echo 4)"
LEGS=("$@")
if [ ${#LEGS[@]} -eq 0 ]; then
  LEGS=(plain single-writer hot-path hot-path-tsan tsan asan-ubsan tidy static-audit)
fi

build_and_test() {
  local leg="$1"
  shift
  local dir="build-matrix/$leg"
  echo "==== [$leg] configure + build + ctest ($dir) ===="
  cmake -B "$dir" -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_tidy() {
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "==== [tidy] SKIPPED: clang-tidy not installed ===="
    return 0
  fi
  local dir="build-matrix/tidy"
  echo "==== [tidy] clang-tidy over src/ ===="
  cmake -B "$dir" -S . "${GENERATOR[@]}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  local sources
  sources="$(find src -name '*.cc')"
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -quiet -p "$dir" ${sources}
  else
    # shellcheck disable=SC2086
    clang-tidy -p "$dir" ${sources}
  fi
}

run_static_audit() {
  if ! command -v python3 > /dev/null 2>&1; then
    echo "==== [static-audit] SKIPPED: python3 not installed ===="
    return 0
  fi
  local dir="build-matrix/static-audit"
  echo "==== [static-audit] protocol auditor + drift + selftest ($dir) ===="
  cmake -B "$dir" -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j "$JOBS" --target flipc_ownership_export
  ctest --test-dir "$dir" --output-on-failure     -R '^flipc_(static_audit|static_audit_selftest|ownership_policy_drift)$'
}

for leg in "${LEGS[@]}"; do
  case "$leg" in
    plain)         build_and_test plain ;;
    single-writer) build_and_test single-writer -DFLIPC_CHECK_SINGLE_WRITER=ON ;;
    hot-path)      build_and_test hot-path -DFLIPC_CHECK_HOT_PATH=ON ;;
    hot-path-tsan) build_and_test hot-path-tsan -DFLIPC_CHECK_HOT_PATH=ON -DFLIPC_SANITIZE=thread ;;
    tsan)          build_and_test tsan -DFLIPC_SANITIZE=thread ;;
    asan-ubsan)    build_and_test asan-ubsan -DFLIPC_SANITIZE=address,undefined ;;
    tidy)          run_tidy ;;
    static-audit)  run_static_audit ;;
    *)
      echo "unknown leg '$leg' (expected: plain single-writer hot-path hot-path-tsan tsan asan-ubsan tidy static-audit)" >&2
      exit 2
      ;;
  esac
done

echo "==== check.sh: all requested legs passed ===="
