#!/usr/bin/env bash
# Runs the full protection-boundary analysis matrix (docs/MEMORY_MODEL.md):
#
#   plain         RelWithDebInfo build + full ctest (includes the layout and
#                 hot-path lints; the symbol pass runs only in this leg)
#   single-writer build with the ownership race detector armed + full ctest
#   hot-path      build with the hot-path purity guards armed + full ctest
#   hot-path-tsan guards armed under ThreadSanitizer (hook race check)
#   tsan          ThreadSanitizer build + full ctest
#   asan-ubsan    AddressSanitizer + UBSan build + full ctest
#   tidy          clang-tidy over src/ (skipped with a notice if not installed)
#   static-audit  flipc_static_audit (role/memory-order/hot-path proofs) +
#                 policy + protocol-IR drift checks, fixture selftest and
#                 the fact-cache selftest (skipped without python3)
#   progress-cert whole-program wait-free certificate (interprocedural
#                 purity closure + bounded-progress proofs) under EVERY
#                 frontend available here — tokparse always, libclang when
#                 python3-clang is importable — plus the JSON report and
#                 the park-site census gate (>=1 annotated park site, none
#                 inside a hot-path scope)
#   failure-scenarios
#                 the DESIGN.md §14 failure-injection family (engine
#                 kill/restart recovery, endpoint churn, stale doorbells,
#                 seeded fabric fault plans) under ThreadSanitizer; failing
#                 tests leave Chrome-trace postmortems
#                 (failure_postmortem_*.json) in the build tree
#
# Usage: scripts/check.sh [leg ...]     (default: every leg)
# Build trees live under build-matrix/<leg> and are reused across runs.
set -euo pipefail

cd "$(dirname "$0")/.."

GENERATOR=()
if command -v ninja > /dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

JOBS="$(nproc 2> /dev/null || echo 4)"
LEGS=("$@")
if [ ${#LEGS[@]} -eq 0 ]; then
  LEGS=(plain single-writer hot-path hot-path-tsan tsan asan-ubsan tidy static-audit progress-cert failure-scenarios)
fi

build_and_test() {
  local leg="$1"
  shift
  local dir="build-matrix/$leg"
  echo "==== [$leg] configure + build + ctest ($dir) ===="
  cmake -B "$dir" -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_tidy() {
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "==== [tidy] SKIPPED: clang-tidy not installed ===="
    return 0
  fi
  local dir="build-matrix/tidy"
  echo "==== [tidy] clang-tidy over src/ ===="
  cmake -B "$dir" -S . "${GENERATOR[@]}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  local sources
  sources="$(find src -name '*.cc')"
  if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -quiet -p "$dir" ${sources}
  else
    # shellcheck disable=SC2086
    clang-tidy -p "$dir" ${sources}
  fi
}

run_static_audit() {
  if ! command -v python3 > /dev/null 2>&1; then
    echo "==== [static-audit] SKIPPED: python3 not installed ===="
    return 0
  fi
  local dir="build-matrix/static-audit"
  echo "==== [static-audit] protocol auditor + drift + selftest ($dir) ===="
  cmake -B "$dir" -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j "$JOBS" --target flipc_ownership_export
  ctest --test-dir "$dir" --output-on-failure     -R '^flipc_(static_audit|static_audit_selftest|static_audit_cache|ownership_policy_drift|protocol_ir_drift)$'
}

run_progress_cert() {
  if ! command -v python3 > /dev/null 2>&1; then
    echo "==== [progress-cert] SKIPPED: python3 not installed ===="
    return 0
  fi
  local dir="build-matrix/progress-cert"
  mkdir -p "$dir"
  local frontends=(tokparse)
  if python3 -c 'import clang.cindex' > /dev/null 2>&1; then
    frontends+=(clang)
  else
    echo "==== [progress-cert] python3-clang not importable: tokparse frontend only ===="
  fi
  for fe in "${frontends[@]}"; do
    echo "==== [progress-cert/$fe] whole-program wait-free certificate ===="
    python3 tools/flipc_static_audit/flipc_static_audit.py       --policy tools/ownership_policy.json --source-root .       --frontend "$fe" --cache-dir "$dir/cache-$fe"       --json "$dir/audit_report_$fe.json"
  done
  echo "==== [progress-cert] park-site census gate ===="
  python3 - "$dir/audit_report_${frontends[0]}.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
census = doc["unbounded_wait_sites"]
print(f"park sites: {census['total']} total, {census['in_hot_scope']} in hot scopes")
if census["total"] < 1:
    sys.exit("expected at least one FLIPC_UNBOUNDED_WAIT park site "
             "(the annotations vanished, so the census gate is vacuous)")
if census["in_hot_scope"] != 0:
    sys.exit("FLIPC_UNBOUNDED_WAIT park site(s) inside hot-path scopes")
EOF
}

run_failure_scenarios() {
  local dir="build-matrix/failure-scenarios"
  echo "==== [failure-scenarios] crash/restart + churn + fault-plan family under TSan ($dir) ===="
  cmake -B "$dir" -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFLIPC_SANITIZE=thread
  cmake --build "$dir" -j "$JOBS"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
      -R '^(failure_scenarios_test|simnet_test|engine_test|soak_test|cluster_test)$'
}

for leg in "${LEGS[@]}"; do
  case "$leg" in
    plain)         build_and_test plain ;;
    single-writer) build_and_test single-writer -DFLIPC_CHECK_SINGLE_WRITER=ON ;;
    hot-path)      build_and_test hot-path -DFLIPC_CHECK_HOT_PATH=ON ;;
    hot-path-tsan) build_and_test hot-path-tsan -DFLIPC_CHECK_HOT_PATH=ON -DFLIPC_SANITIZE=thread ;;
    tsan)          build_and_test tsan -DFLIPC_SANITIZE=thread ;;
    asan-ubsan)    build_and_test asan-ubsan -DFLIPC_SANITIZE=address,undefined ;;
    tidy)          run_tidy ;;
    static-audit)  run_static_audit ;;
    progress-cert) run_progress_cert ;;
    failure-scenarios) run_failure_scenarios ;;
    *)
      echo "unknown leg '$leg' (expected: plain single-writer hot-path hot-path-tsan tsan asan-ubsan tidy static-audit progress-cert failure-scenarios)" >&2
      exit 2
      ;;
  esac
done

echo "==== check.sh: all requested legs passed ===="
