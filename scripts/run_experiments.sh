#!/usr/bin/env bash
# Builds everything and regenerates every paper artifact (EXPERIMENTS.md).
# Usage: scripts/run_experiments.sh [build-dir]
#
# Fails loudly (nonzero exit) on the first configure, build, test, or
# benchmark error, and when a benchmark binary is missing — so CI can reuse
# this script as-is.
set -euo pipefail

BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

shopt -s nullglob
benches=("$BUILD"/bench/bench_*)
# Keep only executable files (the glob can pick up CMake droppings).
runnable=()
for bench in "${benches[@]}"; do
  if [ -f "$bench" ] && [ -x "$bench" ]; then
    runnable+=("$bench")
  fi
done

if [ ${#runnable[@]} -eq 0 ]; then
  echo "error: no benchmark binaries found under $BUILD/bench/ — did the build succeed?" >&2
  exit 1
fi

# Machine-readable results land next to the build as BENCH_<name>.json.
RESULTS="$BUILD/results"
mkdir -p "$RESULTS"

for bench in "${runnable[@]}"; do
  name="$(basename "$bench")"
  echo "==== running $name ===="
  case "$name" in
    bench_micro_waitfree)
      # google-benchmark binary: its flag parser rejects the common --json
      # flag, so use its native JSON reporter instead.
      "$bench" "--benchmark_out=$RESULTS/BENCH_${name#bench_}.json" \
               --benchmark_out_format=json
      ;;
    *)
      "$bench" "--json=$RESULTS/BENCH_${name#bench_}.json"
      ;;
  esac
done

# Sharded-engine scaling sweep (DESIGN.md §12): the same planner workload
# at 1, 2, and 4 shards. Each run also emits its own 1-shard baseline, so
# per-shard-count JSONs are self-contained scaling measurements.
SCALING="$BUILD/bench/bench_endpoint_scaling"
if [ -x "$SCALING" ]; then
  for shards in 1 2 4; do
    echo "==== running bench_endpoint_scaling --shards=$shards ===="
    "$SCALING" "--shards=$shards" \
               "--json=$RESULTS/BENCH_endpoint_scaling_${shards}shard.json"
  done
fi

echo "JSON results in $RESULTS/:"
ls "$RESULTS" 2>/dev/null || true
