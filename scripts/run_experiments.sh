#!/bin/sh
# Builds everything and regenerates every paper artifact (EXPERIMENTS.md).
# Usage: scripts/run_experiments.sh [build-dir]
set -e
BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
for bench in "$BUILD"/bench/*; do
  "$bench"
done
