#!/usr/bin/env bash
# Builds everything and regenerates every paper artifact (EXPERIMENTS.md).
# Usage: scripts/run_experiments.sh [build-dir]
#
# Fails loudly (nonzero exit) on the first configure, build, test, or
# benchmark error, and when a benchmark binary is missing — so CI can reuse
# this script as-is.
set -euo pipefail

BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

shopt -s nullglob
benches=("$BUILD"/bench/bench_*)
# Keep only executable files (the glob can pick up CMake droppings).
runnable=()
for bench in "${benches[@]}"; do
  if [ -f "$bench" ] && [ -x "$bench" ]; then
    runnable+=("$bench")
  fi
done

if [ ${#runnable[@]} -eq 0 ]; then
  echo "error: no benchmark binaries found under $BUILD/bench/ — did the build succeed?" >&2
  exit 1
fi

for bench in "${runnable[@]}"; do
  echo "==== running $bench ===="
  "$bench"
done
