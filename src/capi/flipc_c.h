/* FLIPC C API.
 *
 * The 1996 system exposed a C interface ("This consists of both a library
 * and header file(s)"); this shim provides the same shape over the C++
 * implementation so C applications — and other languages' FFIs — can use
 * FLIPC. It covers the paper's full application surface: clusters (nodes +
 * engines), endpoints in send/receive flavors with locked, lock-free and
 * blocking call variants, message buffers, opaque addresses, and the
 * wait-free drop counters.
 *
 * Conventions:
 *   - every function returns flipc_status_t (FLIPC_OK == 0);
 *   - FLIPC_UNAVAILABLE means "poll again" (empty/full queue), matching the
 *     optimistic, non-blocking default of the C++ API;
 *   - handles are plain structs of indices — cheap to copy, no ownership;
 *     the cluster owns everything and flipc_cluster_destroy releases it.
 */
#ifndef SRC_CAPI_FLIPC_C_H_
#define SRC_CAPI_FLIPC_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef enum {
  FLIPC_OK = 0,
  FLIPC_UNAVAILABLE = 1,
  FLIPC_INVALID_ARGUMENT = 2,
  FLIPC_RESOURCE_EXHAUSTED = 3,
  FLIPC_NOT_FOUND = 4,
  FLIPC_FAILED_PRECONDITION = 5,
  FLIPC_PERMISSION_DENIED = 6,
  FLIPC_TIMED_OUT = 7,
  FLIPC_INTERNAL = 8,
} flipc_status_t;

/* Opaque cluster: N nodes, one communication buffer + engine thread each. */
typedef struct flipc_cluster flipc_cluster_t;

/* Value handles. */
typedef struct {
  uint32_t node;
  uint32_t index;
} flipc_endpoint_t;

typedef struct {
  uint32_t node;
  uint32_t index;
} flipc_buffer_t;

typedef uint32_t flipc_address_t; /* packed opaque endpoint address */

typedef enum {
  FLIPC_ENDPOINT_SEND = 1,
  FLIPC_ENDPOINT_RECEIVE = 2,
} flipc_endpoint_type_t;

/* Endpoint creation flags. */
#define FLIPC_EP_BLOCKING 0x1u /* allocate a real-time semaphore */

/* ---- Cluster lifecycle ---------------------------------------------------*/

/* Creates a cluster of `node_count` nodes with engines running on their own
 * threads. `message_size` is the fixed FLIPC message size in bytes (>= 64,
 * multiple of 32; the application payload is message_size - 8). */
flipc_status_t flipc_cluster_create(uint32_t node_count, uint32_t message_size,
                                    uint32_t buffer_count, flipc_cluster_t** out);
void flipc_cluster_destroy(flipc_cluster_t* cluster);

/* ---- Endpoints -----------------------------------------------------------*/

flipc_status_t flipc_endpoint_create(flipc_cluster_t* cluster, uint32_t node,
                                     flipc_endpoint_type_t type, uint32_t queue_depth,
                                     uint32_t flags, flipc_endpoint_t* out);
flipc_status_t flipc_endpoint_destroy(flipc_cluster_t* cluster, flipc_endpoint_t endpoint);

/* The opaque address receivers pass to senders out of band. */
flipc_status_t flipc_endpoint_address(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                      flipc_address_t* out);

/* Wait-free drop accounting (receive endpoints). */
flipc_status_t flipc_drop_count(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                uint64_t* out);
flipc_status_t flipc_read_and_reset_drops(flipc_cluster_t* cluster,
                                          flipc_endpoint_t endpoint, uint64_t* out);

/* ---- Message buffers -------------------------------------------------- --*/

flipc_status_t flipc_buffer_allocate(flipc_cluster_t* cluster, uint32_t node,
                                     flipc_buffer_t* out);
flipc_status_t flipc_buffer_free(flipc_cluster_t* cluster, flipc_buffer_t buffer);

/* Direct access to the aligned payload (message_size - 8 bytes). */
flipc_status_t flipc_buffer_data(flipc_cluster_t* cluster, flipc_buffer_t buffer,
                                 void** data, size_t* size);

/* After a receive: the sender's endpoint address. */
flipc_status_t flipc_buffer_peer(flipc_cluster_t* cluster, flipc_buffer_t buffer,
                                 flipc_address_t* out);

/* Polls the per-buffer state field: FLIPC_OK once the engine completed
 * processing, FLIPC_UNAVAILABLE before. */
flipc_status_t flipc_buffer_completed(flipc_cluster_t* cluster, flipc_buffer_t buffer);

/* ---- Message transfer (paper Figure 2) ------------------------------------
 * Step 1: flipc_post_buffer   Step 2: flipc_send
 * Step 4: flipc_receive       Step 5: flipc_reclaim
 * The *_unlocked variants skip the endpoint's test-and-set lock for
 * single-threaded endpoints (the paper's optimized path); the *_blocking
 * variants need FLIPC_EP_BLOCKING and take a priority + timeout
 * (timeout_ns < 0 waits forever). */

flipc_status_t flipc_send(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                          flipc_buffer_t buffer, flipc_address_t dest);
flipc_status_t flipc_send_unlocked(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                   flipc_buffer_t buffer, flipc_address_t dest);

flipc_status_t flipc_post_buffer(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                 flipc_buffer_t buffer);

flipc_status_t flipc_receive(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                             flipc_buffer_t* out);
flipc_status_t flipc_receive_blocking(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                      uint32_t priority, int64_t timeout_ns,
                                      flipc_buffer_t* out);

flipc_status_t flipc_reclaim(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                             flipc_buffer_t* out);
flipc_status_t flipc_reclaim_blocking(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                      uint32_t priority, int64_t timeout_ns,
                                      flipc_buffer_t* out);

/* Human-readable status name ("OK", "UNAVAILABLE", ...). */
const char* flipc_status_name(flipc_status_t status);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* SRC_CAPI_FLIPC_C_H_ */
