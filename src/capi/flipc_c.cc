#include "src/capi/flipc_c.h"

#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/flipc/flipc.h"

struct flipc_cluster {
  std::unique_ptr<flipc::Cluster> impl;
  // Endpoint handles by (node, index); the C++ Endpoint is a value handle
  // but carries a Domain pointer, so we keep canonical copies here.
  std::mutex mutex;
  std::unordered_map<std::uint64_t, flipc::Endpoint> endpoints;
};

namespace {

using flipc::StatusCode;

flipc_status_t ToC(flipc::Status status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return FLIPC_OK;
    case StatusCode::kUnavailable:
      return FLIPC_UNAVAILABLE;
    case StatusCode::kInvalidArgument:
      return FLIPC_INVALID_ARGUMENT;
    case StatusCode::kResourceExhausted:
      return FLIPC_RESOURCE_EXHAUSTED;
    case StatusCode::kNotFound:
      return FLIPC_NOT_FOUND;
    case StatusCode::kFailedPrecondition:
      return FLIPC_FAILED_PRECONDITION;
    case StatusCode::kPermissionDenied:
      return FLIPC_PERMISSION_DENIED;
    case StatusCode::kTimedOut:
      return FLIPC_TIMED_OUT;
    case StatusCode::kInternal:
      return FLIPC_INTERNAL;
  }
  return FLIPC_INTERNAL;
}

std::uint64_t EndpointKey(flipc_endpoint_t endpoint) {
  return (static_cast<std::uint64_t>(endpoint.node) << 32) | endpoint.index;
}

// Looks up the canonical Endpoint for a C handle; null if unknown.
flipc::Endpoint* Lookup(flipc_cluster_t* cluster, flipc_endpoint_t endpoint) {
  std::lock_guard<std::mutex> guard(cluster->mutex);
  auto it = cluster->endpoints.find(EndpointKey(endpoint));
  return it == cluster->endpoints.end() ? nullptr : &it->second;
}

bool ValidNode(flipc_cluster_t* cluster, std::uint32_t node) {
  return cluster != nullptr && node < cluster->impl->node_count();
}

flipc_status_t BufferFromResult(std::uint32_t node,
                                flipc::Result<flipc::MessageBuffer> result,
                                flipc_buffer_t* out) {
  if (!result.ok()) {
    return ToC(result.status());
  }
  if (out != nullptr) {
    out->node = node;
    out->index = result->index();
  }
  return FLIPC_OK;
}

}  // namespace

extern "C" {

flipc_status_t flipc_cluster_create(uint32_t node_count, uint32_t message_size,
                                    uint32_t buffer_count, flipc_cluster_t** out) {
  if (out == nullptr || node_count == 0) {
    return FLIPC_INVALID_ARGUMENT;
  }
  flipc::Cluster::Options options;
  options.node_count = node_count;
  options.comm.message_size = message_size;
  options.comm.buffer_count = buffer_count == 0 ? 256 : buffer_count;
  auto cluster = flipc::Cluster::Create(options);
  if (!cluster.ok()) {
    return ToC(cluster.status());
  }
  auto* wrapper = new flipc_cluster;
  wrapper->impl = std::move(cluster).value();
  wrapper->impl->Start();
  *out = wrapper;
  return FLIPC_OK;
}

void flipc_cluster_destroy(flipc_cluster_t* cluster) {
  if (cluster != nullptr) {
    cluster->impl->Stop();
    delete cluster;
  }
}

flipc_status_t flipc_endpoint_create(flipc_cluster_t* cluster, uint32_t node,
                                     flipc_endpoint_type_t type, uint32_t queue_depth,
                                     uint32_t flags, flipc_endpoint_t* out) {
  if (!ValidNode(cluster, node) || out == nullptr) {
    return FLIPC_INVALID_ARGUMENT;
  }
  flipc::Domain::EndpointOptions options;
  options.type = type == FLIPC_ENDPOINT_SEND ? flipc::shm::EndpointType::kSend
                                             : flipc::shm::EndpointType::kReceive;
  options.queue_depth = queue_depth == 0 ? 16 : queue_depth;
  options.enable_semaphore = (flags & FLIPC_EP_BLOCKING) != 0;
  auto endpoint = cluster->impl->domain(node).CreateEndpoint(options);
  if (!endpoint.ok()) {
    return ToC(endpoint.status());
  }
  out->node = node;
  out->index = endpoint->index();
  std::lock_guard<std::mutex> guard(cluster->mutex);
  cluster->endpoints[EndpointKey(*out)] = *endpoint;
  return FLIPC_OK;
}

flipc_status_t flipc_endpoint_destroy(flipc_cluster_t* cluster, flipc_endpoint_t endpoint) {
  flipc::Endpoint* handle = Lookup(cluster, endpoint);
  if (handle == nullptr) {
    return FLIPC_NOT_FOUND;
  }
  const flipc_status_t status =
      ToC(cluster->impl->domain(endpoint.node).DestroyEndpoint(*handle));
  if (status == FLIPC_OK) {
    std::lock_guard<std::mutex> guard(cluster->mutex);
    cluster->endpoints.erase(EndpointKey(endpoint));
  }
  return status;
}

flipc_status_t flipc_endpoint_address(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                      flipc_address_t* out) {
  flipc::Endpoint* handle = Lookup(cluster, endpoint);
  if (handle == nullptr || out == nullptr) {
    return FLIPC_NOT_FOUND;
  }
  *out = handle->address().packed();
  return FLIPC_OK;
}

flipc_status_t flipc_drop_count(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                uint64_t* out) {
  flipc::Endpoint* handle = Lookup(cluster, endpoint);
  if (handle == nullptr || out == nullptr) {
    return FLIPC_NOT_FOUND;
  }
  *out = handle->DropCount();
  return FLIPC_OK;
}

flipc_status_t flipc_read_and_reset_drops(flipc_cluster_t* cluster,
                                          flipc_endpoint_t endpoint, uint64_t* out) {
  flipc::Endpoint* handle = Lookup(cluster, endpoint);
  if (handle == nullptr || out == nullptr) {
    return FLIPC_NOT_FOUND;
  }
  *out = handle->ReadAndResetDrops();
  return FLIPC_OK;
}

flipc_status_t flipc_buffer_allocate(flipc_cluster_t* cluster, uint32_t node,
                                     flipc_buffer_t* out) {
  if (!ValidNode(cluster, node) || out == nullptr) {
    return FLIPC_INVALID_ARGUMENT;
  }
  return BufferFromResult(node, cluster->impl->domain(node).AllocateBuffer(), out);
}

flipc_status_t flipc_buffer_free(flipc_cluster_t* cluster, flipc_buffer_t buffer) {
  if (!ValidNode(cluster, buffer.node)) {
    return FLIPC_INVALID_ARGUMENT;
  }
  flipc::Domain& domain = cluster->impl->domain(buffer.node);
  auto handle = domain.BufferFromIndex(buffer.index);
  if (!handle.ok()) {
    return ToC(handle.status());
  }
  return ToC(domain.FreeBuffer(*handle));
}

flipc_status_t flipc_buffer_data(flipc_cluster_t* cluster, flipc_buffer_t buffer,
                                 void** data, size_t* size) {
  if (!ValidNode(cluster, buffer.node) || data == nullptr || size == nullptr) {
    return FLIPC_INVALID_ARGUMENT;
  }
  auto handle = cluster->impl->domain(buffer.node).BufferFromIndex(buffer.index);
  if (!handle.ok()) {
    return ToC(handle.status());
  }
  *data = handle->data();
  *size = handle->size();
  return FLIPC_OK;
}

flipc_status_t flipc_buffer_peer(flipc_cluster_t* cluster, flipc_buffer_t buffer,
                                 flipc_address_t* out) {
  if (!ValidNode(cluster, buffer.node) || out == nullptr) {
    return FLIPC_INVALID_ARGUMENT;
  }
  auto handle = cluster->impl->domain(buffer.node).BufferFromIndex(buffer.index);
  if (!handle.ok()) {
    return ToC(handle.status());
  }
  *out = handle->peer().packed();
  return FLIPC_OK;
}

flipc_status_t flipc_buffer_completed(flipc_cluster_t* cluster, flipc_buffer_t buffer) {
  if (!ValidNode(cluster, buffer.node)) {
    return FLIPC_INVALID_ARGUMENT;
  }
  auto handle = cluster->impl->domain(buffer.node).BufferFromIndex(buffer.index);
  if (!handle.ok()) {
    return ToC(handle.status());
  }
  return handle->completed() ? FLIPC_OK : FLIPC_UNAVAILABLE;
}

flipc_status_t flipc_send(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                          flipc_buffer_t buffer, flipc_address_t dest) {
  flipc::Endpoint* handle = Lookup(cluster, endpoint);
  if (handle == nullptr) {
    return FLIPC_NOT_FOUND;
  }
  auto message = cluster->impl->domain(endpoint.node).BufferFromIndex(buffer.index);
  if (!message.ok()) {
    return ToC(message.status());
  }
  return ToC(handle->Send(*message, flipc::Address::FromPacked(dest)));
}

flipc_status_t flipc_send_unlocked(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                   flipc_buffer_t buffer, flipc_address_t dest) {
  flipc::Endpoint* handle = Lookup(cluster, endpoint);
  if (handle == nullptr) {
    return FLIPC_NOT_FOUND;
  }
  auto message = cluster->impl->domain(endpoint.node).BufferFromIndex(buffer.index);
  if (!message.ok()) {
    return ToC(message.status());
  }
  return ToC(handle->SendUnlocked(*message, flipc::Address::FromPacked(dest)));
}

flipc_status_t flipc_post_buffer(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                 flipc_buffer_t buffer) {
  flipc::Endpoint* handle = Lookup(cluster, endpoint);
  if (handle == nullptr) {
    return FLIPC_NOT_FOUND;
  }
  auto message = cluster->impl->domain(endpoint.node).BufferFromIndex(buffer.index);
  if (!message.ok()) {
    return ToC(message.status());
  }
  return ToC(handle->PostBuffer(*message));
}

flipc_status_t flipc_receive(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                             flipc_buffer_t* out) {
  flipc::Endpoint* handle = Lookup(cluster, endpoint);
  if (handle == nullptr) {
    return FLIPC_NOT_FOUND;
  }
  return BufferFromResult(endpoint.node, handle->Receive(), out);
}

flipc_status_t flipc_receive_blocking(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                      uint32_t priority, int64_t timeout_ns,
                                      flipc_buffer_t* out) {
  flipc::Endpoint* handle = Lookup(cluster, endpoint);
  if (handle == nullptr) {
    return FLIPC_NOT_FOUND;
  }
  return BufferFromResult(endpoint.node,
                          handle->ReceiveBlocking(priority, timeout_ns), out);
}

flipc_status_t flipc_reclaim(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                             flipc_buffer_t* out) {
  flipc::Endpoint* handle = Lookup(cluster, endpoint);
  if (handle == nullptr) {
    return FLIPC_NOT_FOUND;
  }
  return BufferFromResult(endpoint.node, handle->Reclaim(), out);
}

flipc_status_t flipc_reclaim_blocking(flipc_cluster_t* cluster, flipc_endpoint_t endpoint,
                                      uint32_t priority, int64_t timeout_ns,
                                      flipc_buffer_t* out) {
  flipc::Endpoint* handle = Lookup(cluster, endpoint);
  if (handle == nullptr) {
    return FLIPC_NOT_FOUND;
  }
  return BufferFromResult(endpoint.node,
                          handle->ReclaimBlocking(priority, timeout_ns), out);
}

const char* flipc_status_name(flipc_status_t status) {
  switch (status) {
    case FLIPC_OK:
      return "OK";
    case FLIPC_UNAVAILABLE:
      return "UNAVAILABLE";
    case FLIPC_INVALID_ARGUMENT:
      return "INVALID_ARGUMENT";
    case FLIPC_RESOURCE_EXHAUSTED:
      return "RESOURCE_EXHAUSTED";
    case FLIPC_NOT_FOUND:
      return "NOT_FOUND";
    case FLIPC_FAILED_PRECONDITION:
      return "FAILED_PRECONDITION";
    case FLIPC_PERMISSION_DENIED:
      return "PERMISSION_DENIED";
    case FLIPC_TIMED_OUT:
      return "TIMED_OUT";
    case FLIPC_INTERNAL:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // extern "C"
