// Single-writer shared cells.
//
// FLIPC's application<->engine synchronization must be wait-free and must
// work in a memory model with no atomic read-modify-write operations (the
// SCSI and Myrinet controllers the paper targets can only issue loads and
// stores to host memory). The design rule from the paper: separate or
// duplicate data so that the application and the messaging engine never
// concurrently write the same location. Every shared word therefore has
// exactly one writer, and plain atomic loads/stores with acquire/release
// ordering are sufficient.
//
// The paper's second tuning lesson — false sharing between app-written and
// engine-written words cost almost a factor of two — is encoded here as
// alignment: engine-written cells and app-written cells are placed on
// distinct cache lines by the communication-buffer layout (src/shm/).
#ifndef SRC_WAITFREE_SINGLE_WRITER_H_
#define SRC_WAITFREE_SINGLE_WRITER_H_

#include <atomic>
#include <type_traits>

#include "src/base/types.h"

namespace flipc::waitfree {

// Which side of the protection boundary owns (writes) a cell. Purely
// documentary at runtime; tests use it to assert the single-writer rule.
enum class Writer : std::uint8_t { kApplication, kEngine };

// A word written by one side and read by the other. Publish() makes all
// writes sequenced before it visible to a Read() that observes the value
// (release/acquire pairing).
template <typename T>
class SingleWriterCell {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SingleWriterCell() = default;
  explicit SingleWriterCell(T initial) : value_(initial) {}

  // Reader side.
  T Read() const { return value_.load(std::memory_order_acquire); }
  T ReadRelaxed() const { return value_.load(std::memory_order_relaxed); }

  // Writer side.
  void Publish(T value) { value_.store(value, std::memory_order_release); }
  void StoreRelaxed(T value) { value_.store(value, std::memory_order_relaxed); }

 private:
  std::atomic<T> value_{};
};

}  // namespace flipc::waitfree

#endif  // SRC_WAITFREE_SINGLE_WRITER_H_
