// Single-writer shared cells.
//
// FLIPC's application<->engine synchronization must be wait-free and must
// work in a memory model with no atomic read-modify-write operations (the
// SCSI and Myrinet controllers the paper targets can only issue loads and
// stores to host memory). The design rule from the paper: separate or
// duplicate data so that the application and the messaging engine never
// concurrently write the same location. Every shared word therefore has
// exactly one writer, and plain atomic loads/stores with acquire/release
// ordering are sufficient.
//
// The paper's second tuning lesson — false sharing between app-written and
// engine-written words cost almost a factor of two — is encoded here as
// alignment: engine-written cells and app-written cells are placed on
// distinct cache lines by the communication-buffer layout (src/shm/), and
// the layout is audited at compile time by src/shm/ownership_layout.h.
//
// The single-writer rule itself is enforced by the opt-in ownership race
// detector (src/waitfree/boundary_check.h, -DFLIPC_CHECK_SINGLE_WRITER=ON):
// cells are declared with their owning side, threads bind a boundary role,
// and every store verifies the two match. In the default build the hooks
// compile to nothing and a cell is exactly a std::atomic<T>.
#ifndef SRC_WAITFREE_SINGLE_WRITER_H_
#define SRC_WAITFREE_SINGLE_WRITER_H_

#include <atomic>
#include <type_traits>

#include "src/base/types.h"
#include "src/waitfree/boundary_check.h"

namespace flipc::waitfree {

// A word written by one side and read by the other. Publish() makes all
// writes sequenced before it visible to a Read() that observes the value
// (release/acquire pairing).
template <typename T>
class SingleWriterCell {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SingleWriterCell() = default;
  explicit SingleWriterCell(T initial) : value_(initial) {}

  // Registers this cell's owning side with the ownership race detector
  // (no-op unless FLIPC_CHECK_SINGLE_WRITER). The declaration lives in a
  // side table, never in the cell: the shared-memory layout must be
  // byte-identical with and without the checker.
  void DeclareOwner(Writer owner, const char* label) {
    DeclareCellOwner(this, owner, label);
  }

  // Shard-qualified declaration: engine-owned cells belonging to one shard
  // planner (per-shard doorbell head, handoff ring cursors) record the
  // owning shard so a wrong-shard engine write aborts too.
  void DeclareOwner(Writer owner, std::uint32_t shard, const char* label) {
    DeclareCellOwner(this, owner, shard, label);
  }

  // Reader side.
  T Read() const { return value_.load(std::memory_order_acquire); }
  T ReadRelaxed() const { return value_.load(std::memory_order_relaxed); }

  // Writer side.
  void Publish(T value) {
    CheckCellWrite(this);
    value_.store(value, std::memory_order_release);
  }
  void StoreRelaxed(T value) {
    CheckCellWrite(this);
    value_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<T> value_{};
};

static_assert(sizeof(SingleWriterCell<std::uint32_t>) == sizeof(std::uint32_t),
              "a cell must stay exactly its word: layouts are shared memory ABI");

}  // namespace flipc::waitfree

#endif  // SRC_WAITFREE_SINGLE_WRITER_H_
