#include "src/waitfree/boundary_check.h"

#include <cstdio>
#include <cstdlib>

#ifdef FLIPC_CHECK_SINGLE_WRITER
#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "src/base/hotpath.h"
#endif

namespace flipc::waitfree {

void BoundaryPanic(const char* message) {
  std::fprintf(stderr, "FLIPC protection-boundary violation: %s\n", message);
  std::fflush(stderr);
  std::abort();
}

#ifdef FLIPC_CHECK_SINGLE_WRITER

namespace {

struct CellOwnership {
  Writer owner;
  std::uint32_t shard;
  const char* label;
};

// Registry of declared cells. A side table (rather than a tag inside the
// cell) keeps the shared-memory layout identical to non-checking builds.
// Guarded by a shared mutex: checks take the shared lock, (un)declarations
// the exclusive one. This is a debug mode; the lock cost is accepted.
struct Registry {
  std::shared_mutex mutex;
  std::unordered_map<const void*, CellOwnership> cells;
};

// The registry is created lazily on the cold DeclareCellOwner path — never
// from a check — so that combining this checker with the hot-path guard
// (-DFLIPC_CHECK_HOT_PATH=ON) cannot abort on the checker's own bookkeeping:
// checks on the hot path only ever load-acquire the pointer and, until the
// first declaration, see null and return. Leaked on purpose: the registry
// outlives all threads.
std::atomic<Registry*> g_registry{nullptr};

Registry& GetOrCreateRegistry() {
  Registry* existing = g_registry.load(std::memory_order_acquire);
  if (existing != nullptr) {
    return *existing;
  }
  // Checker-internal allocation, off any armed hot-path scope by design
  // (declaration happens at endpoint setup, not send/receive).
  FLIPC_HOT_PATH_EXEMPT("single-writer checker bookkeeping");
  auto* fresh = new Registry();
  if (g_registry.compare_exchange_strong(existing, fresh, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
    return *fresh;
  }
  delete fresh;  // another declarer won the race
  return *existing;
}

Registry* PeekRegistry() { return g_registry.load(std::memory_order_acquire); }

struct ThreadBoundaryState {
  bool bound = false;
  Writer role = Writer::kApplication;
  std::uint32_t shard = kShardAny;
  int exempt_depth = 0;
};

ThreadBoundaryState& Tls() {
  thread_local ThreadBoundaryState state;
  return state;
}

}  // namespace

void DeclareCellOwner(const void* cell, Writer owner, const char* label) {
  DeclareCellOwner(cell, owner, kShardAny, label);
}

void DeclareCellOwner(const void* cell, Writer owner, std::uint32_t shard,
                      const char* label) {
  // Declarations happen at setup time, off the hot path; the registry (and
  // the map nodes inserted under the exclusive lock) are checker-internal.
  FLIPC_HOT_PATH_EXEMPT("single-writer checker bookkeeping");
  Registry& registry = GetOrCreateRegistry();
  std::unique_lock lock(registry.mutex);
  auto [it, inserted] =
      registry.cells.try_emplace(cell, CellOwnership{owner, shard, label});
  if (!inserted && it->second.owner != owner) {
    char message[256];
    std::snprintf(message, sizeof(message),
                  "conflicting ownership declaration for cell %p: registered as %s-owned "
                  "(%s), re-declared as %s-owned (%s)",
                  cell, WriterName(it->second.owner), it->second.label, WriterName(owner),
                  label);
    lock.unlock();
    BoundaryPanic(message);
  }
  it->second.shard = shard;
  it->second.label = label;
}

void UndeclareCellRange(const void* base, std::size_t size) {
  Registry* registry_ptr = PeekRegistry();
  if (registry_ptr == nullptr) {
    return;  // nothing was ever declared
  }
  FLIPC_HOT_PATH_EXEMPT("single-writer checker bookkeeping");
  const auto* begin = static_cast<const char*>(base);
  const auto* end = begin + size;
  Registry& registry = *registry_ptr;
  std::unique_lock lock(registry.mutex);
  for (auto it = registry.cells.begin(); it != registry.cells.end();) {
    const auto* addr = static_cast<const char*>(it->first);
    if (addr >= begin && addr < end) {
      it = registry.cells.erase(it);
    } else {
      ++it;
    }
  }
}

void CheckCellWrite(const void* cell) {
  const ThreadBoundaryState& state = Tls();
  if (!state.bound || state.exempt_depth > 0) {
    return;
  }
  Registry* registry_ptr = PeekRegistry();
  if (registry_ptr == nullptr) {
    return;  // nothing declared yet, nothing to check
  }
  Writer owner;
  std::uint32_t shard;
  const char* label;
  {
    // Checker-internal bookkeeping: the registry lookup takes the shared
    // lock, which is accepted debug-mode cost (this whole function compiles
    // out of product builds). The exemption keeps the hot-path guard — and
    // the static certifier's purity closure, which reaches this function
    // through SingleWriterCell::Publish — from charging the checker's own
    // lock to the protocol.
    FLIPC_HOT_PATH_EXEMPT("single-writer checker bookkeeping");
    Registry& registry = *registry_ptr;
    std::shared_lock lock(registry.mutex);
    const auto it = registry.cells.find(cell);
    if (it == registry.cells.end()) {
      return;  // Undeclared cells (test fixtures, message headers) are unchecked.
    }
    owner = it->second.owner;
    shard = it->second.shard;
    label = it->second.label;
  }
  if (owner != state.role) {
    char message[256];
    std::snprintf(message, sizeof(message),
                  "cell %p (%s) is owned by the %s but was written by a thread bound to "
                  "the %s role",
                  cell, label, WriterName(owner), WriterName(state.role));
    BoundaryPanic(message);
  }
  if (shard != kShardAny && state.shard != kShardAny && shard != state.shard) {
    char message[256];
    std::snprintf(message, sizeof(message),
                  "cell %p (%s) is owned by %s shard %u but was written by a thread "
                  "bound to shard %u",
                  cell, label, WriterName(owner), shard, state.shard);
    BoundaryPanic(message);
  }
}

void BoundaryRole::BindCurrentThread(Writer role, std::uint32_t shard) {
  ThreadBoundaryState& state = Tls();
  state.bound = true;
  state.role = role;
  state.shard = shard;
}

void BoundaryRole::UnbindCurrentThread() { Tls().bound = false; }

bool BoundaryRole::IsBound() { return Tls().bound; }

Writer BoundaryRole::Current() { return Tls().role; }

std::uint32_t BoundaryRole::CurrentShard() { return Tls().shard; }

ScopedBoundaryRole::ScopedBoundaryRole(Writer role, std::uint32_t shard) {
  ThreadBoundaryState& state = Tls();
  prev_bound_ = state.bound;
  prev_role_ = state.role;
  prev_shard_ = state.shard;
  state.bound = true;
  state.role = role;
  state.shard = shard;
}

ScopedBoundaryRole::~ScopedBoundaryRole() {
  ThreadBoundaryState& state = Tls();
  state.bound = prev_bound_;
  state.role = prev_role_;
  state.shard = prev_shard_;
}

ScopedBoundaryExemption::ScopedBoundaryExemption() { ++Tls().exempt_depth; }

ScopedBoundaryExemption::~ScopedBoundaryExemption() { --Tls().exempt_depth; }

void CheckHandoffStore(const void* cell, std::uint32_t state_value) {
  const ThreadBoundaryState& state = Tls();
  if (!state.bound || state.exempt_depth > 0) {
    return;
  }
  // MsgState underlying values: 0 = kFree, 1 = kReady, 2 = kCompleted
  // (src/waitfree/msg_state.h). Ownership of the state field alternates with
  // the buffer's queue position, so the invariant checkable per store is the
  // transition direction: only the engine completes, only the application
  // frees or readies.
  constexpr std::uint32_t kCompleted = 2;
  const bool engine_only = state_value == kCompleted;
  const bool is_engine = state.role == Writer::kEngine;
  if (engine_only != is_engine) {
    char message[256];
    std::snprintf(message, sizeof(message),
                  "handoff state %p: value %u may only be stored by the %s, but the "
                  "writing thread is bound to the %s role",
                  cell, state_value, engine_only ? "engine" : "application",
                  WriterName(state.role));
    BoundaryPanic(message);
  }
}

#endif  // FLIPC_CHECK_SINGLE_WRITER

}  // namespace flipc::waitfree
