// The dual-location wait-free drop counter (paper, "Wait-Free
// Synchronization" section).
//
// FLIPC counts messages discarded at an endpoint and lets the application
// read-and-reset that count without losing events. A single location cannot
// do this with loads/stores only: a drop between the application's read and
// its zeroing write would vanish. Instead:
//
//   * `dropped`   — incremented by the messaging engine on each discard
//                   (engine-written, on an engine-owned cache line);
//   * `reclaimed` — the value of `dropped` as of the last read-and-reset
//                   (application-written, on an app-owned cache line).
//
// The logical count is dropped - reclaimed; reset copies dropped into
// reclaimed. Each word has exactly one writer, so no drop event can be lost
// regardless of interleaving.
#ifndef SRC_WAITFREE_DROP_COUNTER_H_
#define SRC_WAITFREE_DROP_COUNTER_H_

#include <cstdint>

#include "src/base/hotpath.h"
#include "src/waitfree/single_writer.h"

namespace flipc::waitfree {

class DropCounter {
 public:
  DropCounter() {
    dropped_.DeclareOwner(Writer::kEngine, "DropCounter.dropped");
    reclaimed_.DeclareOwner(Writer::kApplication, "DropCounter.reclaimed");
  }
  ~DropCounter() { UndeclareCellRange(this, sizeof(*this)); }

  // --- Engine side ---------------------------------------------------------
  // Records one discarded message. Engine is the only caller, so a plain
  // load/store increment is race-free.
  FLIPC_ROLE_ENGINE void RecordDrop() {
    FLIPC_HOT_PATH("DropCounter::RecordDrop");
    dropped_.Publish(dropped_.ReadRelaxed() + 1);
  }

  // --- Application side ----------------------------------------------------
  // Number of drops since the last ReadAndReset().
  std::uint64_t Count() const { return dropped_.Read() - reclaimed_.ReadRelaxed(); }

  // Atomically (in the logical sense) returns the current count and resets
  // it to zero. Drops that race with this call are counted either in this
  // result or in a later one — never lost, never double-counted.
  FLIPC_ROLE_APP std::uint64_t ReadAndReset() {
    FLIPC_HOT_PATH("DropCounter::ReadAndReset");
    const std::uint64_t observed = dropped_.Read();
    const std::uint64_t prior = reclaimed_.ReadRelaxed();
    reclaimed_.Publish(observed);
    return observed - prior;
  }

  // Total drops over the endpoint's lifetime (monotone; not reset).
  std::uint64_t LifetimeCount() const { return dropped_.Read(); }

 private:
  SingleWriterCell<std::uint64_t> dropped_;    // Writer::kEngine
  SingleWriterCell<std::uint64_t> reclaimed_;  // Writer::kApplication
};

// Cache-line-separated wrapper used when the counter is embedded directly in
// the communication buffer: the engine-written and app-written words must
// not share a line (paper's false-sharing fix).
struct PaddedDropCounterParts {
  alignas(kCacheLineSize) SingleWriterCell<std::uint64_t> dropped;    // engine line
  alignas(kCacheLineSize) SingleWriterCell<std::uint64_t> reclaimed;  // app line

  // Registers both halves with the ownership race detector (no-op unless
  // FLIPC_CHECK_SINGLE_WRITER). A method rather than a constructor so the
  // struct stays an aggregate for in-region placement.
  void DeclareOwners() {
    dropped.DeclareOwner(Writer::kEngine, "PaddedDropCounterParts.dropped");
    reclaimed.DeclareOwner(Writer::kApplication, "PaddedDropCounterParts.reclaimed");
  }

  FLIPC_ROLE_ENGINE void RecordDrop() {
    FLIPC_HOT_PATH("PaddedDropCounterParts::RecordDrop");
    dropped.Publish(dropped.ReadRelaxed() + 1);
  }
  std::uint64_t Count() const { return dropped.Read() - reclaimed.ReadRelaxed(); }
  FLIPC_ROLE_APP std::uint64_t ReadAndReset() {
    FLIPC_HOT_PATH("PaddedDropCounterParts::ReadAndReset");
    const std::uint64_t observed = dropped.Read();
    const std::uint64_t prior = reclaimed.ReadRelaxed();
    reclaimed.Publish(observed);
    return observed - prior;
  }
};

}  // namespace flipc::waitfree

#endif  // SRC_WAITFREE_DROP_COUNTER_H_
