// The single-writer protection boundary and its opt-in race detector.
//
// FLIPC's correctness rests on a discipline the paper states but ordinary
// tooling cannot verify: every shared word in the communication buffer has
// exactly one writer — the application library or the messaging engine —
// and the two sides' words never share a cache line. ThreadSanitizer is
// blind to violations of the first rule, because both sides use atomic
// stores: a both-sides-write bug is a protocol corruption, not a data race
// in the C++ memory model.
//
// This component makes the rule machine-checkable. It has two halves:
//
//  1. A *cell ownership registry*: components declare, per shared word,
//     which side of the boundary owns (writes) it. Declarations live in a
//     side table keyed by cell address — NOT inside the cell — so the
//     communication-buffer layout is byte-identical whether the checker is
//     compiled in or not (the region is shared memory; its ABI must not
//     depend on a debug flag).
//
//  2. A *thread role binding*: a thread states which side of the boundary
//     it is executing as (`BoundaryRole::BindCurrentThread(Writer)` for
//     engine threads, `ScopedBoundaryRole` around application-library call
//     bodies). Every SingleWriterCell store then verifies that the calling
//     thread's role matches the cell's declared owner, and aborts with the
//     cell address, its label, the declared owner, and the offending role.
//
// Threads with no bound role are unchecked: allocation paths, tests and
// tools may legitimately touch both sides while the system is quiescent.
// `ScopedBoundaryExemption` marks the few in-protocol spots that reset the
// other side's words while an endpoint is provably inactive.
//
// Everything here compiles to nothing unless FLIPC_CHECK_SINGLE_WRITER is
// defined (CMake: -DFLIPC_CHECK_SINGLE_WRITER=ON). The checking build is a
// test configuration; the zero-cost default build is the product.
#ifndef SRC_WAITFREE_BOUNDARY_CHECK_H_
#define SRC_WAITFREE_BOUNDARY_CHECK_H_

#include <cstddef>
#include <cstdint>

namespace flipc::waitfree {

// Which side of the protection boundary owns (writes) a cell.
enum class Writer : std::uint8_t { kApplication, kEngine };

constexpr const char* WriterName(Writer w) {
  return w == Writer::kApplication ? "application" : "engine";
}

// Shard qualifier for engine-owned cells. With the sharded engine (one
// planner per endpoint range), "the engine writes this cell" refines to
// "engine shard S writes this cell": a cell may be declared with a specific
// shard, and an engine thread binds the shard it plans for. kShardAny keeps
// the legacy two-role behavior — unqualified declarations match any shard,
// unqualified engine threads match any cell.
inline constexpr std::uint32_t kShardAny = 0xffffffffu;

// Prints `message` prefixed with "FLIPC protection-boundary violation" to
// stderr and aborts. Used by the ownership checker and by protocol asserts
// in checking mode; defined unconditionally so headers can call it.
[[noreturn]] void BoundaryPanic(const char* message);

#ifdef FLIPC_CHECK_SINGLE_WRITER
inline constexpr bool kBoundaryCheckEnabled = true;

// --- Cell ownership registry (checking mode) -------------------------------

// Declares that `cell` is written only by `owner`. Idempotent for the same
// owner; a conflicting re-declaration aborts (two components disagree about
// the boundary). `label` should name the field, e.g. "EndpointRecord.process_count".
void DeclareCellOwner(const void* cell, Writer owner, const char* label);

// Shard-qualified declaration: additionally records which engine shard owns
// the cell. Only meaningful for engine-owned cells; a thread bound to a
// specific other shard that writes the cell aborts. kShardAny behaves like
// the unqualified overload.
void DeclareCellOwner(const void* cell, Writer owner, std::uint32_t shard,
                      const char* label);

// Removes declarations for every cell in [base, base + size): call when the
// memory holding declared cells is released or reformatted, so a later
// unrelated object at the same address does not inherit stale ownership.
void UndeclareCellRange(const void* base, std::size_t size);

// Verifies the calling thread may write `cell`: no-op if the thread has no
// bound role, is inside a ScopedBoundaryExemption, or the cell was never
// declared; aborts on an ownership mismatch.
void CheckCellWrite(const void* cell);

// --- Thread role binding (checking mode) -----------------------------------

struct BoundaryRole {
  // Binds the calling thread to one side of the boundary for its lifetime
  // (or until Unbind). Engine threads bind kEngine at startup; shard
  // planners pass their shard id so writes to another shard's cells abort.
  static void BindCurrentThread(Writer role, std::uint32_t shard = kShardAny);
  static void UnbindCurrentThread();
  // Whether the calling thread currently has a bound role, and which.
  static bool IsBound();
  static Writer Current();       // Only meaningful when IsBound().
  static std::uint32_t CurrentShard();  // Only meaningful when IsBound().
};

// Binds a role for a scope, saving and restoring the previous binding, so
// single-threaded drivers (simulation tests, the model checker) can play
// both sides from one thread.
class ScopedBoundaryRole {
 public:
  explicit ScopedBoundaryRole(Writer role, std::uint32_t shard = kShardAny);
  ~ScopedBoundaryRole();
  ScopedBoundaryRole(const ScopedBoundaryRole&) = delete;
  ScopedBoundaryRole& operator=(const ScopedBoundaryRole&) = delete;

 private:
  bool prev_bound_;
  Writer prev_role_;
  std::uint32_t prev_shard_;
};

// Suspends ownership checking for a scope. For quiescent-state writes that
// are safe despite crossing the boundary (e.g. endpoint allocation resets
// the engine's cursors before publishing the endpoint as live). Nests.
class ScopedBoundaryExemption {
 public:
  ScopedBoundaryExemption();
  ~ScopedBoundaryExemption();
  ScopedBoundaryExemption(const ScopedBoundaryExemption&) = delete;
  ScopedBoundaryExemption& operator=(const ScopedBoundaryExemption&) = delete;
};

// Verifies a HandoffState transition (msg_state.h): the engine only ever
// marks buffers completed; the application only marks them free or ready.
// `state_value` is the MsgState about to be stored, as its underlying value.
void CheckHandoffStore(const void* cell, std::uint32_t state_value);

#else  // !FLIPC_CHECK_SINGLE_WRITER

inline constexpr bool kBoundaryCheckEnabled = false;

inline void DeclareCellOwner(const void*, Writer, const char*) {}
inline void DeclareCellOwner(const void*, Writer, std::uint32_t, const char*) {}
inline void UndeclareCellRange(const void*, std::size_t) {}
inline void CheckCellWrite(const void*) {}

struct BoundaryRole {
  static void BindCurrentThread(Writer, std::uint32_t = kShardAny) {}
  static void UnbindCurrentThread() {}
  static bool IsBound() { return false; }
  static Writer Current() { return Writer::kApplication; }
  static std::uint32_t CurrentShard() { return kShardAny; }
};

class ScopedBoundaryRole {
 public:
  explicit ScopedBoundaryRole(Writer, std::uint32_t = kShardAny) {}
  ScopedBoundaryRole(const ScopedBoundaryRole&) = delete;
  ScopedBoundaryRole& operator=(const ScopedBoundaryRole&) = delete;
};

class ScopedBoundaryExemption {
 public:
  ScopedBoundaryExemption() {}
  ScopedBoundaryExemption(const ScopedBoundaryExemption&) = delete;
  ScopedBoundaryExemption& operator=(const ScopedBoundaryExemption&) = delete;
};

inline void CheckHandoffStore(const void*, std::uint32_t) {}

#endif  // FLIPC_CHECK_SINGLE_WRITER

}  // namespace flipc::waitfree

#endif  // SRC_WAITFREE_BOUNDARY_CHECK_H_
