// Per-buffer state field (paper Figure 3: "Each buffer also contains a state
// field that is changed when processing has been completed, allowing an
// application to determine when processing of a specific buffer is
// complete.")
//
// The field has two writers — the application (marking a buffer ready when it
// releases it) and the engine (marking it completed) — but never
// concurrently: ownership alternates with the buffer's position relative to
// the queue cursors, and every handoff is ordered by an acquire/release
// cursor publication. The store/load pairs here add the same ordering for
// applications that poll the state field directly instead of the queue.
#ifndef SRC_WAITFREE_MSG_STATE_H_
#define SRC_WAITFREE_MSG_STATE_H_

#include <atomic>
#include <cstdint>

#include "src/waitfree/boundary_check.h"

namespace flipc::waitfree {

enum class MsgState : std::uint32_t {
  // Owned by the application: free for writing / not enqueued.
  kFree = 0,
  // Released to the engine: queued for sending (send endpoint) or posted to
  // receive into (receive endpoint).
  kReady = 1,
  // Engine finished: message sent, or message data delivered into buffer.
  kCompleted = 2,
};

class HandoffState {
 public:
  MsgState Load() const {
    return static_cast<MsgState>(rep_.load(std::memory_order_acquire));
  }

  void Store(MsgState s) {
    // Ownership of this field alternates with the buffer's queue position,
    // so the race detector cannot pin it to one side. What IS invariant is
    // the transition direction: only the engine completes a buffer, only
    // the application frees or readies one. Checking mode verifies that.
    CheckHandoffStore(this, static_cast<std::uint32_t>(s));
    rep_.store(static_cast<std::uint32_t>(s), std::memory_order_release);
  }

  // Polling helper: true once the engine has completed processing.
  bool IsCompleted() const { return Load() == MsgState::kCompleted; }

 private:
  std::atomic<std::uint32_t> rep_{static_cast<std::uint32_t>(MsgState::kFree)};
};

}  // namespace flipc::waitfree

#endif  // SRC_WAITFREE_MSG_STATE_H_
