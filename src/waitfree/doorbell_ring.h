// The doorbell ring: a wait-free MPSC ring of endpoint indices that lets
// the messaging engine schedule O(active) instead of sweeping every
// endpoint slot in the communication buffer.
//
// The paper's engine "examines endpoints in the communication buffer for
// messages to send" — a full scan whose cost grows with *configured*
// endpoints. The doorbell ring inverts that: every application send
// release appends ("rings") its endpoint index, and the engine consumes
// indices instead of sweeping. Doorbells are HINTS, not the source of
// truth: the queue cursors remain authoritative, duplicates are harmless
// (the engine dedups against its active set), and a lost doorbell is
// recovered by the engine's periodic backstop sweep. That tolerance is
// what keeps both sides wait-free within the single-writer discipline:
//
//   * Ring cells are written only by the application (at ring time) —
//     SingleWriterCells registered app-owned with the race detector.
//   * ring_head is written only by the engine; ring_tail and the overflow
//     signal only by the application.
//   * The only read-modify-write is the application-side slot claim
//     (ring_tail fetch_add) — mutual exclusion among application threads,
//     which the paper permits (cf. the endpoint TasLock); the ENGINE still
//     performs loads and stores only, as its controllers require.
//
// Slot validity is carried inside the cell value, not by a consumer-written
// flag (the engine may not write cells): each cell packs a lap tag with the
// endpoint index. The consumer accepts a cell only when its tag matches the
// lap expected at the head position, so an unpublished or stale slot reads
// as empty, and a slot overwritten by a producer that lapped the ring reads
// as "future" — the consumer skips it (that doorbell is lost; the backstop
// sweep covers it) rather than stalling.
//
// When the ring is full the producer does NOT spin (sends must stay
// wait-free): it bumps the overflow signal instead, and the engine answers
// a pending overflow with a full sweep. Liveness therefore never depends on
// ring capacity.
#ifndef SRC_WAITFREE_DOORBELL_RING_H_
#define SRC_WAITFREE_DOORBELL_RING_H_

#include <atomic>
#include <cstdint>

#include "src/base/hotpath.h"
#include "src/base/types.h"
#include "src/waitfree/boundary_check.h"
#include "src/waitfree/single_writer.h"

namespace flipc::waitfree {

// Returned by Pop() when no published doorbell is pending.
inline constexpr std::uint32_t kInvalidDoorbell = 0xffffffffu;

// Cursor block, one cache line per writer (the false-sharing rule applies
// to the ring exactly as to the endpoint queues).
struct alignas(kCacheLineSize) DoorbellCursors {
  // --- Application-owned line ---
  // Free-running producer position. Plain atomic (not a SingleWriterCell):
  // the fetch_add slot claim is mutual exclusion among application threads;
  // the engine only reads it.
  std::atomic<std::uint32_t> ring_tail{0};
  // Bumped when a producer finds the ring full; the engine answers a
  // mismatch against overflow_seen with a backstop sweep. A lossy signal,
  // not a counter: one sweep covers any number of coincident overflows.
  SingleWriterCell<std::uint32_t> overflow_rung;

  // --- Engine-owned line ---
  alignas(kCacheLineSize) SingleWriterCell<std::uint32_t> ring_head;
  SingleWriterCell<std::uint32_t> overflow_seen;

  // Registers the cursors with the ownership race detector (no-op unless
  // FLIPC_CHECK_SINGLE_WRITER). ring_tail is an RMW word, outside the
  // single-writer registry by design — like the endpoint TasLock.
  void DeclareOwners() {
    overflow_rung.DeclareOwner(Writer::kApplication, "DoorbellCursors.overflow_rung");
    ring_head.DeclareOwner(Writer::kEngine, "DoorbellCursors.ring_head");
    overflow_seen.DeclareOwner(Writer::kEngine, "DoorbellCursors.overflow_seen");
  }
};
static_assert(sizeof(DoorbellCursors) == 2 * kCacheLineSize);

// Non-owning view over cursors + a cell array living in the communication
// buffer. Capacity must be a power of two (>= 2).
class DoorbellRingView {
 public:
  DoorbellRingView() = default;
  DoorbellRingView(DoorbellCursors* cursors, SingleWriterCell<std::uint64_t>* cells,
                   std::uint32_t capacity)
      : cursors_(cursors), cells_(cells), mask_(capacity - 1), capacity_(capacity) {
    while ((capacity >>= 1) != 0) {
      ++shift_;
    }
  }

  bool valid() const { return cursors_ != nullptr; }
  std::uint32_t capacity() const { return capacity_; }

  // ======================= Application side ================================

  // Rings the doorbell for `endpoint`. Returns false when the ring was full
  // — the overflow signal has been raised instead, so the engine will sweep;
  // the caller proceeds exactly as on success (doorbells are hints).
  bool Ring(std::uint32_t endpoint) {
    FLIPC_HOT_PATH("DoorbellRingView::Ring");
    const std::uint32_t head = cursors_->ring_head.ReadRelaxed();
    if (cursors_->ring_tail.load(std::memory_order_relaxed) - head >= capacity_) {
      // Full: raise the overflow signal rather than spin. Concurrent
      // producers may collapse increments — acceptable, the signal is
      // level-triggered (any mismatch causes one covering sweep).
      cursors_->overflow_rung.Publish(cursors_->overflow_rung.ReadRelaxed() + 1);
      return false;
    }
    const std::uint32_t pos = cursors_->ring_tail.fetch_add(1, std::memory_order_relaxed);
    // If concurrent producers overshot the soft-full check above, this store
    // overwrites a not-yet-consumed slot from the previous lap. The consumer
    // detects the future tag and skips the slot; the overwritten doorbell is
    // lost, which the backstop sweep tolerates.
    cells_[pos & mask_].Publish(MakeCell(pos, endpoint));
    return true;
  }

  // =========================== Engine side =================================

  // Consumes the next published doorbell, or returns kInvalidDoorbell when
  // none is pending. Wait-free: loads and stores only.
  std::uint32_t Pop() {
    FLIPC_HOT_PATH("DoorbellRingView::Pop");
    // The skip-lapped-slots loop is bounded: each iteration advances
    // ring_head past a lapped slot, and at most one full lap of slots can be
    // stale (plus slack for producers racing ahead while we consume).
    FLIPC_HOT_PATH_LOOP_BUDGET(budget, "DoorbellRingView::Pop",
                               2 * static_cast<std::uint64_t>(capacity_) + 64);
    FLIPC_BOUNDED_BY(2 * capacity_ + 64);
    for (;;) {
      FLIPC_HOT_PATH_LOOP_STEP(budget);
      const std::uint32_t head = cursors_->ring_head.ReadRelaxed();
      // Acquire pairs with the producer's Publish: observing the matching
      // tag also orders the producer's earlier queue-cursor publication.
      const std::uint64_t cell = cells_[head & mask_].Read();
      const std::uint32_t tag = static_cast<std::uint32_t>(cell >> 32);
      const std::uint32_t expected = ExpectedTag(head);
      if (tag == expected) {
        cursors_->ring_head.Publish(head + 1);
        return static_cast<std::uint32_t>(cell);
      }
      if (static_cast<std::int32_t>(tag - expected) > 0) {
        // A producer lapped this slot: its original doorbell was
        // overwritten. Skip it (lost doorbells are backstop-swept) so the
        // ring self-heals instead of wedging.
        cursors_->ring_head.Publish(head + 1);
        continue;
      }
      return kInvalidDoorbell;  // Unpublished or stale: ring empty here.
    }
  }

  // True when a published doorbell is waiting at the head.
  bool HasPending() const {
    const std::uint32_t head = cursors_->ring_head.ReadRelaxed();
    const std::uint32_t tag =
        static_cast<std::uint32_t>(cells_[head & mask_].Read() >> 32);
    return static_cast<std::int32_t>(tag - ExpectedTag(head)) >= 0;
  }

  // True when a producer reported a full ring the engine has not yet
  // answered with a sweep.
  bool OverflowPending() const {
    return cursors_->overflow_rung.Read() != cursors_->overflow_seen.ReadRelaxed();
  }

  // Acknowledges the overflow signal; call before the covering sweep so a
  // signal raised during the sweep is not lost.
  void AckOverflow() {
    cursors_->overflow_seen.Publish(cursors_->overflow_rung.Read());
  }

  // ==================== Quiescent recovery =================================

  // Fast-forwards the consume cursor to the producers' current position and
  // acknowledges any outstanding overflow signal. Crash-recovery entry
  // point (MessagingEngine::RecoverFromBuffer): doorbells are hints, and
  // hints published before the engine died refer to work the recovery
  // sweep rediscovers from the authoritative queue cursors — consuming
  // them one by one would re-schedule that same work more slowly.
  //
  // Quiescent on the ENGINE side only: no planner may be consuming this
  // ring, but application producers may keep ringing concurrently (a
  // mid-traffic restart). ring_head stays single-writer (the recovering
  // thread is the only engine-side writer), and a doorbell published
  // between the tail read and the head store is skipped — exactly the
  // lost-doorbell case the backstop sweep already tolerates.
  FLIPC_ROLE_QUIESCENT void ResetConsumerQuiescent() {
    cursors_->ring_head.StoreRelaxed(
        cursors_->ring_tail.load(std::memory_order_relaxed));
    cursors_->overflow_seen.StoreRelaxed(cursors_->overflow_rung.Read());
  }

  // ==================== Introspection (either side) ========================

  std::uint32_t PendingCount() const {
    return cursors_->ring_tail.load(std::memory_order_relaxed) -
           cursors_->ring_head.Read();
  }

 private:
  // Lap tag for position `pos`: lap number + 1, so a zero-initialized cell
  // (tag 0) never matches any expected tag. Positions and tags both wrap
  // mod 2^32; the wrap-aware comparison in Pop() keeps ordering coherent
  // (the once-per-2^32-rings tag discontinuity at worst loses one ring of
  // doorbells to the backstop sweep).
  std::uint32_t ExpectedTag(std::uint32_t pos) const { return (pos >> shift_) + 1; }

  std::uint64_t MakeCell(std::uint32_t pos, std::uint32_t endpoint) const {
    return (static_cast<std::uint64_t>(ExpectedTag(pos)) << 32) | endpoint;
  }

  DoorbellCursors* cursors_ = nullptr;
  SingleWriterCell<std::uint64_t>* cells_ = nullptr;
  std::uint32_t mask_ = 0;
  std::uint32_t capacity_ = 0;
  std::uint32_t shift_ = 0;
};

// Owning ring for unit tests and the model checker; the production ring
// lives in the communication buffer (src/shm/comm_buffer.h).
template <std::uint32_t kCapacity>
class InlineDoorbellRing {
  static_assert(kCapacity >= 2 && (kCapacity & (kCapacity - 1)) == 0,
                "capacity must be a power of two");

 public:
  InlineDoorbellRing() : view_(&cursors_, cells_, kCapacity) {
    cursors_.DeclareOwners();
    for (std::uint32_t i = 0; i < kCapacity; ++i) {
      // Ring cells are written only at ring time, by the application.
      cells_[i].DeclareOwner(Writer::kApplication, "InlineDoorbellRing.cells");
    }
  }

  ~InlineDoorbellRing() {
    // The detector keys declarations by address; drop them before the heap
    // can hand this storage to an unrelated object.
    UndeclareCellRange(this, sizeof(*this));
  }

  DoorbellRingView& view() { return view_; }

 private:
  DoorbellCursors cursors_{};
  SingleWriterCell<std::uint64_t> cells_[kCapacity] = {};
  DoorbellRingView view_;
};

}  // namespace flipc::waitfree

#endif  // SRC_WAITFREE_DOORBELL_RING_H_
