// The engine-to-engine handoff ring: a wait-free SPSC ring that moves
// cross-shard work between shard planners.
//
// With the sharded engine (DESIGN.md §12) each planner owns one endpoint
// range. Inbound packets all arrive at the distributor shard (the one shard
// that polls the node's wire, preserving the fabric's per-(src,dst) FIFO
// order), and packets destined for another shard's endpoints are handed off
// through one of these rings — one ring per consumer shard, with the
// distributor as the only producer.
//
// The ring reuses the doorbell ring's lap-tag idiom (doorbell_ring.h): slot
// validity is carried by a producer-published tag cell per slot, never by a
// consumer-written flag, so every shared word keeps exactly one writer:
//
//   * handoff_tail and the slot tags are written only by the PRODUCER shard;
//   * handoff_head is written only by the CONSUMER shard;
//   * the two cursors live on separate cache lines (the false-sharing rule
//     applies across shards exactly as it does across the app/engine
//     boundary).
//
// Unlike the MPSC doorbell ring there is no RMW anywhere: with a single
// producer the slot claim is a plain private counter, so both sides are
// loads and stores only — the engine-side discipline the paper's controllers
// require. And unlike doorbells, handoff entries are not hints: a packet in
// the ring is the only copy of that message. Push therefore reports a full
// ring to the caller instead of dropping, and the distributor parks the
// packet and stalls wire polling until the consumer drains a slot (bounded
// memory, order preserved, liveness restored by the consumer's progress —
// see MessagingEngine's route-retry path).
//
// Both sides run under the shard-qualified engine role
// (FLIPC_ROLE_ENGINE_SHARD): statically they are engine-side writers; at run
// time the cells are declared with their owning shard id, so a planner that
// writes another shard's cursor aborts under FLIPC_CHECK_SINGLE_WRITER.
#ifndef SRC_WAITFREE_HANDOFF_RING_H_
#define SRC_WAITFREE_HANDOFF_RING_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/hotpath.h"
#include "src/base/types.h"
#include "src/waitfree/boundary_check.h"
#include "src/waitfree/single_writer.h"

namespace flipc::waitfree {

// Cursor block, one cache line per writing shard.
struct alignas(kCacheLineSize) HandoffCursors {
  // --- Producer-shard line ---
  // Published producer position (introspection / PendingCount). The
  // producer's authoritative position is its private counter; this cell
  // mirrors it for readers.
  SingleWriterCell<std::uint32_t> handoff_tail;

  // --- Consumer-shard line ---
  alignas(kCacheLineSize) SingleWriterCell<std::uint32_t> handoff_head;

  // Registers the cursors with the ownership race detector, qualified by
  // the owning shards (no-op unless FLIPC_CHECK_SINGLE_WRITER).
  void DeclareOwners(std::uint32_t producer_shard, std::uint32_t consumer_shard) {
    handoff_tail.DeclareOwner(Writer::kEngine, producer_shard,
                              "HandoffCursors.handoff_tail");
    handoff_head.DeclareOwner(Writer::kEngine, consumer_shard,
                              "HandoffCursors.handoff_head");
  }
};
static_assert(sizeof(HandoffCursors) == 2 * kCacheLineSize);

// Owning SPSC handoff ring carrying T by move. T must be cheap to move and
// moved-from-empty (the engine instantiates it with simnet::Packet, whose
// payload vector moves without allocating). Capacity is rounded up to a
// power of two. The ring lives in engine host memory — unlike the comm
// buffer it never crosses the app boundary — so owning std::vector storage
// is fine; construction is off the hot path.
template <typename T>
class SpscHandoffRing {
 public:
  explicit SpscHandoffRing(std::uint32_t capacity,
                           std::uint32_t producer_shard = kShardAny,
                           std::uint32_t consumer_shard = kShardAny) {
    std::uint32_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    capacity_ = cap;
    mask_ = cap - 1;
    while ((cap >>= 1) != 0) {
      ++shift_;
    }
    slots_.resize(capacity_);
    // Cells are neither copyable nor movable (they wrap an atomic), so the
    // tag array is a value-initialized unique_ptr array rather than a
    // vector. Zeroed tags: lap tag 0 never matches.
    tags_ = std::make_unique<SingleWriterCell<std::uint32_t>[]>(capacity_);
    cursors_.DeclareOwners(producer_shard, consumer_shard);
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      tags_[i].DeclareOwner(Writer::kEngine, producer_shard, "HandoffRing.slot_tags");
    }
  }

  ~SpscHandoffRing() {
    // Declarations are keyed by address; drop them before the heap reuses
    // this storage.
    UndeclareCellRange(&cursors_, sizeof(cursors_));
    UndeclareCellRange(tags_.get(), capacity_ * sizeof(tags_[0]));
  }

  SpscHandoffRing(const SpscHandoffRing&) = delete;
  SpscHandoffRing& operator=(const SpscHandoffRing&) = delete;

  std::uint32_t capacity() const { return capacity_; }

  // ====================== Producer shard only ==============================

  // Pushes `value` into the ring, or returns false (value untouched) when
  // the ring is full. Wait-free: one bounded attempt, loads and stores only.
  FLIPC_ROLE_ENGINE_SHARD bool Push(T& value) {
    FLIPC_HOT_PATH("SpscHandoffRing::Push");
    const std::uint32_t pos = tail_pos_;
    // Acquire pairs with the consumer's head Publish: observing the
    // advanced head also orders the consumer's move-out of the slot this
    // push is about to overwrite.
    if (pos - cursors_.handoff_head.Read() >= capacity_) {
      return false;
    }
    slots_[pos & mask_] = std::move(value);
    // Release-publishing the tag makes the slot contents visible to the
    // consumer; the tail mirror is for introspection only.
    tags_[pos & mask_].Publish(ExpectedTag(pos));
    tail_pos_ = pos + 1;
    cursors_.handoff_tail.Publish(tail_pos_);
    return true;
  }

  // ====================== Consumer shard only ==============================

  // Moves the next entry into `*out` and returns true, or returns false
  // when the ring is empty. Wait-free: loads and stores only.
  FLIPC_ROLE_ENGINE_SHARD bool Pop(T* out) {
    FLIPC_HOT_PATH("SpscHandoffRing::Pop");
    const std::uint32_t head = cursors_.handoff_head.ReadRelaxed();
    // Acquire pairs with the producer's tag Publish (orders the slot data).
    if (tags_[head & mask_].Read() != ExpectedTag(head)) {
      return false;  // Slot not yet published for this lap: ring empty.
    }
    *out = std::move(slots_[head & mask_]);
    // Release-publishing the head returns the slot to the producer and
    // orders the move-out above before any producer reuse.
    cursors_.handoff_head.Publish(head + 1);
    return true;
  }

  // True when a published entry is waiting at the head (consumer-accurate;
  // other readers see a racy hint).
  bool HasPending() const {
    const std::uint32_t head = cursors_.handoff_head.ReadRelaxed();
    return tags_[head & mask_].Read() == ExpectedTag(head);
  }

  // ==================== Introspection (either side) ========================

  std::uint32_t PendingCount() const {
    return cursors_.handoff_tail.Read() - cursors_.handoff_head.Read();
  }

 private:
  // Lap tag for position `pos`: lap number + 1, so a zero-initialized tag
  // never matches any expected tag (same construction as the doorbell
  // ring's cell tags).
  std::uint32_t ExpectedTag(std::uint32_t pos) const { return (pos >> shift_) + 1; }

  HandoffCursors cursors_{};
  std::vector<T> slots_;
  std::unique_ptr<SingleWriterCell<std::uint32_t>[]> tags_;
  // Producer-private position; the shared handoff_tail cell mirrors it.
  std::uint32_t tail_pos_ = 0;
  std::uint32_t mask_ = 0;
  std::uint32_t capacity_ = 0;
  std::uint32_t shift_ = 0;
};

}  // namespace flipc::waitfree

#endif  // SRC_WAITFREE_HANDOFF_RING_H_
