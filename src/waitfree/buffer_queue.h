// The endpoint buffer queue (paper Figure 3).
//
// Each endpoint holds a circular queue of buffer pointers (here: 32-bit
// buffer indices into the communication buffer) with three cursors moving in
// one direction around the ring:
//
//     release (head)  — application inserts buffers for the engine;
//     process (middle)— engine sends-from / receives-into these buffers;
//     acquire (tail)  — application removes buffers the engine finished.
//
// Cursor ownership follows the single-writer rule: release and acquire are
// written only by the application, process only by the engine. Cell values
// are written only by the application (at release time); the engine
// communicates per-buffer completion through the buffer's state field, not
// the queue cells. The queue is therefore wait-free on both sides with plain
// acquire/release loads and stores — no RMW, matching the paper's controller
// memory model.
//
// Cursors are free-running 32-bit counters; a cursor's ring position is
// counter % capacity (capacity is a power of two). The paper's conditions
// map directly: queue empty <=> all three counters equal; nothing to process
// <=> process == release; nothing to acquire <=> acquire == process.
// Unlike the paper's cell-pointer formulation this wastes no ring slot.
#ifndef SRC_WAITFREE_BUFFER_QUEUE_H_
#define SRC_WAITFREE_BUFFER_QUEUE_H_

#include <atomic>
#include <cstdint>
#ifdef FLIPC_CHECK_SINGLE_WRITER
#include <cstdio>
#endif

#include "src/base/hotpath.h"
#include "src/base/types.h"
#include "src/waitfree/single_writer.h"

namespace flipc::waitfree {

// Index of a message buffer within a communication buffer's buffer table.
using BufferIndex = std::uint32_t;
inline constexpr BufferIndex kInvalidBuffer = 0xffffffffu;

// Cursor block, laid out so application-written and engine-written words
// never share a cache line (the paper's false-sharing fix; it was worth
// almost a factor of two in latency on the Paragon).
struct alignas(kCacheLineSize) QueueCursors {
  // --- Application-owned line ---
  SingleWriterCell<std::uint32_t> release_count;  // Writer::kApplication
  SingleWriterCell<std::uint32_t> acquire_count;  // Writer::kApplication
  // --- Engine-owned line ---
  alignas(kCacheLineSize) SingleWriterCell<std::uint32_t> process_count;  // Writer::kEngine

  // Registers each cursor with the ownership race detector (no-op unless
  // FLIPC_CHECK_SINGLE_WRITER).
  void DeclareOwners() {
    release_count.DeclareOwner(Writer::kApplication, "QueueCursors.release_count");
    acquire_count.DeclareOwner(Writer::kApplication, "QueueCursors.acquire_count");
    process_count.DeclareOwner(Writer::kEngine, "QueueCursors.process_count");
  }
};
static_assert(sizeof(QueueCursors) == 2 * kCacheLineSize);

// Non-owning view over cursors + a cell array living in the communication
// buffer. Capacity must be a power of two.
//
// The cursor cells are passed individually (rather than as a QueueCursors*)
// because the communication-buffer endpoint record interleaves them with
// other same-writer fields to pack each writer's state into one cache line.
class BufferQueueView {
 public:
  BufferQueueView() = default;
  BufferQueueView(SingleWriterCell<std::uint32_t>* release,
                  SingleWriterCell<std::uint32_t>* acquire,
                  SingleWriterCell<std::uint32_t>* process,
                  SingleWriterCell<BufferIndex>* cells, std::uint32_t capacity)
      : release_(release),
        acquire_(acquire),
        process_(process),
        cells_(cells),
        mask_(capacity - 1),
        capacity_(capacity) {}

  BufferQueueView(QueueCursors* cursors, SingleWriterCell<BufferIndex>* cells,
                  std::uint32_t capacity)
      : BufferQueueView(&cursors->release_count, &cursors->acquire_count,
                        &cursors->process_count, cells, capacity) {}

  bool valid() const { return release_ != nullptr; }
  std::uint32_t capacity() const { return capacity_; }

  // ======================= Application side ================================

  // Inserts `buffer` at the head. Returns false when the ring is full
  // (the application has released `capacity` buffers it has not yet
  // re-acquired).
  bool Release(BufferIndex buffer) {
    FLIPC_HOT_PATH("BufferQueueView::Release");
    const std::uint32_t release = release_->ReadRelaxed();
    const std::uint32_t acquire = acquire_->ReadRelaxed();
    if (release - acquire >= capacity_) {
      return false;
    }
    // The cell must be visible before the cursor that publishes it.
    cells_[release & mask_].StoreRelaxed(buffer);
    release_->Publish(release + 1);
    return true;
  }

  // Removes the buffer at the tail if the engine has finished processing
  // it. Returns kInvalidBuffer when none is available.
  BufferIndex Acquire() {
    FLIPC_HOT_PATH("BufferQueueView::Acquire");
    const std::uint32_t acquire = acquire_->ReadRelaxed();
    const std::uint32_t process = process_->Read();
    if (acquire == process) {
      return kInvalidBuffer;
    }
    // The application wrote this cell itself at release time; the engine
    // never writes cells, so a relaxed load suffices (the acquire-load of
    // process_count ordered the engine's buffer-content writes).
    const BufferIndex buffer = cells_[acquire & mask_].ReadRelaxed();
    acquire_->Publish(acquire + 1);
    return buffer;
  }

  // Buffers inserted but not yet acquired back.
  std::uint32_t Size() const {
    return release_->ReadRelaxed() - acquire_->ReadRelaxed();
  }

  // Buffers the engine has completed that the application can take now.
  std::uint32_t AcquirableCount() const {
    return process_->Read() - acquire_->ReadRelaxed();
  }

  bool Empty() const { return Size() == 0; }
  bool Full() const { return Size() >= capacity_; }

  // ========================== Engine side ==================================

  // Returns the next unprocessed buffer without consuming it, or
  // kInvalidBuffer when the application has released nothing new.
  BufferIndex PeekProcess() const {
    const std::uint32_t process = process_->ReadRelaxed();
    const std::uint32_t release = release_->Read();
    if (process == release) {
      return kInvalidBuffer;
    }
    return cells_[process & mask_].ReadRelaxed();
  }

  // Marks the peeked buffer processed, exposing it to Acquire(). All engine
  // writes to the buffer contents must precede this call, and a preceding
  // PeekProcess() (or ProcessableCount() > 0) must have confirmed there is a
  // released buffer to consume: advancing past the release cursor would
  // expose an unwritten cell to Acquire().
  void AdvanceProcess() {
    FLIPC_HOT_PATH("BufferQueueView::AdvanceProcess");
    const std::uint32_t process = process_->ReadRelaxed();
#ifdef FLIPC_CHECK_SINGLE_WRITER
    if (process == release_->Read()) {
      char message[160];
      std::snprintf(message, sizeof(message),
                    "AdvanceProcess() without a released buffer to consume "
                    "(process=%u release=%u): PeekProcess() was skipped or returned "
                    "kInvalidBuffer on an empty queue",
                    process, release_->Read());
      BoundaryPanic(message);
    }
#endif
    process_->Publish(process + 1);
  }

  // Buffers released by the application the engine has not yet processed.
  std::uint32_t ProcessableCount() const {
    return release_->Read() - process_->ReadRelaxed();
  }

  // ==================== Introspection (either side) =========================

  std::uint32_t release_count() const { return release_->Read(); }
  std::uint32_t process_count() const { return process_->Read(); }
  std::uint32_t acquire_count() const { return acquire_->Read(); }

 private:
  SingleWriterCell<std::uint32_t>* release_ = nullptr;
  SingleWriterCell<std::uint32_t>* acquire_ = nullptr;
  SingleWriterCell<std::uint32_t>* process_ = nullptr;
  SingleWriterCell<BufferIndex>* cells_ = nullptr;

  std::uint32_t mask_ = 0;
  std::uint32_t capacity_ = 0;
};

// Owning queue for unit tests and microbenchmarks; production queues live in
// the communication buffer (src/shm/comm_buffer.h).
template <std::uint32_t kCapacity>
class InlineBufferQueue {
  static_assert((kCapacity & (kCapacity - 1)) == 0, "capacity must be a power of two");

 public:
  InlineBufferQueue() : view_(&cursors_, cells_, kCapacity) {
    cursors_.DeclareOwners();
    for (std::uint32_t i = 0; i < kCapacity; ++i) {
      // Queue cells are written only at release time, by the application.
      cells_[i].DeclareOwner(Writer::kApplication, "InlineBufferQueue.cells");
    }
  }

  ~InlineBufferQueue() {
    // The detector keys declarations by address; drop them before the heap
    // can hand this storage to an unrelated object.
    UndeclareCellRange(this, sizeof(*this));
  }

  BufferQueueView& view() { return view_; }

 private:
  QueueCursors cursors_{};
  SingleWriterCell<BufferIndex> cells_[kCapacity] = {};
  BufferQueueView view_;
};

}  // namespace flipc::waitfree

#endif  // SRC_WAITFREE_BUFFER_QUEUE_H_
