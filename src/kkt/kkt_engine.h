// KKT-backed FLIPC messaging engine.
//
// The paper's development strategy: before the native Paragon engine
// existed, FLIPC ran over the Kernel-to-Kernel Transport (KKT), a kernel
// RPC interface shared with other OSF projects. "This interface is not a
// good match to the one way messages used by FLIPC because KKT uses an RPC
// to deliver each message. On the other hand, this was very effective for
// development purposes" — the platform-independent pieces (application
// library, communication buffer) were debugged on PC clusters and moved to
// the Paragon in under a week.
//
// This engine demonstrates exactly that: it reuses MessagingEngine's entire
// communication-buffer machinery and only replaces transmission. Every
// FLIPC message becomes a KKT RPC:
//
//   request  (payload + destination address)  ->  remote kernel
//   remote kernel delivers via the normal optimistic rule, then
//   response (token)                          ->  send completes
//
// A send endpoint admits one RPC in flight at a time (the process cursor
// cannot pass an unacknowledged message without breaking the ordered-
// delivery guarantee), which is the structural reason KKT FLIPC is slow —
// reproduced by experiment E8.
#ifndef SRC_KKT_KKT_ENGINE_H_
#define SRC_KKT_KKT_ENGINE_H_

#include <cstdint>
#include <unordered_map>

#include "src/engine/messaging_engine.h"
#include "src/engine/platform_model.h"

namespace flipc::kkt {

// Packet.kind values for the KKT protocol.
inline constexpr std::uint32_t kKktRequest = 1;
inline constexpr std::uint32_t kKktResponse = 2;

class KktMessagingEngine final : public engine::MessagingEngine {
 public:
  KktMessagingEngine(shm::CommBuffer& comm, simnet::Wire& wire, engine::EngineOptions options,
                     const engine::PlatformModel* model = nullptr,
                     const engine::KktModel* kkt_model = nullptr,
                     simos::SemaphoreTable* semaphores = nullptr);
  ~KktMessagingEngine() override;

  std::uint64_t rpcs_sent() const { return rpcs_sent_; }
  std::uint64_t rpcs_served() const { return rpcs_served_; }

 protected:
  void TransmitMessage(std::uint32_t endpoint_index, waitfree::BufferIndex buffer, Address src,
                       Address dst, simnet::CostAccumulator& cost) override;

  bool EndpointBlocked(std::uint32_t endpoint_index) const override;
  DurationNs TransmitPlanCost() const override { return kkt_model_.rpc_send_ns; }

 private:
  class KktHandler;

  void HandleKktPacket(simnet::Packet packet, simnet::CostAccumulator& cost);

  const engine::KktModel kkt_model_;
  std::unique_ptr<KktHandler> handler_;

  // Send endpoints with an unacknowledged RPC: endpoint -> token.
  std::unordered_map<std::uint32_t, std::uint64_t> in_flight_;
  std::uint64_t next_token_ = 1;
  std::uint64_t rpcs_sent_ = 0;
  std::uint64_t rpcs_served_ = 0;
};

}  // namespace flipc::kkt

#endif  // SRC_KKT_KKT_ENGINE_H_
