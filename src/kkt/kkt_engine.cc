#include "src/kkt/kkt_engine.h"

#include <utility>

#include "src/base/hotpath.h"
#include "src/base/log.h"

namespace flipc::kkt {

// Inbound KKT traffic arrives through the engine's protocol framework.
class KktMessagingEngine::KktHandler final : public engine::ProtocolHandler {
 public:
  explicit KktHandler(KktMessagingEngine& owner) : owner_(owner) {}

  void HandlePacket(simnet::Packet packet, simnet::CostAccumulator& cost) override {
    owner_.HandleKktPacket(std::move(packet), cost);
  }

  bool PollWork(simnet::CostAccumulator&) override { return false; }

  // Requests pay the kernel receive path plus reply generation; responses
  // pay completion handling. Priced at plan time so delivery and send
  // completion land after the kernel work, not before.
  DurationNs PlanCost(const simnet::Packet& packet) const override {
    if (packet.kind == kKktRequest) {
      return owner_.kkt_model_.rpc_recv_ns + owner_.kkt_model_.ack_ns;
    }
    return owner_.kkt_model_.ack_ns;
  }

 private:
  KktMessagingEngine& owner_;
};

KktMessagingEngine::KktMessagingEngine(shm::CommBuffer& comm, simnet::Wire& wire,
                                       engine::EngineOptions options,
                                       const engine::PlatformModel* model,
                                       const engine::KktModel* kkt_model,
                                       simos::SemaphoreTable* semaphores)
    : MessagingEngine(comm, wire, options, model, semaphores),
      kkt_model_(kkt_model != nullptr ? *kkt_model : engine::KktModel{}),
      handler_(std::make_unique<KktHandler>(*this)) {
  // The handler is owned by this object; registration cannot fail for the
  // KKT protocol id on a freshly constructed engine.
  (void)RegisterProtocol(simnet::kProtocolKkt, handler_.get());
}

KktMessagingEngine::~KktMessagingEngine() = default;

bool KktMessagingEngine::EndpointBlocked(std::uint32_t endpoint_index) const {
  return in_flight_.find(endpoint_index) != in_flight_.end();
}

void KktMessagingEngine::TransmitMessage(std::uint32_t endpoint_index,
                                         waitfree::BufferIndex buffer, Address src, Address dst,
                                         simnet::CostAccumulator& cost) {
  // KKT is the development transport: an RPC (marshal + kernel send) per
  // message is the paper's documented mismatch with FLIPC, not part of the
  // wait-free path — the batched commit may reach this from an armed scope.
  FLIPC_HOT_PATH_EXEMPT("KKT development transport: RPC per message");
  shm::MsgView view = comm().msg(buffer);

  simnet::Packet request;
  request.dst_node = dst.node();
  request.protocol = simnet::kProtocolKkt;
  request.kind = kKktRequest;
  request.src_addr = src.packed();
  request.dst_addr = dst.packed();
  const std::uint64_t token = next_token_++;
  request.seq = token;
  request.payload.assign(view.payload, view.payload + view.payload_size);

  if (!wire().Send(std::move(request)).ok()) {
    ++stats_.drops_bad_address;
    CompleteSend(endpoint_index);
    return;
  }
  ++rpcs_sent_;
  in_flight_.emplace(endpoint_index, token);
  (void)cost;  // Transmission cost is priced at plan time (TransmitPlanCost).
  // Completion is deferred until the response arrives; the endpoint is
  // blocked (stop-and-wait) meanwhile.
}

void KktMessagingEngine::HandleKktPacket(simnet::Packet packet, simnet::CostAccumulator& cost) {
  if (packet.kind == kKktRequest) {
    // Deliver under the normal optimistic rule (drop without a posted
    // buffer), then acknowledge the RPC either way: KKT reports transport
    // completion, not application acceptance. Costs were priced at plan
    // time via KktHandler::PlanCost.
    DeliverLocal(packet, cost);
    ++rpcs_served_;

    simnet::Packet response;
    response.dst_node = packet.src_node;
    response.protocol = simnet::kProtocolKkt;
    response.kind = kKktResponse;
    response.dst_addr = packet.src_addr;
    response.seq = packet.seq;
    if (!wire().Send(std::move(response)).ok()) {
      FLIPC_LOG(kWarning) << "kkt: failed to ack request from node " << packet.src_node;
    }
    return;
  }

  if (packet.kind == kKktResponse) {
    const Address src = Address::FromPacked(packet.dst_addr);
    const std::uint32_t endpoint_index = src.endpoint();
    auto it = in_flight_.find(endpoint_index);
    if (it == in_flight_.end() || it->second != packet.seq) {
      FLIPC_LOG(kWarning) << "kkt: stray response token " << packet.seq;
      return;
    }
    in_flight_.erase(it);
    ++stats_.messages_sent;
    CompleteSend(endpoint_index);
    return;
  }

  FLIPC_LOG(kWarning) << "kkt: unknown packet kind " << packet.kind;
}

}  // namespace flipc::kkt
