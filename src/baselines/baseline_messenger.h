// Comparison-system models: NX, Paragon Active Messages, SUNMOS.
//
// The paper compares FLIPC's 120-byte latency (16.2 us) against NX (46 us),
// PAM (26 us) and SUNMOS (28 us), and their large-message bandwidths
// (NX > 140 MB/s, SUNMOS ~ 160 MB/s) against FLIPC's fixed-size messages.
// These classes implement the *structure* of each protocol as discrete-event
// programs over the same simulated fabric FLIPC uses — kernel traps and
// copies for NX, 20-byte handler-dispatched packets for PAM, one giant
// packet per message for SUNMOS — with per-operation costs calibrated to
// the published end-to-end numbers. Who wins where (the crossovers) then
// emerges from the protocol structure, not from hard-coded answers.
#ifndef SRC_BASELINES_BASELINE_MESSENGER_H_
#define SRC_BASELINES_BASELINE_MESSENGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/types.h"
#include "src/simnet/des.h"
#include "src/simnet/fabric.h"
#include "src/simnet/link_model.h"

namespace flipc::baselines {

// Chassis: per-node CPU timelines plus a dedicated fabric. Subclasses
// implement the wire protocol in OnPacket/StartSend.
class BaselineMessenger {
 public:
  BaselineMessenger(simnet::Simulator& sim, std::uint32_t node_count,
                    std::unique_ptr<simnet::LinkModel> link_model);
  virtual ~BaselineMessenger();
  BaselineMessenger(const BaselineMessenger&) = delete;
  BaselineMessenger& operator=(const BaselineMessenger&) = delete;

  virtual std::string_view name() const = 0;

  // Moves `bytes` of application payload from src to dst; `on_complete`
  // fires at the virtual time the receiving *application* has the data.
  void Send(NodeId src, NodeId dst, std::size_t bytes, std::function<void()> on_complete);

  simnet::SimFabric& fabric() { return *fabric_; }
  simnet::Simulator& sim() { return sim_; }

 protected:
  struct TransferState {
    NodeId src = 0;
    NodeId dst = 0;
    std::size_t bytes = 0;
    std::size_t remaining_packets = 0;
    std::function<void()> on_complete;
  };

  virtual void StartSend(std::uint64_t token, TransferState& transfer) = 0;
  virtual void OnPacket(NodeId at, simnet::Packet packet) = 0;

  // Occupies node n's CPU for `cost`, then runs `then` (serialized per
  // node: concurrent work queues behind).
  void ChargeCpu(NodeId n, DurationNs cost, std::function<void()> then);

  // Sends a protocol packet carrying `wire_bytes` of data.
  void Transmit(NodeId src, NodeId dst, std::uint32_t kind, std::uint64_t token,
                std::size_t wire_bytes);

  TransferState* transfer(std::uint64_t token);
  void CompleteTransfer(std::uint64_t token);

 private:
  void DrainInbox(NodeId node);

  simnet::Simulator& sim_;
  std::unique_ptr<simnet::SimFabric> fabric_;
  std::vector<TimeNs> cpu_free_at_;
  std::unordered_map<std::uint64_t, TransferState> transfers_;
  std::uint64_t next_token_ = 1;
};

// ---------------------------------------------------------------------------
// NX (paper [11], Paragon O/S R1.3.2): kernel-mediated send/receive with a
// copy on each side; eager protocol for small messages, rendezvous with
// DMA fragments for large ones. 120 B latency ~46 us; >140 MB/s for
// sufficiently large messages.
class NxMessenger final : public BaselineMessenger {
 public:
  struct Costs {
    DurationNs trap_ns = 7'000;            // user->kernel entry, sender
    DurationNs send_kernel_ns = 12'000;    // kernel send path
    DurationNs recv_interrupt_ns = 8'000;  // receive interrupt + dispatch
    DurationNs recv_kernel_ns = 12'000;    // kernel receive path + wakeup
    DurationNs copy_per_byte_x100 = 2'500; // 25 ns/B memcpy each side (eager)
    std::size_t eager_threshold = 8 * 1024;
    std::size_t fragment_bytes = 4 * 1024; // rendezvous DMA fragment
    DurationNs fragment_cpu_ns = 29'200;   // per-fragment kernel cost (~140 MB/s)
    DurationNs rendezvous_ns = 15'000;     // request/grant handling each side
  };

  NxMessenger(simnet::Simulator& sim, std::uint32_t node_count,
              std::unique_ptr<simnet::LinkModel> link_model)
      : NxMessenger(sim, node_count, std::move(link_model), Costs()) {}
  NxMessenger(simnet::Simulator& sim, std::uint32_t node_count,
              std::unique_ptr<simnet::LinkModel> link_model, Costs costs);
  std::string_view name() const override { return "NX"; }

 protected:
  void StartSend(std::uint64_t token, TransferState& transfer) override;
  void OnPacket(NodeId at, simnet::Packet packet) override;

 private:
  enum PacketKind : std::uint32_t { kEager = 1, kRndvRequest, kRndvGrant, kRndvData };
  void SendFragments(std::uint64_t token, TransferState& transfer);

  Costs costs_;
};

// ---------------------------------------------------------------------------
// Paragon Active Messages (paper [2]): 28-byte packets carrying 20 bytes of
// application data, delivered to a handler; messages above one packet are
// fragmented, and each packet costs a handler dispatch at the receiver.
// 20 B latency < 10 us; 120 B ~26 us. A complementary bulk-transport path
// does remote memory writes at near hardware rate after an RPC setup.
class PamMessenger final : public BaselineMessenger {
 public:
  struct Costs {
    std::size_t packet_payload = 20;
    DurationNs send_fixed_ns = 3'000;      // injection path, first packet
    DurationNs send_per_packet_ns = 1'400;
    DurationNs handler_dispatch_ns = 3'300;// per packet at the receiver
    DurationNs recv_fixed_ns = 1'800;      // final handler -> application
    std::size_t bulk_threshold = 1024;     // use the bulk path above this
    DurationNs bulk_setup_ns = 19'000;     // RPC to arrange remote write
    DurationNs bulk_per_byte_x100 = 520;   // 5.2 ns/B, near hardware rate
  };

  PamMessenger(simnet::Simulator& sim, std::uint32_t node_count,
               std::unique_ptr<simnet::LinkModel> link_model)
      : PamMessenger(sim, node_count, std::move(link_model), Costs()) {}
  PamMessenger(simnet::Simulator& sim, std::uint32_t node_count,
               std::unique_ptr<simnet::LinkModel> link_model, Costs costs);
  std::string_view name() const override { return "PAM"; }

 protected:
  void StartSend(std::uint64_t token, TransferState& transfer) override;
  void OnPacket(NodeId at, simnet::Packet packet) override;

 private:
  enum PacketKind : std::uint32_t { kFragment = 1, kBulkData };

  Costs costs_;
};

// ---------------------------------------------------------------------------
// SUNMOS (paper [21][12]): single-application OS that sends each message as
// ONE packet, however large — approaching 160 MB/s for multi-megabyte
// messages but occupying the interconnect path for the whole duration
// (the paper's real-time responsiveness complaint). 120 B ~28 us; zero-
// length messages specially optimized.
class SunmosMessenger final : public BaselineMessenger {
 public:
  struct Costs {
    DurationNs send_fixed_ns = 12'000;
    DurationNs recv_fixed_ns = 15'100;
    DurationNs zero_len_send_ns = 7'000;   // optimized zero-length path
    DurationNs zero_len_recv_ns = 8'000;
    DurationNs recv_copy_per_byte_x100 = 125;  // 1.25 ns/B into user memory
  };

  SunmosMessenger(simnet::Simulator& sim, std::uint32_t node_count,
                  std::unique_ptr<simnet::LinkModel> link_model)
      : SunmosMessenger(sim, node_count, std::move(link_model), Costs()) {}
  SunmosMessenger(simnet::Simulator& sim, std::uint32_t node_count,
                  std::unique_ptr<simnet::LinkModel> link_model, Costs costs);
  std::string_view name() const override { return "SUNMOS"; }

 protected:
  void StartSend(std::uint64_t token, TransferState& transfer) override;
  void OnPacket(NodeId at, simnet::Packet packet) override;

 private:
  Costs costs_;
};

}  // namespace flipc::baselines

#endif  // SRC_BASELINES_BASELINE_MESSENGER_H_
