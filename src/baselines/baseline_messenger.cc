#include "src/baselines/baseline_messenger.h"

#include <utility>

#include "src/base/log.h"
#include "src/simnet/packet.h"

namespace flipc::baselines {

// ============================ BaselineMessenger =============================

BaselineMessenger::BaselineMessenger(simnet::Simulator& sim, std::uint32_t node_count,
                                     std::unique_ptr<simnet::LinkModel> link_model)
    : sim_(sim), cpu_free_at_(node_count, 0) {
  fabric_ = std::make_unique<simnet::SimFabric>(sim, std::move(link_model), node_count);
  for (NodeId n = 0; n < node_count; ++n) {
    fabric_->SetDeliveryCallback(n, [this, n] { DrainInbox(n); });
  }
}

BaselineMessenger::~BaselineMessenger() = default;

void BaselineMessenger::Send(NodeId src, NodeId dst, std::size_t bytes,
                             std::function<void()> on_complete) {
  const std::uint64_t token = next_token_++;
  TransferState& state = transfers_[token];
  state.src = src;
  state.dst = dst;
  state.bytes = bytes;
  state.on_complete = std::move(on_complete);
  StartSend(token, state);
}

void BaselineMessenger::ChargeCpu(NodeId n, DurationNs cost, std::function<void()> then) {
  const TimeNs start = cpu_free_at_[n] > sim_.Now() ? cpu_free_at_[n] : sim_.Now();
  cpu_free_at_[n] = start + cost;
  sim_.ScheduleAt(cpu_free_at_[n], std::move(then));
}

void BaselineMessenger::Transmit(NodeId src, NodeId dst, std::uint32_t kind,
                                 std::uint64_t token, std::size_t wire_bytes) {
  simnet::Packet packet;
  packet.dst_node = dst;
  packet.protocol = simnet::kProtocolBaseline;
  packet.kind = kind;
  packet.seq = token;
  packet.payload.resize(wire_bytes);
  if (!fabric_->wire(src).Send(std::move(packet)).ok()) {
    FLIPC_LOG(kWarning) << name() << ": transmit to unknown node " << dst;
  }
}

BaselineMessenger::TransferState* BaselineMessenger::transfer(std::uint64_t token) {
  auto it = transfers_.find(token);
  return it == transfers_.end() ? nullptr : &it->second;
}

void BaselineMessenger::CompleteTransfer(std::uint64_t token) {
  auto it = transfers_.find(token);
  if (it == transfers_.end()) {
    return;
  }
  std::function<void()> done = std::move(it->second.on_complete);
  transfers_.erase(it);
  if (done) {
    done();
  }
}

void BaselineMessenger::DrainInbox(NodeId node) {
  simnet::Packet packet;
  while (fabric_->wire(node).Poll(&packet)) {
    OnPacket(node, std::move(packet));
  }
}

// ================================== NX ======================================

NxMessenger::NxMessenger(simnet::Simulator& sim, std::uint32_t node_count,
                         std::unique_ptr<simnet::LinkModel> link_model, Costs costs)
    : BaselineMessenger(sim, node_count, std::move(link_model)), costs_(costs) {}

void NxMessenger::StartSend(std::uint64_t token, TransferState& state) {
  const NodeId src = state.src;
  const NodeId dst = state.dst;
  const std::size_t bytes = state.bytes;

  if (bytes <= costs_.eager_threshold) {
    // Eager: trap, kernel send path, copy out, one (fragmented-in-kernel)
    // transfer on the wire.
    const DurationNs cpu = costs_.trap_ns + costs_.send_kernel_ns +
                           static_cast<DurationNs>(bytes) * costs_.copy_per_byte_x100 / 100;
    ChargeCpu(src, cpu, [this, token, src, dst, bytes] {
      Transmit(src, dst, kEager, token, bytes);
    });
    return;
  }
  // Rendezvous: request -> grant -> DMA fragments.
  ChargeCpu(src, costs_.trap_ns + costs_.send_kernel_ns, [this, token, src, dst] {
    Transmit(src, dst, kRndvRequest, token, 32);
  });
}

void NxMessenger::SendFragments(std::uint64_t token, TransferState& state) {
  const NodeId src = state.src;
  const NodeId dst = state.dst;
  std::size_t remaining = state.bytes;
  state.remaining_packets = (state.bytes + costs_.fragment_bytes - 1) / costs_.fragment_bytes;
  while (remaining > 0) {
    const std::size_t chunk =
        remaining < costs_.fragment_bytes ? remaining : costs_.fragment_bytes;
    remaining -= chunk;
    // ChargeCpu serializes per node, so fragments pace at fragment_cpu_ns.
    ChargeCpu(src, costs_.fragment_cpu_ns, [this, token, src, dst, chunk] {
      Transmit(src, dst, kRndvData, token, chunk);
    });
  }
}

void NxMessenger::OnPacket(NodeId at, simnet::Packet packet) {
  TransferState* state = transfer(packet.seq);
  if (state == nullptr) {
    return;
  }
  const std::uint64_t token = packet.seq;

  switch (packet.kind) {
    case kEager: {
      const DurationNs cpu =
          costs_.recv_interrupt_ns + costs_.recv_kernel_ns +
          static_cast<DurationNs>(state->bytes) * costs_.copy_per_byte_x100 / 100;
      ChargeCpu(at, cpu, [this, token] { CompleteTransfer(token); });
      return;
    }
    case kRndvRequest: {
      const NodeId src = state->src;
      ChargeCpu(at, costs_.rendezvous_ns, [this, token, at, src] {
        Transmit(at, src, kRndvGrant, token, 32);
      });
      return;
    }
    case kRndvGrant: {
      ChargeCpu(at, costs_.rendezvous_ns, [this, token] {
        if (TransferState* s = transfer(token)) {
          SendFragments(token, *s);
        }
      });
      return;
    }
    case kRndvData: {
      // Light per-fragment receive handling; DMA lands in user memory.
      ChargeCpu(at, 2'000, [this, token] {
        TransferState* s = transfer(token);
        if (s == nullptr) {
          return;
        }
        if (--s->remaining_packets == 0) {
          const NodeId dst = s->dst;
          ChargeCpu(dst, costs_.recv_kernel_ns, [this, token] { CompleteTransfer(token); });
        }
      });
      return;
    }
    default:
      return;
  }
}

// ================================== PAM =====================================

PamMessenger::PamMessenger(simnet::Simulator& sim, std::uint32_t node_count,
                           std::unique_ptr<simnet::LinkModel> link_model, Costs costs)
    : BaselineMessenger(sim, node_count, std::move(link_model)), costs_(costs) {}

void PamMessenger::StartSend(std::uint64_t token, TransferState& state) {
  const NodeId src = state.src;
  const NodeId dst = state.dst;

  if (state.bytes > costs_.bulk_threshold) {
    // Bulk transport: an RPC arranges a remote write, then the data streams
    // at near hardware rate with no per-packet handler.
    const DurationNs cpu =
        costs_.bulk_setup_ns +
        static_cast<DurationNs>(state.bytes) * costs_.bulk_per_byte_x100 / 100;
    state.remaining_packets = 1;
    ChargeCpu(src, cpu, [this, token, src, dst, bytes = state.bytes] {
      Transmit(src, dst, kBulkData, token, bytes);
    });
    return;
  }

  std::size_t packets = (state.bytes + costs_.packet_payload - 1) / costs_.packet_payload;
  if (packets == 0) {
    packets = 1;
  }
  state.remaining_packets = packets;
  for (std::size_t i = 0; i < packets; ++i) {
    const DurationNs cpu =
        (i == 0 ? costs_.send_fixed_ns : 0) + costs_.send_per_packet_ns;
    ChargeCpu(src, cpu, [this, token, src, dst] {
      Transmit(src, dst, kFragment, token, costs_.packet_payload + 8);
    });
  }
}

void PamMessenger::OnPacket(NodeId at, simnet::Packet packet) {
  const std::uint64_t token = packet.seq;
  switch (packet.kind) {
    case kFragment: {
      // Every packet runs a handler at the receiver (the active-message
      // dispatch); the last one hands the assembled message up.
      ChargeCpu(at, costs_.handler_dispatch_ns, [this, token, at] {
        TransferState* s = transfer(token);
        if (s == nullptr) {
          return;
        }
        if (--s->remaining_packets == 0) {
          ChargeCpu(at, costs_.recv_fixed_ns, [this, token] { CompleteTransfer(token); });
        }
      });
      return;
    }
    case kBulkData: {
      ChargeCpu(at, 1'000, [this, token] { CompleteTransfer(token); });
      return;
    }
    default:
      return;
  }
}

// ================================ SUNMOS ====================================

SunmosMessenger::SunmosMessenger(simnet::Simulator& sim, std::uint32_t node_count,
                                 std::unique_ptr<simnet::LinkModel> link_model, Costs costs)
    : BaselineMessenger(sim, node_count, std::move(link_model)), costs_(costs) {}

void SunmosMessenger::StartSend(std::uint64_t token, TransferState& state) {
  const NodeId src = state.src;
  const NodeId dst = state.dst;
  const std::size_t bytes = state.bytes;
  const DurationNs cpu = bytes == 0 ? costs_.zero_len_send_ns : costs_.send_fixed_ns;
  // One packet, whatever the size: a multi-megabyte message occupies the
  // path through the interconnect for its entire duration.
  ChargeCpu(src, cpu, [this, token, src, dst, bytes] {
    Transmit(src, dst, 1, token, bytes);
  });
}

void SunmosMessenger::OnPacket(NodeId at, simnet::Packet packet) {
  TransferState* state = transfer(packet.seq);
  if (state == nullptr) {
    return;
  }
  const DurationNs cpu =
      state->bytes == 0
          ? costs_.zero_len_recv_ns
          : costs_.recv_fixed_ns + static_cast<DurationNs>(state->bytes) *
                                       costs_.recv_copy_per_byte_x100 / 100;
  const std::uint64_t token = packet.seq;
  ChargeCpu(at, cpu, [this, token] { CompleteTransfer(token); });
}

}  // namespace flipc::baselines
