#include "src/flow/bulk_channel.h"

#include <cstring>

#include "src/base/checksum.h"
#include "src/base/log.h"

namespace flipc::flow {

// ================================ BulkSender ================================

Result<BulkSender> BulkSender::Create(Domain& domain, Endpoint data_tx, Endpoint credit_rx,
                                      Address peer_data_rx, std::uint32_t window) {
  if (domain.payload_size() <= kBulkFragHeaderSize) {
    return InvalidArgumentStatus();  // messages too small to carry fragments
  }
  FLIPC_ASSIGN_OR_RETURN(
      WindowSender sender,
      WindowSender::Create(domain, data_tx, credit_rx, peer_data_rx, window));
  const auto frag_data =
      static_cast<std::uint32_t>(domain.payload_size() - kBulkFragHeaderSize);
  return BulkSender(domain, std::move(sender), frag_data);
}

Result<std::uint32_t> BulkSender::Start(const std::byte* data, std::size_t size) {
  if (data == nullptr || size == 0) {
    return InvalidArgumentStatus();
  }
  PendingTransfer transfer;
  transfer.id = next_id_++;
  transfer.data = data;
  transfer.size = size;
  transfer.frag_count =
      static_cast<std::uint32_t>((size + frag_data_bytes_ - 1) / frag_data_bytes_);
  transfer.checksum = Fnv1a(data, size);
  queue_.push_back(transfer);
  return transfer.id;
}

bool BulkSender::SendOneFragment(PendingTransfer& transfer) {
  // Recycle completed fragment buffers before allocating new ones.
  MessageBuffer buffer;
  for (;;) {
    Result<MessageBuffer> reclaimed = sender_.Reclaim();
    if (!reclaimed.ok()) {
      break;
    }
    buffer_pool_.push_back(*reclaimed);
  }
  if (!buffer_pool_.empty()) {
    buffer = buffer_pool_.front();
    buffer_pool_.pop_front();
  } else {
    Result<MessageBuffer> fresh = domain_->AllocateBuffer();
    if (!fresh.ok()) {
      return false;
    }
    buffer = *fresh;
  }

  const std::uint64_t start =
      static_cast<std::uint64_t>(transfer.next_frag) * frag_data_bytes_;
  const std::size_t bytes =
      transfer.size - start < frag_data_bytes_ ? transfer.size - start : frag_data_bytes_;

  BulkFragHeader header{};
  header.transfer_id = transfer.id;
  header.frag_index = transfer.next_frag;
  header.frag_count = transfer.frag_count;
  header.frag_bytes = static_cast<std::uint32_t>(bytes);
  header.total_bytes = transfer.size;
  header.checksum = transfer.checksum;
  buffer.Write(&header, sizeof(header));
  buffer.Write(transfer.data + start, bytes, kBulkFragHeaderSize);

  if (!sender_.Send(buffer).ok()) {
    buffer_pool_.push_back(buffer);  // no credit: retry on the next Pump()
    return false;
  }
  ++fragments_sent_;
  ++transfer.next_frag;
  return true;
}

bool BulkSender::Pump() {
  sender_.PollCredits();
  while (!queue_.empty()) {
    PendingTransfer& transfer = queue_.front();
    while (transfer.next_frag < transfer.frag_count) {
      if (!SendOneFragment(transfer)) {
        return true;  // window closed or buffers exhausted; still in progress
      }
    }
    last_completed_id_ = transfer.id;
    queue_.pop_front();
  }
  return false;
}

bool BulkSender::SendComplete(std::uint32_t transfer_id) const {
  return transfer_id <= last_completed_id_;
}

// =============================== BulkReceiver ===============================

Result<BulkReceiver> BulkReceiver::Create(Domain& domain, Endpoint data_rx,
                                          Endpoint credit_tx, Address peer_credit_rx,
                                          std::uint32_t window) {
  if (domain.payload_size() <= kBulkFragHeaderSize) {
    return InvalidArgumentStatus();
  }
  FLIPC_ASSIGN_OR_RETURN(
      WindowReceiver receiver,
      WindowReceiver::Create(domain, data_rx, credit_tx, peer_credit_rx, window,
                             /*batch=*/window > 4 ? window / 4 : 1));
  return BulkReceiver(domain, std::move(receiver));
}

Result<BulkReceiver::Transfer> BulkReceiver::Poll() {
  for (;;) {
    Result<MessageBuffer> message = receiver_.Receive();
    if (!message.ok()) {
      return UnavailableStatus();
    }
    BulkFragHeader header;
    if (!message->Read(&header, sizeof(header)) || header.frag_count == 0 ||
        header.frag_index >= header.frag_count) {
      FLIPC_LOG(kWarning) << "bulk: malformed fragment discarded";
      (void)receiver_.Release(*message);
      continue;
    }

    Assembly& assembly = assemblies_[header.transfer_id];
    if (assembly.data.empty()) {
      assembly.data.resize(header.total_bytes);
      assembly.frag_count = header.frag_count;
      assembly.checksum = header.checksum;
    }
    const std::uint64_t start =
        static_cast<std::uint64_t>(header.frag_index) *
        (domain_->payload_size() - kBulkFragHeaderSize);
    if (start + header.frag_bytes <= assembly.data.size()) {
      message->Read(assembly.data.data() + start, header.frag_bytes, kBulkFragHeaderSize);
      ++assembly.frags_seen;
      ++fragments_received_;
    }
    (void)receiver_.Release(*message);

    if (assembly.frags_seen == assembly.frag_count) {
      Transfer out;
      out.id = header.transfer_id;
      out.data = std::move(assembly.data);
      out.checksum_ok = Fnv1a(out.data.data(), out.data.size()) == assembly.checksum;
      assemblies_.erase(header.transfer_id);
      return out;
    }
  }
}

}  // namespace flipc::flow
