#include "src/flow/window_channel.h"

namespace flipc::flow {

Result<WindowSender> WindowSender::Create(Domain& domain, Endpoint data_tx, Endpoint credit_rx,
                                          Address peer_data_rx, std::uint32_t window) {
  if (window == 0 || data_tx.queue_capacity() < window) {
    return InvalidArgumentStatus();
  }
  WindowSender sender(domain, data_tx, credit_rx, peer_data_rx, window);

  // Post buffers for inbound credit messages: one per possible outstanding
  // credit batch is enough; window covers the worst case (batch == 1).
  for (std::uint32_t i = 0; i < window && i < credit_rx.queue_capacity(); ++i) {
    FLIPC_ASSIGN_OR_RETURN(MessageBuffer buffer, domain.AllocateBuffer());
    FLIPC_RETURN_IF_ERROR(sender.credit_rx_.PostBuffer(buffer));
  }
  return sender;
}

Status WindowSender::Send(MessageBuffer& buffer) {
  if (credits_ == 0) {
    PollCredits();
    if (credits_ == 0) {
      return UnavailableStatus();
    }
  }
  FLIPC_RETURN_IF_ERROR(data_tx_.Send(buffer, peer_));
  --credits_;
  return OkStatus();
}

std::uint32_t WindowSender::PollCredits() {
  // First retry buffers whose earlier re-post failed: until they are back
  // on credit_rx_ the channel runs with a reduced buffer pool, and a
  // permanently stranded buffer would starve credit returns outright.
  while (!repost_backlog_.empty()) {
    if (!credit_rx_.PostBuffer(repost_backlog_.back()).ok()) {
      break;
    }
    repost_backlog_.pop_back();
  }

  std::uint32_t banked = 0;
  for (;;) {
    Result<MessageBuffer> message = credit_rx_.Receive();
    if (!message.ok()) {
      break;
    }
    const CreditMsg* credit = message->As<CreditMsg>();
    if (credit != nullptr) {
      banked += credit->credits;
    }
    // Re-post the credit buffer for the next batch. A failure (queue
    // momentarily full under concurrent posters) must not lose the buffer:
    // park it for the next poll and count the event so the starvation is
    // observable instead of silent.
    if (!credit_rx_.PostBuffer(*message).ok()) {
      ++credit_repost_failures_;
      repost_backlog_.push_back(*message);
    }
  }
  credits_ += banked;
  return banked;
}

Result<WindowReceiver> WindowReceiver::Create(Domain& domain, Endpoint data_rx,
                                              Endpoint credit_tx, Address peer_credit_rx,
                                              std::uint32_t window, std::uint32_t batch) {
  if (window == 0 || batch == 0 || batch > window || data_rx.queue_capacity() < window) {
    return InvalidArgumentStatus();
  }
  WindowReceiver receiver(domain, data_rx, credit_tx, peer_credit_rx, batch);
  for (std::uint32_t i = 0; i < window; ++i) {
    FLIPC_ASSIGN_OR_RETURN(MessageBuffer buffer, domain.AllocateBuffer());
    FLIPC_RETURN_IF_ERROR(receiver.data_rx_.PostBuffer(buffer));
  }
  return receiver;
}

Status WindowReceiver::Release(MessageBuffer buffer) {
  FLIPC_RETURN_IF_ERROR(data_rx_.PostBuffer(buffer));
  ++pending_credits_;
  if (pending_credits_ < batch_) {
    return OkStatus();
  }

  // Send the batched credit. First reclaim completed credit sends: this is
  // the only place credit_tx_ is ever reclaimed, so skipping it (e.g. when
  // a held buffer makes reclaiming unnecessary for the buffer itself) would
  // leave completed sends clogging the queue until no new credit could ever
  // be queued. One reclaimed buffer becomes the send buffer; extras go back
  // to the pool.
  for (;;) {
    Result<MessageBuffer> reclaimed = credit_tx_.Reclaim();
    if (!reclaimed.ok()) {
      break;
    }
    if (!held_credit_.valid()) {
      held_credit_ = *reclaimed;
    } else {
      (void)domain_->FreeBuffer(*reclaimed);
    }
  }

  // Pick the send buffer: one held over from a failed attempt or reclaimed
  // above, else a fresh allocation — the channel stays self-sustaining with
  // at most `window` buffers plus the single held retry buffer.
  MessageBuffer credit_buffer = held_credit_;
  held_credit_ = MessageBuffer();
  if (!credit_buffer.valid()) {
    Result<MessageBuffer> allocated = domain_->AllocateBuffer();
    if (!allocated.ok()) {
      return allocated.status();  // Credits stay pending; next Release retries.
    }
    credit_buffer = *allocated;
  }
  CreditMsg* credit = credit_buffer.As<CreditMsg>();
  if (credit == nullptr) {
    // Message size cannot carry a CreditMsg (configuration error). Return
    // the buffer to the pool rather than stranding it.
    (void)domain_->FreeBuffer(credit_buffer);
    return InternalStatus();
  }
  credit->credits = pending_credits_;
  const Status sent = credit_tx_.Send(credit_buffer, peer_);
  if (!sent.ok()) {
    // Credit-channel backpressure: the send queue is full. Hold the buffer
    // for the retry and keep the credits pending — previously this path
    // leaked the buffer on every attempt and drained the domain pool
    // permanently.
    held_credit_ = credit_buffer;
    return sent;
  }
  pending_credits_ = 0;
  return OkStatus();
}

}  // namespace flipc::flow
