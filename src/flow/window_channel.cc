#include "src/flow/window_channel.h"

namespace flipc::flow {

Result<WindowSender> WindowSender::Create(Domain& domain, Endpoint data_tx, Endpoint credit_rx,
                                          Address peer_data_rx, std::uint32_t window) {
  if (window == 0 || data_tx.queue_capacity() < window) {
    return InvalidArgumentStatus();
  }
  WindowSender sender(domain, data_tx, credit_rx, peer_data_rx, window);

  // Post buffers for inbound credit messages: one per possible outstanding
  // credit batch is enough; window covers the worst case (batch == 1).
  for (std::uint32_t i = 0; i < window && i < credit_rx.queue_capacity(); ++i) {
    FLIPC_ASSIGN_OR_RETURN(MessageBuffer buffer, domain.AllocateBuffer());
    FLIPC_RETURN_IF_ERROR(sender.credit_rx_.PostBuffer(buffer));
  }
  return sender;
}

Status WindowSender::Send(MessageBuffer& buffer) {
  if (credits_ == 0) {
    PollCredits();
    if (credits_ == 0) {
      return UnavailableStatus();
    }
  }
  FLIPC_RETURN_IF_ERROR(data_tx_.Send(buffer, peer_));
  --credits_;
  return OkStatus();
}

std::uint32_t WindowSender::PollCredits() {
  std::uint32_t banked = 0;
  for (;;) {
    Result<MessageBuffer> message = credit_rx_.Receive();
    if (!message.ok()) {
      break;
    }
    const CreditMsg* credit = message->As<CreditMsg>();
    if (credit != nullptr) {
      banked += credit->credits;
    }
    // Re-post the credit buffer for the next batch.
    (void)credit_rx_.PostBuffer(*message);
  }
  credits_ += banked;
  return banked;
}

Result<WindowReceiver> WindowReceiver::Create(Domain& domain, Endpoint data_rx,
                                              Endpoint credit_tx, Address peer_credit_rx,
                                              std::uint32_t window, std::uint32_t batch) {
  if (window == 0 || batch == 0 || batch > window || data_rx.queue_capacity() < window) {
    return InvalidArgumentStatus();
  }
  WindowReceiver receiver(domain, data_rx, credit_tx, peer_credit_rx, batch);
  for (std::uint32_t i = 0; i < window; ++i) {
    FLIPC_ASSIGN_OR_RETURN(MessageBuffer buffer, domain.AllocateBuffer());
    FLIPC_RETURN_IF_ERROR(receiver.data_rx_.PostBuffer(buffer));
  }
  return receiver;
}

Status WindowReceiver::Release(MessageBuffer buffer) {
  FLIPC_RETURN_IF_ERROR(data_rx_.PostBuffer(buffer));
  ++pending_credits_;
  if (pending_credits_ < batch_) {
    return OkStatus();
  }

  // Send the batched credit. The credit channel needs its own send buffer;
  // reclaim a completed one first so the channel stays self-sustaining
  // with at most `window` buffers.
  Result<MessageBuffer> credit_buffer = credit_tx_.Reclaim();
  if (!credit_buffer.ok()) {
    credit_buffer = domain_->AllocateBuffer();
    if (!credit_buffer.ok()) {
      return credit_buffer.status();
    }
  }
  CreditMsg* credit = credit_buffer->As<CreditMsg>();
  if (credit == nullptr) {
    return InternalStatus();
  }
  credit->credits = pending_credits_;
  FLIPC_RETURN_IF_ERROR(credit_tx_.Send(*credit_buffer, peer_));
  pending_credits_ = 0;
  return OkStatus();
}

}  // namespace flipc::flow
