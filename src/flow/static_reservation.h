// Static buffer-reservation calculators.
//
// Paper, Message Transfer: "In some cases, static properties of the
// application structure may remove the need for runtime flow control."
// The two worked examples are reproduced as calculators applications can
// evaluate at configuration time:
//
//   * an RPC server with a fixed client set sizes its receive endpoint by
//     the maximum number of simultaneously outstanding requests;
//   * a strictly periodic system sizes buffering from the producers'
//     periods and the consumer's service time (worst-case arrivals while
//     one service interval is in progress).
#ifndef SRC_FLOW_STATIC_RESERVATION_H_
#define SRC_FLOW_STATIC_RESERVATION_H_

#include <cstdint>
#include <vector>

#include "src/base/types.h"

namespace flipc::flow {

// ---- RPC structure --------------------------------------------------------

struct RpcServerPlan {
  std::uint32_t clients = 0;
  std::uint32_t in_flight_per_client = 1;

  // Receive buffers the server must keep posted so no request is ever
  // dropped: every client may have all its permitted calls in flight.
  std::uint32_t RequiredReceiveBuffers() const { return clients * in_flight_per_client; }

  // Queue depth must be a power of two at least that large.
  std::uint32_t RequiredQueueDepth() const {
    std::uint32_t depth = 1;
    while (depth < RequiredReceiveBuffers()) {
      depth <<= 1;
    }
    return depth;
  }
};

struct RpcClientPlan {
  std::uint32_t in_flight = 1;

  // The client needs buffers for requests in flight plus posted reply
  // buffers for every outstanding call.
  std::uint32_t RequiredSendBuffers() const { return in_flight; }
  std::uint32_t RequiredReceiveBuffers() const { return in_flight; }
};

// ---- Strictly periodic structure -------------------------------------------

struct PeriodicProducer {
  DurationNs period_ns = 0;   // one message per period
  std::uint32_t burst = 1;    // messages released back-to-back per period
};

struct PeriodicPlan {
  std::vector<PeriodicProducer> producers;
  // Consumer drains the endpoint at least once per service interval.
  DurationNs service_interval_ns = 0;

  // Worst-case messages that can arrive within one service interval:
  // for each producer, ceil(interval / period) + 1 periods may start
  // (release-boundary effect), each contributing `burst` messages.
  std::uint32_t RequiredReceiveBuffers() const {
    std::uint64_t total = 0;
    for (const PeriodicProducer& p : producers) {
      if (p.period_ns <= 0) {
        continue;
      }
      const std::uint64_t periods =
          static_cast<std::uint64_t>((service_interval_ns + p.period_ns - 1) / p.period_ns) + 1;
      total += periods * p.burst;
    }
    return static_cast<std::uint32_t>(total);
  }

  std::uint32_t RequiredQueueDepth() const {
    std::uint32_t depth = 1;
    while (depth < RequiredReceiveBuffers()) {
      depth <<= 1;
    }
    return depth;
  }
};

}  // namespace flipc::flow

#endif  // SRC_FLOW_STATIC_RESERVATION_H_
