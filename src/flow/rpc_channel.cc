#include "src/flow/rpc_channel.h"

#include <cstring>

namespace flipc::flow {

// ================================ RpcServer =================================

Result<std::unique_ptr<RpcServer>> RpcServer::Create(Domain& domain, const RpcServerPlan& plan,
                                                     Handler handler) {
  if (plan.clients == 0 || handler == nullptr) {
    return InvalidArgumentStatus();
  }
  auto server = std::unique_ptr<RpcServer>(new RpcServer(domain, std::move(handler)));

  Domain::EndpointOptions rx;
  rx.type = shm::EndpointType::kReceive;
  rx.queue_depth = plan.RequiredQueueDepth();
  rx.enable_semaphore = domain.semaphores() != nullptr;
  FLIPC_ASSIGN_OR_RETURN(server->request_rx_, domain.CreateEndpoint(rx));

  Domain::EndpointOptions tx;
  tx.type = shm::EndpointType::kSend;
  tx.queue_depth = plan.RequiredQueueDepth();
  FLIPC_ASSIGN_OR_RETURN(server->reply_tx_, domain.CreateEndpoint(tx));

  // Static reservation: one posted receive buffer per possible in-flight
  // request; no runtime flow control needed (paper's RPC example).
  for (std::uint32_t i = 0; i < plan.RequiredReceiveBuffers(); ++i) {
    FLIPC_ASSIGN_OR_RETURN(MessageBuffer buffer, domain.AllocateBuffer());
    FLIPC_RETURN_IF_ERROR(server->request_rx_.PostBuffer(buffer));
  }
  return server;
}

Status RpcServer::ServeMessage(MessageBuffer request) {
  RpcHeader header;
  if (!request.Read(&header, sizeof(header))) {
    (void)request_rx_.PostBuffer(request);  // Malformed; recycle the buffer.
    return InvalidArgumentStatus();
  }

  // Reuse a completed reply buffer if one is reclaimable; allocate otherwise.
  Result<MessageBuffer> reply = reply_tx_.Reclaim();
  if (!reply.ok()) {
    reply = domain_.AllocateBuffer();
    if (!reply.ok()) {
      (void)request_rx_.PostBuffer(request);
      return reply.status();
    }
  }

  const std::size_t reply_capacity = reply->size() - kRpcHeaderSize;
  std::size_t request_size = header.length;
  if (request_size > request.size() - kRpcHeaderSize) {
    request_size = request.size() - kRpcHeaderSize;  // malformed length: clamp
  }
  const std::size_t reply_size =
      handler_(request.data() + kRpcHeaderSize, request_size,
               reply->data() + kRpcHeaderSize, reply_capacity);
  const RpcHeader reply_header{0, header.request_id,
                               static_cast<std::uint32_t>(reply_size)};
  reply->Write(&reply_header, sizeof(reply_header));

  // Figure 2 step 1 again — and strictly BEFORE the reply goes out: the
  // static-reservation invariant is "every client that can send already has
  // a buffer posted for it". The reply authorizes the client's next call,
  // so the request buffer must be back on the endpoint first; re-posting
  // after the send races the client's next request and can drop it.
  FLIPC_RETURN_IF_ERROR(request_rx_.PostBuffer(request));

  const Status sent = reply_tx_.Send(*reply, Address::FromPacked(header.reply_to));
  if (sent.ok()) {
    ++served_;
  }
  return sent;
}

Status RpcServer::ServeOnce() {
  FLIPC_ASSIGN_OR_RETURN(MessageBuffer request, request_rx_.Receive());
  return ServeMessage(std::move(request));
}

Status RpcServer::ServeBlocking(simos::Priority priority, DurationNs timeout_ns) {
  FLIPC_ASSIGN_OR_RETURN(MessageBuffer request,
                         request_rx_.ReceiveBlocking(priority, timeout_ns));
  return ServeMessage(std::move(request));
}

// ================================ RpcClient =================================

Result<std::unique_ptr<RpcClient>> RpcClient::Create(Domain& domain, Address server,
                                                     const RpcClientPlan& plan) {
  if (!server.valid() || plan.in_flight == 0) {
    return InvalidArgumentStatus();
  }
  auto client = std::unique_ptr<RpcClient>(new RpcClient(domain, server));

  std::uint32_t depth = 1;
  while (depth < plan.in_flight) {
    depth <<= 1;
  }

  Domain::EndpointOptions tx;
  tx.type = shm::EndpointType::kSend;
  tx.queue_depth = depth;
  FLIPC_ASSIGN_OR_RETURN(client->request_tx_, domain.CreateEndpoint(tx));

  Domain::EndpointOptions rx;
  rx.type = shm::EndpointType::kReceive;
  rx.queue_depth = depth;
  rx.enable_semaphore = domain.semaphores() != nullptr;
  FLIPC_ASSIGN_OR_RETURN(client->reply_rx_, domain.CreateEndpoint(rx));

  for (std::uint32_t i = 0; i < plan.RequiredReceiveBuffers(); ++i) {
    FLIPC_ASSIGN_OR_RETURN(MessageBuffer buffer, domain.AllocateBuffer());
    FLIPC_RETURN_IF_ERROR(client->reply_rx_.PostBuffer(buffer));
  }
  return client;
}

Result<std::size_t> RpcClient::Call(const void* request, std::size_t request_size, void* reply,
                                    std::size_t reply_capacity, DurationNs timeout_ns) {
  // Reclaim the previous request buffer or allocate the first one.
  Result<MessageBuffer> buffer = request_tx_.Reclaim();
  if (!buffer.ok()) {
    buffer = domain_.AllocateBuffer();
    if (!buffer.ok()) {
      return buffer.status();
    }
  }
  if (request_size + kRpcHeaderSize > buffer->size()) {
    return InvalidArgumentStatus();
  }

  const RpcHeader header{reply_rx_.address().packed(), next_id_++,
                         static_cast<std::uint32_t>(request_size)};
  buffer->Write(&header, sizeof(header));
  buffer->Write(request, request_size, kRpcHeaderSize);
  FLIPC_RETURN_IF_ERROR(request_tx_.Send(*buffer, server_));
  ++calls_;

  for (;;) {
    FLIPC_ASSIGN_OR_RETURN(MessageBuffer message,
                           reply_rx_.ReceiveBlocking(simos::kMinPriority, timeout_ns));
    RpcHeader reply_header;
    message.Read(&reply_header, sizeof(reply_header));
    const bool ours = reply_header.request_id == header.request_id;
    std::size_t n = 0;
    if (ours) {
      n = reply_header.length;
      if (n > message.size() - kRpcHeaderSize) {
        n = message.size() - kRpcHeaderSize;
      }
      if (n > reply_capacity) {
        n = reply_capacity;
      }
      std::memcpy(reply, message.data() + kRpcHeaderSize, n);
    }
    FLIPC_RETURN_IF_ERROR(reply_rx_.PostBuffer(message));
    if (ours) {
      return n;
    }
    // A stale reply (e.g. from a timed-out earlier call): keep waiting.
  }
}

}  // namespace flipc::flow
