// Bulk transfer over FLIPC — the paper's first future-work item.
//
// "FLIPC was designed solely to address the transport of medium sized
// messages and needs to be integrated into a system that provides
// excellent performance for messages of all sizes."
//
// This library is that integration, built the way the paper's layering
// prescribes: entirely ABOVE the transport. A large transfer is fragmented
// into fixed-size FLIPC messages carried over a window flow-controlled
// channel (so the optimistic transport never drops a fragment), and
// reassembled at the receiver with end-to-end checksum verification. The
// basic messaging engine is untouched — bulk is an application library,
// exactly like PAM kept its bulk path separate from its active messages.
//
// Pump()-driven, poll-based API: the sender owns pacing (real-time
// friendly — no hidden threads, no interrupts), and transfers interleave
// with ordinary messaging on other endpoints.
#ifndef SRC_FLOW_BULK_CHANNEL_H_
#define SRC_FLOW_BULK_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/base/status.h"
#include "src/flipc/domain.h"
#include "src/flow/window_channel.h"

namespace flipc::flow {

// Per-fragment header placed at the start of each FLIPC message payload.
struct BulkFragHeader {
  std::uint32_t transfer_id;
  std::uint32_t frag_index;
  std::uint32_t frag_count;
  std::uint32_t frag_bytes;     // data bytes in this fragment
  std::uint64_t total_bytes;
  std::uint64_t checksum;       // FNV-1a of the whole transfer (in frag 0)
};
inline constexpr std::size_t kBulkFragHeaderSize = sizeof(BulkFragHeader);

class BulkSender {
 public:
  // The data channel's endpoints/window follow WindowSender's contract.
  static Result<BulkSender> Create(Domain& domain, Endpoint data_tx, Endpoint credit_rx,
                                   Address peer_data_rx, std::uint32_t window);

  // Queues a transfer; the data is copied fragment-by-fragment as the
  // window admits, so `data` must stay valid until the transfer completes.
  // Returns the transfer id.
  Result<std::uint32_t> Start(const std::byte* data, std::size_t size);

  // Advances the pipeline: banks credits, reclaims completed fragment
  // buffers, and sends as many pending fragments as the window allows.
  // Returns true while any transfer is still in progress.
  bool Pump();

  // True once the given transfer's fragments have all been handed to the
  // transport (send-side completion; arrival is the receiver's Poll()).
  bool SendComplete(std::uint32_t transfer_id) const;

  std::uint64_t fragments_sent() const { return fragments_sent_; }
  std::uint32_t fragment_data_bytes() const { return frag_data_bytes_; }

 private:
  struct PendingTransfer {
    std::uint32_t id = 0;
    const std::byte* data = nullptr;
    std::size_t size = 0;
    std::uint32_t next_frag = 0;
    std::uint32_t frag_count = 0;
    std::uint64_t checksum = 0;
  };

  BulkSender(Domain& domain, WindowSender sender, std::uint32_t frag_data_bytes)
      : domain_(&domain), sender_(std::move(sender)), frag_data_bytes_(frag_data_bytes) {}

  bool SendOneFragment(PendingTransfer& transfer);

  Domain* domain_;
  WindowSender sender_;
  std::uint32_t frag_data_bytes_;
  std::deque<PendingTransfer> queue_;
  std::uint32_t next_id_ = 1;
  std::uint32_t last_completed_id_ = 0;
  std::uint64_t fragments_sent_ = 0;
  std::deque<MessageBuffer> buffer_pool_;
};

class BulkReceiver {
 public:
  struct Transfer {
    std::uint32_t id = 0;
    std::vector<std::byte> data;
    bool checksum_ok = false;
  };

  static Result<BulkReceiver> Create(Domain& domain, Endpoint data_rx, Endpoint credit_tx,
                                     Address peer_credit_rx, std::uint32_t window);

  // Drains arrived fragments into reassembly state; returns a completed
  // transfer when one finishes, kUnavailable otherwise.
  Result<Transfer> Poll();

  std::uint64_t fragments_received() const { return fragments_received_; }

 private:
  struct Assembly {
    std::vector<std::byte> data;
    std::uint32_t frags_seen = 0;
    std::uint32_t frag_count = 0;
    std::uint64_t checksum = 0;
  };

  BulkReceiver(Domain& domain, WindowReceiver receiver)
      : domain_(&domain), receiver_(std::move(receiver)) {}

  Domain* domain_;
  WindowReceiver receiver_;
  std::map<std::uint32_t, Assembly> assemblies_;
  std::uint64_t fragments_received_ = 0;
};

}  // namespace flipc::flow

#endif  // SRC_FLOW_BULK_CHANNEL_H_
