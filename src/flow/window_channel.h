// Window (credit) flow control over FLIPC.
//
// Paper, Message Transfer: "Flow control to avoid discarded messages can be
// provided either by applications or by libraries designed to fit between
// applications and FLIPC. This structure greatly simplifies the buffer
// management logic in FLIPC and allows flow control policies to be
// customized to application needs." The window protocol here is the same
// style PAM used for its active-message facility.
//
// Protocol: the receiver keeps `window` buffers posted on its data
// endpoint. The sender starts with `window` credits and spends one per
// Send(). After the receiver consumes a message and re-posts the buffer, it
// accumulates a credit; credits are returned in batches over a reverse
// FLIPC channel (a small credit message), and the sender's PollCredits()
// banks them. Invariant: messages in flight never exceed posted buffers,
// so the data endpoint's optimistic transport never discards.
#ifndef SRC_FLOW_WINDOW_CHANNEL_H_
#define SRC_FLOW_WINDOW_CHANNEL_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/flipc/domain.h"
#include "src/flipc/endpoint.h"

namespace flipc::flow {

// Payload of a credit message.
struct CreditMsg {
  std::uint32_t credits;
};

class WindowSender {
 public:
  // `data_tx`   — send endpoint for data messages (queue depth >= window).
  // `credit_rx` — receive endpoint for returning credits.
  // The sender posts `credit_buffers` buffers on credit_rx itself.
  static Result<WindowSender> Create(Domain& domain, Endpoint data_tx, Endpoint credit_rx,
                                     Address peer_data_rx, std::uint32_t window);

  // Sends the buffer if a credit is available; kUnavailable otherwise
  // (call PollCredits / Reclaim and retry — or size the window so this
  // never happens, the paper's static-reservation style).
  Status Send(MessageBuffer& buffer);

  // Drains the credit channel; returns credits banked.
  std::uint32_t PollCredits();

  // Recovers completed send buffers (Figure 2, step 5).
  Result<MessageBuffer> Reclaim() { return data_tx_.Reclaim(); }

  std::uint32_t credits() const { return credits_; }
  Endpoint& data_endpoint() { return data_tx_; }

  // Credit-channel health. A repost failure means a drained credit buffer
  // could not go back on credit_rx_ (queue momentarily full); the buffer is
  // parked and retried by the next PollCredits rather than stranded, but a
  // nonzero count is the signal that the channel ran under-buffered.
  std::uint64_t credit_repost_failures() const { return credit_repost_failures_; }
  std::size_t pending_reposts() const { return repost_backlog_.size(); }

 private:
  friend class WindowChannelTestPeer;  // Seeds the repost backlog in tests.

  WindowSender(Domain& domain, Endpoint data_tx, Endpoint credit_rx, Address peer,
               std::uint32_t window)
      : domain_(&domain),
        data_tx_(data_tx),
        credit_rx_(credit_rx),
        peer_(peer),
        credits_(window) {}

  Domain* domain_;
  Endpoint data_tx_;
  Endpoint credit_rx_;
  Address peer_;
  std::uint32_t credits_;
  // Credit buffers whose re-post failed, awaiting retry.
  std::vector<MessageBuffer> repost_backlog_;
  std::uint64_t credit_repost_failures_ = 0;
};

class WindowReceiver {
 public:
  // `data_rx`   — receive endpoint (depth >= window); `window` buffers are
  //               allocated and posted by Create().
  // `credit_tx` — send endpoint addressing the sender's credit_rx.
  // `batch`     — credits accumulated before a credit message is sent
  //               (1 = immediate; larger amortizes the reverse traffic).
  static Result<WindowReceiver> Create(Domain& domain, Endpoint data_rx, Endpoint credit_tx,
                                       Address peer_credit_rx, std::uint32_t window,
                                       std::uint32_t batch = 1);

  // Retrieves the next message, if any. The caller must hand the buffer
  // back via Release() when done with the payload.
  Result<MessageBuffer> Receive() { return data_rx_.Receive(); }

  // Re-posts the buffer and returns credit to the sender (batched).
  Status Release(MessageBuffer buffer);

  Endpoint& data_endpoint() { return data_rx_; }
  Address data_address() const { return data_rx_.address(); }

 private:
  WindowReceiver(Domain& domain, Endpoint data_rx, Endpoint credit_tx, Address peer,
                 std::uint32_t batch)
      : domain_(&domain), data_rx_(data_rx), credit_tx_(credit_tx), peer_(peer), batch_(batch) {}

  Domain* domain_;
  Endpoint data_rx_;
  Endpoint credit_tx_;
  Address peer_;
  std::uint32_t batch_;
  std::uint32_t pending_credits_ = 0;
  // A credit buffer held across a failed credit send, reused by the retry.
  MessageBuffer held_credit_;
};

}  // namespace flipc::flow

#endif  // SRC_FLOW_WINDOW_CHANNEL_H_
