// A small RPC layer over FLIPC with statically reserved buffers.
//
// Demonstrates the paper's claim that "an RPC interaction structure with a
// fixed set of clients can statically determine the number of buffers
// needed based on the maximum number of clients" — the server's receive
// endpoint is sized by RpcServerPlan and no runtime flow control exists
// anywhere on the path; zero drops is an invariant the tests check.
//
// Wire format: every request payload starts with RpcHeader (reply address +
// request id); the reply echoes the id. Requests and replies each fit one
// FLIPC message (this is a medium-message RPC, the paper's home turf).
#ifndef SRC_FLOW_RPC_CHANNEL_H_
#define SRC_FLOW_RPC_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/base/status.h"
#include "src/flipc/domain.h"
#include "src/flipc/endpoint.h"
#include "src/flow/static_reservation.h"

namespace flipc::flow {

struct RpcHeader {
  std::uint32_t reply_to;    // packed Address of the client's reply endpoint
  std::uint32_t request_id;
  std::uint32_t length;      // bytes of request/reply data after the header
};
inline constexpr std::size_t kRpcHeaderSize = sizeof(RpcHeader);

class RpcServer {
 public:
  // handler(request bytes, reply bytes out, reply capacity) -> reply size.
  using Handler =
      std::function<std::size_t(const std::byte* request, std::size_t request_size,
                                std::byte* reply, std::size_t reply_capacity)>;

  static Result<std::unique_ptr<RpcServer>> Create(Domain& domain, const RpcServerPlan& plan,
                                                   Handler handler);

  // The address clients send requests to.
  Address address() const { return request_rx_.address(); }

  // Serves one pending request; kUnavailable when none is queued.
  Status ServeOnce();

  // Blocks for a request (requires the domain's semaphore table) and
  // serves it.
  Status ServeBlocking(simos::Priority priority = simos::kMinPriority,
                       DurationNs timeout_ns = -1);

  std::uint64_t requests_served() const { return served_; }
  Endpoint& request_endpoint() { return request_rx_; }

 private:
  RpcServer(Domain& domain, Handler handler) : domain_(domain), handler_(std::move(handler)) {}

  Status ServeMessage(MessageBuffer request);

  Domain& domain_;
  Handler handler_;
  Endpoint request_rx_;
  Endpoint reply_tx_;
  std::uint64_t served_ = 0;
};

class RpcClient {
 public:
  static Result<std::unique_ptr<RpcClient>> Create(Domain& domain, Address server,
                                                   const RpcClientPlan& plan = RpcClientPlan());

  // Synchronous call: sends `request` and fills `reply`; returns the reply
  // size. Uses the blocking receive (real-time semaphore) path.
  Result<std::size_t> Call(const void* request, std::size_t request_size, void* reply,
                           std::size_t reply_capacity, DurationNs timeout_ns = -1);

  std::uint64_t calls_made() const { return calls_; }

 private:
  RpcClient(Domain& domain, Address server) : domain_(domain), server_(server) {}

  Domain& domain_;
  Address server_;
  Endpoint request_tx_;
  Endpoint reply_rx_;
  std::uint32_t next_id_ = 1;
  std::uint64_t calls_ = 0;
};

}  // namespace flipc::flow

#endif  // SRC_FLOW_RPC_CHANNEL_H_
