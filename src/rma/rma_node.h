// Remote memory access — the paper's second future-work item.
//
// "As part of this work, we are considering extensions that allow
// applications to indirectly access memory on other nodes [16]; some
// related ideas can be found in the SUNMOS, PAM, and Illinois Fast
// Messages systems."  Reference [16] is Thekkath et al.'s "Separating Data
// and Control Transfer in Distributed Operating Systems" — the data moves
// without involving the remote application.
//
// RmaNode implements that as a protocol in the messaging engine's
// framework (it coexists with FLIPC traffic on the same coprocessor, the
// way the paper's engine ran several protocols):
//
//   * the OWNER exports windows — spans of its memory a remote node may
//     read or write; the engine services requests directly, the owning
//     application is never scheduled;
//   * a CLIENT issues one-sided Read/Write operations and polls a token
//     for completion (no interrupts, matching FLIPC's real-time stance).
//
// Protection mirrors FLIPC's: window ids and bounds are validated by the
// engine on every request; out-of-range accesses are rejected and counted,
// never performed.
#ifndef SRC_RMA_RMA_NODE_H_
#define SRC_RMA_RMA_NODE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "src/base/status.h"
#include "src/base/thread_annotations.h"
#include "src/engine/messaging_engine.h"

namespace flipc::rma {

// Packet.kind values for the RMA protocol.
inline constexpr std::uint32_t kRmaWrite = 1;
inline constexpr std::uint32_t kRmaWriteAck = 2;
inline constexpr std::uint32_t kRmaRead = 3;
inline constexpr std::uint32_t kRmaReadReply = 4;
inline constexpr std::uint32_t kRmaReject = 5;

// Request header carried at the front of the packet payload.
struct RmaHeader {
  std::uint32_t window;
  std::uint64_t offset;
  std::uint64_t length;
};
inline constexpr std::size_t kRmaHeaderSize = sizeof(RmaHeader);

struct RmaStats {
  std::uint64_t writes_served = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t requests_rejected = 0;  // bad window / out-of-bounds
  std::uint64_t operations_completed = 0;
  std::uint64_t operations_failed = 0;
};

class RmaNode final : public engine::ProtocolHandler {
 public:
  // Registers itself with the engine's protocol framework.
  explicit RmaNode(engine::MessagingEngine& engine);
  ~RmaNode() override;
  RmaNode(const RmaNode&) = delete;
  RmaNode& operator=(const RmaNode&) = delete;

  // ---- Owner side ----

  // Exports [base, base+size) for remote access; returns the window id the
  // owner hands to clients out of band. The memory must outlive the window.
  Result<std::uint32_t> ExportWindow(std::byte* base, std::size_t size);
  Status UnexportWindow(std::uint32_t window_id);

  // ---- Client side (one-sided operations) ----

  // Copies `size` bytes into the remote window. Returns a completion token.
  Result<std::uint64_t> Write(NodeId node, std::uint32_t window, std::uint64_t offset,
                              const void* data, std::size_t size);

  // Fetches `size` bytes from the remote window into `dst` (which must
  // stay valid until completion).
  Result<std::uint64_t> Read(NodeId node, std::uint32_t window, std::uint64_t offset,
                             void* dst, std::size_t size);

  // Operation state: kOk once complete, kUnavailable while in flight,
  // kPermissionDenied if the owner rejected it, kNotFound for unknown
  // tokens.
  Status Poll(std::uint64_t token) const;

  const RmaStats& stats() const { return stats_; }

  // ---- ProtocolHandler (engine-facing) ----
  void HandlePacket(simnet::Packet packet, simnet::CostAccumulator& cost) override;
  bool PollWork(simnet::CostAccumulator& cost) override;
  bool HasWork() const override;
  DurationNs PlanCost(const simnet::Packet& packet) const override;

 private:
  struct Window {
    std::byte* base = nullptr;
    std::size_t size = 0;
  };

  enum class OpState { kInFlight, kDone, kRejected };

  struct Operation {
    OpState state = OpState::kInFlight;
    void* read_dst = nullptr;
    std::size_t read_size = 0;
  };

  engine::MessagingEngine& engine_;
  // The application thread issues operations while the engine thread
  // services them (under the DES both run on one thread and the lock is
  // uncontended).
  mutable std::mutex mutex_;
  std::map<std::uint32_t, Window> windows_ FLIPC_GUARDED_BY(mutex_);
  std::uint32_t next_window_ FLIPC_GUARDED_BY(mutex_) = 1;

  std::deque<simnet::Packet> outgoing_ FLIPC_GUARDED_BY(mutex_);
  std::map<std::uint64_t, Operation> operations_ FLIPC_GUARDED_BY(mutex_);
  std::uint64_t next_token_ FLIPC_GUARDED_BY(mutex_) = 1;
  RmaStats stats_ FLIPC_GUARDED_BY(mutex_);
};

}  // namespace flipc::rma

#endif  // SRC_RMA_RMA_NODE_H_
