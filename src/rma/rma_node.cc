#include "src/rma/rma_node.h"

#include <cstring>

#include "src/base/log.h"

namespace flipc::rma {

RmaNode::RmaNode(engine::MessagingEngine& engine) : engine_(engine) {
  const Status status = engine_.RegisterProtocol(simnet::kProtocolRma, this);
  if (!status.ok()) {
    FLIPC_LOG(kError) << "rma: protocol registration failed: " << status.ToString();
  }
}

RmaNode::~RmaNode() { (void)engine_.RegisterProtocol(simnet::kProtocolRma, nullptr); }

// ------------------------------- Owner side ---------------------------------

Result<std::uint32_t> RmaNode::ExportWindow(std::byte* base, std::size_t size) {
  if (base == nullptr || size == 0) {
    return InvalidArgumentStatus();
  }
  ScopedLock<std::mutex> guard(mutex_);
  const std::uint32_t id = next_window_++;
  windows_[id] = Window{base, size};
  return id;
}

Status RmaNode::UnexportWindow(std::uint32_t window_id) {
  ScopedLock<std::mutex> guard(mutex_);
  return windows_.erase(window_id) != 0 ? OkStatus() : NotFoundStatus();
}

// ------------------------------- Client side --------------------------------

Result<std::uint64_t> RmaNode::Write(NodeId node, std::uint32_t window, std::uint64_t offset,
                                     const void* data, std::size_t size) {
  if (data == nullptr || size == 0) {
    return InvalidArgumentStatus();
  }
  ScopedLock<std::mutex> lock(mutex_);
  const std::uint64_t token = next_token_++;
  operations_[token] = Operation{};
  lock.Release();

  simnet::Packet packet;
  packet.dst_node = node;
  packet.protocol = simnet::kProtocolRma;
  packet.kind = kRmaWrite;
  packet.seq = token;
  const RmaHeader header{window, offset, size};
  packet.payload.resize(kRmaHeaderSize + size);
  std::memcpy(packet.payload.data(), &header, kRmaHeaderSize);
  std::memcpy(packet.payload.data() + kRmaHeaderSize, data, size);
  {
    ScopedLock<std::mutex> guard(mutex_);
    outgoing_.push_back(std::move(packet));
  }
  return token;
}

Result<std::uint64_t> RmaNode::Read(NodeId node, std::uint32_t window, std::uint64_t offset,
                                    void* dst, std::size_t size) {
  if (dst == nullptr || size == 0) {
    return InvalidArgumentStatus();
  }
  ScopedLock<std::mutex> lock(mutex_);
  const std::uint64_t token = next_token_++;
  Operation op;
  op.read_dst = dst;
  op.read_size = size;
  operations_[token] = op;
  lock.Release();

  simnet::Packet packet;
  packet.dst_node = node;
  packet.protocol = simnet::kProtocolRma;
  packet.kind = kRmaRead;
  packet.seq = token;
  const RmaHeader header{window, offset, size};
  packet.payload.resize(kRmaHeaderSize);
  std::memcpy(packet.payload.data(), &header, kRmaHeaderSize);
  {
    ScopedLock<std::mutex> guard(mutex_);
    outgoing_.push_back(std::move(packet));
  }
  return token;
}

Status RmaNode::Poll(std::uint64_t token) const {
  ScopedLock<std::mutex> guard(mutex_);
  auto it = operations_.find(token);
  if (it == operations_.end()) {
    return NotFoundStatus();
  }
  switch (it->second.state) {
    case OpState::kInFlight:
      return UnavailableStatus();
    case OpState::kDone:
      return OkStatus();
    case OpState::kRejected:
      return PermissionDeniedStatus();
  }
  return InternalStatus();
}

// ----------------------------- Engine-facing --------------------------------

bool RmaNode::HasWork() const {
  ScopedLock<std::mutex> guard(mutex_);
  return !outgoing_.empty();
}

bool RmaNode::PollWork(simnet::CostAccumulator& cost) {
  ScopedLock<std::mutex> lock(mutex_);
  if (outgoing_.empty()) {
    return false;
  }
  simnet::Packet packet = std::move(outgoing_.front());
  outgoing_.pop_front();
  lock.Release();
  const std::uint64_t token = packet.seq;
  if (const auto* model = engine_.model_for_protocols(); model != nullptr) {
    cost.Charge(model->send_overhead_ns +
                static_cast<DurationNs>(packet.payload.size()) / 4);  // DMA setup + stream
  }
  if (!engine_.wire_for_protocols().Send(std::move(packet)).ok()) {
    ScopedLock<std::mutex> guard(mutex_);
    auto it = operations_.find(token);
    if (it != operations_.end()) {
      it->second.state = OpState::kRejected;
      ++stats_.operations_failed;
    }
  }
  return true;
}

DurationNs RmaNode::PlanCost(const simnet::Packet& packet) const {
  const auto* model = engine_.model_for_protocols();
  if (model == nullptr) {
    return 0;
  }
  // Inbound handling: request validation plus the memory copy the engine
  // performs on behalf of the remote node.
  return model->recv_overhead_ns + model->RecvCopyNs(packet.payload.size());
}

void RmaNode::HandlePacket(simnet::Packet packet, simnet::CostAccumulator& cost) {
  switch (packet.kind) {
    case kRmaWrite:
    case kRmaRead: {
      RmaHeader header;
      if (packet.payload.size() < kRmaHeaderSize) {
        ++stats_.requests_rejected;
        return;
      }
      std::memcpy(&header, packet.payload.data(), kRmaHeaderSize);

      simnet::Packet reply;
      reply.dst_node = packet.src_node;
      reply.protocol = simnet::kProtocolRma;
      reply.seq = packet.seq;

      ScopedLock<std::mutex> guard(mutex_);
      auto it = windows_.find(header.window);
      const bool in_bounds = it != windows_.end() &&
                             header.offset + header.length <= it->second.size &&
                             header.offset + header.length >= header.offset;
      if (!in_bounds) {
        ++stats_.requests_rejected;
        reply.kind = kRmaReject;
      } else if (packet.kind == kRmaWrite) {
        if (packet.payload.size() - kRmaHeaderSize < header.length) {
          ++stats_.requests_rejected;
          reply.kind = kRmaReject;
        } else {
          std::memcpy(it->second.base + header.offset,
                      packet.payload.data() + kRmaHeaderSize, header.length);
          ++stats_.writes_served;
          reply.kind = kRmaWriteAck;
        }
      } else {
        ++stats_.reads_served;
        reply.kind = kRmaReadReply;
        reply.payload.assign(it->second.base + header.offset,
                             it->second.base + header.offset + header.length);
        if (const auto* model = engine_.model_for_protocols(); model != nullptr) {
          cost.Charge(model->RecvCopyNs(header.length));
        }
      }
      if (!engine_.wire_for_protocols().Send(std::move(reply)).ok()) {
        FLIPC_LOG(kWarning) << "rma: failed to reply to node " << packet.src_node;
      }
      return;
    }

    case kRmaWriteAck:
    case kRmaReadReply:
    case kRmaReject: {
      ScopedLock<std::mutex> guard(mutex_);
      auto it = operations_.find(packet.seq);
      if (it == operations_.end()) {
        FLIPC_LOG(kWarning) << "rma: stray completion token " << packet.seq;
        return;
      }
      if (packet.kind == kRmaReject) {
        it->second.state = OpState::kRejected;
        ++stats_.operations_failed;
        return;
      }
      if (packet.kind == kRmaReadReply && it->second.read_dst != nullptr) {
        const std::size_t n = packet.payload.size() < it->second.read_size
                                  ? packet.payload.size()
                                  : it->second.read_size;
        std::memcpy(it->second.read_dst, packet.payload.data(), n);
      }
      it->second.state = OpState::kDone;
      ++stats_.operations_completed;
      return;
    }

    default:
      FLIPC_LOG(kWarning) << "rma: unknown packet kind " << packet.kind;
  }
}

}  // namespace flipc::rma
