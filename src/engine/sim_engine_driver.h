// Discrete-event engine driver: the virtual message coprocessor.
//
// Drives a MessagingEngine under a Simulator so every work unit occupies
// the modeled amount of coprocessor time. The driver is kick-based: the
// fabric's delivery callback and the application actors call Kick() when
// they create work. While work remains the driver self-schedules
// back-to-back work units, which models the coprocessor's non-preemptible
// event loop (one protocol's burst delays the others, exactly the paper's
// "excessive consumption may have undesirable side effects on unrelated
// communications" concern).
#ifndef SRC_ENGINE_SIM_ENGINE_DRIVER_H_
#define SRC_ENGINE_SIM_ENGINE_DRIVER_H_

#include "src/base/types.h"
#include "src/engine/messaging_engine.h"
#include "src/simnet/des.h"

namespace flipc::engine {

class SimEngineDriver {
 public:
  SimEngineDriver(simnet::Simulator& sim, MessagingEngine& engine)
      : sim_(sim), engine_(engine) {}
  SimEngineDriver(const SimEngineDriver&) = delete;
  SimEngineDriver& operator=(const SimEngineDriver&) = delete;

  // Notifies the driver that work may exist (packet delivered, buffer
  // released). Idempotent while a step is already scheduled or running.
  void Kick() {
    if (scheduled_) {
      return;
    }
    scheduled_ = true;
    sim_.ScheduleAt(busy_until_ > sim_.Now() ? busy_until_ : sim_.Now(), [this] { RunUnit(); });
  }

  DurationNs busy_ns() const { return busy_ns_; }

 private:
  void RunUnit() {
    scheduled_ = false;
    const DurationNs cost = engine_.PlanStep();
    if (cost == 0 && !engine_.HasWork()) {
      // Idle — but a rate-limited endpoint may hold queued work; wake when
      // its throttle window opens.
      const TimeNs unthrottle = engine_.NextUnthrottleTime();
      if (unthrottle != kTimeNever) {
        scheduled_ = true;
        sim_.ScheduleAt(unthrottle, [this] {
          scheduled_ = false;
          Kick();
        });
      }
      return;
    }
    // The work unit's effects (packet entering the fabric, buffer state
    // flips) occur when the coprocessor finishes the unit, not when it
    // starts it.
    busy_until_ = sim_.Now() + cost;
    busy_ns_ += cost;
    scheduled_ = true;
    sim_.ScheduleAt(busy_until_, [this] {
      scheduled_ = false;
      engine_.CommitStep();
      // Handler work prices itself as it runs; extend the busy window.
      const DurationNs extra = engine_.TakeDeferredCost();
      if (extra > 0) {
        busy_until_ = sim_.Now() + extra;
        busy_ns_ += extra;
      }
      Kick();  // More work? Chain the next unit.
    });
  }

  simnet::Simulator& sim_;
  MessagingEngine& engine_;
  TimeNs busy_until_ = 0;
  DurationNs busy_ns_ = 0;
  bool scheduled_ = false;
};

}  // namespace flipc::engine

#endif  // SRC_ENGINE_SIM_ENGINE_DRIVER_H_
