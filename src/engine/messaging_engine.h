// The FLIPC messaging engine.
//
// "The messaging engine is an independently executing component of the
// system. It is intended to execute on the programmable controller in the
// communication interface when one is present, but can also be implemented
// as part of the operating system kernel for debugging purposes or on
// systems lacking the required hardware."
//
// This class is that component. It touches exactly two things: the
// communication buffer (through the wait-free queue views — the engine-side
// operations are PeekProcess/AdvanceProcess and the engine-written counter
// cells) and a Wire into the fabric. It never blocks on the application; an
// ill-behaved application can at worst make its own endpoints useless.
//
// Execution model: the engine body is a non-preemptible event loop
// (matching the paper's controller "execution restrictions"), decomposed
// into bounded work units. Each unit is either delivering one inbound
// packet or transmitting one released send buffer:
//
//   * real-concurrency mode — a host thread calls Step() in a loop;
//   * simulation mode       — a driver calls PlanStep() to learn the unit's
//     modeled cost, advances virtual time, then CommitStep() to perform it,
//     so packets enter the fabric at the correct virtual instant.
//
// The engine hosts a protocol framework: FLIPC's optimistic protocol is
// built in, and further protocols (KKT, a kernel-IPC stand-in for the
// OSF/1 AD traffic the paper's engine coexisted with) register by id.
#ifndef SRC_ENGINE_MESSAGING_ENGINE_H_
#define SRC_ENGINE_MESSAGING_ENGINE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>

#include <vector>

#include "src/base/clock.h"
#include "src/base/hotpath.h"
#include "src/base/stats.h"
#include "src/base/trace.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/engine/platform_model.h"
#include "src/shm/address.h"
#include "src/shm/comm_buffer.h"
#include "src/simnet/fabric.h"
#include "src/simnet/packet.h"
#include "src/simos/semaphore_table.h"
#include "src/waitfree/handoff_ring.h"

namespace flipc::engine {

struct EngineOptions {
  // Validity checks "that protect the messaging engine against corruption
  // of the communication buffer by an errant or malicious application".
  // The paper measures them at +2 us per one-way message.
  bool validity_checks = false;

  // Future-work extension: scan send endpoints in priority order instead of
  // round-robin, so high-priority streams transmit first under load.
  bool priority_scan = false;

  // Experiment E4: model the pre-tuning communication-buffer layout where
  // application-written and engine-written words shared cache lines. The
  // real data structures stay padded (and correct); this charges the
  // modeled invalidation cost.
  bool model_unpadded_layout = false;

  // O(active) scheduling: consume the communication buffer's doorbell ring
  // instead of sweeping every endpoint slot per step. A low-frequency
  // backstop sweep (below) recovers lost doorbells, and a sweep also runs
  // whenever the doorbell path yields no candidate, so correctness never
  // depends on a doorbell arriving. priority_scan uses the legacy full
  // scan (priority ordering needs to see every endpoint).
  bool doorbell_scheduling = true;

  // Maximum sends coalesced into one work unit; messages after the first
  // must share the first's destination node and come from distinct
  // endpoints (one message per endpoint per unit keeps round-robin
  // fairness). 1 disables batching.
  std::uint32_t transmit_batch = 8;

  // Run the lost-doorbell backstop sweep every this many outbound plans;
  // 0 disables the periodic sweep (the no-candidate sweep still runs).
  std::uint32_t backstop_interval = 64;

  // ---- Sharded engine (DESIGN.md §12) ----
  // This planner's shard id. Each shard plans only the endpoint range the
  // comm buffer's geometry assigns to it (its own doorbell ring, active
  // list, scan cursor). Shard 0 is the DISTRIBUTOR: the one shard that
  // polls the node's wire, delivering own-range packets directly and
  // handing other shards' packets through their SPSC handoff rings. With
  // an unsharded comm buffer (shard_count == 1, the default) the engine
  // behaves exactly as a single planner.
  std::uint32_t shard_id = 0;

  // ---- QoS planner (DESIGN.md §15) ----
  // Per-class service weights for the deficit-weighted class selection
  // over the active list. When several classes stay backlogged, each
  // class's long-run share of transmissions is proportional to its weight;
  // when only one class has ready work the credits are untouched, so
  // all-default assemblies (every endpoint in class 0) keep the exact
  // round-robin rotation. A zero weight still earns selection eventually
  // (credits never decrease below the clamp), so no class can starve.
  std::array<std::uint32_t, shm::kQosClassCount> qos_weights{1, 1, 1, 1};
};

struct EngineStats {
  std::uint64_t work_units = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t drops_no_buffer = 0;    // optimistic-protocol discards
  std::uint64_t drops_bad_address = 0;  // invalid/inactive/mistyped destination
  std::uint64_t validity_rejections = 0;
  // Future-work protection mechanism: sends rejected because the endpoint
  // is restricted to a different destination. Always enforced (protection
  // of other applications cannot be an optional check).
  std::uint64_t protection_rejections = 0;
  std::uint64_t unknown_protocol_packets = 0;
  std::uint64_t semaphore_signals = 0;
  // ---- Doorbell-scheduling observability ----
  std::uint64_t doorbells_consumed = 0;   // ring entries popped
  std::uint64_t doorbell_dups = 0;        // popped for an already-active endpoint
  std::uint64_t doorbell_overflows = 0;   // overflow signals answered with a sweep
  std::uint64_t backstop_sweeps = 0;      // full sweeps (periodic / no-candidate / overflow)
  std::uint64_t endpoints_visited = 0;    // endpoints examined while planning sends;
                                          // the deterministic scan-effort metric
  std::uint64_t transmit_batches = 0;     // outbound work units committed
  std::uint64_t batched_messages = 0;     // messages carried by those units
  // ---- Engine-loop flight-recorder counters ----
  std::uint64_t outbound_plans = 0;       // PlanOutboundBatch invocations
  std::uint64_t sweeps_periodic = 0;      // backstop sweeps from the plan-count interval
  std::uint64_t sweeps_no_candidate = 0;  // sweeps because the hint path came up empty
                                          // (overflow-caused sweeps == doorbell_overflows;
                                          //  the three causes sum to backstop_sweeps)
  // ---- Cross-shard handoff (sharded engine) ----
  std::uint64_t handoff_pushed = 0;       // packets routed into another shard's inbox
  std::uint64_t handoff_popped = 0;       // packets consumed from this shard's inbox
  std::uint64_t handoff_full_retries = 0; // route commits that found the inbox full
                                          // (packet parked, wire polling stalled)
  // ---- Crash recovery ----
  std::uint64_t recoveries = 0;           // RecoverFromBuffer invocations
  std::uint64_t recovered_active = 0;     // endpoints re-activated by recovery sweeps

  // Sums `other` into this (per-shard stats -> node aggregate). The
  // counter identities (backstop_sweeps == doorbell_overflows +
  // sweeps_periodic + sweeps_no_candidate; batched_messages vs
  // transmit_batches) are linear, so they hold for the aggregate exactly
  // when they hold per shard.
  void Add(const EngineStats& other) {
    work_units += other.work_units;
    messages_sent += other.messages_sent;
    bytes_sent += other.bytes_sent;
    messages_delivered += other.messages_delivered;
    drops_no_buffer += other.drops_no_buffer;
    drops_bad_address += other.drops_bad_address;
    validity_rejections += other.validity_rejections;
    protection_rejections += other.protection_rejections;
    unknown_protocol_packets += other.unknown_protocol_packets;
    semaphore_signals += other.semaphore_signals;
    doorbells_consumed += other.doorbells_consumed;
    doorbell_dups += other.doorbell_dups;
    doorbell_overflows += other.doorbell_overflows;
    backstop_sweeps += other.backstop_sweeps;
    endpoints_visited += other.endpoints_visited;
    transmit_batches += other.transmit_batches;
    batched_messages += other.batched_messages;
    outbound_plans += other.outbound_plans;
    sweeps_periodic += other.sweeps_periodic;
    sweeps_no_candidate += other.sweeps_no_candidate;
    handoff_pushed += other.handoff_pushed;
    handoff_popped += other.handoff_popped;
    handoff_full_retries += other.handoff_full_retries;
    recoveries += other.recoveries;
    recovered_active += other.recovered_active;
  }
};

// Engine-loop latency telemetry. Host-memory (the histograms are
// heap-backed), so it lives beside the engine, not in the comm buffer;
// attach via SetTelemetry. Recording is pure stores into preallocated
// buckets, so it is hot-path legal once constructed.
struct EngineTelemetry {
  // Modeled cost of each committed work unit (plan-time price), ns.
  Histogram plan_cost_ns{0.0, 100000.0, 128};
  // Messages coalesced into each outbound work unit.
  Histogram batch_size{0.0, 65.0, 65};

  // Sums `other`'s buckets into this (per-shard telemetry -> node
  // aggregate); both sides use the fixed bucket configs above.
  void Merge(const EngineTelemetry& other) {
    plan_cost_ns.Merge(other.plan_cost_ns);
    batch_size.Merge(other.batch_size);
  }
};

// A protocol sharing the engine's event loop (the Paragon message
// coprocessor ran FLIPC alongside the OSF/1 AD protocols in one framework).
class ProtocolHandler {
 public:
  virtual ~ProtocolHandler() = default;

  // An inbound packet with this handler's protocol id.
  virtual void HandlePacket(simnet::Packet packet, simnet::CostAccumulator& cost) = 0;

  // Performs at most one unit of outbound work; returns whether any was done.
  virtual bool PollWork(simnet::CostAccumulator& cost) = 0;

  virtual bool HasWork() const { return false; }

  // Modeled cost of handling `packet`, priced at plan time so the work
  // unit's effects land at the right virtual instant.
  virtual DurationNs PlanCost(const simnet::Packet& packet) const {
    (void)packet;
    return 0;
  }
};

class MessagingEngine {
 public:
  // `model` may be null (real-concurrency mode: no cost accounting).
  // `semaphores` may be null if no endpoint uses the semaphore option.
  MessagingEngine(shm::CommBuffer& comm, simnet::Wire& wire, EngineOptions options,
                  const PlatformModel* model = nullptr,
                  simos::SemaphoreTable* semaphores = nullptr);
  virtual ~MessagingEngine() = default;
  MessagingEngine(const MessagingEngine&) = delete;
  MessagingEngine& operator=(const MessagingEngine&) = delete;

  // ---- Protocol framework ----
  Status RegisterProtocol(std::uint32_t protocol_id, ProtocolHandler* handler);

  // ---- Event loop ----

  // Examines state and selects the next work unit; returns its modeled cost
  // (0 when there is nothing to do). Idempotent until CommitStep().
  FLIPC_ROLE_ENGINE DurationNs PlanStep();

  // Executes the planned work unit (plans one first if none is pending).
  // Returns whether any work was performed.
  FLIPC_ROLE_ENGINE bool CommitStep();

  // Plan + commit in one call; used by the real-concurrency runner.
  FLIPC_ROLE_ENGINE bool Step();

  // ---- Crash recovery (DESIGN.md §14) ----

  // Rebuilds this shard's scheduling state purely from the authoritative
  // queue cursors of a communication buffer abandoned by a dead engine:
  // fast-forwards the doorbell ring's consume cursor (doorbells are hints;
  // the sweep below rediscovers their work), clears any half-planned work
  // unit, and re-activates every send endpoint in the shard's range with
  // processable work. Must run while NO other engine-side actor touches
  // this shard's range (the quiescent role) — typically on a freshly
  // constructed engine before its runner starts. The sweep here is not a
  // backstop sweep (it does not count toward backstop_sweeps, preserving
  // the sweep-cause identity); it increments stats_.recoveries instead.
  FLIPC_ROLE_QUIESCENT void RecoverFromBuffer();

  bool HasWork() const;

  // Optional flight recorder; events are stamped with the engine's clock
  // (virtual under the DES, zero without a clock). Single-writer: only the
  // engine's own loop records here.
  void SetTrace(TraceRing* trace) { trace_ = trace; }

  // Optional latency histograms, caller-owned; null (the default) keeps the
  // commit path free of even the branch-plus-stores cost.
  void SetTelemetry(EngineTelemetry* telemetry) { telemetry_ = telemetry; }

  // Clock used by the capacity-control (rate-limit) extension; without a
  // clock, min_send_interval_ns / token-bucket / deadline configurations
  // are ignored. The SimCluster wires the simulator's virtual clock,
  // Cluster wires the real one.
  void SetClock(const Clock* clock) { clock_ = clock; }
  const Clock* clock() const { return clock_; }

  // ---- Sharded engine wiring (DESIGN.md §12) ----

  using HandoffRing = waitfree::SpscHandoffRing<simnet::Packet>;

  // The SPSC ring this shard CONSUMES cross-shard inbound packets from
  // (producer: the distributor). Unset on the distributor itself.
  void SetHandoffInbox(HandoffRing* ring) { handoff_inbox_ = ring; }

  // The ring the distributor PRODUCES into for `shard`'s packets. Only
  // meaningful on the distributor; rings for all non-distributor shards
  // must be wired before traffic flows.
  void SetHandoffOutbox(std::uint32_t shard, HandoffRing* ring) {
    handoff_outboxes_[shard] = ring;
  }

  // Wakes `shard`'s runner after a handoff push (the consumer may be
  // parked in its idle backoff, exactly like the app->engine kick).
  void SetShardKick(std::function<void(std::uint32_t shard)> kick) {
    shard_kick_ = std::move(kick);
  }

  std::uint32_t shard_id() const { return shard_id_; }
  // This shard's endpoint range [first, end).
  std::uint32_t shard_first_endpoint() const { return shard_first_; }
  std::uint32_t shard_end_endpoint() const { return shard_end_; }
  // The distributor is the one shard that polls the node's wire (preserving
  // the fabric's per-(src,dst) FIFO order through one consumer).
  bool is_distributor() const { return shard_id_ == 0; }

  // Earliest virtual/real time at which a currently throttled send
  // endpoint becomes eligible again; kTimeNever when nothing is throttled.
  // Simulation drivers use this to schedule their next wake-up.
  TimeNs NextUnthrottleTime() const;

  // Modeled cost accumulated by protocol handlers during CommitStep()
  // (their costs are only known as they run, unlike the built-in FLIPC
  // paths which are priced at plan time). The simulation driver drains this
  // after each commit and extends the coprocessor's busy window.
  DurationNs TakeDeferredCost() {
    const DurationNs cost = deferred_cost_;
    deferred_cost_ = 0;
    return cost;
  }

  // ---- Observation hooks (simulation drivers / tests) ----

  // Fired after the engine finishes a receive attempt on an endpoint
  // (delivered == false means the optimistic protocol discarded the
  // message for lack of a posted buffer).
  void SetReceiveHook(std::function<void(std::uint32_t endpoint, bool delivered)> hook) {
    receive_hook_ = std::move(hook);
  }

  // Fired after a send buffer completes (is re-acquirable by the app).
  void SetSendCompleteHook(std::function<void(std::uint32_t endpoint)> hook) {
    send_complete_hook_ = std::move(hook);
  }

  const EngineStats& stats() const { return stats_; }
  NodeId node() const { return wire_.node(); }

  // Resources shared with registered protocol handlers: the coprocessor's
  // wire and (in simulation) the cost model. Handlers transmit their own
  // packets through the same interface FLIPC traffic uses.
  simnet::Wire& wire_for_protocols() { return wire_; }
  const PlatformModel* model_for_protocols() const { return model_; }

  shm::CommBuffer& comm() { return comm_; }
  const EngineOptions& options() const { return options_; }

 protected:
  // Transmission strategy; the native engine sends one optimistic packet
  // and completes immediately. The KKT engine overrides this (RPC per
  // message, deferred completion).
  virtual void TransmitMessage(std::uint32_t endpoint_index, waitfree::BufferIndex buffer,
                               Address src, Address dst, simnet::CostAccumulator& cost);

  // True when the endpoint must not transmit now (KKT: RPC in flight).
  virtual bool EndpointBlocked(std::uint32_t endpoint_index) const;

  // Extra plan-time cost of this engine's transmission strategy (KKT: the
  // RPC marshal + kernel send path).
  virtual DurationNs TransmitPlanCost() const { return 0; }

  // Marks the head send buffer of `endpoint_index` complete and advances
  // the process cursor; signals the endpoint semaphore if configured.
  void CompleteSend(std::uint32_t endpoint_index);

  // Delivers a FLIPC message payload to a local receive endpoint, applying
  // the optimistic protocol's discard rule. Used by the native inbound path
  // and by the KKT request handler.
  void DeliverLocal(const simnet::Packet& packet, simnet::CostAccumulator& cost);

  simnet::Wire& wire() { return wire_; }
  const PlatformModel* model() const { return model_; }

  void ChargeModel(simnet::CostAccumulator& cost, DurationNs ns) {
    if (model_ != nullptr) {
      cost.Charge(ns);
    }
  }

  EngineStats stats_;

 private:
  enum class WorkKind { kNone, kInbound, kOutbound, kHandler, kRoute };

  // Scans send endpoints (round-robin or priority order) for releasable
  // work; returns the endpoint index or kInvalidEndpoint. Legacy path:
  // used when doorbell scheduling is off or priority_scan is on.
  std::uint32_t FindSendWork();

  // True when the engine schedules sends from the doorbell ring + active
  // list instead of the legacy full scan.
  bool UseDoorbellScheduling() const {
    return options_.doorbell_scheduling && !options_.priority_scan;
  }

  // ---- Doorbell scheduling (engine-private hint state) ----

  // Fills planned_batch_ with up to transmit_batch ready same-destination
  // endpoints: drains the ring, runs the periodic/overflow/no-candidate
  // backstop sweeps, and rotates the active list.
  void PlanOutboundBatch();

  // Pops published doorbells into the active list (overflow answered with
  // a covering sweep first).
  void DrainDoorbells();

  // Adds `endpoint` to the active list unless already a member.
  void ActivateEndpoint(std::uint32_t endpoint);

  // The lost-doorbell backstop: activates every send endpoint with
  // processable work. O(configured endpoints); runs at low frequency.
  void SweepAllEndpoints();

  // One rotation over the active list selecting the batch; returns whether
  // anything was selected. Drained endpoints leave the list; blocked or
  // throttled ones rotate to the back.
  bool SelectBatchFromActive();

  // True when `endpoint` is a send endpoint with processable work that is
  // not blocked (KKT in-flight) or throttled (rate limit).
  bool SendReady(std::uint32_t endpoint, TimeNs now) const;

  TimeNs NowForThrottle() const {
    return clock_ != nullptr ? clock_->NowNs() : 0;
  }

  // ---- QoS planner helpers (engine-private state; DESIGN.md §15) ----

  // True when the endpoint's rate limits (min_send_interval_ns and/or the
  // token bucket) forbid transmitting at `now`. Pure read: a slot whose
  // alloc_generation differs from the engine's copy is never throttled
  // (its recorded state belongs to the previous tenant).
  bool Throttled(std::uint32_t endpoint, const shm::EndpointRecord& record,
                 TimeNs now) const;

  // Tokens the endpoint's bucket would hold at `now`, counting accrued
  // refills without mutating the bucket state.
  std::uint32_t BucketTokensAt(std::uint32_t endpoint, const shm::EndpointRecord& record,
                               TimeNs now) const;

  // Folds accrued refills into the bucket state (called on the commit path
  // before a token is consumed).
  void RefillBucket(std::uint32_t endpoint, const shm::EndpointRecord& record, TimeNs now);

  // Detects slot reuse via EndpointRecord.alloc_generation and resets the
  // engine-private throttle/bucket/head-tracking state for the new tenant.
  // The churn bugfix: without this, a fresh endpoint inherited the previous
  // tenant's next_send_ok_ deadline.
  void SyncSlotState(std::uint32_t endpoint);

  // Stamps when the endpoint's current head message was first observed
  // (process_count changed); the base for EDF deadlines, deadline-miss
  // accounting and the service-gap telemetry.
  void NoteHeadObserved(std::uint32_t endpoint, TimeNs now);

  // The endpoint's class, clamped to [0, kQosClassCount).
  static std::uint32_t QosClassOf(const shm::EndpointRecord& record) {
    const std::uint32_t cls = record.qos_class.ReadRelaxed();
    return cls < shm::kQosClassCount ? cls : shm::kQosClassCount - 1;
  }

  // Absolute deadline of the endpoint's head message (head-observed stamp
  // plus the configured relative deadline).
  TimeNs HeadDeadline(std::uint32_t endpoint, const shm::EndpointRecord& record) const {
    return head_seen_at_[endpoint] +
           static_cast<TimeNs>(record.deadline_ns.ReadRelaxed());
  }

  // Validity checks on an application-released send buffer. Returns true
  // if the message may be transmitted.
  bool ValidateSendBuffer(std::uint32_t endpoint_index, waitfree::BufferIndex buffer);

  void CommitInbound(simnet::CostAccumulator& cost);
  void CommitOutbound(simnet::CostAccumulator& cost);

  // Transmits the head message of one endpoint (validity, protection and
  // rate-limit checks included); shared by the legacy single-send commit
  // and the batched commit.
  void CommitOutboundOne(std::uint32_t endpoint_index, simnet::CostAccumulator& cost);

  // Shard of the packet's destination endpoint, for inbound routing; an
  // invalid destination stays on the distributor (DeliverLocal counts it).
  std::uint32_t RouteShardFor(const simnet::Packet& packet) const;

  shm::CommBuffer& comm_;
  simnet::Wire& wire_;
  EngineOptions options_;
  const PlatformModel* model_;
  simos::SemaphoreTable* semaphores_;
  const Clock* clock_ = nullptr;
  TraceRing* trace_ = nullptr;
  EngineTelemetry* telemetry_ = nullptr;

  // ---- Sharded-engine state ----
  std::uint32_t shard_id_ = 0;
  std::uint32_t shard_first_ = 0;  // this shard's endpoint range [first, end)
  std::uint32_t shard_end_ = 0;
  HandoffRing* handoff_inbox_ = nullptr;
  std::vector<HandoffRing*> handoff_outboxes_;  // by consumer shard; distributor only
  std::function<void(std::uint32_t)> shard_kick_;
  // A routed packet whose inbox was full: the ONLY copy of that message.
  // The distributor retries it before polling the wire again (bounded
  // memory, per-(src,dst) order preserved, liveness restored by the
  // consumer's progress).
  std::optional<simnet::Packet> parked_packet_;
  std::uint32_t parked_shard_ = 0;
  std::uint32_t planned_route_shard_ = 0;

  void Trace(TraceEvent event, std::uint32_t a = 0, std::uint64_t b = 0) {
    if (trace_ != nullptr) {
      trace_->Record(clock_ != nullptr ? clock_->NowNs() : 0, event, a, b);
    }
  }

  // Rate-limit extension state: earliest next transmission per endpoint
  // (engine-private; not part of the shared communication buffer).
  std::vector<TimeNs> next_send_ok_;

  // ---- QoS planner state (engine-private; DESIGN.md §15) ----
  // Last EndpointRecord.alloc_generation observed per slot; 0 = never seen
  // (AllocateEndpoint skips generation 0). A mismatch marks slot reuse.
  std::vector<std::uint32_t> seen_generation_;
  // Token-bucket state: current tokens and the accrual origin of the next
  // refill. Sized at construction like next_send_ok_.
  std::vector<std::uint32_t> bucket_tokens_;
  std::vector<TimeNs> bucket_refill_at_;
  // Head-message observation: the process_count value the stamp below was
  // taken at (kNoHeadSeen = stamp invalid) and when it was taken.
  static constexpr std::uint32_t kNoHeadSeen = 0xffffffffu;
  std::vector<std::uint32_t> head_seen_count_;
  std::vector<TimeNs> head_seen_at_;
  // Deficit-weighted class selection: per-class credit. Backlogged classes
  // earn their weight per plan, the serving class pays one unit per
  // selected message; clamped so a long monopoly cannot bank unbounded
  // credit (or debt).
  static constexpr std::int64_t kQosCreditClamp = 1 << 20;
  std::array<std::int64_t, shm::kQosClassCount> class_credit_{};
  // Selection scratch (capacity reserved at construction; the plan path
  // must never allocate): pass-1 ready candidates in rotation order and
  // the taken flag per scratch position.
  std::vector<std::uint32_t> scratch_ready_;
  std::vector<char> scratch_taken_;

  static constexpr std::uint32_t kMaxProtocols = 8;
  std::array<ProtocolHandler*, kMaxProtocols> handlers_{};

  // Planned work unit.
  WorkKind planned_ = WorkKind::kNone;
  std::optional<simnet::Packet> planned_packet_;
  std::uint32_t planned_endpoint_ = shm::kInvalidEndpoint;
  std::uint32_t planned_handler_ = 0;
  DurationNs planned_cost_ = 0;

  std::uint32_t scan_cursor_ = 0;
  // Legacy-scan fairness: CommitOutbound advances scan_cursor_ only when
  // the delivered endpoint was the round-robin candidate. A priority
  // preemption must NOT reset the rotation point, or equal-priority
  // endpoints past the preempted one starve (the cursor would re-walk the
  // same prefix after every preemption).
  bool planned_rotation_advance_ = true;
  std::uint64_t send_seq_ = 0;

  // Fixed-capacity FIFO of endpoint indices. Replaces std::deque so the
  // engine's plan path never allocates (a deque grows on push_back — a
  // hot-path guard violation and a latency hazard). Membership is deduped
  // by in_active_, so at most max_endpoints entries ever coexist; storage
  // is sized once at construction and never reallocated. A push beyond
  // capacity (impossible under the dedup invariant) drops the entry —
  // doorbell hints are recoverable by the backstop sweep, so losing one is
  // safe where resizing would not be.
  class ActiveList {
   public:
    explicit ActiveList(std::uint32_t max_entries) : slots_(max_entries + 1) {}

    bool empty() const { return head_ == tail_; }
    std::size_t size() const {
      const std::size_t n = slots_.size();
      return (tail_ + n - head_) % n;
    }
    std::uint32_t front() const { return slots_[head_]; }
    void pop_front() { head_ = Next(head_); }
    void push_back(std::uint32_t endpoint) {
      const std::size_t next = Next(tail_);
      if (next == head_) {
        return;  // Full: shed the hint rather than grow.
      }
      slots_[tail_] = endpoint;
      tail_ = next;
    }
    // i-th entry from the front (0 <= i < size()); for HasWork's scan.
    std::uint32_t at(std::size_t i) const {
      return slots_[(head_ + i) % slots_.size()];
    }

   private:
    std::size_t Next(std::size_t pos) const { return (pos + 1) % slots_.size(); }

    std::vector<std::uint32_t> slots_;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
  };

  // Doorbell-scheduling state (engine-private; the shared ring lives in
  // the communication buffer). active_ holds endpoints believed to have
  // send work, FIFO for round-robin fairness; in_active_ is its membership
  // flag per endpoint (covers active_ AND planned_batch_).
  ActiveList active_;
  std::vector<char> in_active_;
  std::vector<std::uint32_t> planned_batch_;
  std::uint64_t outbound_plans_ = 0;

  std::function<void(std::uint32_t, bool)> receive_hook_;
  std::function<void(std::uint32_t)> send_complete_hook_;
  DurationNs deferred_cost_ = 0;
};

}  // namespace flipc::engine

#endif  // SRC_ENGINE_MESSAGING_ENGINE_H_
