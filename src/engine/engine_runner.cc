#include "src/engine/engine_runner.h"

#include <chrono>

#include "src/base/hotpath.h"
#include "src/waitfree/boundary_check.h"

namespace flipc::engine {

EngineRunner::EngineRunner(MessagingEngine& engine) : engine_(engine) {}

EngineRunner::~EngineRunner() { Stop(); }

void EngineRunner::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return;
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void EngineRunner::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  Kick();
  thread_.join();
  running_.store(false, std::memory_order_release);
}

void EngineRunner::Kick() {
  kicks_.fetch_add(1, std::memory_order_release);
  idle_cv_.notify_one();
}

void EngineRunner::Loop() {
  // This thread IS the messaging engine: register it with the ownership
  // race detector so any write it makes to an application-owned word in
  // the communication buffer aborts with a diagnostic (no-op unless
  // FLIPC_CHECK_SINGLE_WRITER).
  waitfree::BoundaryRole::BindCurrentThread(waitfree::Writer::kEngine);

  // Number of consecutive empty polls before parking.
  constexpr int kSpinBudget = 64;
  int idle_polls = 0;

  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t kicks_before = kicks_.load(std::memory_order_acquire);
    if (engine_.Step()) {
      idle_polls = 0;
      continue;
    }
    if (++idle_polls < kSpinBudget) {
      std::this_thread::yield();
      continue;
    }
    // Parking the engine's host thread is a blocking call. The engine has
    // already reported no work, so no hot-path scope should be open here —
    // if one ever is, the guard makes the mistake loud.
    hotpath::OnBlockingCall("EngineRunner idle park");
    idle_parks_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(idle_mutex_);
    idle_cv_.wait_for(lock, std::chrono::microseconds(200), [&] {
      return stop_.load(std::memory_order_acquire) ||
             kicks_.load(std::memory_order_acquire) != kicks_before;
    });
    idle_polls = 0;
  }

  waitfree::BoundaryRole::UnbindCurrentThread();
}

}  // namespace flipc::engine
