#include "src/engine/engine_runner.h"

#include <chrono>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "src/base/hotpath.h"
#include "src/waitfree/boundary_check.h"

namespace flipc::engine {

EngineRunner::EngineRunner(MessagingEngine& engine, Options options)
    : engine_(engine), options_(options) {}

EngineRunner::~EngineRunner() { Stop(); }

void EngineRunner::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return;
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void EngineRunner::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  Kick();
  thread_.join();
  running_.store(false, std::memory_order_release);
}

void EngineRunner::Kick() {
  kicks_.fetch_add(1, std::memory_order_release);
  idle_cv_.notify_one();
}

void EngineRunner::ApplyPlacement() {
#if defined(__linux__)
  if (options_.pin_cpu >= 0) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(options_.pin_cpu), &set);
    // Best-effort: an out-of-range CPU (smaller machine than the assembly
    // assumed) leaves the thread unpinned rather than failing the node.
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
  if (options_.warm_touch) {
    // Touch this shard's endpoint-record and telemetry slice from the
    // (possibly just-pinned) loop thread. Reads suffice: the comm buffer
    // is already formatted, so this orders no writes — it only pulls the
    // slice local (first-touch already happened at format; on NUMA hosts
    // pinning + an eventual kernel migration or a hugepage-local format
    // policy do the rest).
    std::uint64_t acc = 0;
    shm::CommBuffer& comm = engine_.comm();
    for (std::uint32_t i = engine_.shard_first_endpoint();
         i < engine_.shard_end_endpoint(); ++i) {
      acc += comm.endpoint(i).queue_capacity.ReadRelaxed();
      acc += comm.telemetry(i).engine_transmits.ReadRelaxed();
    }
    volatile std::uint64_t sink = acc;
    (void)sink;
  }
}

void EngineRunner::Loop() {
  // This thread IS the messaging engine — one shard planner of it, when
  // sharded: register it with the ownership race detector (qualified by
  // the engine's shard) so any write it makes to an application-owned word
  // OR another shard's engine-owned word in the communication buffer
  // aborts with a diagnostic (no-op unless FLIPC_CHECK_SINGLE_WRITER).
  waitfree::BoundaryRole::BindCurrentThread(waitfree::Writer::kEngine,
                                            engine_.shard_id());
  ApplyPlacement();

  // Number of consecutive empty polls before parking.
  constexpr int kSpinBudget = 64;
  int idle_polls = 0;

  FLIPC_UNBOUNDED_WAIT("engine thread main loop: runs until Stop()");
  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t kicks_before = kicks_.load(std::memory_order_acquire);
    if (engine_.Step()) {
      idle_polls = 0;
      continue;
    }
    if (++idle_polls < kSpinBudget) {
      std::this_thread::yield();
      continue;
    }
    // Parking the engine's host thread is a blocking call. The engine has
    // already reported no work, so no hot-path scope should be open here —
    // if one ever is, the guard makes the mistake loud.
    hotpath::OnBlockingCall("EngineRunner idle park");
    // Cap the park at the engine's earliest unthrottle instant: a doorbell
    // kick wakes the loop for NEW work, but work already queued behind a
    // rate gate generates no kick when the gate lapses — only the timeout
    // can discover it, so the timeout must not overshoot the gate.
    const Clock* clock = engine_.clock();
    const TimeNs now = clock != nullptr ? clock->NowNs() : 0;
    const DurationNs park_ns =
        IdleParkNs(now, engine_.NextUnthrottleTime(), options_.max_idle_park_ns);
    idle_parks_.fetch_add(1, std::memory_order_relaxed);
    if (park_ns > 0) {
      std::unique_lock<std::mutex> lock(idle_mutex_);
      idle_cv_.wait_for(lock, std::chrono::nanoseconds(park_ns), [&] {
        return stop_.load(std::memory_order_acquire) ||
               kicks_.load(std::memory_order_acquire) != kicks_before;
      });
    }
    idle_polls = 0;
  }

  waitfree::BoundaryRole::UnbindCurrentThread();
}

}  // namespace flipc::engine
