// Platform cost models.
//
// Single home for every calibrated constant used by the discrete-event
// reproduction of the paper's measurements. The Paragon MP3 model is
// calibrated so the end-to-end pipeline reproduces Figure 4:
//
//   one-way latency(m >= 96 B) = 15.45 us + 6.25 ns/byte
//
// decomposed as (one-way, steady state, lock-free variants, checks off):
//
//   application send library            2 450 ns   (app CPU)
//   engine dispatch (sender)              300 ns   (coprocessor)
//   engine send: scan + DMA setup       4 600 ns   (coprocessor)
//   wire fixed: inject/eject + 2 hops     180 ns   (fabric: 100 + 2*40)
//   wire header serialization              80 ns   (16 B * 5 ns/B)
//   engine dispatch (receiver)            300 ns   (coprocessor)
//   engine receive: accept + fill       4 980 ns   (coprocessor)
//   application receive library         2 650 ns   (app CPU)
//   ------------------------------------------------------------------
//   total fixed                        15 450 ns
//
//   per byte: 5.00 ns/B wire serialization (200 MB/s hardware peak)
//           + 1.25 ns/B receiver buffer fill  = 6.25 ns/B
//
// The remaining paper observations are additive deltas on this pipeline:
//   * validity checks: +2 us one-way (+1 us per engine side);
//   * bus-locked test-and-set interface variants: 1 900 ns per lock
//     operation (the Paragon caches had no lock residency, so each
//     acquisition locked the memory bus);
//   * unpadded (false-sharing) communication-buffer layout: extra cache
//     line invalidations worth 1 850 ns per message at each of the four
//     participants (two application sides, two engines) = 7.4 us per
//     one-way message; together with the four 1 900 ns lock operations
//     (7.6 us) this is the paper's "15 us, almost a factor of two";
//   * cache start-up transient: the steady-state test loop suffers
//     1 500 ns of extra misses per side per exchange that the first few
//     exchanges do not (the paper's "about 3 us faster" short runs).
#ifndef SRC_ENGINE_PLATFORM_MODEL_H_
#define SRC_ENGINE_PLATFORM_MODEL_H_

#include <cstdint>

#include "src/base/types.h"

namespace flipc::engine {

struct PlatformModel {
  // ---- Engine (message coprocessor) side ----
  DurationNs engine_dispatch_ns = 300;       // notice + dequeue one work item
  DurationNs send_overhead_ns = 4'600;       // endpoint scan, DMA setup, launch
  // Each additional message coalesced into an already-dispatched transmit
  // batch: DMA setup + launch without the dispatch and endpoint-scan share
  // of send_overhead_ns (the batch amortizes those).
  DurationNs send_batch_extra_ns = 3'400;
  DurationNs recv_overhead_ns = 4'980;       // packet accept, queue check, state update
  DurationNs recv_copy_per_byte_x100 = 125;  // buffer fill not fully pipelined
  DurationNs validity_check_ns = 1'000;      // per message, each engine, when enabled
  DurationNs engine_false_sharing_ns = 1'850;// per message, each engine, unpadded layout

  // Messages strictly below this size fit one DMA burst and skip a
  // pipeline stage ("shorter messages can be sent slightly faster" —
  // Figure 4's line holds from 96 bytes up).
  std::uint32_t small_msg_threshold_bytes = 96;
  DurationNs small_msg_discount_ns = 350;

  // ---- Application (compute processor) side; charged by workload actors ----
  DurationNs app_send_ns = 2'450;            // buffer release + queue update
  DurationNs app_recv_ns = 2'650;            // poll + acquire + state check
  DurationNs app_buffer_mgmt_ns = 700;       // allocate/provide/recover call
  DurationNs lock_op_ns = 1'900;             // one bus-locked test-and-set acquire
  DurationNs app_false_sharing_ns = 1'850;   // per message, each side, unpadded layout
  DurationNs cache_steady_penalty_ns = 1'500;// per side per exchange, steady state

  // ---- Derived helpers ----
  DurationNs RecvCopyNs(std::size_t bytes) const {
    return static_cast<DurationNs>(bytes) * recv_copy_per_byte_x100 / 100;
  }
};

// The native Paragon MP3 configuration measured in the paper.
inline PlatformModel ParagonModel() { return PlatformModel{}; }

// Development-cluster models: the engine work is done by the host CPU in
// the kernel (no message coprocessor), so per-message overheads are larger
// and include trap costs. Used by the KKT portability experiment (E8).
inline PlatformModel PcClusterModel() {
  PlatformModel m;
  m.engine_dispatch_ns = 2'000;   // interrupt + kernel entry
  m.send_overhead_ns = 12'000;    // kernel transport send path
  m.recv_overhead_ns = 12'000;
  m.recv_copy_per_byte_x100 = 600;
  m.app_send_ns = 3'000;
  m.app_recv_ns = 3'000;
  return m;
}

// KKT ("Kernel to Kernel Transport") overheads: the portable development
// engine delivered each FLIPC message with an RPC, i.e. a full
// request/response exchange through the kernel transport. These constants
// model the per-RPC kernel costs on top of whichever PlatformModel applies.
struct KktModel {
  DurationNs rpc_send_ns = 9'000;    // marshal + kernel send of the request
  DurationNs rpc_recv_ns = 9'000;    // unmarshal + dispatch at the receiver
  DurationNs ack_ns = 4'000;         // reply generation + completion handling
};

}  // namespace flipc::engine

#endif  // SRC_ENGINE_PLATFORM_MODEL_H_
