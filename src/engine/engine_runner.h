// Real-concurrency engine driver: runs a MessagingEngine's event loop on a
// dedicated host thread, standing in for the Paragon MP3 node's message
// coprocessor. Used by the examples and the multi-threaded stress tests.
#ifndef SRC_ENGINE_ENGINE_RUNNER_H_
#define SRC_ENGINE_ENGINE_RUNNER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/base/hotpath.h"
#include "src/engine/messaging_engine.h"

namespace flipc::engine {

class EngineRunner {
 public:
  struct Options {
    // Pin the loop thread to this CPU (Linux only; -1 = unpinned). With the
    // sharded engine, pinning each shard's planner to its own core keeps a
    // shard's comm-buffer slice resident in that core's cache — the NUMA
    // placement half of DESIGN.md §12.
    int pin_cpu = -1;
    // Read-touch the engine's endpoint-range slice of the comm buffer from
    // the loop thread before entering the loop. On first-touch NUMA
    // systems this faults the shard's pages onto the planner's node; on
    // UMA hosts it is a cheap cache warm.
    bool warm_touch = false;
    // Longest the loop parks on its idle condvar before re-polling. The
    // park is capped further by the engine's next unthrottle deadline (see
    // IdleParkNs): a throttled endpoint whose gate lapses sooner than this
    // must not wait out the full interval — that was the fixed-200us bug
    // that added up to 200us of latency to every rate-limited release
    // arriving while the node was otherwise quiet.
    DurationNs max_idle_park_ns = 200'000;
  };

  // Takes a non-owning reference; the engine (and everything it references)
  // must outlive the runner.
  explicit EngineRunner(MessagingEngine& engine) : EngineRunner(engine, Options()) {}
  EngineRunner(MessagingEngine& engine, Options options);
  ~EngineRunner();
  EngineRunner(const EngineRunner&) = delete;
  EngineRunner& operator=(const EngineRunner&) = delete;

  void Start();
  void Stop();

  // Wakes the loop if it is sleeping in its idle backoff. The application
  // library calls this after releasing buffers; the fabric's delivery
  // callback should also be pointed here.
  void Kick();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Times the loop exhausted its spin budget and parked on the idle
  // condvar. With the doorbell scheduler this should grow only while the
  // node is genuinely quiet; parks during steady traffic mean lost kicks.
  std::uint64_t idle_parks() const { return idle_parks_.load(std::memory_order_relaxed); }

  // Total Kick() calls observed; with idle_parks() this is the kick-path
  // liveness picture the failure-scenario tests assert over.
  std::uint64_t kicks() const { return kicks_.load(std::memory_order_relaxed); }

  // How long an idle park may sleep, given the engine's earliest
  // unthrottle instant. Pure so the regression test can pin the edge
  // cases: no throttled work (kTimeNever) sleeps the configured maximum, a
  // lapsed gate does not sleep at all, and a pending gate caps the sleep
  // at exactly the remaining wait.
  static DurationNs IdleParkNs(TimeNs now, TimeNs next_unthrottle,
                               DurationNs max_park_ns) {
    if (next_unthrottle == kTimeNever) {
      return max_park_ns;
    }
    if (next_unthrottle <= now) {
      return 0;
    }
    const TimeNs remaining = next_unthrottle - now;
    return remaining < max_park_ns ? remaining : max_park_ns;
  }

 private:
  FLIPC_ROLE_ENGINE void Loop();

  // Placement steps run once at loop start, on the loop thread.
  void ApplyPlacement();

  MessagingEngine& engine_;
  Options options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  // Idle parking. The real coprocessor spins; on a shared host we spin
  // briefly and then park, to keep single-CPU test machines usable.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::atomic<std::uint64_t> kicks_{0};
  std::atomic<std::uint64_t> idle_parks_{0};
};

}  // namespace flipc::engine

#endif  // SRC_ENGINE_ENGINE_RUNNER_H_
