#include "src/engine/messaging_engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/base/hotpath.h"
#include "src/base/log.h"
#include "src/waitfree/msg_state.h"

namespace flipc::engine {

using shm::EndpointRecord;
using shm::EndpointType;
using waitfree::BufferIndex;
using waitfree::MsgState;

MessagingEngine::MessagingEngine(shm::CommBuffer& comm, simnet::Wire& wire,
                                 EngineOptions options, const PlatformModel* model,
                                 simos::SemaphoreTable* semaphores)
    : comm_(comm),
      wire_(wire),
      options_(options),
      model_(model),
      semaphores_(semaphores),
      handoff_outboxes_(comm.shard_count(), nullptr),
      next_send_ok_(comm.max_endpoints(), 0),
      seen_generation_(comm.max_endpoints(), 0),
      bucket_tokens_(comm.max_endpoints(), 0),
      bucket_refill_at_(comm.max_endpoints(), 0),
      head_seen_count_(comm.max_endpoints(), kNoHeadSeen),
      head_seen_at_(comm.max_endpoints(), 0),
      scratch_taken_(comm.max_endpoints(), 0),
      active_(comm.max_endpoints()),
      in_active_(comm.max_endpoints(), 0) {
  // Batch + selection storage is sized here, once: the plan path must
  // never allocate.
  planned_batch_.reserve(options_.transmit_batch < 1 ? 1 : options_.transmit_batch);
  scratch_ready_.reserve(comm.max_endpoints());
  if (options_.shard_id >= comm.shard_count()) {
    FLIPC_LOG(kError) << "engine shard id " << options_.shard_id << " out of range for a "
                      << comm.shard_count() << "-shard comm buffer; using shard 0";
    options_.shard_id = 0;
  }
  shard_id_ = options_.shard_id;
  shard_first_ = comm.shard_first_endpoint(shard_id_);
  shard_end_ = comm.shard_end_endpoint(shard_id_);
}

Status MessagingEngine::RegisterProtocol(std::uint32_t protocol_id, ProtocolHandler* handler) {
  if (protocol_id == simnet::kProtocolFlipc || protocol_id >= kMaxProtocols) {
    return InvalidArgumentStatus();
  }
  if (handlers_[protocol_id] != nullptr && handler != nullptr) {
    return FailedPreconditionStatus();
  }
  handlers_[protocol_id] = handler;
  return OkStatus();
}

bool MessagingEngine::EndpointBlocked(std::uint32_t) const { return false; }

bool MessagingEngine::SendReady(std::uint32_t endpoint, TimeNs now) const {
  const EndpointRecord& record = comm_.endpoint(endpoint);
  if (record.Type() != EndpointType::kSend || EndpointBlocked(endpoint)) {
    return false;
  }
  if (const_cast<shm::CommBuffer&>(comm_).queue(endpoint).ProcessableCount() == 0) {
    return false;
  }
  return !Throttled(endpoint, record, now);
}

bool MessagingEngine::Throttled(std::uint32_t endpoint, const EndpointRecord& record,
                                TimeNs now) const {
  if (clock_ == nullptr) {
    return false;  // No clock: every capacity-control configuration is inert.
  }
  if (record.alloc_generation.ReadRelaxed() != seen_generation_[endpoint]) {
    // Slot reused since the throttle state was written: it belongs to the
    // previous tenant and must not gate the new one. The mutating paths
    // call SyncSlotState to reset it; this read-only guard covers the
    // const paths (HasWork, NextUnthrottleTime) in between.
    return false;
  }
  if (record.min_send_interval_ns.ReadRelaxed() != 0 && now < next_send_ok_[endpoint]) {
    return true;
  }
  if (record.bucket_capacity.ReadRelaxed() != 0 &&
      BucketTokensAt(endpoint, record, now) == 0) {
    return true;
  }
  return false;
}

std::uint32_t MessagingEngine::BucketTokensAt(std::uint32_t endpoint,
                                              const EndpointRecord& record,
                                              TimeNs now) const {
  const std::uint32_t capacity = record.bucket_capacity.ReadRelaxed();
  const std::uint32_t refill = record.bucket_refill_ns.ReadRelaxed();
  std::uint64_t tokens = bucket_tokens_[endpoint];
  if (refill != 0 && now > bucket_refill_at_[endpoint]) {
    tokens += static_cast<std::uint64_t>(now - bucket_refill_at_[endpoint]) / refill;
  }
  return tokens > capacity ? capacity : static_cast<std::uint32_t>(tokens);
}

void MessagingEngine::RefillBucket(std::uint32_t endpoint, const EndpointRecord& record,
                                   TimeNs now) {
  const std::uint32_t capacity = record.bucket_capacity.ReadRelaxed();
  const std::uint32_t refill = record.bucket_refill_ns.ReadRelaxed();
  if (refill == 0 || now <= bucket_refill_at_[endpoint]) {
    return;  // refill == 0: hard burst cap, tokens never come back.
  }
  const std::uint64_t earned =
      static_cast<std::uint64_t>(now - bucket_refill_at_[endpoint]) / refill;
  if (earned == 0) {
    return;
  }
  const std::uint64_t total = bucket_tokens_[endpoint] + earned;
  if (total >= capacity) {
    bucket_tokens_[endpoint] = capacity;
    bucket_refill_at_[endpoint] = now;  // Full: accrual restarts at the next spend.
  } else {
    bucket_tokens_[endpoint] = static_cast<std::uint32_t>(total);
    // Keep the fractional remainder: the next token lands refill ns after
    // the last WHOLE token accrued, not after this observation.
    bucket_refill_at_[endpoint] += static_cast<TimeNs>(earned * refill);
  }
}

void MessagingEngine::SyncSlotState(std::uint32_t endpoint) {
  const EndpointRecord& record = comm_.endpoint(endpoint);
  const std::uint32_t generation = record.alloc_generation.ReadRelaxed();
  if (generation == seen_generation_[endpoint]) {
    return;
  }
  // Slot (re)allocated since last seen: the previous tenant's throttle
  // deadline, bucket level and head-observation stamp must not leak into
  // the new endpoint (the stale-next_send_ok_ churn bug).
  seen_generation_[endpoint] = generation;
  next_send_ok_[endpoint] = 0;
  bucket_tokens_[endpoint] = record.bucket_capacity.ReadRelaxed();  // Fresh bucket: full burst.
  bucket_refill_at_[endpoint] = NowForThrottle();
  head_seen_count_[endpoint] = kNoHeadSeen;
  head_seen_at_[endpoint] = 0;
}

void MessagingEngine::NoteHeadObserved(std::uint32_t endpoint, TimeNs now) {
  const std::uint32_t processed = comm_.endpoint(endpoint).process_count.ReadRelaxed();
  if (head_seen_count_[endpoint] != processed) {
    head_seen_count_[endpoint] = processed;
    head_seen_at_[endpoint] = now;
  }
}

TimeNs MessagingEngine::NextUnthrottleTime() const {
  if (clock_ == nullptr) {
    return kTimeNever;
  }
  const TimeNs now = clock_->NowNs();
  TimeNs earliest = kTimeNever;
  for (std::uint32_t i = shard_first_; i < shard_end_; ++i) {
    const EndpointRecord& record = comm_.endpoint(i);
    if (record.Type() != EndpointType::kSend || EndpointBlocked(i)) {
      continue;
    }
    if (const_cast<shm::CommBuffer&>(comm_).queue(i).ProcessableCount() == 0) {
      continue;
    }
    if (!Throttled(i, record, now)) {
      continue;
    }
    // The endpoint becomes eligible when EVERY active gate has lapsed.
    TimeNs ready_at = 0;
    if (record.min_send_interval_ns.ReadRelaxed() != 0 && now < next_send_ok_[i]) {
      ready_at = next_send_ok_[i];
    }
    if (record.bucket_capacity.ReadRelaxed() != 0 && BucketTokensAt(i, record, now) == 0) {
      const std::uint32_t refill = record.bucket_refill_ns.ReadRelaxed();
      if (refill == 0) {
        continue;  // Tokens never refill: no future instant unthrottles it.
      }
      const TimeNs next_token = bucket_refill_at_[i] + refill;
      if (next_token > ready_at) {
        ready_at = next_token;
      }
    }
    if (ready_at != 0 && ready_at < earliest) {
      earliest = ready_at;
    }
  }
  return earliest;
}

std::uint32_t MessagingEngine::FindSendWork() {
  FLIPC_HOT_PATH("MessagingEngine::FindSendWork");
  // All scans cover only this shard's endpoint range; scan_cursor_ is
  // relative to shard_first_.
  const std::uint32_t n = shard_end_ - shard_first_;
  planned_rotation_advance_ = true;

  if (options_.priority_scan) {
    // Priority extension: highest-priority endpoint with work wins; the
    // round-robin cursor breaks ties so equal-priority streams share.
    std::uint32_t best = shm::kInvalidEndpoint;
    std::uint32_t best_priority = 0;
    std::uint32_t first_ready = shm::kInvalidEndpoint;
    const TimeNs now = NowForThrottle();
    FLIPC_BOUNDED_BY(shard_end_ - shard_first_);
    for (std::uint32_t off = 0; off < n; ++off) {
      const std::uint32_t i = shard_first_ + (scan_cursor_ + off) % n;
      ++stats_.endpoints_visited;
      SyncSlotState(i);
      if (!SendReady(i, now)) {
        continue;
      }
      if (first_ready == shm::kInvalidEndpoint) {
        first_ready = i;
      }
      const std::uint32_t priority = comm_.endpoint(i).priority.ReadRelaxed();
      if (best == shm::kInvalidEndpoint || priority > best_priority) {
        best = i;
        best_priority = priority;
      }
    }
    // The cursor advances only when the priority winner IS the cursor-order
    // candidate. A preemption must leave the rotation point alone: resetting
    // it past the winner would re-walk the same equal-priority prefix after
    // every preemption and starve the endpoints behind it.
    planned_rotation_advance_ = (best == first_ready);
    return best;
  }

  const TimeNs now = NowForThrottle();
  FLIPC_BOUNDED_BY(shard_end_ - shard_first_);
  for (std::uint32_t off = 0; off < n; ++off) {
    const std::uint32_t i = shard_first_ + (scan_cursor_ + off) % n;
    ++stats_.endpoints_visited;
    SyncSlotState(i);
    if (SendReady(i, now)) {
      return i;
    }
  }
  return shm::kInvalidEndpoint;
}

void MessagingEngine::ActivateEndpoint(std::uint32_t endpoint) {
  SyncSlotState(endpoint);
  if (in_active_[endpoint] != 0) {
    return;  // Already in active_ or in the planned batch.
  }
  in_active_[endpoint] = 1;
  active_.push_back(endpoint);
}

void MessagingEngine::DrainDoorbells() {
  waitfree::DoorbellRingView ring = comm_.doorbell_ring(shard_id_);
  const std::uint32_t batch = options_.transmit_batch < 1 ? 1 : options_.transmit_batch;
  // Bounded drain keeps the plan a bounded work unit; leftover doorbells
  // stay published for the next plan.
  std::uint32_t budget = 4 * batch > 16 ? 4 * batch : 16;
  while (budget-- > 0) {
    const std::uint32_t endpoint = ring.Pop();
    if (endpoint == waitfree::kInvalidDoorbell) {
      break;
    }
    ++stats_.doorbells_consumed;
    if (!comm_.IsValidEndpointIndex(endpoint) || endpoint < shard_first_ ||
        endpoint >= shard_end_) {
      // Corrupt or out-of-shard hint from the application side; ignore.
      // The range check matters: activating a foreign endpoint would later
      // make THIS planner write another shard's engine-owned cells through
      // CommitOutboundOne.
      continue;
    }
    if (in_active_[endpoint] != 0) {
      ++stats_.doorbell_dups;
      continue;
    }
    ActivateEndpoint(endpoint);
  }
}

void MessagingEngine::SweepAllEndpoints() {
  ++stats_.backstop_sweeps;
  stats_.endpoints_visited += shard_end_ - shard_first_;
  FLIPC_BOUNDED_BY(shard_end_ - shard_first_);
  for (std::uint32_t i = shard_first_; i < shard_end_; ++i) {
    if (comm_.endpoint(i).Type() != EndpointType::kSend) {
      continue;
    }
    // Processable (not SendReady): throttled and blocked endpoints belong
    // in the active list too, so the rotation — and NextUnthrottleTime —
    // keeps tracking them.
    if (comm_.queue(i).ProcessableCount() == 0) {
      continue;
    }
    ActivateEndpoint(i);
  }
}

bool MessagingEngine::SelectBatchFromActive() {
  const TimeNs now = NowForThrottle();
  const std::uint32_t batch_limit = options_.transmit_batch < 1 ? 1 : options_.transmit_batch;

  // ---- Pass 1: one rotation over the active list classifies every entry.
  // Drained entries are forgotten, blocked and throttled ones rotate to
  // the back, ready ones land in scratch_ready_ in rotation order. Each
  // endpoint that was in the list at entry is examined at most once;
  // rotated entries land behind the sentinel count.
  scratch_ready_.clear();
  bool class_ready[shm::kQosClassCount] = {};
  std::uint32_t ready_classes = 0;
  std::size_t rotations = active_.size();
  while (rotations-- > 0) {
    const std::uint32_t endpoint = active_.front();
    active_.pop_front();
    ++stats_.endpoints_visited;
    SyncSlotState(endpoint);

    const EndpointRecord& record = comm_.endpoint(endpoint);
    if (record.Type() != EndpointType::kSend ||
        comm_.queue(endpoint).ProcessableCount() == 0) {
      in_active_[endpoint] = 0;  // Drained or freed: forget the hint.
      continue;
    }
    // Stamp when this head message was first seen backlogged; EDF ordering
    // and the service-gap / deadline-miss telemetry measure from here.
    NoteHeadObserved(endpoint, now);
    if (EndpointBlocked(endpoint)) {
      active_.push_back(endpoint);  // Blocked: rotate to the back.
      continue;
    }
    if (Throttled(endpoint, record, now)) {
      // Ready work deferred by capacity control; NextUnthrottleTime keeps
      // tracking it through the rotation.
      comm_.telemetry(endpoint).RecordThrottleDeferral();
      active_.push_back(endpoint);
      continue;
    }
    scratch_taken_[endpoint] = 0;
    scratch_ready_.push_back(endpoint);  // Capacity reserved at construction.
    const std::uint32_t cls = QosClassOf(record);
    if (!class_ready[cls]) {
      class_ready[cls] = true;
      ++ready_classes;
    }
  }
  if (scratch_ready_.empty()) {
    return false;
  }

  // ---- Class selection: deficit-weighted. Credits move only when classes
  // actually compete (>= 2 ready). The plan serves the class holding the
  // most credit; then, per selected message, EVERY ready class earns its
  // weight while the served class pays the total ready weight — earnings
  // and payments balance per message, so over a contended interval each
  // class's share of transmissions converges to its weight fraction. A
  // single ready class is served as-is with credits untouched, which keeps
  // all-default configurations (every endpoint in class 0) exactly on the
  // legacy rotation behavior.
  std::uint32_t serve_class = 0;
  const bool competing = ready_classes >= 2;
  std::int64_t ready_weight = 0;
  {
    std::int64_t best_credit = 0;
    bool have_class = false;
    FLIPC_BOUNDED_BY(shm::kQosClassCount);
    for (std::uint32_t cls = 0; cls < shm::kQosClassCount; ++cls) {
      if (!class_ready[cls]) {
        continue;
      }
      ready_weight += options_.qos_weights[cls];
      if (!have_class || class_credit_[cls] > best_credit) {
        best_credit = class_credit_[cls];
        serve_class = cls;
        have_class = true;
      }
    }
  }

  // ---- Pass 2: fill the batch from the serving class. Real-time
  // endpoints (deadline_ns != 0) preempt non-RT ones, earliest head
  // deadline first (EDF); non-RT candidates keep rotation order.
  // Same-destination coalescing filters candidates: a head buffer the
  // commit path will reject (sentinel or out-of-range index) has no
  // determinate destination and joins any batch as a rejection.
  const std::size_t ready_count = scratch_ready_.size();
  std::uint16_t batch_node = 0;
  bool have_node = false;
  FLIPC_BOUNDED_BY(options_.transmit_batch);
  while (planned_batch_.size() < batch_limit) {
    std::size_t best = ready_count;
    bool best_rt = false;
    TimeNs best_deadline = 0;
    FLIPC_BOUNDED_BY(scratch_ready_.size());
    for (std::size_t idx = 0; idx < ready_count; ++idx) {
      const std::uint32_t endpoint = scratch_ready_[idx];
      if (scratch_taken_[endpoint] != 0) {
        continue;
      }
      const EndpointRecord& record = comm_.endpoint(endpoint);
      if (QosClassOf(record) != serve_class) {
        continue;
      }
      const BufferIndex buffer = comm_.queue(endpoint).PeekProcess();
      if (have_node && buffer != waitfree::kInvalidBuffer &&
          comm_.IsValidBufferIndex(buffer) &&
          comm_.msg(buffer).header->peer_address().node() != batch_node) {
        continue;  // Different destination: next transmit unit's problem.
      }
      const bool rt = record.deadline_ns.ReadRelaxed() != 0;
      const TimeNs deadline = rt ? HeadDeadline(endpoint, record) : 0;
      if (best == ready_count || (rt && !best_rt) ||
          (rt && best_rt && deadline < best_deadline)) {
        best = idx;
        best_rt = rt;
        best_deadline = deadline;
      }
    }
    if (best == ready_count) {
      break;  // Serving class exhausted (or blocked on destination mix).
    }
    const std::uint32_t endpoint = scratch_ready_[best];
    scratch_taken_[endpoint] = 1;
    if (!have_node) {
      const BufferIndex buffer = comm_.queue(endpoint).PeekProcess();
      if (buffer != waitfree::kInvalidBuffer && comm_.IsValidBufferIndex(buffer)) {
        batch_node = comm_.msg(buffer).header->peer_address().node();
        have_node = true;
      }
    }
    planned_batch_.push_back(endpoint);
    if (competing) {
      FLIPC_BOUNDED_BY(shm::kQosClassCount);
      for (std::uint32_t cls = 0; cls < shm::kQosClassCount; ++cls) {
        if (class_ready[cls]) {
          class_credit_[cls] += options_.qos_weights[cls];
          if (class_credit_[cls] > kQosCreditClamp) {
            class_credit_[cls] = kQosCreditClamp;  // Bound credit drift.
          }
        }
      }
      class_credit_[serve_class] -= ready_weight;
      if (class_credit_[serve_class] < -kQosCreditClamp) {
        class_credit_[serve_class] = -kQosCreditClamp;
      }
    }
  }

  // Ready endpoints that did not make this batch stay scheduled: rotate
  // them to the back of the active list (their in_active_ bit never
  // dropped, so doorbells rung meanwhile were deduplicated correctly).
  FLIPC_BOUNDED_BY(scratch_ready_.size());
  for (std::size_t idx = 0; idx < ready_count; ++idx) {
    const std::uint32_t endpoint = scratch_ready_[idx];
    if (scratch_taken_[endpoint] == 0) {
      active_.push_back(endpoint);
    }
  }
  return !planned_batch_.empty();
}

void MessagingEngine::PlanOutboundBatch() {
  // Draining the ring publishes ring_head, an engine-owned cell, and
  // PlanStep is otherwise role-free — bind the engine role (qualified with
  // this planner's shard: the ring's consumer cursor belongs to it) here.
  waitfree::ScopedBoundaryRole boundary_role(waitfree::Writer::kEngine, shard_id_);
  // The whole plan — ring drain, sweeps, rotation — is the engine's
  // scheduling work unit: bounded and allocation-free (active_ and
  // planned_batch_ are fixed-capacity, sized at construction).
  FLIPC_HOT_PATH("MessagingEngine::PlanOutboundBatch");
  planned_batch_.clear();

  waitfree::DoorbellRingView ring = comm_.doorbell_ring(shard_id_);
  if (ring.OverflowPending()) {
    // Ack BEFORE sweeping, so a ring that overflows again mid-sweep raises
    // a fresh signal rather than being absorbed into this one.
    ring.AckOverflow();
    ++stats_.doorbell_overflows;
    SweepAllEndpoints();
  }
  DrainDoorbells();

  ++outbound_plans_;
  ++stats_.outbound_plans;
  if (options_.backstop_interval != 0 && outbound_plans_ % options_.backstop_interval == 0) {
    ++stats_.sweeps_periodic;
    SweepAllEndpoints();  // Low-frequency lost-doorbell backstop.
  }

  if (!SelectBatchFromActive()) {
    // No candidate on the hint path. Work queued without a doorbell (an
    // engine-side test writing queues directly, or a doorbell lost to a
    // ring lap) must still be discovered before the engine reports idle,
    // or the DES would sleep over real work.
    ++stats_.sweeps_no_candidate;
    SweepAllEndpoints();
    SelectBatchFromActive();
  }
}

std::uint32_t MessagingEngine::RouteShardFor(const simnet::Packet& packet) const {
  if (comm_.shard_count() <= 1 || packet.protocol != simnet::kProtocolFlipc) {
    return shard_id_;  // Registered protocols run on the distributor's loop.
  }
  const Address dst = Address::FromPacked(packet.dst_addr);
  if (!dst.valid() || dst.node() != wire_.node() ||
      !comm_.IsValidEndpointIndex(dst.endpoint())) {
    // Undeterminable destination: deliver locally so DeliverLocal counts
    // the bad-address drop on the distributor.
    return shard_id_;
  }
  return comm_.shard_of(dst.endpoint());
}

DurationNs MessagingEngine::PlanStep() {
  if (planned_ != WorkKind::kNone) {
    return planned_cost_;
  }
  const PlatformModel* m = model_;
  const auto charge = [m](DurationNs ns) { return m != nullptr ? ns : 0; };
  const auto price_inbound = [&](const simnet::Packet& pkt) {
    DurationNs cost = charge(m != nullptr ? m->engine_dispatch_ns : 0);
    if (m != nullptr && pkt.protocol != simnet::kProtocolFlipc &&
        pkt.protocol < kMaxProtocols && handlers_[pkt.protocol] != nullptr) {
      cost += handlers_[pkt.protocol]->PlanCost(pkt);
    }
    if (pkt.protocol == simnet::kProtocolFlipc && m != nullptr) {
      cost += m->recv_overhead_ns + m->RecvCopyNs(pkt.payload.size());
      if (pkt.payload.size() + shm::kMsgHeaderSize < m->small_msg_threshold_bytes) {
        cost -= m->small_msg_discount_ns;
      }
      if (options_.validity_checks) {
        cost += m->validity_check_ns;
      }
      if (options_.model_unpadded_layout) {
        cost += m->engine_false_sharing_ns;
      }
    }
    return cost;
  };

  // Inbound first: the receiving node must always be ready to accept from
  // the interconnect (the optimistic protocol's no-deadlock guarantee).
  simnet::Packet packet;

  // Cross-shard inbound handed off by the distributor. Like wire_.Poll
  // below, the pop consumes at plan time and the packet rides
  // planned_packet_ into the commit.
  if (handoff_inbox_ != nullptr) {
    bool popped;
    {
      // The pop publishes handoff_head, this consumer shard's cursor.
      waitfree::ScopedBoundaryRole boundary_role(waitfree::Writer::kEngine, shard_id_);
      popped = handoff_inbox_->Pop(&packet);
    }
    if (popped) {
      ++stats_.handoff_popped;
      if (shard_kick_ &&
          handoff_inbox_->PendingCount() + 1 >= handoff_inbox_->capacity()) {
        // The inbox was full before this pop, so the distributor may be
        // parked with a routed packet waiting for this very slot.
        FLIPC_HOT_PATH_EXEMPT("distributor un-stall wakeup");
        shard_kick_(0);
      }
      planned_ = WorkKind::kInbound;
      planned_cost_ = price_inbound(packet);
      planned_packet_ = std::move(packet);
      return planned_cost_;
    }
  }

  if (is_distributor()) {
    if (parked_packet_.has_value()) {
      // Retry the parked handoff BEFORE polling the wire again: the parked
      // packet is the only copy of its message, and polling past it would
      // break the fabric's per-(src,dst) FIFO order.
      planned_ = WorkKind::kRoute;
      planned_route_shard_ = parked_shard_;
      planned_packet_ = std::move(*parked_packet_);
      parked_packet_.reset();
      planned_cost_ = charge(m != nullptr ? m->engine_dispatch_ns : 0);
      return planned_cost_;
    }
    if (wire_.Poll(&packet)) {
      const std::uint32_t dst_shard = RouteShardFor(packet);
      if (dst_shard != shard_id_) {
        planned_ = WorkKind::kRoute;
        planned_route_shard_ = dst_shard;
        planned_packet_ = std::move(packet);
        planned_cost_ = charge(m != nullptr ? m->engine_dispatch_ns : 0);
        return planned_cost_;
      }
      planned_ = WorkKind::kInbound;
      planned_cost_ = price_inbound(packet);
      planned_packet_ = std::move(packet);
      return planned_cost_;
    }
  }

  if (UseDoorbellScheduling()) {
    PlanOutboundBatch();
    if (!planned_batch_.empty()) {
      planned_ = WorkKind::kOutbound;
      planned_endpoint_ = planned_batch_.front();
      DurationNs cost = 0;
      if (m != nullptr) {
        // The first message carries the full dispatch + send path (so a
        // batch of one costs exactly what the legacy scan charged); each
        // coalesced message adds only the per-message transmit share.
        const DurationNs per_message_checks =
            (options_.validity_checks ? m->validity_check_ns : 0) +
            (options_.model_unpadded_layout ? m->engine_false_sharing_ns : 0);
        cost = m->engine_dispatch_ns + m->send_overhead_ns + TransmitPlanCost() +
               per_message_checks;
        cost += static_cast<DurationNs>(planned_batch_.size() - 1) *
                (m->send_batch_extra_ns + TransmitPlanCost() + per_message_checks);
      }
      planned_cost_ = cost;
      return planned_cost_;
    }
  } else {
    const std::uint32_t send_endpoint = FindSendWork();
    if (send_endpoint != shm::kInvalidEndpoint) {
      planned_ = WorkKind::kOutbound;
      planned_endpoint_ = send_endpoint;
      DurationNs cost = 0;
      if (m != nullptr) {
        cost = m->engine_dispatch_ns + m->send_overhead_ns + TransmitPlanCost();
        if (options_.validity_checks) {
          cost += m->validity_check_ns;
        }
        if (options_.model_unpadded_layout) {
          cost += m->engine_false_sharing_ns;
        }
      }
      planned_cost_ = cost;
      return planned_cost_;
    }
  }

  for (std::uint32_t id = 0; id < kMaxProtocols; ++id) {
    if (handlers_[id] != nullptr && handlers_[id]->HasWork()) {
      planned_ = WorkKind::kHandler;
      planned_handler_ = id;
      planned_cost_ = charge(m != nullptr ? m->engine_dispatch_ns : 0);
      return planned_cost_;
    }
  }

  planned_cost_ = 0;
  return 0;
}

bool MessagingEngine::CommitStep() {
  // Every comm-buffer mutation the engine makes happens under this commit,
  // so bind the engine role — qualified with this planner's shard, so a
  // write to another shard's endpoint or cursor aborts — for its duration.
  // Scoped (not per-thread): the simulation drivers and the model checker
  // step the engine from the same thread that plays the application.
  waitfree::ScopedBoundaryRole boundary_role(waitfree::Writer::kEngine, shard_id_);
  if (planned_ == WorkKind::kNone) {
    PlanStep();
  }
  simnet::CostAccumulator cost;  // Already accounted by the driver via PlanStep.
  const WorkKind kind = planned_;
  const DurationNs committed_cost = planned_cost_;
  planned_ = WorkKind::kNone;
  planned_cost_ = 0;
  if (telemetry_ != nullptr && kind != WorkKind::kNone) {
    telemetry_->plan_cost_ns.Add(static_cast<double>(committed_cost));
  }

  switch (kind) {
    case WorkKind::kNone:
      return false;
    case WorkKind::kInbound: {
      simnet::Packet packet = std::move(*planned_packet_);
      planned_packet_.reset();
      ++stats_.work_units;
      if (packet.protocol == simnet::kProtocolFlipc) {
        DeliverLocal(packet, cost);
      } else if (packet.protocol < kMaxProtocols && handlers_[packet.protocol] != nullptr) {
        handlers_[packet.protocol]->HandlePacket(std::move(packet), cost);
      } else {
        ++stats_.unknown_protocol_packets;
      }
      deferred_cost_ += cost.Take();
      return true;
    }
    case WorkKind::kOutbound: {
      ++stats_.work_units;
      CommitOutbound(cost);
      deferred_cost_ += cost.Take();
      return true;
    }
    case WorkKind::kHandler: {
      ++stats_.work_units;
      handlers_[planned_handler_]->PollWork(cost);
      deferred_cost_ += cost.Take();
      return true;
    }
    case WorkKind::kRoute: {
      simnet::Packet packet = std::move(*planned_packet_);
      planned_packet_.reset();
      HandoffRing* ring = handoff_outboxes_[planned_route_shard_];
      if (ring == nullptr) {
        // Miswired assembly: that shard has no inbox. Count the discard
        // like any undeliverable destination; dropping beats wedging the
        // distributor's wire forever.
        ++stats_.work_units;
        ++stats_.drops_bad_address;
        return true;
      }
      if (!ring->Push(packet)) {
        // Inbox full. The packet is the only copy of its message, so park
        // it; the next plan retries before any further wire polling. This
        // is NOT progress — returning false lets the host runner back off
        // instead of spinning on the full ring (the consumer's drain path
        // kicks the distributor when it frees a slot of a full inbox).
        ++stats_.handoff_full_retries;
        parked_packet_ = std::move(packet);
        parked_shard_ = planned_route_shard_;
        return false;
      }
      ++stats_.work_units;
      ++stats_.handoff_pushed;
      if (shard_kick_) {
        // Consumer wakeup: arbitrary runner code, off the product path.
        FLIPC_HOT_PATH_EXEMPT("cross-shard wakeup");
        shard_kick_(planned_route_shard_);
      }
      return true;
    }
  }
  return false;
}

bool MessagingEngine::Step() {
  PlanStep();
  return CommitStep();
}

void MessagingEngine::RecoverFromBuffer() {
  // Recovery is a quiescent-role closure (DESIGN.md §14): the dead
  // engine's writer role died with it and no runner steps this shard yet,
  // so relaxed stores into engine-owned cells are unraced — the same
  // exemption window CommBuffer::AllocateEndpoint's slot reset uses.
  waitfree::ScopedBoundaryExemption quiescent_recovery;

  // Doorbells are hints; the cursor sweep below rediscovers their work
  // from the authoritative queue cursors, so fast-forward past anything
  // rung at the dead engine.
  comm_.doorbell_ring(shard_id_).ResetConsumerQuiescent();

  // Discard any half-planned unit inherited through this object (a fresh
  // engine has none; an in-place recovery might). planned_packet_ and
  // parked_packet_ held the ONLY copy of an inbound wire packet on the
  // dead engine — that copy died with its heap, a legitimate loss the
  // optimistic contract already covers (same as a packet lost mid-wire).
  planned_ = WorkKind::kNone;
  planned_cost_ = 0;
  planned_packet_.reset();
  planned_batch_.clear();
  parked_packet_.reset();
  planned_endpoint_ = shm::kInvalidEndpoint;
  planned_rotation_advance_ = true;
  scan_cursor_ = 0;
  while (!active_.empty()) {
    active_.pop_front();
  }
  std::fill(in_active_.begin(), in_active_.end(), 0);

  // Engine-private QoS state dies with the engine: throttle deadlines,
  // bucket levels and head stamps were measured on the dead engine's
  // timeline. Zeroing seen_generation_ forces SyncSlotState to re-seed
  // each slot on first touch (alloc_generation never takes the value 0).
  std::fill(seen_generation_.begin(), seen_generation_.end(), 0);
  std::fill(next_send_ok_.begin(), next_send_ok_.end(), 0);
  std::fill(bucket_tokens_.begin(), bucket_tokens_.end(), 0);
  std::fill(bucket_refill_at_.begin(), bucket_refill_at_.end(), 0);
  std::fill(head_seen_count_.begin(), head_seen_count_.end(), kNoHeadSeen);
  std::fill(head_seen_at_.begin(), head_seen_at_.end(), 0);
  class_credit_.fill(0);

  // Rebuild the active list from the cursors. Deliberately NOT
  // SweepAllEndpoints(): that counts toward backstop_sweeps, whose
  // cause identity (overflow + periodic + no-candidate) must survive
  // recovery; this sweep is accounted under stats_.recovered_active.
  std::uint64_t activated = 0;
  stats_.endpoints_visited += shard_end_ - shard_first_;
  for (std::uint32_t i = shard_first_; i < shard_end_; ++i) {
    if (comm_.endpoint(i).Type() != EndpointType::kSend) {
      continue;
    }
    if (comm_.queue(i).ProcessableCount() == 0) {
      continue;
    }
    ActivateEndpoint(i);
    ++activated;
  }
  ++stats_.recoveries;
  stats_.recovered_active += activated;
}

bool MessagingEngine::HasWork() const {
  if (planned_ != WorkKind::kNone) {
    return true;
  }
  if (parked_packet_.has_value()) {
    return true;  // A routed packet is waiting for inbox space.
  }
  if (handoff_inbox_ != nullptr && handoff_inbox_->HasPending()) {
    return true;
  }
  // The wire is the distributor's work; other shards never poll it.
  if (is_distributor() && wire_.PendingCount() > 0) {
    return true;
  }
  const TimeNs now = NowForThrottle();
  if (UseDoorbellScheduling()) {
    // O(active) early-true checks. A pending doorbell or overflow signal
    // reports work even when stale — the next plan drains the ring (head
    // always advances), so the DES cannot spin on a stale hint.
    waitfree::DoorbellRingView ring =
        const_cast<shm::CommBuffer&>(comm_).doorbell_ring(shard_id_);
    if (ring.HasPending() || ring.OverflowPending()) {
      return true;
    }
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (SendReady(active_.at(i), now)) {
        return true;
      }
    }
  }
  // Full scan (of this shard's range) stays as the authoritative fallback:
  // work queued without a doorbell (engine-side test writes, lost
  // doorbells) must be reported — the plan's no-candidate sweep will find
  // anything reported here.
  for (std::uint32_t i = shard_first_; i < shard_end_; ++i) {
    if (SendReady(i, now)) {
      return true;
    }
  }
  for (const ProtocolHandler* handler : handlers_) {
    if (handler != nullptr && handler->HasWork()) {
      return true;
    }
  }
  return false;
}

bool MessagingEngine::ValidateSendBuffer(std::uint32_t endpoint_index, BufferIndex buffer) {
  if (!comm_.IsValidBufferIndex(buffer)) {
    ++stats_.validity_rejections;
    // Diagnostic on the already-failed path; the logger buffers and may
    // allocate, which is acceptable once the message is being rejected.
    FLIPC_HOT_PATH_EXEMPT("rejection diagnostics");
    FLIPC_LOG(kWarning) << "engine " << wire_.node() << ": endpoint " << endpoint_index
                        << " released invalid buffer index " << buffer;
    return false;
  }
  return true;
}

void MessagingEngine::CommitOutbound(simnet::CostAccumulator& cost) {
  FLIPC_HOT_PATH("MessagingEngine::CommitOutbound");
  if (UseDoorbellScheduling() && !planned_batch_.empty()) {
    ++stats_.transmit_batches;
    stats_.batched_messages += planned_batch_.size();
    if (telemetry_ != nullptr) {
      telemetry_->batch_size.Add(static_cast<double>(planned_batch_.size()));
    }
    for (const std::uint32_t endpoint_index : planned_batch_) {
      CommitOutboundOne(endpoint_index, cost);
      // Re-schedule the endpoint while it still holds processable work;
      // otherwise clear its membership so the next doorbell re-activates
      // it. (in_active_ covered the endpoint during the batch, deduping
      // doorbells rung between plan and commit.)
      if (comm_.endpoint(endpoint_index).Type() == EndpointType::kSend &&
          comm_.queue(endpoint_index).ProcessableCount() > 0) {
        active_.push_back(endpoint_index);
      } else {
        in_active_[endpoint_index] = 0;
      }
    }
    planned_batch_.clear();
    planned_endpoint_ = shm::kInvalidEndpoint;
    return;
  }

  const std::uint32_t endpoint_index = planned_endpoint_;
  planned_endpoint_ = shm::kInvalidEndpoint;
  if (planned_rotation_advance_) {
    // scan_cursor_ is relative to this shard's range.
    scan_cursor_ = (endpoint_index - shard_first_ + 1) % (shard_end_ - shard_first_);
  }
  planned_rotation_advance_ = true;
  if (telemetry_ != nullptr) {
    telemetry_->batch_size.Add(1.0);  // Legacy scan: one message per unit.
  }
  CommitOutboundOne(endpoint_index, cost);
}

void MessagingEngine::CommitOutboundOne(std::uint32_t endpoint_index,
                                        simnet::CostAccumulator& cost) {
  SyncSlotState(endpoint_index);  // Slot may have churned between plan and commit.
  EndpointRecord& record = comm_.endpoint(endpoint_index);
  if (record.Type() != EndpointType::kSend) {
    return;  // Endpoint freed between plan and commit.
  }
  waitfree::BufferQueueView queue = comm_.queue(endpoint_index);
  if (queue.ProcessableCount() == 0) {
    return;  // Drained between plan and commit.
  }
  // Legacy scan path reaches here without a plan rotation; make sure the
  // head wait is stamped before the telemetry below measures from it.
  if (clock_ != nullptr) {
    NoteHeadObserved(endpoint_index, clock_->NowNs());
  }
  shm::TelemetryBlock& telemetry = comm_.telemetry(endpoint_index);
  telemetry.NoteQueueDepth(queue.ProcessableCount());
  const BufferIndex buffer = queue.PeekProcess();
  if (buffer == waitfree::kInvalidBuffer) {
    // The queue claims processable work but the cell holds the sentinel —
    // an application corrupted its release cursor. The engine must still
    // make progress (a non-advancing return here would spin the event
    // loop forever), so consume the slot as a rejection.
    ++stats_.validity_rejections;
    telemetry.RecordEngineReject();
    CompleteSend(endpoint_index);
    return;
  }

  // Validity checks (configurable; the paper measures +2 us for them).
  // An always-on check on the buffer index itself is kept even when checks
  // are off, because an out-of-range index would crash the engine rather
  // than merely corrupt the offending application's own data.
  if (!ValidateSendBuffer(endpoint_index, buffer)) {
    telemetry.RecordEngineReject();
    CompleteSend(endpoint_index);
    return;
  }

  shm::MsgView view = comm_.msg(buffer);
  const Address dst = view.header->peer_address();
  const Address src(static_cast<std::uint16_t>(wire_.node()),
                    static_cast<std::uint16_t>(endpoint_index));

  if (options_.validity_checks && !dst.valid()) {
    ++stats_.validity_rejections;
    telemetry.RecordEngineReject();
    CompleteSend(endpoint_index);
    return;
  }

  // Protection extension: a restricted endpoint may only address its
  // configured peer. Enforced unconditionally — this protects OTHER
  // applications, so it cannot be traded away for speed like the
  // self-protection validity checks above.
  const Address allowed = Address::FromPacked(record.allowed_peer.ReadRelaxed());
  if (allowed.valid() && dst != allowed) {
    ++stats_.protection_rejections;
    telemetry.RecordEngineReject();
    Trace(TraceEvent::kEngineReject, endpoint_index);
    CompleteSend(endpoint_index);
    return;
  }

  // Capacity-control extension: record the earliest next transmission.
  const std::uint32_t interval = record.min_send_interval_ns.ReadRelaxed();
  if (interval != 0 && clock_ != nullptr) {
    next_send_ok_[endpoint_index] = clock_->NowNs() + interval;
  }
  // Token bucket: credit tokens accrued since the last refill, then pay one
  // for this transmission (no rejection path remains below this point).
  if (clock_ != nullptr && record.bucket_capacity.ReadRelaxed() != 0) {
    RefillBucket(endpoint_index, record, clock_->NowNs());
    if (bucket_tokens_[endpoint_index] > 0) {
      --bucket_tokens_[endpoint_index];
    }
  }

  // QoS telemetry: how long this head message waited since the planner
  // first saw it backlogged, and whether a real-time deadline lapsed. The
  // stamp is only meaningful while it matches the current head
  // (process_count); a mismatched stamp belongs to an earlier message.
  if (clock_ != nullptr &&
      head_seen_count_[endpoint_index] == record.process_count.ReadRelaxed()) {
    const TimeNs now = clock_->NowNs();
    const std::uint64_t waited =
        now > head_seen_at_[endpoint_index]
            ? static_cast<std::uint64_t>(now - head_seen_at_[endpoint_index])
            : 0;
    telemetry.NoteServiceGap(waited);
    const std::uint32_t deadline = record.deadline_ns.ReadRelaxed();
    if (deadline != 0 && waited > deadline) {
      telemetry.RecordDeadlineMiss();
    }
  }

  // Counted here (not inside the strategy) so subclasses that defer
  // completion still account the attempt; at quiescence
  // processed_total == engine_transmits + engine_rejects.
  telemetry.RecordEngineTransmit();
  TransmitMessage(endpoint_index, buffer, src, dst, cost);

  // The next message (if already queued) became head at this instant;
  // stamp it now so its wait is measured from here, not from the next
  // plan rotation. Deferred-completion strategies leave process_count
  // unchanged, which makes this a no-op — the stamp stays on the
  // still-unfinished head.
  if (clock_ != nullptr && queue.ProcessableCount() > 0) {
    NoteHeadObserved(endpoint_index, clock_->NowNs());
  }
}

void MessagingEngine::TransmitMessage(std::uint32_t endpoint_index, BufferIndex buffer,
                                      Address src, Address dst, simnet::CostAccumulator& cost) {
  shm::MsgView view = comm_.msg(buffer);

  {
    // The packet here stands in for the interconnect DMA: on the Paragon
    // the payload moves over the mesh, not through the heap. The simulated
    // wire copies it into an owning Packet (payload vector) and hands it to
    // the fabric's event queue — simulation machinery, exempt from the
    // hot-path guards by design.
    FLIPC_HOT_PATH_EXEMPT("simulated-wire DMA and fabric enqueue");
    simnet::Packet packet;
    packet.dst_node = dst.node();
    packet.protocol = simnet::kProtocolFlipc;
    packet.src_addr = src.packed();
    packet.dst_addr = dst.packed();
    packet.seq = send_seq_++;
    packet.payload.assign(view.payload, view.payload + view.payload_size);

    const Status status = wire_.Send(std::move(packet));
    if (!status.ok()) {
      // Unknown destination node: the optimistic protocol has no error path
      // back to the sender; the message is charged as a bad-address discard.
      ++stats_.drops_bad_address;
    } else {
      ++stats_.messages_sent;
      stats_.bytes_sent += view.payload_size;
      Trace(TraceEvent::kEngineSend, endpoint_index, buffer);
    }
  }
  ChargeModel(cost, 0);  // Native transmit costs were charged at plan time.
  CompleteSend(endpoint_index);
}

void MessagingEngine::CompleteSend(std::uint32_t endpoint_index) {
  EndpointRecord& record = comm_.endpoint(endpoint_index);
  waitfree::BufferQueueView queue = comm_.queue(endpoint_index);
  const BufferIndex buffer = queue.PeekProcess();
  if (buffer != waitfree::kInvalidBuffer && comm_.IsValidBufferIndex(buffer)) {
    comm_.msg(buffer).header->state.Store(MsgState::kCompleted);
  }
  queue.AdvanceProcess();
  record.processed_total.Publish(record.processed_total.ReadRelaxed() + 1);

  if ((record.options.ReadRelaxed() & shm::kEndpointOptSemaphore) != 0 && semaphores_ != nullptr) {
    // The real-time semaphore handoff is the kernel's documented role in
    // the paper's split (blocking waits live in the OS, not the engine);
    // signaling takes the semaphore's internal mutex by design.
    FLIPC_HOT_PATH_EXEMPT("real-time semaphore handoff");
    semaphores_->Signal(record.semaphore_id.ReadRelaxed());
    ++stats_.semaphore_signals;
  }
  if (send_complete_hook_) {
    // Test/driver observation hook: arbitrary user code, off the product path.
    FLIPC_HOT_PATH_EXEMPT("observation hook");
    send_complete_hook_(endpoint_index);
  }
}

void MessagingEngine::DeliverLocal(const simnet::Packet& packet, simnet::CostAccumulator&) {
  FLIPC_HOT_PATH("MessagingEngine::DeliverLocal");
  const Address dst = Address::FromPacked(packet.dst_addr);

  // Destination validation is not optional: a bad remote address must not
  // crash this node's engine. (The sender-side configurable checks would
  // have caught it earlier and cheaper.)
  if (!dst.valid() || dst.node() != wire_.node() || !comm_.IsValidEndpointIndex(dst.endpoint())) {
    ++stats_.drops_bad_address;
    return;
  }
  EndpointRecord& record = comm_.endpoint(dst.endpoint());
  if (record.Type() != EndpointType::kReceive) {
    ++stats_.drops_bad_address;
    return;
  }

  waitfree::BufferQueueView queue = comm_.queue(dst.endpoint());
  shm::TelemetryBlock& telemetry = comm_.telemetry(dst.endpoint());
  telemetry.NoteQueueDepth(queue.ProcessableCount());
  const BufferIndex buffer = queue.PeekProcess();
  if (buffer == waitfree::kInvalidBuffer) {
    // The optimistic protocol's rule: no posted receive buffer => discard,
    // count it in the endpoint's wait-free drop counter.
    record.RecordDrop();
    ++stats_.drops_no_buffer;
    Trace(TraceEvent::kEngineDrop, dst.endpoint());
    if (receive_hook_) {
      FLIPC_HOT_PATH_EXEMPT("observation hook");
      receive_hook_(dst.endpoint(), /*delivered=*/false);
    }
    return;
  }
  if (!comm_.IsValidBufferIndex(buffer)) {
    ++stats_.validity_rejections;
    telemetry.RecordEngineReject();
    queue.AdvanceProcess();
    return;
  }

  shm::MsgView view = comm_.msg(buffer);
  const std::size_t n = packet.payload.size() < view.payload_size ? packet.payload.size()
                                                                  : view.payload_size;
  std::memcpy(view.payload, packet.payload.data(), n);
  view.header->peer.Publish(packet.src_addr);  // Receiver learns the sender.
  view.header->state.Store(MsgState::kCompleted);
  queue.AdvanceProcess();
  record.processed_total.Publish(record.processed_total.ReadRelaxed() + 1);
  telemetry.RecordEngineDelivery();
  ++stats_.messages_delivered;
  Trace(TraceEvent::kEngineDeliver, dst.endpoint(), buffer);

  if ((record.options.ReadRelaxed() & shm::kEndpointOptSemaphore) != 0 && semaphores_ != nullptr) {
    // Kernel-side blocking support, same exemption as CompleteSend.
    FLIPC_HOT_PATH_EXEMPT("real-time semaphore handoff");
    semaphores_->Signal(record.semaphore_id.ReadRelaxed());
    ++stats_.semaphore_signals;
  }
  if (receive_hook_) {
    FLIPC_HOT_PATH_EXEMPT("observation hook");
    receive_hook_(dst.endpoint(), /*delivered=*/true);
  }
}

}  // namespace flipc::engine
