// Plain-text table formatting for the benchmark harnesses.
//
// Every paper-reproduction bench prints a table with the paper's value next
// to the measured value; this helper keeps those tables aligned and uniform.
#ifndef SRC_BASE_TABLE_H_
#define SRC_BASE_TABLE_H_

#include <string>
#include <vector>

namespace flipc {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Adds one row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  // Renders with a header rule and column padding.
  std::string ToString() const;

  // Convenience: fixed-precision double formatting.
  static std::string Num(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flipc

#endif  // SRC_BASE_TABLE_H_
