// Fundamental type aliases and layout helpers shared by all FLIPC modules.
#ifndef SRC_BASE_TYPES_H_
#define SRC_BASE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace flipc {

// Host cache-line size. The Paragon used 32-byte lines; modern x86 uses 64.
// The false-sharing ablation (experiment E4) scales invalidation counts by
// kPaperCacheLineSize / kCacheLineSize so the modeled costs stay comparable.
inline constexpr std::size_t kCacheLineSize = 64;
inline constexpr std::size_t kPaperCacheLineSize = 32;

// Node identifier within a fabric. The Paragon mesh addressed nodes by
// (x, y) coordinates; we use a flat id and let the fabric map it.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

// Virtual or real time in nanoseconds.
using TimeNs = std::int64_t;

// Duration in nanoseconds.
using DurationNs = std::int64_t;

inline constexpr TimeNs kTimeNever = INT64_MAX;

// Rounds `value` up to the next multiple of `alignment` (a power of two).
constexpr std::size_t AlignUp(std::size_t value, std::size_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

constexpr bool IsAligned(std::size_t value, std::size_t alignment) {
  return (value & (alignment - 1)) == 0;
}

constexpr bool IsPowerOfTwo(std::size_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

// Number of whole cache lines needed to hold `bytes`.
constexpr std::size_t CacheLinesFor(std::size_t bytes) {
  return AlignUp(bytes, kCacheLineSize) / kCacheLineSize;
}

}  // namespace flipc

#endif  // SRC_BASE_TYPES_H_
