#include "src/base/status.h"

namespace flipc {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace flipc
