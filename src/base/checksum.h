// FNV-1a checksums for payload integrity verification in tests and the
// bulk-transfer reassembly path.
#ifndef SRC_BASE_CHECKSUM_H_
#define SRC_BASE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace flipc {

constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

constexpr std::uint64_t Fnv1a(const std::byte* data, std::size_t n,
                              std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= static_cast<std::uint64_t>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

inline std::uint64_t Fnv1a(const void* data, std::size_t n,
                           std::uint64_t seed = kFnvOffsetBasis) {
  return Fnv1a(static_cast<const std::byte*>(data), n, seed);
}

}  // namespace flipc

#endif  // SRC_BASE_CHECKSUM_H_
