// Error handling for the FLIPC library.
//
// FLIPC interfaces never throw on the messaging fast path; operations report
// a Status (or Result<T>) so callers can poll without control-flow surprises.
// The codes mirror the conditions the paper's interface must distinguish:
// an empty/full endpoint queue is kUnavailable (poll again), a discarded
// message is observable only through the drop counter, and programming errors
// (bad address, misaligned buffer) are kInvalidArgument.
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace flipc {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kUnavailable,       // No buffer to acquire / no queue slot free; retry later.
  kInvalidArgument,   // Malformed address, misaligned buffer, bad handle.
  kResourceExhausted, // Allocation failed: communication buffer is full.
  kNotFound,          // Unknown endpoint / node.
  kFailedPrecondition,// Operation not valid in this state (e.g. wrong type).
  kPermissionDenied,  // Validity checks rejected an application-supplied value.
  kTimedOut,          // Blocking operation exceeded its deadline.
  kInternal,          // Invariant violation inside FLIPC itself.
};

std::string_view StatusCodeName(StatusCode code);

// A cheap, copyable status word. Carries no message on success.
class [[nodiscard]] Status {
 public:
  constexpr Status() : code_(StatusCode::kOk) {}
  constexpr explicit Status(StatusCode code) : code_(code) {}

  static constexpr Status Ok() { return Status(); }

  constexpr bool ok() const { return code_ == StatusCode::kOk; }
  constexpr StatusCode code() const { return code_; }

  std::string ToString() const { return std::string(StatusCodeName(code_)); }

  friend constexpr bool operator==(Status a, Status b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
};

constexpr Status OkStatus() { return Status(); }
constexpr Status UnavailableStatus() { return Status(StatusCode::kUnavailable); }
constexpr Status InvalidArgumentStatus() { return Status(StatusCode::kInvalidArgument); }
constexpr Status ResourceExhaustedStatus() { return Status(StatusCode::kResourceExhausted); }
constexpr Status NotFoundStatus() { return Status(StatusCode::kNotFound); }
constexpr Status FailedPreconditionStatus() { return Status(StatusCode::kFailedPrecondition); }
constexpr Status PermissionDeniedStatus() { return Status(StatusCode::kPermissionDenied); }
constexpr Status TimedOutStatus() { return Status(StatusCode::kTimedOut); }
constexpr Status InternalStatus() { return Status(StatusCode::kInternal); }

// Result<T>: either a value or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(status) {                 // NOLINT(google-explicit-constructor)
    assert(!status.ok() && "Result constructed from OK status without a value");
  }
  Result(StatusCode code) : rep_(Status(code)) {}        // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    return ok() ? OkStatus() : std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

#define FLIPC_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::flipc::Status _flipc_status = (expr);    \
    if (!_flipc_status.ok()) {                 \
      return _flipc_status;                    \
    }                                          \
  } while (false)

#define FLIPC_CONCAT_INNER(a, b) a##b
#define FLIPC_CONCAT(a, b) FLIPC_CONCAT_INNER(a, b)

#define FLIPC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

#define FLIPC_ASSIGN_OR_RETURN(lhs, expr) \
  FLIPC_ASSIGN_OR_RETURN_IMPL(FLIPC_CONCAT(_flipc_result_, __LINE__), lhs, expr)

}  // namespace flipc

#endif  // SRC_BASE_STATUS_H_
