#include "src/base/hotpath.h"

#ifdef FLIPC_CHECK_HOT_PATH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

namespace flipc::hotpath {
namespace {

// Per-thread scope state. Plain-old-data with constant initialization only:
// the allocation guard runs inside operator new, which can be reached
// before main() and during thread teardown, so this must never itself
// allocate or run dynamic initializers.
constexpr int kMaxScopeDepth = 16;

struct ThreadHotPathState {
  int depth = 0;         // armed scopes entered
  int exempt_depth = 0;  // nested exemptions
  const char* labels[kMaxScopeDepth] = {};
};

thread_local ThreadHotPathState tls_state;

// Process-wide mode and counters. Relaxed atomics: counters are statistics,
// and the mode is set from quiescent test/bench code.
std::atomic<std::uint8_t> g_mode{static_cast<std::uint8_t>(GuardMode::kAbort)};

std::atomic<std::uint64_t> g_scope_entries{0};
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_locks{0};
std::atomic<std::uint64_t> g_blocking{0};
std::atomic<std::uint64_t> g_loop_overruns{0};

std::atomic<std::uint64_t>& CounterFor(GuardClass c) {
  switch (c) {
    case GuardClass::kAllocation:
      return g_allocations;
    case GuardClass::kLock:
      return g_locks;
    case GuardClass::kBlocking:
      return g_blocking;
    case GuardClass::kLoopOverrun:
      return g_loop_overruns;
  }
  return g_allocations;
}

bool InArmedScope(const ThreadHotPathState& state) {
  return state.depth > 0 && state.exempt_depth == 0;
}

// A guard observed `cls` inside an armed scope: count it, and in abort mode
// die with the class, the detail and the enclosing annotation label. Uses
// only snprintf/fprintf (no allocation: we may be inside operator new).
void GuardEvent(GuardClass cls, const char* what, std::size_t size) {
  const ThreadHotPathState& state = tls_state;
  CounterFor(cls).fetch_add(1, std::memory_order_relaxed);
  if (static_cast<GuardMode>(g_mode.load(std::memory_order_relaxed)) ==
      GuardMode::kCount) {
    return;
  }
  const char* label =
      state.depth > 0 && state.depth <= kMaxScopeDepth ? state.labels[state.depth - 1] : "?";
  char message[256];
  if (cls == GuardClass::kAllocation && size != 0) {
    std::snprintf(message, sizeof(message),
                  "FLIPC hot-path violation: %s (%s, %zu bytes) inside hot-path scope "
                  "'%s'\n",
                  GuardClassName(cls), what, size, label);
  } else {
    std::snprintf(message, sizeof(message),
                  "FLIPC hot-path violation: %s (%s) inside hot-path scope '%s'\n",
                  GuardClassName(cls), what, label);
  }
  std::fputs(message, stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void SetGuardMode(GuardMode mode) {
  g_mode.store(static_cast<std::uint8_t>(mode), std::memory_order_relaxed);
}

GuardMode CurrentGuardMode() {
  return static_cast<GuardMode>(g_mode.load(std::memory_order_relaxed));
}

GuardCounters ReadGuardCounters() {
  GuardCounters out;
  out.scope_entries = g_scope_entries.load(std::memory_order_relaxed);
  out.allocations = g_allocations.load(std::memory_order_relaxed);
  out.locks = g_locks.load(std::memory_order_relaxed);
  out.blocking_calls = g_blocking.load(std::memory_order_relaxed);
  out.loop_overruns = g_loop_overruns.load(std::memory_order_relaxed);
  return out;
}

void ResetGuardCounters() {
  g_scope_entries.store(0, std::memory_order_relaxed);
  g_allocations.store(0, std::memory_order_relaxed);
  g_locks.store(0, std::memory_order_relaxed);
  g_blocking.store(0, std::memory_order_relaxed);
  g_loop_overruns.store(0, std::memory_order_relaxed);
}

bool InHotPathScope() { return InArmedScope(tls_state); }

const char* CurrentHotPathLabel() {
  const ThreadHotPathState& state = tls_state;
  return state.depth > 0 && state.depth <= kMaxScopeDepth ? state.labels[state.depth - 1]
                                                          : "";
}

void OnAllocation(const char* what, std::size_t size) {
  if (InArmedScope(tls_state)) {
    GuardEvent(GuardClass::kAllocation, what, size);
  }
}

void OnLockAcquire(const char* what) {
  if (InArmedScope(tls_state)) {
    GuardEvent(GuardClass::kLock, what, 0);
  }
}

void OnBlockingCall(const char* what) {
  if (InArmedScope(tls_state)) {
    GuardEvent(GuardClass::kBlocking, what, 0);
  }
}

ScopedHotPath::ScopedHotPath(const char* label, bool armed) : armed_(armed) {
  if (!armed_) {
    return;
  }
  ThreadHotPathState& state = tls_state;
  if (state.depth < kMaxScopeDepth) {
    state.labels[state.depth] = label;
  }
  ++state.depth;
  g_scope_entries.fetch_add(1, std::memory_order_relaxed);
}

ScopedHotPath::~ScopedHotPath() {
  if (armed_) {
    --tls_state.depth;
  }
}

ScopedHotPathExemption::ScopedHotPathExemption(const char* /*reason*/) {
  ++tls_state.exempt_depth;
}

ScopedHotPathExemption::~ScopedHotPathExemption() { --tls_state.exempt_depth; }

void LoopBudget::Overrun() {
  if (InArmedScope(tls_state)) {
    GuardEvent(GuardClass::kLoopOverrun, label_, 0);
  }
}

}  // namespace flipc::hotpath

// ---- Global allocation guard ------------------------------------------------
//
// Replacing operator new/delete process-wide is what makes the guard
// airtight: std::vector growth, std::function capture, std::string — all
// route through here, and any of them inside an armed hot-path scope is a
// violation. Outside armed scopes this is a single TLS check on top of
// malloc/free. Only compiled under FLIPC_CHECK_HOT_PATH; the default build
// keeps the toolchain's allocator untouched.

namespace {

void* GuardedAlloc(std::size_t size, std::size_t align, const char* what) {
  flipc::hotpath::OnAllocation(what, size);
  void* p = nullptr;
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc requires size to be a multiple of the alignment.
    p = std::aligned_alloc(align, ((size + align - 1) / align) * align);
  } else {
    p = std::malloc(size != 0 ? size : 1);
  }
  return p;
}

void GuardedFree(void* p, const char* what) {
  if (p == nullptr) {
    return;
  }
  flipc::hotpath::OnAllocation(what, 0);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = GuardedAlloc(size, 0, "operator new");
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) {
  void* p = GuardedAlloc(size, 0, "operator new[]");
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = GuardedAlloc(size, static_cast<std::size_t>(align), "operator new(align)");
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = GuardedAlloc(size, static_cast<std::size_t>(align), "operator new[](align)");
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return GuardedAlloc(size, 0, "operator new(nothrow)");
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return GuardedAlloc(size, 0, "operator new[](nothrow)");
}

void operator delete(void* p) noexcept { GuardedFree(p, "operator delete"); }
void operator delete[](void* p) noexcept { GuardedFree(p, "operator delete[]"); }
void operator delete(void* p, std::size_t) noexcept { GuardedFree(p, "operator delete"); }
void operator delete[](void* p, std::size_t) noexcept {
  GuardedFree(p, "operator delete[]");
}
void operator delete(void* p, std::align_val_t) noexcept {
  GuardedFree(p, "operator delete(align)");
}
void operator delete[](void* p, std::align_val_t) noexcept {
  GuardedFree(p, "operator delete[](align)");
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  GuardedFree(p, "operator delete(align)");
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  GuardedFree(p, "operator delete[](align)");
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  GuardedFree(p, "operator delete(nothrow)");
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  GuardedFree(p, "operator delete[](nothrow)");
}

#endif  // FLIPC_CHECK_HOT_PATH
