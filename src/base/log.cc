#include "src/base/log.h"

#include <cstdio>
#include <mutex>

namespace flipc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_emit_mutex;

std::string_view LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

std::string_view Basename(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : enabled_(level >= GetLogLevel() && level != LogLevel::kOff), level_(level) {
  if (enabled_) {
    stream_ << LevelTag(level) << " [" << Basename(file) << ':' << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> guard(g_emit_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  (void)level_;
}

}  // namespace internal

}  // namespace flipc
