#include "src/base/trace.h"

namespace flipc {

std::string_view TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kNone:
      return "none";
    case TraceEvent::kEngineSend:
      return "engine.send";
    case TraceEvent::kEngineDeliver:
      return "engine.deliver";
    case TraceEvent::kEngineDrop:
      return "engine.drop";
    case TraceEvent::kEngineReject:
      return "engine.reject";
    case TraceEvent::kEngineHandlerWork:
      return "engine.handler";
    case TraceEvent::kApiSend:
      return "api.send";
    case TraceEvent::kApiReceive:
      return "api.receive";
    case TraceEvent::kApiPostBuffer:
      return "api.post_buffer";
    case TraceEvent::kApiReclaim:
      return "api.reclaim";
  }
  return "unknown";
}

}  // namespace flipc
