#include "src/base/trace.h"

#include <cinttypes>
#include <cstdio>

namespace flipc {

std::string_view TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kNone:
      return "none";
    case TraceEvent::kEngineSend:
      return "engine.send";
    case TraceEvent::kEngineDeliver:
      return "engine.deliver";
    case TraceEvent::kEngineDrop:
      return "engine.drop";
    case TraceEvent::kEngineReject:
      return "engine.reject";
    case TraceEvent::kEngineHandlerWork:
      return "engine.handler";
    case TraceEvent::kApiSend:
      return "api.send";
    case TraceEvent::kApiReceive:
      return "api.receive";
    case TraceEvent::kApiPostBuffer:
      return "api.post_buffer";
    case TraceEvent::kApiReclaim:
      return "api.reclaim";
  }
  return "unknown";
}

std::string ToChromeTraceJson(const TraceRing& ring, std::uint32_t pid) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceRecord& record : ring.Snapshot()) {
    char buffer[256];
    // "ts" is microseconds by convention; keep nanosecond precision as a
    // fraction. "i"/"t" = thread-scoped instant event.
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"name\":\"%.*s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%" PRId64
                  ".%03" PRId64 ",\"pid\":%" PRIu32
                  ",\"tid\":0,\"args\":{\"a\":%" PRIu32 ",\"b\":%" PRIu64 "}}",
                  first ? "" : ",",
                  static_cast<int>(TraceEventName(record.event).size()),
                  TraceEventName(record.event).data(), record.time_ns / 1000,
                  record.time_ns % 1000 < 0 ? -(record.time_ns % 1000)
                                            : record.time_ns % 1000,
                  pid, record.a, record.b);
    out += buffer;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace flipc
