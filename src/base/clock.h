// Clock abstraction.
//
// The same FLIPC library code runs in two modes: real-concurrency mode
// (engine on its own thread, RealClock) and discrete-event simulation mode
// (virtual time advanced by the simulator, ManualClock). Code that needs the
// time takes a Clock&; nothing in the messaging fast path reads the clock.
#ifndef SRC_BASE_CLOCK_H_
#define SRC_BASE_CLOCK_H_

#include <atomic>
#include <chrono>

#include "src/base/types.h"

namespace flipc {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeNs NowNs() const = 0;
};

// Wall-clock time from a monotonic source.
class RealClock final : public Clock {
 public:
  TimeNs NowNs() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  static RealClock& Instance() {
    static RealClock clock;
    return clock;
  }
};

// Manually advanced time; the DES owns one and moves it forward event by
// event. Thread-safe reads so a ManualClock can also back multi-thread tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimeNs start_ns = 0) : now_ns_(start_ns) {}

  TimeNs NowNs() const override { return now_ns_.load(std::memory_order_relaxed); }

  void AdvanceTo(TimeNs t) { now_ns_.store(t, std::memory_order_relaxed); }
  void AdvanceBy(DurationNs d) { now_ns_.fetch_add(d, std::memory_order_relaxed); }

 private:
  std::atomic<TimeNs> now_ns_;
};

}  // namespace flipc

#endif  // SRC_BASE_CLOCK_H_
