// Minimal leveled logging.
//
// The messaging fast path never logs; logging exists for engine startup,
// validity-check rejections, and test/bench diagnostics.
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <atomic>
#include <sstream>
#include <string_view>

namespace flipc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

// Accumulates one message and emits it (with level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define FLIPC_LOG(level) \
  ::flipc::internal::LogMessage(::flipc::LogLevel::level, __FILE__, __LINE__)

}  // namespace flipc

#endif  // SRC_BASE_LOG_H_
