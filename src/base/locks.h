// Locks for synchronization *among application threads*.
//
// The paper's synchronization split: application<->engine synchronization is
// wait-free (src/waitfree/), while application-thread<->application-thread
// mutual exclusion uses conventional locking. Two lock types matter here:
//
//  * TasLock — the test-and-set lock the paper's "locked" interface variants
//    use. On the Paragon the test-and-set had to lock the memory bus (the
//    caches did not implement lock residency), which is why the paper added
//    lock-free interface variants; the cost model charges for that.
//  * PetersonLock — 2-party mutual exclusion from loads and stores only,
//    i.e. the memory model the paper says the programmable controllers are
//    limited to. FLIPC's production structures avoid even this (single-writer
//    separation), but the lock is provided and tested to document the model.
#ifndef SRC_BASE_LOCKS_H_
#define SRC_BASE_LOCKS_H_

#include <atomic>

#include "src/base/hotpath.h"
#include "src/base/thread_annotations.h"
#include "src/base/types.h"

namespace flipc {

// Pause hint for spin-wait loops: tells the CPU the core is busy-waiting so
// it can yield pipeline resources to the sibling hyperthread and leave the
// contended line in a polite MESI state. Semantically a no-op.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

// Simple test-and-set spinlock. Satisfies Lockable.
//
// Both acquisition paths report to the hot-path guard (src/base/hotpath.h):
// the bus-locked test-and-set is exactly the cost the paper's lock-free
// interface variants exist to shed, so acquiring it inside an armed
// FLIPC_HOT_PATH scope is a violation. No-op in default builds.
class FLIPC_CAPABILITY("TasLock") TasLock {
 public:
  TasLock() = default;
  TasLock(const TasLock&) = delete;
  TasLock& operator=(const TasLock&) = delete;

  void lock() FLIPC_ACQUIRE() {
    hotpath::OnLockAcquire("TasLock::lock");
    FLIPC_UNBOUNDED_WAIT("lock spin: bounded only by the holder's release");
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Spin on a plain load to avoid hammering the bus with RMWs.
      FLIPC_UNBOUNDED_WAIT("lock spin: bounded only by the holder's release");
      while (flag_.test(std::memory_order_relaxed)) {
        CpuRelax();
      }
    }
  }

  bool try_lock() FLIPC_TRY_ACQUIRE(true) {
    hotpath::OnLockAcquire("TasLock::try_lock");
    return !flag_.test_and_set(std::memory_order_acquire);
  }

  void unlock() FLIPC_RELEASE() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// Peterson's algorithm for two parties identified as side 0 and side 1.
// Uses only atomic loads and stores (seq_cst, which the classic algorithm
// requires for the store/load ordering between `interested` and `turn`).
//
// seq_cst whitelist (tools/flipc_hotpath_lint): the four sequentially
// consistent accesses below are the ONLY ones the lint permits outside
// src/waitfree/. Peterson's algorithm is correct exactly because the
// `interested` store is globally ordered before the `turn` store, and both
// before the two loads — acquire/release cannot provide that store->load
// ordering (it allows the classic both-sides-enter reordering), so these
// four cannot be weakened. FLIPC's production structures never pay this
// fence: they need no mutual exclusion at all (single-writer separation,
// docs/MEMORY_MODEL.md). The lock exists to document the
// loads-and-stores-only memory model of the paper's controllers, and its
// acquisition reports to the hot-path guard like any other lock.
class FLIPC_CAPABILITY("PetersonLock") PetersonLock {
 public:
  void Lock(int side) FLIPC_ACQUIRE() {
    hotpath::OnLockAcquire("PetersonLock::Lock");
    const int other = 1 - side;
    interested_[side].store(true, std::memory_order_seq_cst);
    turn_.store(other, std::memory_order_seq_cst);
    FLIPC_UNBOUNDED_WAIT("lock spin: bounded only by the other side's exit");
    while (interested_[other].load(std::memory_order_seq_cst) &&
           turn_.load(std::memory_order_seq_cst) == other) {
      CpuRelax();
    }
  }

  void Unlock(int side) FLIPC_RELEASE() {
    interested_[side].store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> interested_[2] = {false, false};
  std::atomic<int> turn_{0};
};

// RAII guard for PetersonLock.
class FLIPC_SCOPED_CAPABILITY PetersonGuard {
 public:
  PetersonGuard(PetersonLock& lock, int side) FLIPC_ACQUIRE(lock)
      : lock_(lock), side_(side) {
    lock_.Lock(side_);
  }
  ~PetersonGuard() FLIPC_RELEASE() { lock_.Unlock(side_); }
  PetersonGuard(const PetersonGuard&) = delete;
  PetersonGuard& operator=(const PetersonGuard&) = delete;

 private:
  PetersonLock& lock_;
  int side_;
};

}  // namespace flipc

#endif  // SRC_BASE_LOCKS_H_
