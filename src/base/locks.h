// Locks for synchronization *among application threads*.
//
// The paper's synchronization split: application<->engine synchronization is
// wait-free (src/waitfree/), while application-thread<->application-thread
// mutual exclusion uses conventional locking. Two lock types matter here:
//
//  * TasLock — the test-and-set lock the paper's "locked" interface variants
//    use. On the Paragon the test-and-set had to lock the memory bus (the
//    caches did not implement lock residency), which is why the paper added
//    lock-free interface variants; the cost model charges for that.
//  * PetersonLock — 2-party mutual exclusion from loads and stores only,
//    i.e. the memory model the paper says the programmable controllers are
//    limited to. FLIPC's production structures avoid even this (single-writer
//    separation), but the lock is provided and tested to document the model.
#ifndef SRC_BASE_LOCKS_H_
#define SRC_BASE_LOCKS_H_

#include <atomic>

#include "src/base/types.h"

namespace flipc {

// Simple test-and-set spinlock. Satisfies Lockable.
class TasLock {
 public:
  TasLock() = default;
  TasLock(const TasLock&) = delete;
  TasLock& operator=(const TasLock&) = delete;

  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Spin on a plain load to avoid hammering the bus with RMWs.
      while (flag_.test(std::memory_order_relaxed)) {
      }
    }
  }

  bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }

  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// Peterson's algorithm for two parties identified as side 0 and side 1.
// Uses only atomic loads and stores (seq_cst, which the classic algorithm
// requires for the store/load ordering between `interested` and `turn`).
class PetersonLock {
 public:
  void Lock(int side) {
    const int other = 1 - side;
    interested_[side].store(true, std::memory_order_seq_cst);
    turn_.store(other, std::memory_order_seq_cst);
    while (interested_[other].load(std::memory_order_seq_cst) &&
           turn_.load(std::memory_order_seq_cst) == other) {
    }
  }

  void Unlock(int side) { interested_[side].store(false, std::memory_order_release); }

 private:
  std::atomic<bool> interested_[2] = {false, false};
  std::atomic<int> turn_{0};
};

// RAII guard for PetersonLock.
class PetersonGuard {
 public:
  PetersonGuard(PetersonLock& lock, int side) : lock_(lock), side_(side) {
    lock_.Lock(side_);
  }
  ~PetersonGuard() { lock_.Unlock(side_); }
  PetersonGuard(const PetersonGuard&) = delete;
  PetersonGuard& operator=(const PetersonGuard&) = delete;

 private:
  PetersonLock& lock_;
  int side_;
};

}  // namespace flipc

#endif  // SRC_BASE_LOCKS_H_
