// Statistics helpers used by the benchmark harnesses.
//
// The paper reports mean latencies with standard deviations (Figure 4) and a
// least-squares line (latency = 15.45 us + 6.25 ns/byte); RunningStats and
// LinearFit regenerate exactly those summaries from measured samples.
#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace flipc {

// Welford's online mean/variance.
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Ordinary least-squares fit y = intercept + slope * x.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

class LinearFit {
 public:
  void Add(double x, double y) {
    xs_.push_back(x);
    ys_.push_back(y);
  }

  std::size_t count() const { return xs_.size(); }

  LineFit Fit() const {
    LineFit out;
    const std::size_t n = xs_.size();
    if (n < 2) {
      return out;
    }
    double sx = 0, sy = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sx += xs_[i];
      sy += ys_[i];
    }
    const double mx = sx / static_cast<double>(n);
    const double my = sy / static_cast<double>(n);
    double sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = xs_[i] - mx;
      const double dy = ys_[i] - my;
      sxx += dx * dx;
      sxy += dx * dy;
      syy += dy * dy;
    }
    if (sxx == 0.0) {
      return out;
    }
    out.slope = sxy / sxx;
    out.intercept = my - out.slope * mx;
    out.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
    return out;
  }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

// Fixed-bucket histogram with percentile queries; used for latency tails in
// the real-time isolation experiments.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void Add(double x) {
    ++total_;
    if (x < lo_) {
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    const auto idx = static_cast<std::size_t>(
        (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
    ++counts_[std::min(idx, counts_.size() - 1)];
  }

  std::uint64_t total() const { return total_; }

  // Sums `other`'s buckets into this histogram. Both must have identical
  // bucket configuration; a mismatch merges only the totals (the shapes are
  // incomparable, so bucket counts are left alone).
  void Merge(const Histogram& other) {
    total_ += other.total_;
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    if (lo_ == other.lo_ && hi_ == other.hi_ && counts_.size() == other.counts_.size()) {
      for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other.counts_[i];
      }
    }
  }

  // Returns the lower edge of the bucket containing quantile q in [0, 1].
  double Quantile(double q) const {
    if (total_ == 0) {
      return lo_;
    }
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = underflow_;
    if (seen > target) {
      return lo_;
    }
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > target) {
        return lo_ + width * static_cast<double>(i);
      }
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace flipc

#endif  // SRC_BASE_STATS_H_
