// Hot-path purity annotations and guards.
//
// FLIPC's headline property is what is ABSENT from the messaging path: the
// OS kernel, locks, heap allocation, unbounded loops. Send/receive and the
// engine work unit are wait-free using plain acquire/release loads and
// stores (PAPER.md; docs/MEMORY_MODEL.md). PR 1 mechanized the
// single-writer rule; this header mechanizes wait-freedom itself, because
// hot-path regressions (a stray mutex, an allocation, a blocking call) are
// exactly the bugs that silently erase a low-latency design.
//
// Three pieces:
//
//  1. Scope markers. `FLIPC_HOT_PATH("label")` declares that the rest of
//     the enclosing scope is on the messaging hot path and must not
//     allocate, acquire a lock, or block. `FLIPC_HOT_PATH_IF(cond, label)`
//     arms the scope conditionally (the locked interface variants share
//     code with the lock-free ones but do not carry the obligation).
//     `FLIPC_HOT_PATH_EXEMPT("reason")` suspends the guards for a nested
//     region that models hardware or kernel work which is off the real
//     path by design (the simulated wire's DMA copy, the real-time
//     semaphore handoff, the engine-runner kick — each use documents why).
//
//  2. Guards. Under -DFLIPC_CHECK_HOT_PATH=ON the markers arm runtime
//     guards: a global operator new/delete replacement, lock-acquisition
//     hooks in src/base/locks.h and the blocking primitives, and a
//     bounded-loop budget assertion. A guard event inside an armed scope
//     aborts with the guard class and the enclosing annotation label
//     (GuardMode::kAbort, the default) or increments a per-class counter
//     (GuardMode::kCount — used by bench_micro_waitfree to report
//     allocations/locks per operation, and by negative tests). In the
//     default build every marker and hook compiles to nothing.
//
//  3. The static half. tools/flipc_hotpath_lint inspects the compiled
//     hot-path objects for undefined references to allocation, pthread and
//     blocking libc entry points, and enforces the source-level atomics
//     discipline (no raw std::atomic outside src/waitfree/ and
//     src/base/locks.h; seq_cst only in the Peterson lock). The runtime
//     guards catch what symbols cannot (an allocation on a cold branch of
//     a hot TU is fine; one inside an armed scope is not), and vice versa.
//
// C-level malloc() calls do not route through operator new and are not
// hooked at runtime (glibc removed __malloc_hook); they are caught by the
// symbol lint instead, which denies undefined malloc/calloc/realloc
// references in pure hot-path translation units.
#ifndef SRC_BASE_HOTPATH_H_
#define SRC_BASE_HOTPATH_H_

#include <cstddef>
#include <cstdint>

// ---- Writer-role annotations (tools/flipc_static_audit) --------------------
//
// The single-writer rule is a property of ROLES, not threads: every write to
// a shared comm-buffer field must happen in code executing as that field's
// owning side. These macros declare the role of an entry point so the static
// protocol auditor can compute the call-graph closure and prove, without
// running anything, that each ownership-table field is written only under
// its owner role:
//
//   FLIPC_ROLE_APP        application side of the protection boundary
//                         (Endpoint::Send/Receive/..., buffer allocation)
//   FLIPC_ROLE_ENGINE     messaging-engine side (MessagingEngine::Step,
//                         EngineRunner::Loop)
//   FLIPC_ROLE_QUIESCENT  setup/teardown code that legitimately writes both
//                         sides while the structure is unattached or the
//                         endpoint slot is quiescent — the static analogue
//                         of ScopedBoundaryExemption (CommBuffer::Format,
//                         AllocateEndpoint)
//   FLIPC_ROLE_ENGINE_SHARD
//                         the shard-qualified engine role: engine-side code
//                         whose writes are additionally confined to one
//                         shard planner's cells (the SPSC handoff ring, the
//                         per-shard doorbell head). Statically it is the
//                         engine role — the auditor proves the writer SIDE;
//                         the shard dimension is enforced at run time by the
//                         boundary checker's shard-qualified declarations
//                         (boundary_check.h: DeclareCellOwner(cell, owner,
//                         shard, label) + BindCurrentThread(role, shard)).
//
// Zero-cost by construction: under Clang they expand to an `annotate`
// attribute (visible in the AST, absent from generated code); elsewhere to
// nothing. The token-level auditor frontend reads the macro names straight
// from the source, so the annotations work under any compiler. A function
// may carry more than one role (it runs under either side's closure).
#if defined(__clang__)
#define FLIPC_ROLE_APP __attribute__((annotate("flipc_role_app")))
#define FLIPC_ROLE_ENGINE __attribute__((annotate("flipc_role_engine")))
#define FLIPC_ROLE_ENGINE_SHARD __attribute__((annotate("flipc_role_engine_shard")))
#define FLIPC_ROLE_QUIESCENT __attribute__((annotate("flipc_role_quiescent")))
#else
#define FLIPC_ROLE_APP
#define FLIPC_ROLE_ENGINE
#define FLIPC_ROLE_ENGINE_SHARD
#define FLIPC_ROLE_QUIESCENT
#endif

// ---- Progress annotations (tools/flipc_static_audit) -----------------------
//
// The bounded-progress certifier proves that every loop reachable from a
// wait-free entry point (a FLIPC_HOT_PATH scope) terminates in a bounded
// number of steps. Loops whose trip bound is a compile-time constant or a
// countdown are recognized automatically; everything else must be annotated:
//
//   FLIPC_BOUNDED_BY(expr)       placed as the statement immediately before
//                                a loop: the loop executes at most `expr`
//                                iterations (a ring/queue capacity, a shard's
//                                endpoint-range width, a histogram's bucket
//                                count). `expr` must name real in-scope state
//                                — it is syntax-checked (unevaluated), so the
//                                annotation cannot rot into referring to
//                                variables that no longer exist.
//   FLIPC_UNBOUNDED_WAIT(why)    placed before a loop that legitimately waits
//                                for another agent's progress (a lock spin, a
//                                blocking-receive park). Such a park site is
//                                permitted only OUTSIDE hot-path scopes and
//                                outside the hot closure; the certifier
//                                hard-errors on one reachable from a wait-free
//                                entry point.
//
// Both are statements that compile to nothing in every build mode; the
// auditor frontends read the macro names straight from the token stream.
#define FLIPC_BOUNDED_BY(expr) ((void)sizeof((expr)))
#define FLIPC_UNBOUNDED_WAIT(why) ((void)sizeof((why)))

namespace flipc::hotpath {

// What a guard observed inside an armed hot-path scope.
enum class GuardClass : std::uint8_t {
  kAllocation,   // operator new/delete (heap traffic)
  kLock,         // TasLock / PetersonLock acquisition
  kBlocking,     // blocking primitive (semaphore wait/post, idle park)
  kLoopOverrun,  // a bounded loop exceeded its iteration budget
};

constexpr const char* GuardClassName(GuardClass c) {
  switch (c) {
    case GuardClass::kAllocation:
      return "allocation";
    case GuardClass::kLock:
      return "lock acquisition";
    case GuardClass::kBlocking:
      return "blocking call";
    case GuardClass::kLoopOverrun:
      return "loop budget overrun";
  }
  return "?";
}

// What to do when a guard fires inside an armed scope.
enum class GuardMode : std::uint8_t {
  kAbort,  // print the class, detail and scope label; abort (default)
  kCount,  // increment the per-class counter and continue
};

// Events observed inside armed scopes since the last reset. Counted in both
// modes (in kAbort mode the process usually dies on the first one).
struct GuardCounters {
  std::uint64_t scope_entries = 0;
  std::uint64_t allocations = 0;
  std::uint64_t locks = 0;
  std::uint64_t blocking_calls = 0;
  std::uint64_t loop_overruns = 0;
};

#ifdef FLIPC_CHECK_HOT_PATH
inline constexpr bool kHotPathCheckEnabled = true;

void SetGuardMode(GuardMode mode);
GuardMode CurrentGuardMode();
GuardCounters ReadGuardCounters();
void ResetGuardCounters();

// True when the calling thread is inside an armed, non-exempt hot-path
// scope; Label() names the innermost scope (only meaningful when true).
bool InHotPathScope();
const char* CurrentHotPathLabel();

// Guard entry points, called by the hooked primitives. No-ops unless the
// calling thread is inside an armed, non-exempt scope.
void OnAllocation(const char* what, std::size_t size);
void OnLockAcquire(const char* what);
void OnBlockingCall(const char* what);

// RAII scope marker. Out-of-line on purpose: referencing it pulls
// hotpath.o — and with it the operator new/delete replacement — into any
// binary that enters a hot-path scope.
class ScopedHotPath {
 public:
  explicit ScopedHotPath(const char* label, bool armed = true);
  ~ScopedHotPath();
  ScopedHotPath(const ScopedHotPath&) = delete;
  ScopedHotPath& operator=(const ScopedHotPath&) = delete;

 private:
  bool armed_;
};

// Suspends the guards for a nested region (nests). Every use must document
// why the region is off the real hot path.
class ScopedHotPathExemption {
 public:
  explicit ScopedHotPathExemption(const char* reason);
  ~ScopedHotPathExemption();
  ScopedHotPathExemption(const ScopedHotPathExemption&) = delete;
  ScopedHotPathExemption& operator=(const ScopedHotPathExemption&) = delete;
};

// The bounded-loop assertion: hot-path loops must have an a-priori
// iteration budget (wait-freedom is per-operation boundedness, not just
// lock absence). Step() past the budget inside an armed scope is a
// kLoopOverrun guard event.
class LoopBudget {
 public:
  LoopBudget(const char* label, std::uint64_t budget)
      : label_(label), budget_(budget) {}

  void Step() {
    if (++steps_ > budget_) {
      Overrun();
    }
  }

 private:
  void Overrun();

  const char* label_;
  std::uint64_t budget_;
  std::uint64_t steps_ = 0;
};

#define FLIPC_HP_CONCAT_IMPL(a, b) a##b
#define FLIPC_HP_CONCAT(a, b) FLIPC_HP_CONCAT_IMPL(a, b)

#define FLIPC_HOT_PATH(label) \
  ::flipc::hotpath::ScopedHotPath FLIPC_HP_CONCAT(flipc_hot_scope_, __COUNTER__)(label)
#define FLIPC_HOT_PATH_IF(armed, label)                                           \
  ::flipc::hotpath::ScopedHotPath FLIPC_HP_CONCAT(flipc_hot_scope_, __COUNTER__)( \
      (label), (armed))
#define FLIPC_HOT_PATH_EXEMPT(reason)                     \
  ::flipc::hotpath::ScopedHotPathExemption FLIPC_HP_CONCAT(flipc_hot_exempt_, \
                                                           __COUNTER__)(reason)
#define FLIPC_HOT_PATH_LOOP_BUDGET(name, label, budget) \
  ::flipc::hotpath::LoopBudget name((label), (budget))
#define FLIPC_HOT_PATH_LOOP_STEP(name) (name).Step()

#else  // !FLIPC_CHECK_HOT_PATH

inline constexpr bool kHotPathCheckEnabled = false;

// Everything compiles to nothing: the default build is the product, and
// the annotated binaries must be unchanged (acceptance: the Figure 4 fit).
inline void SetGuardMode(GuardMode) {}
inline GuardMode CurrentGuardMode() { return GuardMode::kAbort; }
inline GuardCounters ReadGuardCounters() { return GuardCounters{}; }
inline void ResetGuardCounters() {}
inline bool InHotPathScope() { return false; }
inline const char* CurrentHotPathLabel() { return ""; }
inline void OnAllocation(const char*, std::size_t) {}
inline void OnLockAcquire(const char*) {}
inline void OnBlockingCall(const char*) {}

#define FLIPC_HOT_PATH(label) ((void)0)
#define FLIPC_HOT_PATH_IF(armed, label) ((void)0)
#define FLIPC_HOT_PATH_EXEMPT(reason) ((void)0)
#define FLIPC_HOT_PATH_LOOP_BUDGET(name, label, budget) ((void)0)
#define FLIPC_HOT_PATH_LOOP_STEP(name) ((void)0)

#endif  // FLIPC_CHECK_HOT_PATH

}  // namespace flipc::hotpath

#endif  // SRC_BASE_HOTPATH_H_
