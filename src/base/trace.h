// Lightweight event tracing.
//
// A fixed-capacity ring of timestamped events for post-mortem inspection of
// engine and protocol behaviour — the kind of flight recorder a real-time
// messaging system ships with. Recording is wait-free for a single writer
// (the messaging engine records from its own loop; separate components use
// separate rings) and costs a few stores per event; disabled rings cost one
// branch.
#ifndef SRC_BASE_TRACE_H_
#define SRC_BASE_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/types.h"

namespace flipc {

enum class TraceEvent : std::uint16_t {
  kNone = 0,
  // Engine events.
  kEngineSend = 1,         // a = endpoint, b = buffer index
  kEngineDeliver = 2,      // a = endpoint, b = buffer index
  kEngineDrop = 3,         // a = endpoint
  kEngineReject = 4,       // a = endpoint (validity / protection)
  kEngineHandlerWork = 5,  // a = protocol id
  // Application-library events.
  kApiSend = 16,           // a = endpoint
  kApiReceive = 17,        // a = endpoint
  kApiPostBuffer = 18,     // a = endpoint
  kApiReclaim = 19,        // a = endpoint
};

std::string_view TraceEventName(TraceEvent event);

struct TraceRecord {
  TimeNs time_ns = 0;
  TraceEvent event = TraceEvent::kNone;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096)
      : records_(capacity == 0 ? 1 : capacity) {}

  void Record(TimeNs time_ns, TraceEvent event, std::uint32_t a = 0, std::uint64_t b = 0) {
    if (!enabled_) {
      return;  // The documented contract: a disabled ring costs this branch.
    }
    TraceRecord& slot = records_[next_ % records_.size()];
    slot.time_ns = time_ns;
    slot.event = event;
    slot.a = a;
    slot.b = b;
    ++next_;
  }

  // Disabling drops events without consuming slots or bumping recorded();
  // re-enabling resumes where the ring left off.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  std::uint64_t recorded() const { return next_; }
  std::size_t capacity() const { return records_.size(); }

  // Events still held, oldest first.
  std::vector<TraceRecord> Snapshot() const {
    std::vector<TraceRecord> out;
    const std::uint64_t have =
        next_ < records_.size() ? next_ : static_cast<std::uint64_t>(records_.size());
    out.reserve(have);
    const std::uint64_t start = next_ - have;
    for (std::uint64_t i = 0; i < have; ++i) {
      out.push_back(records_[(start + i) % records_.size()]);
    }
    return out;
  }

  void Clear() { next_ = 0; }

 private:
  std::vector<TraceRecord> records_;
  std::uint64_t next_ = 0;
  bool enabled_ = true;
};

// Renders the ring's current snapshot in the Chrome trace-event JSON format
// (load via chrome://tracing or https://ui.perfetto.dev). Events become
// thread-scoped instants; `a` and `b` ride along in args. `pid`
// distinguishes rings when several exports are merged by hand.
std::string ToChromeTraceJson(const TraceRing& ring, std::uint32_t pid = 0);

}  // namespace flipc

#endif  // SRC_BASE_TRACE_H_
