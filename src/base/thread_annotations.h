// Clang Thread Safety Analysis annotations (-Wthread-safety).
//
// FLIPC's hot path is wait-free and has nothing to annotate — the static
// protocol auditor (tools/flipc_static_audit) proves its single-writer and
// memory-order discipline instead. These annotations cover the LOCKED
// subsystems around it: the library-side endpoint bookkeeping, the
// simulated kernel objects (simos), the simulated fabric, and the RMA
// protocol node. There, classic lock discipline applies and clang can
// prove it at compile time: every GUARDED_BY member is touched only with
// its mutex held, lock-requiring helpers are only called under the lock.
//
// The macros expand to nothing outside clang (GCC has no thread-safety
// attributes), so annotated code builds unchanged everywhere; the CI clang
// leg compiles with -Wthread-safety and surfaces violations.
//
// std::lock_guard/std::unique_lock in libstdc++ carry no annotations, so
// the analysis cannot see through them; annotated code uses the
// flipc::ScopedLock below (an annotated RAII guard with absl-style early
// Release()). Condition-variable waits still need std::unique_lock —
// those few functions opt out with FLIPC_NO_THREAD_SAFETY_ANALYSIS and
// say why.
#ifndef SRC_BASE_THREAD_ANNOTATIONS_H_
#define SRC_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FLIPC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FLIPC_THREAD_ANNOTATION
#define FLIPC_THREAD_ANNOTATION(x)
#endif

// On a class: instances are lockable capabilities.
#define FLIPC_CAPABILITY(name) FLIPC_THREAD_ANNOTATION(capability(name))
// On a class: RAII object acquiring in its constructor, releasing in its
// destructor.
#define FLIPC_SCOPED_CAPABILITY FLIPC_THREAD_ANNOTATION(scoped_lockable)
// On a data member: may only be accessed with `mu` held.
#define FLIPC_GUARDED_BY(mu) FLIPC_THREAD_ANNOTATION(guarded_by(mu))
// On a pointer member: the pointee may only be accessed with `mu` held.
#define FLIPC_PT_GUARDED_BY(mu) FLIPC_THREAD_ANNOTATION(pt_guarded_by(mu))
// On a function: the caller must hold the listed capabilities.
#define FLIPC_REQUIRES(...) \
  FLIPC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// On a function: acquires/releases the listed capabilities.
#define FLIPC_ACQUIRE(...) \
  FLIPC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FLIPC_RELEASE(...) \
  FLIPC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// On a function: acquires the capability iff it returns `result`.
#define FLIPC_TRY_ACQUIRE(result, ...) \
  FLIPC_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
// On a function: the caller must NOT hold the listed capabilities.
#define FLIPC_EXCLUDES(...) FLIPC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On a function: opt out of the analysis (document why at each use).
#define FLIPC_NO_THREAD_SAFETY_ANALYSIS \
  FLIPC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace flipc {

// Annotated RAII lock guard: what std::lock_guard would be if libstdc++
// carried thread-safety attributes. Works with any Lockable (std::mutex,
// TasLock). Release() unlocks early, like absl::ReleasableMutexLock.
template <typename Mutex>
class FLIPC_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex& mutex) FLIPC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }

  ~ScopedLock() FLIPC_RELEASE() {
    if (!released_) {
      mutex_.unlock();
    }
  }

  // Unlocks before scope exit (for work that must happen outside the
  // critical section). No re-acquisition: the guard is spent.
  void Release() FLIPC_RELEASE() {
    released_ = true;
    mutex_.unlock();
  }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Mutex& mutex_;
  bool released_ = false;
};

}  // namespace flipc

#endif  // SRC_BASE_THREAD_ANNOTATIONS_H_
