// Deterministic pseudo-random number generation for workloads and tests.
//
// Benchmarks must be reproducible run-to-run, so all workload generators use
// this seeded xoshiro256** generator rather than std::random_device.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace flipc {

// splitmix64: used to expand a single seed into generator state.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// xoshiro256**. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x05f11bc1996ull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be nonzero.
  constexpr std::uint64_t Below(std::uint64_t bound) { return (*this)() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t Between(std::uint64_t lo, std::uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  constexpr double UnitDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial.
  constexpr bool Chance(double p) { return UnitDouble() < p; }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace flipc

#endif  // SRC_BASE_RNG_H_
