// Per-endpoint telemetry resident in the communication buffer.
//
// The paper's engine is observable only through the drop counters; every
// other operational property (doorbell scheduling, batching, backstop
// sweeps) is invisible at run time. This block makes the counters that
// describe an endpoint's life first-class comm-buffer state, readable by
// any process that can map the region (tools/flipc_inspect), under the
// same rules as everything else in the buffer:
//
//   * single writer — the block is split into an application-written line
//     and an engine-written line; each cell has exactly one writing side,
//     declared in the ownership table (src/shm/ownership_layout.h) so the
//     layout lint and the ownership race detector both cover it;
//   * wait-free — increments are a relaxed load plus a release store on a
//     SingleWriterCell (the dual-location drop-counter idiom), never an
//     atomic RMW, so they are legal on the paper's loads/stores-only
//     controllers and stay inside the hot-path purity budget;
//   * no mixed cache lines — the two halves are cache-line separated, so
//     telemetry can never reintroduce the paper's 2x false-sharing bug.
//
// Counters are totals since the endpoint slot was (re)allocated. They are
// deliberately redundant with the queue cursors: `api_sends + api_posts`
// must track `release_count` (mod 2^32) and `engine_transmits +
// engine_rejects` must track a send endpoint's `processed_total` —
// cross-checks that flipc_inspect --metrics performs, and CI gates on.
// Message drops stay in the EndpointRecord's dual-location drop counter
// (the application participates in reading-and-resetting those).
#ifndef SRC_SHM_TELEMETRY_BLOCK_H_
#define SRC_SHM_TELEMETRY_BLOCK_H_

#include <cstdint>

#include "src/base/hotpath.h"
#include "src/base/types.h"
#include "src/waitfree/single_writer.h"

namespace flipc::shm {

struct alignas(kCacheLineSize) TelemetryBlock {
  // ---- Line 0: application-written ----
  waitfree::SingleWriterCell<std::uint64_t> api_sends;        // successful Send releases
  waitfree::SingleWriterCell<std::uint64_t> api_receives;     // successful Receive acquires
  waitfree::SingleWriterCell<std::uint64_t> api_posts;        // successful PostBuffer releases
  waitfree::SingleWriterCell<std::uint64_t> api_reclaims;     // successful Reclaim acquires
  waitfree::SingleWriterCell<std::uint64_t> releases_rejected;  // queue-full Send/PostBuffer
  waitfree::SingleWriterCell<std::uint64_t> doorbell_rings;   // doorbells rung on send
  waitfree::SingleWriterCell<std::uint64_t> doorbell_full;    // rings that found the ring full

  // ---- Line 1: engine-written ----
  alignas(kCacheLineSize)
  waitfree::SingleWriterCell<std::uint64_t> engine_transmits;   // send buffers put on the wire
  waitfree::SingleWriterCell<std::uint64_t> engine_deliveries;  // messages delivered locally
  waitfree::SingleWriterCell<std::uint64_t> engine_rejects;     // buffers consumed as rejections
  waitfree::SingleWriterCell<std::uint64_t> queue_depth_high_water;  // max processable seen
  // QoS planner (DESIGN.md §15): transmissions completed after the
  // message's relative deadline (deadline_ns) had already expired.
  waitfree::SingleWriterCell<std::uint64_t> deadline_misses;
  // QoS planner: widest gap (ns) observed between consecutive services of
  // this endpoint while it had processable work — the starvation signal.
  // Conditional monotone max, like queue_depth_high_water.
  waitfree::SingleWriterCell<std::uint64_t> max_service_gap_ns;
  // QoS planner: times the planner skipped this endpoint because its
  // token bucket / send interval said "not yet".
  waitfree::SingleWriterCell<std::uint64_t> throttle_deferrals;

  // ---- Application-side increments (call under the application role) ----
  //
  // Each increment is written out in full (relaxed load + release store on
  // the named cell — the dual-location idiom; single writer makes it exact
  // with no RMW) rather than through a bump-helper taking the cell by
  // reference: the static protocol auditor attributes each store to the
  // field it names, so the write site must name the field.
  FLIPC_ROLE_APP void RecordApiSend() { api_sends.Publish(api_sends.ReadRelaxed() + 1); }
  FLIPC_ROLE_APP void RecordApiReceive() {
    api_receives.Publish(api_receives.ReadRelaxed() + 1);
  }
  FLIPC_ROLE_APP void RecordApiPost() { api_posts.Publish(api_posts.ReadRelaxed() + 1); }
  FLIPC_ROLE_APP void RecordApiReclaim() {
    api_reclaims.Publish(api_reclaims.ReadRelaxed() + 1);
  }
  FLIPC_ROLE_APP void RecordReleaseRejected() {
    releases_rejected.Publish(releases_rejected.ReadRelaxed() + 1);
  }
  FLIPC_ROLE_APP void RecordDoorbell(bool rang) {
    doorbell_rings.Publish(doorbell_rings.ReadRelaxed() + 1);
    if (!rang) {
      doorbell_full.Publish(doorbell_full.ReadRelaxed() + 1);
    }
  }

  // ---- Engine-side increments (call under the engine role) ----
  FLIPC_ROLE_ENGINE void RecordEngineTransmit() {
    engine_transmits.Publish(engine_transmits.ReadRelaxed() + 1);
  }
  FLIPC_ROLE_ENGINE void RecordEngineDelivery() {
    engine_deliveries.Publish(engine_deliveries.ReadRelaxed() + 1);
  }
  FLIPC_ROLE_ENGINE void RecordEngineReject() {
    engine_rejects.Publish(engine_rejects.ReadRelaxed() + 1);
  }
  FLIPC_ROLE_ENGINE void NoteQueueDepth(std::uint64_t depth) {
    if (depth > queue_depth_high_water.ReadRelaxed()) {
      queue_depth_high_water.Publish(depth);
    }
  }
  FLIPC_ROLE_ENGINE void RecordDeadlineMiss() {
    deadline_misses.Publish(deadline_misses.ReadRelaxed() + 1);
  }
  FLIPC_ROLE_ENGINE void NoteServiceGap(std::uint64_t gap_ns) {
    if (gap_ns > max_service_gap_ns.ReadRelaxed()) {
      max_service_gap_ns.Publish(gap_ns);
    }
  }
  FLIPC_ROLE_ENGINE void RecordThrottleDeferral() {
    throttle_deferrals.Publish(throttle_deferrals.ReadRelaxed() + 1);
  }

  // Zeroes every cell. Only legal while the endpoint slot is quiescent
  // (being (re)allocated): the caller writes both halves, so it must hold
  // a boundary exemption exactly like the EndpointRecord cursor reset.
  FLIPC_ROLE_QUIESCENT void ResetQuiescent() {
    api_sends.StoreRelaxed(0);
    api_receives.StoreRelaxed(0);
    api_posts.StoreRelaxed(0);
    api_reclaims.StoreRelaxed(0);
    releases_rejected.StoreRelaxed(0);
    doorbell_rings.StoreRelaxed(0);
    doorbell_full.StoreRelaxed(0);
    engine_transmits.StoreRelaxed(0);
    engine_deliveries.StoreRelaxed(0);
    engine_rejects.StoreRelaxed(0);
    queue_depth_high_water.StoreRelaxed(0);
    deadline_misses.StoreRelaxed(0);
    max_service_gap_ns.StoreRelaxed(0);
    throttle_deferrals.StoreRelaxed(0);
  }
};
static_assert(sizeof(TelemetryBlock) == 2 * kCacheLineSize,
              "one application line + one engine line; layouts are shared-memory ABI");
static_assert(alignof(TelemetryBlock) == kCacheLineSize);

}  // namespace flipc::shm

#endif  // SRC_SHM_TELEMETRY_BLOCK_H_
