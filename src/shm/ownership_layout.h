// Ownership tables and the compile-time layout lint for the communication
// buffer's shared structures.
//
// Two of the paper's rules are enforced here, mechanically, for every field
// the application and messaging engine share:
//
//  1. Single writer — each word is written by exactly one side of the
//     protection boundary. The tables below declare that side per field and
//     are the single source of truth: the ownership race detector
//     (boundary_check.h) registers cells from them at region format/attach
//     time, and tests compare against them.
//
//  2. No mixed cache lines — "ensure that concurrent writes from the
//     application and messaging engine can never occur in the same cache
//     line" (the paper's false-sharing fix, worth ~2x latency on the
//     Paragon). The constexpr predicates below walk the declared offsets
//     and static_assert that no cache line holds words with two distinct
//     writers, and that every cross-boundary field is naturally aligned and
//     does not straddle a line. Breaking the layout breaks the build.
//
// tools/flipc_layout_lint.cc re-runs the same predicates at runtime and
// prints the per-line writer map, so the audit is also available as a ctest
// and inspectable by humans.
#ifndef SRC_SHM_OWNERSHIP_LAYOUT_H_
#define SRC_SHM_OWNERSHIP_LAYOUT_H_

#include <cstddef>

#include "src/base/types.h"
#include "src/shm/comm_buffer.h"
#include "src/shm/endpoint_record.h"
#include "src/waitfree/boundary_check.h"
#include "src/waitfree/buffer_queue.h"
#include "src/waitfree/doorbell_ring.h"
#include "src/waitfree/drop_counter.h"
#include "src/waitfree/handoff_ring.h"

namespace flipc::shm {

// One shared field: where it lives, how big it is, who writes it.
struct FieldOwnership {
  const char* name;
  std::size_t offset;
  std::size_t size;
  waitfree::Writer writer;
  // True for SingleWriterCells registered with the ownership race detector.
  // False for fields outside its scope: plain header words written only
  // under the allocation lock, and the application-thread TasLocks.
  bool checked_cell;
  // True for configuration written only while the structure is quiescent
  // (endpoint being (de)allocated, region being formatted).
  bool quiescent;
};

namespace ownership_internal {
constexpr waitfree::Writer kApp = waitfree::Writer::kApplication;
constexpr waitfree::Writer kEng = waitfree::Writer::kEngine;
}  // namespace ownership_internal

#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
#endif

// ---- EndpointRecord (src/shm/endpoint_record.h): four lines by writer ----
inline constexpr FieldOwnership kEndpointRecordOwnership[] = {
    // Line 0: configuration — application-written, quiescent.
    {"EndpointRecord.type", offsetof(EndpointRecord, type),
     sizeof(EndpointRecord::type), ownership_internal::kApp, true, true},
    {"EndpointRecord.cells_offset", offsetof(EndpointRecord, cells_offset),
     sizeof(EndpointRecord::cells_offset), ownership_internal::kApp, true, true},
    {"EndpointRecord.queue_capacity", offsetof(EndpointRecord, queue_capacity),
     sizeof(EndpointRecord::queue_capacity), ownership_internal::kApp, true, true},
    {"EndpointRecord.cells_reserved", offsetof(EndpointRecord, cells_reserved),
     sizeof(EndpointRecord::cells_reserved), ownership_internal::kApp, true, true},
    {"EndpointRecord.semaphore_id", offsetof(EndpointRecord, semaphore_id),
     sizeof(EndpointRecord::semaphore_id), ownership_internal::kApp, true, true},
    {"EndpointRecord.priority", offsetof(EndpointRecord, priority),
     sizeof(EndpointRecord::priority), ownership_internal::kApp, true, true},
    {"EndpointRecord.options", offsetof(EndpointRecord, options),
     sizeof(EndpointRecord::options), ownership_internal::kApp, true, true},
    {"EndpointRecord.allowed_peer", offsetof(EndpointRecord, allowed_peer),
     sizeof(EndpointRecord::allowed_peer), ownership_internal::kApp, true, true},
    {"EndpointRecord.min_send_interval_ns", offsetof(EndpointRecord, min_send_interval_ns),
     sizeof(EndpointRecord::min_send_interval_ns), ownership_internal::kApp, true, true},
    {"EndpointRecord.shard", offsetof(EndpointRecord, shard),
     sizeof(EndpointRecord::shard), ownership_internal::kApp, true, true},
    {"EndpointRecord.qos_class", offsetof(EndpointRecord, qos_class),
     sizeof(EndpointRecord::qos_class), ownership_internal::kApp, true, true},
    {"EndpointRecord.deadline_ns", offsetof(EndpointRecord, deadline_ns),
     sizeof(EndpointRecord::deadline_ns), ownership_internal::kApp, true, true},
    {"EndpointRecord.bucket_capacity", offsetof(EndpointRecord, bucket_capacity),
     sizeof(EndpointRecord::bucket_capacity), ownership_internal::kApp, true, true},
    {"EndpointRecord.bucket_refill_ns", offsetof(EndpointRecord, bucket_refill_ns),
     sizeof(EndpointRecord::bucket_refill_ns), ownership_internal::kApp, true, true},
    {"EndpointRecord.alloc_generation", offsetof(EndpointRecord, alloc_generation),
     sizeof(EndpointRecord::alloc_generation), ownership_internal::kApp, true, true},
    // Line 1: application-written hot state.
    {"EndpointRecord.release_count", offsetof(EndpointRecord, release_count),
     sizeof(EndpointRecord::release_count), ownership_internal::kApp, true, false},
    {"EndpointRecord.acquire_count", offsetof(EndpointRecord, acquire_count),
     sizeof(EndpointRecord::acquire_count), ownership_internal::kApp, true, false},
    {"EndpointRecord.drops_reclaimed", offsetof(EndpointRecord, drops_reclaimed),
     sizeof(EndpointRecord::drops_reclaimed), ownership_internal::kApp, true, false},
    // Line 2: engine-written hot state.
    {"EndpointRecord.process_count", offsetof(EndpointRecord, process_count),
     sizeof(EndpointRecord::process_count), ownership_internal::kEng, true, false},
    {"EndpointRecord.drops_total", offsetof(EndpointRecord, drops_total),
     sizeof(EndpointRecord::drops_total), ownership_internal::kEng, true, false},
    {"EndpointRecord.processed_total", offsetof(EndpointRecord, processed_total),
     sizeof(EndpointRecord::processed_total), ownership_internal::kEng, true, false},
    // Line 3: mutual exclusion among application threads; the engine never
    // touches it. Not a single-writer cell (it is an RMW lock by design).
    {"EndpointRecord.lock", offsetof(EndpointRecord, lock),
     sizeof(EndpointRecord::lock), ownership_internal::kApp, false, false},
};

// ---- TelemetryBlock (src/shm/telemetry_block.h): two lines by writer ----
// All cells are monotonic counters; the consistency contract (how they
// must agree with the queue cursors) lives in telemetry_block.h and is
// audited by flipc_inspect --metrics.
inline constexpr FieldOwnership kTelemetryBlockOwnership[] = {
    // Line 0: application-written counters.
    {"TelemetryBlock.api_sends", offsetof(TelemetryBlock, api_sends),
     sizeof(TelemetryBlock::api_sends), ownership_internal::kApp, true, false},
    {"TelemetryBlock.api_receives", offsetof(TelemetryBlock, api_receives),
     sizeof(TelemetryBlock::api_receives), ownership_internal::kApp, true, false},
    {"TelemetryBlock.api_posts", offsetof(TelemetryBlock, api_posts),
     sizeof(TelemetryBlock::api_posts), ownership_internal::kApp, true, false},
    {"TelemetryBlock.api_reclaims", offsetof(TelemetryBlock, api_reclaims),
     sizeof(TelemetryBlock::api_reclaims), ownership_internal::kApp, true, false},
    {"TelemetryBlock.releases_rejected", offsetof(TelemetryBlock, releases_rejected),
     sizeof(TelemetryBlock::releases_rejected), ownership_internal::kApp, true, false},
    {"TelemetryBlock.doorbell_rings", offsetof(TelemetryBlock, doorbell_rings),
     sizeof(TelemetryBlock::doorbell_rings), ownership_internal::kApp, true, false},
    {"TelemetryBlock.doorbell_full", offsetof(TelemetryBlock, doorbell_full),
     sizeof(TelemetryBlock::doorbell_full), ownership_internal::kApp, true, false},
    // Line 1: engine-written counters.
    {"TelemetryBlock.engine_transmits", offsetof(TelemetryBlock, engine_transmits),
     sizeof(TelemetryBlock::engine_transmits), ownership_internal::kEng, true, false},
    {"TelemetryBlock.engine_deliveries", offsetof(TelemetryBlock, engine_deliveries),
     sizeof(TelemetryBlock::engine_deliveries), ownership_internal::kEng, true, false},
    {"TelemetryBlock.engine_rejects", offsetof(TelemetryBlock, engine_rejects),
     sizeof(TelemetryBlock::engine_rejects), ownership_internal::kEng, true, false},
    {"TelemetryBlock.queue_depth_high_water",
     offsetof(TelemetryBlock, queue_depth_high_water),
     sizeof(TelemetryBlock::queue_depth_high_water), ownership_internal::kEng, true, false},
    {"TelemetryBlock.deadline_misses", offsetof(TelemetryBlock, deadline_misses),
     sizeof(TelemetryBlock::deadline_misses), ownership_internal::kEng, true, false},
    {"TelemetryBlock.max_service_gap_ns", offsetof(TelemetryBlock, max_service_gap_ns),
     sizeof(TelemetryBlock::max_service_gap_ns), ownership_internal::kEng, true, false},
    {"TelemetryBlock.throttle_deferrals", offsetof(TelemetryBlock, throttle_deferrals),
     sizeof(TelemetryBlock::throttle_deferrals), ownership_internal::kEng, true, false},
};

// ---- QueueCursors (src/waitfree/buffer_queue.h) ----
inline constexpr FieldOwnership kQueueCursorsOwnership[] = {
    {"QueueCursors.release_count", offsetof(waitfree::QueueCursors, release_count),
     sizeof(waitfree::QueueCursors::release_count), ownership_internal::kApp, true, false},
    {"QueueCursors.acquire_count", offsetof(waitfree::QueueCursors, acquire_count),
     sizeof(waitfree::QueueCursors::acquire_count), ownership_internal::kApp, true, false},
    {"QueueCursors.process_count", offsetof(waitfree::QueueCursors, process_count),
     sizeof(waitfree::QueueCursors::process_count), ownership_internal::kEng, true, false},
};

// ---- DoorbellCursors (src/waitfree/doorbell_ring.h) ----
// The send-doorbell ring's cursor block: one application line (producer
// position + overflow signal), one engine line (consumer position +
// overflow acknowledgement). ring_tail is the one application-side RMW
// word (slot claim among app threads, like the endpoint TasLock), so it is
// not a checked cell; the engine only reads it. The ring's CELLS are
// app-written SingleWriterCells declared per-region by CommBuffer, like
// the queue-cell arena.
inline constexpr FieldOwnership kDoorbellCursorsOwnership[] = {
    {"DoorbellCursors.ring_tail", offsetof(waitfree::DoorbellCursors, ring_tail),
     sizeof(waitfree::DoorbellCursors::ring_tail), ownership_internal::kApp, false, false},
    {"DoorbellCursors.overflow_rung", offsetof(waitfree::DoorbellCursors, overflow_rung),
     sizeof(waitfree::DoorbellCursors::overflow_rung), ownership_internal::kApp, true,
     false},
    {"DoorbellCursors.ring_head", offsetof(waitfree::DoorbellCursors, ring_head),
     sizeof(waitfree::DoorbellCursors::ring_head), ownership_internal::kEng, true, false},
    {"DoorbellCursors.overflow_seen", offsetof(waitfree::DoorbellCursors, overflow_seen),
     sizeof(waitfree::DoorbellCursors::overflow_seen), ownership_internal::kEng, true,
     false},
};

// ---- PaddedDropCounterParts (src/waitfree/drop_counter.h) ----
inline constexpr FieldOwnership kPaddedDropCounterOwnership[] = {
    {"PaddedDropCounterParts.dropped", offsetof(waitfree::PaddedDropCounterParts, dropped),
     sizeof(waitfree::PaddedDropCounterParts::dropped), ownership_internal::kEng, true,
     false},
    {"PaddedDropCounterParts.reclaimed",
     offsetof(waitfree::PaddedDropCounterParts, reclaimed),
     sizeof(waitfree::PaddedDropCounterParts::reclaimed), ownership_internal::kApp, true,
     false},
};

// ---- HandoffCursors (src/waitfree/handoff_ring.h) ----
// The engine-to-engine SPSC handoff ring's cursor block. Both cursors are
// engine-side — the single-writer split here is BETWEEN SHARDS, not across
// the app/engine boundary: the producer shard writes handoff_tail (and the
// slot tags), the consumer shard writes handoff_head, each on its own cache
// line. The per-shard confinement is enforced at run time by the checker's
// shard-qualified declarations (HandoffCursors::DeclareOwners); the lint
// below still proves the two lines never mix writers' words.
inline constexpr FieldOwnership kHandoffCursorsOwnership[] = {
    {"HandoffCursors.handoff_tail", offsetof(waitfree::HandoffCursors, handoff_tail),
     sizeof(waitfree::HandoffCursors::handoff_tail), ownership_internal::kEng, true, false},
    {"HandoffCursors.handoff_head", offsetof(waitfree::HandoffCursors, handoff_head),
     sizeof(waitfree::HandoffCursors::handoff_head), ownership_internal::kEng, true, false},
};

// ---- CommBufferHeader (src/shm/comm_buffer.h) ----
// Entirely application-written: identity once at format time, allocation
// state under alloc_lock. Listed so the audit covers every shared struct;
// the engine only reads it.
inline constexpr FieldOwnership kCommBufferHeaderOwnership[] = {
    {"CommBufferHeader.magic", offsetof(CommBufferHeader, magic),
     sizeof(CommBufferHeader::magic), ownership_internal::kApp, false, true},
    {"CommBufferHeader.version", offsetof(CommBufferHeader, version),
     sizeof(CommBufferHeader::version), ownership_internal::kApp, false, true},
    {"CommBufferHeader.message_size", offsetof(CommBufferHeader, message_size),
     sizeof(CommBufferHeader::message_size), ownership_internal::kApp, false, true},
    {"CommBufferHeader.buffer_count", offsetof(CommBufferHeader, buffer_count),
     sizeof(CommBufferHeader::buffer_count), ownership_internal::kApp, false, true},
    {"CommBufferHeader.max_endpoints", offsetof(CommBufferHeader, max_endpoints),
     sizeof(CommBufferHeader::max_endpoints), ownership_internal::kApp, false, true},
    {"CommBufferHeader.cell_arena_size", offsetof(CommBufferHeader, cell_arena_size),
     sizeof(CommBufferHeader::cell_arena_size), ownership_internal::kApp, false, true},
    {"CommBufferHeader.doorbell_capacity", offsetof(CommBufferHeader, doorbell_capacity),
     sizeof(CommBufferHeader::doorbell_capacity), ownership_internal::kApp, false, true},
    {"CommBufferHeader.shard_count", offsetof(CommBufferHeader, shard_count),
     sizeof(CommBufferHeader::shard_count), ownership_internal::kApp, false, true},
    {"CommBufferHeader.endpoints_per_shard",
     offsetof(CommBufferHeader, endpoints_per_shard),
     sizeof(CommBufferHeader::endpoints_per_shard), ownership_internal::kApp, false, true},
    {"CommBufferHeader.endpoint_table_offset",
     offsetof(CommBufferHeader, endpoint_table_offset),
     sizeof(CommBufferHeader::endpoint_table_offset), ownership_internal::kApp, false, true},
    {"CommBufferHeader.telemetry_offset", offsetof(CommBufferHeader, telemetry_offset),
     sizeof(CommBufferHeader::telemetry_offset), ownership_internal::kApp, false, true},
    {"CommBufferHeader.cell_arena_offset", offsetof(CommBufferHeader, cell_arena_offset),
     sizeof(CommBufferHeader::cell_arena_offset), ownership_internal::kApp, false, true},
    {"CommBufferHeader.freelist_offset", offsetof(CommBufferHeader, freelist_offset),
     sizeof(CommBufferHeader::freelist_offset), ownership_internal::kApp, false, true},
    {"CommBufferHeader.doorbell_offset", offsetof(CommBufferHeader, doorbell_offset),
     sizeof(CommBufferHeader::doorbell_offset), ownership_internal::kApp, false, true},
    {"CommBufferHeader.buffers_offset", offsetof(CommBufferHeader, buffers_offset),
     sizeof(CommBufferHeader::buffers_offset), ownership_internal::kApp, false, true},
    {"CommBufferHeader.total_size", offsetof(CommBufferHeader, total_size),
     sizeof(CommBufferHeader::total_size), ownership_internal::kApp, false, true},
    {"CommBufferHeader.alloc_lock", offsetof(CommBufferHeader, alloc_lock),
     sizeof(CommBufferHeader::alloc_lock), ownership_internal::kApp, false, false},
    {"CommBufferHeader.free_head", offsetof(CommBufferHeader, free_head),
     sizeof(CommBufferHeader::free_head), ownership_internal::kApp, false, false},
    {"CommBufferHeader.free_count", offsetof(CommBufferHeader, free_count),
     sizeof(CommBufferHeader::free_count), ownership_internal::kApp, false, false},
    {"CommBufferHeader.cells_used", offsetof(CommBufferHeader, cells_used),
     sizeof(CommBufferHeader::cells_used), ownership_internal::kApp, false, false},
    {"CommBufferHeader.endpoints_active", offsetof(CommBufferHeader, endpoints_active),
     sizeof(CommBufferHeader::endpoints_active), ownership_internal::kApp, false, false},
};

#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

// ---- Memory-order policy (tools/flipc_static_audit) ------------------------
//
// Each shared field carries an ordering discipline derived from its protocol
// role. The static auditor enforces these per access site; the table is
// exported (with the ownership tables) to tools/ownership_policy.json so the
// C++ layout and the Python auditor cannot drift.
enum class FieldOrderKind {
  // Published position counter: writes must be Publish (release store) so
  // the data they expose is ordered; cross-role reads must be Read
  // (acquire); the owner may read its own cursor relaxed.
  kCursor,
  // A cursor consumed as a scheduling HINT: staleness is tolerated by
  // design, so cross-role relaxed reads are additionally legal (ring_head:
  // the producer's full-check may run on a stale head; the overflow signal
  // and backstop sweep cover the error).
  kHintCursor,
  // Level-triggered signal word: same profile as kCursor (Publish writes,
  // acquire cross-reads).
  kFlag,
  // Monotonic counter: writes must be Publish; reads may use any order on
  // either side (readers tolerate staleness; the release store still orders
  // the count against the work it describes).
  kCounter,
  // Configuration written only while the endpoint slot is quiescent; writes
  // may be StoreRelaxed (the type publication below orders them); reads any.
  kConfig,
  // The endpoint-type word: written LAST at (de)allocation with Publish so
  // it release-orders every other config write; reads as kConfig.
  kConfigPublish,
  // Owner-written data cells whose publication rides the owning cursor:
  // writes may be StoreRelaxed or Publish; reads any (the cursor's
  // acquire/release pairing provides the ordering).
  kDataCell,
  // Mutual-exclusion / RMW words (TasLock, ring_tail): outside the
  // single-writer cell discipline; every access must still name an explicit
  // memory_order.
  kRmw,
  // Plain non-atomic words written only under the allocation lock (or at
  // format time); no atomic accesses expected at all.
  kPlain,
};

// Field name -> ordering kind. Kept separate from FieldOwnership so the
// layout rows stay positional; the JSON exporter joins the two tables and
// fails if any field is missing a kind (single source of truth, enforced).
struct FieldOrderPolicy {
  const char* name;
  FieldOrderKind kind;
};

inline constexpr FieldOrderPolicy kFieldOrderKinds[] = {
    // EndpointRecord
    {"EndpointRecord.type", FieldOrderKind::kConfigPublish},
    {"EndpointRecord.cells_offset", FieldOrderKind::kConfig},
    {"EndpointRecord.queue_capacity", FieldOrderKind::kConfig},
    {"EndpointRecord.cells_reserved", FieldOrderKind::kConfig},
    {"EndpointRecord.semaphore_id", FieldOrderKind::kConfig},
    {"EndpointRecord.priority", FieldOrderKind::kConfig},
    {"EndpointRecord.options", FieldOrderKind::kConfig},
    {"EndpointRecord.allowed_peer", FieldOrderKind::kConfig},
    {"EndpointRecord.min_send_interval_ns", FieldOrderKind::kConfig},
    {"EndpointRecord.shard", FieldOrderKind::kConfig},
    {"EndpointRecord.qos_class", FieldOrderKind::kConfig},
    {"EndpointRecord.deadline_ns", FieldOrderKind::kConfig},
    {"EndpointRecord.bucket_capacity", FieldOrderKind::kConfig},
    {"EndpointRecord.bucket_refill_ns", FieldOrderKind::kConfig},
    {"EndpointRecord.alloc_generation", FieldOrderKind::kConfig},
    {"EndpointRecord.release_count", FieldOrderKind::kCursor},
    {"EndpointRecord.acquire_count", FieldOrderKind::kCursor},
    {"EndpointRecord.drops_reclaimed", FieldOrderKind::kCounter},
    {"EndpointRecord.process_count", FieldOrderKind::kCursor},
    {"EndpointRecord.drops_total", FieldOrderKind::kCounter},
    {"EndpointRecord.processed_total", FieldOrderKind::kCounter},
    {"EndpointRecord.lock", FieldOrderKind::kRmw},
    // TelemetryBlock
    {"TelemetryBlock.api_sends", FieldOrderKind::kCounter},
    {"TelemetryBlock.api_receives", FieldOrderKind::kCounter},
    {"TelemetryBlock.api_posts", FieldOrderKind::kCounter},
    {"TelemetryBlock.api_reclaims", FieldOrderKind::kCounter},
    {"TelemetryBlock.releases_rejected", FieldOrderKind::kCounter},
    {"TelemetryBlock.doorbell_rings", FieldOrderKind::kCounter},
    {"TelemetryBlock.doorbell_full", FieldOrderKind::kCounter},
    {"TelemetryBlock.engine_transmits", FieldOrderKind::kCounter},
    {"TelemetryBlock.engine_deliveries", FieldOrderKind::kCounter},
    {"TelemetryBlock.engine_rejects", FieldOrderKind::kCounter},
    {"TelemetryBlock.queue_depth_high_water", FieldOrderKind::kCounter},
    {"TelemetryBlock.deadline_misses", FieldOrderKind::kCounter},
    {"TelemetryBlock.max_service_gap_ns", FieldOrderKind::kCounter},
    {"TelemetryBlock.throttle_deferrals", FieldOrderKind::kCounter},
    // QueueCursors
    {"QueueCursors.release_count", FieldOrderKind::kCursor},
    {"QueueCursors.acquire_count", FieldOrderKind::kCursor},
    {"QueueCursors.process_count", FieldOrderKind::kCursor},
    // DoorbellCursors
    {"DoorbellCursors.ring_tail", FieldOrderKind::kRmw},
    {"DoorbellCursors.overflow_rung", FieldOrderKind::kFlag},
    {"DoorbellCursors.ring_head", FieldOrderKind::kHintCursor},
    {"DoorbellCursors.overflow_seen", FieldOrderKind::kFlag},
    // HandoffCursors
    {"HandoffCursors.handoff_tail", FieldOrderKind::kCursor},
    {"HandoffCursors.handoff_head", FieldOrderKind::kCursor},
    // PaddedDropCounterParts
    {"PaddedDropCounterParts.dropped", FieldOrderKind::kCounter},
    {"PaddedDropCounterParts.reclaimed", FieldOrderKind::kCounter},
    // CommBufferHeader (identity + allocation state)
    {"CommBufferHeader.magic", FieldOrderKind::kPlain},
    {"CommBufferHeader.version", FieldOrderKind::kPlain},
    {"CommBufferHeader.message_size", FieldOrderKind::kPlain},
    {"CommBufferHeader.buffer_count", FieldOrderKind::kPlain},
    {"CommBufferHeader.max_endpoints", FieldOrderKind::kPlain},
    {"CommBufferHeader.cell_arena_size", FieldOrderKind::kPlain},
    {"CommBufferHeader.doorbell_capacity", FieldOrderKind::kPlain},
    {"CommBufferHeader.shard_count", FieldOrderKind::kPlain},
    {"CommBufferHeader.endpoints_per_shard", FieldOrderKind::kPlain},
    {"CommBufferHeader.endpoint_table_offset", FieldOrderKind::kPlain},
    {"CommBufferHeader.telemetry_offset", FieldOrderKind::kPlain},
    {"CommBufferHeader.cell_arena_offset", FieldOrderKind::kPlain},
    {"CommBufferHeader.freelist_offset", FieldOrderKind::kPlain},
    {"CommBufferHeader.doorbell_offset", FieldOrderKind::kPlain},
    {"CommBufferHeader.buffers_offset", FieldOrderKind::kPlain},
    {"CommBufferHeader.total_size", FieldOrderKind::kPlain},
    {"CommBufferHeader.alloc_lock", FieldOrderKind::kRmw},
    {"CommBufferHeader.free_head", FieldOrderKind::kPlain},
    {"CommBufferHeader.free_count", FieldOrderKind::kPlain},
    {"CommBufferHeader.cells_used", FieldOrderKind::kPlain},
    {"CommBufferHeader.endpoints_active", FieldOrderKind::kPlain},
    // Arena cell arrays (below)
    {"BufferQueue.cells", FieldOrderKind::kDataCell},
    {"DoorbellRing.cells", FieldOrderKind::kCursor},
    {"HandoffRing.slot_tags", FieldOrderKind::kCursor},
};

// Cell ARENAS have no fixed offset (they are sized per region by the
// layout), so they cannot appear in the offset tables above — but they are
// shared single-writer state all the same: queue cells and doorbell cells
// are written only by the application. Doorbell cells are kCursor (the
// consumer's acquire Read of the lap tag pairs with the producer's
// Publish); queue cells are kDataCell (publication rides release_count).
struct ArenaOwnership {
  const char* name;
  waitfree::Writer writer;
};

inline constexpr ArenaOwnership kArenaCellOwnership[] = {
    {"BufferQueue.cells", ownership_internal::kApp},
    {"DoorbellRing.cells", ownership_internal::kApp},
    // Handoff-ring slot tags: engine-side, written only by the PRODUCER
    // shard (lap-tag publication, kCursor: the consumer's acquire Read pairs
    // with the producer's Publish). Shard-confined at run time.
    {"HandoffRing.slot_tags", ownership_internal::kEng},
};

// Handoff words: shared cells whose OWNERSHIP ALTERNATES with the buffer's
// queue position (paper Figure 3's per-buffer state field and the peer
// address beside it). They cannot carry a static writer; the transition
// direction is checked at runtime instead (boundary_check.h,
// CheckHandoffStore). The static auditor exempts accesses to these members
// from the single-writer role rule — every other unresolved cell write is
// an error, so new shared cells must be declared here or in the tables.
inline constexpr const char* kHandoffMembers[] = {
    "peer",  // MsgHeader.peer: app writes dst before send, engine writes src
             // on delivery
};

// Member aliases: code writes table fields through view/member pointers
// whose names differ from the canonical field name. The static auditor
// resolves an access `<class>::<member>` to the canonical field before
// applying the ownership and ordering rules. `klass` is the class whose
// member functions perform the access ("*" = any scope).
struct AuditAlias {
  const char* klass;
  const char* member;
  const char* field;
};

inline constexpr AuditAlias kAuditAliases[] = {
    // CommBuffer writes the plain header words through its header_ pointer;
    // a struct-level alias (field name without a member part) maps
    // `header_->X` to `CommBufferHeader.X`.
    {"CommBuffer", "header_", "CommBufferHeader"},
    // BufferQueueView holds raw cell pointers (the endpoint record
    // interleaves the cursors with other same-writer fields).
    {"BufferQueueView", "release_", "QueueCursors.release_count"},
    {"BufferQueueView", "acquire_", "QueueCursors.acquire_count"},
    {"BufferQueueView", "process_", "QueueCursors.process_count"},
    {"BufferQueueView", "cells_", "BufferQueue.cells"},
    // DoorbellRingView reaches its cursors through the cursor block.
    {"DoorbellRingView", "cells_", "DoorbellRing.cells"},
    // DropCounter's private members carry the trailing underscore; the
    // padded in-region variant's fields match the table names directly.
    {"DropCounter", "dropped_", "PaddedDropCounterParts.dropped"},
    {"DropCounter", "reclaimed_", "PaddedDropCounterParts.reclaimed"},
    // The handoff ring's slot-tag vector.
    {"SpscHandoffRing", "tags_", "HandoffRing.slot_tags"},
};

// ---- Lint predicates -------------------------------------------------------

// True when no cache line holds fields with two distinct declared writers.
template <std::size_t N>
constexpr bool CacheLinesHaveSingleWriter(const FieldOwnership (&fields)[N]) {
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = i + 1; j < N; ++j) {
      if (fields[i].writer == fields[j].writer) {
        continue;
      }
      const std::size_t i_first = fields[i].offset / kCacheLineSize;
      const std::size_t i_last = (fields[i].offset + fields[i].size - 1) / kCacheLineSize;
      const std::size_t j_first = fields[j].offset / kCacheLineSize;
      const std::size_t j_last = (fields[j].offset + fields[j].size - 1) / kCacheLineSize;
      if (i_first <= j_last && j_first <= i_last) {
        return false;  // Lines overlap with different writers: false sharing.
      }
    }
  }
  return true;
}

// True when every field is naturally aligned and no field straddles a cache
// line boundary (a straddling cross-boundary word would put bytes of one
// writer's field on the other writer's line, and a misaligned atomic is not
// guaranteed lock-free).
template <std::size_t N>
constexpr bool FieldsAlignedWithinLines(const FieldOwnership (&fields)[N]) {
  for (std::size_t i = 0; i < N; ++i) {
    const std::size_t size = fields[i].size;
    const std::size_t natural = size >= kCacheLineSize ? kCacheLineSize : size;
    if (natural != 0 && fields[i].offset % natural != 0) {
      return false;
    }
    if (fields[i].offset / kCacheLineSize !=
        (fields[i].offset + size - 1) / kCacheLineSize) {
      return false;
    }
  }
  return true;
}

// The build-breaking audit. If one of these fires, a comm-buffer cache line
// mixes application- and engine-written words (or a field came unaligned):
// restore the layout grouping before doing anything else — this is the
// paper's 2x false-sharing fix.
static_assert(CacheLinesHaveSingleWriter(kEndpointRecordOwnership),
              "EndpointRecord: a cache line mixes application- and engine-written words");
static_assert(FieldsAlignedWithinLines(kEndpointRecordOwnership),
              "EndpointRecord: a shared field is misaligned or straddles a cache line");
static_assert(CacheLinesHaveSingleWriter(kTelemetryBlockOwnership),
              "TelemetryBlock: a cache line mixes application- and engine-written words");
static_assert(FieldsAlignedWithinLines(kTelemetryBlockOwnership),
              "TelemetryBlock: a shared field is misaligned or straddles a cache line");
static_assert(CacheLinesHaveSingleWriter(kQueueCursorsOwnership),
              "QueueCursors: a cache line mixes application- and engine-written words");
static_assert(FieldsAlignedWithinLines(kQueueCursorsOwnership),
              "QueueCursors: a shared field is misaligned or straddles a cache line");
static_assert(CacheLinesHaveSingleWriter(kDoorbellCursorsOwnership),
              "DoorbellCursors: a cache line mixes application- and engine-written words");
static_assert(FieldsAlignedWithinLines(kDoorbellCursorsOwnership),
              "DoorbellCursors: a shared field is misaligned or straddles a cache line");
static_assert(CacheLinesHaveSingleWriter(kPaddedDropCounterOwnership),
              "PaddedDropCounterParts: a cache line mixes application- and engine-written "
              "words");
static_assert(FieldsAlignedWithinLines(kPaddedDropCounterOwnership),
              "PaddedDropCounterParts: a shared field is misaligned or straddles a line");
static_assert(CacheLinesHaveSingleWriter(kCommBufferHeaderOwnership),
              "CommBufferHeader: a cache line mixes words with distinct writers");
static_assert(FieldsAlignedWithinLines(kCommBufferHeaderOwnership),
              "CommBufferHeader: a shared field is misaligned or straddles a cache line");
static_assert(CacheLinesHaveSingleWriter(kHandoffCursorsOwnership),
              "HandoffCursors: a cache line mixes producer- and consumer-shard words");
static_assert(FieldsAlignedWithinLines(kHandoffCursorsOwnership),
              "HandoffCursors: a shared field is misaligned or straddles a cache line");

// Registers every checked cell of a table with the ownership race detector,
// at `base` + field offset. No-op unless FLIPC_CHECK_SINGLE_WRITER.
template <std::size_t N>
inline void DeclareOwnersFromTable(void* base, const FieldOwnership (&fields)[N]) {
  if constexpr (waitfree::kBoundaryCheckEnabled) {
    for (std::size_t i = 0; i < N; ++i) {
      if (fields[i].checked_cell) {
        waitfree::DeclareCellOwner(static_cast<std::byte*>(base) + fields[i].offset,
                                   fields[i].writer, fields[i].name);
      }
    }
  } else {
    (void)base;
  }
}

// Shard-qualified variant for structures owned by one shard planner: the
// table's ENGINE-written cells are declared with `engine_shard` so a write
// from a planner bound to a different shard aborts; application-written
// cells stay unqualified (every app thread may write them regardless of
// which shard serves the endpoint).
template <std::size_t N>
inline void DeclareOwnersFromTable(void* base, const FieldOwnership (&fields)[N],
                                   std::uint32_t engine_shard) {
  if constexpr (waitfree::kBoundaryCheckEnabled) {
    for (std::size_t i = 0; i < N; ++i) {
      if (!fields[i].checked_cell) {
        continue;
      }
      auto* cell = static_cast<std::byte*>(base) + fields[i].offset;
      if (fields[i].writer == waitfree::Writer::kEngine) {
        waitfree::DeclareCellOwner(cell, fields[i].writer, engine_shard, fields[i].name);
      } else {
        waitfree::DeclareCellOwner(cell, fields[i].writer, fields[i].name);
      }
    }
  } else {
    (void)base;
    (void)engine_shard;
  }
}

}  // namespace flipc::shm

#endif  // SRC_SHM_OWNERSHIP_LAYOUT_H_
