// The communication buffer (paper Figure 1, center).
//
// "The communication buffer is the focal point of FLIPC. It is located in
// shared memory accessible to both the application(s) and the messaging
// engine, and it contains all of the memory resources used for messaging."
//
// The buffer is a single fixed-size contiguous region whose internal
// references are all offsets/indices (never raw pointers), so the same bytes
// can be mapped by an application process and by the messaging engine (here:
// another thread, a DES actor, or a process sharing a POSIX shm segment).
// Nothing in it is ever paged, grown, or relocated after creation — the
// paper fixes its size and the message size "at boot time".
//
// Region layout (all offsets cache-line aligned):
//
//   [CommBufferHeader]   identity + application-side allocation state
//   [EndpointRecord x max_endpoints]
//   [TelemetryBlock x max_endpoints]   per-endpoint counters (app/engine lines)
//   [cell arena]         queue cells, carved out per endpoint at allocation
//   [buffer free list]   application-side singly linked free list
//   [doorbell rings]     per shard: cursors + MPSC ring of endpoint indices
//                        rung on send (shard_count rings; one when unsharded)
//   [message buffers]    buffer_count x message_size bytes
//
// Allocation (buffers, endpoints, arena cells) is an application-side
// activity guarded by a test-and-set lock in the header; the engine never
// allocates, so allocation needs no wait-free treatment.
#ifndef SRC_SHM_COMM_BUFFER_H_
#define SRC_SHM_COMM_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/base/hotpath.h"
#include "src/base/locks.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/shm/endpoint_record.h"
#include "src/shm/msg_header.h"
#include "src/shm/telemetry_block.h"
#include "src/waitfree/buffer_queue.h"
#include "src/waitfree/doorbell_ring.h"

namespace flipc::shm {

using waitfree::BufferIndex;
using waitfree::kInvalidBuffer;

inline constexpr std::uint32_t kInvalidEndpoint = 0xffffffffu;

// Paper constraints for the Paragon: messages at least 64 bytes and a
// multiple of 32 (DMA requirement); 8 bytes reserved for the internal
// header.
inline constexpr std::uint32_t kMinMessageSize = 64;
inline constexpr std::uint32_t kMessageSizeMultiple = 32;

struct CommBufferConfig {
  // Fixed message size in bytes, including the 8-byte internal header.
  std::uint32_t message_size = 128;
  // Number of message buffers in the region.
  std::uint32_t buffer_count = 1024;
  // Endpoint table size.
  std::uint32_t max_endpoints = 64;
  // Total queue cells available to endpoints; 0 means 4 * buffer_count.
  std::uint32_t cell_arena_size = 0;
  // Doorbell ring slots per shard (power of two); 0 derives a capacity that
  // covers every in-flight send release (bounded by buffer_count), clamped
  // to [64, 4096].
  std::uint32_t doorbell_capacity = 0;
  // Engine shard count (DESIGN.md §12). Endpoints are assigned to shards in
  // equal contiguous index ranges of max_endpoints / shard_count (the count
  // must divide max_endpoints evenly); each shard gets its own doorbell
  // ring section. 1 (the default) is the unsharded engine — byte-compatible
  // behavior with a single planner.
  std::uint32_t shard_count = 1;

  std::uint32_t effective_cell_arena_size() const {
    return cell_arena_size == 0 ? 4 * buffer_count : cell_arena_size;
  }

  std::uint32_t effective_doorbell_capacity() const {
    if (doorbell_capacity != 0) {
      return doorbell_capacity;
    }
    const std::uint32_t target =
        buffer_count < 64 ? 64 : (buffer_count > 4096 ? 4096 : buffer_count);
    std::uint32_t capacity = 64;
    while (capacity < target) {
      capacity <<= 1;
    }
    return capacity;
  }

  Status Validate() const;
};

struct CommBufferLayout {
  std::size_t endpoint_table_offset = 0;
  std::size_t telemetry_offset = 0;
  std::size_t cell_arena_offset = 0;
  std::size_t freelist_offset = 0;
  std::size_t doorbell_offset = 0;
  std::size_t buffers_offset = 0;
  std::size_t total_size = 0;

  static Result<CommBufferLayout> For(const CommBufferConfig& config);
};

// In-region header. Identity fields are written once at creation; the
// allocation block is application-side state guarded by alloc_lock.
struct alignas(kCacheLineSize) CommBufferHeader {
  // ---- Identity (immutable after creation) ----
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t message_size;
  std::uint32_t buffer_count;
  std::uint32_t max_endpoints;
  std::uint32_t cell_arena_size;
  std::uint32_t doorbell_capacity;
  std::uint32_t shard_count;
  std::uint32_t endpoints_per_shard;
  std::uint64_t endpoint_table_offset;
  std::uint64_t telemetry_offset;
  std::uint64_t cell_arena_offset;
  std::uint64_t freelist_offset;
  std::uint64_t doorbell_offset;
  std::uint64_t buffers_offset;
  std::uint64_t total_size;

  // ---- Application-side allocation state ----
  alignas(kCacheLineSize) TasLock alloc_lock;
  std::uint32_t free_head;        // guarded by alloc_lock; kInvalidBuffer if empty
  std::uint32_t free_count;       // guarded by alloc_lock
  std::uint32_t cells_used;       // guarded by alloc_lock (bump allocator)
  std::uint32_t endpoints_active; // guarded by alloc_lock
};

inline constexpr std::uint64_t kCommBufferMagic = 0x464c495043313936ull;  // "FLIPC196"
// Version 2 added the doorbell ring section (doorbell_capacity,
// doorbell_offset, and the cursors + cells between the free list and the
// message buffers). Version 3 added the per-endpoint telemetry table
// (telemetry_offset and one TelemetryBlock per endpoint slot between the
// endpoint table and the cell arena). Version 4 added engine sharding:
// shard_count/endpoints_per_shard in the header, one doorbell ring section
// per shard, and the shard cell on each endpoint record's config line.
// Version 5 added the QoS planner cells on the endpoint config line
// (qos_class, deadline_ns, bucket_capacity, bucket_refill_ns,
// alloc_generation) and three engine-side QoS counters on the telemetry
// block (deadline_misses, max_service_gap_ns, throttle_deferrals).
inline constexpr std::uint32_t kCommBufferVersion = 5;

class CommBuffer {
 public:
  // Allocates a fresh region and formats it.
  static Result<std::unique_ptr<CommBuffer>> Create(const CommBufferConfig& config);

  // Formats caller-owned memory (e.g. a POSIX shm mapping). `base` must be
  // cache-line aligned and at least CommBufferLayout::For(config).total_size
  // bytes. The returned CommBuffer does not own the memory.
  FLIPC_ROLE_QUIESCENT static Result<std::unique_ptr<CommBuffer>> Format(void* base, std::size_t size,
                                                    const CommBufferConfig& config);

  // Attaches to memory already formatted by Format()/Create() (validates the
  // magic, version and layout). Does not own the memory.
  static Result<std::unique_ptr<CommBuffer>> Attach(void* base, std::size_t size);

  ~CommBuffer();
  CommBuffer(const CommBuffer&) = delete;
  CommBuffer& operator=(const CommBuffer&) = delete;

  const CommBufferHeader& header() const { return *header_; }
  std::byte* base() { return base_; }
  std::size_t total_size() const { return header_->total_size; }
  std::uint32_t message_size() const { return header_->message_size; }
  std::uint32_t payload_size() const {
    return header_->message_size - static_cast<std::uint32_t>(kMsgHeaderSize);
  }
  std::uint32_t buffer_count() const { return header_->buffer_count; }
  std::uint32_t max_endpoints() const { return header_->max_endpoints; }

  // ---- Shard geometry (immutable after format) ----
  std::uint32_t shard_count() const { return header_->shard_count; }
  std::uint32_t endpoints_per_shard() const { return header_->endpoints_per_shard; }
  // Shard that owns endpoint slot `index` (contiguous block assignment).
  std::uint32_t shard_of(std::uint32_t index) const {
    return index / header_->endpoints_per_shard;
  }
  // Endpoint index range [first, end) owned by `shard`.
  std::uint32_t shard_first_endpoint(std::uint32_t shard) const {
    return shard * header_->endpoints_per_shard;
  }
  std::uint32_t shard_end_endpoint(std::uint32_t shard) const {
    const std::uint64_t end = static_cast<std::uint64_t>(shard + 1) *
                              header_->endpoints_per_shard;
    return end > header_->max_endpoints ? header_->max_endpoints
                                        : static_cast<std::uint32_t>(end);
  }

  // ---- Message buffers (application side) ----
  FLIPC_ROLE_APP Result<BufferIndex> AllocateBuffer();
  FLIPC_ROLE_APP Status FreeBuffer(BufferIndex index);
  std::uint32_t FreeBufferCount();

  // View of a buffer; callers must pass a valid index.
  MsgView msg(BufferIndex index);

  bool IsValidBufferIndex(BufferIndex index) const {
    return index < header_->buffer_count;
  }

  // ---- Endpoints (application side) ----
  static constexpr std::uint32_t kAnyShard = 0xffffffffu;

  struct EndpointParams {
    EndpointType type = EndpointType::kReceive;
    std::uint32_t queue_capacity = 16;  // power of two
    std::uint32_t options = kEndpointOptNone;
    std::uint32_t semaphore_id = kNoSemaphore;
    std::uint32_t priority = kDefaultEndpointPriority;
    // Packed Address of the only permitted destination (send endpoints);
    // 0xffffffff = unrestricted.
    std::uint32_t allowed_peer = 0xffffffffu;
    // Minimum ns between transmissions (send endpoints); 0 = unlimited.
    std::uint32_t min_send_interval_ns = 0;
    // Restrict allocation to the slot range of one shard (DESIGN.md §12);
    // kAnyShard picks the first free slot regardless of shard.
    std::uint32_t shard = kAnyShard;
    // QoS planner (DESIGN.md §15): weighted service class [0, 3].
    std::uint32_t qos_class = 0;
    // Relative per-message deadline in ns; 0 = not real-time.
    std::uint32_t deadline_ns = 0;
    // Token-bucket burst capacity in messages; 0 = bucket disabled.
    std::uint32_t bucket_capacity = 0;
    // Ns to refill one token; meaningful only with bucket_capacity > 0.
    std::uint32_t bucket_refill_ns = 0;
  };

  FLIPC_ROLE_QUIESCENT Result<std::uint32_t> AllocateEndpoint(const EndpointParams& params);

  // The endpoint's queue must be empty (all buffers acquired back).
  FLIPC_ROLE_QUIESCENT Status FreeEndpoint(std::uint32_t index);

  EndpointRecord& endpoint(std::uint32_t index);
  const EndpointRecord& endpoint(std::uint32_t index) const;

  bool IsValidEndpointIndex(std::uint32_t index) const {
    return index < header_->max_endpoints;
  }

  // Queue view bound to an endpoint's cursors and cells.
  waitfree::BufferQueueView queue(std::uint32_t endpoint_index);

  // View of a shard's send doorbell ring (application rings, the owning
  // shard planner drains). The no-argument form is shard 0 — the only ring
  // when unsharded.
  waitfree::DoorbellRingView doorbell_ring() { return doorbell_ring(0); }
  waitfree::DoorbellRingView doorbell_ring(std::uint32_t shard);
  std::uint32_t doorbell_capacity() const { return header_->doorbell_capacity; }

  // Per-endpoint telemetry. Reads need no role; writes go through the
  // Record* helpers under the matching boundary role.
  TelemetryBlock& telemetry(std::uint32_t index);
  const TelemetryBlock& telemetry(std::uint32_t index) const;

 private:
  CommBuffer(std::byte* base, bool owns);

  FLIPC_ROLE_QUIESCENT void FormatRegion(const CommBufferConfig& config, const CommBufferLayout& layout);

  // Registers every single-writer cell in the region (endpoint records and
  // the queue-cell arena) with the ownership race detector, per the tables
  // in src/shm/ownership_layout.h. Called at format and attach time; no-op
  // unless FLIPC_CHECK_SINGLE_WRITER.
  void DeclareBoundaryOwners();

  EndpointRecord* endpoint_table();
  TelemetryBlock* telemetry_table();
  waitfree::SingleWriterCell<BufferIndex>* cell_arena();
  std::uint32_t* freelist();
  // Byte stride between consecutive shards' doorbell sections (cursors +
  // cells, cache-line aligned).
  std::size_t doorbell_section_stride() const;
  waitfree::DoorbellCursors* doorbell_cursors(std::uint32_t shard);
  waitfree::SingleWriterCell<std::uint64_t>* doorbell_cells(std::uint32_t shard);

  std::byte* base_ = nullptr;
  CommBufferHeader* header_ = nullptr;
  bool owns_ = false;
};

}  // namespace flipc::shm

#endif  // SRC_SHM_COMM_BUFFER_H_
