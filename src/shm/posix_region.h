// POSIX shared-memory backing for communication buffers.
//
// The paper's communication buffer lives in memory "shared between the
// messaging engine and all applications that use FLIPC" — across a real
// protection boundary. CommBuffer's in-region layout is already position
// independent (offsets only); this helper supplies an actual shm_open
// mapping so separate processes can Format()/Attach() the same region,
// which the multiprocess tests exercise with fork().
#ifndef SRC_SHM_POSIX_REGION_H_
#define SRC_SHM_POSIX_REGION_H_

#include <cstddef>
#include <memory>
#include <string>

#include "src/base/status.h"

namespace flipc::shm {

class PosixShmRegion {
 public:
  // Creates (O_CREAT|O_EXCL) and maps a region of at least `size` bytes.
  // The creator owns the name and unlinks it on destruction.
  static Result<std::unique_ptr<PosixShmRegion>> Create(const std::string& name,
                                                        std::size_t size);

  // Opens and maps an existing region.
  static Result<std::unique_ptr<PosixShmRegion>> Open(const std::string& name);

  ~PosixShmRegion();
  PosixShmRegion(const PosixShmRegion&) = delete;
  PosixShmRegion& operator=(const PosixShmRegion&) = delete;

  void* base() { return base_; }
  std::size_t size() const { return size_; }
  const std::string& name() const { return name_; }

 private:
  PosixShmRegion(std::string name, void* base, std::size_t size, bool owner)
      : name_(std::move(name)), base_(base), size_(size), owner_(owner) {}

  std::string name_;
  void* base_;
  std::size_t size_;
  bool owner_;
};

}  // namespace flipc::shm

#endif  // SRC_SHM_POSIX_REGION_H_
