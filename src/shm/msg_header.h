// Per-message internal header.
//
// Paper: "FLIPC uses 8 bytes of each message for internal addressing and
// synchronization purposes, so 56 bytes is the minimum application message
// size" (with the 64-byte minimum message). We keep the 8-byte budget:
// 4 bytes of handoff state + a 4-byte packed destination address.
#ifndef SRC_SHM_MSG_HEADER_H_
#define SRC_SHM_MSG_HEADER_H_

#include <cstddef>
#include <cstdint>

#include "src/shm/address.h"
#include "src/waitfree/msg_state.h"
#include "src/waitfree/single_writer.h"

namespace flipc::shm {

struct MsgHeader {
  // Handoff state: written by the application when releasing the buffer,
  // by the engine when processing completes — never concurrently (ownership
  // alternates with the buffer's queue position).
  waitfree::HandoffState state;

  // Destination address, written by the application before a send release.
  // On a receive endpoint the engine overwrites it with the *source*
  // endpoint address of the delivered message, which is how receivers learn
  // whom to reply to.
  waitfree::SingleWriterCell<std::uint32_t> peer;

  Address peer_address() const { return Address::FromPacked(peer.Read()); }
  void set_peer_address(Address a) { peer.Publish(a.packed()); }
};

inline constexpr std::size_t kMsgHeaderSize = 8;
static_assert(sizeof(MsgHeader) == kMsgHeaderSize,
              "the paper reserves exactly 8 bytes per message for FLIPC");

// A message buffer as seen by either side: the internal header followed by
// the application payload.
struct MsgView {
  MsgHeader* header = nullptr;
  std::byte* payload = nullptr;
  std::uint32_t payload_size = 0;

  bool valid() const { return header != nullptr; }
};

}  // namespace flipc::shm

#endif  // SRC_SHM_MSG_HEADER_H_
