// FLIPC endpoint addressing.
//
// Paper: "FLIPC message destinations (receive endpoint addresses) are opaque
// and determined by the system. This requires receivers to obtain endpoint
// addresses of endpoints they have allocated from FLIPC and pass those
// addresses to senders." FLIPC has no name service; applications move these
// addresses around themselves (our examples pass them through bootstrap
// messages or program arguments).
//
// An address packs (node, endpoint index) into 32 bits so it fits in the
// 8-byte per-message internal header alongside the state word.
#ifndef SRC_SHM_ADDRESS_H_
#define SRC_SHM_ADDRESS_H_

#include <cstdint>

#include "src/base/types.h"

namespace flipc {

class Address {
 public:
  constexpr Address() = default;
  constexpr Address(std::uint16_t node, std::uint16_t endpoint)
      : packed_((static_cast<std::uint32_t>(node) << 16) | endpoint) {}

  static constexpr Address FromPacked(std::uint32_t packed) {
    Address a;
    a.packed_ = packed;
    return a;
  }

  static constexpr Address Invalid() { return FromPacked(0xffffffffu); }

  constexpr std::uint32_t packed() const { return packed_; }
  constexpr std::uint16_t node() const { return static_cast<std::uint16_t>(packed_ >> 16); }
  constexpr std::uint16_t endpoint() const { return static_cast<std::uint16_t>(packed_ & 0xffffu); }

  constexpr bool valid() const { return packed_ != 0xffffffffu; }

  friend constexpr bool operator==(Address a, Address b) { return a.packed_ == b.packed_; }
  friend constexpr bool operator!=(Address a, Address b) { return !(a == b); }

 private:
  std::uint32_t packed_ = 0xffffffffu;
};

}  // namespace flipc

#endif  // SRC_SHM_ADDRESS_H_
