#include "src/shm/comm_buffer.h"

#include <cstring>
#include <mutex>
#include <new>

#include "src/base/log.h"
#include "src/shm/ownership_layout.h"
#include "src/waitfree/boundary_check.h"

namespace flipc::shm {

Status CommBufferConfig::Validate() const {
  if (message_size < kMinMessageSize || message_size % kMessageSizeMultiple != 0) {
    return InvalidArgumentStatus();
  }
  if (buffer_count == 0 || buffer_count >= kInvalidBuffer) {
    return InvalidArgumentStatus();
  }
  if (max_endpoints == 0 || max_endpoints > 0xffffu) {
    // Endpoint indices must fit the 16-bit field of a packed Address.
    return InvalidArgumentStatus();
  }
  if (effective_cell_arena_size() == 0) {
    return InvalidArgumentStatus();
  }
  if (doorbell_capacity != 0 &&
      (doorbell_capacity < 2 || !IsPowerOfTwo(doorbell_capacity))) {
    return InvalidArgumentStatus();
  }
  if (shard_count == 0 || shard_count > max_endpoints ||
      max_endpoints % shard_count != 0) {
    // Shards own equal contiguous slot blocks; requiring divisibility keeps
    // every shard non-empty (no planner with nothing to plan).
    return InvalidArgumentStatus();
  }
  return OkStatus();
}

Result<CommBufferLayout> CommBufferLayout::For(const CommBufferConfig& config) {
  FLIPC_RETURN_IF_ERROR(config.Validate());
  CommBufferLayout layout;
  std::size_t offset = AlignUp(sizeof(CommBufferHeader), kCacheLineSize);
  layout.endpoint_table_offset = offset;
  offset += static_cast<std::size_t>(config.max_endpoints) * sizeof(EndpointRecord);
  layout.telemetry_offset = AlignUp(offset, kCacheLineSize);
  offset = layout.telemetry_offset +
           static_cast<std::size_t>(config.max_endpoints) * sizeof(TelemetryBlock);
  layout.cell_arena_offset = AlignUp(offset, kCacheLineSize);
  offset = layout.cell_arena_offset +
           static_cast<std::size_t>(config.effective_cell_arena_size()) *
               sizeof(waitfree::SingleWriterCell<BufferIndex>);
  layout.freelist_offset = AlignUp(offset, kCacheLineSize);
  offset = layout.freelist_offset +
           static_cast<std::size_t>(config.buffer_count) * sizeof(std::uint32_t);
  layout.doorbell_offset = AlignUp(offset, kCacheLineSize);
  // One doorbell section (cursors + cells) per shard; the per-shard stride
  // is cache-line aligned so no section straddles another shard's lines.
  const std::size_t doorbell_stride =
      AlignUp(sizeof(waitfree::DoorbellCursors) +
                  static_cast<std::size_t>(config.effective_doorbell_capacity()) *
                      sizeof(waitfree::SingleWriterCell<std::uint64_t>),
              kCacheLineSize);
  offset = layout.doorbell_offset + config.shard_count * doorbell_stride;
  layout.buffers_offset = AlignUp(offset, kCacheLineSize);
  offset = layout.buffers_offset +
           static_cast<std::size_t>(config.buffer_count) * config.message_size;
  layout.total_size = AlignUp(offset, kCacheLineSize);
  return layout;
}

CommBuffer::CommBuffer(std::byte* base, bool owns) : base_(base), owns_(owns) {
  header_ = reinterpret_cast<CommBufferHeader*>(base_);
}

CommBuffer::~CommBuffer() {
  // Drop this region's ownership declarations so reused memory cannot
  // inherit them. If another CommBuffer in this process is still attached
  // to the same bytes, its cells merely become unchecked (undeclared cells
  // are skipped, never misreported).
  if (header_ != nullptr && header_->magic == kCommBufferMagic) {
    waitfree::UndeclareCellRange(base_, header_->total_size);
  }
  if (owns_) {
    ::operator delete[](base_, std::align_val_t(kCacheLineSize));
  }
}

Result<std::unique_ptr<CommBuffer>> CommBuffer::Create(const CommBufferConfig& config) {
  FLIPC_ASSIGN_OR_RETURN(const CommBufferLayout layout, CommBufferLayout::For(config));
  auto* raw = static_cast<std::byte*>(
      ::operator new[](layout.total_size, std::align_val_t(kCacheLineSize), std::nothrow));
  if (raw == nullptr) {
    return ResourceExhaustedStatus();
  }
  auto buffer = std::unique_ptr<CommBuffer>(new CommBuffer(raw, /*owns=*/true));
  buffer->FormatRegion(config, layout);
  return buffer;
}

Result<std::unique_ptr<CommBuffer>> CommBuffer::Format(void* base, std::size_t size,
                                                       const CommBufferConfig& config) {
  FLIPC_ASSIGN_OR_RETURN(const CommBufferLayout layout, CommBufferLayout::For(config));
  if (base == nullptr || size < layout.total_size ||
      !IsAligned(reinterpret_cast<std::uintptr_t>(base), kCacheLineSize)) {
    return InvalidArgumentStatus();
  }
  auto buffer = std::unique_ptr<CommBuffer>(
      new CommBuffer(static_cast<std::byte*>(base), /*owns=*/false));
  buffer->FormatRegion(config, layout);
  return buffer;
}

Result<std::unique_ptr<CommBuffer>> CommBuffer::Attach(void* base, std::size_t size) {
  if (base == nullptr || size < sizeof(CommBufferHeader) ||
      !IsAligned(reinterpret_cast<std::uintptr_t>(base), kCacheLineSize)) {
    return InvalidArgumentStatus();
  }
  const auto* header = static_cast<const CommBufferHeader*>(base);
  if (header->magic != kCommBufferMagic || header->version != kCommBufferVersion) {
    return InvalidArgumentStatus();
  }
  if (header->total_size > size) {
    return InvalidArgumentStatus();
  }
  auto buffer = std::unique_ptr<CommBuffer>(
      new CommBuffer(static_cast<std::byte*>(base), /*owns=*/false));
  // Each process (and each attachment) registers the region's cells with
  // its own ownership-checker registry.
  buffer->DeclareBoundaryOwners();
  return buffer;
}

void CommBuffer::FormatRegion(const CommBufferConfig& config, const CommBufferLayout& layout) {
  std::memset(base_, 0, layout.total_size);

  header_ = new (base_) CommBufferHeader();
  header_->magic = kCommBufferMagic;
  header_->version = kCommBufferVersion;
  header_->message_size = config.message_size;
  header_->buffer_count = config.buffer_count;
  header_->max_endpoints = config.max_endpoints;
  header_->cell_arena_size = config.effective_cell_arena_size();
  header_->doorbell_capacity = config.effective_doorbell_capacity();
  header_->shard_count = config.shard_count;
  header_->endpoints_per_shard =
      (config.max_endpoints + config.shard_count - 1) / config.shard_count;
  header_->endpoint_table_offset = layout.endpoint_table_offset;
  header_->telemetry_offset = layout.telemetry_offset;
  header_->cell_arena_offset = layout.cell_arena_offset;
  header_->freelist_offset = layout.freelist_offset;
  header_->doorbell_offset = layout.doorbell_offset;
  header_->buffers_offset = layout.buffers_offset;
  header_->total_size = layout.total_size;

  for (std::uint32_t i = 0; i < config.max_endpoints; ++i) {
    new (&endpoint_table()[i]) EndpointRecord();
    new (&telemetry_table()[i]) TelemetryBlock();
  }

  auto* cells = cell_arena();
  for (std::uint32_t i = 0; i < header_->cell_arena_size; ++i) {
    new (&cells[i]) waitfree::SingleWriterCell<BufferIndex>(kInvalidBuffer);
  }

  // Doorbell rings, one per shard: zeroed cells carry lap tag 0, which never
  // matches a consumer expectation (tags start at 1), so each ring formats
  // empty.
  for (std::uint32_t shard = 0; shard < header_->shard_count; ++shard) {
    new (doorbell_cursors(shard)) waitfree::DoorbellCursors();
    auto* bells = doorbell_cells(shard);
    for (std::uint32_t i = 0; i < header_->doorbell_capacity; ++i) {
      new (&bells[i]) waitfree::SingleWriterCell<std::uint64_t>(0);
    }
  }

  // Thread the buffer free list: each buffer's freelist slot names the next
  // free buffer.
  auto* next = freelist();
  for (std::uint32_t i = 0; i < config.buffer_count; ++i) {
    next[i] = (i + 1 < config.buffer_count) ? i + 1 : kInvalidBuffer;
    new (&msg(i).header->state) waitfree::HandoffState();
  }
  header_->free_head = 0;
  header_->free_count = config.buffer_count;
  header_->cells_used = 0;
  header_->endpoints_active = 0;

  DeclareBoundaryOwners();
}

void CommBuffer::DeclareBoundaryOwners() {
  if constexpr (!waitfree::kBoundaryCheckEnabled) {
    return;
  }
  // A reformat invalidates whatever was declared at these addresses before.
  waitfree::UndeclareCellRange(base_, header_->total_size);
  // Endpoint records and telemetry: engine-written cells are additionally
  // qualified with the owning shard (per the contiguous block assignment),
  // so a planner that touches another shard's endpoint aborts.
  for (std::uint32_t i = 0; i < header_->max_endpoints; ++i) {
    DeclareOwnersFromTable(&endpoint_table()[i], kEndpointRecordOwnership, shard_of(i));
    DeclareOwnersFromTable(&telemetry_table()[i], kTelemetryBlockOwnership, shard_of(i));
  }
  // Queue cells are written only by the application, at release time; the
  // engine communicates per-buffer completion through the buffer's state
  // field (see src/waitfree/buffer_queue.h).
  auto* cells = cell_arena();
  for (std::uint32_t i = 0; i < header_->cell_arena_size; ++i) {
    cells[i].DeclareOwner(waitfree::Writer::kApplication, "CommBuffer.cell_arena");
  }
  // Doorbell rings: cursors per the ownership table (each shard's consumer
  // cursors qualified with that shard); every ring cell is written only by
  // the application, at ring time.
  for (std::uint32_t shard = 0; shard < header_->shard_count; ++shard) {
    DeclareOwnersFromTable(doorbell_cursors(shard), kDoorbellCursorsOwnership, shard);
    auto* bells = doorbell_cells(shard);
    for (std::uint32_t i = 0; i < header_->doorbell_capacity; ++i) {
      bells[i].DeclareOwner(waitfree::Writer::kApplication, "CommBuffer.doorbell_cells");
    }
  }
  // Message headers are NOT declared: their peer/state words hand off
  // between writers with the buffer's queue position. HandoffState's
  // transition check covers them (src/waitfree/msg_state.h).
}

EndpointRecord* CommBuffer::endpoint_table() {
  return reinterpret_cast<EndpointRecord*>(base_ + header_->endpoint_table_offset);
}

TelemetryBlock* CommBuffer::telemetry_table() {
  return reinterpret_cast<TelemetryBlock*>(base_ + header_->telemetry_offset);
}

TelemetryBlock& CommBuffer::telemetry(std::uint32_t index) { return telemetry_table()[index]; }

const TelemetryBlock& CommBuffer::telemetry(std::uint32_t index) const {
  return const_cast<CommBuffer*>(this)->telemetry_table()[index];
}

waitfree::SingleWriterCell<BufferIndex>* CommBuffer::cell_arena() {
  return reinterpret_cast<waitfree::SingleWriterCell<BufferIndex>*>(
      base_ + header_->cell_arena_offset);
}

std::uint32_t* CommBuffer::freelist() {
  return reinterpret_cast<std::uint32_t*>(base_ + header_->freelist_offset);
}

std::size_t CommBuffer::doorbell_section_stride() const {
  return AlignUp(sizeof(waitfree::DoorbellCursors) +
                     static_cast<std::size_t>(header_->doorbell_capacity) *
                         sizeof(waitfree::SingleWriterCell<std::uint64_t>),
                 kCacheLineSize);
}

waitfree::DoorbellCursors* CommBuffer::doorbell_cursors(std::uint32_t shard) {
  return reinterpret_cast<waitfree::DoorbellCursors*>(
      base_ + header_->doorbell_offset + shard * doorbell_section_stride());
}

waitfree::SingleWriterCell<std::uint64_t>* CommBuffer::doorbell_cells(std::uint32_t shard) {
  return reinterpret_cast<waitfree::SingleWriterCell<std::uint64_t>*>(
      base_ + header_->doorbell_offset + shard * doorbell_section_stride() +
      sizeof(waitfree::DoorbellCursors));
}

waitfree::DoorbellRingView CommBuffer::doorbell_ring(std::uint32_t shard) {
  return waitfree::DoorbellRingView(doorbell_cursors(shard), doorbell_cells(shard),
                                    header_->doorbell_capacity);
}

MsgView CommBuffer::msg(BufferIndex index) {
  MsgView view;
  std::byte* start =
      base_ + header_->buffers_offset + static_cast<std::size_t>(index) * header_->message_size;
  view.header = reinterpret_cast<MsgHeader*>(start);
  view.payload = start + kMsgHeaderSize;
  view.payload_size = payload_size();
  return view;
}

Result<BufferIndex> CommBuffer::AllocateBuffer() {
  // Allocation is an application-side activity (the engine never allocates).
  waitfree::ScopedBoundaryRole boundary_role(waitfree::Writer::kApplication);
  ScopedLock<TasLock> guard(header_->alloc_lock);
  if (header_->free_head == kInvalidBuffer) {
    return ResourceExhaustedStatus();
  }
  const BufferIndex index = header_->free_head;
  header_->free_head = freelist()[index];
  --header_->free_count;
  msg(index).header->state.Store(waitfree::MsgState::kFree);
  return index;
}

Status CommBuffer::FreeBuffer(BufferIndex index) {
  if (!IsValidBufferIndex(index)) {
    return InvalidArgumentStatus();
  }
  ScopedLock<TasLock> guard(header_->alloc_lock);
  freelist()[index] = header_->free_head;
  header_->free_head = index;
  ++header_->free_count;
  return OkStatus();
}

std::uint32_t CommBuffer::FreeBufferCount() {
  ScopedLock<TasLock> guard(header_->alloc_lock);
  return header_->free_count;
}

Result<std::uint32_t> CommBuffer::AllocateEndpoint(const EndpointParams& params) {
  if (!IsPowerOfTwo(params.queue_capacity)) {
    return InvalidArgumentStatus();
  }
  if (params.type != EndpointType::kSend && params.type != EndpointType::kReceive) {
    return InvalidArgumentStatus();
  }

  if (params.shard != kAnyShard && params.shard >= header_->shard_count) {
    return InvalidArgumentStatus();
  }

  waitfree::ScopedBoundaryRole boundary_role(waitfree::Writer::kApplication);
  ScopedLock<TasLock> guard(header_->alloc_lock);

  // Prefer an inactive record whose prior cell reservation is big enough to
  // reuse; otherwise take any inactive record and extend the arena. When a
  // shard is requested, the search covers only that shard's slot range.
  const std::uint32_t first =
      params.shard == kAnyShard ? 0 : shard_first_endpoint(params.shard);
  const std::uint32_t end =
      params.shard == kAnyShard ? header_->max_endpoints
                                : shard_end_endpoint(params.shard);
  std::uint32_t chosen = kInvalidEndpoint;
  std::uint32_t fallback = kInvalidEndpoint;
  for (std::uint32_t i = first; i < end; ++i) {
    EndpointRecord& record = endpoint_table()[i];
    if (record.IsActive()) {
      continue;
    }
    if (record.cells_reserved.ReadRelaxed() >= params.queue_capacity) {
      chosen = i;
      break;
    }
    if (fallback == kInvalidEndpoint) {
      fallback = i;
    }
  }
  if (chosen == kInvalidEndpoint) {
    chosen = fallback;
  }
  if (chosen == kInvalidEndpoint) {
    return ResourceExhaustedStatus();
  }

  EndpointRecord& record = endpoint_table()[chosen];
  if (record.cells_reserved.ReadRelaxed() < params.queue_capacity) {
    if (header_->cells_used + params.queue_capacity > header_->cell_arena_size) {
      return ResourceExhaustedStatus();
    }
    record.cells_offset.StoreRelaxed(header_->cells_used);
    record.cells_reserved.StoreRelaxed(params.queue_capacity);
    header_->cells_used += params.queue_capacity;
  }

  record.queue_capacity.StoreRelaxed(params.queue_capacity);
  record.semaphore_id.StoreRelaxed(params.semaphore_id);
  record.priority.StoreRelaxed(params.priority);
  record.options.StoreRelaxed(params.options);
  record.allowed_peer.StoreRelaxed(params.allowed_peer);
  record.min_send_interval_ns.StoreRelaxed(params.min_send_interval_ns);
  // The owning shard follows from the slot index (contiguous block
  // assignment); published on the record so the application library rings
  // the right doorbell without recomputing the mapping.
  record.shard.StoreRelaxed(shard_of(chosen));
  record.qos_class.StoreRelaxed(params.qos_class);
  record.deadline_ns.StoreRelaxed(params.deadline_ns);
  record.bucket_capacity.StoreRelaxed(params.bucket_capacity);
  record.bucket_refill_ns.StoreRelaxed(params.bucket_refill_ns);
  // Bump the slot's allocation generation so the engine discards any
  // throttle/bucket state left by the previous tenant; skipping 0 lets the
  // engine use 0 as "never seen" after a fresh format or recovery.
  {
    std::uint32_t generation = record.alloc_generation.ReadRelaxed() + 1;
    if (generation == 0) {
      generation = 1;
    }
    record.alloc_generation.StoreRelaxed(generation);
  }
  record.release_count.StoreRelaxed(0);
  record.acquire_count.StoreRelaxed(0);
  record.drops_reclaimed.StoreRelaxed(0);
  {
    // Quiescent cross-boundary writes: the engine's cursors are reset by
    // the allocating application thread while the record is still inactive
    // (the engine ignores it until the type publish below). Telemetry is
    // per-slot-lifetime, so both of its halves reset here too.
    waitfree::ScopedBoundaryExemption quiescent_reset;
    record.process_count.StoreRelaxed(0);
    record.drops_total.StoreRelaxed(0);
    record.processed_total.StoreRelaxed(0);
    telemetry_table()[chosen].ResetQuiescent();
  }

  // Publish the type last: the engine treats a non-inactive type as the
  // endpoint being live, and the release-store orders all the setup above.
  record.type.Publish(static_cast<std::uint32_t>(params.type));
  ++header_->endpoints_active;
  return chosen;
}

Status CommBuffer::FreeEndpoint(std::uint32_t index) {
  if (!IsValidEndpointIndex(index)) {
    return InvalidArgumentStatus();
  }
  waitfree::ScopedBoundaryRole boundary_role(waitfree::Writer::kApplication);
  ScopedLock<TasLock> guard(header_->alloc_lock);
  EndpointRecord& record = endpoint_table()[index];
  if (!record.IsActive()) {
    return FailedPreconditionStatus();
  }
  // The queue must be fully drained (every released buffer acquired back),
  // otherwise the engine may still be processing into endpoint buffers.
  if (record.release_count.Read() != record.acquire_count.Read()) {
    return FailedPreconditionStatus();
  }
  record.type.Publish(static_cast<std::uint32_t>(EndpointType::kInactive));
  --header_->endpoints_active;
  // cells_offset / cells_reserved are kept for reuse by a later allocation.
  return OkStatus();
}

EndpointRecord& CommBuffer::endpoint(std::uint32_t index) { return endpoint_table()[index]; }

const EndpointRecord& CommBuffer::endpoint(std::uint32_t index) const {
  return const_cast<CommBuffer*>(this)->endpoint_table()[index];
}

waitfree::BufferQueueView CommBuffer::queue(std::uint32_t endpoint_index) {
  EndpointRecord& record = endpoint_table()[endpoint_index];
  return waitfree::BufferQueueView(
      &record.release_count, &record.acquire_count, &record.process_count,
      cell_arena() + record.cells_offset.ReadRelaxed(), record.queue_capacity.ReadRelaxed());
}

}  // namespace flipc::shm
