// The telemetry counter-identity audit, shared by flipc_inspect --metrics
// and the failure-scenario tests (which run it programmatically after a
// kill/restart or churn episode to prove recovery lost nothing beyond the
// optimistic-discard contract).
//
// The identities (telemetry_block.h):
//
//   send endpoint     low32(api_sends)    == release_count
//                     low32(api_reclaims) == acquire_count
//                     engine_transmits + engine_rejects == processed_total
//                     deadline_misses     <= engine_transmits
//   receive endpoint  low32(api_posts)    == release_count
//                     low32(api_receives) == acquire_count
//                     engine_deliveries   == processed_total
//
// The QoS counters (version 5) add inequality rows: a deadline miss is
// recorded only at a transmission, so misses can never outrun transmits;
// on receive endpoints the three QoS counters must stay zero (the planner
// only schedules send work).
//
// They hold for any endpoint driven through the Endpoint API and the
// engine, at quiescence (mid-operation reads can be one apart on a live
// system) — and they must SURVIVE an engine crash/restart, because every
// word involved lives in the comm buffer or is recomputed from it, never
// in the dead engine's heap.
#ifndef SRC_SHM_TELEMETRY_AUDIT_H_
#define SRC_SHM_TELEMETRY_AUDIT_H_

#include <cstdint>
#include <vector>

#include "src/shm/comm_buffer.h"
#include "src/shm/endpoint_record.h"
#include "src/shm/telemetry_block.h"

namespace flipc::shm {

// One failed identity on one endpoint.
struct EndpointIdentityFailure {
  std::uint32_t endpoint = 0;
  const char* identity = "";  // static string naming the violated identity
  std::uint64_t lhs = 0;
  std::uint64_t rhs = 0;
};

// Checks the identities for one active endpoint; appends a row per failed
// identity when `failures` is non-null. Returns true when all hold.
inline bool CheckEndpointIdentities(const CommBuffer& comm, std::uint32_t index,
                                    std::vector<EndpointIdentityFailure>* failures) {
  const EndpointRecord& record = comm.endpoint(index);
  const TelemetryBlock& t = comm.telemetry(index);
  const std::uint32_t release = record.release_count.Read();
  const std::uint32_t acquire = record.acquire_count.Read();
  const std::uint64_t processed = record.processed_total.Read();

  bool ok = true;
  const auto check = [&](const char* name, std::uint64_t lhs, std::uint64_t rhs) {
    if (lhs == rhs) {
      return;
    }
    ok = false;
    if (failures != nullptr) {
      failures->push_back({index, name, lhs, rhs});
    }
  };
  const auto check_at_most = [&](const char* name, std::uint64_t lhs, std::uint64_t rhs) {
    if (lhs <= rhs) {
      return;
    }
    ok = false;
    if (failures != nullptr) {
      failures->push_back({index, name, lhs, rhs});
    }
  };
  if (record.Type() == EndpointType::kSend) {
    check("low32(api_sends) == release_count",
          static_cast<std::uint32_t>(t.api_sends.Read()), release);
    check("low32(api_reclaims) == acquire_count",
          static_cast<std::uint32_t>(t.api_reclaims.Read()), acquire);
    check("engine_transmits + engine_rejects == processed_total",
          t.engine_transmits.Read() + t.engine_rejects.Read(), processed);
    check_at_most("deadline_misses <= engine_transmits", t.deadline_misses.Read(),
                  t.engine_transmits.Read());
  } else {
    check("low32(api_posts) == release_count",
          static_cast<std::uint32_t>(t.api_posts.Read()), release);
    check("low32(api_receives) == acquire_count",
          static_cast<std::uint32_t>(t.api_receives.Read()), acquire);
    check("engine_deliveries == processed_total", t.engine_deliveries.Read(),
          processed);
    // The planner schedules send work only; QoS accounting on a receive
    // endpoint means a cross-role or cross-slot write.
    check("deadline_misses == 0 (receive)", t.deadline_misses.Read(), 0);
    check("max_service_gap_ns == 0 (receive)", t.max_service_gap_ns.Read(), 0);
    check("throttle_deferrals == 0 (receive)", t.throttle_deferrals.Read(), 0);
  }
  return ok;
}

// Audits every active endpoint; returns the number of endpoints with at
// least one failed identity (0 == the buffer is consistent). `failures`
// may be null when only the count matters.
inline int AuditTelemetryIdentities(const CommBuffer& comm,
                                    std::vector<EndpointIdentityFailure>* failures = nullptr) {
  int mismatched_endpoints = 0;
  for (std::uint32_t i = 0; i < comm.max_endpoints(); ++i) {
    if (!comm.endpoint(i).IsActive()) {
      continue;
    }
    if (!CheckEndpointIdentities(comm, i, failures)) {
      ++mismatched_endpoints;
    }
  }
  return mismatched_endpoints;
}

}  // namespace flipc::shm

#endif  // SRC_SHM_TELEMETRY_AUDIT_H_
