// The telemetry counter-identity audit, shared by flipc_inspect --metrics
// and the failure-scenario tests (which run it programmatically after a
// kill/restart or churn episode to prove recovery lost nothing beyond the
// optimistic-discard contract).
//
// The identities (telemetry_block.h):
//
//   send endpoint     low32(api_sends)    == release_count
//                     low32(api_reclaims) == acquire_count
//                     engine_transmits + engine_rejects == processed_total
//   receive endpoint  low32(api_posts)    == release_count
//                     low32(api_receives) == acquire_count
//                     engine_deliveries   == processed_total
//
// They hold for any endpoint driven through the Endpoint API and the
// engine, at quiescence (mid-operation reads can be one apart on a live
// system) — and they must SURVIVE an engine crash/restart, because every
// word involved lives in the comm buffer or is recomputed from it, never
// in the dead engine's heap.
#ifndef SRC_SHM_TELEMETRY_AUDIT_H_
#define SRC_SHM_TELEMETRY_AUDIT_H_

#include <cstdint>
#include <vector>

#include "src/shm/comm_buffer.h"
#include "src/shm/endpoint_record.h"
#include "src/shm/telemetry_block.h"

namespace flipc::shm {

// One failed identity on one endpoint.
struct EndpointIdentityFailure {
  std::uint32_t endpoint = 0;
  const char* identity = "";  // static string naming the violated identity
  std::uint64_t lhs = 0;
  std::uint64_t rhs = 0;
};

// Checks the identities for one active endpoint; appends a row per failed
// identity when `failures` is non-null. Returns true when all hold.
inline bool CheckEndpointIdentities(const CommBuffer& comm, std::uint32_t index,
                                    std::vector<EndpointIdentityFailure>* failures) {
  const EndpointRecord& record = comm.endpoint(index);
  const TelemetryBlock& t = comm.telemetry(index);
  const std::uint32_t release = record.release_count.Read();
  const std::uint32_t acquire = record.acquire_count.Read();
  const std::uint64_t processed = record.processed_total.Read();

  bool ok = true;
  const auto check = [&](const char* name, std::uint64_t lhs, std::uint64_t rhs) {
    if (lhs == rhs) {
      return;
    }
    ok = false;
    if (failures != nullptr) {
      failures->push_back({index, name, lhs, rhs});
    }
  };
  if (record.Type() == EndpointType::kSend) {
    check("low32(api_sends) == release_count",
          static_cast<std::uint32_t>(t.api_sends.Read()), release);
    check("low32(api_reclaims) == acquire_count",
          static_cast<std::uint32_t>(t.api_reclaims.Read()), acquire);
    check("engine_transmits + engine_rejects == processed_total",
          t.engine_transmits.Read() + t.engine_rejects.Read(), processed);
  } else {
    check("low32(api_posts) == release_count",
          static_cast<std::uint32_t>(t.api_posts.Read()), release);
    check("low32(api_receives) == acquire_count",
          static_cast<std::uint32_t>(t.api_receives.Read()), acquire);
    check("engine_deliveries == processed_total", t.engine_deliveries.Read(),
          processed);
  }
  return ok;
}

// Audits every active endpoint; returns the number of endpoints with at
// least one failed identity (0 == the buffer is consistent). `failures`
// may be null when only the count matters.
inline int AuditTelemetryIdentities(const CommBuffer& comm,
                                    std::vector<EndpointIdentityFailure>* failures = nullptr) {
  int mismatched_endpoints = 0;
  for (std::uint32_t i = 0; i < comm.max_endpoints(); ++i) {
    if (!comm.endpoint(i).IsActive()) {
      continue;
    }
    if (!CheckEndpointIdentities(comm, i, failures)) {
      ++mismatched_endpoints;
    }
  }
  return mismatched_endpoints;
}

}  // namespace flipc::shm

#endif  // SRC_SHM_TELEMETRY_AUDIT_H_
