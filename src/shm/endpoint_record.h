// Endpoint records inside the communication buffer.
//
// Each record is laid out in four cache lines grouped by writer, the
// concrete form of the paper's false-sharing fix ("ensure that concurrent
// writes from the application and messaging engine can never occur in the
// same cache line"):
//
//   line 0 — configuration: written by the application library only while
//            the endpoint is being (de)allocated, read-only to the engine;
//   line 1 — application-written cursors and counters (release, acquire,
//            reclaimed drop count);
//   line 2 — engine-written cursors and counters (process, total drops,
//            processed-message count);
//   line 3 — a test-and-set lock for mutual exclusion among application
//            threads; the engine never touches it (the paper's locked
//            interface variants use it, the lock-free variants skip it).
//
// This grouping is not just documentation: the ownership table in
// src/shm/ownership_layout.h records the writer of every field, a
// static_assert layout lint fails the build if a cache line ever mixes the
// two writers, and in FLIPC_CHECK_SINGLE_WRITER builds each cell is
// registered with the ownership race detector so a cross-boundary write
// aborts at run time (src/waitfree/boundary_check.h). When adding a field,
// place it on its writer's line AND add its table entry.
#ifndef SRC_SHM_ENDPOINT_RECORD_H_
#define SRC_SHM_ENDPOINT_RECORD_H_

#include <cstdint>

#include "src/base/locks.h"
#include "src/base/hotpath.h"
#include "src/base/types.h"
#include "src/waitfree/buffer_queue.h"
#include "src/waitfree/single_writer.h"

namespace flipc::shm {

enum class EndpointType : std::uint32_t {
  kInactive = 0,
  kSend = 1,
  kReceive = 2,
};

// Endpoint option flags (configuration line).
inline constexpr std::uint32_t kEndpointOptNone = 0;
// A semaphore should be signaled when the engine completes processing a
// buffer on this endpoint (receive: message arrived; send: buffer free).
inline constexpr std::uint32_t kEndpointOptSemaphore = 1u << 0;

inline constexpr std::uint32_t kNoSemaphore = 0xffffffffu;

// Default engine scan priority; higher values are scanned first when the
// engine's priority scheduling extension is enabled.
inline constexpr std::uint32_t kDefaultEndpointPriority = 0;

// Number of QoS service classes the engine's planner recognizes
// (DESIGN.md §15). qos_class values at or above this clamp to the top
// class, so a misconfigured record degrades instead of corrupting state.
inline constexpr std::uint32_t kQosClassCount = 4;

struct alignas(kCacheLineSize) EndpointRecord {
  // ---- Line 0: configuration (application-written, quiescent) ----
  waitfree::SingleWriterCell<std::uint32_t> type;            // EndpointType
  waitfree::SingleWriterCell<std::uint32_t> cells_offset;    // index into cell arena
  waitfree::SingleWriterCell<std::uint32_t> queue_capacity;  // power of two
  waitfree::SingleWriterCell<std::uint32_t> cells_reserved;  // arena cells owned
  waitfree::SingleWriterCell<std::uint32_t> semaphore_id;    // kNoSemaphore if none
  waitfree::SingleWriterCell<std::uint32_t> priority;
  waitfree::SingleWriterCell<std::uint32_t> options;
  // Protection (future-work): packed Address this endpoint may send to;
  // 0xffffffff (invalid) means unrestricted. Enforced by the engine.
  waitfree::SingleWriterCell<std::uint32_t> allowed_peer;
  // Capacity control (future-work): minimum ns between transmissions from
  // this endpoint; 0 means unlimited. Enforced by the engine's scheduler.
  waitfree::SingleWriterCell<std::uint32_t> min_send_interval_ns;
  // Sharded engine: which shard planner owns this endpoint (DESIGN.md §12).
  // Assigned at allocation from the comm buffer's shard geometry and
  // published here so the application rings the owning shard's doorbell
  // ring without recomputing the mapping. Always 0 when shard_count == 1.
  waitfree::SingleWriterCell<std::uint32_t> shard;
  // QoS planner (DESIGN.md §15): weighted service class. Classes 0..3;
  // the planner's deficit-weighted selection gives each class a share of
  // transmissions proportional to its configured weight.
  waitfree::SingleWriterCell<std::uint32_t> qos_class;
  // QoS planner: relative deadline per message, ns after the message
  // becomes processable. 0 means not real-time (no EDF ordering, no
  // deadline-miss accounting).
  waitfree::SingleWriterCell<std::uint32_t> deadline_ns;
  // QoS planner: token-bucket burst capacity in messages. 0 disables the
  // bucket (pure min_send_interval_ns mode); bucket state is engine-private.
  waitfree::SingleWriterCell<std::uint32_t> bucket_capacity;
  // QoS planner: ns to refill one bucket token. 0 with a nonzero capacity
  // means tokens never refill (hard burst cap).
  waitfree::SingleWriterCell<std::uint32_t> bucket_refill_ns;
  // Allocation generation for this slot, bumped on every AllocateEndpoint.
  // The engine compares it against its private copy to detect slot reuse
  // and drop throttle/bucket state inherited from the previous tenant —
  // the engine may never observe the transient kInactive window during
  // churn, so a generation tag (not the type cell) is the reliable signal.
  waitfree::SingleWriterCell<std::uint32_t> alloc_generation;

  // ---- Line 1: application-written hot state ----
  alignas(kCacheLineSize) waitfree::SingleWriterCell<std::uint32_t> release_count;
  waitfree::SingleWriterCell<std::uint32_t> acquire_count;
  waitfree::SingleWriterCell<std::uint64_t> drops_reclaimed;

  // ---- Line 2: engine-written hot state ----
  alignas(kCacheLineSize) waitfree::SingleWriterCell<std::uint32_t> process_count;
  waitfree::SingleWriterCell<std::uint64_t> drops_total;
  waitfree::SingleWriterCell<std::uint64_t> processed_total;

  // ---- Line 3: application-thread lock ----
  alignas(kCacheLineSize) TasLock lock;

  EndpointType Type() const { return static_cast<EndpointType>(type.Read()); }
  bool IsActive() const { return Type() != EndpointType::kInactive; }

  // Wait-free dual-location drop counter (see src/waitfree/drop_counter.h);
  // drops_total is the engine-written location, drops_reclaimed the
  // application-written one.
  FLIPC_ROLE_ENGINE void RecordDrop() { drops_total.Publish(drops_total.ReadRelaxed() + 1); }
  std::uint64_t DropCount() const {
    return drops_total.Read() - drops_reclaimed.ReadRelaxed();
  }
  FLIPC_ROLE_APP std::uint64_t ReadAndResetDrops() {
    const std::uint64_t observed = drops_total.Read();
    const std::uint64_t prior = drops_reclaimed.ReadRelaxed();
    drops_reclaimed.Publish(observed);
    return observed - prior;
  }
};
static_assert(sizeof(EndpointRecord) == 4 * kCacheLineSize);
static_assert(alignof(EndpointRecord) == kCacheLineSize);

}  // namespace flipc::shm

#endif  // SRC_SHM_ENDPOINT_RECORD_H_
