#include "src/shm/posix_region.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/base/log.h"
#include "src/base/types.h"

namespace flipc::shm {

Result<std::unique_ptr<PosixShmRegion>> PosixShmRegion::Create(const std::string& name,
                                                               std::size_t size) {
  if (name.empty() || name[0] != '/' || size == 0) {
    return InvalidArgumentStatus();
  }
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    return ResourceExhaustedStatus();
  }
  const std::size_t mapped_size = AlignUp(size, 4096);
  if (::ftruncate(fd, static_cast<off_t>(mapped_size)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    return ResourceExhaustedStatus();
  }
  void* base = ::mmap(nullptr, mapped_size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    return ResourceExhaustedStatus();
  }
  return std::unique_ptr<PosixShmRegion>(
      new PosixShmRegion(name, base, mapped_size, /*owner=*/true));
}

Result<std::unique_ptr<PosixShmRegion>> PosixShmRegion::Open(const std::string& name) {
  if (name.empty() || name[0] != '/') {
    return InvalidArgumentStatus();
  }
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) {
    return NotFoundStatus();
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return InternalStatus();
  }
  const auto mapped_size = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, mapped_size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return ResourceExhaustedStatus();
  }
  return std::unique_ptr<PosixShmRegion>(
      new PosixShmRegion(name, base, mapped_size, /*owner=*/false));
}

PosixShmRegion::~PosixShmRegion() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
  }
  if (owner_) {
    ::shm_unlink(name_.c_str());
  }
}

}  // namespace flipc::shm
