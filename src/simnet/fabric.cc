#include "src/simnet/fabric.h"

#include "src/base/thread_annotations.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace flipc::simnet {

// ============================== Fault plan ===================================

std::string_view FaultEventKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kLinkDown:
      return "link-down";
    case FaultEvent::Kind::kNodeDown:
      return "node-down";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kRandomDrop:
      return "random-drop";
    case FaultEvent::Kind::kDelay:
      return "delay";
  }
  return "unknown";
}

std::string FormatFaultLog(const std::vector<FaultEvent>& events) {
  std::string out;
  out.reserve(events.size() * 64);
  char line[128];
  for (const FaultEvent& e : events) {
    std::snprintf(line, sizeof(line),
                  "t=%lld src=%u dst=%u seq=%llu kind=%s delay=%lld\n",
                  static_cast<long long>(e.time), e.src, e.dst,
                  static_cast<unsigned long long>(e.seq),
                  std::string(FaultEventKindName(e.kind)).c_str(),
                  static_cast<long long>(e.delay_ns));
    out += line;
  }
  return out;
}

// ============================== SimFabric ====================================

class SimFabric::SimWire final : public Wire {
 public:
  SimWire(SimFabric& fabric, NodeId node) : fabric_(fabric), node_(node) {}

  Status Send(Packet packet) override {
    packet.src_node = node_;
    return fabric_.SendFrom(node_, std::move(packet));
  }

  bool Poll(Packet* out) override {
    if (inbox_.empty()) {
      return false;
    }
    *out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  }

  std::size_t PendingCount() const override { return inbox_.size(); }
  NodeId node() const override { return node_; }

  void Deliver(Packet packet) {
    inbox_.push_back(std::move(packet));
    if (delivery_callback_) {
      delivery_callback_();
    }
  }

  void SetDeliveryCallback(std::function<void()> callback) {
    delivery_callback_ = std::move(callback);
  }

 private:
  SimFabric& fabric_;
  NodeId node_;
  std::deque<Packet> inbox_;
  std::function<void()> delivery_callback_;
};

SimFabric::SimFabric(Simulator& sim, std::unique_ptr<LinkModel> link_model,
                     std::uint32_t node_count, Options options)
    : sim_(sim),
      link_model_(std::move(link_model)),
      options_(std::move(options)),
      fault_rng_(options_.fault_seed),
      plan_rng_(options_.fault_plan.seed),
      link_free_at_(node_count, 0),
      last_arrival_(static_cast<std::size_t>(node_count) * node_count, 0) {
  wires_.reserve(node_count);
  for (NodeId n = 0; n < node_count; ++n) {
    wires_.push_back(std::make_unique<SimWire>(*this, n));
  }
}

SimFabric::~SimFabric() = default;

Wire& SimFabric::wire(NodeId node) { return *wires_[node]; }

void SimFabric::SetDeliveryCallback(NodeId node, std::function<void()> callback) {
  wires_[node]->SetDeliveryCallback(std::move(callback));
}

bool SimFabric::ApplyFaultPlan(NodeId src, NodeId dst, std::uint64_t seq,
                               DurationNs* extra_delay) {
  const FaultPlan& plan = options_.fault_plan;
  const TimeNs now = sim_.Now();
  const auto in_window = [now](TimeNs start, TimeNs end) {
    return start <= now && now < end;
  };
  const auto log = [&](FaultEvent::Kind kind, DurationNs delay = 0) {
    fault_events_.push_back({now, src, dst, seq, kind, delay});
  };

  // Deterministic rules first (they consume no randomness): node outages,
  // then partitions, then link rules in list order.
  for (const FaultPlan::NodeFault& fault : plan.nodes) {
    if ((fault.node == src || fault.node == dst) && in_window(fault.start, fault.end)) {
      log(FaultEvent::Kind::kNodeDown);
      return true;
    }
  }
  for (const FaultPlan::Partition& partition : plan.partitions) {
    if (!in_window(partition.start, partition.end)) {
      continue;
    }
    const auto inside = [&partition](NodeId node) {
      return std::find(partition.island.begin(), partition.island.end(), node) !=
             partition.island.end();
    };
    if (inside(src) != inside(dst)) {
      log(FaultEvent::Kind::kPartition);
      return true;
    }
  }
  DurationNs delay = 0;
  for (const FaultPlan::LinkFault& fault : plan.links) {
    const bool src_match = fault.src == FaultPlan::kAnyNode || fault.src == src;
    const bool dst_match = fault.dst == FaultPlan::kAnyNode || fault.dst == dst;
    if (!src_match || !dst_match || !in_window(fault.start, fault.end)) {
      continue;
    }
    if (fault.down || fault.drop_probability >= 1.0) {
      log(FaultEvent::Kind::kLinkDown);
      return true;
    }
    // The seeding contract: exactly one draw per matching probabilistic
    // rule, in rule order — probabilities of exactly 0 draw nothing.
    if (fault.drop_probability > 0.0 && plan_rng_.Chance(fault.drop_probability)) {
      log(FaultEvent::Kind::kRandomDrop);
      return true;
    }
    delay += fault.extra_delay_ns;
  }
  if (delay > 0) {
    log(FaultEvent::Kind::kDelay, delay);
    *extra_delay += delay;
  }
  return false;
}

Status SimFabric::SendFrom(NodeId src, Packet packet) {
  if (packet.dst_node >= node_count()) {
    return NotFoundStatus();
  }
  const std::uint64_t seq = packets_sent_;
  ++packets_sent_;
  bytes_sent_ += packet.wire_size();

  if (options_.drop_probability > 0.0 && fault_rng_.Chance(options_.drop_probability)) {
    ++packets_dropped_;
    return OkStatus();  // Silent loss, as a faulty interconnect would be.
  }

  DurationNs fault_delay = 0;
  if (!options_.fault_plan.Empty() &&
      ApplyFaultPlan(src, packet.dst_node, seq, &fault_delay)) {
    ++packets_dropped_;
    return OkStatus();  // Same silent loss as above — the plan just decides when.
  }

  const std::size_t wire_bytes = packet.wire_size();
  const TimeNs depart = std::max(sim_.Now(), link_free_at_[src]);
  const DurationNs serialization = link_model_->SerializationNs(src, packet.dst_node, wire_bytes);
  link_free_at_[src] = depart + serialization;

  TimeNs arrive = depart + serialization +
                  link_model_->TransitNs(src, packet.dst_node, wire_bytes) + fault_delay;
  TimeNs& last = last_arrival_[static_cast<std::size_t>(src) * node_count() + packet.dst_node];
  if (arrive <= last) {
    arrive = last + 1;  // Preserve per-(src,dst) FIFO delivery order.
  }
  last = arrive;

  SimWire* dst_wire = wires_[packet.dst_node].get();
  sim_.ScheduleAt(arrive, [dst_wire, p = std::move(packet)]() mutable {
    dst_wire->Deliver(std::move(p));
  });
  return OkStatus();
}

// ============================= ThreadFabric ==================================

class ThreadFabric::ThreadWire final : public Wire {
 public:
  ThreadWire(ThreadFabric& fabric, NodeId node) : fabric_(fabric), node_(node) {}

  Status Send(Packet packet) override {
    packet.src_node = node_;
    if (packet.dst_node >= fabric_.node_count()) {
      return NotFoundStatus();
    }
    ThreadWire& dst = *fabric_.wires_[packet.dst_node];
    std::function<void()> callback;
    {
      ScopedLock<std::mutex> guard(dst.mutex_);
      dst.inbox_.push_back(std::move(packet));
      callback = dst.delivery_callback_;
    }
    if (callback) {
      callback();
    }
    return OkStatus();
  }

  bool Poll(Packet* out) override {
    ScopedLock<std::mutex> guard(mutex_);
    if (inbox_.empty()) {
      return false;
    }
    *out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  }

  std::size_t PendingCount() const override {
    ScopedLock<std::mutex> guard(mutex_);
    return inbox_.size();
  }

  NodeId node() const override { return node_; }

  void SetDeliveryCallback(std::function<void()> callback) {
    ScopedLock<std::mutex> guard(mutex_);
    delivery_callback_ = std::move(callback);
  }

 private:
  ThreadFabric& fabric_;
  NodeId node_;
  mutable std::mutex mutex_;
  std::deque<Packet> inbox_ FLIPC_GUARDED_BY(mutex_);
  std::function<void()> delivery_callback_ FLIPC_GUARDED_BY(mutex_);
};

ThreadFabric::ThreadFabric(std::uint32_t node_count) {
  wires_.reserve(node_count);
  for (NodeId n = 0; n < node_count; ++n) {
    wires_.push_back(std::make_unique<ThreadWire>(*this, n));
  }
}

ThreadFabric::~ThreadFabric() = default;

Wire& ThreadFabric::wire(NodeId node) { return *wires_[node]; }

void ThreadFabric::SetDeliveryCallback(NodeId node, std::function<void()> callback) {
  wires_[node]->SetDeliveryCallback(std::move(callback));
}

}  // namespace flipc::simnet
