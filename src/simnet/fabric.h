// Fabrics: the interconnect a messaging engine sends packets through.
//
// A Fabric owns one Wire per node. Wires are reliable and preserve order
// between each (source, destination) node pair — the property FLIPC's
// optimistic transport depends on ("a reliable transport that preserves
// order for messages sent from the same source endpoint to the same
// destination endpoint"). Two implementations:
//
//   * SimFabric    — discrete-event simulated; delivery times come from a
//     LinkModel, sends serialize at the source interface, and an optional
//     fault injector can drop packets (used only by tests probing how the
//     layers above would misbehave on an unreliable interconnect).
//   * ThreadFabric — real-concurrency; lock-guarded in-order delivery
//     queues for the examples and stress tests.
#ifndef SRC_SIMNET_FABRIC_H_
#define SRC_SIMNET_FABRIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/simnet/des.h"
#include "src/simnet/link_model.h"
#include "src/simnet/packet.h"

namespace flipc::simnet {

class Wire {
 public:
  virtual ~Wire() = default;

  // Queues a packet for transmission. src_node is filled in by the wire.
  virtual Status Send(Packet packet) = 0;

  // Retrieves the next delivered packet, if any.
  virtual bool Poll(Packet* out) = 0;

  // Number of packets delivered and waiting.
  virtual std::size_t PendingCount() const = 0;

  virtual NodeId node() const = 0;
};

class Fabric {
 public:
  virtual ~Fabric() = default;

  virtual std::uint32_t node_count() const = 0;
  virtual Wire& wire(NodeId node) = 0;

  // Registers a callback fired when a packet is delivered to `node`
  // (used by engine drivers to wake an idle engine).
  virtual void SetDeliveryCallback(NodeId node, std::function<void()> callback) = 0;
};

// ----------------------------------------------------------------------------

class SimFabric final : public Fabric {
 public:
  struct Options {
    // Probability of silently dropping a packet (tests only; FLIPC assumes
    // a reliable interconnect, and the default models that).
    double drop_probability = 0.0;
    std::uint64_t fault_seed = 1;
  };

  SimFabric(Simulator& sim, std::unique_ptr<LinkModel> link_model, std::uint32_t node_count)
      : SimFabric(sim, std::move(link_model), node_count, Options()) {}
  SimFabric(Simulator& sim, std::unique_ptr<LinkModel> link_model, std::uint32_t node_count,
            Options options);
  ~SimFabric() override;

  std::uint32_t node_count() const override { return static_cast<std::uint32_t>(wires_.size()); }
  Wire& wire(NodeId node) override;
  void SetDeliveryCallback(NodeId node, std::function<void()> callback) override;

  const LinkModel& link_model() const { return *link_model_; }

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_dropped_by_fabric() const { return packets_dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  class SimWire;

  Status SendFrom(NodeId src, Packet packet);

  Simulator& sim_;
  std::unique_ptr<LinkModel> link_model_;
  Options options_;
  Rng fault_rng_;

  std::vector<std::unique_ptr<SimWire>> wires_;
  // Time each source interface becomes free (sends serialize).
  std::vector<TimeNs> link_free_at_;
  // Last delivery time per (src, dst) to enforce FIFO even if a later,
  // smaller packet would otherwise overtake.
  std::vector<TimeNs> last_arrival_;

  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

// ----------------------------------------------------------------------------

class ThreadFabric final : public Fabric {
 public:
  explicit ThreadFabric(std::uint32_t node_count);
  ~ThreadFabric() override;

  std::uint32_t node_count() const override { return static_cast<std::uint32_t>(wires_.size()); }
  Wire& wire(NodeId node) override;
  void SetDeliveryCallback(NodeId node, std::function<void()> callback) override;

 private:
  class ThreadWire;

  std::vector<std::unique_ptr<ThreadWire>> wires_;
};

}  // namespace flipc::simnet

#endif  // SRC_SIMNET_FABRIC_H_
