// Fabrics: the interconnect a messaging engine sends packets through.
//
// A Fabric owns one Wire per node. Wires are reliable and preserve order
// between each (source, destination) node pair — the property FLIPC's
// optimistic transport depends on ("a reliable transport that preserves
// order for messages sent from the same source endpoint to the same
// destination endpoint"). Two implementations:
//
//   * SimFabric    — discrete-event simulated; delivery times come from a
//     LinkModel, sends serialize at the source interface, and an optional
//     fault injector can drop packets (used only by tests probing how the
//     layers above would misbehave on an unreliable interconnect).
//   * ThreadFabric — real-concurrency; lock-guarded in-order delivery
//     queues for the examples and stress tests.
#ifndef SRC_SIMNET_FABRIC_H_
#define SRC_SIMNET_FABRIC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/types.h"
#include "src/simnet/des.h"
#include "src/simnet/link_model.h"
#include "src/simnet/packet.h"

namespace flipc::simnet {

class Wire {
 public:
  virtual ~Wire() = default;

  // Queues a packet for transmission. src_node is filled in by the wire.
  virtual Status Send(Packet packet) = 0;

  // Retrieves the next delivered packet, if any.
  virtual bool Poll(Packet* out) = 0;

  // Number of packets delivered and waiting.
  virtual std::size_t PendingCount() const = 0;

  virtual NodeId node() const = 0;
};

class Fabric {
 public:
  virtual ~Fabric() = default;

  virtual std::uint32_t node_count() const = 0;
  virtual Wire& wire(NodeId node) = 0;

  // Registers a callback fired when a packet is delivered to `node`
  // (used by engine drivers to wake an idle engine).
  virtual void SetDeliveryCallback(NodeId node, std::function<void()> callback) = 0;
};

// ----------------------------------------------------------------------------

// A seeded, DES-scheduled failure-injection plan for SimFabric.
//
// FLIPC assumes a reliable interconnect; the fault plan exists so tests can
// probe how the layers above misbehave when that assumption is violated —
// and prove that runs replay bit-identically.
//
// Seeding contract (the determinism tests depend on every clause):
//   * All plan randomness comes from ONE xoshiro generator seeded with
//     `seed` at fabric construction (separate from the legacy
//     drop_probability stream, which keeps its own draws for backward
//     compatibility).
//   * The generator advances exactly once per probabilistic decision: one
//     draw per matching LinkFault whose drop_probability is in (0, 1),
//     evaluated in rule-list order, per SendFrom call. Deterministic rules
//     — down links, node-down windows, partitions, probabilities of
//     exactly 0 or 1, and delays — consume NO randomness.
//   * SendFrom calls occur in discrete-event order, which the simulator
//     makes deterministic, so the same plan driving the same workload
//     yields a byte-identical fault-event log (FormatFaultLog).
// Corollary: editing the rule list (even reordering entries) legitimately
// changes the draw sequence and therefore the log.
struct FaultPlan {
  static constexpr NodeId kAnyNode = kInvalidNode;  // wildcard endpoint match

  // Per-link fault, active while start <= Now() < end at send time.
  struct LinkFault {
    NodeId src = kAnyNode;
    NodeId dst = kAnyNode;
    TimeNs start = 0;
    TimeNs end = kTimeNever;
    bool down = false;              // drop every matching packet
    double drop_probability = 0.0;  // else drop with this probability
    DurationNs extra_delay_ns = 0;  // surviving packets arrive this much later
  };

  // Node off the fabric (both directions) during the window.
  struct NodeFault {
    NodeId node = 0;
    TimeNs start = 0;
    TimeNs end = kTimeNever;
  };

  // Network partition: packets crossing the island boundary (in either
  // direction) are dropped during the window; traffic wholly inside or
  // wholly outside the island is untouched.
  struct Partition {
    std::vector<NodeId> island;
    TimeNs start = 0;
    TimeNs end = kTimeNever;
  };

  std::uint64_t seed = 1;
  std::vector<LinkFault> links;
  std::vector<NodeFault> nodes;
  std::vector<Partition> partitions;

  bool Empty() const { return links.empty() && nodes.empty() && partitions.empty(); }
};

// One entry in the fabric's fault-event log (kept only while the plan is
// non-empty; test machinery, not a product path).
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kLinkDown = 0,   // dropped by a down LinkFault
    kNodeDown = 1,   // dropped by a NodeFault window
    kPartition = 2,  // dropped crossing a partition island boundary
    kRandomDrop = 3, // dropped by a probabilistic LinkFault draw
    kDelay = 4,      // delivered, but delayed by extra_delay_ns
  };
  TimeNs time = 0;          // virtual send time
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t seq = 0;    // fabric-wide send ordinal
  Kind kind = Kind::kRandomDrop;
  DurationNs delay_ns = 0;  // kDelay: total extra delay applied
};

std::string_view FaultEventKindName(FaultEvent::Kind kind);

// Canonical one-line-per-event serialization. Two runs of the same seeded
// plan over the same workload produce byte-identical strings — the
// determinism tests compare exactly this.
std::string FormatFaultLog(const std::vector<FaultEvent>& events);

class SimFabric final : public Fabric {
 public:
  struct Options {
    // Probability of silently dropping a packet (tests only; FLIPC assumes
    // a reliable interconnect, and the default models that). Draws from its
    // own fault_seed-seeded stream, independent of the fault plan's.
    double drop_probability = 0.0;
    std::uint64_t fault_seed = 1;
    // Scheduled fault injection (drops, delays, outages, partitions); an
    // empty plan (the default) leaves the fabric perfectly reliable and
    // keeps the fault log empty.
    FaultPlan fault_plan;
  };

  SimFabric(Simulator& sim, std::unique_ptr<LinkModel> link_model, std::uint32_t node_count)
      : SimFabric(sim, std::move(link_model), node_count, Options()) {}
  SimFabric(Simulator& sim, std::unique_ptr<LinkModel> link_model, std::uint32_t node_count,
            Options options);
  ~SimFabric() override;

  std::uint32_t node_count() const override { return static_cast<std::uint32_t>(wires_.size()); }
  Wire& wire(NodeId node) override;
  void SetDeliveryCallback(NodeId node, std::function<void()> callback) override;

  const LinkModel& link_model() const { return *link_model_; }

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_dropped_by_fabric() const { return packets_dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  // The fault-event log (empty unless the fault plan is non-empty).
  const std::vector<FaultEvent>& fault_events() const { return fault_events_; }
  void ClearFaultEvents() { fault_events_.clear(); }

 private:
  class SimWire;

  Status SendFrom(NodeId src, Packet packet);

  // Evaluates the fault plan for a packet sent now. Returns true when the
  // packet is dropped (the event has been logged); otherwise adds any
  // matching delays to *extra_delay and logs one kDelay event if non-zero.
  bool ApplyFaultPlan(NodeId src, NodeId dst, std::uint64_t seq,
                      DurationNs* extra_delay);

  Simulator& sim_;
  std::unique_ptr<LinkModel> link_model_;
  Options options_;
  Rng fault_rng_;
  Rng plan_rng_;
  std::vector<FaultEvent> fault_events_;

  std::vector<std::unique_ptr<SimWire>> wires_;
  // Time each source interface becomes free (sends serialize).
  std::vector<TimeNs> link_free_at_;
  // Last delivery time per (src, dst) to enforce FIFO even if a later,
  // smaller packet would otherwise overtake.
  std::vector<TimeNs> last_arrival_;

  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

// ----------------------------------------------------------------------------

class ThreadFabric final : public Fabric {
 public:
  explicit ThreadFabric(std::uint32_t node_count);
  ~ThreadFabric() override;

  std::uint32_t node_count() const override { return static_cast<std::uint32_t>(wires_.size()); }
  Wire& wire(NodeId node) override;
  void SetDeliveryCallback(NodeId node, std::function<void()> callback) override;

 private:
  class ThreadWire;

  std::vector<std::unique_ptr<ThreadWire>> wires_;
};

}  // namespace flipc::simnet

#endif  // SRC_SIMNET_FABRIC_H_
