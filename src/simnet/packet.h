// The inter-node packet carried by a fabric.
//
// FLIPC's optimistic transport sends each fixed-size message as exactly one
// packet with no acknowledgment or feedback; the packet header carries the
// protocol id (the Paragon message coprocessor ran several protocols in one
// framework — FLIPC coexisted with the OSF/1 AD protocols) plus source and
// destination endpoint addresses.
#ifndef SRC_SIMNET_PACKET_H_
#define SRC_SIMNET_PACKET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/types.h"

namespace flipc::simnet {

// Protocol ids multiplexed over one fabric (the engine's protocol framework
// dispatches on this).
inline constexpr std::uint32_t kProtocolFlipc = 1;
inline constexpr std::uint32_t kProtocolKkt = 2;
inline constexpr std::uint32_t kProtocolKernelIpc = 3;  // stand-in for OSF/1 AD traffic
inline constexpr std::uint32_t kProtocolBaseline = 4;   // NX/PAM/SUNMOS models
inline constexpr std::uint32_t kProtocolRma = 5;        // remote memory access extension

// Modeled wire overhead per packet (routing header, CRC); counts toward
// serialization time but is not part of the payload.
inline constexpr std::size_t kPacketWireHeaderBytes = 16;

struct Packet {
  NodeId src_node = kInvalidNode;
  NodeId dst_node = kInvalidNode;
  std::uint32_t protocol = 0;
  std::uint32_t src_addr = 0xffffffffu;  // packed flipc::Address
  std::uint32_t dst_addr = 0xffffffffu;  // packed flipc::Address
  std::uint64_t seq = 0;                 // per-sender sequence / protocol token
  std::uint32_t kind = 0;                // protocol-specific discriminator
  std::vector<std::byte> payload;

  std::size_t wire_size() const { return payload.size() + kPacketWireHeaderBytes; }
};

}  // namespace flipc::simnet

#endif  // SRC_SIMNET_PACKET_H_
