// Discrete-event simulation core.
//
// The quantitative benchmarks replay the paper's experiments under virtual
// time: the same communication-buffer data structures and messaging-engine
// code execute, but every operation charges its cost to a virtual clock from
// the calibrated platform model instead of being timed on 2026 hardware.
// The simulator is single-threaded and deterministic: events at equal times
// fire in scheduling order.
#ifndef SRC_SIMNET_DES_H_
#define SRC_SIMNET_DES_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/clock.h"
#include "src/base/types.h"

namespace flipc::simnet {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return clock_.NowNs(); }
  const Clock& clock() const { return clock_; }

  // Schedules `fn` at absolute virtual time `t` (>= Now()).
  void ScheduleAt(TimeNs t, std::function<void()> fn) {
    events_.push(Event{t < Now() ? Now() : t, next_seq_++, std::move(fn)});
  }

  void ScheduleAfter(DurationNs delay, std::function<void()> fn) {
    ScheduleAt(Now() + delay, std::move(fn));
  }

  // Runs the earliest event; returns false when none remain.
  bool Step() {
    if (events_.empty()) {
      return false;
    }
    // Move the event out before firing: the handler may schedule new events.
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    clock_.AdvanceTo(event.time);
    event.fn();
    ++executed_;
    return true;
  }

  // Runs until the event queue drains.
  void Run() {
    while (Step()) {
    }
  }

  // Runs events with time <= deadline; the clock ends at the later of the
  // deadline and the last executed event.
  void RunUntil(TimeNs deadline) {
    while (!events_.empty() && events_.top().time <= deadline) {
      Step();
    }
    if (clock_.NowNs() < deadline) {
      clock_.AdvanceTo(deadline);
    }
  }

  void RunFor(DurationNs duration) { RunUntil(Now() + duration); }

  // Runs until `done` returns true or the queue drains. Returns whether the
  // predicate was satisfied.
  bool RunWhile(const std::function<bool()>& pending) {
    while (pending()) {
      if (!Step()) {
        return false;
      }
    }
    return true;
  }

  std::size_t pending_events() const { return events_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimeNs time;
    std::uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  ManualClock clock_;
};

// Accumulates modeled execution cost. The messaging engine charges its
// per-operation costs here; under the DES the driver advances virtual time
// by the accumulated amount, and in real-concurrency mode a null sink is
// used and charging is a no-op.
class CostAccumulator {
 public:
  void Charge(DurationNs ns) { total_ += ns; }
  DurationNs Take() {
    const DurationNs t = total_;
    total_ = 0;
    return t;
  }
  DurationNs total() const { return total_; }

 private:
  DurationNs total_ = 0;
};

}  // namespace flipc::simnet

#endif  // SRC_SIMNET_DES_H_
