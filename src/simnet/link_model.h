// Link cost models for the three platforms the paper implemented FLIPC on:
// the Paragon mesh interconnect, Ethernet PC clusters, and SCSI-bus PC
// clusters.
//
// A link model answers two questions about moving one packet:
//   * SerializationNs — how long the sender's interface is occupied putting
//     the packet on the medium (back-to-back sends queue behind this);
//   * TransitNs       — time from the end of serialization at the source to
//     delivery at the destination interface (routing, propagation).
//
// The Paragon numbers are calibrated against the paper: hardware peak
// 200 MB/s (5 ns/byte serialization), and the fixed wire component sized so
// the end-to-end FLIPC pipeline reproduces Figure 4 (see
// src/engine/platform_model.h for the full decomposition).
#ifndef SRC_SIMNET_LINK_MODEL_H_
#define SRC_SIMNET_LINK_MODEL_H_

#include <cstdint>
#include <cstdlib>

#include "src/base/types.h"

namespace flipc::simnet {

class LinkModel {
 public:
  virtual ~LinkModel() = default;

  virtual DurationNs SerializationNs(NodeId src, NodeId dst, std::size_t wire_bytes) const = 0;
  virtual DurationNs TransitNs(NodeId src, NodeId dst, std::size_t wire_bytes) const = 0;
};

// Paragon-style 2-D mesh with XY wormhole routing. With wormhole routing the
// message head reaches the destination after per-hop router delays while the
// body streams behind it, so transit is hops * per_hop and the per-byte cost
// shows up only in serialization.
class MeshLinkModel final : public LinkModel {
 public:
  struct Params {
    std::uint32_t width = 4;            // mesh X dimension
    DurationNs per_hop_ns = 40;         // router cut-through latency
    DurationNs per_byte_ns_x100 = 500;  // 5.00 ns/byte == 200 MB/s hardware peak
    DurationNs fixed_ns = 100;          // source injection + destination ejection
  };

  MeshLinkModel() : MeshLinkModel(Params()) {}
  explicit MeshLinkModel(Params params) : params_(params) {}

  std::uint32_t Hops(NodeId src, NodeId dst) const {
    const auto sx = static_cast<std::int32_t>(src % params_.width);
    const auto sy = static_cast<std::int32_t>(src / params_.width);
    const auto dx = static_cast<std::int32_t>(dst % params_.width);
    const auto dy = static_cast<std::int32_t>(dst / params_.width);
    return static_cast<std::uint32_t>(std::abs(sx - dx) + std::abs(sy - dy));
  }

  DurationNs SerializationNs(NodeId, NodeId, std::size_t wire_bytes) const override {
    return static_cast<DurationNs>(wire_bytes) * params_.per_byte_ns_x100 / 100;
  }

  DurationNs TransitNs(NodeId src, NodeId dst, std::size_t) const override {
    return params_.fixed_ns + static_cast<DurationNs>(Hops(src, dst)) * params_.per_hop_ns;
  }

  const Params& params() const { return params_; }

 private:
  Params params_;
};

// 10 Mb/s-class shared Ethernet (the paper's PC development cluster era):
// high serialization cost, modest fixed latency.
class EthernetLinkModel final : public LinkModel {
 public:
  struct Params {
    DurationNs per_byte_ns = 800;   // ~1.25 MB/s effective
    DurationNs fixed_ns = 50'000;   // driver + adapter turnaround
  };

  EthernetLinkModel() : EthernetLinkModel(Params()) {}
  explicit EthernetLinkModel(Params params) : params_(params) {}

  DurationNs SerializationNs(NodeId, NodeId, std::size_t wire_bytes) const override {
    return static_cast<DurationNs>(wire_bytes) * params_.per_byte_ns;
  }

  DurationNs TransitNs(NodeId, NodeId, std::size_t) const override { return params_.fixed_ns; }

 private:
  Params params_;
};

// Fast-SCSI-2 bus used as a host-to-host link (paper reference [3]):
// 10 MB/s transfer once the bus is won, plus arbitration/selection overhead
// charged per packet.
class ScsiLinkModel final : public LinkModel {
 public:
  struct Params {
    DurationNs per_byte_ns = 100;       // 10 MB/s synchronous transfer
    DurationNs arbitration_ns = 12'000; // arbitration + (re)selection phases
    DurationNs fixed_ns = 4'000;        // command/status phases
  };

  ScsiLinkModel() : ScsiLinkModel(Params()) {}
  explicit ScsiLinkModel(Params params) : params_(params) {}

  DurationNs SerializationNs(NodeId, NodeId, std::size_t wire_bytes) const override {
    return params_.arbitration_ns + static_cast<DurationNs>(wire_bytes) * params_.per_byte_ns;
  }

  DurationNs TransitNs(NodeId, NodeId, std::size_t) const override { return params_.fixed_ns; }

 private:
  Params params_;
};

}  // namespace flipc::simnet

#endif  // SRC_SIMNET_LINK_MODEL_H_
