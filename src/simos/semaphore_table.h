// Semaphore table: the kernel-object namespace behind endpoint semaphore
// ids.
//
// Endpoints store only a small integer semaphore id in the communication
// buffer (kernel objects cannot live in user-shared memory — the paper's
// Figure 1 shows the synchronization arrows crossing into the OS kernel).
// The messaging engine signals by id through this table; the application
// waits on the semaphore it registered.
#ifndef SRC_SIMOS_SEMAPHORE_TABLE_H_
#define SRC_SIMOS_SEMAPHORE_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/status.h"
#include "src/base/thread_annotations.h"
#include "src/simos/real_time_semaphore.h"

namespace flipc::simos {

class SemaphoreTable {
 public:
  explicit SemaphoreTable(std::uint32_t capacity = 256);

  // Creates a semaphore and returns its id.
  Result<std::uint32_t> Allocate();

  // Destroys a semaphore. Any threads still blocked on it are woken by the
  // caller's responsibility; freeing a semaphore with waiters is an error.
  Status Free(std::uint32_t id);

  // nullptr when the id is invalid or unallocated.
  RealTimeSemaphore* Get(std::uint32_t id);

  // Engine-side signal: posts the semaphore if the id is live; otherwise a
  // no-op (the endpoint may have been torn down concurrently).
  void Signal(std::uint32_t id);

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<RealTimeSemaphore>> slots_
      FLIPC_GUARDED_BY(mutex_);
};

}  // namespace flipc::simos

#endif  // SRC_SIMOS_SEMAPHORE_TABLE_H_
