#include "src/simos/sim_scheduler.h"

#include <utility>

namespace flipc::simos {

void SimScheduler::Submit(Priority priority, DurationNs duration, std::function<void()> body) {
  queue_.push(Item{priority, next_seq_++, duration, std::move(body)});
  if (!running_) {
    DispatchNext();
  }
}

void SimScheduler::DispatchNext() {
  if (queue_.empty()) {
    running_ = false;
    return;
  }
  running_ = true;
  Item item = std::move(const_cast<Item&>(queue_.top()));
  queue_.pop();

  const DurationNs total = dispatch_cost_ns_ + item.duration;
  busy_ns_ += total;
  sim_.ScheduleAfter(total, [this, body = std::move(item.body)]() {
    if (body) {
      body();
    }
    DispatchNext();
  });
}

}  // namespace flipc::simos
