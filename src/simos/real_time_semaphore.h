// Real-time semaphore (paper, Architecture and Design).
//
// "FLIPC provides a real time semaphore option that causes the thread
// awakened by a message arrival to be presented to the scheduler in the OS
// kernel, allowing it to determine when it is appropriate to execute that
// thread." — i.e. no interrupting upcalls; arrival makes a thread *runnable*
// and the scheduler picks the most important runnable thread.
//
// This implementation emulates that on host threads: Post() grants a permit;
// among the threads blocked in Wait(), the one with the highest priority
// (ties broken FIFO) takes each permit. This reproduces the scheduling
// property the paper cares about — a low-priority receiver cannot steal a
// wakeup from a high-priority one.
#ifndef SRC_SIMOS_REAL_TIME_SEMAPHORE_H_
#define SRC_SIMOS_REAL_TIME_SEMAPHORE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>

#include "src/base/status.h"
#include "src/base/thread_annotations.h"
#include "src/base/types.h"

namespace flipc::simos {

using Priority = std::uint32_t;
inline constexpr Priority kMinPriority = 0;
inline constexpr Priority kMaxPriority = 0xffffffffu;

class RealTimeSemaphore {
 public:
  RealTimeSemaphore() = default;
  RealTimeSemaphore(const RealTimeSemaphore&) = delete;
  RealTimeSemaphore& operator=(const RealTimeSemaphore&) = delete;

  // Adds one permit and wakes the highest-priority waiter, if any.
  // Callable from any thread, including the messaging engine's.
  void Post();

  // Blocks until a permit is granted to this caller. Returns kOk, or
  // kTimedOut if `timeout_ns` elapses first (negative = wait forever).
  // Opted out of thread-safety analysis: the condvar wait needs
  // std::unique_lock, which the analysis cannot see through.
  Status Wait(Priority priority, DurationNs timeout_ns = -1)
      FLIPC_NO_THREAD_SAFETY_ANALYSIS;

  // Non-blocking: takes a permit if one is immediately available *and* no
  // higher-priority thread is already waiting for it.
  bool TryWait();

  std::uint32_t permits() const;
  std::uint32_t waiter_count() const;

 private:
  struct Waiter {
    Priority priority;
    std::uint64_t ticket;  // FIFO tie-break
    bool granted = false;
    std::condition_variable cv;
  };

  // Grants available permits to the best waiters.
  void GrantLocked() FLIPC_REQUIRES(mutex_);

  mutable std::mutex mutex_;
  std::uint32_t permits_ FLIPC_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_ticket_ FLIPC_GUARDED_BY(mutex_) = 0;
  std::list<Waiter> waiters_ FLIPC_GUARDED_BY(mutex_);
};

}  // namespace flipc::simos

#endif  // SRC_SIMOS_REAL_TIME_SEMAPHORE_H_
