// Priority scheduler model for discrete-event simulations.
//
// Models one node's application CPU: tasks submit work items (a duration at
// a priority); the CPU runs the highest-priority pending item to completion
// (non-preemptive, like a kernel that schedules at quantum/dispatch points),
// then picks again. This is the "presented to the scheduler" half of the
// paper's real-time semaphore story: a message arrival makes work *pending*,
// and whether it runs next depends on its priority against other pending
// work — never on interrupt timing.
//
// Used by the real-time isolation experiment (E10) to show that background
// message floods neither steal CPU from, nor buffer resources of, a
// higher-priority stream.
#ifndef SRC_SIMOS_SIM_SCHEDULER_H_
#define SRC_SIMOS_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/types.h"
#include "src/simnet/des.h"
#include "src/simos/real_time_semaphore.h"

namespace flipc::simos {

class SimScheduler {
 public:
  explicit SimScheduler(simnet::Simulator& sim) : sim_(sim) {}
  SimScheduler(const SimScheduler&) = delete;
  SimScheduler& operator=(const SimScheduler&) = delete;

  // Submits a work item: `body` runs for `duration` of CPU time at
  // `priority`; `on_complete` (optional) fires when it finishes.
  void Submit(Priority priority, DurationNs duration, std::function<void()> body);

  // Total CPU time consumed so far.
  DurationNs busy_ns() const { return busy_ns_; }

  // Dispatch latency charged when the CPU picks a new item (context switch
  // plus scheduler bookkeeping).
  void set_dispatch_cost_ns(DurationNs ns) { dispatch_cost_ns_ = ns; }

  std::size_t pending() const { return queue_.size(); }
  bool idle() const { return !running_; }

 private:
  struct Item {
    Priority priority;
    std::uint64_t seq;
    DurationNs duration;
    std::function<void()> body;

    bool operator<(const Item& other) const {
      // priority_queue is a max-heap: higher priority first, FIFO within.
      return priority != other.priority ? priority < other.priority : seq > other.seq;
    }
  };

  void DispatchNext();

  simnet::Simulator& sim_;
  std::priority_queue<Item> queue_;
  bool running_ = false;
  std::uint64_t next_seq_ = 0;
  DurationNs busy_ns_ = 0;
  DurationNs dispatch_cost_ns_ = 500;
};

}  // namespace flipc::simos

#endif  // SRC_SIMOS_SIM_SCHEDULER_H_
