#include "src/simos/real_time_semaphore.h"

#include <chrono>

#include "src/base/hotpath.h"

namespace flipc::simos {

void RealTimeSemaphore::GrantLocked() {
  while (permits_ > 0) {
    Waiter* best = nullptr;
    for (Waiter& w : waiters_) {
      if (w.granted) {
        continue;
      }
      if (best == nullptr || w.priority > best->priority ||
          (w.priority == best->priority && w.ticket < best->ticket)) {
        best = &w;
      }
    }
    if (best == nullptr) {
      return;
    }
    --permits_;
    best->granted = true;
    best->cv.notify_one();
  }
}

void RealTimeSemaphore::Post() {
  // Blocking primitives live in the (simulated) kernel by the paper's
  // design; reaching one from an armed hot-path scope is a violation
  // unless the caller documented an exemption (the engine's handoff).
  hotpath::OnBlockingCall("RealTimeSemaphore::Post");
  ScopedLock<std::mutex> guard(mutex_);
  ++permits_;
  GrantLocked();
}

Status RealTimeSemaphore::Wait(Priority priority, DurationNs timeout_ns) {
  hotpath::OnBlockingCall("RealTimeSemaphore::Wait");
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = waiters_.emplace(waiters_.end());
  it->priority = priority;
  it->ticket = next_ticket_++;
  GrantLocked();

  auto granted = [&] { return it->granted; };
  if (timeout_ns < 0) {
    it->cv.wait(lock, granted);
  } else if (!it->cv.wait_for(lock, std::chrono::nanoseconds(timeout_ns), granted)) {
    waiters_.erase(it);
    return TimedOutStatus();
  }
  waiters_.erase(it);
  return OkStatus();
}

bool RealTimeSemaphore::TryWait() {
  ScopedLock<std::mutex> guard(mutex_);
  if (permits_ == 0) {
    return false;
  }
  // Permits already spoken for by blocked waiters are not stealable.
  std::uint32_t ungranted_waiters = 0;
  for (const Waiter& w : waiters_) {
    if (!w.granted) {
      ++ungranted_waiters;
    }
  }
  if (ungranted_waiters > 0) {
    return false;
  }
  --permits_;
  return true;
}

std::uint32_t RealTimeSemaphore::permits() const {
  ScopedLock<std::mutex> guard(mutex_);
  return permits_;
}

std::uint32_t RealTimeSemaphore::waiter_count() const {
  ScopedLock<std::mutex> guard(mutex_);
  return static_cast<std::uint32_t>(waiters_.size());
}

}  // namespace flipc::simos
