#include "src/simos/semaphore_table.h"

namespace flipc::simos {

SemaphoreTable::SemaphoreTable(std::uint32_t capacity) : slots_(capacity) {}

Result<std::uint32_t> SemaphoreTable::Allocate() {
  ScopedLock<std::mutex> guard(mutex_);
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] == nullptr) {
      slots_[i] = std::make_unique<RealTimeSemaphore>();
      return i;
    }
  }
  return ResourceExhaustedStatus();
}

Status SemaphoreTable::Free(std::uint32_t id) {
  ScopedLock<std::mutex> guard(mutex_);
  if (id >= slots_.size() || slots_[id] == nullptr) {
    return NotFoundStatus();
  }
  if (slots_[id]->waiter_count() != 0) {
    return FailedPreconditionStatus();
  }
  slots_[id].reset();
  return OkStatus();
}

RealTimeSemaphore* SemaphoreTable::Get(std::uint32_t id) {
  ScopedLock<std::mutex> guard(mutex_);
  return id < slots_.size() ? slots_[id].get() : nullptr;
}

void SemaphoreTable::Signal(std::uint32_t id) {
  RealTimeSemaphore* semaphore = Get(id);
  if (semaphore != nullptr) {
    semaphore->Post();
  }
}

}  // namespace flipc::simos
