#include "src/flipc/cluster.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

namespace flipc {

// ================================ Cluster ===================================

Result<std::unique_ptr<Cluster>> Cluster::Create(const Options& options) {
  auto cluster = std::unique_ptr<Cluster>(new Cluster());
  cluster->fabric_ = std::make_unique<simnet::ThreadFabric>(options.node_count);

  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  unsigned next_cpu = 0;

  for (NodeId n = 0; n < options.node_count; ++n) {
    auto node = std::make_unique<Node>();
    Domain::Options domain_options;
    domain_options.comm = options.comm;
    domain_options.node = n;
    FLIPC_ASSIGN_OR_RETURN(node->domain,
                           Domain::Create(domain_options, &cluster->semaphores_));

    const std::uint32_t shards = node->domain->comm().shard_count();
    cluster->shard_count_ = shards;
    node->handoffs.resize(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      engine::EngineOptions engine_options = options.engine;
      engine_options.shard_id = s;
      auto eng = std::make_unique<engine::MessagingEngine>(
          node->domain->comm(), cluster->fabric_->wire(n), engine_options,
          /*model=*/nullptr, &cluster->semaphores_);
      eng->SetClock(&RealClock::Instance());
      if (s != 0) {
        // Distributor (shard 0) → consumer shard s handoff ring, sized like
        // the doorbell ring: enough slack that only sustained consumer lag
        // parks the distributor.
        node->handoffs[s] = std::make_unique<engine::MessagingEngine::HandoffRing>(
            node->domain->comm().doorbell_capacity(), /*producer_shard=*/0,
            /*consumer_shard=*/s);
        node->engines[0]->SetHandoffOutbox(s, node->handoffs[s].get());
        eng->SetHandoffInbox(node->handoffs[s].get());
      }
      engine::EngineRunner::Options runner_options;
      if (shards > 1 && options.pin_shard_threads) {
        runner_options.pin_cpu = static_cast<int>(next_cpu++ % hw_threads);
        runner_options.warm_touch = true;
      }
      node->engines.push_back(std::move(eng));
      node->runners.push_back(std::make_unique<engine::EngineRunner>(
          *node->engines.back(), runner_options));
    }

    Node* node_ptr = node.get();
    const auto kick_shard = [node_ptr](std::uint32_t shard) {
      if (shard < node_ptr->runners.size()) {
        node_ptr->runners[shard]->Kick();
      }
    };
    for (std::uint32_t s = 0; s < shards; ++s) {
      node->engines[s]->SetShardKick(kick_shard);
    }
    node->domain->SetShardKick(kick_shard);
    // Unqualified kicks (callers that do not know the owning shard) wake
    // everyone; with one shard that degenerates to the classic wiring.
    node->domain->SetEngineKick([node_ptr] {
      for (auto& runner : node_ptr->runners) {
        runner->Kick();
      }
    });
    // Only the distributor polls the wire, so deliveries wake shard 0.
    engine::EngineRunner* distributor = node->runners[0].get();
    cluster->fabric_->SetDeliveryCallback(n, [distributor] { distributor->Kick(); });

    cluster->nodes_.push_back(std::move(node));
  }
  return cluster;
}

Cluster::~Cluster() { Stop(); }

engine::EngineStats Cluster::aggregate_stats(NodeId node) const {
  engine::EngineStats total;
  for (const auto& eng : nodes_[node]->engines) {
    total.Add(eng->stats());
  }
  return total;
}

void Cluster::Start() {
  if (started_) {
    return;
  }
  for (auto& node : nodes_) {
    for (auto& runner : node->runners) {
      runner->Start();
    }
  }
  started_ = true;
}

void Cluster::Stop() {
  if (!started_) {
    return;
  }
  for (auto& node : nodes_) {
    for (auto& runner : node->runners) {
      runner->Stop();
    }
  }
  started_ = false;
}

// =============================== SimCluster =================================

Result<std::unique_ptr<SimCluster>> SimCluster::Create(Options options) {
  auto cluster = std::unique_ptr<SimCluster>(new SimCluster());
  cluster->model_ = options.model;

  std::unique_ptr<simnet::LinkModel> link = std::move(options.link_model);
  if (link == nullptr) {
    simnet::MeshLinkModel::Params mesh;
    mesh.width = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(options.node_count))));
    if (mesh.width == 0) {
      mesh.width = 1;
    }
    link = std::make_unique<simnet::MeshLinkModel>(mesh);
  }
  cluster->fabric_ = std::make_unique<simnet::SimFabric>(cluster->sim_, std::move(link),
                                                         options.node_count);

  for (NodeId n = 0; n < options.node_count; ++n) {
    auto node = std::make_unique<Node>();
    Domain::Options domain_options;
    domain_options.comm = options.comm;
    domain_options.node = n;
    FLIPC_ASSIGN_OR_RETURN(node->domain,
                           Domain::Create(domain_options, &cluster->semaphores_));

    if (options.engine_kind == EngineKind::kKkt) {
      node->engine = std::make_unique<kkt::KktMessagingEngine>(
          node->domain->comm(), cluster->fabric_->wire(n), options.engine, &cluster->model_,
          &options.kkt, &cluster->semaphores_);
    } else {
      node->engine = std::make_unique<engine::MessagingEngine>(
          node->domain->comm(), cluster->fabric_->wire(n), options.engine, &cluster->model_,
          &cluster->semaphores_);
    }
    node->engine->SetClock(&cluster->sim_.clock());
    node->driver = std::make_unique<engine::SimEngineDriver>(cluster->sim_, *node->engine);

    engine::SimEngineDriver* driver = node->driver.get();
    node->domain->SetEngineKick([driver] { driver->Kick(); });
    cluster->fabric_->SetDeliveryCallback(n, [driver] { driver->Kick(); });

    cluster->nodes_.push_back(std::move(node));
  }
  return cluster;
}

SimCluster::~SimCluster() = default;

}  // namespace flipc
