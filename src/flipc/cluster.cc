#include "src/flipc/cluster.h"

#include <cmath>
#include <utility>

namespace flipc {

// ================================ Cluster ===================================

Result<std::unique_ptr<Cluster>> Cluster::Create(const Options& options) {
  auto cluster = std::unique_ptr<Cluster>(new Cluster());
  cluster->fabric_ = std::make_unique<simnet::ThreadFabric>(options.node_count);

  for (NodeId n = 0; n < options.node_count; ++n) {
    auto node = std::make_unique<Node>();
    Domain::Options domain_options;
    domain_options.comm = options.comm;
    domain_options.node = n;
    FLIPC_ASSIGN_OR_RETURN(node->domain,
                           Domain::Create(domain_options, &cluster->semaphores_));
    node->engine = std::make_unique<engine::MessagingEngine>(
        node->domain->comm(), cluster->fabric_->wire(n), options.engine,
        /*model=*/nullptr, &cluster->semaphores_);
    node->engine->SetClock(&RealClock::Instance());
    node->runner = std::make_unique<engine::EngineRunner>(*node->engine);

    engine::EngineRunner* runner = node->runner.get();
    node->domain->SetEngineKick([runner] { runner->Kick(); });
    cluster->fabric_->SetDeliveryCallback(n, [runner] { runner->Kick(); });

    cluster->nodes_.push_back(std::move(node));
  }
  return cluster;
}

Cluster::~Cluster() { Stop(); }

void Cluster::Start() {
  if (started_) {
    return;
  }
  for (auto& node : nodes_) {
    node->runner->Start();
  }
  started_ = true;
}

void Cluster::Stop() {
  if (!started_) {
    return;
  }
  for (auto& node : nodes_) {
    node->runner->Stop();
  }
  started_ = false;
}

// =============================== SimCluster =================================

Result<std::unique_ptr<SimCluster>> SimCluster::Create(Options options) {
  auto cluster = std::unique_ptr<SimCluster>(new SimCluster());
  cluster->model_ = options.model;

  std::unique_ptr<simnet::LinkModel> link = std::move(options.link_model);
  if (link == nullptr) {
    simnet::MeshLinkModel::Params mesh;
    mesh.width = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(options.node_count))));
    if (mesh.width == 0) {
      mesh.width = 1;
    }
    link = std::make_unique<simnet::MeshLinkModel>(mesh);
  }
  cluster->fabric_ = std::make_unique<simnet::SimFabric>(cluster->sim_, std::move(link),
                                                         options.node_count);

  for (NodeId n = 0; n < options.node_count; ++n) {
    auto node = std::make_unique<Node>();
    Domain::Options domain_options;
    domain_options.comm = options.comm;
    domain_options.node = n;
    FLIPC_ASSIGN_OR_RETURN(node->domain,
                           Domain::Create(domain_options, &cluster->semaphores_));

    if (options.engine_kind == EngineKind::kKkt) {
      node->engine = std::make_unique<kkt::KktMessagingEngine>(
          node->domain->comm(), cluster->fabric_->wire(n), options.engine, &cluster->model_,
          &options.kkt, &cluster->semaphores_);
    } else {
      node->engine = std::make_unique<engine::MessagingEngine>(
          node->domain->comm(), cluster->fabric_->wire(n), options.engine, &cluster->model_,
          &cluster->semaphores_);
    }
    node->engine->SetClock(&cluster->sim_.clock());
    node->driver = std::make_unique<engine::SimEngineDriver>(cluster->sim_, *node->engine);

    engine::SimEngineDriver* driver = node->driver.get();
    node->domain->SetEngineKick([driver] { driver->Kick(); });
    cluster->fabric_->SetDeliveryCallback(n, [driver] { driver->Kick(); });

    cluster->nodes_.push_back(std::move(node));
  }
  return cluster;
}

SimCluster::~SimCluster() = default;

}  // namespace flipc
