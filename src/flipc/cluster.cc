#include "src/flipc/cluster.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "src/base/thread_annotations.h"

namespace flipc {

// ================================ Cluster ===================================

Result<std::unique_ptr<Cluster>> Cluster::Create(const Options& options) {
  auto cluster = std::unique_ptr<Cluster>(new Cluster());
  cluster->options_ = options;  // RestartShard rebuilds engines from these.
  cluster->fabric_ = std::make_unique<simnet::ThreadFabric>(options.node_count);

  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  unsigned next_cpu = 0;

  for (NodeId n = 0; n < options.node_count; ++n) {
    auto node = std::make_unique<Node>();
    Domain::Options domain_options;
    domain_options.comm = options.comm;
    domain_options.node = n;
    FLIPC_ASSIGN_OR_RETURN(node->domain,
                           Domain::Create(domain_options, &cluster->semaphores_));

    const std::uint32_t shards = node->domain->comm().shard_count();
    cluster->shard_count_ = shards;
    node->handoffs.resize(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      engine::EngineOptions engine_options = options.engine;
      engine_options.shard_id = s;
      auto eng = std::make_unique<engine::MessagingEngine>(
          node->domain->comm(), cluster->fabric_->wire(n), engine_options,
          /*model=*/nullptr, &cluster->semaphores_);
      eng->SetClock(&RealClock::Instance());
      if (s != 0) {
        // Distributor (shard 0) → consumer shard s handoff ring, sized like
        // the doorbell ring: enough slack that only sustained consumer lag
        // parks the distributor.
        node->handoffs[s] = std::make_unique<engine::MessagingEngine::HandoffRing>(
            node->domain->comm().doorbell_capacity(), /*producer_shard=*/0,
            /*consumer_shard=*/s);
        node->engines[0]->SetHandoffOutbox(s, node->handoffs[s].get());
        eng->SetHandoffInbox(node->handoffs[s].get());
      }
      engine::EngineRunner::Options runner_options;
      runner_options.max_idle_park_ns = options.max_idle_park_ns;
      if (shards > 1 && options.pin_shard_threads) {
        runner_options.pin_cpu = static_cast<int>(next_cpu++ % hw_threads);
        runner_options.warm_touch = true;
      }
      node->engines.push_back(std::move(eng));
      node->runners.push_back(std::make_unique<engine::EngineRunner>(
          *node->engines.back(), runner_options));
      node->runner_options.push_back(runner_options);
    }

    // Every kick null-checks its runner slot under the node's runner mutex:
    // between KillShard and RestartShard the slot is empty, and a kick for
    // a dead shard must be a no-op, not a crash. (Kicking is already off
    // the product hot path — a host-thread parking artifact.)
    Node* node_ptr = node.get();
    node->kick_shard = [node_ptr](std::uint32_t shard) {
      ScopedLock<std::mutex> guard(node_ptr->runner_mutex);
      if (shard < node_ptr->runners.size() && node_ptr->runners[shard] != nullptr) {
        node_ptr->runners[shard]->Kick();
      }
    };
    for (std::uint32_t s = 0; s < shards; ++s) {
      node->engines[s]->SetShardKick(node->kick_shard);
    }
    node->domain->SetShardKick(node->kick_shard);
    // Unqualified kicks (callers that do not know the owning shard) wake
    // everyone; with one shard that degenerates to the classic wiring.
    node->domain->SetEngineKick([node_ptr] {
      ScopedLock<std::mutex> guard(node_ptr->runner_mutex);
      for (auto& runner : node_ptr->runners) {
        if (runner != nullptr) {
          runner->Kick();
        }
      }
    });
    // Only the distributor polls the wire, so deliveries wake shard 0 —
    // through the null-safe kick, so a killed distributor tolerates
    // deliveries arriving while it is down.
    cluster->fabric_->SetDeliveryCallback(n, [node_ptr] { node_ptr->kick_shard(0); });

    cluster->nodes_.push_back(std::move(node));
  }
  return cluster;
}

Cluster::~Cluster() { Stop(); }

engine::EngineStats Cluster::aggregate_stats(NodeId node) const {
  engine::EngineStats total;
  ScopedLock<std::mutex> guard(nodes_[node]->runner_mutex);
  for (const auto& eng : nodes_[node]->engines) {
    if (eng != nullptr) {
      total.Add(eng->stats());
    }
  }
  return total;
}

void Cluster::Start() {
  if (started_) {
    return;
  }
  for (auto& node : nodes_) {
    ScopedLock<std::mutex> guard(node->runner_mutex);
    for (auto& runner : node->runners) {
      if (runner != nullptr) {
        runner->Start();
      }
    }
  }
  started_ = true;
}

void Cluster::Stop() {
  if (!started_) {
    return;
  }
  for (auto& node : nodes_) {
    // Move the runners out under the mutex, join outside it: a dying loop
    // thread may be inside a kick lambda that takes the same mutex.
    std::vector<std::unique_ptr<engine::EngineRunner>> doomed;
    {
      ScopedLock<std::mutex> guard(node->runner_mutex);
      doomed.resize(node->runners.size());
      for (std::size_t s = 0; s < node->runners.size(); ++s) {
        doomed[s] = std::move(node->runners[s]);
      }
    }
    for (auto& runner : doomed) {
      if (runner != nullptr) {
        runner->Stop();
      }
    }
    {
      ScopedLock<std::mutex> guard(node->runner_mutex);
      for (std::size_t s = 0; s < node->runners.size(); ++s) {
        node->runners[s] = std::move(doomed[s]);
      }
    }
  }
  started_ = false;
}

bool Cluster::shard_alive(NodeId node, std::uint32_t shard) const {
  ScopedLock<std::mutex> guard(nodes_[node]->runner_mutex);
  return shard < nodes_[node]->engines.size() &&
         nodes_[node]->engines[shard] != nullptr;
}

bool Cluster::KillShard(NodeId node_id, std::uint32_t shard) {
  Node& node = *nodes_[node_id];
  std::unique_ptr<engine::EngineRunner> runner;
  {
    ScopedLock<std::mutex> guard(node.runner_mutex);
    if (shard >= node.engines.size() || node.engines[shard] == nullptr) {
      return false;
    }
    runner = std::move(node.runners[shard]);
  }
  // Join outside the mutex (the loop thread's last act may be a kick that
  // takes it). After the join nothing references the engine; destroy it.
  if (runner != nullptr) {
    runner->Stop();
    runner.reset();
  }
  ScopedLock<std::mutex> guard(node.runner_mutex);
  node.engines[shard].reset();
  return true;
}

bool Cluster::RestartShard(NodeId node_id, std::uint32_t shard) {
  Node& node = *nodes_[node_id];
  {
    ScopedLock<std::mutex> guard(node.runner_mutex);
    if (shard >= node.engines.size() || node.engines[shard] != nullptr) {
      return false;
    }
  }
  // Build and recover the engine before publishing it: RecoverFromBuffer
  // must run in the quiescent role, before any runner can step the shard.
  engine::EngineOptions engine_options = options_.engine;
  engine_options.shard_id = shard;
  auto eng = std::make_unique<engine::MessagingEngine>(
      node.domain->comm(), fabric_->wire(node_id), engine_options,
      /*model=*/nullptr, &semaphores_);
  eng->SetClock(&RealClock::Instance());
  // The Node-owned handoff rings survived the crash (cursors and the
  // producer's private position live in the ring object); only the
  // engine's pointers need rewiring.
  if (shard == 0) {
    for (std::uint32_t s = 1; s < node.handoffs.size(); ++s) {
      eng->SetHandoffOutbox(s, node.handoffs[s].get());
    }
  } else {
    eng->SetHandoffInbox(node.handoffs[shard].get());
  }
  eng->SetShardKick(node.kick_shard);
  eng->RecoverFromBuffer();

  auto runner = std::make_unique<engine::EngineRunner>(*eng, node.runner_options[shard]);
  engine::EngineRunner* started = nullptr;
  {
    ScopedLock<std::mutex> guard(node.runner_mutex);
    node.engines[shard] = std::move(eng);
    node.runners[shard] = std::move(runner);
    started = node.runners[shard].get();
  }
  if (started_) {
    started->Start();
  }
  // Wake every surviving runner: peers may be parked waiting on the dead
  // shard (a distributor with a parked packet for its full inbox, or
  // consumers idle behind a wire nobody polled).
  ScopedLock<std::mutex> guard(node.runner_mutex);
  for (auto& r : node.runners) {
    if (r != nullptr) {
      r->Kick();
    }
  }
  return true;
}

// =============================== SimCluster =================================

Result<std::unique_ptr<SimCluster>> SimCluster::Create(Options options) {
  auto cluster = std::unique_ptr<SimCluster>(new SimCluster());
  cluster->model_ = options.model;

  std::unique_ptr<simnet::LinkModel> link = std::move(options.link_model);
  if (link == nullptr) {
    simnet::MeshLinkModel::Params mesh;
    mesh.width = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(options.node_count))));
    if (mesh.width == 0) {
      mesh.width = 1;
    }
    link = std::make_unique<simnet::MeshLinkModel>(mesh);
  }
  cluster->fabric_ = std::make_unique<simnet::SimFabric>(
      cluster->sim_, std::move(link), options.node_count, std::move(options.fabric));

  for (NodeId n = 0; n < options.node_count; ++n) {
    auto node = std::make_unique<Node>();
    Domain::Options domain_options;
    domain_options.comm = options.comm;
    domain_options.node = n;
    FLIPC_ASSIGN_OR_RETURN(node->domain,
                           Domain::Create(domain_options, &cluster->semaphores_));

    if (options.engine_kind == EngineKind::kKkt) {
      node->engine = std::make_unique<kkt::KktMessagingEngine>(
          node->domain->comm(), cluster->fabric_->wire(n), options.engine, &cluster->model_,
          &options.kkt, &cluster->semaphores_);
    } else {
      node->engine = std::make_unique<engine::MessagingEngine>(
          node->domain->comm(), cluster->fabric_->wire(n), options.engine, &cluster->model_,
          &cluster->semaphores_);
    }
    node->engine->SetClock(&cluster->sim_.clock());
    node->driver = std::make_unique<engine::SimEngineDriver>(cluster->sim_, *node->engine);

    engine::SimEngineDriver* driver = node->driver.get();
    node->domain->SetEngineKick([driver] { driver->Kick(); });
    cluster->fabric_->SetDeliveryCallback(n, [driver] { driver->Kick(); });

    cluster->nodes_.push_back(std::move(node));
  }
  return cluster;
}

SimCluster::~SimCluster() = default;

}  // namespace flipc
