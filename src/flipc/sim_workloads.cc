#include "src/flipc/sim_workloads.h"

#include <memory>

#include "src/base/log.h"
#include "src/base/rng.h"

namespace flipc::sim {

namespace {

struct Side {
  Domain* domain = nullptr;
  Endpoint rx;
  Endpoint tx;
  MessageBuffer rx_buf;
  MessageBuffer tx_buf;
};

// The two-node exchange test program as a DES actor. See header.
class PingPongActor {
 public:
  PingPongActor(SimCluster& cluster, const PingPongConfig& config)
      : cluster_(cluster),
        config_(config),
        total_one_ways_(2 * config.exchanges),
        jitter_rng_(config.jitter_seed) {}

  Status Setup() {
    FLIPC_RETURN_IF_ERROR(SetupSide(config_.node_a, a_));
    FLIPC_RETURN_IF_ERROR(SetupSide(config_.node_b, b_));
    HookSide(config_.node_a, a_, b_);
    HookSide(config_.node_b, b_, a_);
    return OkStatus();
  }

  Result<PingPongResult> Run() {
    Launch(a_, b_);
    const bool completed = cluster_.sim().RunWhile([this] { return !done_; });
    if (!completed) {
      FLIPC_LOG(kError) << "ping-pong stalled after " << one_ways_done_ << "/"
                        << total_one_ways_ << " one-way messages";
      return InternalStatus();
    }
    result_.finished_at = cluster_.sim().Now();
    return std::move(result_);
  }

 private:
  Status SetupSide(NodeId node, Side& side) {
    side.domain = &cluster_.domain(node);
    Domain::EndpointOptions rx;
    rx.type = shm::EndpointType::kReceive;
    rx.queue_depth = 4;
    FLIPC_ASSIGN_OR_RETURN(side.rx, side.domain->CreateEndpoint(rx));
    Domain::EndpointOptions tx;
    tx.type = shm::EndpointType::kSend;
    tx.queue_depth = 4;
    FLIPC_ASSIGN_OR_RETURN(side.tx, side.domain->CreateEndpoint(tx));
    FLIPC_ASSIGN_OR_RETURN(side.rx_buf, side.domain->AllocateBuffer());
    FLIPC_ASSIGN_OR_RETURN(side.tx_buf, side.domain->AllocateBuffer());
    FLIPC_RETURN_IF_ERROR(side.rx.PostBuffer(side.rx_buf));
    return OkStatus();
  }

  void HookSide(NodeId node, Side& side, Side& peer) {
    cluster_.engine(node).SetReceiveHook(
        [this, &side, &peer](std::uint32_t endpoint, bool delivered) {
          if (endpoint == side.rx.index() && delivered) {
            OnDelivered(side, peer);
          }
        });
  }

  bool Warm() const { return one_ways_done_ / 2 >= config_.cache_warm_exchanges; }

  // Approximately normal zero-mean noise (Irwin-Hall of 12 uniforms),
  // clamped so a cost can never go negative.
  DurationNs Jitter() {
    if (config_.jitter_stddev_ns == 0) {
      return 0;
    }
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) {
      sum += jitter_rng_.UnitDouble();
    }
    return static_cast<DurationNs>((sum - 6.0) *
                                   static_cast<double>(config_.jitter_stddev_ns));
  }

  DurationNs ClampCost(DurationNs cost) { return cost < 100 ? 100 : cost; }

  DurationNs SendCost() {
    const engine::PlatformModel& m = cluster_.model();
    DurationNs cost = m.app_send_ns;
    if (!Warm()) {
      cost -= m.cache_steady_penalty_ns;
    }
    if (config_.locked_variants) {
      cost += 2 * m.lock_op_ns;  // Send + Reclaim each take the endpoint lock.
    }
    if (config_.model_unpadded_layout) {
      cost += m.app_false_sharing_ns;
    }
    return ClampCost(cost + Jitter());
  }

  DurationNs RecvCost() {
    const engine::PlatformModel& m = cluster_.model();
    DurationNs cost = m.app_recv_ns;
    if (!Warm()) {
      cost -= m.cache_steady_penalty_ns;
    }
    if (config_.locked_variants) {
      cost += 2 * m.lock_op_ns;  // Receive + PostBuffer.
    }
    if (config_.model_unpadded_layout) {
      cost += m.app_false_sharing_ns;
    }
    return ClampCost(cost + Jitter());
  }

  void Launch(Side& side, Side& peer) {
    launch_time_ = cluster_.sim().Now();
    cluster_.sim().ScheduleAfter(SendCost(), [this, &side, &peer] {
      const Status status =
          config_.locked_variants ? side.tx.Send(side.tx_buf, peer.rx.address())
                                  : side.tx.SendUnlocked(side.tx_buf, peer.rx.address());
      if (!status.ok()) {
        FLIPC_LOG(kError) << "ping-pong send failed: " << status.ToString();
        done_ = true;
      }
    });
  }

  void OnDelivered(Side& side, Side& peer) {
    cluster_.sim().ScheduleAfter(RecvCost(), [this, &side, &peer] {
      const double sample = static_cast<double>(cluster_.sim().Now() - launch_time_);
      // Default statistics are steady state (as Figure 4 reports): samples
      // from the cache-cold window are excluded unless record_first asks
      // for exactly the start-up behaviour.
      const bool record = config_.record_first != 0
                              ? one_ways_done_ < config_.record_first
                              : one_ways_done_ >= 2 * config_.cache_warm_exchanges;
      if (record) {
        result_.one_way_ns.Add(sample);
        result_.samples_ns.push_back(sample);
      }
      ++one_ways_done_;

      // Application turnaround: collect the message, re-post the buffer
      // (step 1 for the next message), recover the previously sent buffer
      // (step 5), and reply.
      Result<MessageBuffer> message = config_.locked_variants ? side.rx.Receive()
                                                              : side.rx.ReceiveUnlocked();
      if (message.ok()) {
        (void)(config_.locked_variants ? side.rx.PostBuffer(*message)
                                       : side.rx.PostBufferUnlocked(*message));
      }
      Result<MessageBuffer> reclaimed = config_.locked_variants ? side.tx.Reclaim()
                                                                : side.tx.ReclaimUnlocked();
      if (reclaimed.ok()) {
        side.tx_buf = *reclaimed;
      }

      if (one_ways_done_ >= total_one_ways_) {
        done_ = true;
        return;
      }
      Launch(side, peer);
    });
  }

  SimCluster& cluster_;
  PingPongConfig config_;
  PingPongResult result_;
  Side a_;
  Side b_;
  TimeNs launch_time_ = 0;
  std::uint32_t one_ways_done_ = 0;
  std::uint32_t total_one_ways_;
  Rng jitter_rng_;
  bool done_ = false;
};

// Streaming sender/receiver pair for the bandwidth experiments.
class StreamActor {
 public:
  StreamActor(SimCluster& cluster, const StreamConfig& config)
      : cluster_(cluster), config_(config) {}

  Status Setup() {
    tx_domain_ = &cluster_.domain(config_.sender);
    rx_domain_ = &cluster_.domain(config_.receiver);

    std::uint32_t depth = 1;
    while (depth < config_.pipeline_depth) {
      depth <<= 1;
    }

    Domain::EndpointOptions tx;
    tx.type = shm::EndpointType::kSend;
    tx.queue_depth = depth;
    FLIPC_ASSIGN_OR_RETURN(tx_, tx_domain_->CreateEndpoint(tx));

    Domain::EndpointOptions rx;
    rx.type = shm::EndpointType::kReceive;
    rx.queue_depth = 2 * depth;
    FLIPC_ASSIGN_OR_RETURN(rx_, rx_domain_->CreateEndpoint(rx));

    for (std::uint32_t i = 0; i < 2 * config_.pipeline_depth; ++i) {
      FLIPC_ASSIGN_OR_RETURN(MessageBuffer buffer, rx_domain_->AllocateBuffer());
      FLIPC_RETURN_IF_ERROR(rx_.PostBuffer(buffer));
    }

    cluster_.engine(config_.sender).SetSendCompleteHook([this](std::uint32_t endpoint) {
      if (endpoint == tx_.index()) {
        OnSendComplete();
      }
    });
    cluster_.engine(config_.receiver)
        .SetReceiveHook([this](std::uint32_t endpoint, bool delivered) {
          if (endpoint == rx_.index() && delivered) {
            OnDelivered();
          }
        });
    return OkStatus();
  }

  Result<StreamResult> Run() {
    result_.first_send_ns = cluster_.sim().Now();
    for (std::uint32_t i = 0; i < config_.pipeline_depth && sent_ < config_.total_messages;
         ++i) {
      FLIPC_ASSIGN_OR_RETURN(MessageBuffer buffer, tx_domain_->AllocateBuffer());
      ScheduleSend(buffer);
    }
    const bool completed = cluster_.sim().RunWhile(
        [this] { return result_.messages_delivered < config_.total_messages; });
    if (!completed) {
      FLIPC_LOG(kError) << "stream stalled: delivered " << result_.messages_delivered << "/"
                        << config_.total_messages << " (drops at receiver: "
                        << rx_.DropCount() << ")";
      return InternalStatus();
    }
    result_.payload_bytes =
        result_.messages_delivered * tx_domain_->payload_size();
    return result_;
  }

 private:
  // Serializes sender application work on its (virtual) compute processor.
  void ScheduleSend(MessageBuffer buffer) {
    const engine::PlatformModel& m = cluster_.model();
    const TimeNs now = cluster_.sim().Now();
    const TimeNs start = sender_cpu_free_ > now ? sender_cpu_free_ : now;
    sender_cpu_free_ = start + m.app_send_ns;
    ++sent_;
    cluster_.sim().ScheduleAt(sender_cpu_free_, [this, buffer]() mutable {
      if (!tx_.SendUnlocked(buffer, rx_.address()).ok()) {
        FLIPC_LOG(kError) << "stream send failed";
      }
    });
  }

  void OnSendComplete() {
    if (sent_ >= config_.total_messages) {
      return;
    }
    Result<MessageBuffer> buffer = tx_.ReclaimUnlocked();
    if (buffer.ok()) {
      ScheduleSend(*buffer);
    }
  }

  void OnDelivered() {
    ++result_.messages_delivered;
    result_.last_delivery_ns = cluster_.sim().Now();
    // Receiver application: collect and re-post, serialized on its CPU.
    const engine::PlatformModel& m = cluster_.model();
    const TimeNs now = cluster_.sim().Now();
    const TimeNs start = receiver_cpu_free_ > now ? receiver_cpu_free_ : now;
    receiver_cpu_free_ = start + m.app_recv_ns;
    cluster_.sim().ScheduleAt(receiver_cpu_free_, [this] {
      Result<MessageBuffer> message = rx_.ReceiveUnlocked();
      if (message.ok()) {
        (void)rx_.PostBufferUnlocked(*message);
      }
    });
  }

  SimCluster& cluster_;
  StreamConfig config_;
  StreamResult result_;
  Domain* tx_domain_ = nullptr;
  Domain* rx_domain_ = nullptr;
  Endpoint tx_;
  Endpoint rx_;
  std::uint64_t sent_ = 0;
  TimeNs sender_cpu_free_ = 0;
  TimeNs receiver_cpu_free_ = 0;
};

}  // namespace

Result<PingPongResult> RunPingPong(SimCluster& cluster, const PingPongConfig& config) {
  PingPongActor actor(cluster, config);
  FLIPC_RETURN_IF_ERROR(actor.Setup());
  return actor.Run();
}

Result<StreamResult> RunStream(SimCluster& cluster, const StreamConfig& config) {
  StreamActor actor(cluster, config);
  FLIPC_RETURN_IF_ERROR(actor.Setup());
  return actor.Run();
}

}  // namespace flipc::sim
