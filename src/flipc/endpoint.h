// Endpoint: the application's handle to a send or receive endpoint.
//
// The interface mirrors the paper's Figure 2 message-transfer steps:
//
//   1. receiver PostBuffer()  — provide a buffer to receive into
//   2. sender   Send()        — queue a message buffer for the engine
//   3.          (messaging engine transfers the message)
//   4. receiver Receive()     — remove the delivered message
//   5. sender   Reclaim()     — recover the sent buffer for reuse
//
// Send/receive interactions are symmetric: both queue a buffer for the
// engine (release) and later collect it back (acquire).
//
// Every operation has two variants, exactly as the paper's implementation
// grew them while tuning on the Paragon:
//   * the default (locked) variant takes the endpoint's test-and-set lock
//     so multiple application threads can share the endpoint;
//   * the *Unlocked variant skips the lock — for "applications whose
//     structure ensures that at most one thread will access each endpoint".
//     (All of the paper's reported measurements use these.)
//
// Blocking variants use the endpoint's real-time semaphore: the awakened
// thread is handed to the scheduler rather than run from an interrupt.
#ifndef SRC_FLIPC_ENDPOINT_H_
#define SRC_FLIPC_ENDPOINT_H_

#include <cstdint>

#include "src/base/hotpath.h"
#include "src/base/status.h"
#include "src/flipc/message_buffer.h"
#include "src/shm/address.h"
#include "src/shm/endpoint_record.h"
#include "src/simos/real_time_semaphore.h"

namespace flipc {

class Domain;

// Every operation below executes on the APPLICATION side of the protection
// boundary; the FLIPC_ROLE_APP annotations are the roots from which the
// static protocol auditor (tools/flipc_static_audit) proves that all
// comm-buffer writes reachable from here touch application-owned words only.
class Endpoint {
 public:
  Endpoint() = default;

  bool valid() const { return domain_ != nullptr; }
  std::uint32_t index() const { return index_; }
  shm::EndpointType type() const;

  // The opaque address receivers hand to senders.
  Address address() const;

  // ---- Sender operations (send endpoints) ----

  // Step 2: queues `buffer` for delivery to `dst`. kUnavailable when the
  // endpoint's queue is full (resource control is the application's job).
  FLIPC_ROLE_APP Status Send(MessageBuffer& buffer, Address dst);
  FLIPC_ROLE_APP Status SendUnlocked(MessageBuffer& buffer, Address dst);

  // Step 5: recovers the oldest sent buffer once the engine is done with
  // it. kUnavailable when none has completed yet.
  FLIPC_ROLE_APP Result<MessageBuffer> Reclaim();
  FLIPC_ROLE_APP Result<MessageBuffer> ReclaimUnlocked();
  FLIPC_ROLE_APP Result<MessageBuffer> ReclaimBlocking(simos::Priority priority = simos::kMinPriority,
                                        DurationNs timeout_ns = -1);

  // ---- Receiver operations (receive endpoints) ----

  // Step 1: posts a buffer for the engine to receive into.
  FLIPC_ROLE_APP Status PostBuffer(MessageBuffer& buffer);
  FLIPC_ROLE_APP Status PostBufferUnlocked(MessageBuffer& buffer);

  // Step 4: removes the oldest delivered message. kUnavailable when no
  // message has arrived.
  FLIPC_ROLE_APP Result<MessageBuffer> Receive();
  FLIPC_ROLE_APP Result<MessageBuffer> ReceiveUnlocked();
  FLIPC_ROLE_APP Result<MessageBuffer> ReceiveBlocking(simos::Priority priority = simos::kMinPriority,
                                        DurationNs timeout_ns = -1);

  // ---- Resource accounting ----

  // Messages discarded at this endpoint because no buffer was posted
  // (wait-free dual-location counter; reset cannot lose events).
  FLIPC_ROLE_APP std::uint64_t DropCount() const;
  FLIPC_ROLE_APP std::uint64_t ReadAndResetDrops();

  // Buffers the application has queued and not yet collected back.
  FLIPC_ROLE_APP std::uint32_t QueuedCount() const;
  // Completed buffers ready for Receive()/Reclaim().
  FLIPC_ROLE_APP std::uint32_t ReadyCount() const;
  std::uint32_t queue_capacity() const;

  FLIPC_ROLE_APP std::uint64_t ProcessedCount() const;

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.domain_ == b.domain_ && a.index_ == b.index_;
  }

 private:
  friend class Domain;
  friend class EndpointGroup;

  Endpoint(Domain* domain, std::uint32_t index) : domain_(domain), index_(index) {}

  shm::EndpointRecord& record() const;

  Status ReleaseCommon(MessageBuffer& buffer, Address dst, shm::EndpointType expected,
                       bool locked);
  Result<MessageBuffer> AcquireCommon(shm::EndpointType expected, bool locked);
  Result<MessageBuffer> AcquireBlocking(shm::EndpointType expected, simos::Priority priority,
                                        DurationNs timeout_ns);

  Domain* domain_ = nullptr;
  std::uint32_t index_ = 0;
};

}  // namespace flipc

#endif  // SRC_FLIPC_ENDPOINT_H_
