// Domain: one node's FLIPC instance — the application interface layer over
// a communication buffer (paper Figure 1, left box: "application interface
// layer that provides formal interfaces to applications and hides the data
// structures in the communication buffer").
//
// A Domain owns (or attaches to) the communication buffer and knows how to
// kick the messaging engine that shares it. It does NOT own the engine:
// the engine is an independently executing component (a thread, a DES
// driver, or in principle real controller firmware) wired up by the
// embedding code — see Cluster/SimCluster for ready-made assemblies.
#ifndef SRC_FLIPC_DOMAIN_H_
#define SRC_FLIPC_DOMAIN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>

#include "src/base/clock.h"
#include "src/base/hotpath.h"
#include "src/base/status.h"
#include "src/base/thread_annotations.h"
#include "src/base/trace.h"
#include "src/base/types.h"
#include "src/flipc/endpoint.h"
#include "src/flipc/message_buffer.h"
#include "src/shm/comm_buffer.h"
#include "src/simos/semaphore_table.h"

namespace flipc {

class EndpointGroup;

// Per-domain API call counters, kept to reproduce the paper's future-work
// observation that "a FLIPC application can expect to employ about half of
// its calls to FLIPC to send or receive messages, and the other half for
// message buffer management" (experiment E11).
struct CallCounters {
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> receives{0};
  std::atomic<std::uint64_t> buffer_posts{0};
  std::atomic<std::uint64_t> buffer_reclaims{0};
  std::atomic<std::uint64_t> buffer_allocs{0};
  std::atomic<std::uint64_t> buffer_frees{0};

  std::uint64_t MessagingCalls() const {
    return sends.load(std::memory_order_relaxed) + receives.load(std::memory_order_relaxed);
  }
  std::uint64_t BufferManagementCalls() const {
    return buffer_posts.load(std::memory_order_relaxed) +
           buffer_reclaims.load(std::memory_order_relaxed) +
           buffer_allocs.load(std::memory_order_relaxed) +
           buffer_frees.load(std::memory_order_relaxed);
  }
};

class Domain {
 public:
  struct Options {
    shm::CommBufferConfig comm;
    NodeId node = 0;  // must fit 16 bits (packed addresses)
  };

  // Creates a domain with a freshly allocated communication buffer.
  // `semaphores` backs the blocking operations; it may be null if no
  // endpoint ever uses them.
  static Result<std::unique_ptr<Domain>> Create(const Options& options,
                                                simos::SemaphoreTable* semaphores = nullptr);

  ~Domain();
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  shm::CommBuffer& comm() { return *comm_; }
  NodeId node() const { return node_; }
  std::uint32_t payload_size() const { return comm_->payload_size(); }

  // Wires the engine wake-up: called after operations that create engine
  // work (sends). Typically EngineRunner::Kick or SimEngineDriver::Kick.
  void SetEngineKick(std::function<void()> kick) { kick_ = std::move(kick); }
  // Sharded assemblies install a per-shard kick instead; when set it takes
  // precedence for endpoint-directed wake-ups so a send wakes only the
  // planner that owns the endpoint's comm-buffer slice.
  void SetShardKick(std::function<void(std::uint32_t shard)> kick) {
    shard_kick_ = std::move(kick);
  }
  void KickEngine() {
    if (kick_) {
      kick_();
    }
  }
  void KickEngine(std::uint32_t shard) {
    if (shard_kick_) {
      shard_kick_(shard);
    } else if (kick_) {
      kick_();
    }
  }

  // ---- Message buffer management ----
  FLIPC_ROLE_APP Result<MessageBuffer> AllocateBuffer();
  FLIPC_ROLE_APP Status FreeBuffer(MessageBuffer buffer);
  // Rebuilds a handle from an index (e.g. one passed between threads).
  Result<MessageBuffer> BufferFromIndex(waitfree::BufferIndex index);

  // ---- Endpoints ----
  struct EndpointOptions {
    shm::EndpointType type = shm::EndpointType::kReceive;
    std::uint32_t queue_depth = 16;  // power of two
    // Allocate a real-time semaphore so blocking operations work.
    bool enable_semaphore = false;
    // Engine scan priority (priority_scan engines transmit higher first).
    std::uint32_t priority = shm::kDefaultEndpointPriority;
    // Membership: share the group's semaphore and be scanned by its
    // Receive()/ReceiveBlocking(). Implies semaphore signaling.
    EndpointGroup* group = nullptr;
    // Protection extension: restrict this send endpoint to one destination
    // (engine-enforced, so an untrusted application cannot spray other
    // applications' endpoints). Invalid = unrestricted.
    Address allowed_peer = Address::Invalid();
    // Capacity-control extension: minimum ns between transmissions from
    // this send endpoint (engine-enforced token spacing). 0 = unlimited.
    std::uint32_t min_send_interval_ns = 0;
    // QoS planner (DESIGN.md §15): weighted service class 0..3. When
    // several classes hold backlog, the engine's deficit-weighted planner
    // shares transmissions proportionally to the per-class weights
    // configured on the engine.
    std::uint32_t qos_class = 0;
    // Relative per-message deadline, ns from when the engine first sees
    // the message backlogged. Nonzero marks the endpoint real-time:
    // earliest-deadline-first within its class, deadline-miss accounting
    // in telemetry. 0 = not real-time.
    std::uint32_t deadline_ns = 0;
    // Token-bucket rate limit (engine-enforced, generalizes
    // min_send_interval_ns): burst capacity in messages. 0 = no bucket.
    std::uint32_t bucket_capacity = 0;
    // ns to refill one bucket token; 0 with nonzero capacity means the
    // bucket never refills (hard burst cap).
    std::uint32_t bucket_refill_ns = 0;
    // Sharded engine: allocate the endpoint inside this shard's contiguous
    // slot range so its planner owns it. kAnyShard = first free slot
    // anywhere (single-shard buffers have exactly one shard, 0).
    std::uint32_t shard = shm::CommBuffer::kAnyShard;
  };

  FLIPC_ROLE_QUIESCENT Result<Endpoint> CreateEndpoint(const EndpointOptions& options);

  // Frees the endpoint (its queue must be drained) and its semaphore.
  FLIPC_ROLE_QUIESCENT Status DestroyEndpoint(Endpoint& endpoint);

  // Churn teardown (DESIGN.md §14): reclaims every buffer the engine has
  // already completed (Reclaim on send endpoints, Receive on receive
  // endpoints), frees them, then destroys the endpoint. Returns
  // DestroyEndpoint's kUnavailable while the engine still owns released
  // buffers — callers quiescing under load retry until the engine drains.
  // A receive endpoint with posted-but-undelivered buffers can never drain
  // this way (there is no un-post primitive); direct exactly-counted
  // traffic at it or tear down the whole domain instead.
  FLIPC_ROLE_QUIESCENT Status QuiesceAndDestroyEndpoint(Endpoint& endpoint);

  simos::SemaphoreTable* semaphores() { return semaphores_; }
  CallCounters& calls() { return calls_; }

  // Application-side flight recorder: successful API operations append the
  // kApi* events. The ring is caller-owned and process-local (it holds
  // host pointers, so it cannot live in the comm buffer). A null clock
  // stamps 0 — the cheapest option, and the default so tracing never adds
  // a clock read to the hot path unless the caller asks for one.
  void SetTrace(TraceRing* trace, const Clock* clock = nullptr) {
    trace_ = trace;
    trace_clock_ = clock;
  }
  TraceRing* trace() { return trace_; }
  void TraceApi(TraceEvent event, std::uint32_t a, std::uint64_t b = 0) {
    if (trace_ != nullptr) {
      trace_->Record(trace_clock_ != nullptr ? trace_clock_->NowNs() : 0, event, a, b);
    }
  }

 private:
  friend class Endpoint;
  friend class EndpointGroup;

  Domain(std::unique_ptr<shm::CommBuffer> comm, NodeId node,
         simos::SemaphoreTable* semaphores);

  // Group-owned semaphores must not be freed when a member endpoint is
  // destroyed; EndpointGroup registers its semaphore here.
  void RegisterGroupSemaphore(std::uint32_t id);
  void UnregisterGroupSemaphore(std::uint32_t id);

  std::unique_ptr<shm::CommBuffer> comm_;
  NodeId node_;
  simos::SemaphoreTable* semaphores_;
  std::function<void()> kick_;
  std::function<void(std::uint32_t)> shard_kick_;
  CallCounters calls_;
  TraceRing* trace_ = nullptr;
  const Clock* trace_clock_ = nullptr;

  std::mutex group_mutex_;
  std::unordered_set<std::uint32_t> group_semaphores_
      FLIPC_GUARDED_BY(group_mutex_);
};

}  // namespace flipc

#endif  // SRC_FLIPC_DOMAIN_H_
