// MessageBuffer: the application's handle to one fixed-size message buffer
// inside the communication buffer.
//
// "FLIPC shields applications from buffer alignment restrictions by
// internalizing all message buffers. An application must call FLIPC to
// allocate a message buffer, allowing the implementation to ensure that all
// such buffers are correctly aligned."
//
// The handle is a cheap copyable (domain, index) pair; the bytes live in
// the communication buffer and are valid for the domain's lifetime.
#ifndef SRC_FLIPC_MESSAGE_BUFFER_H_
#define SRC_FLIPC_MESSAGE_BUFFER_H_

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "src/shm/address.h"
#include "src/shm/comm_buffer.h"
#include "src/waitfree/msg_state.h"

namespace flipc {

class Domain;

class MessageBuffer {
 public:
  MessageBuffer() = default;

  bool valid() const { return view_.valid(); }
  waitfree::BufferIndex index() const { return index_; }

  // Application payload (message size minus the 8-byte internal header).
  std::byte* data() { return view_.payload; }
  const std::byte* data() const { return view_.payload; }
  std::size_t size() const { return view_.payload_size; }

  // Copies `n` bytes into the payload; false if it does not fit.
  bool Write(const void* bytes, std::size_t n, std::size_t offset = 0) {
    if (offset + n > size()) {
      return false;
    }
    std::memcpy(view_.payload + offset, bytes, n);
    return true;
  }

  bool Read(void* bytes, std::size_t n, std::size_t offset = 0) const {
    if (offset + n > size()) {
      return false;
    }
    std::memcpy(bytes, view_.payload + offset, n);
    return true;
  }

  // Typed overlay on the payload. T must fit and be trivially copyable.
  template <typename T>
  T* As() {
    static_assert(std::is_trivially_copyable_v<T>);
    return sizeof(T) <= size() ? reinterpret_cast<T*>(view_.payload) : nullptr;
  }

  // After a completed receive: the sender's endpoint address (how the
  // receiver learns whom to reply to).
  Address peer() const { return view_.header->peer_address(); }

  // Polls the wait-free per-buffer state field: true once the engine has
  // finished processing this buffer (sent it, or filled it with a message).
  bool completed() const { return view_.header->state.IsCompleted(); }

 private:
  friend class Domain;
  friend class Endpoint;

  MessageBuffer(waitfree::BufferIndex index, shm::MsgView view) : index_(index), view_(view) {}

  shm::MsgHeader* header() { return view_.header; }

  waitfree::BufferIndex index_ = waitfree::kInvalidBuffer;
  shm::MsgView view_;
};

}  // namespace flipc

#endif  // SRC_FLIPC_MESSAGE_BUFFER_H_
