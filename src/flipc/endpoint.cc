#include "src/flipc/endpoint.h"

#include <mutex>

#include "src/base/clock.h"
#include "src/base/hotpath.h"
#include "src/flipc/domain.h"
#include "src/waitfree/boundary_check.h"
#include "src/waitfree/msg_state.h"

namespace flipc {

using shm::EndpointType;
using waitfree::MsgState;

shm::EndpointRecord& Endpoint::record() const { return domain_->comm().endpoint(index_); }

shm::EndpointType Endpoint::type() const { return record().Type(); }

Address Endpoint::address() const {
  return Address(static_cast<std::uint16_t>(domain_->node()),
                 static_cast<std::uint16_t>(index_));
}

Status Endpoint::ReleaseCommon(MessageBuffer& buffer, Address dst, EndpointType expected,
                               bool locked) {
  if (!valid() || !buffer.valid()) {
    return InvalidArgumentStatus();
  }
  // This call body is the application side of the protection boundary;
  // scoped so a thread that also drives a simulated engine is re-labeled
  // only for the duration (no-op unless FLIPC_CHECK_SINGLE_WRITER).
  waitfree::ScopedBoundaryRole boundary_role(waitfree::Writer::kApplication);
  shm::EndpointRecord& rec = record();
  if (rec.Type() != expected) {
    return FailedPreconditionStatus();
  }
  // The lock-free variants carry the wait-freedom obligation from here on
  // (validation above may take slow paths); the locked variants share this
  // body but pay the TasLock by contract, so their scope stays unarmed.
  FLIPC_HOT_PATH_IF(!locked, expected == EndpointType::kSend
                                 ? "Endpoint::SendUnlocked"
                                 : "Endpoint::PostBufferUnlocked");
  if (expected == EndpointType::kSend) {
    if (!dst.valid()) {
      return InvalidArgumentStatus();
    }
    buffer.header()->set_peer_address(dst);
  }
  buffer.header()->state.Store(MsgState::kReady);

  waitfree::BufferQueueView queue = domain_->comm().queue(index_);
  bool released;
  if (locked) {
    ScopedLock<TasLock> guard(rec.lock);
    released = queue.Release(buffer.index());
  } else {
    released = queue.Release(buffer.index());
  }
  shm::TelemetryBlock& telemetry = domain_->comm().telemetry(index_);
  if (!released) {
    telemetry.RecordReleaseRejected();
    return UnavailableStatus();  // Queue full: application resource control.
  }

  if (expected == EndpointType::kSend) {
    // Ring the owning shard's doorbell so its planner schedules this
    // endpoint without a full scan. Sequenced after the queue Release
    // above, so the engine's acquire of the doorbell also observes the
    // released buffer. A full ring raises the overflow signal instead (the
    // engine answers with a sweep); either way the send already succeeded —
    // doorbells are hints.
    const std::uint32_t shard = rec.shard.ReadRelaxed();
    const bool rang = domain_->comm().doorbell_ring(shard).Ring(index_);
    telemetry.RecordApiSend();
    telemetry.RecordDoorbell(rang);
    domain_->TraceApi(TraceEvent::kApiSend, index_, buffer.index());
    domain_->calls().sends.fetch_add(1, std::memory_order_relaxed);
    {
      // Kicking the engine out of its idle park is a host-thread artifact
      // (condvar notify under the runner's mutex); on the Paragon the engine
      // is a co-processor that is simply running. Not a Paragon-path cost.
      FLIPC_HOT_PATH_EXEMPT("engine kick: host-thread parking artifact");
      domain_->KickEngine(shard);
    }
  } else {
    telemetry.RecordApiPost();
    domain_->TraceApi(TraceEvent::kApiPostBuffer, index_, buffer.index());
    domain_->calls().buffer_posts.fetch_add(1, std::memory_order_relaxed);
  }
  return OkStatus();
}

Result<MessageBuffer> Endpoint::AcquireCommon(EndpointType expected, bool locked) {
  if (!valid()) {
    return InvalidArgumentStatus();
  }
  waitfree::ScopedBoundaryRole boundary_role(waitfree::Writer::kApplication);
  shm::EndpointRecord& rec = record();
  if (rec.Type() != expected) {
    return FailedPreconditionStatus();
  }
  FLIPC_HOT_PATH_IF(!locked, expected == EndpointType::kReceive
                                 ? "Endpoint::ReceiveUnlocked"
                                 : "Endpoint::ReclaimUnlocked");
  waitfree::BufferQueueView queue = domain_->comm().queue(index_);
  waitfree::BufferIndex index;
  if (locked) {
    ScopedLock<TasLock> guard(rec.lock);
    index = queue.Acquire();
  } else {
    index = queue.Acquire();
  }
  if (index == waitfree::kInvalidBuffer) {
    return UnavailableStatus();
  }
  shm::TelemetryBlock& telemetry = domain_->comm().telemetry(index_);
  if (expected == EndpointType::kReceive) {
    telemetry.RecordApiReceive();
    domain_->TraceApi(TraceEvent::kApiReceive, index_, index);
    domain_->calls().receives.fetch_add(1, std::memory_order_relaxed);
  } else {
    telemetry.RecordApiReclaim();
    domain_->TraceApi(TraceEvent::kApiReclaim, index_, index);
    domain_->calls().buffer_reclaims.fetch_add(1, std::memory_order_relaxed);
  }
  return MessageBuffer(index, domain_->comm().msg(index));
}

Result<MessageBuffer> Endpoint::AcquireBlocking(EndpointType expected, simos::Priority priority,
                                                DurationNs timeout_ns) {
  shm::EndpointRecord& rec = record();
  if ((rec.options.ReadRelaxed() & shm::kEndpointOptSemaphore) == 0 ||
      domain_->semaphores() == nullptr) {
    return FailedPreconditionStatus();
  }
  simos::RealTimeSemaphore* semaphore =
      domain_->semaphores()->Get(rec.semaphore_id.ReadRelaxed());
  if (semaphore == nullptr) {
    return InternalStatus();
  }

  const TimeNs deadline =
      timeout_ns < 0 ? kTimeNever : RealClock::Instance().NowNs() + timeout_ns;
  FLIPC_UNBOUNDED_WAIT("blocking receive: parks on the endpoint semaphore");
  for (;;) {
    Result<MessageBuffer> result = AcquireCommon(expected, /*locked=*/true);
    if (result.ok() || result.status().code() != StatusCode::kUnavailable) {
      return result;
    }
    DurationNs remaining = -1;
    if (deadline != kTimeNever) {
      remaining = deadline - RealClock::Instance().NowNs();
      if (remaining <= 0) {
        return TimedOutStatus();
      }
    }
    const Status wait_status = semaphore->Wait(priority, remaining);
    if (!wait_status.ok()) {
      return wait_status;
    }
  }
}

Status Endpoint::Send(MessageBuffer& buffer, Address dst) {
  return ReleaseCommon(buffer, dst, EndpointType::kSend, /*locked=*/true);
}

Status Endpoint::SendUnlocked(MessageBuffer& buffer, Address dst) {
  return ReleaseCommon(buffer, dst, EndpointType::kSend, /*locked=*/false);
}

Result<MessageBuffer> Endpoint::Reclaim() {
  return AcquireCommon(EndpointType::kSend, /*locked=*/true);
}

Result<MessageBuffer> Endpoint::ReclaimUnlocked() {
  return AcquireCommon(EndpointType::kSend, /*locked=*/false);
}

Result<MessageBuffer> Endpoint::ReclaimBlocking(simos::Priority priority, DurationNs timeout_ns) {
  return AcquireBlocking(EndpointType::kSend, priority, timeout_ns);
}

Status Endpoint::PostBuffer(MessageBuffer& buffer) {
  return ReleaseCommon(buffer, Address::Invalid(), EndpointType::kReceive, /*locked=*/true);
}

Status Endpoint::PostBufferUnlocked(MessageBuffer& buffer) {
  return ReleaseCommon(buffer, Address::Invalid(), EndpointType::kReceive, /*locked=*/false);
}

Result<MessageBuffer> Endpoint::Receive() {
  return AcquireCommon(EndpointType::kReceive, /*locked=*/true);
}

Result<MessageBuffer> Endpoint::ReceiveUnlocked() {
  return AcquireCommon(EndpointType::kReceive, /*locked=*/false);
}

Result<MessageBuffer> Endpoint::ReceiveBlocking(simos::Priority priority, DurationNs timeout_ns) {
  return AcquireBlocking(EndpointType::kReceive, priority, timeout_ns);
}

std::uint64_t Endpoint::DropCount() const { return record().DropCount(); }

std::uint64_t Endpoint::ReadAndResetDrops() {
  waitfree::ScopedBoundaryRole boundary_role(waitfree::Writer::kApplication);
  FLIPC_HOT_PATH("Endpoint::ReadAndResetDrops");
  return record().ReadAndResetDrops();
}

std::uint32_t Endpoint::QueuedCount() const {
  return domain_->comm().queue(index_).Size();
}

std::uint32_t Endpoint::ReadyCount() const {
  return domain_->comm().queue(index_).AcquirableCount();
}

std::uint32_t Endpoint::queue_capacity() const {
  return record().queue_capacity.ReadRelaxed();
}

std::uint64_t Endpoint::ProcessedCount() const { return record().processed_total.Read(); }

}  // namespace flipc
