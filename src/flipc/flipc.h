// FLIPC public API umbrella header.
//
// Quickstart (see examples/quickstart.cpp for the runnable version):
//
//   auto cluster = *flipc::Cluster::Create({.node_count = 2});
//   cluster->Start();
//   flipc::Domain& a = cluster->domain(0);
//   flipc::Domain& b = cluster->domain(1);
//
//   // Receiver: create an endpoint and post a buffer into it (step 1).
//   auto rx = *b.CreateEndpoint({.type = flipc::shm::EndpointType::kReceive});
//   auto rx_buf = *b.AllocateBuffer();
//   rx.PostBuffer(rx_buf);
//
//   // Sender: create a send endpoint and send (step 2).
//   auto tx = *a.CreateEndpoint({.type = flipc::shm::EndpointType::kSend});
//   auto msg = *a.AllocateBuffer();
//   msg.Write("hello", 5);
//   tx.Send(msg, rx.address());
//
//   // Steps 4 and 5: receive on b, reclaim the send buffer on a.
//   // (Poll, or use the Blocking variants / EndpointGroup.)
#ifndef SRC_FLIPC_FLIPC_H_
#define SRC_FLIPC_FLIPC_H_

#include "src/flipc/cluster.h"
#include "src/flipc/domain.h"
#include "src/flipc/endpoint.h"
#include "src/flipc/endpoint_group.h"
#include "src/flipc/message_buffer.h"
#include "src/shm/address.h"

#endif  // SRC_FLIPC_FLIPC_H_
