// Simulated application workloads.
//
// The paper's measurements come from "a test program that measures the time
// consumed by multiple two-way message exchanges between a pair of nodes";
// RunPingPong is that test program as a discrete-event actor: the real
// FLIPC API calls execute against the real communication buffer, while the
// application-side costs (library call time, test-and-set locks, cache
// effects) are charged to virtual time from the PlatformModel — mirroring
// how the engine side charges its own costs.
//
// RunStream is the bandwidth counterpart used for the interconnect
// utilisation experiment (E6): a sender keeps its endpoint full, a receiver
// keeps buffers posted, and the achieved rate emerges from the pipeline's
// bottleneck (engine per-message cost vs wire serialization).
#ifndef SRC_FLIPC_SIM_WORKLOADS_H_
#define SRC_FLIPC_SIM_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/flipc/cluster.h"

namespace flipc::sim {

struct PingPongConfig {
  NodeId node_a = 0;
  NodeId node_b = 1;
  // Two-way exchanges to run (each contributes two one-way samples).
  std::uint32_t exchanges = 200;
  // Exchanges before the caches reach steady state; earlier exchanges skip
  // the modeled steady-state cache-interference penalty (paper: short runs
  // are ~3 us faster).
  std::uint32_t cache_warm_exchanges = 8;
  // Use the locked interface variants (bus-locked test-and-set per call).
  bool locked_variants = false;
  // Model the pre-tuning unpadded layout on the application side (the
  // engine side is configured via EngineOptions::model_unpadded_layout).
  bool model_unpadded_layout = false;
  // Standard deviation of a zero-mean noise term added to each side's
  // application cost, reproducing the paper's measurement spread
  // (sigma 0.5-0.65 us in Figure 4). Deterministic (seeded); 0 disables.
  DurationNs jitter_stddev_ns = 0;
  std::uint64_t jitter_seed = 1996;
  // 0 (default): record steady-state samples only (one-ways after the
  // cache-cold window), as the paper's Figure 4 does. Nonzero: record
  // exactly the first N one-way samples — the start-up transient view.
  std::uint32_t record_first = 0;
};

struct PingPongResult {
  RunningStats one_way_ns;
  std::vector<double> samples_ns;
  TimeNs finished_at = 0;
};

// Runs the ping-pong between two nodes of the cluster; the cluster must be
// freshly created (it allocates endpoints and buffers itself).
Result<PingPongResult> RunPingPong(SimCluster& cluster, const PingPongConfig& config);

struct StreamConfig {
  NodeId sender = 0;
  NodeId receiver = 1;
  std::uint32_t pipeline_depth = 8;  // buffers in flight (send queue depth)
  std::uint64_t total_messages = 500;
};

struct StreamResult {
  std::uint64_t messages_delivered = 0;
  std::uint64_t payload_bytes = 0;
  TimeNs first_send_ns = 0;
  TimeNs last_delivery_ns = 0;

  double ThroughputMBps() const {
    const double seconds =
        static_cast<double>(last_delivery_ns - first_send_ns) / 1e9;
    return seconds <= 0 ? 0.0
                        : static_cast<double>(payload_bytes) / (1024.0 * 1024.0) / seconds;
  }
};

Result<StreamResult> RunStream(SimCluster& cluster, const StreamConfig& config);

}  // namespace flipc::sim

#endif  // SRC_FLIPC_SIM_WORKLOADS_H_
