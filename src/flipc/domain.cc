#include "src/flipc/domain.h"

#include <utility>

#include "src/flipc/endpoint_group.h"

namespace flipc {

Domain::Domain(std::unique_ptr<shm::CommBuffer> comm, NodeId node,
               simos::SemaphoreTable* semaphores)
    : comm_(std::move(comm)), node_(node), semaphores_(semaphores) {}

Domain::~Domain() = default;

Result<std::unique_ptr<Domain>> Domain::Create(const Options& options,
                                               simos::SemaphoreTable* semaphores) {
  if (options.node > 0xffffu) {
    return InvalidArgumentStatus();  // Addresses pack the node into 16 bits.
  }
  FLIPC_ASSIGN_OR_RETURN(std::unique_ptr<shm::CommBuffer> comm,
                         shm::CommBuffer::Create(options.comm));
  return std::unique_ptr<Domain>(new Domain(std::move(comm), options.node, semaphores));
}

Result<MessageBuffer> Domain::AllocateBuffer() {
  FLIPC_ASSIGN_OR_RETURN(const waitfree::BufferIndex index, comm_->AllocateBuffer());
  calls_.buffer_allocs.fetch_add(1, std::memory_order_relaxed);
  return MessageBuffer(index, comm_->msg(index));
}

Status Domain::FreeBuffer(MessageBuffer buffer) {
  if (!buffer.valid()) {
    return InvalidArgumentStatus();
  }
  calls_.buffer_frees.fetch_add(1, std::memory_order_relaxed);
  return comm_->FreeBuffer(buffer.index());
}

Result<MessageBuffer> Domain::BufferFromIndex(waitfree::BufferIndex index) {
  if (!comm_->IsValidBufferIndex(index)) {
    return InvalidArgumentStatus();
  }
  return MessageBuffer(index, comm_->msg(index));
}

Result<Endpoint> Domain::CreateEndpoint(const EndpointOptions& options) {
  shm::CommBuffer::EndpointParams params;
  params.type = options.type;
  params.queue_capacity = options.queue_depth;
  params.priority = options.priority;
  params.allowed_peer = options.allowed_peer.packed();
  params.min_send_interval_ns = options.min_send_interval_ns;
  params.qos_class = options.qos_class;
  params.deadline_ns = options.deadline_ns;
  params.bucket_capacity = options.bucket_capacity;
  params.bucket_refill_ns = options.bucket_refill_ns;
  params.shard = options.shard;

  bool owns_semaphore = false;
  if (options.group != nullptr) {
    params.options |= shm::kEndpointOptSemaphore;
    params.semaphore_id = options.group->semaphore_id();
  } else if (options.enable_semaphore) {
    if (semaphores_ == nullptr) {
      return FailedPreconditionStatus();
    }
    FLIPC_ASSIGN_OR_RETURN(params.semaphore_id, semaphores_->Allocate());
    params.options |= shm::kEndpointOptSemaphore;
    owns_semaphore = true;
  }

  Result<std::uint32_t> index = comm_->AllocateEndpoint(params);
  if (!index.ok()) {
    if (owns_semaphore) {
      (void)semaphores_->Free(params.semaphore_id);
    }
    return index.status();
  }

  Endpoint endpoint(this, *index);
  if (options.group != nullptr) {
    options.group->AddMember(endpoint);
  }
  return endpoint;
}

Status Domain::DestroyEndpoint(Endpoint& endpoint) {
  if (!endpoint.valid() || endpoint.domain_ != this) {
    return InvalidArgumentStatus();
  }
  const shm::EndpointRecord& record = comm_->endpoint(endpoint.index());
  const bool had_semaphore =
      (record.options.ReadRelaxed() & shm::kEndpointOptSemaphore) != 0;
  const std::uint32_t semaphore_id = record.semaphore_id.ReadRelaxed();

  FLIPC_RETURN_IF_ERROR(comm_->FreeEndpoint(endpoint.index()));

  // Group semaphores are owned by their EndpointGroup; a group member must
  // be removed from the group before destruction, at which point Free here
  // fails harmlessly with waiters or succeeds. Individually owned
  // semaphores are freed best-effort (waiters keep it alive).
  bool group_owned;
  {
    ScopedLock<std::mutex> guard(group_mutex_);
    group_owned = group_semaphores_.contains(semaphore_id);
  }
  if (had_semaphore && semaphores_ != nullptr && !group_owned) {
    (void)semaphores_->Free(semaphore_id);
  }
  endpoint = Endpoint();
  return OkStatus();
}

Status Domain::QuiesceAndDestroyEndpoint(Endpoint& endpoint) {
  if (!endpoint.valid() || endpoint.domain_ != this) {
    return InvalidArgumentStatus();
  }
  const bool is_send = endpoint.type() == shm::EndpointType::kSend;
  for (;;) {
    Result<MessageBuffer> buffer = is_send ? endpoint.Reclaim() : endpoint.Receive();
    if (!buffer.ok()) {
      break;  // Nothing acquirable now; what remains is the engine's.
    }
    FLIPC_RETURN_IF_ERROR(FreeBuffer(*buffer));
  }
  return DestroyEndpoint(endpoint);
}

void Domain::RegisterGroupSemaphore(std::uint32_t id) {
  ScopedLock<std::mutex> guard(group_mutex_);
  group_semaphores_.insert(id);
}

void Domain::UnregisterGroupSemaphore(std::uint32_t id) {
  ScopedLock<std::mutex> guard(group_mutex_);
  group_semaphores_.erase(id);
}

}  // namespace flipc
