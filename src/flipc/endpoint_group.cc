#include "src/flipc/endpoint_group.h"

#include <algorithm>

#include "src/base/clock.h"
#include "src/flipc/domain.h"

namespace flipc {

EndpointGroup::EndpointGroup(Domain& domain, std::uint32_t semaphore_id)
    : domain_(domain), semaphore_id_(semaphore_id) {}

Result<std::unique_ptr<EndpointGroup>> EndpointGroup::Create(Domain& domain) {
  if (domain.semaphores() == nullptr) {
    return FailedPreconditionStatus();
  }
  FLIPC_ASSIGN_OR_RETURN(const std::uint32_t semaphore_id, domain.semaphores()->Allocate());
  auto group = std::unique_ptr<EndpointGroup>(new EndpointGroup(domain, semaphore_id));
  domain.RegisterGroupSemaphore(semaphore_id);
  return group;
}

EndpointGroup::~EndpointGroup() {
  domain_.UnregisterGroupSemaphore(semaphore_id_);
  (void)domain_.semaphores()->Free(semaphore_id_);
}

void EndpointGroup::AddMember(const Endpoint& endpoint) {
  ScopedLock<std::mutex> guard(mutex_);
  members_.push_back(endpoint);
}

void EndpointGroup::RemoveMember(const Endpoint& endpoint) {
  ScopedLock<std::mutex> guard(mutex_);
  members_.erase(std::remove(members_.begin(), members_.end(), endpoint), members_.end());
  cursor_ = 0;
}

std::size_t EndpointGroup::member_count() const {
  ScopedLock<std::mutex> guard(mutex_);
  return members_.size();
}

Result<EndpointGroup::ReceiveResult> EndpointGroup::Receive() {
  ScopedLock<std::mutex> guard(mutex_);
  const std::size_t n = members_.size();
  for (std::size_t off = 0; off < n; ++off) {
    const std::size_t i = (cursor_ + off) % n;
    Result<MessageBuffer> result = members_[i].Receive();
    if (result.ok()) {
      cursor_ = (i + 1) % n;  // Fairness: resume the scan after this member.
      return ReceiveResult{std::move(result).value(), members_[i]};
    }
    if (result.status().code() != StatusCode::kUnavailable) {
      return result.status();
    }
  }
  return UnavailableStatus();
}

Result<EndpointGroup::ReceiveResult> EndpointGroup::ReceiveBlocking(simos::Priority priority,
                                                                    DurationNs timeout_ns) {
  simos::RealTimeSemaphore* semaphore = domain_.semaphores()->Get(semaphore_id_);
  if (semaphore == nullptr) {
    return InternalStatus();
  }
  const TimeNs deadline =
      timeout_ns < 0 ? kTimeNever : RealClock::Instance().NowNs() + timeout_ns;
  for (;;) {
    Result<ReceiveResult> result = Receive();
    if (result.ok() || result.status().code() != StatusCode::kUnavailable) {
      return result;
    }
    DurationNs remaining = -1;
    if (deadline != kTimeNever) {
      remaining = deadline - RealClock::Instance().NowNs();
      if (remaining <= 0) {
        return TimedOutStatus();
      }
    }
    const Status wait_status = semaphore->Wait(priority, remaining);
    if (!wait_status.ok()) {
      return wait_status;
    }
  }
}

}  // namespace flipc
