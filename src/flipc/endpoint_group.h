// EndpointGroup (paper, Architecture and Design).
//
// "An endpoint group logically combines multiple endpoints into a single
// abstraction. FLIPC supports a receive operation that retrieves a message
// from an endpoint if there is an available message on any endpoint in the
// group. This operation is implemented entirely in the library because the
// resource control model's association of buffers with endpoints makes it
// infeasible to merge the endpoint buffer queues."
//
// Accordingly, this class holds no shared-memory state of its own: it is a
// library-side list of member endpoints plus one real-time semaphore that
// every member signals on delivery, scanned round-robin for fairness.
#ifndef SRC_FLIPC_ENDPOINT_GROUP_H_
#define SRC_FLIPC_ENDPOINT_GROUP_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/base/status.h"
#include "src/base/thread_annotations.h"
#include "src/flipc/endpoint.h"
#include "src/flipc/message_buffer.h"
#include "src/simos/real_time_semaphore.h"

namespace flipc {

class Domain;

class EndpointGroup {
 public:
  struct ReceiveResult {
    MessageBuffer buffer;
    Endpoint endpoint;  // which member delivered
  };

  // Allocates the group's semaphore from the domain's table. Endpoints
  // join by being created with EndpointOptions::group pointing here.
  static Result<std::unique_ptr<EndpointGroup>> Create(Domain& domain);

  ~EndpointGroup();
  EndpointGroup(const EndpointGroup&) = delete;
  EndpointGroup& operator=(const EndpointGroup&) = delete;

  // Retrieves a message from any member endpoint (round-robin scan
  // starting after the last successful member). kUnavailable if none.
  Result<ReceiveResult> Receive();

  // Blocking variant via the group's real-time semaphore.
  Result<ReceiveResult> ReceiveBlocking(simos::Priority priority = simos::kMinPriority,
                                        DurationNs timeout_ns = -1);

  std::uint32_t semaphore_id() const { return semaphore_id_; }

  // Number of member endpoints. Deliberately NOT named `size()`: this
  // accessor takes the group mutex, and the wait-free certifier resolves
  // calls by simple name — a container `.size()` inside an engine hot
  // scope must not alias a lock-taking function.
  std::size_t member_count() const;

  // Removes an endpoint from the group's scan set (e.g. before destroying
  // it). The endpoint keeps signaling the group's semaphore until it is
  // destroyed, so remove-then-drain-then-destroy is the safe order.
  void RemoveMember(const Endpoint& endpoint);

 private:
  friend class Domain;

  EndpointGroup(Domain& domain, std::uint32_t semaphore_id);

  // Called by Domain::CreateEndpoint.
  void AddMember(const Endpoint& endpoint);

  Domain& domain_;
  std::uint32_t semaphore_id_;

  mutable std::mutex mutex_;  // library-side only; no shared-memory state
  std::vector<Endpoint> members_ FLIPC_GUARDED_BY(mutex_);
  std::size_t cursor_ FLIPC_GUARDED_BY(mutex_) = 0;
};

}  // namespace flipc

#endif  // SRC_FLIPC_ENDPOINT_GROUP_H_
