// Ready-made FLIPC assemblies.
//
//   Cluster    — real-concurrency: one Domain per node, one native
//                MessagingEngine per node on its own EngineRunner thread
//                (the "message coprocessor"), all over a ThreadFabric.
//                Used by the examples and the stress tests.
//
//   SimCluster — discrete-event: the same domains and engines driven by
//                SimEngineDrivers over a SimFabric with a chosen link
//                model. All paper-reproduction benchmarks use this.
//
// Both wire the kick paths: Domain::KickEngine() (after sends) and the
// fabric delivery callback both wake the node's engine.
#ifndef SRC_FLIPC_CLUSTER_H_
#define SRC_FLIPC_CLUSTER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/status.h"
#include "src/engine/engine_runner.h"
#include "src/engine/messaging_engine.h"
#include "src/engine/platform_model.h"
#include "src/engine/sim_engine_driver.h"
#include "src/flipc/domain.h"
#include "src/kkt/kkt_engine.h"
#include "src/simnet/des.h"
#include "src/simnet/fabric.h"
#include "src/simnet/link_model.h"
#include "src/simos/semaphore_table.h"

namespace flipc {

// ---------------------------------------------------------------------------

class Cluster {
 public:
  struct Options {
    std::uint32_t node_count = 2;
    shm::CommBufferConfig comm;
    engine::EngineOptions engine;
    // Sharded nodes (comm.shard_count > 1): pin each shard planner thread
    // to its own CPU and first-touch its comm-buffer slice (DESIGN.md §12).
    // Single-shard nodes are never pinned regardless of this flag, so the
    // default assembly is unchanged.
    bool pin_shard_threads = true;
    // Longest idle park per runner thread (EngineRunner::Options); the
    // park-cap regression test raises this to make a missed unthrottle
    // deadline visible as a large, deterministic delay.
    DurationNs max_idle_park_ns = 200'000;
  };

  static Result<std::unique_ptr<Cluster>> Create(const Options& options);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Starts/stops all engine threads. Create() returns a stopped cluster.
  void Start();
  void Stop();

  std::uint32_t node_count() const { return static_cast<std::uint32_t>(nodes_.size()); }
  // Planner shards per node (comm.shard_count; 1 = classic assembly).
  std::uint32_t shard_count() const { return shard_count_; }
  Domain& domain(NodeId node) { return *nodes_[node]->domain; }
  // The node's distributor shard (shard 0) — the classic single-engine view.
  engine::MessagingEngine& engine(NodeId node) { return *nodes_[node]->engines[0]; }
  engine::MessagingEngine& engine(NodeId node, std::uint32_t shard) {
    return *nodes_[node]->engines[shard];
  }
  engine::EngineRunner& runner(NodeId node, std::uint32_t shard = 0) {
    return *nodes_[node]->runners[shard];
  }
  // Whether the shard's planner currently exists (false between KillShard
  // and RestartShard).
  bool shard_alive(NodeId node, std::uint32_t shard) const;

  // ---- Failure injection (DESIGN.md §14) ----

  // Murders one shard planner mid-traffic: stops its runner thread and
  // destroys runner and engine, abandoning the comm-buffer state exactly
  // as a crashed coprocessor would. Application threads may keep sending
  // throughout (their endpoints simply stop draining; a killed
  // distributor additionally stops wire polling and cross-shard routing
  // for the node). Returns false if the shard is already dead.
  bool KillShard(NodeId node, std::uint32_t shard);

  // Resurrects a killed shard: builds a fresh engine over the abandoned
  // comm buffer, rewires its handoff rings and kick paths, rebuilds its
  // scheduling state via MessagingEngine::RecoverFromBuffer(), and starts
  // a new runner when the cluster is started. Every surviving runner is
  // kicked afterwards so peers stalled on the dead shard (a distributor
  // parked on its full inbox, consumers idle behind an unpolled wire)
  // resume. Returns false if the shard is alive.
  bool RestartShard(NodeId node, std::uint32_t shard);
  // Sums every shard planner's counters; the telemetry identities are
  // linear, so they hold for the aggregate exactly as per shard.
  engine::EngineStats aggregate_stats(NodeId node) const;
  simos::SemaphoreTable& semaphores() { return semaphores_; }

 private:
  struct Node {
    std::unique_ptr<Domain> domain;
    // One planner per shard; [0] is the distributor (sole wire poller).
    std::vector<std::unique_ptr<engine::MessagingEngine>> engines;
    std::vector<std::unique_ptr<engine::EngineRunner>> runners;
    // Distributor→consumer handoff rings, indexed by consumer shard
    // ([0] unused — the distributor delivers its own endpoints directly).
    // Node-owned so handoff state (cursors AND the producer's private
    // position) survives the death of either endpoint's engine.
    std::vector<std::unique_ptr<engine::MessagingEngine::HandoffRing>> handoffs;
    // Guards runners[] against kick lambdas racing KillShard/RestartShard
    // swaps. Kicks take it briefly (off the product hot path: kicking is
    // already a host-thread parking artifact); runner joins happen OUTSIDE
    // it, because the dying loop thread may itself be inside a kick.
    mutable std::mutex runner_mutex;
    // Per-shard runner options, kept so RestartShard rebuilds the same
    // pinning/warm-touch placement the shard had at Create().
    std::vector<engine::EngineRunner::Options> runner_options;
    // The per-shard kick installed at Create(); re-wired into every
    // restarted engine.
    std::function<void(std::uint32_t)> kick_shard;
  };

  Cluster() = default;

  simos::SemaphoreTable semaphores_;
  std::unique_ptr<simnet::ThreadFabric> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  Options options_;  // RestartShard rebuilds engines from these
  std::uint32_t shard_count_ = 1;
  bool started_ = false;
};

// ---------------------------------------------------------------------------

class SimCluster {
 public:
  enum class EngineKind { kNative, kKkt };

  struct Options {
    std::uint32_t node_count = 2;
    shm::CommBufferConfig comm;
    engine::EngineOptions engine;
    engine::PlatformModel model;          // calibrated costs (Paragon default)
    EngineKind engine_kind = EngineKind::kNative;
    engine::KktModel kkt;                 // used when engine_kind == kKkt
    // Link model factory selector; default Paragon mesh sized to the node
    // count (width = ceil(sqrt(n))).
    std::unique_ptr<simnet::LinkModel> link_model;
    // Fabric-level failure injection (drop probability, seeded FaultPlan);
    // the default is the perfectly reliable fabric FLIPC assumes.
    simnet::SimFabric::Options fabric;
  };

  static Result<std::unique_ptr<SimCluster>> Create(Options options);
  ~SimCluster();
  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  simnet::Simulator& sim() { return sim_; }
  simnet::SimFabric& fabric() { return *fabric_; }
  std::uint32_t node_count() const { return static_cast<std::uint32_t>(nodes_.size()); }
  Domain& domain(NodeId node) { return *nodes_[node]->domain; }
  engine::MessagingEngine& engine(NodeId node) { return *nodes_[node]->engine; }
  engine::SimEngineDriver& driver(NodeId node) { return *nodes_[node]->driver; }
  const engine::PlatformModel& model() const { return model_; }
  simos::SemaphoreTable& semaphores() { return semaphores_; }

 private:
  struct Node {
    std::unique_ptr<Domain> domain;
    std::unique_ptr<engine::MessagingEngine> engine;
    std::unique_ptr<engine::SimEngineDriver> driver;
  };

  SimCluster() = default;

  simnet::Simulator sim_;
  engine::PlatformModel model_;
  simos::SemaphoreTable semaphores_;
  std::unique_ptr<simnet::SimFabric> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace flipc

#endif  // SRC_FLIPC_CLUSTER_H_
