// Ready-made FLIPC assemblies.
//
//   Cluster    — real-concurrency: one Domain per node, one native
//                MessagingEngine per node on its own EngineRunner thread
//                (the "message coprocessor"), all over a ThreadFabric.
//                Used by the examples and the stress tests.
//
//   SimCluster — discrete-event: the same domains and engines driven by
//                SimEngineDrivers over a SimFabric with a chosen link
//                model. All paper-reproduction benchmarks use this.
//
// Both wire the kick paths: Domain::KickEngine() (after sends) and the
// fabric delivery callback both wake the node's engine.
#ifndef SRC_FLIPC_CLUSTER_H_
#define SRC_FLIPC_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/engine/engine_runner.h"
#include "src/engine/messaging_engine.h"
#include "src/engine/platform_model.h"
#include "src/engine/sim_engine_driver.h"
#include "src/flipc/domain.h"
#include "src/kkt/kkt_engine.h"
#include "src/simnet/des.h"
#include "src/simnet/fabric.h"
#include "src/simnet/link_model.h"
#include "src/simos/semaphore_table.h"

namespace flipc {

// ---------------------------------------------------------------------------

class Cluster {
 public:
  struct Options {
    std::uint32_t node_count = 2;
    shm::CommBufferConfig comm;
    engine::EngineOptions engine;
    // Sharded nodes (comm.shard_count > 1): pin each shard planner thread
    // to its own CPU and first-touch its comm-buffer slice (DESIGN.md §12).
    // Single-shard nodes are never pinned regardless of this flag, so the
    // default assembly is unchanged.
    bool pin_shard_threads = true;
  };

  static Result<std::unique_ptr<Cluster>> Create(const Options& options);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Starts/stops all engine threads. Create() returns a stopped cluster.
  void Start();
  void Stop();

  std::uint32_t node_count() const { return static_cast<std::uint32_t>(nodes_.size()); }
  // Planner shards per node (comm.shard_count; 1 = classic assembly).
  std::uint32_t shard_count() const { return shard_count_; }
  Domain& domain(NodeId node) { return *nodes_[node]->domain; }
  // The node's distributor shard (shard 0) — the classic single-engine view.
  engine::MessagingEngine& engine(NodeId node) { return *nodes_[node]->engines[0]; }
  engine::MessagingEngine& engine(NodeId node, std::uint32_t shard) {
    return *nodes_[node]->engines[shard];
  }
  engine::EngineRunner& runner(NodeId node, std::uint32_t shard = 0) {
    return *nodes_[node]->runners[shard];
  }
  // Sums every shard planner's counters; the telemetry identities are
  // linear, so they hold for the aggregate exactly as per shard.
  engine::EngineStats aggregate_stats(NodeId node) const;
  simos::SemaphoreTable& semaphores() { return semaphores_; }

 private:
  struct Node {
    std::unique_ptr<Domain> domain;
    // One planner per shard; [0] is the distributor (sole wire poller).
    std::vector<std::unique_ptr<engine::MessagingEngine>> engines;
    std::vector<std::unique_ptr<engine::EngineRunner>> runners;
    // Distributor→consumer handoff rings, indexed by consumer shard
    // ([0] unused — the distributor delivers its own endpoints directly).
    std::vector<std::unique_ptr<engine::MessagingEngine::HandoffRing>> handoffs;
  };

  Cluster() = default;

  simos::SemaphoreTable semaphores_;
  std::unique_ptr<simnet::ThreadFabric> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint32_t shard_count_ = 1;
  bool started_ = false;
};

// ---------------------------------------------------------------------------

class SimCluster {
 public:
  enum class EngineKind { kNative, kKkt };

  struct Options {
    std::uint32_t node_count = 2;
    shm::CommBufferConfig comm;
    engine::EngineOptions engine;
    engine::PlatformModel model;          // calibrated costs (Paragon default)
    EngineKind engine_kind = EngineKind::kNative;
    engine::KktModel kkt;                 // used when engine_kind == kKkt
    // Link model factory selector; default Paragon mesh sized to the node
    // count (width = ceil(sqrt(n))).
    std::unique_ptr<simnet::LinkModel> link_model;
  };

  static Result<std::unique_ptr<SimCluster>> Create(Options options);
  ~SimCluster();
  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  simnet::Simulator& sim() { return sim_; }
  simnet::SimFabric& fabric() { return *fabric_; }
  std::uint32_t node_count() const { return static_cast<std::uint32_t>(nodes_.size()); }
  Domain& domain(NodeId node) { return *nodes_[node]->domain; }
  engine::MessagingEngine& engine(NodeId node) { return *nodes_[node]->engine; }
  engine::SimEngineDriver& driver(NodeId node) { return *nodes_[node]->driver; }
  const engine::PlatformModel& model() const { return model_; }
  simos::SemaphoreTable& semaphores() { return semaphores_; }

 private:
  struct Node {
    std::unique_ptr<Domain> domain;
    std::unique_ptr<engine::MessagingEngine> engine;
    std::unique_ptr<engine::SimEngineDriver> driver;
  };

  SimCluster() = default;

  simnet::Simulator sim_;
  engine::PlatformModel model_;
  simos::SemaphoreTable semaphores_;
  std::unique_ptr<simnet::SimFabric> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace flipc

#endif  // SRC_FLIPC_CLUSTER_H_
