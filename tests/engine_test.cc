// Tests for the messaging engine: the optimistic transport's delivery and
// discard rules, ordering, validity checks, the protocol framework, and
// the endpoint-scan policies.
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "src/engine/messaging_engine.h"
#include "src/engine/sim_engine_driver.h"
#include "src/shm/comm_buffer.h"
#include "src/simnet/des.h"
#include "src/simnet/fabric.h"
#include "src/simnet/link_model.h"

namespace flipc::engine {
namespace {

using shm::CommBuffer;
using shm::EndpointType;
using waitfree::BufferIndex;
using waitfree::MsgState;

// Two hand-wired nodes with manually stepped engines: every test drives the
// engines explicitly, so interleavings are exact.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    shm::CommBufferConfig config;
    config.message_size = 128;
    config.buffer_count = 32;
    config.max_endpoints = 8;

    fabric_ = std::make_unique<simnet::SimFabric>(
        sim_, std::make_unique<simnet::MeshLinkModel>(), 2);
    for (int n = 0; n < 2; ++n) {
      auto comm = CommBuffer::Create(config);
      ASSERT_TRUE(comm.ok());
      comm_[n] = std::move(comm).value();
      engine_[n] = std::make_unique<MessagingEngine>(*comm_[n], fabric_->wire(
          static_cast<NodeId>(n)), options_, &model_);
    }
  }

  // Runs both engines and the fabric to quiescence.
  void RunAll() {
    bool progress = true;
    while (progress) {
      progress = false;
      progress |= engine_[0]->Step();
      progress |= engine_[1]->Step();
      if (sim_.pending_events() > 0) {
        sim_.Run();
        progress = true;
      }
    }
  }

  // Creates an endpoint and returns its index.
  std::uint32_t MakeEndpoint(int node, EndpointType type, std::uint32_t depth = 8,
                             std::uint32_t priority = 0) {
    CommBuffer::EndpointParams params;
    params.type = type;
    params.queue_capacity = depth;
    params.priority = priority;
    auto index = comm_[node]->AllocateEndpoint(params);
    EXPECT_TRUE(index.ok());
    return *index;
  }

  // Rebuilds both engines with the current options_, for tests that tune
  // scheduling knobs (batch size, QoS weights) after SetUp.
  void RebuildEngines() {
    for (int n = 0; n < 2; ++n) {
      engine_[n] = std::make_unique<MessagingEngine>(
          *comm_[n], fabric_->wire(static_cast<NodeId>(n)), options_, &model_);
    }
  }

  // Full-params endpoint creation for the QoS tests.
  std::uint32_t MakeEndpointQos(int node, const CommBuffer::EndpointParams& params) {
    auto index = comm_[node]->AllocateEndpoint(params);
    EXPECT_TRUE(index.ok());
    return *index;
  }

  // Posts a fresh buffer on a receive endpoint; returns its index.
  BufferIndex PostRecvBuffer(int node, std::uint32_t endpoint) {
    auto buffer = comm_[node]->AllocateBuffer();
    EXPECT_TRUE(buffer.ok());
    comm_[node]->msg(*buffer).header->state.Store(MsgState::kReady);
    EXPECT_TRUE(comm_[node]->queue(endpoint).Release(*buffer));
    return *buffer;
  }

  // Queues a send of `text` from `endpoint` on node to a destination.
  BufferIndex QueueSend(int node, std::uint32_t endpoint, Address dst,
                        const char* text = "hello") {
    auto buffer = comm_[node]->AllocateBuffer();
    EXPECT_TRUE(buffer.ok());
    shm::MsgView view = comm_[node]->msg(*buffer);
    std::memcpy(view.payload, text, std::strlen(text) + 1);
    view.header->set_peer_address(dst);
    view.header->state.Store(MsgState::kReady);
    EXPECT_TRUE(comm_[node]->queue(endpoint).Release(*buffer));
    return *buffer;
  }

  simnet::Simulator sim_;
  PlatformModel model_;
  EngineOptions options_;
  std::unique_ptr<simnet::SimFabric> fabric_;
  std::unique_ptr<CommBuffer> comm_[2];
  std::unique_ptr<MessagingEngine> engine_[2];
};

TEST_F(EngineTest, TransfersOneMessage) {
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  const BufferIndex rx_buf = PostRecvBuffer(1, rx);
  const BufferIndex tx_buf = QueueSend(0, tx, Address(1, static_cast<std::uint16_t>(rx)));

  RunAll();

  // Sender side: buffer completed and re-acquirable (step 5).
  EXPECT_TRUE(comm_[0]->msg(tx_buf).header->state.IsCompleted());
  EXPECT_EQ(comm_[0]->queue(tx).Acquire(), tx_buf);

  // Receiver side: message landed in the posted buffer (step 4).
  EXPECT_EQ(comm_[1]->queue(rx).Acquire(), rx_buf);
  shm::MsgView view = comm_[1]->msg(rx_buf);
  EXPECT_STREQ(reinterpret_cast<const char*>(view.payload), "hello");
  EXPECT_TRUE(view.header->state.IsCompleted());
  // The receiver learns the source endpoint address.
  EXPECT_EQ(view.header->peer_address(), Address(0, static_cast<std::uint16_t>(tx)));

  EXPECT_EQ(engine_[0]->stats().messages_sent, 1u);
  EXPECT_EQ(engine_[1]->stats().messages_delivered, 1u);
}

TEST_F(EngineTest, DiscardsWithoutPostedBuffer) {
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  QueueSend(0, tx, Address(1, static_cast<std::uint16_t>(rx)));

  RunAll();

  EXPECT_EQ(engine_[1]->stats().drops_no_buffer, 1u);
  EXPECT_EQ(comm_[1]->endpoint(rx).DropCount(), 1u);
  // The sender is unaffected — its buffer completed normally (optimistic).
  EXPECT_EQ(engine_[0]->stats().messages_sent, 1u);

  // A buffer posted later receives the NEXT message, not the dropped one.
  const BufferIndex rx_buf = PostRecvBuffer(1, rx);
  QueueSend(0, tx, Address(1, static_cast<std::uint16_t>(rx)), "second");
  RunAll();
  EXPECT_EQ(comm_[1]->queue(rx).Acquire(), rx_buf);
  EXPECT_STREQ(reinterpret_cast<const char*>(comm_[1]->msg(rx_buf).payload), "second");
}

TEST_F(EngineTest, PreservesOrderPerEndpointPair) {
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  const Address dst(1, static_cast<std::uint16_t>(rx));

  BufferIndex rx_bufs[5];
  for (auto& b : rx_bufs) {
    b = PostRecvBuffer(1, rx);
  }
  for (int i = 0; i < 5; ++i) {
    char text[16];
    std::snprintf(text, sizeof(text), "msg-%d", i);
    QueueSend(0, tx, dst, text);
  }
  RunAll();

  for (int i = 0; i < 5; ++i) {
    const BufferIndex b = comm_[1]->queue(rx).Acquire();
    ASSERT_EQ(b, rx_bufs[i]);  // delivered into buffers in posting order
    char expect[16];
    std::snprintf(expect, sizeof(expect), "msg-%d", i);
    EXPECT_STREQ(reinterpret_cast<const char*>(comm_[1]->msg(b).payload), expect);
  }
}

TEST_F(EngineTest, BadDestinationEndpointCounted) {
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  QueueSend(0, tx, Address(1, 999));  // out of range at the receiver
  QueueSend(0, tx, Address(1, 5));    // valid index but inactive
  RunAll();
  EXPECT_EQ(engine_[1]->stats().drops_bad_address, 2u);
}

TEST_F(EngineTest, SendToUnknownNodeCompletesBuffer) {
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  const BufferIndex buffer = QueueSend(0, tx, Address(77, 0));
  RunAll();
  EXPECT_EQ(engine_[0]->stats().drops_bad_address, 1u);
  // The application can still reclaim its buffer.
  EXPECT_EQ(comm_[0]->queue(tx).Acquire(), buffer);
}

TEST_F(EngineTest, SendToWrongTypeEndpointDropped) {
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t peer_tx = MakeEndpoint(1, EndpointType::kSend);
  QueueSend(0, tx, Address(1, static_cast<std::uint16_t>(peer_tx)));
  RunAll();
  EXPECT_EQ(engine_[1]->stats().drops_bad_address, 1u);
}

TEST_F(EngineTest, InvalidBufferIndexRejectedSafely) {
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  // An errant application writes garbage into its queue cell.
  ASSERT_TRUE(comm_[0]->queue(tx).Release(0xdeadbeef));
  RunAll();
  EXPECT_EQ(engine_[0]->stats().validity_rejections, 1u);
  EXPECT_EQ(engine_[0]->stats().messages_sent, 0u);
  // The queue advanced past the garbage; the endpoint still works.
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  PostRecvBuffer(1, rx);
  QueueSend(0, tx, Address(1, static_cast<std::uint16_t>(rx)));
  RunAll();
  EXPECT_EQ(engine_[1]->stats().messages_delivered, 1u);
}

TEST_F(EngineTest, ValidityChecksRejectInvalidDestination) {
  // Rebuild engine 0 with checks on.
  options_.validity_checks = true;
  engine_[0] = std::make_unique<MessagingEngine>(*comm_[0], fabric_->wire(0), options_,
                                                 &model_);
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  QueueSend(0, tx, Address::Invalid());
  RunAll();
  EXPECT_EQ(engine_[0]->stats().validity_rejections, 1u);
  EXPECT_EQ(engine_[0]->stats().messages_sent, 0u);
}

TEST_F(EngineTest, RoundRobinAcrossSendEndpoints) {
  const std::uint32_t tx_a = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t tx_b = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  const Address dst(1, static_cast<std::uint16_t>(rx));
  for (int i = 0; i < 4; ++i) {
    PostRecvBuffer(1, rx);
  }
  QueueSend(0, tx_a, dst, "a1");
  QueueSend(0, tx_a, dst, "a2");
  QueueSend(0, tx_b, dst, "b1");
  QueueSend(0, tx_b, dst, "b2");

  // Step the sender engine four times: round-robin must alternate.
  std::vector<std::string> arrival_order;
  for (int i = 0; i < 4; ++i) {
    engine_[0]->Step();
  }
  sim_.Run();
  while (engine_[1]->Step()) {
  }
  waitfree::BufferQueueView rx_queue = comm_[1]->queue(rx);
  for (int i = 0; i < 4; ++i) {
    const BufferIndex b = rx_queue.Acquire();
    ASSERT_NE(b, waitfree::kInvalidBuffer);
    arrival_order.emplace_back(reinterpret_cast<const char*>(comm_[1]->msg(b).payload));
  }
  EXPECT_EQ(arrival_order, (std::vector<std::string>{"a1", "b1", "a2", "b2"}));
}

TEST_F(EngineTest, PriorityScanPrefersHighPriorityEndpoint) {
  options_.priority_scan = true;
  engine_[0] = std::make_unique<MessagingEngine>(*comm_[0], fabric_->wire(0), options_,
                                                 &model_);
  const std::uint32_t tx_low = MakeEndpoint(0, EndpointType::kSend, 8, /*priority=*/1);
  const std::uint32_t tx_high = MakeEndpoint(0, EndpointType::kSend, 8, /*priority=*/9);
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  const Address dst(1, static_cast<std::uint16_t>(rx));
  for (int i = 0; i < 4; ++i) {
    PostRecvBuffer(1, rx);
  }
  QueueSend(0, tx_low, dst, "low1");
  QueueSend(0, tx_low, dst, "low2");
  QueueSend(0, tx_high, dst, "high1");
  QueueSend(0, tx_high, dst, "high2");

  for (int i = 0; i < 4; ++i) {
    engine_[0]->Step();
  }
  sim_.Run();
  while (engine_[1]->Step()) {
  }
  std::vector<std::string> order;
  waitfree::BufferQueueView rx_queue = comm_[1]->queue(rx);
  for (int i = 0; i < 4; ++i) {
    const BufferIndex b = rx_queue.Acquire();
    ASSERT_NE(b, waitfree::kInvalidBuffer);
    order.emplace_back(reinterpret_cast<const char*>(comm_[1]->msg(b).payload));
  }
  EXPECT_EQ(order, (std::vector<std::string>{"high1", "high2", "low1", "low2"}));
}

// Regression: a priority preemption must not reset the round-robin rotation
// point. The old code advanced scan_cursor_ past whichever endpoint was
// delivered, so after every high-priority preemption the next scan restarted
// just past the HIGH endpoint, re-served the first ready low-priority
// endpoint, and starved the equal-priority endpoints behind it.
TEST_F(EngineTest, PriorityPreemptionDoesNotResetRotation) {
  options_.priority_scan = true;
  engine_[0] = std::make_unique<MessagingEngine>(*comm_[0], fabric_->wire(0), options_,
                                                 &model_);
  const std::uint32_t low[3] = {MakeEndpoint(0, EndpointType::kSend, 8, /*priority=*/1),
                                MakeEndpoint(0, EndpointType::kSend, 8, /*priority=*/1),
                                MakeEndpoint(0, EndpointType::kSend, 8, /*priority=*/1)};
  const std::uint32_t high = MakeEndpoint(0, EndpointType::kSend, 8, /*priority=*/9);
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  const Address dst(1, static_cast<std::uint16_t>(rx));
  for (int i = 0; i < 6; ++i) {
    PostRecvBuffer(1, rx);
  }
  for (int e = 0; e < 3; ++e) {
    for (int i = 1; i <= 3; ++i) {
      char text[16];
      std::snprintf(text, sizeof(text), "l%d-%d", e, i);
      QueueSend(0, low[e], dst, text);
    }
  }

  // Three rounds of: one low-priority delivery, then a high-priority message
  // arrives and preempts. Equal-priority rotation must still visit each low
  // endpoint once per cycle.
  for (int round = 1; round <= 3; ++round) {
    engine_[0]->Step();  // a low endpoint (high queue is empty)
    char text[16];
    std::snprintf(text, sizeof(text), "h%d", round);
    QueueSend(0, high, dst, text);
    engine_[0]->Step();  // the high endpoint preempts
  }
  sim_.Run();
  while (engine_[1]->Step()) {
  }

  std::vector<std::string> order;
  waitfree::BufferQueueView rx_queue = comm_[1]->queue(rx);
  for (int i = 0; i < 6; ++i) {
    const BufferIndex b = rx_queue.Acquire();
    ASSERT_NE(b, waitfree::kInvalidBuffer);
    order.emplace_back(reinterpret_cast<const char*>(comm_[1]->msg(b).payload));
  }
  EXPECT_EQ(order, (std::vector<std::string>{"l0-1", "h1", "l1-1", "h2", "l2-1", "h3"}));
}

// ------------------------- Doorbell scheduling ------------------------------

TEST_F(EngineTest, DoorbellAvoidsBackstopSweep) {
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  PostRecvBuffer(1, rx);
  QueueSend(0, tx, Address(1, static_cast<std::uint16_t>(rx)));
  {
    // The test helpers write queues directly; ring the doorbell the way the
    // application library does after a release.
    waitfree::ScopedBoundaryRole app_role(waitfree::Writer::kApplication);
    comm_[0]->doorbell_ring().Ring(tx);
  }

  EXPECT_GT(engine_[0]->PlanStep(), 0);
  EXPECT_TRUE(engine_[0]->CommitStep());
  EXPECT_EQ(engine_[0]->stats().doorbells_consumed, 1u);
  EXPECT_EQ(engine_[0]->stats().backstop_sweeps, 0u);  // hint sufficed
  EXPECT_EQ(engine_[0]->stats().messages_sent, 1u);
}

TEST_F(EngineTest, TransmitBatchingCoalescesSameDestination) {
  const std::uint32_t tx_a = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t tx_b = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  const Address dst(1, static_cast<std::uint16_t>(rx));
  for (int i = 0; i < 4; ++i) {
    PostRecvBuffer(1, rx);
  }
  QueueSend(0, tx_a, dst, "a1");
  QueueSend(0, tx_a, dst, "a2");
  QueueSend(0, tx_b, dst, "b1");
  QueueSend(0, tx_b, dst, "b2");

  // Both endpoints target one node: each work unit carries one message per
  // ready endpoint (never two from the same endpoint — that would break
  // round-robin fairness), so two steps move all four messages.
  EXPECT_TRUE(engine_[0]->Step());
  EXPECT_EQ(engine_[0]->stats().messages_sent, 2u);
  EXPECT_TRUE(engine_[0]->Step());
  EXPECT_EQ(engine_[0]->stats().messages_sent, 4u);
  EXPECT_EQ(engine_[0]->stats().transmit_batches, 2u);
  EXPECT_EQ(engine_[0]->stats().batched_messages, 4u);

  sim_.Run();
  while (engine_[1]->Step()) {
  }
  EXPECT_EQ(engine_[1]->stats().messages_delivered, 4u);
}

TEST_F(EngineTest, HooksFire) {
  int receive_hook_calls = 0;
  int send_hook_calls = 0;
  bool last_delivered = false;
  engine_[1]->SetReceiveHook([&](std::uint32_t, bool delivered) {
    ++receive_hook_calls;
    last_delivered = delivered;
  });
  engine_[0]->SetSendCompleteHook([&](std::uint32_t) { ++send_hook_calls; });

  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  QueueSend(0, tx, Address(1, static_cast<std::uint16_t>(rx)));  // will drop
  RunAll();
  EXPECT_EQ(receive_hook_calls, 1);
  EXPECT_FALSE(last_delivered);
  EXPECT_EQ(send_hook_calls, 1);

  PostRecvBuffer(1, rx);
  QueueSend(0, tx, Address(1, static_cast<std::uint16_t>(rx)));
  RunAll();
  EXPECT_EQ(receive_hook_calls, 2);
  EXPECT_TRUE(last_delivered);
  EXPECT_EQ(send_hook_calls, 2);
}

// ------------------------- Protocol framework -------------------------------

class RecordingHandler : public ProtocolHandler {
 public:
  void HandlePacket(simnet::Packet packet, simnet::CostAccumulator& cost) override {
    cost.Charge(1234);
    packets.push_back(std::move(packet));
  }
  bool PollWork(simnet::CostAccumulator&) override { return false; }

  std::vector<simnet::Packet> packets;
};

TEST_F(EngineTest, ProtocolFrameworkDispatchesById) {
  RecordingHandler handler;
  ASSERT_TRUE(engine_[1]->RegisterProtocol(simnet::kProtocolKernelIpc, &handler).ok());

  simnet::Packet packet;
  packet.dst_node = 1;
  packet.protocol = simnet::kProtocolKernelIpc;
  packet.payload.resize(64);
  ASSERT_TRUE(fabric_->wire(0).Send(std::move(packet)).ok());
  RunAll();

  ASSERT_EQ(handler.packets.size(), 1u);
  EXPECT_EQ(handler.packets[0].src_node, 0u);
  // Handler cost reaches the deferred-cost channel for the DES driver.
  EXPECT_EQ(engine_[1]->TakeDeferredCost(), 1234);
}

TEST_F(EngineTest, UnknownProtocolCounted) {
  simnet::Packet packet;
  packet.dst_node = 1;
  packet.protocol = 6;  // registered by nobody
  ASSERT_TRUE(fabric_->wire(0).Send(std::move(packet)).ok());
  RunAll();
  EXPECT_EQ(engine_[1]->stats().unknown_protocol_packets, 1u);
}

TEST_F(EngineTest, RegisterProtocolValidation) {
  RecordingHandler handler;
  EXPECT_FALSE(engine_[0]->RegisterProtocol(simnet::kProtocolFlipc, &handler).ok());
  EXPECT_FALSE(engine_[0]->RegisterProtocol(99, &handler).ok());
  EXPECT_TRUE(engine_[0]->RegisterProtocol(3, &handler).ok());
  EXPECT_EQ(engine_[0]->RegisterProtocol(3, &handler).code(),
            StatusCode::kFailedPrecondition);
}

// --------------------------- Plan/commit contract ----------------------------

TEST_F(EngineTest, PlanIsIdempotentUntilCommit) {
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  PostRecvBuffer(1, rx);
  QueueSend(0, tx, Address(1, static_cast<std::uint16_t>(rx)));

  const DurationNs cost1 = engine_[0]->PlanStep();
  const DurationNs cost2 = engine_[0]->PlanStep();
  EXPECT_GT(cost1, 0);
  EXPECT_EQ(cost1, cost2);
  EXPECT_TRUE(engine_[0]->CommitStep());
  EXPECT_EQ(engine_[0]->PlanStep(), 0);  // no more work
  EXPECT_FALSE(engine_[0]->CommitStep());
}

TEST_F(EngineTest, HasWorkTracksState) {
  EXPECT_FALSE(engine_[0]->HasWork());
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  EXPECT_FALSE(engine_[0]->HasWork());
  QueueSend(0, tx, Address(1, 0));
  EXPECT_TRUE(engine_[0]->HasWork());
  engine_[0]->Step();
  EXPECT_FALSE(engine_[0]->HasWork());
}

// ----------------------------- Sharded engine --------------------------------

// Node 0 is a classic single-shard sender; node 1 runs two shard planners
// over one communication buffer: shard 0 (the distributor — sole wire
// poller) and shard 1, connected by a hand-wired SPSC handoff ring. Every
// test steps each planner explicitly, so the cross-shard interleavings are
// exact (DESIGN.md §12).
class ShardedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_unique<simnet::SimFabric>(
        sim_, std::make_unique<simnet::MeshLinkModel>(), 2);

    shm::CommBufferConfig tx_config;
    tx_config.message_size = 128;
    tx_config.buffer_count = 32;
    tx_config.max_endpoints = 8;
    auto tx_comm = CommBuffer::Create(tx_config);
    ASSERT_TRUE(tx_comm.ok());
    tx_comm_ = std::move(tx_comm).value();
    tx_engine_ = std::make_unique<MessagingEngine>(*tx_comm_, fabric_->wire(0),
                                                   EngineOptions{}, &model_);

    shm::CommBufferConfig rx_config;
    rx_config.message_size = 128;
    rx_config.buffer_count = 32;
    rx_config.max_endpoints = 8;  // 2 shards x 4 endpoints
    rx_config.shard_count = 2;
    auto rx_comm = CommBuffer::Create(rx_config);
    ASSERT_TRUE(rx_comm.ok());
    rx_comm_ = std::move(rx_comm).value();
    for (std::uint32_t s = 0; s < 2; ++s) {
      EngineOptions options;
      options.shard_id = s;
      shard_[s] = std::make_unique<MessagingEngine>(*rx_comm_, fabric_->wire(1),
                                                    options, &model_);
    }
  }

  // Wires the distributor→shard-1 handoff ring (capacity rounds up to a
  // power of two). Separate from SetUp so tests can pick a tiny ring.
  void WireHandoff(std::uint32_t capacity) {
    handoff_ = std::make_unique<MessagingEngine::HandoffRing>(
        capacity, /*producer_shard=*/0, /*consumer_shard=*/1);
    shard_[0]->SetHandoffOutbox(1, handoff_.get());
    shard_[1]->SetHandoffInbox(handoff_.get());
  }

  // Allocates a receive endpoint on node 1 inside `shard`.
  std::uint32_t MakeShardReceiver(std::uint32_t shard, std::uint32_t depth = 8) {
    CommBuffer::EndpointParams params;
    params.type = EndpointType::kReceive;
    params.queue_capacity = depth;
    params.shard = shard;
    auto index = rx_comm_->AllocateEndpoint(params);
    EXPECT_TRUE(index.ok());
    EXPECT_EQ(rx_comm_->shard_of(*index), shard);
    return *index;
  }

  BufferIndex PostRecvBuffer(std::uint32_t endpoint) {
    auto buffer = rx_comm_->AllocateBuffer();
    EXPECT_TRUE(buffer.ok());
    rx_comm_->msg(*buffer).header->state.Store(MsgState::kReady);
    EXPECT_TRUE(rx_comm_->queue(endpoint).Release(*buffer));
    return *buffer;
  }

  BufferIndex QueueSend(std::uint32_t endpoint, Address dst, const char* text = "hello") {
    auto buffer = tx_comm_->AllocateBuffer();
    EXPECT_TRUE(buffer.ok());
    shm::MsgView view = tx_comm_->msg(*buffer);
    std::memcpy(view.payload, text, std::strlen(text) + 1);
    view.header->set_peer_address(dst);
    view.header->state.Store(MsgState::kReady);
    EXPECT_TRUE(tx_comm_->queue(endpoint).Release(*buffer));
    return *buffer;
  }

  std::uint32_t MakeSender(std::uint32_t depth = 8) {
    CommBuffer::EndpointParams params;
    params.type = EndpointType::kSend;
    params.queue_capacity = depth;
    auto index = tx_comm_->AllocateEndpoint(params);
    EXPECT_TRUE(index.ok());
    return *index;
  }

  // Runs sender, fabric, and both shard planners to quiescence.
  void RunAll() {
    bool progress = true;
    while (progress) {
      progress = false;
      progress |= tx_engine_->Step();
      progress |= shard_[0]->Step();
      progress |= shard_[1]->Step();
      if (sim_.pending_events() > 0) {
        sim_.Run();
        progress = true;
      }
    }
  }

  simnet::Simulator sim_;
  PlatformModel model_;
  std::unique_ptr<simnet::SimFabric> fabric_;
  std::unique_ptr<CommBuffer> tx_comm_;
  std::unique_ptr<CommBuffer> rx_comm_;
  std::unique_ptr<MessagingEngine> tx_engine_;
  std::unique_ptr<MessagingEngine> shard_[2];
  std::unique_ptr<MessagingEngine::HandoffRing> handoff_;
};

TEST_F(ShardedEngineTest, GeometryAndRolesPublished) {
  EXPECT_EQ(rx_comm_->shard_count(), 2u);
  EXPECT_EQ(rx_comm_->endpoints_per_shard(), 4u);
  EXPECT_TRUE(shard_[0]->is_distributor());
  EXPECT_FALSE(shard_[1]->is_distributor());
  EXPECT_EQ(shard_[0]->shard_first_endpoint(), 0u);
  EXPECT_EQ(shard_[0]->shard_end_endpoint(), 4u);
  EXPECT_EQ(shard_[1]->shard_first_endpoint(), 4u);
  EXPECT_EQ(shard_[1]->shard_end_endpoint(), 8u);
  const std::uint32_t rx = MakeShardReceiver(1);
  EXPECT_EQ(rx_comm_->endpoint(rx).shard.ReadRelaxed(), 1u);
}

TEST_F(ShardedEngineTest, CrossShardDeliveryThroughHandoff) {
  WireHandoff(8);
  const std::uint32_t tx = MakeSender();
  const std::uint32_t rx = MakeShardReceiver(1);
  const BufferIndex rx_buf = PostRecvBuffer(rx);
  QueueSend(tx, Address(1, static_cast<std::uint16_t>(rx)), "cross");

  RunAll();

  // The distributor routed the packet instead of delivering it...
  EXPECT_EQ(shard_[0]->stats().handoff_pushed, 1u);
  EXPECT_EQ(shard_[0]->stats().messages_delivered, 0u);
  // ...and the owning planner popped and delivered it.
  EXPECT_EQ(shard_[1]->stats().handoff_popped, 1u);
  EXPECT_EQ(shard_[1]->stats().messages_delivered, 1u);
  EXPECT_EQ(rx_comm_->queue(rx).Acquire(), rx_buf);
  shm::MsgView view = rx_comm_->msg(rx_buf);
  EXPECT_STREQ(reinterpret_cast<const char*>(view.payload), "cross");
}

TEST_F(ShardedEngineTest, DistributorShardDeliversOwnEndpointsDirectly) {
  WireHandoff(8);
  const std::uint32_t tx = MakeSender();
  const std::uint32_t rx = MakeShardReceiver(0);
  PostRecvBuffer(rx);
  QueueSend(tx, Address(1, static_cast<std::uint16_t>(rx)));

  RunAll();

  // Shard-0 destination: no handoff, identical to the legacy single-shard
  // delivery path.
  EXPECT_EQ(shard_[0]->stats().handoff_pushed, 0u);
  EXPECT_EQ(shard_[0]->stats().messages_delivered, 1u);
  EXPECT_EQ(shard_[1]->stats().handoff_popped, 0u);
  EXPECT_EQ(shard_[1]->stats().messages_delivered, 0u);
}

TEST_F(ShardedEngineTest, HandoffFullParksPacketAndRecovers) {
  WireHandoff(2);  // tiny ring: capacity 2
  const std::uint32_t tx = MakeSender();
  const std::uint32_t rx = MakeShardReceiver(1);
  constexpr int kMessages = 6;
  BufferIndex rx_bufs[kMessages];
  for (int i = 0; i < kMessages; ++i) {
    rx_bufs[i] = PostRecvBuffer(rx);
  }
  char text[16];
  for (int i = 0; i < kMessages; ++i) {
    std::snprintf(text, sizeof(text), "msg%d", i);
    QueueSend(tx, Address(1, static_cast<std::uint16_t>(rx)), text);
  }

  // Transmit everything and run ONLY the distributor: it fills the ring,
  // then parks one packet and stalls wire polling (bounded memory — the
  // rest stay queued on the fabric side).
  while (tx_engine_->Step()) {
  }
  sim_.Run();
  while (shard_[0]->Step()) {
  }
  EXPECT_EQ(shard_[0]->stats().handoff_pushed, 2u);
  EXPECT_GE(shard_[0]->stats().handoff_full_retries, 1u);
  EXPECT_TRUE(shard_[0]->HasWork());  // parked packet keeps the planner live

  // Consumer progress restores distributor liveness: draining the ring lets
  // the parked packet and every remaining wire packet through, in order.
  RunAll();
  EXPECT_EQ(shard_[1]->stats().handoff_popped, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(shard_[1]->stats().messages_delivered, static_cast<std::uint64_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    const BufferIndex buffer = rx_comm_->queue(rx).Acquire();
    EXPECT_EQ(buffer, rx_bufs[i]);
    std::snprintf(text, sizeof(text), "msg%d", i);
    EXPECT_STREQ(reinterpret_cast<const char*>(rx_comm_->msg(buffer).payload), text);
  }
}

TEST_F(ShardedEngineTest, UnwiredConsumerShardCountsDrop) {
  // No WireHandoff: a cross-shard destination with no ring is a plumbing
  // error, counted like any other undeliverable address.
  const std::uint32_t tx = MakeSender();
  const std::uint32_t rx = MakeShardReceiver(1);
  PostRecvBuffer(rx);
  QueueSend(tx, Address(1, static_cast<std::uint16_t>(rx)));

  RunAll();

  EXPECT_EQ(shard_[0]->stats().handoff_pushed, 0u);
  EXPECT_EQ(shard_[1]->stats().messages_delivered, 0u);
  EXPECT_EQ(shard_[0]->stats().drops_bad_address, 1u);
}

TEST_F(ShardedEngineTest, PerShardStatsAggregateKeepsIdentities) {
  WireHandoff(8);
  const std::uint32_t tx = MakeSender();
  const std::uint32_t rx0 = MakeShardReceiver(0);
  const std::uint32_t rx1 = MakeShardReceiver(1);
  PostRecvBuffer(rx0);
  PostRecvBuffer(rx1);
  QueueSend(tx, Address(1, static_cast<std::uint16_t>(rx0)));
  QueueSend(tx, Address(1, static_cast<std::uint16_t>(rx1)));

  RunAll();

  EngineStats total;
  total.Add(shard_[0]->stats());
  total.Add(shard_[1]->stats());
  EXPECT_EQ(total.messages_delivered, 2u);
  EXPECT_EQ(total.handoff_pushed, total.handoff_popped);
  // The backstop identity is linear, so it holds per shard and aggregate.
  for (const MessagingEngine* engine : {shard_[0].get(), shard_[1].get()}) {
    const EngineStats& s = engine->stats();
    EXPECT_EQ(s.backstop_sweeps,
              s.doorbell_overflows + s.sweeps_periodic + s.sweeps_no_candidate);
  }
  EXPECT_EQ(total.backstop_sweeps, total.doorbell_overflows + total.sweeps_periodic +
                                       total.sweeps_no_candidate);
}

// A planner dies with queued work and published doorbells; a fresh engine
// built over the abandoned comm buffer rebuilds its scheduling state from
// the authoritative queue cursors (DESIGN.md §14) and finishes the job.
TEST_F(EngineTest, RecoverFromBufferRebuildsSchedulingState) {
  const std::uint32_t tx = MakeEndpoint(0, EndpointType::kSend);
  const std::uint32_t rx = MakeEndpoint(1, EndpointType::kReceive);
  const Address dst(1, static_cast<std::uint16_t>(rx));
  for (int i = 0; i < 3; ++i) {
    PostRecvBuffer(1, rx);
    QueueSend(0, tx, dst);
    comm_[0]->doorbell_ring().Ring(tx);
  }
  EXPECT_EQ(comm_[0]->doorbell_ring().PendingCount(), 3u);

  // Crash: the engine dies before planning anything. Its heap (stats,
  // planned batch) is gone; the comm buffer is the only survivor.
  engine_[0].reset();
  engine_[0] = std::make_unique<MessagingEngine>(*comm_[0], fabric_->wire(0),
                                                 options_, &model_);
  engine_[0]->RecoverFromBuffer();

  // Scheduling state was rebuilt: stale doorbells fast-forwarded (the
  // sweep already rediscovered their work), the one busy endpoint active.
  EXPECT_EQ(comm_[0]->doorbell_ring().PendingCount(), 0u);
  EXPECT_EQ(engine_[0]->stats().recoveries, 1u);
  EXPECT_EQ(engine_[0]->stats().recovered_active, 1u);
  // The recovery sweep is not a backstop sweep: the cause identity holds.
  EXPECT_EQ(engine_[0]->stats().backstop_sweeps,
            engine_[0]->stats().doorbell_overflows +
                engine_[0]->stats().sweeps_periodic +
                engine_[0]->stats().sweeps_no_candidate);

  RunAll();

  // Nothing lost: all three messages crossed, and the comm-resident
  // telemetry (which survived the crash, unlike engine stats) agrees.
  EXPECT_EQ(engine_[1]->stats().messages_delivered, 3u);
  EXPECT_EQ(comm_[0]->telemetry(tx).engine_transmits.Read(), 3u);
  EXPECT_EQ(comm_[0]->endpoint(tx).processed_total.Read(), 3u);
}

// ------------------------------- QoS planner --------------------------------

// Two backlogged classes with weights 3:1 split a contended interval's
// transmissions 6:2 — the deficit accounting balances earnings and payments
// per message, so the split is exact, not just asymptotic.
TEST_F(EngineTest, WeightedClassesShareTransmitsProportionally) {
  options_.transmit_batch = 1;  // one selection per plan: interleaving visible
  options_.qos_weights = {3, 1, 1, 1};
  RebuildEngines();

  CommBuffer::EndpointParams heavy;
  heavy.type = EndpointType::kSend;
  heavy.queue_capacity = 16;
  heavy.qos_class = 0;
  const std::uint32_t tx_heavy = MakeEndpointQos(0, heavy);
  CommBuffer::EndpointParams light = heavy;
  light.qos_class = 1;
  const std::uint32_t tx_light = MakeEndpointQos(0, light);

  for (int i = 0; i < 8; ++i) {
    QueueSend(0, tx_heavy, Address(1, 0));
    QueueSend(0, tx_light, Address(1, 0));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(engine_[0]->Step());
  }
  EXPECT_EQ(comm_[0]->telemetry(tx_heavy).engine_transmits.Read(), 6u);
  EXPECT_EQ(comm_[0]->telemetry(tx_light).engine_transmits.Read(), 2u);
}

// Within one class, real-time endpoints (deadline_ns != 0) preempt
// non-real-time ones and order earliest-deadline-first among themselves.
TEST_F(EngineTest, EdfOrdersRealTimeWithinClass) {
  options_.transmit_batch = 1;
  RebuildEngines();

  CommBuffer::EndpointParams params;
  params.type = EndpointType::kSend;
  params.queue_capacity = 8;
  params.deadline_ns = 500'000;
  const std::uint32_t tx_late = MakeEndpointQos(0, params);
  params.deadline_ns = 100'000;
  const std::uint32_t tx_soon = MakeEndpointQos(0, params);
  params.deadline_ns = 0;
  const std::uint32_t tx_bulk = MakeEndpointQos(0, params);

  QueueSend(0, tx_bulk, Address(1, 0));
  QueueSend(0, tx_late, Address(1, 0));
  QueueSend(0, tx_soon, Address(1, 0));

  EXPECT_TRUE(engine_[0]->Step());
  EXPECT_EQ(comm_[0]->telemetry(tx_soon).engine_transmits.Read(), 1u);
  EXPECT_TRUE(engine_[0]->Step());
  EXPECT_EQ(comm_[0]->telemetry(tx_late).engine_transmits.Read(), 1u);
  EXPECT_TRUE(engine_[0]->Step());
  EXPECT_EQ(comm_[0]->telemetry(tx_bulk).engine_transmits.Read(), 1u);
}

// A fresh token bucket drains its full burst back-to-back, then sustains
// one transmission per refill interval; NextUnthrottleTime names the exact
// instant the next token lands.
TEST_F(EngineTest, TokenBucketAllowsBurstThenSustainedRate) {
  ManualClock clock;
  clock.AdvanceTo(1'000'000);
  engine_[0]->SetClock(&clock);

  CommBuffer::EndpointParams params;
  params.type = EndpointType::kSend;
  params.queue_capacity = 8;
  params.bucket_capacity = 3;
  params.bucket_refill_ns = 100'000;
  const std::uint32_t tx = MakeEndpointQos(0, params);
  for (int i = 0; i < 6; ++i) {
    QueueSend(0, tx, Address(1, 0));
  }

  while (engine_[0]->Step()) {
  }
  EXPECT_EQ(comm_[0]->telemetry(tx).engine_transmits.Read(), 3u);
  EXPECT_EQ(engine_[0]->NextUnthrottleTime(), 1'100'000);

  clock.AdvanceTo(1'100'000);
  while (engine_[0]->Step()) {
  }
  EXPECT_EQ(comm_[0]->telemetry(tx).engine_transmits.Read(), 4u);

  // 199,999 ns later only ONE whole token has accrued (the refill schedule
  // keeps the fractional remainder rather than restarting at each spend).
  clock.AdvanceTo(1'299'999);
  while (engine_[0]->Step()) {
  }
  EXPECT_EQ(comm_[0]->telemetry(tx).engine_transmits.Read(), 5u);
  EXPECT_EQ(engine_[0]->NextUnthrottleTime(), 1'300'000);

  clock.AdvanceTo(1'500'000);
  while (engine_[0]->Step()) {
  }
  EXPECT_EQ(comm_[0]->telemetry(tx).engine_transmits.Read(), 6u);
}

// The starvation counter fires while ready work sits behind a rate gate,
// and stops once the backlog drains.
TEST_F(EngineTest, ThrottleDeferralsCountWhileBacklogWaits) {
  ManualClock clock;
  clock.AdvanceTo(1'000'000);
  engine_[0]->SetClock(&clock);

  CommBuffer::EndpointParams params;
  params.type = EndpointType::kSend;
  params.queue_capacity = 8;
  params.min_send_interval_ns = 100'000;
  const std::uint32_t tx = MakeEndpointQos(0, params);
  QueueSend(0, tx, Address(1, 0));
  QueueSend(0, tx, Address(1, 0));

  while (engine_[0]->Step()) {
  }
  EXPECT_EQ(comm_[0]->telemetry(tx).engine_transmits.Read(), 1u);
  EXPECT_GE(comm_[0]->telemetry(tx).throttle_deferrals.Read(), 1u);

  clock.AdvanceBy(100'000);
  while (engine_[0]->Step()) {
  }
  EXPECT_EQ(comm_[0]->telemetry(tx).engine_transmits.Read(), 2u);
  const std::uint64_t after_drain = comm_[0]->telemetry(tx).throttle_deferrals.Read();
  EXPECT_FALSE(engine_[0]->Step());
  EXPECT_FALSE(engine_[0]->Step());
  EXPECT_EQ(comm_[0]->telemetry(tx).throttle_deferrals.Read(), after_drain);
}

// A head message transmitted after its relative deadline lapses counts one
// deadline miss, and the wait is captured by max_service_gap_ns.
TEST_F(EngineTest, DeadlineMissAndServiceGapRecorded) {
  ManualClock clock;
  clock.AdvanceTo(1'000'000);
  engine_[0]->SetClock(&clock);

  CommBuffer::EndpointParams params;
  params.type = EndpointType::kSend;
  params.queue_capacity = 8;
  params.deadline_ns = 50'000;
  params.min_send_interval_ns = 200'000;
  const std::uint32_t tx = MakeEndpointQos(0, params);
  QueueSend(0, tx, Address(1, 0));
  QueueSend(0, tx, Address(1, 0));

  while (engine_[0]->Step()) {
  }
  // The first message went immediately: no miss, no gap.
  EXPECT_EQ(comm_[0]->telemetry(tx).deadline_misses.Read(), 0u);
  EXPECT_EQ(comm_[0]->telemetry(tx).max_service_gap_ns.Read(), 0u);

  clock.AdvanceBy(200'000);
  while (engine_[0]->Step()) {
  }
  EXPECT_EQ(comm_[0]->telemetry(tx).engine_transmits.Read(), 2u);
  // The second head waited the full 200 us interval against a 50 us
  // deadline: exactly one miss, gap == the wait.
  EXPECT_EQ(comm_[0]->telemetry(tx).deadline_misses.Read(), 1u);
  EXPECT_EQ(comm_[0]->telemetry(tx).max_service_gap_ns.Read(), 200'000u);
}

}  // namespace
}  // namespace flipc::engine
