// Bounded exhaustive model checking of the wait-free structures.
//
// Stress tests sample interleavings; these tests ENUMERATE them. Because
// the application/engine protocol is wait-free with single-writer cells,
// every concurrent execution is equivalent to some interleaving of the two
// sides' atomic operations — and each side's operations are short,
// deterministic sequences. We therefore explore every interleaving of
// bounded operation sequences (up to a few thousand schedules) and check
// the queue and drop-counter invariants against a reference model in every
// one of them. A violation prints the exact schedule that produced it.
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/waitfree/boundary_check.h"
#include "src/waitfree/buffer_queue.h"
#include "src/waitfree/drop_counter.h"

namespace flipc::waitfree {
namespace {

// Explores all interleavings of two operation sequences. Each operation is
// a callback; `check` runs after every operation with the schedule string.
//
// Every operation executes under the boundary role of its side, so in a
// FLIPC_CHECK_SINGLE_WRITER build each enumerated schedule also runs with
// the ownership race detector armed: an app op that wrote an engine-owned
// cursor (or vice versa) in ANY interleaving would abort the test.
void ForAllInterleavings(const std::vector<std::function<void()>>& app_ops,
                         const std::vector<std::function<void()>>& engine_ops,
                         const std::function<void(const std::string&)>& check,
                         const std::function<void()>& reset) {
  // Schedules are bitstrings: at each step pick app (a) or engine (e).
  const std::size_t total = app_ops.size() + engine_ops.size();
  std::vector<bool> schedule(total);

  std::function<void(std::size_t, std::size_t, std::size_t)> recurse =
      [&](std::size_t step, std::size_t a_done, std::size_t e_done) {
        if (step == total) {
          // Replay this complete schedule from a fresh state.
          reset();
          std::string description;
          std::size_t ai = 0, ei = 0;
          for (std::size_t s = 0; s < total; ++s) {
            if (schedule[s]) {
              ScopedBoundaryRole role(Writer::kApplication);
              app_ops[ai++]();
              description += 'a';
            } else {
              ScopedBoundaryRole role(Writer::kEngine);
              engine_ops[ei++]();
              description += 'e';
            }
            check(description);
          }
          return;
        }
        if (a_done < app_ops.size()) {
          schedule[step] = true;
          recurse(step + 1, a_done + 1, e_done);
        }
        if (e_done < engine_ops.size()) {
          schedule[step] = false;
          recurse(step + 1, a_done, e_done + 1);
        }
      };
  recurse(0, 0, 0);
}

// ---- Queue: application releases/acquires vs engine peek/advance ----------

class QueueModel {
 public:
  static constexpr std::uint32_t kCapacity = 4;

  void Reset() {
    queue_ = std::make_unique<InlineBufferQueue<kCapacity>>();
    released_ = 0;
    processed_ = 0;
    acquired_ = 0;
  }

  // App op: release the next sequential value if the queue accepts it.
  void AppRelease() {
    if (queue_->view().Release(released_)) {
      ++released_;
    }
  }

  // App op: acquire, verifying FIFO against the model.
  void AppAcquire(const std::string& schedule) {
    const BufferIndex value = queue_->view().Acquire();
    if (value != kInvalidBuffer) {
      ASSERT_EQ(value, acquired_) << "out-of-order acquire in schedule " << schedule;
      ++acquired_;
    }
  }

  // Engine op: peek + advance one item if present, verifying FIFO.
  void EngineProcess(const std::string& schedule) {
    const BufferIndex value = queue_->view().PeekProcess();
    if (value != kInvalidBuffer) {
      ASSERT_EQ(value, processed_) << "out-of-order process in schedule " << schedule;
      queue_->view().AdvanceProcess();
      ++processed_;
    }
  }

  void CheckInvariants(const std::string& schedule) {
    // The model's cursor ordering must hold after every step.
    ASSERT_LE(acquired_, processed_) << schedule;
    ASSERT_LE(processed_, released_) << schedule;
    ASSERT_LE(released_ - acquired_, kCapacity) << schedule;
    ASSERT_EQ(queue_->view().Size(), released_ - acquired_) << schedule;
    ASSERT_EQ(queue_->view().ProcessableCount(), released_ - processed_) << schedule;
    ASSERT_EQ(queue_->view().AcquirableCount(), processed_ - acquired_) << schedule;
  }

 private:
  std::unique_ptr<InlineBufferQueue<kCapacity>> queue_;
  std::uint32_t released_ = 0;
  std::uint32_t processed_ = 0;
  std::uint32_t acquired_ = 0;
};

TEST(ModelCheck, QueueAllInterleavingsOfSixOps) {
  QueueModel model;
  std::string current_schedule;

  // App: release, release, acquire, release, acquire.
  std::vector<std::function<void()>> app_ops = {
      [&] { model.AppRelease(); },
      [&] { model.AppRelease(); },
      [&] { model.AppAcquire(current_schedule); },
      [&] { model.AppRelease(); },
      [&] { model.AppAcquire(current_schedule); },
  };
  // Engine: process x4.
  std::vector<std::function<void()>> engine_ops = {
      [&] { model.EngineProcess(current_schedule); },
      [&] { model.EngineProcess(current_schedule); },
      [&] { model.EngineProcess(current_schedule); },
      [&] { model.EngineProcess(current_schedule); },
  };

  int schedules = 0;
  ForAllInterleavings(
      app_ops, engine_ops,
      [&](const std::string& schedule) {
        current_schedule = schedule;
        model.CheckInvariants(schedule);
        if (schedule.size() == app_ops.size() + engine_ops.size()) {
          ++schedules;
        }
      },
      [&] { model.Reset(); });
  // C(9,4) = 126 distinct schedules.
  EXPECT_EQ(schedules, 126);
}

TEST(ModelCheck, QueueFullBoundaryInterleavings) {
  QueueModel model;
  std::string current_schedule;

  // App: 6 releases against capacity 4 (some must be refused), then 2 acquires.
  std::vector<std::function<void()>> app_ops;
  for (int i = 0; i < 6; ++i) {
    app_ops.emplace_back([&] { model.AppRelease(); });
  }
  app_ops.emplace_back([&] { model.AppAcquire(current_schedule); });
  app_ops.emplace_back([&] { model.AppAcquire(current_schedule); });

  std::vector<std::function<void()>> engine_ops;
  for (int i = 0; i < 3; ++i) {
    engine_ops.emplace_back([&] { model.EngineProcess(current_schedule); });
  }

  int schedules = 0;
  ForAllInterleavings(
      app_ops, engine_ops,
      [&](const std::string& schedule) {
        current_schedule = schedule;
        model.CheckInvariants(schedule);
        if (schedule.size() == app_ops.size() + engine_ops.size()) {
          ++schedules;
        }
      },
      [&] { model.Reset(); });
  // C(11,3) = 165 schedules.
  EXPECT_EQ(schedules, 165);
}

// ---- Drop counter: engine drops vs application read-and-reset --------------

TEST(ModelCheck, DropCounterNeverLosesEvents) {
  std::unique_ptr<DropCounter> counter;
  std::uint64_t dropped = 0;
  std::uint64_t reclaimed = 0;

  std::vector<std::function<void()>> engine_ops;
  for (int i = 0; i < 5; ++i) {
    engine_ops.emplace_back([&] {
      counter->RecordDrop();
      ++dropped;
    });
  }
  std::vector<std::function<void()>> app_ops;
  for (int i = 0; i < 4; ++i) {
    app_ops.emplace_back([&] { reclaimed += counter->ReadAndReset(); });
  }

  int schedules = 0;
  ForAllInterleavings(
      app_ops, engine_ops,
      [&](const std::string& schedule) {
        // The defining invariant: nothing lost, nothing double counted.
        ASSERT_EQ(reclaimed + counter->Count(), dropped) << schedule;
        if (schedule.size() == app_ops.size() + engine_ops.size()) {
          ++schedules;
        }
      },
      [&] {
        counter = std::make_unique<DropCounter>();
        dropped = 0;
        reclaimed = 0;
      });
  // C(9,4) = 126 schedules.
  EXPECT_EQ(schedules, 126);
}

// The single-location counter the paper rejects WOULD lose events; the
// checker proves our structure does not even under reset storms.
TEST(ModelCheck, DropCounterResetStorm) {
  std::unique_ptr<DropCounter> counter;
  std::uint64_t dropped = 0;
  std::uint64_t reclaimed = 0;

  std::vector<std::function<void()>> engine_ops;
  for (int i = 0; i < 3; ++i) {
    engine_ops.emplace_back([&] {
      counter->RecordDrop();
      ++dropped;
    });
  }
  std::vector<std::function<void()>> app_ops;
  for (int i = 0; i < 6; ++i) {  // more resets than drops
    app_ops.emplace_back([&] { reclaimed += counter->ReadAndReset(); });
  }

  ForAllInterleavings(
      app_ops, engine_ops,
      [&](const std::string& schedule) {
        ASSERT_EQ(reclaimed + counter->Count(), dropped) << schedule;
      },
      [&] {
        counter = std::make_unique<DropCounter>();
        dropped = 0;
        reclaimed = 0;
      });
}

}  // namespace
}  // namespace flipc::waitfree
