// Bounded exhaustive model checking of the wait-free structures.
//
// Stress tests sample interleavings; these tests ENUMERATE them. Because
// the application/engine protocol is wait-free with single-writer cells,
// every concurrent execution is equivalent to some interleaving of the two
// sides' atomic operations — and each side's operations are short,
// deterministic sequences. We therefore explore every interleaving of
// bounded operation sequences (up to a few thousand schedules) and check
// the queue and drop-counter invariants against a reference model in every
// one of them. A violation prints the exact schedule that produced it.
//
// The operation mixes and expected schedule counts for the three rings are
// GENERATED from the protocol IR the static certifier exports
// (tests/generated_model_schedules.h — see tools/flipc_static_audit
// --emit-schedules): when the wait-free protocol changes, the drift ctest
// regenerates the seeds rather than this file silently model-checking a
// stale operation mix. The drop-counter tests at the bottom are documented
// extras — the structure is a counter, not one of the generated rings.
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/waitfree/boundary_check.h"
#include "src/waitfree/buffer_queue.h"
#include "src/waitfree/doorbell_ring.h"
#include "src/waitfree/drop_counter.h"
#include "src/waitfree/handoff_ring.h"
#include "tests/generated_model_schedules.h"

namespace flipc::waitfree {
namespace {

namespace gen = flipc::generated_schedules;

// Explores all interleavings of two operation sequences. Each operation is
// a callback; `check` runs after every operation with the schedule string.
//
// Every operation executes under the boundary role of its side, so in a
// FLIPC_CHECK_SINGLE_WRITER build each enumerated schedule also runs with
// the ownership race detector armed: an app op that wrote an engine-owned
// cursor (or vice versa) in ANY interleaving would abort the test.
void ForAllInterleavings(const std::vector<std::function<void()>>& app_ops,
                         const std::vector<std::function<void()>>& engine_ops,
                         const std::function<void(const std::string&)>& check,
                         const std::function<void()>& reset) {
  // Schedules are bitstrings: at each step pick app (a) or engine (e).
  const std::size_t total = app_ops.size() + engine_ops.size();
  std::vector<bool> schedule(total);

  std::function<void(std::size_t, std::size_t, std::size_t)> recurse =
      [&](std::size_t step, std::size_t a_done, std::size_t e_done) {
        if (step == total) {
          // Replay this complete schedule from a fresh state.
          reset();
          std::string description;
          std::size_t ai = 0, ei = 0;
          for (std::size_t s = 0; s < total; ++s) {
            if (schedule[s]) {
              ScopedBoundaryRole role(Writer::kApplication);
              app_ops[ai++]();
              description += 'a';
            } else {
              ScopedBoundaryRole role(Writer::kEngine);
              engine_ops[ei++]();
              description += 'e';
            }
            check(description);
          }
          return;
        }
        if (a_done < app_ops.size()) {
          schedule[step] = true;
          recurse(step + 1, a_done + 1, e_done);
        }
        if (e_done < engine_ops.size()) {
          schedule[step] = false;
          recurse(step + 1, a_done, e_done + 1);
        }
      };
  recurse(0, 0, 0);
}

// ---- Queue: application releases/acquires vs engine peek/advance ----------

class QueueModel {
 public:
  static constexpr std::uint32_t kCapacity = gen::kModelCapacity;

  void Reset() {
    queue_ = std::make_unique<InlineBufferQueue<kCapacity>>();
    released_ = 0;
    processed_ = 0;
    acquired_ = 0;
  }

  // App op: release the next sequential value if the queue accepts it.
  void AppRelease() {
    if (queue_->view().Release(released_)) {
      ++released_;
    }
  }

  // App op: acquire, verifying FIFO against the model.
  void AppAcquire(const std::string& schedule) {
    const BufferIndex value = queue_->view().Acquire();
    if (value != kInvalidBuffer) {
      ASSERT_EQ(value, acquired_) << "out-of-order acquire in schedule " << schedule;
      ++acquired_;
    }
  }

  // Engine op: peek + advance one item if present, verifying FIFO.
  void EngineProcess(const std::string& schedule) {
    const BufferIndex value = queue_->view().PeekProcess();
    if (value != kInvalidBuffer) {
      ASSERT_EQ(value, processed_) << "out-of-order process in schedule " << schedule;
      queue_->view().AdvanceProcess();
      ++processed_;
    }
  }

  void CheckInvariants(const std::string& schedule) {
    // The model's cursor ordering must hold after every step.
    ASSERT_LE(acquired_, processed_) << schedule;
    ASSERT_LE(processed_, released_) << schedule;
    ASSERT_LE(released_ - acquired_, kCapacity) << schedule;
    ASSERT_EQ(queue_->view().Size(), released_ - acquired_) << schedule;
    ASSERT_EQ(queue_->view().ProcessableCount(), released_ - processed_) << schedule;
    ASSERT_EQ(queue_->view().AcquirableCount(), processed_ - acquired_) << schedule;
  }

 private:
  std::unique_ptr<InlineBufferQueue<kCapacity>> queue_;
  std::uint32_t released_ = 0;
  std::uint32_t processed_ = 0;
  std::uint32_t acquired_ = 0;
};

TEST(ModelCheck, QueueSteadyStateInterleavings) {
  QueueModel model;
  std::string current_schedule;

  // App side from the generated release/acquire mix ('R'/'A').
  std::vector<std::function<void()>> app_ops;
  for (const char* p = gen::kQueueSteadyAppOps; *p != '\0'; ++p) {
    if (*p == 'R') {
      app_ops.emplace_back([&] { model.AppRelease(); });
    } else {
      app_ops.emplace_back([&] { model.AppAcquire(current_schedule); });
    }
  }
  std::vector<std::function<void()>> engine_ops;
  for (unsigned i = 0; i < gen::kQueueSteadyEngineProcessOps; ++i) {
    engine_ops.emplace_back([&] { model.EngineProcess(current_schedule); });
  }

  int schedules = 0;
  ForAllInterleavings(
      app_ops, engine_ops,
      [&](const std::string& schedule) {
        current_schedule = schedule;
        model.CheckInvariants(schedule);
        if (schedule.size() == app_ops.size() + engine_ops.size()) {
          ++schedules;
        }
      },
      [&] { model.Reset(); });
  EXPECT_EQ(schedules, gen::kQueueSteadySchedules);
}

TEST(ModelCheck, QueueFullBoundaryInterleavings) {
  QueueModel model;
  std::string current_schedule;

  // Releases beyond capacity (some must be refused), then the acquires.
  std::vector<std::function<void()>> app_ops;
  for (unsigned i = 0; i < gen::kQueueFullReleaseOps; ++i) {
    app_ops.emplace_back([&] { model.AppRelease(); });
  }
  for (unsigned i = 0; i < gen::kQueueFullAcquireOps; ++i) {
    app_ops.emplace_back([&] { model.AppAcquire(current_schedule); });
  }

  std::vector<std::function<void()>> engine_ops;
  for (unsigned i = 0; i < gen::kQueueFullEngineProcessOps; ++i) {
    engine_ops.emplace_back([&] { model.EngineProcess(current_schedule); });
  }

  int schedules = 0;
  ForAllInterleavings(
      app_ops, engine_ops,
      [&](const std::string& schedule) {
        current_schedule = schedule;
        model.CheckInvariants(schedule);
        if (schedule.size() == app_ops.size() + engine_ops.size()) {
          ++schedules;
        }
      },
      [&] { model.Reset(); });
  EXPECT_EQ(schedules, gen::kQueueFullSchedules);
}

// ---- Doorbell ring: application rings vs engine pops -----------------------

// With whole operations as the interleaving grain the soft-full check in
// Ring() is exact (no producer overshoot), so every successful ring must be
// popped in FIFO order — no doorbell lost, none duplicated, none invented.
class DoorbellModel {
 public:
  static constexpr std::uint32_t kCapacity = gen::kModelCapacity;

  void Reset() {
    ring_ = std::make_unique<InlineDoorbellRing<kCapacity>>();
    rung_.clear();
    popped_ = 0;
    overflow_outstanding_ = false;
  }

  // App op: ring endpoint `value`; a refusal raises the overflow signal.
  void AppRing(std::uint32_t value) {
    if (ring_->view().Ring(value)) {
      rung_.push_back(value);
    } else {
      overflow_outstanding_ = true;
    }
  }

  // Engine op: pop one doorbell if published, verifying FIFO.
  void EnginePop(const std::string& schedule) {
    const std::uint32_t value = ring_->view().Pop();
    if (value != kInvalidDoorbell) {
      ASSERT_LT(popped_, rung_.size()) << "popped unrung doorbell in " << schedule;
      ASSERT_EQ(value, rung_[popped_]) << "out-of-order pop in schedule " << schedule;
      ++popped_;
    }
  }

  // Engine op: the overflow half of the backstop — acknowledge, then (in
  // the real engine) sweep. The sweep itself touches only engine-read
  // state, so acknowledging models the ring-side effect completely.
  void EngineAckOverflow() {
    if (ring_->view().OverflowPending()) {
      ring_->view().AckOverflow();
      overflow_outstanding_ = false;
    }
  }

  void CheckInvariants(const std::string& schedule) {
    ASSERT_LE(popped_, rung_.size()) << schedule;
    ASSERT_EQ(ring_->view().PendingCount(), rung_.size() - popped_) << schedule;
    ASSERT_LE(ring_->view().PendingCount(), kCapacity) << schedule;
    // The overflow signal is level-triggered: pending exactly when a ring
    // was refused after the last acknowledgement.
    ASSERT_EQ(ring_->view().OverflowPending(), overflow_outstanding_) << schedule;
  }

 private:
  std::unique_ptr<InlineDoorbellRing<kCapacity>> ring_;
  std::vector<std::uint32_t> rung_;
  std::size_t popped_ = 0;
  bool overflow_outstanding_ = false;
};

TEST(ModelCheck, DoorbellRingAllInterleavings) {
  DoorbellModel model;
  std::string current_schedule;

  // Rings one past capacity — schedules where the engine lags see a full
  // ring and must take the overflow path.
  std::vector<std::function<void()>> app_ops;
  for (std::uint32_t i = 0; i < gen::kDoorbellSteadyRingOps; ++i) {
    app_ops.emplace_back([&model, i] { model.AppRing(i); });
  }
  std::vector<std::function<void()>> engine_ops;
  for (unsigned i = 0; i < gen::kDoorbellSteadyPopOps; ++i) {
    engine_ops.emplace_back([&] { model.EnginePop(current_schedule); });
  }

  int schedules = 0;
  ForAllInterleavings(
      app_ops, engine_ops,
      [&](const std::string& schedule) {
        current_schedule = schedule;
        model.CheckInvariants(schedule);
        if (schedule.size() == app_ops.size() + engine_ops.size()) {
          ++schedules;
        }
      },
      [&] { model.Reset(); });
  EXPECT_EQ(schedules, gen::kDoorbellSteadySchedules);
}

TEST(ModelCheck, DoorbellOverflowAckInterleavings) {
  DoorbellModel model;
  std::string current_schedule;

  // Rings well past capacity guarantee refusals in every schedule ordering
  // the acks early; the engine runs the generated pop/ack mix ('P'/'A') —
  // every placement of the acknowledgement relative to refusals must keep
  // the signal level-exact (ack too early must leave a later refusal
  // pending).
  std::vector<std::function<void()>> app_ops;
  for (std::uint32_t i = 0; i < gen::kDoorbellOverflowRingOps; ++i) {
    app_ops.emplace_back([&model, i] { model.AppRing(i); });
  }
  std::vector<std::function<void()>> engine_ops;
  for (const char* p = gen::kDoorbellOverflowEngineOps; *p != '\0'; ++p) {
    if (*p == 'P') {
      engine_ops.emplace_back([&] { model.EnginePop(current_schedule); });
    } else {
      engine_ops.emplace_back([&] { model.EngineAckOverflow(); });
    }
  }

  int schedules = 0;
  ForAllInterleavings(
      app_ops, engine_ops,
      [&](const std::string& schedule) {
        current_schedule = schedule;
        model.CheckInvariants(schedule);
        if (schedule.size() == app_ops.size() + engine_ops.size()) {
          ++schedules;
        }
      },
      [&] { model.Reset(); });
  EXPECT_EQ(schedules, gen::kDoorbellOverflowSchedules);
}

// ---- Handoff ring: distributor shard pushes vs planner shard pops ----------

// Cross-SHARD boundary: both sides are engine roles with different shard
// ids. Each op rebinds the shard-qualified role inside its body
// (ScopedBoundaryRole nests), so in a FLIPC_CHECK_SINGLE_WRITER build every
// enumerated schedule also proves the shard ownership split: a push that
// wrote the consumer's head cursor — or vice versa — in ANY interleaving
// would abort.
//
// Unlike doorbells, handoff entries are not hints: a refusal must occur
// exactly at capacity (the engine parks the packet rather than dropping),
// and every accepted entry must come out once, in order. The push budget
// exceeds capacity so schedules wrap the ring: positions past capacity
// reuse slots under the next lap tag, and a stale-tag bug (lap not
// advanced, or a zero tag matching) would surface as a phantom or lost pop.
class HandoffModel {
 public:
  static constexpr std::uint32_t kCapacity = gen::kModelCapacity;

  void Reset() {
    ring_ = std::make_unique<SpscHandoffRing<std::uint32_t>>(
        kCapacity, /*producer_shard=*/0, /*consumer_shard=*/1);
    pushed_.clear();
    popped_ = 0;
  }

  // Producer op: distributor shard 0 pushes the next sequential value.
  void ProducerPush(std::uint32_t value, const std::string& schedule) {
    ScopedBoundaryRole producer(Writer::kEngine, /*shard=*/0);
    std::uint32_t v = value;
    if (ring_->Push(v)) {
      pushed_.push_back(value);
    } else {
      ASSERT_EQ(ring_->PendingCount(), kCapacity)
          << "push refused below capacity in schedule " << schedule;
    }
  }

  // Consumer op: planner shard 1 pops one entry if published, verifying FIFO.
  void ConsumerPop(const std::string& schedule) {
    ScopedBoundaryRole consumer(Writer::kEngine, /*shard=*/1);
    std::uint32_t value = 0;
    if (ring_->Pop(&value)) {
      ASSERT_LT(popped_, pushed_.size()) << "popped unpushed entry in " << schedule;
      ASSERT_EQ(value, pushed_[popped_]) << "out-of-order pop in schedule " << schedule;
      ++popped_;
    }
  }

  void CheckInvariants(const std::string& schedule) {
    // Conservation: everything pushed and not yet popped is pending —
    // nothing lost to a wrap, nothing duplicated, nothing invented.
    ASSERT_LE(popped_, pushed_.size()) << schedule;
    ASSERT_EQ(ring_->PendingCount(), pushed_.size() - popped_) << schedule;
    ASSERT_LE(ring_->PendingCount(), kCapacity) << schedule;
    ASSERT_EQ(ring_->HasPending(), popped_ < pushed_.size()) << schedule;
  }

 private:
  std::unique_ptr<SpscHandoffRing<std::uint32_t>> ring_;
  std::vector<std::uint32_t> pushed_;
  std::size_t popped_ = 0;
};

TEST(ModelCheck, HandoffRingWrapInterleavings) {
  HandoffModel model;
  std::string current_schedule;

  // Pushes across two laps — schedules with early pops carry the positions
  // past capacity into the second lap (tag 2); schedules with late pops
  // exercise the full-refusal path.
  std::vector<std::function<void()>> producer_ops;
  for (std::uint32_t i = 0; i < gen::kHandoffWrapPushOps; ++i) {
    producer_ops.emplace_back([&model, i, &current_schedule] {
      model.ProducerPush(i, current_schedule);
    });
  }
  std::vector<std::function<void()>> consumer_ops;
  for (unsigned i = 0; i < gen::kHandoffWrapPopOps; ++i) {
    consumer_ops.emplace_back([&] { model.ConsumerPop(current_schedule); });
  }

  int schedules = 0;
  ForAllInterleavings(
      producer_ops, consumer_ops,
      [&](const std::string& schedule) {
        current_schedule = schedule;
        model.CheckInvariants(schedule);
        if (schedule.size() == producer_ops.size() + consumer_ops.size()) {
          ++schedules;
        }
      },
      [&] { model.Reset(); });
  EXPECT_EQ(schedules, gen::kHandoffWrapSchedules);
}

// ---- Drop counter: engine drops vs application read-and-reset --------------
//
// Hand-written extra (not generated): the drop counter is a two-location
// counter, not one of the three protocol rings the IR export covers.

TEST(ModelCheck, DropCounterNeverLosesEvents) {
  std::unique_ptr<DropCounter> counter;
  std::uint64_t dropped = 0;
  std::uint64_t reclaimed = 0;

  std::vector<std::function<void()>> engine_ops;
  for (int i = 0; i < 5; ++i) {
    engine_ops.emplace_back([&] {
      counter->RecordDrop();
      ++dropped;
    });
  }
  std::vector<std::function<void()>> app_ops;
  for (int i = 0; i < 4; ++i) {
    app_ops.emplace_back([&] { reclaimed += counter->ReadAndReset(); });
  }

  int schedules = 0;
  ForAllInterleavings(
      app_ops, engine_ops,
      [&](const std::string& schedule) {
        // The defining invariant: nothing lost, nothing double counted.
        ASSERT_EQ(reclaimed + counter->Count(), dropped) << schedule;
        if (schedule.size() == app_ops.size() + engine_ops.size()) {
          ++schedules;
        }
      },
      [&] {
        counter = std::make_unique<DropCounter>();
        dropped = 0;
        reclaimed = 0;
      });
  // C(9,4) = 126 schedules.
  EXPECT_EQ(schedules, 126);
}

// The single-location counter the paper rejects WOULD lose events; the
// checker proves our structure does not even under reset storms.
TEST(ModelCheck, DropCounterResetStorm) {
  std::unique_ptr<DropCounter> counter;
  std::uint64_t dropped = 0;
  std::uint64_t reclaimed = 0;

  std::vector<std::function<void()>> engine_ops;
  for (int i = 0; i < 3; ++i) {
    engine_ops.emplace_back([&] {
      counter->RecordDrop();
      ++dropped;
    });
  }
  std::vector<std::function<void()>> app_ops;
  for (int i = 0; i < 6; ++i) {  // more resets than drops
    app_ops.emplace_back([&] { reclaimed += counter->ReadAndReset(); });
  }

  ForAllInterleavings(
      app_ops, engine_ops,
      [&](const std::string& schedule) {
        ASSERT_EQ(reclaimed + counter->Count(), dropped) << schedule;
      },
      [&] {
        counter = std::make_unique<DropCounter>();
        dropped = 0;
        reclaimed = 0;
      });
}

}  // namespace
}  // namespace flipc::waitfree
