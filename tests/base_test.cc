// Unit tests for the base substrate: status/result, rng, stats, locks,
// clocks, and table formatting.
#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/clock.h"
#include "src/base/locks.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/table.h"
#include "src/base/types.h"

namespace flipc {
namespace {

// ---------------------------------- types ----------------------------------

TEST(Types, AlignUp) {
  EXPECT_EQ(AlignUp(0, 64), 0u);
  EXPECT_EQ(AlignUp(1, 64), 64u);
  EXPECT_EQ(AlignUp(64, 64), 64u);
  EXPECT_EQ(AlignUp(65, 64), 128u);
}

TEST(Types, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(1023));
}

TEST(Types, CacheLinesFor) {
  EXPECT_EQ(CacheLinesFor(1), 1u);
  EXPECT_EQ(CacheLinesFor(64), 1u);
  EXPECT_EQ(CacheLinesFor(65), 2u);
}

// --------------------------------- status ----------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, CodesRoundTrip) {
  EXPECT_EQ(UnavailableStatus().code(), StatusCode::kUnavailable);
  EXPECT_EQ(InvalidArgumentStatus().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(TimedOutStatus().code(), StatusCode::kTimedOut);
  EXPECT_EQ(UnavailableStatus().ToString(), "UNAVAILABLE");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(NotFoundStatus());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Doubler(Result<int> in) {
  FLIPC_ASSIGN_OR_RETURN(const int v, std::move(in));
  return v * 2;
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(InternalStatus()).status().code(), StatusCode::kInternal);
}

// ----------------------------------- rng -----------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    differs |= a2() != c();
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.Between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UnitDoubleInRange) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UnitDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// ---------------------------------- stats ----------------------------------

TEST(RunningStats, MeanAndStddev) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
}

TEST(LinearFit, ExactLine) {
  LinearFit fit;
  for (int x = 0; x < 20; ++x) {
    fit.Add(x, 15.45 + 6.25 * x);
  }
  const LineFit line = fit.Fit();
  EXPECT_NEAR(line.intercept, 15.45, 1e-9);
  EXPECT_NEAR(line.slope, 6.25, 1e-9);
  EXPECT_NEAR(line.r_squared, 1.0, 1e-9);
}

TEST(LinearFit, DegenerateInputs) {
  LinearFit fit;
  EXPECT_EQ(fit.Fit().slope, 0.0);
  fit.Add(1.0, 2.0);
  EXPECT_EQ(fit.Fit().slope, 0.0);
  fit.Add(1.0, 3.0);  // vertical: sxx == 0
  EXPECT_EQ(fit.Fit().slope, 0.0);
}

TEST(Histogram, Quantiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, OverflowUnderflow) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(50.0);
  h.Add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 10.0);
}

// ---------------------------------- locks ----------------------------------

TEST(TasLock, MutualExclusionUnderContention) {
  TasLock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<TasLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, long{kThreads} * kIters);
}

TEST(TasLock, TryLock) {
  TasLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(PetersonLock, TwoPartyMutualExclusion) {
  PetersonLock lock;
  long counter = 0;
  constexpr int kIters = 50000;
  auto body = [&](int side) {
    for (int i = 0; i < kIters; ++i) {
      PetersonGuard guard(lock, side);
      ++counter;
    }
  };
  std::thread t0(body, 0);
  std::thread t1(body, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(counter, 2L * kIters);
}

// ---------------------------------- clock ----------------------------------

TEST(ManualClock, AdvancesOnly) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowNs(), 100);
  clock.AdvanceBy(50);
  EXPECT_EQ(clock.NowNs(), 150);
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.NowNs(), 1000);
}

TEST(RealClock, Monotonic) {
  RealClock& clock = RealClock::Instance();
  const TimeNs a = clock.NowNs();
  const TimeNs b = clock.NowNs();
  EXPECT_GE(b, a);
}

// ---------------------------------- table ----------------------------------

TEST(TextTable, FormatsAligned) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "2.50"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2.50  |"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace flipc
