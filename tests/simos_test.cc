// Tests for the simulated-OS layer: real-time semaphore (priority wakeup),
// semaphore table, and the priority scheduler model.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/simnet/des.h"
#include "src/simos/real_time_semaphore.h"
#include "src/simos/semaphore_table.h"
#include "src/simos/sim_scheduler.h"

namespace flipc::simos {
namespace {

// ----------------------------- RealTimeSemaphore ----------------------------

TEST(RealTimeSemaphore, PostBeforeWait) {
  RealTimeSemaphore sem;
  sem.Post();
  EXPECT_EQ(sem.permits(), 1u);
  EXPECT_TRUE(sem.Wait(0, 0).ok());  // immediate grant, no timeout needed
  EXPECT_EQ(sem.permits(), 0u);
}

TEST(RealTimeSemaphore, WaitTimesOut) {
  RealTimeSemaphore sem;
  const Status status = sem.Wait(0, 1'000'000);  // 1 ms
  EXPECT_EQ(status.code(), StatusCode::kTimedOut);
  EXPECT_EQ(sem.waiter_count(), 0u);  // waiter cleaned up
}

TEST(RealTimeSemaphore, TryWait) {
  RealTimeSemaphore sem;
  EXPECT_FALSE(sem.TryWait());
  sem.Post();
  EXPECT_TRUE(sem.TryWait());
  EXPECT_FALSE(sem.TryWait());
}

// The real-time property: the highest-priority waiter gets the permit,
// regardless of arrival order.
TEST(RealTimeSemaphore, HighestPriorityWakesFirst) {
  RealTimeSemaphore sem;
  std::atomic<int> woken{-1};
  std::atomic<int> started{0};

  auto waiter = [&](Priority priority, int id) {
    started.fetch_add(1);
    ASSERT_TRUE(sem.Wait(priority).ok());
    int expected = -1;
    woken.compare_exchange_strong(expected, id);
  };

  std::thread low(waiter, 1, 1);
  std::thread high(waiter, 10, 2);
  // Let both block.
  while (sem.waiter_count() != 2) {
    std::this_thread::yield();
  }
  sem.Post();
  high.join();
  EXPECT_EQ(woken.load(), 2);  // the high-priority waiter won
  sem.Post();
  low.join();
}

TEST(RealTimeSemaphore, FifoWithinPriority) {
  RealTimeSemaphore sem;
  std::vector<int> order;
  std::mutex order_mutex;
  std::vector<std::thread> threads;

  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&, i] {
      ASSERT_TRUE(sem.Wait(5).ok());
      std::lock_guard<std::mutex> guard(order_mutex);
      order.push_back(i);
    });
    // Ensure deterministic arrival order.
    while (sem.waiter_count() != static_cast<std::uint32_t>(i + 1)) {
      std::this_thread::yield();
    }
  }
  for (int i = 0; i < 3; ++i) {
    sem.Post();
    // Wait for one wakeup before posting the next.
    while (true) {
      std::lock_guard<std::mutex> guard(order_mutex);
      if (order.size() == static_cast<std::size_t>(i + 1)) {
        break;
      }
    }
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(RealTimeSemaphore, TryWaitCannotStealFromWaiter) {
  RealTimeSemaphore sem;
  std::thread blocked([&] { ASSERT_TRUE(sem.Wait(10).ok()); });
  while (sem.waiter_count() != 1) {
    std::this_thread::yield();
  }
  sem.Post();
  // The permit is already granted to the blocked waiter.
  EXPECT_FALSE(sem.TryWait());
  blocked.join();
}

// ------------------------------ SemaphoreTable -------------------------------

TEST(SemaphoreTable, AllocateSignalFree) {
  SemaphoreTable table(4);
  auto id = table.Allocate();
  ASSERT_TRUE(id.ok());
  table.Signal(*id);
  EXPECT_EQ(table.Get(*id)->permits(), 1u);
  EXPECT_TRUE(table.Free(*id).ok());
  EXPECT_EQ(table.Get(*id), nullptr);
}

TEST(SemaphoreTable, SignalUnknownIdIsNoop) {
  SemaphoreTable table(4);
  table.Signal(999);  // must not crash
  table.Signal(2);    // unallocated slot
}

TEST(SemaphoreTable, Exhaustion) {
  SemaphoreTable table(2);
  ASSERT_TRUE(table.Allocate().ok());
  ASSERT_TRUE(table.Allocate().ok());
  EXPECT_EQ(table.Allocate().status().code(), StatusCode::kResourceExhausted);
}

TEST(SemaphoreTable, FreeRejectsBusySemaphore) {
  SemaphoreTable table(2);
  auto id = table.Allocate();
  ASSERT_TRUE(id.ok());
  std::thread waiter([&] { ASSERT_TRUE(table.Get(*id)->Wait(0).ok()); });
  while (table.Get(*id)->waiter_count() != 1) {
    std::this_thread::yield();
  }
  EXPECT_EQ(table.Free(*id).code(), StatusCode::kFailedPrecondition);
  table.Signal(*id);
  waiter.join();
  EXPECT_TRUE(table.Free(*id).ok());
}

// -------------------------------- SimScheduler -------------------------------

TEST(SimScheduler, RunsByPriorityNotArrival) {
  simnet::Simulator sim;
  SimScheduler scheduler(sim);
  scheduler.set_dispatch_cost_ns(0);
  std::vector<int> order;

  // First item starts immediately (CPU idle); the rest queue while it runs.
  scheduler.Submit(0, 1000, [&] { order.push_back(0); });
  scheduler.Submit(1, 1000, [&] { order.push_back(1); });
  scheduler.Submit(9, 1000, [&] { order.push_back(9); });
  scheduler.Submit(5, 1000, [&] { order.push_back(5); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 9, 5, 1}));
}

TEST(SimScheduler, FifoWithinEqualPriority) {
  simnet::Simulator sim;
  SimScheduler scheduler(sim);
  scheduler.set_dispatch_cost_ns(0);
  std::vector<int> order;
  scheduler.Submit(3, 100, [&] { order.push_back(0); });
  scheduler.Submit(3, 100, [&] { order.push_back(1); });
  scheduler.Submit(3, 100, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimScheduler, AccountsBusyTime) {
  simnet::Simulator sim;
  SimScheduler scheduler(sim);
  scheduler.set_dispatch_cost_ns(500);
  scheduler.Submit(0, 1000, [] {});
  scheduler.Submit(0, 2000, [] {});
  sim.Run();
  EXPECT_EQ(scheduler.busy_ns(), 1000 + 2000 + 2 * 500);
  EXPECT_TRUE(scheduler.idle());
  EXPECT_EQ(sim.Now(), 4000);
}

TEST(SimScheduler, NonPreemptive) {
  simnet::Simulator sim;
  SimScheduler scheduler(sim);
  scheduler.set_dispatch_cost_ns(0);
  std::vector<std::pair<int, TimeNs>> completions;

  scheduler.Submit(1, 10'000, [&] { completions.push_back({1, sim.Now()}); });
  // A high-priority item arriving mid-run must wait for the running item.
  sim.ScheduleAt(2'000, [&] {
    scheduler.Submit(99, 1'000, [&] { completions.push_back({99, sim.Now()}); });
  });
  sim.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].first, 1);
  EXPECT_EQ(completions[0].second, 10'000);
  EXPECT_EQ(completions[1].first, 99);
  EXPECT_EQ(completions[1].second, 11'000);
}

}  // namespace
}  // namespace flipc::simos
