// Adversarial robustness: the property the whole engine architecture
// exists for. "Synchronization between the messaging engine and the
// application consists entirely of wait-free synchronization, making it
// impossible for an errant application to stall the communication
// controller" — and the validity checks keep a *malicious* application
// from crashing it. These tests corrupt the communication buffer in the
// ways an errant application could and require the engine to keep serving
// other traffic, never crash, and account every rejection.
#include <memory>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/engine/messaging_engine.h"
#include "src/flipc/flipc.h"
#include "src/flipc/sim_workloads.h"
#include "src/simnet/des.h"
#include "src/simnet/link_model.h"

namespace flipc {
namespace {

std::unique_ptr<SimCluster> TwoNodes(engine::EngineOptions engine_options = {}) {
  SimCluster::Options options;
  options.node_count = 2;
  options.comm.message_size = 128;
  options.comm.buffer_count = 64;
  options.comm.max_endpoints = 8;
  options.engine = engine_options;
  auto cluster = SimCluster::Create(std::move(options));
  EXPECT_TRUE(cluster.ok());
  return std::move(cluster).value();
}

// A well-behaved victim flow that must keep working while an attacker
// corrupts its own endpoints on the same node.
struct VictimFlow {
  Endpoint tx;
  Endpoint rx;

  static VictimFlow Make(SimCluster& cluster) {
    VictimFlow flow;
    auto tx = cluster.domain(0).CreateEndpoint({.type = shm::EndpointType::kSend});
    auto rx = cluster.domain(1).CreateEndpoint({.type = shm::EndpointType::kReceive});
    EXPECT_TRUE(tx.ok() && rx.ok());
    flow.tx = *tx;
    flow.rx = *rx;
    return flow;
  }

  // Sends one message end to end; returns whether it arrived.
  bool SendOne(SimCluster& cluster) {
    auto rx_buf = cluster.domain(1).AllocateBuffer();
    if (!rx_buf.ok() || !rx.PostBuffer(*rx_buf).ok()) {
      return false;
    }
    auto msg = cluster.domain(0).AllocateBuffer();
    if (!msg.ok() || !tx.Send(*msg, rx.address()).ok()) {
      return false;
    }
    cluster.sim().Run();
    const bool arrived = rx.Receive().ok();
    (void)tx.Reclaim();
    return arrived;
  }
};

TEST(Robustness, GarbageBufferIndicesInQueueCells) {
  auto cluster = TwoNodes();
  VictimFlow victim = VictimFlow::Make(*cluster);

  // Attacker: a send endpoint whose queue cells are filled with garbage.
  auto attacker = cluster->domain(0).CreateEndpoint(
      {.type = shm::EndpointType::kSend, .queue_depth = 16});
  ASSERT_TRUE(attacker.ok());
  Rng rng(777);
  waitfree::BufferQueueView queue = cluster->domain(0).comm().queue(attacker->index());
  for (int i = 0; i < 16; ++i) {
    queue.Release(static_cast<waitfree::BufferIndex>(rng()));
  }
  cluster->domain(0).KickEngine();
  cluster->sim().Run();

  EXPECT_EQ(cluster->engine(0).stats().validity_rejections, 16u);
  EXPECT_TRUE(victim.SendOne(*cluster));  // victim unaffected
}

TEST(Robustness, CorruptDestinationAddresses) {
  engine::EngineOptions options;
  options.validity_checks = true;
  auto cluster = TwoNodes(options);
  VictimFlow victim = VictimFlow::Make(*cluster);

  auto attacker = cluster->domain(0).CreateEndpoint(
      {.type = shm::EndpointType::kSend, .queue_depth = 16});
  ASSERT_TRUE(attacker.ok());
  Rng rng(778);
  for (int i = 0; i < 12; ++i) {
    auto buffer = cluster->domain(0).AllocateBuffer();
    ASSERT_TRUE(buffer.ok());
    // Random (mostly bogus) destinations, written directly to the header
    // as a malicious library replacement would.
    const Address dst = Address::FromPacked(static_cast<std::uint32_t>(rng()));
    cluster->domain(0).comm().msg(buffer->index()).header->set_peer_address(dst);
    cluster->domain(0).comm().msg(buffer->index()).header->state.Store(
        waitfree::MsgState::kReady);
    ASSERT_TRUE(cluster->domain(0).comm().queue(attacker->index()).Release(buffer->index()));
  }
  cluster->domain(0).KickEngine();
  cluster->sim().Run();

  const auto& tx_stats = cluster->engine(0).stats();
  const auto& rx_stats = cluster->engine(1).stats();
  // Every corrupt message was disposed of somewhere sane: rejected at the
  // sender (invalid address / unknown node) or discarded at the receiver
  // (bad endpoint). None may vanish unaccounted.
  EXPECT_EQ(tx_stats.validity_rejections + tx_stats.drops_bad_address +
                rx_stats.drops_bad_address + rx_stats.drops_no_buffer +
                rx_stats.messages_delivered,
            12u);
  EXPECT_TRUE(victim.SendOne(*cluster));
}

TEST(Robustness, RandomizedCorruptionFuzz) {
  // 20 rounds of randomized corruption across queue cells, headers and
  // cursor over-advancement; the engines must survive all of it.
  Rng rng(20'26);
  for (int round = 0; round < 20; ++round) {
    engine::EngineOptions options;
    options.validity_checks = true;
    auto cluster = TwoNodes(options);
    VictimFlow victim = VictimFlow::Make(*cluster);
    shm::CommBuffer& comm = cluster->domain(0).comm();

    auto attacker = cluster->domain(0).CreateEndpoint(
        {.type = shm::EndpointType::kSend, .queue_depth = 16});
    ASSERT_TRUE(attacker.ok());
    waitfree::BufferQueueView queue = comm.queue(attacker->index());

    const int ops = 5 + static_cast<int>(rng.Below(20));
    for (int op = 0; op < ops; ++op) {
      switch (rng.Below(3)) {
        case 0:
          queue.Release(static_cast<waitfree::BufferIndex>(rng()));
          break;
        case 1: {
          auto buffer = comm.AllocateBuffer();
          if (buffer.ok()) {
            shm::MsgView view = comm.msg(*buffer);
            view.header->peer.Publish(static_cast<std::uint32_t>(rng()));
            view.header->state.Store(
                static_cast<waitfree::MsgState>(rng.Below(4)));
            queue.Release(*buffer);
          }
          break;
        }
        case 2: {
          // Corrupt the release cursor itself (jump it forward): the
          // engine sees a huge ProcessableCount full of stale cells.
          shm::EndpointRecord& record = comm.endpoint(attacker->index());
          record.release_count.Publish(record.release_count.ReadRelaxed() +
                                       static_cast<std::uint32_t>(rng.Below(4)));
          break;
        }
      }
    }
    cluster->domain(0).KickEngine();
    // Bounded run: a wedged engine would loop forever re-planning; the
    // event budget catches both crashes and livelocks.
    for (int i = 0; i < 200'000 && cluster->sim().Step(); ++i) {
    }
    EXPECT_TRUE(victim.SendOne(*cluster)) << "victim flow broken in round " << round;
  }
}

TEST(Robustness, EngineSurvivesEndpointChurnDuringTraffic) {
  auto cluster = TwoNodes();
  VictimFlow victim = VictimFlow::Make(*cluster);
  Rng rng(31337);

  for (int round = 0; round < 50; ++round) {
    auto endpoint = cluster->domain(0).CreateEndpoint(
        {.type = rng.Chance(0.5) ? shm::EndpointType::kSend : shm::EndpointType::kReceive,
         .queue_depth = 4});
    if (endpoint.ok()) {
      if (endpoint->type() == shm::EndpointType::kSend && rng.Chance(0.7)) {
        auto buffer = cluster->domain(0).AllocateBuffer();
        if (buffer.ok()) {
          (void)endpoint->Send(*buffer, Address(1, static_cast<std::uint16_t>(rng.Below(8))));
          cluster->sim().Run();
          auto reclaimed = endpoint->Reclaim();
          if (reclaimed.ok()) {
            (void)cluster->domain(0).FreeBuffer(*reclaimed);
          }
        }
      }
      (void)cluster->domain(0).DestroyEndpoint(*endpoint);
    }
    cluster->sim().Run();
  }
  EXPECT_TRUE(victim.SendOne(*cluster));
}

// Determinism: identical configurations and inputs produce bit-identical
// virtual timelines — the property every reproduction bench relies on.
TEST(Determinism, IdenticalRunsProduceIdenticalTimelines) {
  auto run_once = [] {
    auto cluster = TwoNodes();
    sim::PingPongConfig config;
    config.exchanges = 50;
    config.jitter_stddev_ns = 500;
    config.jitter_seed = 13;
    auto result = sim::RunPingPong(*cluster, config);
    EXPECT_TRUE(result.ok());
    return std::make_pair(result->samples_ns, result->finished_at);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, DifferentSeedsDiffer) {
  auto run_with_seed = [](std::uint64_t seed) {
    auto cluster = TwoNodes();
    sim::PingPongConfig config;
    config.exchanges = 50;
    config.jitter_stddev_ns = 500;
    config.jitter_seed = seed;
    auto result = sim::RunPingPong(*cluster, config);
    EXPECT_TRUE(result.ok());
    return result->samples_ns;
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

}  // namespace
}  // namespace flipc
